// Private scoring auction on a blockchain-style substrate.
//
// Four bidders each hold a private (bid, quality-weight) pair.  The
// auctioneer (client 0... who is also bidder 0 here) learns each weighted
// score and the total — but no individual bid or weight — even though one
// role per committee actively cheats.  This is the "large-scale distributed
// environment" workload the paper's introduction motivates: the committees
// stand in for a big machine pool via the role-assignment functionality.
#include <cstdio>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"
#include "yoso/role_assign.hpp"

using namespace yoso;

int main() {
  const unsigned bidders = 4;
  ProtocolParams params = ProtocolParams::for_gap(/*n=*/8, /*eps=*/0.2,
                                                  /*paillier_bits=*/192);

  Circuit circuit = auction_scoring_circuit(bidders);
  std::printf("auction: %u bidders, %zu mul gates, committee %s\n", bidders,
              circuit.num_mul_gates(), params.describe().c_str());

  // Sample committee corruption from a simulated machine pool of 10'000
  // machines, 15%% of them adversarial — the role-assignment layer.
  RoleAssignment pool(/*pool_size=*/10000, /*corrupt=*/1500, /*failstop=*/0, /*seed=*/7);
  auto sample = pool.sample_committee(params.n);
  std::printf("sampled committee corruption: %u malicious of %u (bound t = %u)\n",
              sample.count(RoleStatus::Malicious), params.n, params.t);

  // Use the worst allowed corruption for the run itself so the demo always
  // exercises the adversarial path.
  AdversaryPlan plan = AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::BadShare);

  std::vector<std::vector<mpz_class>> inputs = {
      {mpz_class(120), mpz_class(3)},  // bidder 0: bid 120, weight 3
      {mpz_class(150), mpz_class(2)},  // bidder 1
      {mpz_class(90), mpz_class(5)},   // bidder 2
      {mpz_class(200), mpz_class(1)},  // bidder 3
  };

  YosoMpc mpc(params, circuit, plan, /*seed=*/99);
  OnlineResult result = mpc.run(inputs);

  std::printf("\nauctioneer learns:\n");
  for (unsigned i = 0; i < bidders; ++i) {
    std::printf("  score of bidder %u = %s\n", i, result.outputs[i].get_str().c_str());
  }
  std::printf("  total volume      = %s\n", result.outputs[bidders].get_str().c_str());
  std::printf("\n(each committee contained %u actively cheating roles; the NIZK layer\n"
              " discarded their contributions and the outputs are still correct)\n",
              params.t);
  bool ok = result.outputs[0] == 360 && result.outputs[1] == 300 &&
            result.outputs[2] == 450 && result.outputs[3] == 200 &&
            result.outputs[4] == 1310;
  return ok ? 0 : 1;
}
