// Federated statistics with fail-stop tolerance (Section 5.4 in action).
//
// Five hospitals each contribute one private measurement; the coordinator
// learns the sum and the sum of squares (hence mean and variance), nothing
// else.  The deployment anticipates flaky infrastructure: the protocol is
// configured in fail-stop mode (halved packing), and the run injects two
// crashed honest roles per committee on top of an active corruption —
// exactly the regime the paper argues YOSO deployments must survive.
#include <cstdio>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

using namespace yoso;

int main() {
  const unsigned hospitals = 5;
  ProtocolParams params = ProtocolParams::for_gap(/*n=*/8, /*eps=*/0.25,
                                                  /*paillier_bits=*/192,
                                                  /*failstop_mode=*/true);
  unsigned capacity = params.n - params.t - params.recon_threshold();
  std::printf("fail-stop configuration: %s, survives %u crashed roles/committee\n",
              params.describe().c_str(), capacity);

  Circuit circuit = statistics_circuit(hospitals);
  std::vector<std::vector<mpz_class>> inputs = {
      {mpz_class(170)}, {mpz_class(165)}, {mpz_class(180)},
      {mpz_class(175)}, {mpz_class(160)},
  };

  AdversaryPlan plan = AdversaryPlan::fixed(params.n, params.t, /*f_stop=*/2,
                                            MaliciousStrategy::BadShare);
  YosoMpc mpc(params, circuit, plan, /*seed=*/314);
  OnlineResult result = mpc.run(inputs);

  long sum = result.outputs[0].get_si();
  long sq = result.outputs[1].get_si();
  double mean = static_cast<double>(sum) / hospitals;
  double var = static_cast<double>(sq) / hospitals - mean * mean;
  std::printf("\ncoordinator learns: sum = %ld, sum of squares = %ld\n", sum, sq);
  std::printf("  => mean = %.1f, variance = %.1f\n", mean, var);
  std::printf("\n(every committee ran with %u malicious + 2 crashed roles and still "
              "delivered)\n", params.t);
  return (sum == 850 && sq == 144750) ? 0 : 1;
}
