// Federated statistics as a hosted MPC service (Section 5.4 in action).
//
// Five hospitals each contribute one private measurement per reporting day;
// the coordinator learns the sum and the sum of squares (hence mean and
// variance), nothing else.  Instead of standing up a fresh protocol per
// report, the hospitals submit each day's batch as a session to a long-lived
// MpcService whose background triple pool preprocesses the statistics
// circuit ahead of demand: day 1 arrives before the pool has banked a unit
// and pays the full cold-start cost, later days claim prebuilt offline
// material and finish in online time only.  The deployment still anticipates
// flaky infrastructure: fail-stop mode (halved packing) with two crashed
// honest roles per committee on top of active corruptions — exactly the
// regime the paper argues YOSO deployments must survive.
#include <cstdio>

#include "circuit/workloads.hpp"
#include "service/service.hpp"

using namespace yoso;
using service::MpcService;
using service::ServiceConfig;
using service::SessionRequest;
using service::SessionState;

int main() {
  const unsigned hospitals = 5;

  ServiceConfig cfg;
  cfg.n = 8;
  cfg.eps = 0.25;
  cfg.paillier_bits = 192;
  cfg.failstop_mode = true;
  cfg.seed = 314;
  cfg.pool_circuit = statistics_circuit(hospitals);

  ProtocolParams probe = ProtocolParams::for_gap(cfg.n, cfg.eps, cfg.paillier_bits,
                                                 cfg.failstop_mode);
  cfg.plan = AdversaryPlan::fixed(probe.n, probe.t, /*f_stop=*/2,
                                  MaliciousStrategy::BadShare);

  MpcService svc(cfg);
  const ProtocolParams& params = svc.params();
  unsigned capacity = params.n - params.t - params.recon_threshold();
  std::printf("fail-stop configuration: %s, survives %u crashed roles/committee\n",
              params.describe().c_str(), capacity);

  // Three reporting days.  Day 1 lands before the pool has finished its
  // first unit (cold miss); days 2 and 3 claim banked offline material.
  const std::vector<std::vector<std::vector<mpz_class>>> days = {
      {{mpz_class(170)}, {mpz_class(165)}, {mpz_class(180)},
       {mpz_class(175)}, {mpz_class(160)}},
      {{mpz_class(172)}, {mpz_class(166)}, {mpz_class(178)},
       {mpz_class(174)}, {mpz_class(161)}},
      {{mpz_class(169)}, {mpz_class(167)}, {mpz_class(181)},
       {mpz_class(173)}, {mpz_class(163)}},
  };
  for (std::size_t d = 0; d < days.size(); ++d) {
    SessionRequest req;
    req.tag = "report.day" + std::to_string(d + 1);
    req.circuit = statistics_circuit(hospitals);
    req.inputs = days[d];
    svc.submit_at(0.1 * static_cast<double>(d), std::move(req));
  }
  svc.run();

  bool ok = true;
  for (std::size_t d = 0; d < days.size(); ++d) {
    const auto& rec = svc.session(d + 1);
    if (rec.state != SessionState::Completed) {
      std::printf("day %zu: session ended %s\n", d + 1, session_state_name(rec.state));
      ok = false;
      continue;
    }
    long sum = rec.outputs[0].get_si();
    long sq = rec.outputs[1].get_si();
    double mean = static_cast<double>(sum) / hospitals;
    double var = static_cast<double>(sq) / hospitals - mean * mean;
    std::printf("\nday %zu (%s, latency %.4fs): sum = %ld, sum of squares = %ld\n", d + 1,
                rec.pool_hit ? "pool hit" : "cold miss", rec.latency_s(), sum, sq);
    std::printf("  => mean = %.1f, variance = %.1f\n", mean, var);
    if (d == 0) ok = ok && sum == 850 && sq == 144750;
  }

  const auto stats = svc.stats();
  std::printf("\n(every committee ran with %u malicious + crashed roles; pool hit rate "
              "%.2f across %zu sessions)\n", params.t, stats.pool.hit_rate(), stats.completed);
  return ok && stats.completed == days.size() && stats.pool.hits >= 1 ? 0 : 1;
}
