// Quickstart: two clients compute an inner product under YOSO MPC.
//
//   build/examples/quickstart
//
// Walks through the public API end to end: pick gap parameters, build a
// circuit, run the offline (preprocessing) phase, feed inputs online, and
// inspect the communication ledger that backs the paper's claims.
#include <cstdio>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

using namespace yoso;

int main() {
  // Committees of n = 8 with gap eps = 0.25: tolerates t = 1 active
  // corruption per committee and packs k = 3 secrets per sharing.
  ProtocolParams params = ProtocolParams::for_gap(/*n=*/8, /*eps=*/0.25,
                                                  /*paillier_bits=*/192);
  std::printf("parameters: %s\n", params.describe().c_str());

  // <x, y> for x = (3, 1, 4), y = (1, 5, 9).
  Circuit circuit = inner_product_circuit(3);
  std::vector<std::vector<mpz_class>> inputs = {
      {mpz_class(3), mpz_class(1), mpz_class(4)},   // client 0's vector
      {mpz_class(1), mpz_class(5), mpz_class(9)},   // client 1's vector
  };

  YosoMpc mpc(params, circuit, AdversaryPlan::honest(params.n), /*seed=*/2024);

  std::printf("running offline phase (circuit-dependent, input-independent)...\n");
  mpc.preprocess();

  std::printf("running online phase...\n");
  OnlineResult result = mpc.evaluate(inputs);

  std::printf("inner product = %s (expected 44)\n", result.outputs[0].get_str().c_str());

  std::printf("\ncommunication ledger:\n%s", mpc.ledger().report().c_str());
  return result.outputs[0] == 44 ? 0 : 1;
}
