// Large-committee demo on the information-theoretic engine.
//
// The computational protocol's committees are capped by Paillier costs on
// one machine; the IT engine (src/itmpc) has none of that, so this example
// runs a federated-statistics workload with a *256-role* committee —
// the regime the paper targets — tolerating 63 corruptions and a dozen
// crashed roles, and prints the per-gate online cost.
#include <cstdio>

#include "circuit/workloads.hpp"
#include "itmpc/itmpc.hpp"

using namespace yoso;

int main() {
  ItParams params = ItParams::for_gap(/*n=*/256, /*eps=*/0.25, /*failstop_mode=*/true);
  std::printf("IT committee: n = %u, t = %u (privacy), k = %u, reconstruct from %u\n",
              params.n, params.t, params.k, params.recon_threshold());
  std::printf("fail-stop budget: %u crashed roles per committee\n\n",
              params.n - params.recon_threshold());

  const unsigned parties = 16;
  Circuit circuit = statistics_circuit(parties);
  Rng rng(5150);
  ItCorrelations corr = it_deal(circuit, params, rng);

  std::vector<std::vector<Fp61::Elem>> inputs(parties);
  Fp61::Elem expected_sum = 0;
  for (unsigned i = 0; i < parties; ++i) {
    Fp61::Elem v = 100 + 3 * i;
    inputs[i].push_back(v);
    expected_sum = Fp61::add(expected_sum, v);
  }

  ItResult res = it_online(circuit, params, corr, inputs, /*failstops=*/12, /*seed=*/99);
  if (!res.delivered) {
    std::printf("protocol stalled (should not happen within the budget)\n");
    return 1;
  }
  std::printf("sum of %u private inputs = %llu (expected %llu)\n", parties,
              static_cast<unsigned long long>(res.outputs[0]),
              static_cast<unsigned long long>(expected_sum));
  std::printf("sum of squares          = %llu\n",
              static_cast<unsigned long long>(res.outputs[1]));
  double per_gate = static_cast<double>(res.mult_share_elements) /
                    static_cast<double>(circuit.num_mul_gates());
  std::printf("\nonline cost: %.1f field elements per multiplication gate\n", per_gate);
  std::printf("(= (n - crashed)/k; with no gap this committee would pay %u per gate)\n",
              params.n);
  return res.outputs[0] == expected_sum ? 0 : 1;
}
