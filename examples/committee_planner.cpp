// Committee planner: a deployment-sizing tool built on the Section 6
// analysis.
//
//   build/examples/committee_planner [C] [f]
//
// Given a sortition parameter C (expected committee size) and a global
// corruption ratio f, prints the achievable gap, the committee sizes with
// and without the gap, the packing factor, and what that means for the
// online phase of the paper's protocol — i.e. the decision an operator
// would actually make before deploying YOSO MPC on a chain.
#include <cstdio>
#include <cstdlib>

#include "sortition/analysis.hpp"
#include "sortition/montecarlo.hpp"

using namespace yoso;

int main(int argc, char** argv) {
  SortitionConfig cfg;
  cfg.C = argc > 1 ? std::atof(argv[1]) : 10000;
  cfg.f = argc > 2 ? std::atof(argv[2]) : 0.10;

  std::printf("committee planner: C = %.0f, global corruption f = %.2f\n", cfg.C, cfg.f);
  std::printf("(security: 2^%u sortition grinding, 2^-%u corruption-bound failure, "
              "2^-%u size-bound failure)\n\n", cfg.k1, cfg.k2, cfg.k3);

  GapAnalysis g = analyze_gap(cfg);
  if (!g.feasible) {
    std::printf("INFEASIBLE: at this (C, f) not even an honest majority is guaranteed.\n");
    std::printf("Increase C or reduce f (cf. the bottom rows of Table 1).\n");
    return 1;
  }

  std::printf("Chernoff slack:        eps1 = %.4f, eps2 = %.4f, eps3 = %.4f\n", g.eps1,
              g.eps2, g.eps3);
  std::printf("corruption bound:      t  = %.0f   (w.p. 1 - 2^-%u)\n", g.t, cfg.k2);
  std::printf("achievable gap:        eps = %.4f (delta_max = %.3f)\n", g.eps, g.delta_max);
  std::printf("committee size needed: c  = %.0f   (vs c' = %.0f at eps = 0, +%.1f%%)\n", g.c,
              g.c_prime, 100.0 * (g.c - g.c_prime) / g.c_prime);
  std::printf("packing factor:        k  = %u\n", g.k);
  std::printf("=> online phase ships ~%ux less data than the eps = 0 design.\n\n", g.k);

  std::printf("Monte-Carlo sanity check at reduced security (k2 = k3 = 12, 2^13 draws):\n");
  SortitionConfig mc_cfg = cfg;
  mc_cfg.k1 = 0;
  mc_cfg.k2 = 12;
  mc_cfg.k3 = 12;
  GapAnalysis mc_g = analyze_gap(mc_cfg);
  auto mc = sortition_monte_carlo(mc_cfg, mc_g, /*pool=*/200000, /*trials=*/1 << 13,
                                  /*seed=*/1);
  std::printf("  mean committee size %.1f, mean corrupt %.1f\n", mc.mean_committee_size,
              mc.mean_corrupt);
  std::printf("  corruption-bound violations: %llu / %llu (budget %.5f)\n",
              static_cast<unsigned long long>(mc.corruption_bound_failures),
              static_cast<unsigned long long>(mc.trials), 1.0 / 4096);
  std::printf("  honest-count violations:     %llu / %llu\n",
              static_cast<unsigned long long>(mc.honest_bound_failures),
              static_cast<unsigned long long>(mc.trials));
  return 0;
}
