#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace yoso::lint {

namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string to_rel(const std::filesystem::path& root, const std::filesystem::path& p) {
  return std::filesystem::relative(p, root).generic_string();
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Consensus-visible scope: these paths feed the replicated transcript, so
// iteration order and wall-clock reads must never influence them.
// src/service is included since PR 6: its report_json() is a bit-for-bit
// deterministic contract.
bool in_consensus_scope(const std::string& rel) {
  return starts_with(rel, "src/yoso/") || starts_with(rel, "src/wire/") ||
         starts_with(rel, "src/net/") || starts_with(rel, "src/crypto/transcript") ||
         starts_with(rel, "src/service/");
}

// Role-bearing scope for the YOSO one-shot/erasure rule: code that drives
// speaking roles or retains protocol state across activations.
bool in_role_scope(const std::string& rel) {
  return starts_with(rel, "src/mpc/") || starts_with(rel, "src/yoso/") ||
         starts_with(rel, "src/itmpc/") || starts_with(rel, "src/service/");
}

// Files allowed to construct sequential generators directly: the blessed
// derivation seam itself and the generator definitions.
bool prg_discipline_exempt(const std::string& rel) {
  return starts_with(rel, "src/common/prg_stream.") || starts_with(rel, "src/crypto/rand.") ||
         starts_with(rel, "src/crypto/prg.");
}

struct TokenRule {
  const char* rule;
  std::regex pattern;
  const char* message;
  bool consensus_scope_only;
};

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"raw-powm", std::regex(R"(\bmpz_powm(_sec|_ui)?\b)"),
                 "raw GMP exponentiation; use powm_sec/powm_pub from common/ct_math.hpp", false});
    r.push_back({"raw-invert", std::regex(R"(\bmpz_invert\b)"),
                 "raw GMP inversion; use mod_inverse from common/ct_math.hpp", false});
    r.push_back({"memcmp", std::regex(R"(\bmemcmp\b)"),
                 "early-exit comparison; use ct_equal from crypto/ct.hpp", false});
    r.push_back({"declassify", std::regex(R"(\.declassify\s*\()"),
                 "taint exit outside the whitelist; add a justified whitelist entry", false});
    r.push_back({"nondeterminism",
                 std::regex(R"(\bstd::unordered_(map|set)\b|\b(s?rand|time)\s*\(|)"
                            R"(\brandom_device\b|\bmt19937\b|\bsystem_clock\b)"),
                 "nondeterministic construct in consensus-visible code", true});
    r.push_back({"banned-include",
                 std::regex(R"(^\s*#\s*include\s*<(random|ctime|unordered_map|unordered_set)>)"),
                 "banned include in consensus-visible code", true});
    return r;
  }();
  return rules;
}

void split_lines(const std::string& s, std::vector<std::string>* out) {
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      out->push_back(s.substr(start));
      break;
    }
    out->push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
}

}  // namespace

Whitelist Whitelist::load(const std::filesystem::path& file) {
  std::string err;
  Whitelist wl = parse(read_file(file), &err);
  if (!err.empty()) throw std::runtime_error("lint whitelist " + file.string() + ": " + err);
  return wl;
}

Whitelist Whitelist::parse(const std::string& text, std::string* error) {
  Whitelist wl;
  std::vector<std::string> lines;
  split_lines(text, &lines);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    if (auto cr = line.find('\r'); cr != std::string::npos) line.erase(cr);
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ss(line);
    std::string rule, path, dashes;
    ss >> rule >> path >> dashes;
    std::string reason;
    std::getline(ss, reason);
    std::size_t rs = reason.find_first_not_of(" \t");
    if (rule.empty() || path.empty() || dashes != "--" || rs == std::string::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(i + 1) +
                 ": expected '<rule> <path> -- <reason>', got: " + line;
      }
      return Whitelist();
    }
    wl.entries_.push_back(Entry{rule, path});
  }
  if (error != nullptr) error->clear();
  return wl;
}

bool Whitelist::allows(const std::string& rule, const std::string& rel_path) const {
  for (const auto& e : entries_) {
    if (e.rule == rule && e.path == rel_path) return true;
  }
  return false;
}

namespace {

std::string strip_impl(const std::string& src, bool blank_strings) {
  std::string out = src;
  enum class St { Code, Line, Block, Str, Chr };
  St st = St::Code;
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    char prev = i > 0 ? src[i - 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && next == '/') {
          st = St::Line;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::Block;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::Str;
        } else if (c == '\'') {
          // A ' between a digit and an alphanumeric is a C++14 digit
          // separator (1'000'000, 0x3'F), not a char literal.  Treating it
          // as one would leave the stripper in Chr state until the next
          // stray apostrophe — often inside a later comment.
          if (!(std::isdigit(static_cast<unsigned char>(prev)) &&
                std::isalnum(static_cast<unsigned char>(next)))) {
            st = St::Chr;
          }
        }
        break;
      case St::Line:
        if (c == '\n') {
          st = St::Code;
        } else {
          out[i] = ' ';
        }
        break;
      case St::Block:
        if (c == '*' && next == '/') {
          st = St::Code;
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Str:
      case St::Chr: {
        char quote = st == St::Str ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          if (blank_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == quote) {
          st = St::Code;
        } else if (c != '\n' && blank_strings) {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& src) {
  return strip_impl(src, /*blank_strings=*/true);
}

std::string strip_comments(const std::string& src) {
  return strip_impl(src, /*blank_strings=*/false);
}

std::vector<Finding> lint_file(const std::string& rel_path, const std::string& content,
                               const Whitelist& wl) {
  std::vector<Finding> findings;
  const std::string stripped = strip_comments_and_strings(content);
  std::vector<std::string> lines;
  split_lines(stripped, &lines);
  const bool consensus = in_consensus_scope(rel_path);
  for (const auto& rule : token_rules()) {
    if (rule.consensus_scope_only && !consensus) continue;
    if (wl.allows(rule.rule, rel_path)) continue;
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
      if (std::regex_search(lines[ln], rule.pattern)) {
        findings.push_back(Finding{rule.rule, rel_path, ln + 1, rule.message});
      }
    }
  }

  // raw-json runs on string literals (comments stripped, strings kept): an
  // escaped `\"key\":` inside a C++ string is a hand-built JSON object.  All
  // JSON must go through the json::Writer funnel in src/common/json.hpp.
  if (starts_with(rel_path, "src/") && !starts_with(rel_path, "src/common/json") &&
      !wl.allows("raw-json", rel_path)) {
    static const std::regex raw_json(R"re(\\"[A-Za-z_][A-Za-z0-9_.]*\\"\s*:)re");
    std::vector<std::string> raw_lines;
    split_lines(strip_comments(content), &raw_lines);
    for (std::size_t ln = 0; ln < raw_lines.size(); ++ln) {
      if (std::regex_search(raw_lines[ln], raw_json)) {
        findings.push_back(Finding{"raw-json", rel_path, ln + 1,
                                   "hand-built JSON literal; use json::Writer from "
                                   "common/json.hpp"});
      }
    }
  }

  // prg-discipline: constructing a sequential generator (Rng, Prg,
  // gmp_randclass) outside the blessed per-task derivation seam.  A line
  // that derives its seed via prg::subseed / prg::derive_prg is blessed —
  // that is the (seed, role, activation) keying the multi-core engine
  // depends on.  Whole-file exemptions go through the whitelist with a
  // recorded reason (pre-existing derivations keep the seeded transcripts
  // and perf baselines stable).
  if (starts_with(rel_path, "src/") && !prg_discipline_exempt(rel_path) &&
      !wl.allows("prg-discipline", rel_path)) {
    static const std::regex prg_ctor(
        R"(\b(?:Rng|Prg|gmp_randclass)\s+[A-Za-z_]\w*\s*[({;=]|\bgmp_randinit\w*\s*\()");
    static const std::regex blessed(
        R"(\bprg::(subseed|derive_prg|StreamKey|SequentialStreams)\b)");
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
      if (!std::regex_search(lines[ln], prg_ctor)) continue;
      if (std::regex_search(lines[ln], blessed)) continue;
      findings.push_back(Finding{"prg-discipline", rel_path, ln + 1,
                                 "sequential PRG constructed outside the per-task stream seam; "
                                 "derive the seed via prg::subseed (common/prg_stream.hpp) or "
                                 "whitelist with a reason"});
    }
  }

  // mutable-global: non-const namespace-scope or function-local `static`
  // mutable state.  Hidden shared state is what the thread-safety
  // annotations cannot see; every surviving instance must be a reviewed
  // whitelist entry.  A '(' in the declaration head (before any '=' or ';')
  // marks a function declaration, which is fine.
  if (starts_with(rel_path, "src/") && !wl.allows("mutable-global", rel_path)) {
    static const std::regex static_decl(R"(^\s*(?:inline\s+|thread_local\s+)*static\s)");
    static const std::regex const_mark(R"(\bconst\b|\bconstexpr\b|\bconstinit\b)");
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
      const std::string& line = lines[ln];
      if (!std::regex_search(line, static_decl)) continue;
      const std::size_t cut = line.find_first_of("=;");
      const std::string head = line.substr(0, cut == std::string::npos ? line.size() : cut);
      if (head.find('(') != std::string::npos) continue;  // function, not data
      if (std::regex_search(head, const_mark)) continue;
      findings.push_back(Finding{"mutable-global", rel_path, ln + 1,
                                 "mutable static state; thread-safety analysis cannot guard "
                                 "hidden globals — remove it or whitelist with a reason"});
    }
  }

  // obs-hot-loop: registry-backed OBS_* macros in the crypto hot loops.
  // Each expansion resolves a name->handle map lookup (a static, but the
  // first call per site takes the registry lock) — on the primitive funnels
  // that is the pattern PR 9 removed.  Hot-path recording goes through the
  // profiler's OBS_OP* macros (array-indexed task-local cells,
  // src/obs/profile.hpp) or a cached obs::Series handle
  // (docs/OBSERVABILITY.md); anything else needs a whitelist reason.
  if ((starts_with(rel_path, "src/crypto/") || starts_with(rel_path, "src/paillier/") ||
       starts_with(rel_path, "src/common/ct_math")) &&
      !wl.allows("obs-hot-loop", rel_path)) {
    static const std::regex obs_macro(R"(\bOBS_(COUNT|COUNT_N|HIST|GAUGE_SET)\s*\()");
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
      if (std::regex_search(lines[ln], obs_macro)) {
        findings.push_back(Finding{"obs-hot-loop", rel_path, ln + 1,
                                   "registry-backed OBS_* macro on a crypto hot path; record "
                                   "through OBS_OP* (obs/profile.hpp) or a cached series handle "
                                   "(docs/OBSERVABILITY.md), or whitelist with a reason"});
      }
    }
  }

  // one-shot: YOSO role hygiene in the role-bearing scope.
  if (in_role_scope(rel_path) && !wl.allows("one-shot", rel_path)) {
    // (a) Two publish() calls in one file with the same (committee
    // expression, label literal): syntactically, a role identity that can
    // speak twice.  Label literals live in strings, so this scan keeps them
    // (comments stripped only).
    std::vector<std::string> code_lines;
    split_lines(strip_comments(content), &code_lines);
    static const std::regex publish_call(R"((\.|->)publish\s*\()");
    static const std::regex label_literal("\"([^\"]*)\"");
    std::map<std::string, std::size_t> seen;  // (committee|label) -> first line
    for (std::size_t ln = 0; ln < code_lines.size(); ++ln) {
      std::smatch m;
      if (!std::regex_search(code_lines[ln], m, publish_call)) continue;
      // Argument window: rest of this line plus the next two (publish calls
      // in this tree span at most three lines).
      std::string window = code_lines[ln].substr(m.position(0) + m.length(0));
      for (std::size_t extra = 1; extra <= 2 && ln + extra < code_lines.size(); ++extra) {
        window += ' ';
        window += code_lines[ln + extra];
      }
      const std::size_t comma = window.find(',');
      if (comma == std::string::npos) continue;
      std::string committee = window.substr(0, comma);
      committee.erase(std::remove_if(committee.begin(), committee.end(),
                                     [](unsigned char c) { return std::isspace(c); }),
                      committee.end());
      std::smatch lm;
      if (!std::regex_search(window, lm, label_literal)) continue;  // dynamic label
      const std::string sig = committee + "|" + lm[1].str();
      auto [it, inserted] = seen.emplace(sig, ln + 1);
      if (!inserted) {
        findings.push_back(Finding{"one-shot", rel_path, ln + 1,
                                   "second publish with committee " + committee + " and label \"" +
                                       lm[1].str() + "\" (first at line " +
                                       std::to_string(it->second) +
                                       "); a YOSO role speaks exactly once"});
      }
    }

    // (b) A Secret<…> member in a role-scope header is secret state a role
    // could retain past its speaking phase; whitelisting requires a
    // recorded erasure story.
    if (rel_path.size() > 4 && rel_path.compare(rel_path.size() - 4, 4, ".hpp") == 0) {
      static const std::regex secret_member(R"(\bSecret\s*<|\bSecretMpz\b)");
      for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string& line = lines[ln];
        if (!std::regex_search(line, secret_member)) continue;
        if (line.find('(') != std::string::npos) continue;  // function signature
        const std::size_t last = line.find_last_not_of(" \t");
        if (last == std::string::npos || line[last] != ';') continue;  // not a declaration
        if (line.find("using") != std::string::npos) continue;        // type alias
        findings.push_back(Finding{"one-shot", rel_path, ln + 1,
                                   "Secret<…> member retained in a role-scope header; erase "
                                   "secret state after the speaking phase or whitelist with "
                                   "the erasure story"});
      }
    }
  }
  return findings;
}

namespace {

// Cross-file rule: each tag constant declared in codec.hpp must be handled
// in the decoder round-trip switch of codec.cpp and net_bulletin.cpp.
void check_codec_switch(const std::filesystem::path& root, std::vector<Finding>* findings) {
  const std::filesystem::path decl = root / "src" / "wire" / "codec.hpp";
  if (!std::filesystem::exists(decl)) return;  // tree without a codec: rule vacuous
  const std::string header = strip_comments_and_strings(read_file(decl));

  std::vector<std::string> tags;
  std::regex tag_decl(R"(constexpr\s+std::uint8_t\s+(kTag\w+)\s*=)");
  for (auto it = std::sregex_iterator(header.begin(), header.end(), tag_decl);
       it != std::sregex_iterator(); ++it) {
    tags.push_back((*it)[1].str());
  }

  const std::filesystem::path handlers[] = {root / "src" / "wire" / "codec.cpp",
                                            root / "src" / "net" / "net_bulletin.cpp"};
  for (const auto& h : handlers) {
    if (!std::filesystem::exists(h)) continue;
    const std::string body = strip_comments_and_strings(read_file(h));
    for (const auto& tag : tags) {
      std::regex has_case("case\\s+" + tag + "\\s*:");
      if (!std::regex_search(body, has_case)) {
        findings->push_back(Finding{"codec-switch", to_rel(root, h), 1,
                                    "missing `case " + tag + ":` for tag declared in " +
                                        to_rel(root, decl)});
      }
    }
  }
}

// Cross-file rule: every entry in the TSan suppressions funnel must be
// immediately preceded by a '#' comment recording why the suppression is
// sound — the same reason-mandatory policy as the lint whitelist.  An
// unexplained suppression is how a real race hides forever.
void check_tsan_suppressions(const std::filesystem::path& root, std::vector<Finding>* findings) {
  const std::filesystem::path supp = root / "tools" / "tsan" / "suppressions.txt";
  if (!std::filesystem::exists(supp)) return;  // tree without TSan wiring: rule vacuous
  std::vector<std::string> lines;
  split_lines(read_file(supp), &lines);
  bool prev_was_reason = false;
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    std::string line = lines[ln];
    if (auto cr = line.find('\r'); cr != std::string::npos) line.erase(cr);
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) {
      prev_was_reason = false;  // a blank line breaks the comment/entry pairing
      continue;
    }
    if (line[first] == '#') {
      prev_was_reason = true;
      continue;
    }
    if (!prev_was_reason) {
      findings->push_back(Finding{"tsan-suppression", to_rel(root, supp), ln + 1,
                                  "suppression entry without a preceding '# reason' comment; "
                                  "every TSan suppression must record why it is sound"});
    }
    prev_was_reason = false;  // each entry needs its own reason line
  }
}

}  // namespace

std::vector<Finding> lint_tree(const std::filesystem::path& root, const Whitelist& wl) {
  std::vector<Finding> findings;
  const std::filesystem::path src = root / "src";
  if (std::filesystem::exists(src)) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      const std::string rel = to_rel(root, entry.path());
      auto file_findings = lint_file(rel, read_file(entry.path()), wl);
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  }
  check_codec_switch(root, &findings);
  check_tsan_suppressions(root, &findings);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::ostringstream ss;
  for (const auto& f : findings) {
    ss << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  return ss.str();
}

std::string findings_jsonl(const std::vector<Finding>& findings) {
  std::ostringstream ss;
  for (const auto& f : findings) {
    json::Writer w;
    w.begin_object();
    w.field("rule", f.rule);
    w.field("file", f.file);
    w.field("line", static_cast<std::uint64_t>(f.line));
    w.field("message", f.message);
    w.end_object();
    ss << w.take() << "\n";
  }
  return ss.str();
}

}  // namespace yoso::lint
