// Repo-specific secret-hygiene linter (see docs/STATIC_ANALYSIS.md).
//
// The linter enforces the invariants that the Secret<T> taint type and the
// ct_* helpers establish but cannot prove repo-wide on their own:
//
//   raw-powm        mpz_powm / mpz_powm_sec / mpz_powm_ui may appear only in
//                   the whitelisted funnel (common/ct_math.cpp).  Everything
//                   else must call powm_sec / powm_pub.
//   raw-invert      mpz_invert likewise funnels through mod_inverse.
//   memcmp          byte comparisons on potentially secret data must use
//                   ct_equal (crypto/ct.hpp); memcmp is banned under src/.
//   declassify      .declassify() — the taint's only exit — may appear only
//                   in whitelisted files, each with a recorded reason.
//   nondeterminism  consensus-visible code (src/yoso, src/wire, src/net and
//                   the Fiat-Shamir transcript) must not use unordered
//                   containers, rand()/srand()/time(), random_device,
//                   mt19937 or system_clock: all replicas must derive
//                   byte-identical transcripts.
//   banned-include  the same scope must not include <random>, <ctime>,
//                   <unordered_map> or <unordered_set>.
//   codec-switch    every kTag* constant declared in src/wire/codec.hpp must
//                   be handled as a `case kTagX:` in src/wire/codec.cpp and
//                   src/net/net_bulletin.cpp, so new message kinds cannot be
//                   silently dropped by the decoder or the network checker.
//   raw-json        string literals containing `\"key\":` under src/ are
//                   hand-built JSON; all JSON emission funnels through the
//                   json::Writer in src/common/json.hpp (which is exempt).
//
// Concurrency-readiness rules (docs/STATIC_ANALYSIS.md, added for the
// deterministic multi-core engine):
//
//   prg-discipline  ad-hoc construction of a sequential generator (Rng, Prg,
//                   gmp_randclass / gmp_randinit) under src/ outside the
//                   blessed per-task derivation seam.  Lines that derive
//                   their seed through prg::subseed / prg::derive_prg
//                   (src/common/prg_stream.hpp) are blessed; the seam's own
//                   files and the generator definitions are exempt.
//                   Pre-existing derivations are whitelisted — changing them
//                   would shift every seeded transcript.
//   mutable-global  non-const namespace-scope or function-local `static`
//                   mutable state under src/.  Every surviving instance
//                   needs a reason-mandatory whitelist entry (the obs
//                   singletons and cached instrument handles are the
//                   reviewed list).
//   one-shot        YOSO one-shot/erasure hygiene in the role-bearing scope
//                   (src/mpc, src/yoso, src/itmpc, src/service): (a) two
//                   publish() calls in one file with the same (committee
//                   expression, label literal) — a role that can speak twice
//                   under one identity; (b) a header member of type
//                   Secret<...> in that scope — secret state a role could
//                   retain past its speaking phase (whitelisted only with an
//                   erasure story).
//   tsan-suppression  every entry in tools/tsan/suppressions.txt must be
//                   immediately preceded by a '#' comment giving the reason,
//                   mirroring the whitelist's reason-mandatory policy.
//
// Tokens inside comments and string literals are ignored.  The scan is
// line-based and self-contained (no external tooling), so it runs in CI and
// as an ordinary ctest.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace yoso::lint {

struct Finding {
  std::string rule;
  std::string file;  // path relative to the lint root, '/'-separated
  std::size_t line = 0;
  std::string message;
};

// Per-file exemptions.  Format, one entry per line:
//   <rule> <relative-path> -- <reason>
// Blank lines and lines starting with '#' are skipped.  A missing reason is
// a load error: every exemption must be justified in the whitelist itself.
class Whitelist {
public:
  static Whitelist load(const std::filesystem::path& file);
  static Whitelist parse(const std::string& text, std::string* error);

  bool allows(const std::string& rule, const std::string& rel_path) const;
  std::size_t size() const { return entries_.size(); }

private:
  struct Entry {
    std::string rule;
    std::string path;
  };
  std::vector<Entry> entries_;
};

// Blanks out //, /* */ comments and "..." / '...' literals, preserving
// newlines (and therefore line numbers).
std::string strip_comments_and_strings(const std::string& src);

// Blanks out comments only; string literals survive (raw-json scans them).
std::string strip_comments(const std::string& src);

// Lints one file's contents.  `rel_path` selects the path-scoped rules.
std::vector<Finding> lint_file(const std::string& rel_path, const std::string& content,
                               const Whitelist& wl);

// Walks <root>/src for .hpp/.cpp files, applies lint_file to each, then the
// cross-file codec-switch and tsan-suppression rules.  Findings are sorted
// by (file, line).
std::vector<Finding> lint_tree(const std::filesystem::path& root, const Whitelist& wl);

// "path/to/file.cpp:12: [rule] message" per finding.
std::string format_findings(const std::vector<Finding>& findings);

// One JSON object per finding, one per line (JSONL), through the repo's
// json::Writer funnel: {"rule":…,"file":…,"line":…,"message":…}.
std::string findings_jsonl(const std::vector<Finding>& findings);

}  // namespace yoso::lint
