// Fixture: unordered iteration and wall-clock reads in a consensus-visible
// path (src/yoso) trip the nondeterminism rule.
void f() {
  std::unordered_map<int, int> m;
  auto now = time(nullptr);
  int x = rand();
}
