// Fixture: early-exit byte comparison trips the memcmp rule.
bool eq(const void* a, const void* b) { return memcmp(a, b, 32) == 0; }
