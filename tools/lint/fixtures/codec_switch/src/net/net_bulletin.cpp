#include "../wire/codec.hpp"
void check(std::uint8_t tag) {
  switch (tag) {
    case kTagAlpha: break;
    default: break;  // kTagBeta missing here too
  }
}
