#include "codec.hpp"
const char* tag_name(std::uint8_t tag) {
  switch (tag) {
    case kTagAlpha: return "Alpha";
    default: return "?";  // kTagBeta missing: codec-switch must fire
  }
}
