// Fixture: declares two tags; the handlers below only switch on one.
#pragma once
#include <cstdint>
inline constexpr std::uint8_t kTagAlpha = 0x01;
inline constexpr std::uint8_t kTagBeta = 0x02;
