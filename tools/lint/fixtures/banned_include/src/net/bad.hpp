// Fixture: <random> in a consensus-visible path trips banned-include.
#pragma once
#include <random>
#include <unordered_map>
