// Fixture: a taint exit in a file that is not on the whitelist.
int leak(const yoso::SecretMpz& s) { return s.declassify() == 0; }
