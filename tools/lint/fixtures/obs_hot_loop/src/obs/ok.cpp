// Out of the rule's path scope: the obs layer itself may use its own
// registry macros freely.
void obs_layer_site() { OBS_COUNT("board.posts"); }
