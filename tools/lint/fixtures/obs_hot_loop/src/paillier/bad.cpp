// Negative fixture: registry-backed metrics macros on a Paillier hot path.
// Hot primitives must record through the profiler seam (OBS_OP*) or a
// cached series handle; the raw OBS_* macros pay a name lookup per site.
void paillier_hot_loop() {
  OBS_COUNT("paillier.enc");
  OBS_OP(PaillierEnc);  // profiler seam: clean
  OBS_HIST("paillier.enc.ns", 12);
}
