// Fixture: hidden mutable static state.
int counter_next() {
  static int counter = 0;  // fires: mutable function-local static
  return ++counter;
}

static const int kFixed = 7;          // clean: const
static constexpr double kRatio = 0.5; // clean: constexpr
static int helper(int x);             // clean: function declaration, not data

int use_all(int x) { return helper(x) + kFixed + static_cast<int>(kRatio); }
static int helper(int x) { return x; }
