// Fixture: banned tokens that appear only in comments and string literals
// must NOT fire: mpz_powm, mpz_invert, memcmp, .declassify().
/* block comment: mpz_powm_sec(r, b, e, m); */
const char* doc() { return "call mpz_powm or memcmp or s.declassify() here"; }
