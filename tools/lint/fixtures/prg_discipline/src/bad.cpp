// Fixture: ad-hoc sequential PRG construction outside the stream seam.
void derive_stuff(unsigned long seed) {
  // Fires: raw Rng keyed directly off the task seed.
  Rng rng(seed);
  // Fires: raw gmp_randinit outside the generator definitions.
  gmp_randinit_default(state);
  // Blessed: seed derived through the per-task stream seam.
  Prg g = prg::derive_prg(prg::StreamKey{seed, "dealer", 0});
  (void)rng;
  (void)g;
}
