// Fixture filler: the tsan_reason fixture exercises the cross-file
// suppressions rule only; the source tree itself is clean.
int identity(int x) { return x; }
