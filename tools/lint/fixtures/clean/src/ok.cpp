// Fixture: a perfectly ordinary file; the linter must report nothing.
int add(int a, int b) { return a + b; }
