// Fixture: src/service is consensus-visible — session scheduling decisions
// replicate across workers, so iteration order must be deterministic.
void tally() {
  std::unordered_map<int, int> per_session;  // fires: nondeterminism
  per_session[1] = 2;
}
