// Fixture: a role identity that speaks twice — two publish() calls with the
// same (committee expression, label literal).
void round(Board& board, Committee& layer1) {
  board.publish(layer1, "mult-share", payload_a);
  board.publish(layer1, "open-share", payload_b);   // clean: different label
  board.publish(layer2, "mult-share", payload_c);   // clean: different committee
  board.publish(layer1, "mult-share", payload_d);   // fires: same (committee, label)
}
