// Fixture: secret state retained in a role-scope header.
#pragma once

class LeakyRole {
public:
  void speak(Board& board);

private:
  Secret<mpz_class> retained_share_;  // fires: secret member outlives the speak
  using SecretVec = std::vector<int>; // clean: type alias, no Secret
};
