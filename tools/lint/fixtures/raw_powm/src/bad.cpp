// Fixture: raw GMP exponentiation outside the ct_math funnel must trip
// the raw-powm rule.  Never compiled, only linted.
void f() {
  mpz_powm(r, b, e, m);
  mpz_powm_sec(r, b, e, m);
}
