// The Writer funnel itself is exempt from raw-json.
#include <string>
std::string k() { return "\"key\":"; }
