// Fixture: hand-built JSON in a string literal must trip raw-json.
#include <string>
std::string report(int n) {
  return "{\"posts\":" + std::to_string(n) + "}";
}
