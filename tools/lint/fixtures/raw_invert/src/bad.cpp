// Fixture: raw mpz_invert outside common/ct_math.cpp trips raw-invert.
void f() { mpz_invert(r, a, m); }
