// CLI wrapper for the secret-hygiene linter.
//
//   yoso_lint --root <repo-root> [--whitelist <file>] [--json]
//
// Exits 0 if the tree is clean, 1 with one finding per line otherwise.
// --json emits one JSON object per finding (JSONL on stdout) so CI can
// render annotations; the text mode is unchanged byte-for-byte.
#include <cstdio>
#include <exception>
#include <string>

#include "lint_core.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string whitelist_path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--whitelist" && i + 1 < argc) {
      whitelist_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "usage: yoso_lint --root <dir> [--whitelist <file>] [--json]\n");
      return 2;
    }
  }
  try {
    yoso::lint::Whitelist wl;
    if (!whitelist_path.empty()) wl = yoso::lint::Whitelist::load(whitelist_path);
    const auto findings = yoso::lint::lint_tree(root, wl);
    if (json) {
      std::fputs(yoso::lint::findings_jsonl(findings).c_str(), stdout);
      return findings.empty() ? 0 : 1;
    }
    if (findings.empty()) {
      std::printf("yoso_lint: clean (%s)\n", root.c_str());
      return 0;
    }
    std::fputs(yoso::lint::format_findings(findings).c_str(), stderr);
    std::fprintf(stderr, "yoso_lint: %zu finding(s)\n", findings.size());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "yoso_lint: error: %s\n", e.what());
    return 2;
  }
}
