// trace — the observability CLI over src/obs.
//
//   trace run [--seed S] [--n N] [--width W] [--degrade] [--wall]
//             [--out FILE] [--report FILE]
//       Run YosoMpc over a NetBulletin with tracing on; write the Chrome
//       trace-event JSON (stdout or --out) and, with --report, the unified
//       run report (board + metrics [+ failure]).  Deterministic: the same
//       seed yields byte-identical traces (unless --wall).
//   trace check [FILE]
//       Validate a trace document (stdin when FILE is absent); exit nonzero
//       on schema violations.
//   trace summarize [FILE]
//       Per-span-name table (count, total/mean duration, category), the
//       top-5 most expensive spans, and — when the trace carries op.count.*
//       counter tracks — a per-primitive count/total-µs table.
//   trace diff A B
//       Compare two traces by span name (count and total-duration deltas)
//       and by per-primitive op counts; exit nonzero when either differs.
//   trace costs [--seed S] [--n N] [--width W] [--degrade]
//       Run with the compute profiler on and print the per-primitive cost
//       table: calls, self-µs, µs/call, per-phase breakdown (E15's live
//       twin; docs/PROFILING.md).
//   trace critpath [--seed S] [--n N] [--width W] [--degrade] [--silence R]
//                  [--churn P] [--measured] [--lanes K] [--out FILE]
//                  [--perfetto FILE]
//       Reconstruct the happens-before DAG of the run (src/obs/dag), print
//       the per-phase work/span table, the forecast speedup curve for
//       k ∈ {1,2,4,8,16}, and the top critical-path bottlenecks; --out
//       writes the deterministic critpath JSON, --perfetto a standalone
//       Chrome-trace document with the critical path and the k-worker
//       schedule as dedicated tracks.  --silence/--churn inject fail-stop
//       faults to show how they serialize the run; --measured prices nodes
//       with this machine's self-times instead of the reference table.
//   trace export FILE --cat C
//       Re-emit a trace keeping only events of category C (plus metadata).
#include <cstdint>
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "common/json.hpp"
#include "crypto/rand.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"
#include "net/wire_faults.hpp"  // mix64
#include "obs/dag/critpath.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace {

using yoso::chaos::FaultSchedule;

int usage() {
  std::fprintf(stderr,
               "usage: trace run [--seed S] [--n N] [--width W] [--degrade] [--wall]\n"
               "                 [--out FILE] [--report FILE]\n"
               "       trace check [FILE]\n"
               "       trace summarize [FILE]\n"
               "       trace diff A B\n"
               "       trace costs [--seed S] [--n N] [--width W] [--degrade]\n"
               "       trace critpath [--seed S] [--n N] [--width W] [--degrade]\n"
               "                      [--silence R] [--churn P] [--measured] [--lanes K]\n"
               "                      [--out FILE] [--perfetto FILE]\n"
               "       trace export FILE --cat C\n");
  return 2;
}

std::string read_input(const std::string& path) {
  if (path.empty() || path == "-") {
    return std::string(std::istreambuf_iterator<char>(std::cin), {});
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

bool write_output(const std::string& path, const std::string& content) {
  if (path.empty() || path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  out << content << "\n";
  return static_cast<bool>(out);
}

std::vector<std::vector<mpz_class>> inputs_for(const yoso::Circuit& c, std::uint64_t seed) {
  yoso::Rng rng(yoso::net::mix64(seed ^ 0x10901575ULL));
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == yoso::GateKind::Input) {
      inputs[g.client].push_back(
          mpz_class(static_cast<unsigned long>(rng.u64_below(1u << 16))));
    }
  }
  return inputs;
}

struct RunOptions {
  std::uint64_t seed = 1;
  unsigned n = 6;
  unsigned width = 2;
  bool degrade = false;
  bool wall = false;
  std::string out;
  std::string report;
  // critpath-only knobs.
  unsigned silence = 0;    // fail-stop roles per committee
  double churn = 0;        // per-role departure probability per activation
  bool measured = false;   // price nodes with live self-times
  unsigned lanes = 4;      // worker lanes in the Perfetto export
  std::string perfetto;    // Perfetto artifact path
};

#ifndef OBS_DISABLED

struct BoardBox {
  yoso::Ledger ledger;
  yoso::net::NetBulletin board;
  explicit BoardBox(yoso::net::NetConfig cfg) : board(ledger, std::move(cfg)) {}
};

// Resets the obs singletons and replays the schedule's protocol run with
// recording on.  Shared by `trace run` and `trace costs`.
int run_traced(const RunOptions& opt, std::vector<std::unique_ptr<BoardBox>>& boards,
               std::optional<yoso::FailureReport>& failure) {
  FaultSchedule schedule;
  schedule.seed = opt.seed;
  schedule.n = opt.n;
  schedule.circuit_width = opt.width;
  schedule.degradation = opt.degrade;
  schedule.silenced = opt.silence;
  schedule.churn_prob = opt.churn;

  yoso::obs::tracer().reset();
  yoso::obs::metrics().reset();
  yoso::obs::timeseries().reset();
  yoso::obs::profiler().reset();
  yoso::obs::set_enabled(true);

  const yoso::Circuit circuit = schedule.circuit();
  const auto inputs = inputs_for(circuit, opt.seed);

  const auto make_board = [&](bool) -> yoso::Bulletin* {
    boards.push_back(std::make_unique<BoardBox>(schedule.net_config()));
    return &boards.back()->board;
  };

  int status = 0;
  try {
    if (opt.degrade) {
      yoso::DegradedRunResult d = yoso::run_with_degradation(
          schedule.n, schedule.eps, schedule.paillier_bits, circuit, schedule.adversary(),
          schedule.seed, make_board, inputs);
      if (d.failure) failure = *d.failure;
      if (!d.ok()) status = 1;
    } else {
      yoso::Bulletin* board = make_board(false);
      yoso::YosoMpc mpc(schedule.params(), circuit, schedule.adversary(), schedule.seed, board);
      (void)mpc.run(inputs);
    }
  } catch (const yoso::ProtocolAbort& abort) {
    if (abort.report()) failure = *abort.report();
    status = 1;
  }
  for (auto& box : boards) box->board.flush();
  return status;
}

#endif  // OBS_DISABLED

int cmd_run(const RunOptions& opt) {
#ifdef OBS_DISABLED
  (void)opt;
  std::fprintf(stderr, "trace run: built with OBS_DISABLED; no tracer available\n");
  return 1;
#else
  std::vector<std::unique_ptr<BoardBox>> boards;
  std::optional<yoso::FailureReport> failure;
  int status = run_traced(opt, boards, failure);

  const std::string trace = yoso::obs::tracer().chrome_trace_json(opt.wall);
  if (!write_output(opt.out, trace)) {
    std::fprintf(stderr, "trace run: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  if (!opt.report.empty() && !boards.empty()) {
    const std::string report = yoso::obs::run_report_json(
        boards.back()->board, failure ? &*failure : nullptr);
    if (!write_output(opt.report, report)) {
      std::fprintf(stderr, "trace run: cannot write %s\n", opt.report.c_str());
      return 1;
    }
  }
  return status;
#endif
}

int cmd_costs(const RunOptions& opt) {
#ifdef OBS_DISABLED
  (void)opt;
  std::fprintf(stderr, "trace costs: built with OBS_DISABLED; no profiler available\n");
  return 1;
#else
  std::vector<std::unique_ptr<BoardBox>> boards;
  std::optional<yoso::FailureReport> failure;
  const int status = run_traced(opt, boards, failure);

  const yoso::obs::InstrumentCell cell = yoso::obs::profiler().snapshot();
  std::printf("per-primitive compute costs (seed %llu, n=%u, width=%u):\n",
              static_cast<unsigned long long>(opt.seed), opt.n, opt.width);
  std::printf("%-24s %10s %12s %10s", "primitive", "calls", "self_us", "us/call");
  for (unsigned p = 0; p < yoso::obs::kPhaseCtxCount; ++p) {
    std::printf(" %9s", yoso::obs::phase_ctx_name(static_cast<yoso::obs::PhaseCtx>(p)));
  }
  std::printf("\n");
  for (unsigned o = 0; o < yoso::obs::kOpCount; ++o) {
    const auto op = static_cast<yoso::obs::Op>(o);
    const std::uint64_t calls = cell.op_total_count(op);
    if (calls == 0) continue;
    const double self_us = static_cast<double>(cell.op_total_self_ns(op)) / 1e3;
    std::printf("%-24s %10llu %12.1f %10.4f", yoso::obs::op_name(op),
                static_cast<unsigned long long>(calls), self_us,
                self_us / static_cast<double>(calls));
    for (unsigned p = 0; p < yoso::obs::kPhaseCtxCount; ++p) {
      std::printf(" %9llu",
                  static_cast<unsigned long long>(
                      cell.op_count(static_cast<yoso::obs::PhaseCtx>(p), op)));
    }
    std::printf("\n");
  }
  std::printf("%-24s", "phase wall (ms)");
  std::printf(" %10s %12s %10s", "", "", "");
  for (unsigned p = 0; p < yoso::obs::kPhaseCtxCount; ++p) {
    std::printf(" %9.1f",
                static_cast<double>(
                    cell.phase_wall_ns(static_cast<yoso::obs::PhaseCtx>(p))) / 1e6);
  }
  std::printf("\n");
  return status;
#endif
}

int cmd_critpath(const RunOptions& opt) {
#ifdef OBS_DISABLED
  (void)opt;
  std::fprintf(stderr, "trace critpath: built with OBS_DISABLED; no DAG recorder available\n");
  return 1;
#else
  namespace dag = yoso::obs::dag;
  std::vector<std::unique_ptr<BoardBox>> boards;
  std::optional<yoso::FailureReport> failure;
  const int status = run_traced(opt, boards, failure);
  if (boards.empty()) {
    std::fprintf(stderr, "trace critpath: run produced no board\n");
    return 1;
  }
  // boards.back() is the run that completed (degradation retries create
  // fresh boards; earlier ones hold the aborted attempts).
  const dag::DagRecorder& rec = boards.back()->board.dag();
  std::string dag_error;
  if (!rec.validate(&dag_error)) {
    std::fprintf(stderr, "trace critpath: invalid DAG: %s\n", dag_error.c_str());
    return 1;
  }
  const dag::CostCoeffs coeffs =
      opt.measured ? dag::CostCoeffs::measured(yoso::obs::profiler().snapshot())
                   : dag::CostCoeffs::reference_table();
  const dag::CritReport report = dag::analyze(rec.nodes(), coeffs);

  std::printf("critical path (seed %llu, n=%u, width=%u%s%s): %s\n",
              static_cast<unsigned long long>(opt.seed), opt.n, opt.width,
              opt.silence > 0 || opt.churn > 0 ? ", faulted" : "",
              opt.measured ? ", measured costs" : "",
              yoso::obs::run_metadata_json().c_str());
  std::printf("%-10s %8s %14s %14s %12s\n", "phase", "nodes", "work_ms", "span_ms",
              "parallelism");
  static constexpr const char* kPhaseNames[3] = {"setup", "offline", "online"};
  for (unsigned p = 0; p < 3; ++p) {
    const dag::PhaseCrit& pc = report.phases[p];
    std::printf("%-10s %8zu %14.3f %14.3f %12.2f\n", kPhaseNames[p], pc.nodes, pc.work / 1e3,
                pc.span / 1e3, pc.parallelism());
  }
  std::printf("%-10s %8zu %14.3f %14.3f %12.2f\n", "total", report.total.nodes,
              report.total.work / 1e3, report.total.span / 1e3, report.total.parallelism());

  std::printf("\nforecast (list-scheduled on k virtual workers):\n ");
  for (const dag::ForecastPoint& fp : report.forecast) {
    std::printf(" k=%-2u %5.2fx", fp.k, fp.speedup);
  }
  std::printf("\n");

  // Bottleneck table: the heaviest nodes on the critical path.
  std::vector<std::uint32_t> path = report.critical_path;
  std::sort(path.begin(), path.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double wa = dag::node_work_us(rec.nodes()[a], coeffs);
    const double wb = dag::node_work_us(rec.nodes()[b], coeffs);
    if (wa != wb) return wa > wb;
    return a < b;
  });
  const std::size_t top = path.size() < 5 ? path.size() : 5;
  if (top > 0 && report.total.span > 0) {
    std::printf("\ntop %zu critical-path bottlenecks (of %zu path nodes):\n", top,
                report.critical_path.size());
    for (std::size_t i = 0; i < top; ++i) {
      const dag::DagNode& node = rec.nodes()[path[i]];
      const double work = dag::node_work_us(node, coeffs);
      std::printf("  %zu. %-28s %-9s %12.3f ms  %5.1f%% of span\n", i + 1,
                  dag::node_display_name(node).c_str(), dag::node_kind_name(node.kind),
                  work / 1e3, 100.0 * work / report.total.span);
    }
  }

  if (!opt.out.empty()) {
    if (!write_output(opt.out, dag::crit_report_json(report))) {
      std::fprintf(stderr, "trace critpath: cannot write %s\n", opt.out.c_str());
      return 1;
    }
  }
  if (!opt.perfetto.empty()) {
    const std::string doc = dag::critpath_perfetto_json(rec.nodes(), coeffs, opt.lanes);
    if (!write_output(opt.perfetto, doc)) {
      std::fprintf(stderr, "trace critpath: cannot write %s\n", opt.perfetto.c_str());
      return 1;
    }
  }
  return status;
#endif
}

int cmd_check(const std::string& path) {
  const std::string text = read_input(path);
  std::string error;
  if (!yoso::obs::validate_trace_json(text, &error)) {
    std::fprintf(stderr, "trace check: %s\n", error.c_str());
    return 1;
  }
  const yoso::json::Value doc = yoso::json::parse(text);
  std::printf("ok: %zu events\n", doc.find("traceEvents")->items.size());
  return 0;
}

struct NameStats {
  std::size_t count = 0;
  double total_us = 0;
  std::string cat;
};

std::map<std::string, NameStats> aggregate(const yoso::json::Value& doc) {
  std::map<std::string, NameStats> by_name;
  const yoso::json::Value* events = doc.find("traceEvents");
  if (events == nullptr) return by_name;
  for (const auto& ev : events->items) {
    if (ev.str_or("ph", "") != "X") continue;
    NameStats& s = by_name[ev.str_or("name", "?")];
    s.count += 1;
    s.total_us += ev.num_or("dur", 0);
    if (s.cat.empty()) s.cat = ev.str_or("cat", "");
  }
  return by_name;
}

// Final values of the profiler's op.count.* / op.self_us.* counter tracks.
// The samples are cumulative and time-ordered per op, so "final" = last.
struct OpStats {
  double count = 0;
  double self_us = -1;  // -1: trace carried no self-time track for this op
};

std::map<std::string, OpStats> aggregate_ops(const yoso::json::Value& doc) {
  std::map<std::string, OpStats> ops;
  const yoso::json::Value* events = doc.find("traceEvents");
  if (events == nullptr) return ops;
  for (const auto& ev : events->items) {
    if (ev.str_or("ph", "") != "C") continue;
    const std::string name = ev.str_or("name", "");
    const yoso::json::Value* args = ev.find("args");
    const double value = args == nullptr ? 0 : args->num_or("value", 0);
    if (name.rfind("op.count.", 0) == 0) {
      ops[name.substr(9)].count = value;
    } else if (name.rfind("op.self_us.", 0) == 0) {
      ops[name.substr(11)].self_us = value;
    }
  }
  return ops;
}

// Final per-phase "mem.peak_bytes.<phase>" gauge values (only present in
// traces captured with --wall); empty map otherwise.
std::map<std::string, double> aggregate_mem(const yoso::json::Value& doc) {
  std::map<std::string, double> mem;
  const yoso::json::Value* events = doc.find("traceEvents");
  if (events == nullptr) return mem;
  for (const auto& ev : events->items) {
    if (ev.str_or("ph", "") != "C") continue;
    const std::string name = ev.str_or("name", "");
    if (name.rfind("mem.peak_bytes.", 0) != 0) continue;
    const yoso::json::Value* args = ev.find("args");
    const double value = args == nullptr ? 0 : args->num_or("value", 0);
    double& slot = mem[name.substr(15)];
    if (value > slot) slot = value;
  }
  return mem;
}

int cmd_summarize(const std::string& path) {
  const yoso::json::Value doc = yoso::json::parse(read_input(path));
  const auto by_name = aggregate(doc);
  std::printf("%-24s %-10s %8s %14s %14s\n", "span", "cat", "count", "total_ms", "mean_ms");
  for (const auto& [name, s] : by_name) {
    std::printf("%-24s %-10s %8zu %14.3f %14.3f\n", name.c_str(), s.cat.c_str(), s.count,
                s.total_us / 1e3, s.total_us / 1e3 / static_cast<double>(s.count));
  }

  std::vector<std::pair<std::string, NameStats>> ranked(by_name.begin(), by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us) return a.second.total_us > b.second.total_us;
    return a.first < b.first;
  });
  const std::size_t top = ranked.size() < 5 ? ranked.size() : 5;
  if (top > 0) {
    std::printf("\ntop %zu spans by total duration:\n", top);
    for (std::size_t i = 0; i < top; ++i) {
      std::printf("  %zu. %-24s %14.3f ms (%zu spans)\n", i + 1, ranked[i].first.c_str(),
                  ranked[i].second.total_us / 1e3, ranked[i].second.count);
    }
  }

  const auto ops = aggregate_ops(doc);
  if (!ops.empty()) {
    bool any_us = false;
    for (const auto& [name, s] : ops) any_us = any_us || s.self_us >= 0;
    std::printf("\n%-24s %12s", "primitive", "count");
    if (any_us) std::printf(" %14s", "total_us");
    std::printf("\n");
    for (const auto& [name, s] : ops) {
      std::printf("%-24s %12.0f", name.c_str(), s.count);
      if (any_us) {
        if (s.self_us >= 0) {
          std::printf(" %14.1f", s.self_us);
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
  }

  const auto mem = aggregate_mem(doc);
  if (!mem.empty()) {
    std::printf("\n%-24s %14s\n", "phase", "mem_peak_mib");
    for (const auto& [phase, bytes] : mem) {
      std::printf("%-24s %14.1f\n", phase.c_str(), bytes / (1024.0 * 1024.0));
    }
  }
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  const yoso::json::Value doc_a = yoso::json::parse(read_input(a_path));
  const yoso::json::Value doc_b = yoso::json::parse(read_input(b_path));

  // Traces from different obs generations (or builds with obs compiled out)
  // count different things; deltas then reflect instrumentation drift, not
  // behavior.  Warn loudly but still diff — the span table is often usable.
  const yoso::json::Value* meta_a = doc_a.find("runMeta");
  const yoso::json::Value* meta_b = doc_b.find("runMeta");
  const double gen_a = meta_a == nullptr ? -1 : meta_a->num_or("obs_generation", -1);
  const double gen_b = meta_b == nullptr ? -1 : meta_b->num_or("obs_generation", -1);
  if (gen_a != gen_b) {
    std::fprintf(stderr,
                 "trace diff: warning: obs generation mismatch (a=%s, b=%s); "
                 "op-count deltas may reflect instrumentation changes, not behavior\n",
                 gen_a < 0 ? "absent" : std::to_string(static_cast<int>(gen_a)).c_str(),
                 gen_b < 0 ? "absent" : std::to_string(static_cast<int>(gen_b)).c_str());
  }

  const auto a = aggregate(doc_a);
  const auto b = aggregate(doc_b);
  std::map<std::string, std::pair<NameStats, NameStats>> merged;
  for (const auto& [name, s] : a) merged[name].first = s;
  for (const auto& [name, s] : b) merged[name].second = s;
  std::printf("%-24s %10s %10s %14s\n", "span", "count_a", "count_b", "d_total_ms");
  bool differs = false;
  for (const auto& [name, pair] : merged) {
    const auto& [sa, sb] = pair;
    if (sa.count != sb.count || sa.total_us != sb.total_us) differs = true;
    std::printf("%-24s %10zu %10zu %14.3f\n", name.c_str(), sa.count, sb.count,
                (sb.total_us - sa.total_us) / 1e3);
  }

  // op_costs comparison: final per-primitive counts.  Counts are
  // deterministic, so any delta is a real behavioral difference.
  const auto oa = aggregate_ops(doc_a);
  const auto ob = aggregate_ops(doc_b);
  if (!oa.empty() || !ob.empty()) {
    std::map<std::string, std::pair<double, double>> op_merged;
    for (const auto& [name, s] : oa) op_merged[name].first = s.count;
    for (const auto& [name, s] : ob) op_merged[name].second = s.count;
    std::printf("\n%-24s %12s %12s %12s\n", "primitive", "count_a", "count_b", "delta");
    for (const auto& [name, pair] : op_merged) {
      if (pair.first != pair.second) differs = true;
      std::printf("%-24s %12.0f %12.0f %+12.0f\n", name.c_str(), pair.first, pair.second,
                  pair.second - pair.first);
    }
  }
  return differs ? 1 : 0;
}

int cmd_export(const std::string& path, const std::string& cat) {
  const yoso::json::Value doc = yoso::json::parse(read_input(path));
  const yoso::json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace export: missing traceEvents\n");
    return 1;
  }
  yoso::json::Writer w;
  w.begin_object();
  w.field("displayTimeUnit", doc.str_or("displayTimeUnit", "ms"));
  w.key("traceEvents").begin_array();
  std::size_t kept = 0;
  for (const auto& ev : events->items) {
    const bool meta = ev.str_or("ph", "") == "M";
    if (!meta && !cat.empty() && ev.str_or("cat", "") != cat) continue;
    yoso::json::write(w, ev);
    if (!meta) ++kept;
  }
  w.end_array();
  w.end_object();
  write_output("", w.take());
  std::fprintf(stderr, "kept %zu events\n", kept);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "run" || cmd == "costs" || cmd == "critpath") {
      RunOptions opt;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
          opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
          opt.n = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--width") == 0 && i + 1 < argc) {
          opt.width = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--degrade") == 0) {
          opt.degrade = true;
        } else if (std::strcmp(argv[i], "--wall") == 0) {
          opt.wall = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          opt.out = argv[++i];
        } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
          opt.report = argv[++i];
        } else if (std::strcmp(argv[i], "--silence") == 0 && i + 1 < argc) {
          opt.silence = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--churn") == 0 && i + 1 < argc) {
          opt.churn = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--measured") == 0) {
          opt.measured = true;
        } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
          opt.lanes = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
          opt.perfetto = argv[++i];
        } else {
          return usage();
        }
      }
      if (cmd == "critpath") return cmd_critpath(opt);
      return cmd == "run" ? cmd_run(opt) : cmd_costs(opt);
    }
    if (cmd == "check") return cmd_check(argc > 2 ? argv[2] : "");
    if (cmd == "summarize") return cmd_summarize(argc > 2 ? argv[2] : "");
    if (cmd == "diff" && argc > 3) return cmd_diff(argv[2], argv[3]);
    if (cmd == "export") {
      std::string path, cat;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cat") == 0 && i + 1 < argc) {
          cat = argv[++i];
        } else {
          path = argv[i];
        }
      }
      if (path.empty()) return usage();
      return cmd_export(path, cat);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace: %s\n", e.what());
    return 1;
  }
  return usage();
}
