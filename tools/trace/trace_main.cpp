// trace — the observability CLI over src/obs.
//
//   trace run [--seed S] [--n N] [--width W] [--degrade] [--wall]
//             [--out FILE] [--report FILE]
//       Run YosoMpc over a NetBulletin with tracing on; write the Chrome
//       trace-event JSON (stdout or --out) and, with --report, the unified
//       run report (board + metrics [+ failure]).  Deterministic: the same
//       seed yields byte-identical traces (unless --wall).
//   trace check [FILE]
//       Validate a trace document (stdin when FILE is absent); exit nonzero
//       on schema violations.
//   trace summarize [FILE]
//       Per-span-name table (count, total/mean duration, category), the
//       top-5 most expensive spans, and — when the trace carries op.count.*
//       counter tracks — a per-primitive count/total-µs table.
//   trace diff A B
//       Compare two traces by span name (count and total-duration deltas)
//       and by per-primitive op counts; exit nonzero when either differs.
//   trace costs [--seed S] [--n N] [--width W] [--degrade]
//       Run with the compute profiler on and print the per-primitive cost
//       table: calls, self-µs, µs/call, per-phase breakdown (E15's live
//       twin; docs/PROFILING.md).
//   trace export FILE --cat C
//       Re-emit a trace keeping only events of category C (plus metadata).
#include <cstdint>
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "common/json.hpp"
#include "crypto/rand.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"
#include "net/wire_faults.hpp"  // mix64
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace {

using yoso::chaos::FaultSchedule;

int usage() {
  std::fprintf(stderr,
               "usage: trace run [--seed S] [--n N] [--width W] [--degrade] [--wall]\n"
               "                 [--out FILE] [--report FILE]\n"
               "       trace check [FILE]\n"
               "       trace summarize [FILE]\n"
               "       trace diff A B\n"
               "       trace costs [--seed S] [--n N] [--width W] [--degrade]\n"
               "       trace export FILE --cat C\n");
  return 2;
}

std::string read_input(const std::string& path) {
  if (path.empty() || path == "-") {
    return std::string(std::istreambuf_iterator<char>(std::cin), {});
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

bool write_output(const std::string& path, const std::string& content) {
  if (path.empty() || path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  out << content << "\n";
  return static_cast<bool>(out);
}

std::vector<std::vector<mpz_class>> inputs_for(const yoso::Circuit& c, std::uint64_t seed) {
  yoso::Rng rng(yoso::net::mix64(seed ^ 0x10901575ULL));
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == yoso::GateKind::Input) {
      inputs[g.client].push_back(
          mpz_class(static_cast<unsigned long>(rng.u64_below(1u << 16))));
    }
  }
  return inputs;
}

struct RunOptions {
  std::uint64_t seed = 1;
  unsigned n = 6;
  unsigned width = 2;
  bool degrade = false;
  bool wall = false;
  std::string out;
  std::string report;
};

#ifndef OBS_DISABLED

struct BoardBox {
  yoso::Ledger ledger;
  yoso::net::NetBulletin board;
  explicit BoardBox(yoso::net::NetConfig cfg) : board(ledger, std::move(cfg)) {}
};

// Resets the obs singletons and replays the schedule's protocol run with
// recording on.  Shared by `trace run` and `trace costs`.
int run_traced(const RunOptions& opt, std::vector<std::unique_ptr<BoardBox>>& boards,
               std::optional<yoso::FailureReport>& failure) {
  FaultSchedule schedule;
  schedule.seed = opt.seed;
  schedule.n = opt.n;
  schedule.circuit_width = opt.width;
  schedule.degradation = opt.degrade;

  yoso::obs::tracer().reset();
  yoso::obs::metrics().reset();
  yoso::obs::timeseries().reset();
  yoso::obs::profiler().reset();
  yoso::obs::set_enabled(true);

  const yoso::Circuit circuit = schedule.circuit();
  const auto inputs = inputs_for(circuit, opt.seed);

  const auto make_board = [&](bool) -> yoso::Bulletin* {
    boards.push_back(std::make_unique<BoardBox>(schedule.net_config()));
    return &boards.back()->board;
  };

  int status = 0;
  try {
    if (opt.degrade) {
      yoso::DegradedRunResult d = yoso::run_with_degradation(
          schedule.n, schedule.eps, schedule.paillier_bits, circuit, schedule.adversary(),
          schedule.seed, make_board, inputs);
      if (d.failure) failure = *d.failure;
      if (!d.ok()) status = 1;
    } else {
      yoso::Bulletin* board = make_board(false);
      yoso::YosoMpc mpc(schedule.params(), circuit, schedule.adversary(), schedule.seed, board);
      (void)mpc.run(inputs);
    }
  } catch (const yoso::ProtocolAbort& abort) {
    if (abort.report()) failure = *abort.report();
    status = 1;
  }
  for (auto& box : boards) box->board.flush();
  return status;
}

#endif  // OBS_DISABLED

int cmd_run(const RunOptions& opt) {
#ifdef OBS_DISABLED
  (void)opt;
  std::fprintf(stderr, "trace run: built with OBS_DISABLED; no tracer available\n");
  return 1;
#else
  std::vector<std::unique_ptr<BoardBox>> boards;
  std::optional<yoso::FailureReport> failure;
  int status = run_traced(opt, boards, failure);

  const std::string trace = yoso::obs::tracer().chrome_trace_json(opt.wall);
  if (!write_output(opt.out, trace)) {
    std::fprintf(stderr, "trace run: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  if (!opt.report.empty() && !boards.empty()) {
    const std::string report = yoso::obs::run_report_json(
        boards.back()->board, failure ? &*failure : nullptr);
    if (!write_output(opt.report, report)) {
      std::fprintf(stderr, "trace run: cannot write %s\n", opt.report.c_str());
      return 1;
    }
  }
  return status;
#endif
}

int cmd_costs(const RunOptions& opt) {
#ifdef OBS_DISABLED
  (void)opt;
  std::fprintf(stderr, "trace costs: built with OBS_DISABLED; no profiler available\n");
  return 1;
#else
  std::vector<std::unique_ptr<BoardBox>> boards;
  std::optional<yoso::FailureReport> failure;
  const int status = run_traced(opt, boards, failure);

  const yoso::obs::InstrumentCell cell = yoso::obs::profiler().snapshot();
  std::printf("per-primitive compute costs (seed %llu, n=%u, width=%u):\n",
              static_cast<unsigned long long>(opt.seed), opt.n, opt.width);
  std::printf("%-24s %10s %12s %10s", "primitive", "calls", "self_us", "us/call");
  for (unsigned p = 0; p < yoso::obs::kPhaseCtxCount; ++p) {
    std::printf(" %9s", yoso::obs::phase_ctx_name(static_cast<yoso::obs::PhaseCtx>(p)));
  }
  std::printf("\n");
  for (unsigned o = 0; o < yoso::obs::kOpCount; ++o) {
    const auto op = static_cast<yoso::obs::Op>(o);
    const std::uint64_t calls = cell.op_total_count(op);
    if (calls == 0) continue;
    const double self_us = static_cast<double>(cell.op_total_self_ns(op)) / 1e3;
    std::printf("%-24s %10llu %12.1f %10.4f", yoso::obs::op_name(op),
                static_cast<unsigned long long>(calls), self_us,
                self_us / static_cast<double>(calls));
    for (unsigned p = 0; p < yoso::obs::kPhaseCtxCount; ++p) {
      std::printf(" %9llu",
                  static_cast<unsigned long long>(
                      cell.op_count(static_cast<yoso::obs::PhaseCtx>(p), op)));
    }
    std::printf("\n");
  }
  std::printf("%-24s", "phase wall (ms)");
  std::printf(" %10s %12s %10s", "", "", "");
  for (unsigned p = 0; p < yoso::obs::kPhaseCtxCount; ++p) {
    std::printf(" %9.1f",
                static_cast<double>(
                    cell.phase_wall_ns(static_cast<yoso::obs::PhaseCtx>(p))) / 1e6);
  }
  std::printf("\n");
  return status;
#endif
}

int cmd_check(const std::string& path) {
  const std::string text = read_input(path);
  std::string error;
  if (!yoso::obs::validate_trace_json(text, &error)) {
    std::fprintf(stderr, "trace check: %s\n", error.c_str());
    return 1;
  }
  const yoso::json::Value doc = yoso::json::parse(text);
  std::printf("ok: %zu events\n", doc.find("traceEvents")->items.size());
  return 0;
}

struct NameStats {
  std::size_t count = 0;
  double total_us = 0;
  std::string cat;
};

std::map<std::string, NameStats> aggregate(const yoso::json::Value& doc) {
  std::map<std::string, NameStats> by_name;
  const yoso::json::Value* events = doc.find("traceEvents");
  if (events == nullptr) return by_name;
  for (const auto& ev : events->items) {
    if (ev.str_or("ph", "") != "X") continue;
    NameStats& s = by_name[ev.str_or("name", "?")];
    s.count += 1;
    s.total_us += ev.num_or("dur", 0);
    if (s.cat.empty()) s.cat = ev.str_or("cat", "");
  }
  return by_name;
}

// Final values of the profiler's op.count.* / op.self_us.* counter tracks.
// The samples are cumulative and time-ordered per op, so "final" = last.
struct OpStats {
  double count = 0;
  double self_us = -1;  // -1: trace carried no self-time track for this op
};

std::map<std::string, OpStats> aggregate_ops(const yoso::json::Value& doc) {
  std::map<std::string, OpStats> ops;
  const yoso::json::Value* events = doc.find("traceEvents");
  if (events == nullptr) return ops;
  for (const auto& ev : events->items) {
    if (ev.str_or("ph", "") != "C") continue;
    const std::string name = ev.str_or("name", "");
    const yoso::json::Value* args = ev.find("args");
    const double value = args == nullptr ? 0 : args->num_or("value", 0);
    if (name.rfind("op.count.", 0) == 0) {
      ops[name.substr(9)].count = value;
    } else if (name.rfind("op.self_us.", 0) == 0) {
      ops[name.substr(11)].self_us = value;
    }
  }
  return ops;
}

int cmd_summarize(const std::string& path) {
  const yoso::json::Value doc = yoso::json::parse(read_input(path));
  const auto by_name = aggregate(doc);
  std::printf("%-24s %-10s %8s %14s %14s\n", "span", "cat", "count", "total_ms", "mean_ms");
  for (const auto& [name, s] : by_name) {
    std::printf("%-24s %-10s %8zu %14.3f %14.3f\n", name.c_str(), s.cat.c_str(), s.count,
                s.total_us / 1e3, s.total_us / 1e3 / static_cast<double>(s.count));
  }

  std::vector<std::pair<std::string, NameStats>> ranked(by_name.begin(), by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us) return a.second.total_us > b.second.total_us;
    return a.first < b.first;
  });
  const std::size_t top = ranked.size() < 5 ? ranked.size() : 5;
  if (top > 0) {
    std::printf("\ntop %zu spans by total duration:\n", top);
    for (std::size_t i = 0; i < top; ++i) {
      std::printf("  %zu. %-24s %14.3f ms (%zu spans)\n", i + 1, ranked[i].first.c_str(),
                  ranked[i].second.total_us / 1e3, ranked[i].second.count);
    }
  }

  const auto ops = aggregate_ops(doc);
  if (!ops.empty()) {
    bool any_us = false;
    for (const auto& [name, s] : ops) any_us = any_us || s.self_us >= 0;
    std::printf("\n%-24s %12s", "primitive", "count");
    if (any_us) std::printf(" %14s", "total_us");
    std::printf("\n");
    for (const auto& [name, s] : ops) {
      std::printf("%-24s %12.0f", name.c_str(), s.count);
      if (any_us) {
        if (s.self_us >= 0) {
          std::printf(" %14.1f", s.self_us);
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  const auto a = aggregate(yoso::json::parse(read_input(a_path)));
  const auto b = aggregate(yoso::json::parse(read_input(b_path)));
  std::map<std::string, std::pair<NameStats, NameStats>> merged;
  for (const auto& [name, s] : a) merged[name].first = s;
  for (const auto& [name, s] : b) merged[name].second = s;
  std::printf("%-24s %10s %10s %14s\n", "span", "count_a", "count_b", "d_total_ms");
  bool differs = false;
  for (const auto& [name, pair] : merged) {
    const auto& [sa, sb] = pair;
    if (sa.count != sb.count || sa.total_us != sb.total_us) differs = true;
    std::printf("%-24s %10zu %10zu %14.3f\n", name.c_str(), sa.count, sb.count,
                (sb.total_us - sa.total_us) / 1e3);
  }

  // op_costs comparison: final per-primitive counts.  Counts are
  // deterministic, so any delta is a real behavioral difference.
  const auto oa = aggregate_ops(yoso::json::parse(read_input(a_path)));
  const auto ob = aggregate_ops(yoso::json::parse(read_input(b_path)));
  if (!oa.empty() || !ob.empty()) {
    std::map<std::string, std::pair<double, double>> op_merged;
    for (const auto& [name, s] : oa) op_merged[name].first = s.count;
    for (const auto& [name, s] : ob) op_merged[name].second = s.count;
    std::printf("\n%-24s %12s %12s %12s\n", "primitive", "count_a", "count_b", "delta");
    for (const auto& [name, pair] : op_merged) {
      if (pair.first != pair.second) differs = true;
      std::printf("%-24s %12.0f %12.0f %+12.0f\n", name.c_str(), pair.first, pair.second,
                  pair.second - pair.first);
    }
  }
  return differs ? 1 : 0;
}

int cmd_export(const std::string& path, const std::string& cat) {
  const yoso::json::Value doc = yoso::json::parse(read_input(path));
  const yoso::json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace export: missing traceEvents\n");
    return 1;
  }
  yoso::json::Writer w;
  w.begin_object();
  w.field("displayTimeUnit", doc.str_or("displayTimeUnit", "ms"));
  w.key("traceEvents").begin_array();
  std::size_t kept = 0;
  for (const auto& ev : events->items) {
    const bool meta = ev.str_or("ph", "") == "M";
    if (!meta && !cat.empty() && ev.str_or("cat", "") != cat) continue;
    yoso::json::write(w, ev);
    if (!meta) ++kept;
  }
  w.end_array();
  w.end_object();
  write_output("", w.take());
  std::fprintf(stderr, "kept %zu events\n", kept);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "run" || cmd == "costs") {
      RunOptions opt;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
          opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
          opt.n = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--width") == 0 && i + 1 < argc) {
          opt.width = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--degrade") == 0) {
          opt.degrade = true;
        } else if (std::strcmp(argv[i], "--wall") == 0) {
          opt.wall = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          opt.out = argv[++i];
        } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
          opt.report = argv[++i];
        } else {
          return usage();
        }
      }
      return cmd == "run" ? cmd_run(opt) : cmd_costs(opt);
    }
    if (cmd == "check") return cmd_check(argc > 2 ? argv[2] : "");
    if (cmd == "summarize") return cmd_summarize(argc > 2 ? argv[2] : "");
    if (cmd == "diff" && argc > 3) return cmd_diff(argv[2], argv[3]);
    if (cmd == "export") {
      std::string path, cat;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cat") == 0 && i + 1 < argc) {
          cat = argv[++i];
        } else {
          path = argv[i];
        }
      }
      if (path.empty()) return usage();
      return cmd_export(path, cat);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace: %s\n", e.what());
    return 1;
  }
  return usage();
}
