// chaos — the fault-injection campaign driver.
//
//   chaos campaign [--seed S] [--count N] [--verbose]
//       Run N seeded schedules; print the summary JSON; exit nonzero when
//       any run breaks the robustness contract.
//   chaos service [--seed S] [--count N] [--verbose]
//       Like campaign, but every schedule targets an MpcService
//       (src/service): admission, queueing and the triple pool under the
//       same layered faults — pool starvation and mid-session fail-stop
//       included — checked against the same contract.
//   chaos churn [--seed S] [--count N] [--verbose]
//       WAN/churn resilience campaign: service schedules plus heterogeneous
//       link classes, background churn, the phase watchdog and the Section
//       5.4 resubmission budget, checked against the resilience contract
//       (bounded resubmission, ledger-balanced retry bytes).
//   chaos sample [--seed S] [--churn]
//       Print the schedule S deterministically expands to (no run).
//   chaos replay '<schedule-json>'
//       Re-run one schedule from its JSON reproducer; print its RunReport.
//   chaos minimize [--violation] '<schedule-json>'
//       Shrink the schedule while it keeps failing to deliver correct
//       output (with --violation: while it keeps breaking the robustness
//       contract); print the minimal reproducer.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/minimize.hpp"

namespace {

using yoso::chaos::CampaignRunner;
using yoso::chaos::FaultSchedule;
using yoso::chaos::RunReport;
using yoso::chaos::ScheduleMinimizer;

int usage() {
  std::fprintf(stderr,
               "usage: chaos campaign [--seed S] [--count N] [--verbose]\n"
               "       chaos service  [--seed S] [--count N] [--verbose]\n"
               "       chaos churn    [--seed S] [--count N] [--verbose]\n"
               "       chaos sample   [--seed S] [--churn]\n"
               "       chaos replay   '<schedule-json>'\n"
               "       chaos minimize [--violation] '<schedule-json>'\n");
  return 2;
}

struct Options {
  std::uint64_t seed = 1;
  std::size_t count = 50;
  bool verbose = false;
  bool violation = false;
  bool churn = false;
  std::string json;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      opt.count = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else if (std::strcmp(argv[i], "--violation") == 0) {
      opt.violation = true;
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      opt.churn = true;
    } else if (argv[i][0] == '{') {
      opt.json = argv[i];
    } else {
      return false;
    }
  }
  return true;
}

int cmd_campaign(const Options& opt) {
  auto summary = CampaignRunner::run_campaign(opt.seed, opt.count, [&](const RunReport& r) {
    if (opt.verbose || !r.acceptable()) std::printf("%s\n", r.to_json().c_str());
  });
  std::printf("%s\n", summary.to_json().c_str());
  return summary.all_acceptable() ? 0 : 1;
}

int cmd_service(const Options& opt) {
  auto summary =
      CampaignRunner::run_service_campaign(opt.seed, opt.count, [&](const RunReport& r) {
        if (opt.verbose || !r.acceptable()) std::printf("%s\n", r.to_json().c_str());
      });
  std::printf("%s\n", summary.to_json().c_str());
  return summary.all_acceptable() ? 0 : 1;
}

int cmd_churn(const Options& opt) {
  auto summary =
      CampaignRunner::run_churn_campaign(opt.seed, opt.count, [&](const RunReport& r) {
        if (opt.verbose || !r.acceptable()) std::printf("%s\n", r.to_json().c_str());
      });
  std::printf("%s\n", summary.to_json().c_str());
  return summary.all_acceptable() ? 0 : 1;
}

int cmd_sample(const Options& opt) {
  const FaultSchedule s =
      opt.churn ? FaultSchedule::random_churn(opt.seed) : FaultSchedule::random(opt.seed);
  std::printf("%s\n", s.to_json().c_str());
  return 0;
}

int cmd_replay(const Options& opt) {
  if (opt.json.empty()) return usage();
  RunReport r = CampaignRunner::run_one(FaultSchedule::from_json(opt.json));
  std::printf("%s\n", r.to_json().c_str());
  return r.acceptable() ? 0 : 1;
}

int cmd_minimize(const Options& opt) {
  if (opt.json.empty()) return usage();
  FaultSchedule s = FaultSchedule::from_json(opt.json);
  const bool violation = opt.violation;
  auto res = ScheduleMinimizer::minimize(s, [violation](const FaultSchedule& c) {
    RunReport r = CampaignRunner::run_one(c);
    if (violation) return !r.acceptable();
    return r.outcome != yoso::chaos::Outcome::Correct &&
           r.outcome != yoso::chaos::Outcome::Recovered;
  });
  std::fprintf(stderr, "minimized in %zu predicate runs; %u active fault dimension(s)\n",
               res.tests, res.schedule.active_faults());
  std::printf("%s\n", res.schedule.to_json().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Options opt;
  if (!parse(argc, argv, opt)) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "campaign") return cmd_campaign(opt);
    if (cmd == "service") return cmd_service(opt);
    if (cmd == "churn") return cmd_churn(opt);
    if (cmd == "sample") return cmd_sample(opt);
    if (cmd == "replay") return cmd_replay(opt);
    if (cmd == "minimize") return cmd_minimize(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos: %s\n", e.what());
    return 2;
  }
  return usage();
}
