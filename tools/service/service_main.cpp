// service — the MPC-as-a-service driver CLI.
//
//   service serve  [--sessions N] [--batch B] [--gateways G] [--seed S]
//       Run a secure-aggregation load and print one log line per session
//       (state, pool hit/miss, virtual latency) plus the service stats.
//   service load   [--sessions N] [--batch B] [--gateways G] [--seed S]
//       Run the same load headless; print the stats as one JSON line; exit
//       nonzero unless every session completed and verified.
//   service report [--sessions N] [--batch B] [--gateways G] [--seed S]
//       Run the load and print the full deterministic service report JSON
//       (config, stats, pool, per-session records, aggregate ledger).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/json.hpp"
#include "service/service.hpp"
#include "service/workloads.hpp"

namespace {

using yoso::json::Writer;
using yoso::service::AggregationConfig;
using yoso::service::AggregationWorkload;
using yoso::service::MpcService;
using yoso::service::ServiceConfig;
using yoso::service::SessionState;

int usage() {
  std::fprintf(stderr,
               "usage: service serve  [--sessions N] [--batch B] [--gateways G] [--seed S]\n"
               "       service load   [--sessions N] [--batch B] [--gateways G] [--seed S]\n"
               "       service report [--sessions N] [--batch B] [--gateways G] [--seed S]\n");
  return 2;
}

struct Options {
  std::uint64_t sessions = 20;
  std::uint64_t batch = 5'000;
  unsigned gateways = 4;
  std::uint64_t seed = 2025;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      opt.sessions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      opt.batch = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--gateways") == 0 && i + 1 < argc) {
      opt.gateways = static_cast<unsigned>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return false;
    }
  }
  return opt.sessions > 0 && opt.batch > 0 && opt.gateways > 0;
}

struct LoadResult {
  std::unique_ptr<MpcService> svc;
  AggregationWorkload workload;
  std::size_t verified = 0;
};

LoadResult run_load(const Options& opt) {
  AggregationConfig acfg;
  acfg.clients_total = opt.sessions * opt.batch;
  acfg.batch_clients = opt.batch;
  acfg.gateways = opt.gateways;
  acfg.seed = opt.seed;
  AggregationWorkload workload(acfg);

  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = opt.seed;
  cfg.max_concurrent = 4;
  cfg.max_queue = 64;
  cfg.pool.lanes = 2;
  cfg.pool.capacity = 8;
  cfg.pool_circuit = workload.session_circuit();

  LoadResult out{std::make_unique<MpcService>(cfg), workload, 0};
  for (std::uint64_t b = 0; b < opt.sessions; ++b) {
    auto batch = workload.batch(b);
    out.svc->submit_at(batch.submit_at, std::move(batch.request));
  }
  out.svc->run();
  for (std::uint64_t b = 0; b < opt.sessions; ++b) {
    if (workload.verify(workload.batch(b), out.svc->session(b + 1))) ++out.verified;
  }
  return out;
}

std::string stats_json(const MpcService& svc, std::size_t verified) {
  const auto stats = svc.stats();
  Writer w;
  w.begin_object();
  w.field("submitted", static_cast<std::uint64_t>(stats.submitted));
  w.field("completed", static_cast<std::uint64_t>(stats.completed));
  w.field("failed", static_cast<std::uint64_t>(stats.failed));
  w.field("rejected", static_cast<std::uint64_t>(stats.rejected));
  w.field("verified", static_cast<std::uint64_t>(verified));
  w.field("sessions_per_sec", stats.sessions_per_sec);
  w.field("triple_pool_hit_rate", stats.pool.hit_rate());
  w.field("session_latency_p50_s", stats.latency_p50_s);
  w.field("session_latency_p99_s", stats.latency_p99_s);
  w.field("resubmits", static_cast<std::uint64_t>(stats.resubmits));
  w.field("timeouts", static_cast<std::uint64_t>(stats.timeouts));
  w.field("recovered", static_cast<std::uint64_t>(stats.recovered));
  w.field("backoff_wait_s", stats.backoff_wait_s);
  w.field("sunk_bytes", static_cast<std::uint64_t>(stats.sunk_bytes));
  w.key("rejected_by_reason").begin_object();
  for (const auto& [reason, count] : stats.rejected_by_reason) {
    w.field(reason, static_cast<std::uint64_t>(count));
  }
  w.end_object();
  w.end_object();
  return w.take();
}

int cmd_serve(const Options& opt) {
  LoadResult r = run_load(opt);
  for (const auto& rec : r.svc->sessions()) {
    std::printf("[%8.4fs] %-14s %-9s %s latency %.4fs\n", rec->finish_s, rec->tag.c_str(),
                session_state_name(rec->state), rec->pool_hit ? "hit " : "miss",
                rec->latency_s());
  }
  std::printf("%s\n", stats_json(*r.svc, r.verified).c_str());
  return r.verified == opt.sessions ? 0 : 1;
}

int cmd_load(const Options& opt) {
  LoadResult r = run_load(opt);
  std::printf("%s\n", stats_json(*r.svc, r.verified).c_str());
  return r.verified == opt.sessions ? 0 : 1;
}

int cmd_report(const Options& opt) {
  LoadResult r = run_load(opt);
  std::printf("%s\n", r.svc->report_json().c_str());
  return r.verified == opt.sessions ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Options opt;
  if (!parse(argc, argv, opt)) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "serve") return cmd_serve(opt);
    if (cmd == "load") return cmd_load(opt);
    if (cmd == "report") return cmd_report(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "service: %s\n", e.what());
    return 2;
  }
  return usage();
}
