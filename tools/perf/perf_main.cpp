// perf — the performance observatory CLI over src/perf.
//
//   perf record [--sweep 4,6,8,12,16] [--json FILE] [--history FILE]
//               [--label STR]
//       Run the online/offline/audit/profile sweeps and merge the results
//       into the bench file (default BENCH_comm.json, keys online_comm /
//       offline_comm / scaling_audit / profile / op_costs); append a
//       timestamped snapshot to the history file (default
//       BENCH_history.jsonl, "" to skip).  Deterministic except the
//       op_costs "_us" leaves: seeded protocol runs, so two records of the
//       same sweep produce identical counts; self-times are measured.
//   perf check [--json FILE] --baseline FILE
//       Compare the recorded metrics against a committed baseline; exit
//       nonzero listing every violated tolerance (bytes +-10%, counts and
//       parameters exact, missing metric = failure).
//   perf audit [--json FILE] [--report FILE]
//       Fit the scaling_audit sweep's per-gate exponents and verdict them
//       against the paper's claimed asymptotics; re-derive the headline
//       speedup at C=1000, f=0.05.  Exit nonzero on any violated band.
//   perf trend [--history FILE]
//       Diff the last two history snapshots; list every metric that moved.
//   perf baseline [--json FILE] --out FILE
//       Seed a baseline file from the currently recorded metrics.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/report.hpp"
#include "perf/audit.hpp"
#include "perf/baseline.hpp"
#include "perf/benchfile.hpp"
#include "perf/critpath.hpp"
#include "perf/history.hpp"
#include "perf/opcosts.hpp"
#include "perf/sweep.hpp"

namespace {

using namespace yoso;

const std::vector<std::string> kBenchKeys = {"online_comm", "offline_comm", "scaling_audit",
                                             "profile", "op_costs", "critpath"};

int usage() {
  std::fprintf(stderr,
               "usage: perf record [--sweep N,N,...] [--json FILE] [--history FILE]\n"
               "                   [--label STR]\n"
               "       perf check [--json FILE] --baseline FILE\n"
               "       perf audit [--json FILE] [--report FILE]\n"
               "       perf trend [--history FILE]\n"
               "       perf baseline [--json FILE] --out FILE\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("perf: cannot open " + path);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

std::vector<unsigned> parse_sweep(const std::string& arg) {
  std::vector<unsigned> ns;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string tok = arg.substr(pos, comma - pos);
    if (!tok.empty()) ns.push_back(static_cast<unsigned>(std::strtoul(tok.c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return ns;
}

std::string utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

std::map<std::string, double> current_metrics(const std::string& json_path) {
  const json::Value doc = json::parse(read_file(json_path));
  return perf::flatten_metrics(doc, kBenchKeys);
}

int cmd_record(const std::vector<unsigned>& sweep, const std::string& json_path,
               const std::string& history_path, const std::string& label) {
  std::vector<perf::OnlinePoint> online;
  std::vector<perf::OfflinePoint> offline;
  std::vector<perf::AuditPoint> audit;
  std::vector<perf::ProfilePoint> profile;
  std::vector<perf::CritpathPoint> critpath;
  for (unsigned n : sweep) {
    std::printf("recording n=%u: online...", n);
    std::fflush(stdout);
    online.push_back(perf::run_online_point(n));
    std::printf(" offline...");
    std::fflush(stdout);
    offline.push_back(perf::run_offline_point(n));
    std::printf(" audit (k=%u)...", perf::audit_packing(n));
    std::fflush(stdout);
    audit.push_back(perf::run_audit_point(n));
    std::printf(" profile...");
    std::fflush(stdout);
    profile.push_back(perf::run_profile_point(n));
    std::printf(" critpath...");
    std::fflush(stdout);
    perf::CritpathOptions copt;
    copt.n = n;
    critpath.push_back(perf::run_critpath_point(copt));
    std::printf(" done\n");
  }
  perf::merge_bench_json(json_path, "online_comm", perf::online_comm_json(online));
  perf::merge_bench_json(json_path, "offline_comm", perf::offline_comm_json(offline));
  perf::merge_bench_json(json_path, "scaling_audit", perf::scaling_audit_json(audit));
  perf::merge_bench_json(json_path, "profile", perf::profile_sweep_json(profile));
  perf::merge_bench_json(json_path, "op_costs", perf::op_costs_sweep_json(profile));
  perf::merge_bench_json(json_path, "critpath", perf::critpath_sweep_json(critpath));
  // Self-describing header: which build / obs generation recorded the file.
  perf::merge_bench_json(json_path, "meta", obs::run_metadata_json());

  if (!history_path.empty()) {
    perf::HistorySnapshot snap;
    snap.timestamp = utc_now();
    snap.label = label;
    snap.metrics = current_metrics(json_path);
    perf::append_history(history_path, snap);
    std::printf("[%s appended: %zu metrics]\n", history_path.c_str(), snap.metrics.size());
  }
  return 0;
}

int cmd_check(const std::string& json_path, const std::string& baseline_path) {
  const auto baseline = perf::parse_baseline(json::parse(read_file(baseline_path)));
  const auto current = current_metrics(json_path);
  const perf::CheckResult result = perf::check_against_baseline(baseline, current);
  std::printf("checked %zu metrics against %s\n", result.checked, baseline_path.c_str());
  for (const perf::Mismatch& mm : result.mismatches) {
    if (mm.missing) {
      std::printf("  MISSING %-60s expected %.6g\n", mm.metric.c_str(), mm.expected);
    } else {
      const double delta =
          mm.expected != 0 ? (mm.actual - mm.expected) / mm.expected * 100.0 : 0.0;
      std::printf("  FAIL    %-60s expected %.6g got %.6g (%+.1f%%, tol %s%.0f%%)\n",
                  mm.metric.c_str(), mm.expected, mm.actual, delta,
                  mm.tolerance > 0 ? "+-" : "exact ", mm.tolerance * 100.0);
    }
  }
  if (!result.pass()) {
    std::printf("FAIL: %zu of %zu metrics out of tolerance\n", result.mismatches.size(),
                result.checked);
    return 1;
  }
  std::printf("OK: all metrics within tolerance\n");
  return 0;
}

int cmd_audit(const std::string& json_path, const std::string& report_path) {
  const json::Value doc = json::parse(read_file(json_path));
  const perf::AuditReport report = perf::audit_scaling(doc);
  if (!report.error.empty()) {
    std::fprintf(stderr, "perf audit: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("=== scaling-law audit (%s) ===\n", json_path.c_str());
  std::printf("%-36s %8s %18s %8s %16s %s\n", "series", "slope", "95% CI", "r^2", "band",
              "verdict");
  for (const obs::ExponentCheck& check : report.checks) {
    std::printf("%-36s %8.3f [%7.3f,%7.3f] %8.4f [%5.2f,%5.2f] %s\n", check.name.c_str(),
                check.fit.slope, check.fit.ci_lo, check.fit.ci_hi, check.fit.r2, check.band.lo,
                check.band.hi, check.pass ? "PASS" : "FAIL");
  }
  const obs::SpeedupDerivation& sd = report.speedup;
  if (sd.feasible) {
    std::printf("\nHeadline re-derivation at C=%.0f, f=%.2f (sortition: c=%.0f, c'=%.0f, "
                "k=%u):\n",
                sd.C, sd.f, sd.c, sd.c_prime, sd.k);
    std::printf("  measured e0=%.3f elems/mu-share, CDN %.3f elems/gate/member\n", sd.e0,
                sd.cdn_per_member);
    std::printf("  baseline %.0f vs ours %.1f elems/gate -> speedup %.0fx (floor %.0fx) %s\n",
                sd.baseline_per_gate, sd.ours_per_gate, sd.speedup, report.speedup_floor,
                sd.speedup >= report.speedup_floor ? "PASS" : "FAIL");
  } else {
    std::printf("\nHeadline re-derivation: infeasible (missing audit data)  FAIL\n");
  }
  const perf::CostModel& cm = report.cost_model;
  if (cm.ok) {
    std::printf("\nPer-phase compute cost model (phase wall ~= sum count_p * us_p):\n");
    std::printf("  %-24s %12s %12s %12s\n", "primitive", "calls", "self_us", "us/call");
    for (const perf::CostTerm& t : cm.terms) {
      if (t.count == 0) continue;
      std::printf("  %-24s %12llu %12.1f %12.4f\n", t.op.c_str(),
                  static_cast<unsigned long long>(t.count), t.self_us, t.us_per_op);
    }
    std::printf("  %-18s %4s %14s %14s %10s\n", "phase", "n", "predicted_us", "measured_us",
                "explained");
    for (const perf::CostModelRow& row : cm.rows) {
      std::printf("  %-18s %4u %14.1f %14.1f %9.1f%%\n", row.phase.c_str(), row.n,
                  row.predicted_us, row.measured_us, row.explained * 100.0);
    }
    if (cm.fit.ok) {
      std::printf("  OLS measured ~ %.3f * predicted + %.1f us  (r^2 %.4f, %zu points)\n",
                  cm.fit.slope, cm.fit.intercept, cm.fit.r2, cm.fit.points);
    }
    std::printf("  explained at n=%u: %.1f%% (floor %.0f%%)  %s\n", cm.n_max,
                cm.explained_at_n_max * 100.0, cm.explained_floor * 100.0,
                cm.pass ? "PASS" : "FAIL");
  } else {
    std::printf("\nPer-phase compute cost model: skipped (%s)\n", cm.error.c_str());
  }
  if (!report.critpath_note.empty()) {
    std::printf("\nCritical-path forecast: skipped (%s)\n", report.critpath_note.c_str());
  } else if (!report.critpath.empty()) {
    std::printf("\nCritical-path forecast gates (monotone, <= k, <= parallelism):\n");
    std::printf("  %-6s %12s %12s %9s %9s %s\n", "point", "parallelism", "max_speedup",
                "monotone", "bounded", "verdict");
    for (const perf::CritpathCheck& check : report.critpath) {
      if (!check.error.empty()) {
        std::printf("  %-6s %s  FAIL\n", check.point.c_str(), check.error.c_str());
        continue;
      }
      std::printf("  %-6s %12.2f %12.2f %9s %9s %s\n", check.point.c_str(), check.parallelism,
                  check.max_speedup, check.monotone ? "yes" : "NO",
                  check.bounded ? "yes" : "NO", check.pass() ? "PASS" : "FAIL");
    }
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::trunc | std::ios::binary);
    out << perf::audit_report_json(report) << "\n";
  }
  std::printf("\n%s\n", report.pass ? "AUDIT PASS" : "AUDIT FAIL");
  return report.pass ? 0 : 1;
}

int cmd_trend(const std::string& history_path) {
  const auto snaps = perf::load_history(history_path);
  if (snaps.size() < 2) {
    std::printf("history %s has %zu snapshot(s); need 2 for a trend\n", history_path.c_str(),
                snaps.size());
    return 0;
  }
  const perf::HistorySnapshot& prev = snaps[snaps.size() - 2];
  const perf::HistorySnapshot& last = snaps.back();
  std::printf("trend: %s (%s) -> %s (%s)\n", prev.timestamp.c_str(), prev.label.c_str(),
              last.timestamp.c_str(), last.label.c_str());
  std::size_t moved = 0;
  for (const auto& [metric, value] : last.metrics) {
    auto it = prev.metrics.find(metric);
    if (it == prev.metrics.end()) {
      std::printf("  NEW     %-60s %.6g\n", metric.c_str(), value);
      ++moved;
    } else if (it->second != value) {
      const double delta = it->second != 0 ? (value - it->second) / it->second * 100.0 : 0.0;
      std::printf("  CHANGED %-60s %.6g -> %.6g (%+.2f%%)\n", metric.c_str(), it->second,
                  value, delta);
      ++moved;
    }
  }
  for (const auto& [metric, value] : prev.metrics) {
    if (last.metrics.find(metric) == last.metrics.end()) {
      std::printf("  GONE    %-60s was %.6g\n", metric.c_str(), value);
      ++moved;
    }
  }
  if (moved == 0) std::printf("  no metric moved (%zu tracked)\n", last.metrics.size());
  return 0;
}

int cmd_baseline(const std::string& json_path, const std::string& out_path) {
  const auto metrics = current_metrics(json_path);
  std::vector<std::pair<std::string, std::string>> entries;
  for (const auto& [metric, value] : metrics) {
    json::Writer w;
    w.num(value);
    entries.emplace_back(metric, w.take());
  }
  perf::write_bench_entries(out_path, entries);
  std::printf("[%s written: %zu metrics]\n", out_path.c_str(), entries.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::string json_path = "BENCH_comm.json";
  std::string history_path = "BENCH_history.jsonl";
  std::string baseline_path, out_path, report_path, label;
  std::vector<unsigned> sweep = {4, 6, 8, 12, 16};
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--history") == 0 && i + 1 < argc) {
      history_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep = parse_sweep(argv[++i]);
    } else {
      return usage();
    }
  }
  try {
    if (cmd == "record") {
      if (sweep.empty()) return usage();
      return cmd_record(sweep, json_path, history_path, label);
    }
    if (cmd == "check") {
      if (baseline_path.empty()) return usage();
      return cmd_check(json_path, baseline_path);
    }
    if (cmd == "audit") return cmd_audit(json_path, report_path);
    if (cmd == "trend") return cmd_trend(history_path);
    if (cmd == "baseline") {
      if (out_path.empty()) return usage();
      return cmd_baseline(json_path, out_path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf: %s\n", e.what());
    return 1;
  }
  return usage();
}
