// Cross-module integration tests: every workload family through the full
// computational protocol, agreement between the packed protocol and the
// CDN baseline on identical inputs, leaky-role transparency, and the
// YOSO bulletin audit trail.
#include <gtest/gtest.h>

#include "baseline/cdn.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

std::vector<std::vector<mpz_class>> small_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(500))));
    }
  }
  return inputs;
}

struct WorkloadCase {
  const char* name;
  Circuit (*make)();
};

Circuit make_matmul() { return matmul_circuit(2); }
Circuit make_poly() { return poly_eval_circuit(2); }
Circuit make_mimc() { return mimc_circuit(2); }
Circuit make_auction() { return auction_scoring_circuit(2); }

class WorkloadSweep : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadSweep, ProtocolMatchesCleartext) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = GetParam().make();
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 7401);
  auto inputs = small_inputs(c, 7402);
  auto res = mpc.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus())) << GetParam().name;
}

TEST_P(WorkloadSweep, ProtocolMatchesCleartextUnderAttack) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = GetParam().make();
  YosoMpc mpc(params, c,
              AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::BadShare),
              7403);
  auto inputs = small_inputs(c, 7404);
  auto res = mpc.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus())) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadSweep,
                         ::testing::Values(WorkloadCase{"matmul2", make_matmul},
                                           WorkloadCase{"poly2", make_poly},
                                           WorkloadCase{"mimc2", make_mimc},
                                           WorkloadCase{"auction2", make_auction}),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(Integration, PackedAndCdnAgreeOnSameInputs) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(3);
  auto inputs = small_inputs(c, 7405);
  YosoMpc ours(params, c, AdversaryPlan::honest(params.n), 7406);
  CdnBaseline cdn(params, c, AdversaryPlan::honest(params.n), 7407);
  auto a = ours.run(inputs);
  auto b = cdn.run(inputs);
  // Different plaintext moduli, but the small values match as integers.
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(Integration, LeakyRolesBehaveLikeHonest) {
  // Honest-but-curious roles follow the protocol; execution and outputs
  // are unchanged (privacy, not correctness, is what they threaten).
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = wide_mul_circuit(2);
  auto inputs = small_inputs(c, 7408);

  AdversaryPlan plan = AdversaryPlan::honest(params.n);
  YosoMpc honest_run(params, c, plan, 7409);
  auto expected = c.eval(inputs, mpz_class(1));  // placeholder; recompute below

  YosoMpc mpc(params, c, plan, 7409);
  auto res = mpc.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus()));
}

TEST(Integration, BulletinAuditCoversAllCommittees) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = wide_mul_circuit(2);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 7410);
  mpc.run(small_inputs(c, 7411));
  const auto& log = mpc.bulletin().log();
  EXPECT_FALSE(log.empty());
  // Every offline/online committee shows up in the audit trail.
  for (const char* who : {"off.beaver.a", "off.beaver.b", "off.lambda", "off.holder.L1",
                          "off.reenc.mask", "off.reenc.holder", "on.fkd.mask",
                          "on.fkd.holder", "on.mult.L1", "on.out.holder"}) {
    EXPECT_GT(mpc.bulletin().posts_by(who), 0u) << who;
  }
  // Clients posted their inputs and the dealer its setup.
  EXPECT_GT(mpc.bulletin().posts_by("client0"), 0u);
  EXPECT_GT(mpc.bulletin().posts_by("dealer"), 0u);
}

TEST(Integration, DeterministicGivenSeed) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  auto inputs = small_inputs(c, 7412);
  YosoMpc a(params, c, AdversaryPlan::honest(params.n), 7413);
  YosoMpc b(params, c, AdversaryPlan::honest(params.n), 7413);
  auto ra = a.run(inputs);
  auto rb = b.run(inputs);
  EXPECT_EQ(ra.outputs, rb.outputs);
  EXPECT_EQ(ra.mu, rb.mu);
  EXPECT_EQ(a.ledger().total().bytes, b.ledger().total().bytes);
}

TEST(Integration, DifferentSeedsDifferentMasks) {
  // Same inputs, different protocol randomness: the public mu values (the
  // masked wire values) must differ — they carry no input information.
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = wide_mul_circuit(1);
  auto inputs = small_inputs(c, 7414);
  YosoMpc a(params, c, AdversaryPlan::honest(params.n), 7415);
  YosoMpc b(params, c, AdversaryPlan::honest(params.n), 7416);
  auto ra = a.run(inputs);
  auto rb = b.run(inputs);
  EXPECT_EQ(ra.outputs, rb.outputs);
  EXPECT_NE(ra.mu, rb.mu);  // overwhelming probability
}

TEST(Integration, LargerCommitteeHigherOfflineCost) {
  Circuit c = wide_mul_circuit(2);
  auto measure = [&](unsigned n) {
    auto params = ProtocolParams::for_gap(n, 0.25, 128);
    YosoMpc mpc(params, c, AdversaryPlan::honest(n), 7417 + n);
    mpc.run(small_inputs(c, 7418));
    return mpc.ledger().phase_total(Phase::Offline).elements;
  };
  EXPECT_LT(measure(4), measure(8));
}

TEST(Integration, DeepCircuitUnderActiveAttack) {
  // Multi-layer circuit with t malicious roles in every committee: the tsk
  // chain, the per-layer decrypts, and every mult committee must all
  // survive the adversary simultaneously.
  auto params = ProtocolParams::for_gap(5, 0.2, 128);
  Circuit c = chain_circuit(2);
  YosoMpc mpc(params, c,
              AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::BadShare),
              7421);
  auto inputs = small_inputs(c, 7422);
  auto res = mpc.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus()));
}

TEST(Integration, LedgerReportIsRenderable) {
  auto params = ProtocolParams::for_gap(4, 0.1, 128);
  Circuit c = wide_mul_circuit(1);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 7423);
  mpc.run(small_inputs(c, 7424));
  auto report = mpc.ledger().report();
  for (const char* token : {"setup", "offline", "online", "online.mult", "tsk.handover"}) {
    EXPECT_NE(report.find(token), std::string::npos) << token;
  }
}

TEST(Integration, MimcDeepCircuitManyEpochs) {
  // Depth-4 circuit: exercises a long tsk hand-over chain (L1..L4, reenc,
  // fkd, out = 6 epochs) with share-size growth.
  auto params = ProtocolParams::for_gap(5, 0.2, 128);
  Circuit c = mimc_circuit(2);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 7419);
  auto inputs = small_inputs(c, 7420);
  auto res = mpc.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus()));
  EXPECT_EQ(mpc.epochs(), c.mul_depth() + 2);
}

}  // namespace
}  // namespace yoso
