// Secret<T> taint type and the constant-time math funnel (common/ct_math).
#include <gtest/gtest.h>

#include <type_traits>

#include "common/ct_math.hpp"
#include "common/secret.hpp"
#include "crypto/rand.hpp"

namespace yoso {
namespace {

// Compile-time taint guarantees: no comparisons, no streaming, no implicit
// construction, and the trait identifies tainted types.
static_assert(!std::is_convertible_v<mpz_class, SecretMpz>,
              "Secret must not be implicitly constructible");
static_assert(!std::is_convertible_v<SecretMpz, mpz_class>,
              "Secret must not implicitly decay to its value type");
static_assert(is_secret_v<SecretMpz>);
static_assert(is_secret_v<Secret<int>>);
static_assert(!is_secret_v<mpz_class>);
static_assert(!is_secret_v<int>);

template <typename T, typename = void>
struct has_equality : std::false_type {};
template <typename T>
struct has_equality<T, std::void_t<decltype(std::declval<T>() == std::declval<T>())>>
    : std::true_type {};
static_assert(!has_equality<SecretMpz>::value, "operator== must be deleted");

template <typename T, typename = void>
struct streamable : std::false_type {};
template <typename T>
struct streamable<T, std::void_t<decltype(std::declval<std::ostream&>() << std::declval<T>())>>
    : std::true_type {};
static_assert(!streamable<SecretMpz>::value, "operator<< must be deleted");
static_assert(streamable<int>::value, "detection idiom sanity check");

TEST(SecretTest, DeclassifyRoundTrips) {
  mpz_class v("123456789123456789123456789");
  SecretMpz s(v);
  EXPECT_EQ(s.declassify(), v);
}

TEST(SecretTest, ArithmeticPropagatesTaint) {
  SecretMpz a(mpz_class(10)), b(mpz_class(4));
  static_assert(is_secret_v<decltype(a + b)>);
  static_assert(is_secret_v<decltype(a - b)>);
  static_assert(is_secret_v<decltype(a * b)>);
  static_assert(is_secret_v<decltype(a + mpz_class(1))>);
  static_assert(is_secret_v<decltype(mpz_class(2) * a)>);
  static_assert(is_secret_v<decltype(a % mpz_class(3))>);
  EXPECT_EQ((a + b).declassify(), 14);
  EXPECT_EQ((a - b).declassify(), 6);
  EXPECT_EQ((a * b).declassify(), 40);
  EXPECT_EQ((a % mpz_class(3)).declassify(), 1);
  a += b;
  EXPECT_EQ(a.declassify(), 14);
  a *= b;
  EXPECT_EQ(a.declassify(), 56);
}

TEST(CtMathTest, PowmSecMatchesPowmOnRandomInputs) {
  Rng rng(420);
  for (int trial = 0; trial < 50; ++trial) {
    mpz_class mod = rng.below(mpz_class(1) << 256) | 1;  // odd, as required
    if (mod < 3) mod = 3;
    mpz_class base = rng.below(mod);
    mpz_class exp = rng.below(mpz_class(1) << 200);
    mpz_class expected;
    mpz_powm(expected.get_mpz_t(), base.get_mpz_t(), exp.get_mpz_t(), mod.get_mpz_t());

    EXPECT_EQ(powm_sec(base, SecretMpz(exp), mod), expected) << "trial " << trial;
    EXPECT_EQ(powm_sec(SecretMpz(base), exp, mod).declassify(), expected) << "trial " << trial;
    EXPECT_EQ(powm_pub(base, exp, mod), expected) << "trial " << trial;
  }
}

TEST(CtMathTest, PowmSecHandlesZeroExponent) {
  mpz_class mod = 101;
  EXPECT_EQ(powm_sec(mpz_class(7), SecretMpz(mpz_class(0)), mod), 1);
  EXPECT_EQ(powm_sec(mpz_class(7), SecretMpz(mpz_class(0)), mpz_class(1)), 0);  // 1 % 1
}

TEST(CtMathTest, PowmSecHandlesNegativeExponent) {
  // GMP semantics: base^{-e} = (base^{-1})^e mod m.
  mpz_class mod = 101, base = 7, exp = -5;
  mpz_class expected;
  mpz_powm(expected.get_mpz_t(), base.get_mpz_t(), exp.get_mpz_t(), mod.get_mpz_t());
  EXPECT_EQ(powm_sec(base, SecretMpz(exp), mod), expected);
}

TEST(CtMathTest, PowmSecRejectsEvenModulus) {
  EXPECT_THROW(powm_sec(mpz_class(3), SecretMpz(mpz_class(5)), mpz_class(100)),
               std::invalid_argument);
}

TEST(CtMathTest, ModInverseAgreesWithGmp) {
  Rng rng(421);
  mpz_class m = rng.prime(128);
  for (int trial = 0; trial < 20; ++trial) {
    mpz_class a = rng.below(m - 1) + 1;
    mpz_class expected;
    ASSERT_NE(mpz_invert(expected.get_mpz_t(), a.get_mpz_t(), m.get_mpz_t()), 0);
    EXPECT_EQ(mod_inverse(a, m), expected);
  }
  EXPECT_THROW(mod_inverse(mpz_class(6), mpz_class(9)), std::domain_error);
}

TEST(CtMathTest, CtSelectU64) {
  EXPECT_EQ(ct_select_u64(ct_mask_u64(true), 7u, 9u), 7u);
  EXPECT_EQ(ct_select_u64(ct_mask_u64(false), 7u, 9u), 9u);
}

}  // namespace
}  // namespace yoso
