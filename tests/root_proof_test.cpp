#include <gtest/gtest.h>

#include "nizk/root_proof.hpp"

namespace yoso {
namespace {

class RootProofTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(7301);
    sk_ = new PaillierSK(paillier_keygen(192, 2, *rng_, /*safe_primes=*/false));
  }
  static void TearDownTestSuite() {
    delete sk_;
    delete rng_;
    sk_ = nullptr;
    rng_ = nullptr;
  }
  static Rng* rng_;
  static PaillierSK* sk_;
};

Rng* RootProofTest::rng_ = nullptr;
PaillierSK* RootProofTest::sk_ = nullptr;

TEST_F(RootProofTest, AcceptsEncryptionOfZero) {
  mpz_class u = sk_->pk.enc(mpz_class(0), *rng_);
  SecretMpz rho = sk_->extract_root(u);
  auto proof = prove_root(sk_->pk, u, rho, *rng_);
  EXPECT_TRUE(verify_root(sk_->pk, u, proof));
}

TEST_F(RootProofTest, ExtractRootIsARoot) {
  mpz_class u = sk_->pk.enc(mpz_class(0), *rng_);
  SecretMpz rho = sk_->extract_root(u);
  mpz_class check;
  mpz_powm(check.get_mpz_t(), rho.declassify().get_mpz_t(), sk_->pk.ns.get_mpz_t(),
           sk_->pk.ns1.get_mpz_t());
  EXPECT_EQ(check, u % sk_->pk.ns1);
}

TEST_F(RootProofTest, HomomorphicDifferenceOfEqualPlaintexts) {
  // The protocol's use: c1, c2 encrypt the same value => c1/c2 encrypts 0.
  mpz_class m = rng_->below(sk_->pk.ns);
  mpz_class c1 = sk_->pk.enc(m, *rng_);
  mpz_class c2 = sk_->pk.enc(m, mpz_class(1));  // deterministic Enc(m;1)
  mpz_class c2_inv;
  ASSERT_NE(mpz_invert(c2_inv.get_mpz_t(), c2.get_mpz_t(), sk_->pk.ns1.get_mpz_t()), 0);
  mpz_class u = c1 * c2_inv % sk_->pk.ns1;
  SecretMpz rho = sk_->extract_root(u);
  auto proof = prove_root(sk_->pk, u, rho, *rng_);
  EXPECT_TRUE(verify_root(sk_->pk, u, proof));
}

TEST_F(RootProofTest, RejectsNonZeroPlaintext) {
  // u encrypts 1: no N^s-th root exists; a cheating prover with a random
  // "root" must fail.
  mpz_class u = sk_->pk.enc(mpz_class(1), *rng_);
  auto proof = prove_root(sk_->pk, u, SecretMpz(rng_->unit_mod(sk_->pk.n)), *rng_);
  EXPECT_FALSE(verify_root(sk_->pk, u, proof));
}

TEST_F(RootProofTest, RejectsTamperedResponse) {
  mpz_class u = sk_->pk.enc(mpz_class(0), *rng_);
  auto proof = prove_root(sk_->pk, u, sk_->extract_root(u), *rng_);
  proof.z = proof.z * 2 % sk_->pk.ns1;
  EXPECT_FALSE(verify_root(sk_->pk, u, proof));
}

TEST_F(RootProofTest, ProofBoundToStatement) {
  mpz_class u1 = sk_->pk.enc(mpz_class(0), *rng_);
  mpz_class u2 = sk_->pk.enc(mpz_class(0), *rng_);
  auto proof = prove_root(sk_->pk, u1, sk_->extract_root(u1), *rng_);
  EXPECT_FALSE(verify_root(sk_->pk, u2, proof));
}

TEST_F(RootProofTest, RejectsOutOfRangeStatement) {
  mpz_class u = sk_->pk.enc(mpz_class(0), *rng_);
  auto proof = prove_root(sk_->pk, u, sk_->extract_root(u), *rng_);
  EXPECT_FALSE(verify_root(sk_->pk, u + sk_->pk.ns1, proof));
  EXPECT_FALSE(verify_root(sk_->pk, mpz_class(0), proof));
}

TEST_F(RootProofTest, WireBytesPositive) {
  mpz_class u = sk_->pk.enc(mpz_class(0), *rng_);
  auto proof = prove_root(sk_->pk, u, sk_->extract_root(u), *rng_);
  EXPECT_GT(proof.wire_bytes(), 0u);
}

TEST(PaillierFromFactor, ReconstructsWorkingKey) {
  Rng rng(7302);
  PaillierSK orig = paillier_keygen(160, 2, rng, false);
  for (const mpz_class& factor : {orig.p, orig.q}) {
    PaillierSK rebuilt = paillier_sk_from_factor(orig.pk, factor);
    mpz_class m = rng.below(orig.pk.ns);
    EXPECT_EQ(rebuilt.dec(orig.pk.enc(m, rng)), m);
  }
}

TEST(PaillierFromFactor, RejectsNonFactor) {
  Rng rng(7303);
  PaillierSK orig = paillier_keygen(128, 1, rng, false);
  EXPECT_THROW(paillier_sk_from_factor(orig.pk, mpz_class(12345)), std::invalid_argument);
  EXPECT_THROW(paillier_sk_from_factor(orig.pk, mpz_class(1)), std::invalid_argument);
}

}  // namespace
}  // namespace yoso
