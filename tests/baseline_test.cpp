#include <gtest/gtest.h>

#include "baseline/cdn.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

std::vector<std::vector<mpz_class>> small_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1000))));
    }
  }
  return inputs;
}

TEST(CdnBaseline, HonestCorrectness) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  CdnBaseline cdn(params, c, AdversaryPlan::honest(params.n), 201);
  auto inputs = small_inputs(c, 1);
  auto res = cdn.run(inputs);
  auto expected = c.eval(inputs, cdn.plaintext_modulus());
  ASSERT_EQ(res.outputs.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(res.outputs[i], expected[i]);
}

TEST(CdnBaseline, DeepCircuit) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = chain_circuit(3);
  CdnBaseline cdn(params, c, AdversaryPlan::honest(params.n), 202);
  auto inputs = small_inputs(c, 2);
  auto res = cdn.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, cdn.plaintext_modulus()));
}

TEST(CdnBaseline, GodUnderMaliciousAdversary) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = wide_mul_circuit(2);
  CdnBaseline cdn(params, c,
                  AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::BadShare),
                  203);
  auto inputs = small_inputs(c, 3);
  auto res = cdn.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, cdn.plaintext_modulus()));
}

TEST(CdnBaseline, OnlinePerGateCostScalesWithN) {
  // The paper's comparison: CDN online communication grows linearly in the
  // committee size, ours stays flat.  Measure online broadcast elements per
  // gate for two committee sizes at the same circuit.
  Circuit c = wide_mul_circuit(4);
  auto measure = [&](unsigned n) {
    auto params = ProtocolParams::for_gap(n, 0.2, 128);
    CdnBaseline cdn(params, c, AdversaryPlan::honest(n), 204 + n);
    cdn.run(small_inputs(c, 4));
    return cdn.ledger().categories(Phase::Online).at("cdn.mult.pdec").elements;
  };
  auto small = measure(4);
  auto large = measure(8);
  // Elements scale ~ n (8 vs 4 partials per decryption).
  EXPECT_GE(large, 2 * small - 2);
}

TEST(CdnBaseline, OnlineElementsExceedPackedProtocol) {
  // Head-to-head on the same wide circuit: the packed protocol's online
  // mult traffic is smaller than the baseline's.
  auto params = ProtocolParams::for_gap(8, 0.25, 128);
  Circuit c = wide_mul_circuit(8);
  CdnBaseline cdn(params, c, AdversaryPlan::honest(params.n), 205);
  cdn.run(small_inputs(c, 5));
  auto cdn_mult = cdn.ledger().categories(Phase::Online).at("cdn.mult.pdec").elements;

  YosoMpc ours(params, c, AdversaryPlan::honest(params.n), 206);
  ours.run(small_inputs(c, 5));
  auto our_mult = ours.ledger().categories(Phase::Online).at("online.mult").elements;
  EXPECT_LT(our_mult, cdn_mult);
}

TEST(CdnBaseline, EvaluateTwiceThrows) {
  auto params = ProtocolParams::for_gap(4, 0.1, kBits);
  Circuit c = wide_mul_circuit(1);
  CdnBaseline cdn(params, c, AdversaryPlan::honest(params.n), 207);
  auto inputs = small_inputs(c, 6);
  cdn.run(inputs);
  EXPECT_THROW(cdn.evaluate(inputs), std::logic_error);
}

}  // namespace
}  // namespace yoso
