// Tests for the scaling-law auditor (src/obs/scaling + src/perf/audit):
// the log-log fitter must recover synthetic O(1) / O(n) / O(n log n)
// exponents with honest confidence bands, the band check must be inclusive
// and reject out-of-band slopes, the headline 28x ratio must re-derive
// from measured-style coefficients, and a synthetic sweep that violates
// the paper's claim must fail the audit.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/json.hpp"
#include "obs/scaling.hpp"
#include "perf/audit.hpp"
#include "perf/baseline.hpp"

namespace yoso {
namespace {

using obs::check_exponent;
using obs::ExponentCheck;
using obs::fit_power_law;
using obs::PowerFit;
using obs::SpeedupDerivation;

// --- fit_power_law ----------------------------------------------------------

TEST(PowerFit, RecoversPureQuadratic) {
  std::vector<double> x = {2, 4, 8, 16, 32};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * v * v);
  PowerFit fit = fit_power_law(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, std::log(3.0), 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_LT(fit.se_slope, 1e-9);
  EXPECT_LE(fit.ci_lo, fit.slope);
  EXPECT_GE(fit.ci_hi, fit.slope);
}

TEST(PowerFit, RecoversFlatSeries) {
  std::vector<double> x = {4, 6, 8, 12, 16};
  std::vector<double> y(x.size(), 5.0);  // O(1)
  PowerFit fit = fit_power_law(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);  // degenerate: no variance to explain
}

TEST(PowerFit, RecoversLinearSeries) {
  std::vector<double> x = {4, 6, 8, 12, 16};
  std::vector<double> y;
  for (double v : x) y.push_back(7.5 * v);  // O(n)
  PowerFit fit = fit_power_law(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

TEST(PowerFit, NLogNFitsBetweenLinearAndQuadratic) {
  std::vector<double> x = {4, 8, 16, 32, 64};
  std::vector<double> y;
  for (double v : x) y.push_back(v * std::log2(v));  // O(n log n)
  PowerFit fit = fit_power_law(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_GT(fit.slope, 1.05);
  EXPECT_LT(fit.slope, 1.5);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(PowerFit, RejectsDegenerateInput) {
  EXPECT_FALSE(fit_power_law({1, 2}, {1, 2}).ok);            // too few points
  EXPECT_FALSE(fit_power_law({1, 2, 3}, {1, 2}).ok);         // length mismatch
  EXPECT_FALSE(fit_power_law({1, 2, 3}, {1, 0, 2}).ok);      // nonpositive y
  EXPECT_FALSE(fit_power_law({-1, 2, 3}, {1, 2, 3}).ok);     // nonpositive x
  EXPECT_FALSE(fit_power_law({2, 2, 2}, {1, 2, 3}).ok);      // no x variance
}

TEST(PowerFit, ConfidenceBandWidensWithNoise) {
  std::vector<double> x = {4, 6, 8, 12, 16};
  std::vector<double> clean, noisy;
  for (std::size_t i = 0; i < x.size(); ++i) {
    clean.push_back(10.0 * x[i]);
    noisy.push_back(10.0 * x[i] * (i % 2 == 0 ? 1.3 : 0.75));
  }
  PowerFit f_clean = fit_power_law(x, clean);
  PowerFit f_noisy = fit_power_law(x, noisy);
  ASSERT_TRUE(f_clean.ok);
  ASSERT_TRUE(f_noisy.ok);
  EXPECT_GT(f_noisy.ci_hi - f_noisy.ci_lo, f_clean.ci_hi - f_clean.ci_lo);
  EXPECT_LT(f_noisy.r2, f_clean.r2);
}

TEST(TCritical, MatchesStudentTable) {
  EXPECT_DOUBLE_EQ(obs::t_critical_975(0), 0.0);
  EXPECT_DOUBLE_EQ(obs::t_critical_975(1), 12.706);
  EXPECT_DOUBLE_EQ(obs::t_critical_975(3), 3.182);
  EXPECT_DOUBLE_EQ(obs::t_critical_975(10), 2.228);
  EXPECT_DOUBLE_EQ(obs::t_critical_975(11), 1.96);
  EXPECT_DOUBLE_EQ(obs::t_critical_975(1000), 1.96);
}

// --- check_exponent ---------------------------------------------------------

TEST(ExponentCheckTest, BandIsInclusiveAndRejectsOutliers) {
  std::vector<double> x = {4, 6, 8, 12, 16};
  std::vector<double> linear;
  for (double v : x) linear.push_back(2.0 * v);

  EXPECT_TRUE(check_exponent("lin", x, linear, {0.85, 1.25}).pass);
  EXPECT_TRUE(check_exponent("lin-edge", x, linear, {1.0, 1.25}).pass);   // lo == slope
  EXPECT_FALSE(check_exponent("lin-low", x, linear, {-0.15, 0.15}).pass);  // flat claim
  EXPECT_FALSE(check_exponent("lin-high", x, linear, {1.5, 2.5}).pass);

  ExponentCheck bad = check_exponent("degenerate", {1, 2}, {1, 2}, {0, 1});
  EXPECT_FALSE(bad.pass);  // unusable fit never passes
}

// --- derive_packed_speedup --------------------------------------------------

TEST(Speedup, RederivesHeadlineRatioFromMeasuredCoefficients) {
  // Measured coefficients of the audit sweep's largest point: e0 = 1
  // element per mu-share (ours posts n/k shares per gate), CDN posts 2
  // partials per gate per member.
  const unsigned n = 16, k = 4;
  SpeedupDerivation d =
      obs::derive_packed_speedup(1000, 0.05, 1.0 * n / k, 2.0 * n, n, k);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.k, 28u);  // the paper's packing factor at C=1000, f=0.05
  EXPECT_NEAR(d.e0, 1.0, 1e-9);
  EXPECT_NEAR(d.cdn_per_member, 2.0, 1e-9);
  EXPECT_GE(d.speedup, 28.0);  // the paper's floor
  EXPECT_NEAR(d.speedup, 2.0 * d.k, 0.15 * 2.0 * d.k);  // ~2k bracketing
}

TEST(Speedup, InfeasibleOnMissingData) {
  EXPECT_FALSE(obs::derive_packed_speedup(1000, 0.05, 0, 2.0, 16, 4).feasible);
  EXPECT_FALSE(obs::derive_packed_speedup(1000, 0.05, 4.0, 2.0, 0, 4).feasible);
  EXPECT_FALSE(obs::derive_packed_speedup(1000, 0.05, 4.0, 2.0, 16, 0).feasible);
}

// --- audit_scaling on synthetic sweeps --------------------------------------

// A synthetic scaling_audit key: ours online bytes/gate grow as
// n^ours_exponent, CDN linear, offline linear — with coefficients shaped
// like the real measurements (e0 = 1, CDN 2 partials/gate/member).
json::Value audit_fixture(double ours_exponent) {
  std::ostringstream ss;
  ss << "{\"scaling_audit\":{";
  bool first = true;
  for (unsigned n : {4u, 6u, 8u, 12u, 16u}) {
    const unsigned k = (n + 2) / 4 == 0 ? 1 : (n + 2) / 4;
    const unsigned gates = 4 * n;
    const double ours_bytes = 100.0 * std::pow(n, ours_exponent) * gates;
    const double ours_elems = static_cast<double>(n) / k * gates;  // e0 = 1
    const double cdn_elems = 2.0 * n * gates;
    const double cdn_bytes = 32.0 * cdn_elems;
    const double offline_bytes = 1000.0 * n * gates;
    if (!first) ss << ",";
    first = false;
    ss << "\"n" << n << "\":{\"t\":1,\"k\":" << k << ",\"gates\":" << gates
       << ",\"ours\":{\"online\":{\"categories\":{\"online.mult\":{\"bytes\":" << ours_bytes
       << ",\"elements\":" << ours_elems << "}}},\"offline\":{\"total\":{\"bytes\":"
       << offline_bytes << "}}},\"cdn\":{\"online\":{\"categories\":{\"cdn.mult.pdec\":"
       << "{\"bytes\":" << cdn_bytes << ",\"elements\":" << cdn_elems << "}}}}}";
  }
  ss << "}}";
  return json::parse(ss.str());
}

TEST(AuditScaling, PassesOnClaimConformingSweep) {
  perf::AuditReport report = perf::audit_scaling(audit_fixture(0.0));
  EXPECT_TRUE(report.error.empty());
  ASSERT_EQ(report.checks.size(), 3u);
  EXPECT_TRUE(report.checks[0].pass) << report.checks[0].fit.slope;  // ours ~flat
  EXPECT_TRUE(report.checks[1].pass) << report.checks[1].fit.slope;  // cdn ~linear
  EXPECT_TRUE(report.checks[2].pass) << report.checks[2].fit.slope;  // offline ~linear
  EXPECT_TRUE(report.speedup.feasible);
  EXPECT_GE(report.speedup.speedup, report.speedup_floor);
  EXPECT_TRUE(report.pass);

  // The machine-readable verdict parses and agrees.
  const json::Value doc = json::parse(perf::audit_report_json(report));
  EXPECT_TRUE(doc.find("pass")->boolean);
  EXPECT_EQ(doc.find("checks")->items.size(), 3u);
}

TEST(AuditScaling, FailsWhenOnlineCostGrows) {
  // A sweep where our online cost secretly grows as n^0.5 — the flat-claim
  // band [-0.15, 0.15] must catch it and fail the whole audit.
  perf::AuditReport report = perf::audit_scaling(audit_fixture(0.5));
  ASSERT_EQ(report.checks.size(), 3u);
  EXPECT_FALSE(report.checks[0].pass);
  EXPECT_NEAR(report.checks[0].fit.slope, 0.5, 0.05);
  EXPECT_FALSE(report.pass);
  EXPECT_FALSE(json::parse(perf::audit_report_json(report)).find("pass")->boolean);
}

TEST(AuditScaling, ReportsUnusableData) {
  EXPECT_FALSE(perf::audit_scaling(json::parse("{}")).error.empty());
  EXPECT_FALSE(
      perf::audit_scaling(json::parse(R"({"scaling_audit":{"n4":{}}})")).error.empty());
}

}  // namespace
}  // namespace yoso
