// ct_equal: constant-time comparison agrees with memcmp on every input.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/ct.hpp"
#include "crypto/prg.hpp"
#include "crypto/rand.hpp"
#include "crypto/sha256.hpp"

namespace yoso {
namespace {

TEST(CtEqualTest, AgreesWithMemcmpOnRandomVectors) {
  Prg prg(0xC7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 1 + trial % 64;
    std::vector<std::uint8_t> a(len), b(len);
    prg.bytes(a.data(), len);
    if (trial % 3 == 0) {
      b = a;  // force the equal case regularly
    } else {
      prg.bytes(b.data(), len);
    }
    EXPECT_EQ(ct_equal(a.data(), b.data(), len), std::memcmp(a.data(), b.data(), len) == 0)
        << "trial " << trial;
  }
}

TEST(CtEqualTest, SingleBitFlipAnywhereDetected) {
  std::vector<std::uint8_t> a(32, 0xAB);
  for (std::size_t byte = 0; byte < a.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> b = a;
      b[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(ct_equal(a, b));
    }
  }
  EXPECT_TRUE(ct_equal(a, a));
}

TEST(CtEqualTest, VectorOverloadSizeMismatchIsFalse) {
  std::vector<std::uint8_t> a{1, 2, 3}, b{1, 2, 3, 4};
  EXPECT_FALSE(ct_equal(a, b));
  EXPECT_TRUE(ct_equal(std::vector<std::uint8_t>{}, std::vector<std::uint8_t>{}));
}

TEST(CtEqualTest, DigestOverload) {
  const char* msg = "yoso packed mpc";
  Sha256::Digest d1 = Sha256::hash(msg, std::strlen(msg));
  Sha256::Digest d2 = Sha256::hash(msg, std::strlen(msg));
  EXPECT_TRUE(ct_equal(d1, d2));
  d2[31] ^= 1;
  EXPECT_FALSE(ct_equal(d1, d2));
}

TEST(CtEqualTest, MpzOverloadUsesCanonicalEncoding) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    mpz_class a = rng.below(mpz_class(1) << 512);
    mpz_class b = trial % 2 == 0 ? a : rng.below(mpz_class(1) << 512);
    EXPECT_EQ(ct_equal(a, b), a == b) << "trial " << trial;
  }
  EXPECT_TRUE(ct_equal(mpz_class(0), mpz_class(0)));
  EXPECT_FALSE(ct_equal(mpz_class(0), mpz_class(1)));
}

TEST(CtEqualTest, ZeroLengthIsEqual) { EXPECT_TRUE(ct_equal(nullptr, nullptr, 0)); }

}  // namespace
}  // namespace yoso
