#include <gtest/gtest.h>

#include "crypto/rand.hpp"
#include "paillier/paillier.hpp"

namespace yoso {
namespace {

// Small moduli keep the suite fast; correctness is modulus-size independent.
constexpr unsigned kBits = 192;

class PaillierTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(1001);
    sk_ = new PaillierSK(paillier_keygen(kBits, 1, *rng_));
  }
  static void TearDownTestSuite() {
    delete sk_;
    delete rng_;
    sk_ = nullptr;
    rng_ = nullptr;
  }
  static Rng* rng_;
  static PaillierSK* sk_;
};

Rng* PaillierTest::rng_ = nullptr;
PaillierSK* PaillierTest::sk_ = nullptr;

TEST_F(PaillierTest, EncDecRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    mpz_class m = rng_->below(sk_->pk.ns);
    mpz_class c = sk_->pk.enc(m, *rng_);
    EXPECT_EQ(sk_->dec(c), m);
  }
}

TEST_F(PaillierTest, DecryptsZeroAndEdges) {
  EXPECT_EQ(sk_->dec(sk_->pk.enc(mpz_class(0), *rng_)), 0);
  EXPECT_EQ(sk_->dec(sk_->pk.enc(mpz_class(1), *rng_)), 1);
  mpz_class top = sk_->pk.ns - 1;
  EXPECT_EQ(sk_->dec(sk_->pk.enc(top, *rng_)), top);
}

TEST_F(PaillierTest, NegativePlaintextWrapsModNs) {
  mpz_class c = sk_->pk.enc(mpz_class(-5), *rng_);
  EXPECT_EQ(sk_->dec(c), sk_->pk.ns - 5);
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  mpz_class a = rng_->below(sk_->pk.ns), b = rng_->below(sk_->pk.ns);
  mpz_class c = sk_->pk.add(sk_->pk.enc(a, *rng_), sk_->pk.enc(b, *rng_));
  EXPECT_EQ(sk_->dec(c), (a + b) % sk_->pk.ns);
}

TEST_F(PaillierTest, ScalarMultiplication) {
  mpz_class a = rng_->below(sk_->pk.ns);
  mpz_class k = rng_->below(mpz_class(1) << 64);
  mpz_class c = sk_->pk.scal(sk_->pk.enc(a, *rng_), k);
  EXPECT_EQ(sk_->dec(c), a * k % sk_->pk.ns);
}

TEST_F(PaillierTest, NegativeScalar) {
  mpz_class a = 7;
  mpz_class c = sk_->pk.scal(sk_->pk.enc(a, *rng_), mpz_class(-3));
  EXPECT_EQ(sk_->dec(c), sk_->pk.ns - 21);
}

TEST_F(PaillierTest, RerandomizePreservesPlaintextChangesCiphertext) {
  mpz_class a = 12345;
  mpz_class c = sk_->pk.enc(a, *rng_);
  mpz_class c2 = sk_->pk.rerandomize(c, *rng_);
  EXPECT_NE(c, c2);
  EXPECT_EQ(sk_->dec(c2), a);
}

TEST_F(PaillierTest, EvalComputesLinearCombination) {
  std::vector<mpz_class> ms{3, 5, 7}, coeffs{2, 11, 1};
  std::vector<mpz_class> cts;
  for (const auto& m : ms) cts.push_back(sk_->pk.enc(m, *rng_));
  mpz_class c = sk_->pk.eval(cts, coeffs);
  EXPECT_EQ(sk_->dec(c), 3 * 2 + 5 * 11 + 7 * 1);
}

TEST_F(PaillierTest, EvalSizeMismatchThrows) {
  std::vector<mpz_class> cts{sk_->pk.enc(mpz_class(1), *rng_)};
  std::vector<mpz_class> coeffs{1, 2};
  EXPECT_THROW(sk_->pk.eval(cts, coeffs), std::invalid_argument);
}

TEST_F(PaillierTest, DeterministicEncryptionMatches) {
  mpz_class r = rng_->unit_mod(sk_->pk.n);
  EXPECT_EQ(sk_->pk.enc(mpz_class(9), r), sk_->pk.enc(mpz_class(9), r));
}

TEST_F(PaillierTest, ValidCiphertextChecks) {
  mpz_class c = sk_->pk.enc(mpz_class(5), *rng_);
  EXPECT_TRUE(sk_->pk.valid_ciphertext(c));
  EXPECT_FALSE(sk_->pk.valid_ciphertext(mpz_class(0)));
  EXPECT_FALSE(sk_->pk.valid_ciphertext(sk_->pk.ns1));
  EXPECT_FALSE(sk_->pk.valid_ciphertext(sk_->pk.n));  // shares a factor
}

TEST_F(PaillierTest, CiphertextBytesSane) {
  EXPECT_GE(sk_->pk.ciphertext_bytes() * 8, 2 * kBits - 8);
}

TEST(PaillierDJ, HigherSWidensPlaintextSpace) {
  Rng rng(1002);
  for (unsigned s : {2u, 3u}) {
    PaillierSK sk = paillier_keygen(128, s, rng, /*safe_primes=*/false);
    mpz_class big = sk.pk.ns - 12345;  // needs the full N^s range
    mpz_class c = sk.pk.enc(big, rng);
    EXPECT_EQ(sk.dec(c), big) << "s=" << s;
    // Homomorphism still holds at higher s.
    mpz_class c2 = sk.pk.add(c, sk.pk.enc(mpz_class(12345), rng));
    EXPECT_EQ(sk.dec(c2), 0) << "s=" << s;
  }
}

TEST(PaillierDJ, DlogExtractionConsistency) {
  Rng rng(1003);
  PaillierSK sk = paillier_keygen(96, 2, rng, /*safe_primes=*/false);
  mpz_class m = rng.below(sk.pk.ns);
  mpz_class u;
  mpz_class base = sk.pk.n + 1;
  mpz_powm(u.get_mpz_t(), base.get_mpz_t(), m.get_mpz_t(), sk.pk.ns1.get_mpz_t());
  EXPECT_EQ(dlog_1pn(sk.pk, u), m);
}

TEST(PaillierDJ, DlogRejectsNonPower) {
  Rng rng(1004);
  PaillierSK sk = paillier_keygen(96, 1, rng, /*safe_primes=*/false);
  EXPECT_THROW(dlog_1pn(sk.pk, mpz_class(2)), std::domain_error);
}

TEST(PaillierKeygen, RejectsBadParams) {
  Rng rng(1005);
  EXPECT_THROW(paillier_keygen(64, 0, rng), std::invalid_argument);
  EXPECT_THROW(paillier_keygen(16, 1, rng), std::invalid_argument);
}

TEST(PaillierKeygen, KeyStructure) {
  Rng rng(1006);
  PaillierSK sk = paillier_keygen(128, 1, rng, /*safe_primes=*/false);
  EXPECT_EQ(sk.pk.n, sk.p * sk.q);
  EXPECT_EQ(sk.pk.ns, sk.pk.n);
  EXPECT_EQ(sk.pk.ns1, sk.pk.n * sk.pk.n);
  EXPECT_EQ(sk.d.declassify() % sk.pk.ns, 1);
  EXPECT_EQ(sk.d.declassify() % sk.m_order, 0);
}

}  // namespace
}  // namespace yoso
