// WAN/churn resilience tests: named link classes and heterogeneous
// per-member profiles, the deterministic background-churn process, the
// self-healing service (phase watchdog, Section 5.4 resubmission with
// capped backoff, ledger-visible retry bytes), adaptive pool sizing and
// lane restart, per-reason rejection counters, and the minimizer's churn /
// link-class dimensions.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "chaos/campaign.hpp"
#include "chaos/minimize.hpp"
#include "circuit/workloads.hpp"
#include "net/net_bulletin.hpp"
#include "service/service.hpp"

namespace yoso {
namespace {

using chaos::CampaignRunner;
using chaos::FaultSchedule;
using chaos::Outcome;
using chaos::RunReport;
using chaos::ScheduleMinimizer;
using service::MpcService;
using service::ServiceConfig;
using service::SessionRequest;
using service::SessionState;

std::vector<std::vector<mpz_class>> stats_inputs(unsigned parties, unsigned base) {
  std::vector<std::vector<mpz_class>> inputs;
  for (unsigned i = 0; i < parties; ++i) inputs.push_back({mpz_class(base + i)});
  return inputs;
}

SessionRequest stats_request(const std::string& tag, unsigned parties, unsigned base) {
  SessionRequest req;
  req.tag = tag;
  req.circuit = statistics_circuit(parties);
  req.inputs = stats_inputs(parties, base);
  return req;
}

// --- Link classes -----------------------------------------------------------

TEST(LinkClassTest, EveryNamedClassRoundTripsThroughByName) {
  for (const std::string& name : net::LinkModel::class_names()) {
    EXPECT_EQ(net::LinkModel::by_name(name).name, name);
  }
  EXPECT_THROW(net::LinkModel::by_name("carrier-pigeon"), std::invalid_argument);
}

TEST(LinkClassTest, GeoTiersAreOrderedBySpeed) {
  const auto metro = net::LinkModel::geo_metro();
  const auto cont = net::LinkModel::geo_continental();
  const auto inter = net::LinkModel::geo_intercontinental();
  EXPECT_LT(metro.latency_s, cont.latency_s);
  EXPECT_LT(cont.latency_s, inter.latency_s);
  EXPECT_GT(metro.bandwidth_bps, cont.bandwidth_bps);
  EXPECT_GT(cont.bandwidth_bps, inter.bandwidth_bps);
}

TEST(LinkClassMixTest, PickIsDeterministicPerParty) {
  const auto mix = net::LinkClassMix::geo(99);
  for (const char* party : {"P0", "P1", "gateway.3"}) {
    EXPECT_EQ(mix.pick(party).name, mix.pick(party).name);
  }
  // A committee's worth of parties spreads over more than one class.
  std::set<std::string> seen;
  for (int i = 0; i < 24; ++i) seen.insert(mix.pick("member#" + std::to_string(i)).name);
  EXPECT_GE(seen.size(), 2u);
}

TEST(LinkClassMixTest, ByNameWrapsUniformPresetsAndRejectsUnknown) {
  EXPECT_EQ(net::LinkClassMix::by_name("geo-mix", 1).name, "geo-mix");
  EXPECT_EQ(net::LinkClassMix::by_name("mobile-edge", 1).name, "mobile-edge");
  const auto wan = net::LinkClassMix::by_name("wan", 1);
  ASSERT_EQ(wan.classes.size(), 1u);
  EXPECT_EQ(wan.pick("anyone").name, "wan");
  EXPECT_THROW(net::LinkClassMix::by_name("carrier-pigeon", 1), std::invalid_argument);
}

// --- Background churn -------------------------------------------------------

TEST(ChurnPlanTest, LeavesIsDeterministicAndRespectsProbability) {
  net::ChurnPlan plan;
  plan.leave_prob = 0.5;
  plan.seed = 7;
  unsigned left = 0;
  for (unsigned role = 0; role < 64; ++role) {
    const bool first = plan.leaves("epoch.3", role);
    EXPECT_EQ(first, plan.leaves("epoch.3", role));
    left += first ? 1 : 0;
  }
  EXPECT_GT(left, 0u);
  EXPECT_LT(left, 64u);
  net::ChurnPlan off;
  EXPECT_TRUE(off.empty());
  EXPECT_FALSE(off.leaves("epoch.3", 0));
}

TEST(ChurnTest, ChurnedRolesBehaveAsFailStopAndStayCounted) {
  // Section 5.4 parameterization survives the capped departures.
  auto params = ProtocolParams::for_gap(4, 0.25, 96, /*failstop_mode=*/true);
  Circuit c = statistics_circuit(3);
  auto inputs = stats_inputs(3, 10);
  Ledger ledger;
  net::NetConfig cfg;
  cfg.churn.leave_prob = 0.9;
  cfg.churn.max_per_committee = 1;
  cfg.churn.seed = 11;
  cfg.link_mix = net::LinkClassMix::geo(11);
  net::NetBulletin board(ledger, cfg);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 11, &board);
  auto result = mpc.run(inputs);
  board.flush();
  EXPECT_EQ(result.outputs, c.eval(inputs, mpc.plaintext_modulus()));
  EXPECT_GE(board.roles_churned(), 1u);
  const std::string report = board.report_json();
  EXPECT_NE(report.find("\"roles_churned\""), std::string::npos);
  EXPECT_NE(report.find("\"link_classes\""), std::string::npos);
  EXPECT_NE(report.find("\"link\":\"geo-mix\""), std::string::npos);
}

// --- Self-healing sessions --------------------------------------------------

// Strict n = 4 needs 3 speakers; churn removes 2, so the first attempt
// aborts silence-decisively and the Section 5.4 resubmission (reconstruction
// bar 1) delivers.  The abandoned attempt's bytes must surface through the
// "session.resubmit" ledger marker.
TEST(ResilienceTest, ChurnedSessionRecoversViaResubmission) {
  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = 7;
  cfg.net.churn.leave_prob = 0.9;
  cfg.net.churn.max_per_committee = 2;
  cfg.net.churn.seed = 3;
  cfg.resilience.max_resubmits = 2;
  MpcService svc(cfg);
  svc.submit_at(0.01, stats_request("heal", 2, 10));
  svc.run();

  const auto& rec = svc.session(1);
  ASSERT_EQ(rec.state, SessionState::Completed);
  EXPECT_GE(rec.resubmits, 1u);
  EXPECT_EQ(rec.attempts, rec.resubmits + 1);
  EXPECT_TRUE(rec.degraded);
  EXPECT_GT(rec.sunk_bytes, 0u);
  EXPECT_GT(rec.backoff_wait_s, 0.0);
  EXPECT_EQ(rec.outputs, rec.request.circuit.eval(rec.request.inputs, rec.plaintext_modulus));

  // Retry accounting balances: the final ledger's marker carries exactly the
  // sunk bytes, and the service stats roll the recovery up.
  const auto& setup = rec.ledger->categories(Phase::Setup);
  const auto it = setup.find("session.resubmit");
  ASSERT_NE(it, setup.end());
  EXPECT_EQ(it->second.bytes, rec.sunk_bytes);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.resubmits, rec.resubmits);
  EXPECT_GT(stats.sunk_bytes, 0u);
}

TEST(ResilienceTest, ExhaustedBudgetFailsClassified) {
  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = 7;
  // Uncapped churn at p ~ 1 silences everyone on every attempt.
  cfg.net.churn.leave_prob = 0.999;
  cfg.net.churn.seed = 3;
  cfg.resilience.max_resubmits = 1;
  MpcService svc(cfg);
  svc.submit_at(0.01, stats_request("doomed", 2, 10));
  svc.run();

  const auto& rec = svc.session(1);
  EXPECT_EQ(rec.state, SessionState::Failed);
  EXPECT_EQ(rec.resubmits, 1u);
  EXPECT_TRUE(rec.failure.has_value());
  EXPECT_GT(rec.sunk_bytes, 0u);
}

TEST(ResilienceTest, PhaseWatchdogCutsSilentSessions) {
  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = 7;
  cfg.resilience.phase_timeout_s = 1e-9;  // every phase overruns immediately
  MpcService svc(cfg);
  svc.submit_at(0.01, stats_request("slow", 2, 10));
  svc.run();

  const auto& rec = svc.session(1);
  EXPECT_EQ(rec.state, SessionState::Failed);
  EXPECT_GE(rec.timeouts, 1u);
  EXPECT_TRUE(rec.outputs.empty());
  EXPECT_NE(rec.error.find("phase timeout"), std::string::npos);
  EXPECT_GE(svc.stats().timeouts, 1u);
}

TEST(ResilienceTest, RejectionCountersSplitByReason) {
  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = 7;
  cfg.max_mul_depth = 0;
  MpcService svc(cfg);
  // Mul-free circuit so the short inputs trip bad_inputs, not too_deep
  // (depth is checked first).
  Circuit sum;
  sum.output(sum.add(sum.input(0), sum.input(1)), 0);
  SessionRequest bad;
  bad.tag = "bad";
  bad.circuit = sum;
  bad.inputs = {{mpz_class(1)}};
  svc.submit_at(0.01, std::move(bad));
  svc.submit_at(0.02, stats_request("deep", 2, 10));  // statistics has mul depth
  svc.run();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.rejected_by_reason.at("bad_inputs"), 1u);
  EXPECT_EQ(stats.rejected_by_reason.at("too_deep"), 1u);
  EXPECT_NE(svc.report_json().find("\"rejected_by_reason\""), std::string::npos);
}

// --- Adaptive pool + lane restart -------------------------------------------

TEST(PoolResilienceTest, AdaptiveTargetTracksSlowDemand) {
  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = 7;
  cfg.pool.lanes = 1;
  cfg.pool.capacity = 8;
  cfg.pool.adaptive = true;
  cfg.pool_circuit = statistics_circuit(2);
  MpcService svc(cfg);
  // A slow trickle: interarrival dwarfs production time, so the EWMA target
  // collapses to 1 and the pool stops prefilling the whole bank.
  for (unsigned s = 0; s < 3; ++s) {
    svc.submit_at(10.0 * (s + 1), stats_request("trickle-" + std::to_string(s), 2, 10 + s));
  }
  svc.run();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GE(stats.pool.target_depth, 1u);
  EXPECT_LT(stats.pool.target_depth, cfg.pool.capacity);
  // A fixed-depth pool refills to capacity after every claim (capacity + 3
  // productions here); the adaptive target stops refilling once demand is
  // measured.
  EXPECT_LT(stats.pool.produced, cfg.pool.capacity + 3);
  EXPECT_NE(svc.report_json().find("\"target_depth\""), std::string::npos);
}

TEST(PoolResilienceTest, FailedLaneRestartsWithinBudget) {
  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = 7;
  cfg.pool.lanes = 1;
  cfg.pool.capacity = 2;
  cfg.pool.max_lane_restarts = 2;
  cfg.pool_circuit = statistics_circuit(2);
  cfg.net.faults.silence_per_committee = 4;  // every production aborts
  MpcService svc(cfg);
  svc.run();  // no sessions: just the pool against the dead network

  const auto stats = svc.stats();
  EXPECT_EQ(stats.pool.lane_restarts, 2u);
  EXPECT_EQ(stats.pool.production_failed, 3u);  // initial try + 2 restarts
  EXPECT_EQ(stats.pool.produced, 0u);
}

// --- Chaos integration ------------------------------------------------------

TEST(ChurnScheduleTest, SamplerJsonAndBoundsCoverChurnFields) {
  const FaultSchedule a = FaultSchedule::random_churn(404);
  EXPECT_EQ(a, FaultSchedule::random_churn(404));
  EXPECT_GT(a.churn_prob, 0.0);
  EXPECT_GE(a.max_resubmits, 1u);
  EXPECT_EQ(FaultSchedule::from_json(a.to_json()), a);

  FaultSchedule bad = a;
  bad.link_class = "carrier-pigeon";
  EXPECT_THROW(FaultSchedule::from_json(bad.to_json()), std::invalid_argument);

  // Uncapped churn and an armed watchdog both void the static guarantee; a
  // cap folds into the silent worst case (n = 6 strict needs 4 speakers).
  FaultSchedule s;
  s.n = 6;
  ASSERT_TRUE(s.in_bounds());
  s.churn_prob = 0.5;
  EXPECT_FALSE(s.in_bounds());
  s.churn_cap = 2;
  EXPECT_TRUE(s.in_bounds());
  s.churn_cap = 3;
  EXPECT_FALSE(s.in_bounds());
  s.churn_cap = 2;
  s.phase_timeout_s = 30.0;
  EXPECT_FALSE(s.in_bounds());
}

TEST(ChurnCampaignTest, SmokeCampaignUpholdsTheResilienceContract) {
  const auto summary = CampaignRunner::run_churn_campaign(42, 6);
  EXPECT_TRUE(summary.all_acceptable());
  EXPECT_EQ(summary.crashed, 0u);
  EXPECT_EQ(summary.invariant_violations, 0u);
  // Seed 42 is known to recover at least one schedule via resubmission.
  EXPECT_GE(summary.recovered, 1u);
}

TEST(ChurnCampaignTest, RecoveredRunCarriesRetryBytes) {
  const RunReport r = CampaignRunner::run_one(CampaignRunner::churn_campaign_schedule(42, 2));
  ASSERT_EQ(r.outcome, Outcome::Recovered);
  EXPECT_GT(r.svc_resubmits, 0u);
  EXPECT_GT(r.svc_recovered, 0u);
  EXPECT_GT(r.svc_sunk_bytes, 0u);
  EXPECT_GT(r.svc_backoff_wait_s, 0.0);
  EXPECT_TRUE(r.violations.empty());
}

// --- Minimizer churn coverage -----------------------------------------------

TEST(ScheduleMinimizerTest, ChurnFailureShrinksToAtMostTwoDimensions) {
  FaultSchedule planted;
  planted.seed = 5;
  planted.n = 5;
  planted.eps = 0.25;
  planted.paillier_bits = 96;
  planted.circuit_width = 1;
  planted.churn_prob = 0.9;  // uncapped: silences nearly everyone
  planted.link_class = "wan";
  planted.duplicate_prob = 0.2;
  planted.extra_delay_s = 0.01;

  const auto res = ScheduleMinimizer::minimize(planted, [](const FaultSchedule& c) {
    const RunReport r = CampaignRunner::run_one(c);
    return r.outcome != Outcome::Correct && r.outcome != Outcome::Recovered;
  });
  EXPECT_LE(res.schedule.active_faults(), 2u);
  EXPECT_GT(res.schedule.churn_prob, 0.0);
  EXPECT_EQ(res.schedule.link_class, "lan");
  EXPECT_EQ(res.schedule.duplicate_prob, 0.0);
  EXPECT_EQ(res.schedule.extra_delay_s, 0.0);
}

}  // namespace
}  // namespace yoso
