// Tests of the information-theoretic packed engine (the future-work
// extension): correctness across circuit families, the fail-stop
// threshold, packing semantics, and online-cost accounting.
#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "itmpc/itmpc.hpp"
#include "sharing/packed.hpp"

namespace yoso {
namespace {

std::vector<std::vector<Fp61::Elem>> it_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Fp61::Elem>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) inputs[g.client].push_back(rng.u64_below(100000));
  }
  return inputs;
}

std::vector<Fp61::Elem> reference(const Circuit& c,
                                  const std::vector<std::vector<Fp61::Elem>>& inputs) {
  std::vector<std::vector<mpz_class>> z(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (auto v : inputs[i]) z[i].push_back(mpz_class(static_cast<unsigned long>(v)));
  }
  auto out = c.eval(z, mpz_class(static_cast<unsigned long>(Fp61::kModulus)));
  std::vector<Fp61::Elem> res;
  for (const auto& o : out) res.push_back(o.get_ui());
  return res;
}

void expect_correct(const Circuit& c, const ItParams& params, unsigned failstops,
                    std::uint64_t seed) {
  Rng rng(seed);
  auto corr = it_deal(c, params, rng);
  auto inputs = it_inputs(c, seed + 1);
  auto res = it_online(c, params, corr, inputs, failstops, seed + 2);
  ASSERT_TRUE(res.delivered);
  EXPECT_EQ(res.outputs, reference(c, inputs));
}

TEST(ItMpc, WideCircuit) {
  expect_correct(wide_mul_circuit(6), ItParams::for_gap(8, 0.25), 0, 1);
}

TEST(ItMpc, InnerProduct) {
  expect_correct(inner_product_circuit(5), ItParams::for_gap(8, 0.25), 0, 2);
}

TEST(ItMpc, DeepChain) {
  expect_correct(chain_circuit(5), ItParams::for_gap(8, 0.25), 0, 3);
}

TEST(ItMpc, MulTree) {
  expect_correct(mul_tree_circuit(8), ItParams::for_gap(8, 0.25), 0, 4);
}

TEST(ItMpc, Statistics) {
  expect_correct(statistics_circuit(4), ItParams::for_gap(8, 0.25), 0, 5);
}

TEST(ItMpc, LargeCommittee) {
  expect_correct(wide_mul_circuit(32), ItParams::for_gap(64, 0.25), 0, 6);
}

TEST(ItMpc, FailStopWithinBudgetSucceeds) {
  auto params = ItParams::for_gap(16, 0.25, /*failstop_mode=*/true);
  unsigned budget = params.n - params.recon_threshold();
  ASSERT_GE(budget, 4u);
  expect_correct(wide_mul_circuit(4), params, budget, 7);
}

TEST(ItMpc, FailStopBeyondBudgetStalls) {
  auto params = ItParams::for_gap(16, 0.25, /*failstop_mode=*/false);
  unsigned budget = params.n - params.recon_threshold();
  Circuit c = wide_mul_circuit(4);
  Rng rng(8);
  auto corr = it_deal(c, params, rng);
  auto res = it_online(c, params, corr, it_inputs(c, 9), budget + 1, 10);
  EXPECT_FALSE(res.delivered);
}

TEST(ItMpc, HalvedPackingDoublesTolerance) {
  auto full = ItParams::for_gap(16, 0.25, false);
  auto half = ItParams::for_gap(16, 0.25, true);
  EXPECT_GT(full.k, half.k);
  EXPECT_GT(16 - half.recon_threshold(), 16 - full.recon_threshold());
}

TEST(ItMpc, OnlineCostPerGateTracksNOverK) {
  // mult elements per gate = n / k (+ padding slack); measure at two
  // packings over the same circuit.
  Circuit c = wide_mul_circuit(12);
  Rng rng(11);
  ItParams packed = ItParams::for_gap(12, 0.25);  // k = 4
  auto corr = it_deal(c, packed, rng);
  auto res = it_online(c, packed, corr, it_inputs(c, 12), 0, 13);
  ASSERT_TRUE(res.delivered);
  double per_gate = static_cast<double>(res.mult_share_elements) / 12.0;
  EXPECT_NEAR(per_gate, 12.0 / packed.k, 0.51);

  ItParams unpacked = packed;
  unpacked.k = 1;
  Rng rng2(14);
  auto corr2 = it_deal(c, unpacked, rng2);
  auto res2 = it_online(c, unpacked, corr2, it_inputs(c, 12), 0, 15);
  ASSERT_TRUE(res2.delivered);
  EXPECT_NEAR(static_cast<double>(res2.mult_share_elements) / 12.0, 12.0, 0.01);
}

TEST(ItMpc, DealerLambdasRespectLinearGates) {
  Circuit c;
  WireId a = c.input(0);
  WireId b = c.input(0);
  WireId s = c.add(a, b);
  WireId d = c.sub(s, b);
  c.output(d, 0);
  ItParams params = ItParams::for_gap(4, 0.2);
  Rng rng(16);
  auto corr = it_deal(c, params, rng);
  Fp61Ring ring;
  EXPECT_EQ(corr.wire_lambda[s], ring.add(corr.wire_lambda[a], corr.wire_lambda[b]));
  EXPECT_EQ(corr.wire_lambda[d], corr.wire_lambda[a]);
}

TEST(ItMpc, ParamsValidate) {
  ItParams p;
  p.n = 4;
  p.t = 1;
  p.k = 3;  // recon = 1 + 4 + 1 = 6 > 4
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_THROW((ItParams{0, 0, 1}.validate()), std::invalid_argument);
}

TEST(ItMpc, MissingInputThrows) {
  Circuit c = wide_mul_circuit(1);
  ItParams params = ItParams::for_gap(4, 0.2);
  Rng rng(17);
  auto corr = it_deal(c, params, rng);
  EXPECT_THROW(it_online(c, params, corr, {{1}}, 0, 18), std::invalid_argument);
}

// Privacy smoke test: any t shares of a packed lambda sharing are
// consistent with *any* secret vector (perfect privacy of packed Shamir at
// degree t + k - 1).  We verify constructively: given t observed shares
// and an arbitrary candidate secret vector, a completing polynomial exists
// (interpolation through t + k points never over-determines degree t+k-1).
TEST(ItMpc, PackedSharesOfTPartiesAreCompletable) {
  Fp61Ring ring;
  Rng rng(19);
  const unsigned n = 8, k = 3, t = 2, d = t + k - 1;
  std::vector<Fp61::Elem> secrets{11, 22, 33};
  auto sh = packed_share(ring, secrets, d, n, rng);
  // Adversary sees shares of parties 1..t.  Candidate alternative secrets:
  std::vector<Fp61::Elem> fake{44, 55, 66};
  // Interpolate a degree-d polynomial through the t observed shares and the
  // k fake secrets (t + k = d + 1 points: exactly determined, so it exists
  // and matches the observations).
  std::vector<std::int64_t> pts{1, 2, secret_point(0), secret_point(1), secret_point(2)};
  std::vector<Fp61::Elem> vals{sh.shares[0], sh.shares[1], fake[0], fake[1], fake[2]};
  auto coeffs = interpolate_coeffs(ring, pts, vals);
  EXPECT_EQ(coeffs.size(), d + 1);
  EXPECT_EQ(poly_eval(ring, coeffs, ring.from_int(1)), sh.shares[0]);
  EXPECT_EQ(poly_eval(ring, coeffs, ring.from_int(secret_point(2))), fake[2]);
}

}  // namespace
}  // namespace yoso
