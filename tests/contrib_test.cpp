// Unit tests of the contribution sub-protocols (Protocol 3 and the
// randomness step of Protocol 4): verified homomorphic sums and Beaver
// triple well-formedness under every adversarial behaviour.
#include <gtest/gtest.h>

#include "mpc/contrib.hpp"
#include "mpc/reencrypt.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

struct Env {
  unsigned n = 5, t = 1;
  Rng rng{7101};
  Ledger ledger;
  Bulletin bulletin{ledger};
  ThresholdKeys keys = tkgen(kBits, 1, n, t, rng);

  Committee committee(CommitteeCorruption cor) {
    return make_committee("c", kBits, 1, std::move(cor), rng);
  }
  CommitteeCorruption honest() {
    CommitteeCorruption c;
    c.status.assign(n, RoleStatus::Honest);
    return c;
  }
  CommitteeCorruption corrupt(unsigned t_mal, MaliciousStrategy s, unsigned f = 0) {
    return AdversaryPlan::fixed(n, t_mal, f, s).committee(0);
  }

  // Decrypt with the dealer key (test-only shortcut).
  mpz_class dec(const mpz_class& c) { return keys.dealer_sk.dec(c); }
};

TEST(Contrib, RandomsAreDecryptableAndDistinct) {
  Env e;
  Committee com = e.committee(e.honest());
  auto cts = contribute_randoms(e.keys.tpk, com, 4, Phase::Offline, "r", e.bulletin, e.rng);
  ASSERT_EQ(cts.size(), 4u);
  std::vector<mpz_class> vals;
  for (const auto& c : cts) vals.push_back(e.dec(c));
  EXPECT_NE(vals[0], vals[1]);  // overwhelming probability
}

TEST(Contrib, MaliciousContributionsAreExcludedNotFatal) {
  Env e;
  Committee com = e.committee(e.corrupt(e.t, MaliciousStrategy::BadShare));
  auto cts = contribute_randoms(e.keys.tpk, com, 2, Phase::Offline, "r", e.bulletin, e.rng);
  for (const auto& c : cts) EXPECT_TRUE(e.keys.tpk.pk.valid_ciphertext(c));
}

TEST(Contrib, StallsBelowQuorum) {
  Env e;
  Committee com = e.committee(e.corrupt(1, MaliciousStrategy::Silent, 3));
  EXPECT_THROW(contribute_randoms(e.keys.tpk, com, 1, Phase::Offline, "r", e.bulletin, e.rng),
               ProtocolAbort);
}

TEST(Contrib, BeaverTriplesMultiplyCorrectly) {
  Env e;
  Committee a = e.committee(e.honest());
  Committee b = e.committee(e.honest());
  auto triples = make_beaver_triples(e.keys.tpk, a, b, 3, Phase::Offline, e.bulletin, e.rng);
  ASSERT_EQ(triples.size(), 3u);
  const mpz_class& ns = e.keys.tpk.pk.ns;
  for (const auto& tr : triples) {
    mpz_class va = e.dec(tr.a), vb = e.dec(tr.b), vc = e.dec(tr.c);
    EXPECT_EQ(vc, va * vb % ns);
  }
}

TEST(Contrib, BeaverSurvivesMaliciousA) {
  Env e;
  Committee a = e.committee(e.corrupt(e.t, MaliciousStrategy::BadShare));
  Committee b = e.committee(e.honest());
  auto triples = make_beaver_triples(e.keys.tpk, a, b, 1, Phase::Offline, e.bulletin, e.rng);
  const mpz_class& ns = e.keys.tpk.pk.ns;
  EXPECT_EQ(e.dec(triples[0].c), e.dec(triples[0].a) * e.dec(triples[0].b) % ns);
}

TEST(Contrib, BeaverSurvivesMaliciousB) {
  Env e;
  Committee a = e.committee(e.honest());
  Committee b = e.committee(e.corrupt(e.t, MaliciousStrategy::BadShare));
  auto triples = make_beaver_triples(e.keys.tpk, a, b, 1, Phase::Offline, e.bulletin, e.rng);
  const mpz_class& ns = e.keys.tpk.pk.ns;
  EXPECT_EQ(e.dec(triples[0].c), e.dec(triples[0].a) * e.dec(triples[0].b) % ns);
}

TEST(Contrib, BeaverSurvivesBadProofsOnBothCommittees) {
  Env e;
  Committee a = e.committee(e.corrupt(e.t, MaliciousStrategy::BadProof));
  Committee b = e.committee(e.corrupt(e.t, MaliciousStrategy::BadProof));
  auto triples = make_beaver_triples(e.keys.tpk, a, b, 2, Phase::Offline, e.bulletin, e.rng);
  const mpz_class& ns = e.keys.tpk.pk.ns;
  for (const auto& tr : triples) {
    EXPECT_EQ(e.dec(tr.c), e.dec(tr.a) * e.dec(tr.b) % ns);
  }
}

TEST(Contrib, CommitteeSpeaksOnceAcrossAllValues) {
  Env e;
  Committee com = e.committee(e.honest());
  contribute_randoms(e.keys.tpk, com, 10, Phase::Offline, "r", e.bulletin, e.rng);
  for (unsigned i = 0; i < e.n; ++i) EXPECT_TRUE(com.has_spoken(i));
  EXPECT_THROW(
      contribute_randoms(e.keys.tpk, com, 1, Phase::Offline, "r2", e.bulletin, e.rng),
      std::logic_error);
}

TEST(Contrib, LedgerCountsElements) {
  Env e;
  Committee com = e.committee(e.honest());
  contribute_randoms(e.keys.tpk, com, 3, Phase::Offline, "rand", e.bulletin, e.rng);
  auto entry = e.ledger.categories(Phase::Offline).at("rand");
  EXPECT_EQ(entry.messages, e.n);
  EXPECT_EQ(entry.elements, 3u * e.n);
}

}  // namespace
}  // namespace yoso
