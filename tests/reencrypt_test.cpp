// Unit tests of the Re-encrypt / Decrypt engine (Protocols 1-2): masking,
// public threshold decryption, FutureCt recovery, the verifiable tsk
// hand-over, and the engine-level adversarial behaviours.
#include <gtest/gtest.h>

#include "mpc/reencrypt.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

struct Env {
  ProtocolParams params = ProtocolParams::for_gap(5, 0.2, kBits);
  Rng rng{7001};
  Ledger ledger;
  Bulletin bulletin{ledger};
  ThresholdKeys keys = tkgen(kBits, 1, params.n, params.t, rng);
  DecryptChain chain{keys.tpk, keys.shares, params, bulletin, rng};

  Committee committee(const std::string& name, unsigned plain_bits,
                      CommitteeCorruption cor) {
    return make_committee(name, params.paillier_bits, params.exponent_for(plain_bits), cor,
                          rng);
  }
  CommitteeCorruption honest() {
    CommitteeCorruption c;
    c.status.assign(params.n, RoleStatus::Honest);
    return c;
  }
  CommitteeCorruption corrupt(unsigned t_mal, MaliciousStrategy strat,
                              unsigned f_stop = 0) {
    return AdversaryPlan::fixed(params.n, t_mal, f_stop, strat).committee(0);
  }
};

TEST(Reencrypt, PublicDecryptionOfBatch) {
  Env e;
  Committee holder = e.committee("holder", e.params.holder_plain_bits(), e.honest());
  std::vector<mpz_class> cts, expected;
  for (int i = 0; i < 3; ++i) {
    mpz_class m = e.rng.below(e.keys.tpk.pk.ns);
    expected.push_back(m);
    cts.push_back(e.keys.tpk.pk.enc(m, e.rng));
  }
  auto opened = e.chain.run_decrypt_committee(holder, cts, Phase::Offline, "t", nullptr);
  EXPECT_EQ(opened, expected);
}

TEST(Reencrypt, DecryptionSurvivesMaliciousPartials) {
  Env e;
  Committee holder = e.committee("holder", e.params.holder_plain_bits(),
                                 e.corrupt(e.params.t, MaliciousStrategy::BadShare));
  mpz_class m = 777;
  auto opened = e.chain.run_decrypt_committee(holder, {e.keys.tpk.pk.enc(m, e.rng)},
                                              Phase::Offline, "t", nullptr);
  EXPECT_EQ(opened[0], m);
}

TEST(Reencrypt, DecryptionSurvivesBadProofs) {
  Env e;
  Committee holder = e.committee("holder", e.params.holder_plain_bits(),
                                 e.corrupt(e.params.t, MaliciousStrategy::BadProof));
  mpz_class m = 778;
  auto opened = e.chain.run_decrypt_committee(holder, {e.keys.tpk.pk.enc(m, e.rng)},
                                              Phase::Offline, "t", nullptr);
  EXPECT_EQ(opened[0], m);
}

TEST(Reencrypt, DecryptionStallsWithoutQuorum) {
  Env e;  // n=5, t=1: need 2 partials; silence 4 roles -> only 1 active
  auto cor = e.corrupt(1, MaliciousStrategy::Silent, /*f_stop=*/3);
  Committee holder = e.committee("holder", e.params.holder_plain_bits(), cor);
  EXPECT_THROW(e.chain.run_decrypt_committee(holder, {e.keys.tpk.pk.enc(mpz_class(1), e.rng)},
                                             Phase::Offline, "t", nullptr),
               ProtocolAbort);
}

TEST(Reencrypt, FutureCtRoundTrip) {
  Env e;
  Committee masker = e.committee("mask", e.params.paillier_bits, e.honest());
  Committee holder = e.committee("holder", e.params.holder_plain_bits(), e.honest());
  PaillierSK recipient = paillier_keygen(
      e.params.paillier_bits, e.params.exponent_for(e.params.role_plain_bits()), e.rng,
      false);
  mpz_class m = e.rng.below(e.keys.tpk.pk.ns);
  auto fcts = e.chain.reencrypt_batch(masker, holder, {e.keys.tpk.pk.enc(m, e.rng)},
                                      {&recipient.pk}, Phase::Offline, "t", nullptr);
  EXPECT_EQ(open_future(recipient, fcts[0], e.keys.tpk.pk.ns), m);
}

TEST(Reencrypt, MaskedValueHidesPlaintext) {
  // The publicly opened masked value must differ from the plaintext (the
  // pad is unknown to the public); recovery still works for the recipient.
  Env e;
  Committee masker = e.committee("mask", e.params.paillier_bits, e.honest());
  Committee holder = e.committee("holder", e.params.holder_plain_bits(), e.honest());
  PaillierSK recipient = paillier_keygen(
      e.params.paillier_bits, e.params.exponent_for(e.params.role_plain_bits()), e.rng,
      false);
  mpz_class m = 5;
  auto fcts = e.chain.reencrypt_batch(masker, holder, {e.keys.tpk.pk.enc(m, e.rng)},
                                      {&recipient.pk}, Phase::Offline, "t", nullptr);
  EXPECT_NE(fcts[0].masked, m);  // overwhelming probability
}

TEST(Reencrypt, ReencryptionSurvivesMaliciousMaskers) {
  Env e;
  Committee masker = e.committee("mask", e.params.paillier_bits,
                                 e.corrupt(e.params.t, MaliciousStrategy::BadShare));
  Committee holder = e.committee("holder", e.params.holder_plain_bits(), e.honest());
  PaillierSK recipient = paillier_keygen(
      e.params.paillier_bits, e.params.exponent_for(e.params.role_plain_bits()), e.rng,
      false);
  mpz_class m = 424242;
  auto fcts = e.chain.reencrypt_batch(masker, holder, {e.keys.tpk.pk.enc(m, e.rng)},
                                      {&recipient.pk}, Phase::Offline, "t", nullptr);
  EXPECT_EQ(open_future(recipient, fcts[0], e.keys.tpk.pk.ns), m);
}

TEST(Reencrypt, MaskStallsWithoutQuorum) {
  Env e;
  auto cor = e.corrupt(1, MaliciousStrategy::BadShare, /*f_stop=*/3);
  Committee masker = e.committee("mask", e.params.paillier_bits, cor);
  PaillierSK recipient = paillier_keygen(
      e.params.paillier_bits, e.params.exponent_for(e.params.role_plain_bits()), e.rng,
      false);
  EXPECT_THROW(e.chain.run_mask_committee(masker, {&recipient.pk}, Phase::Offline, "t"),
               ProtocolAbort);
}

TEST(Reencrypt, HandoverMovesSharesToNextCommittee) {
  Env e;
  Committee h1 = e.committee("h1", e.params.holder_plain_bits(), e.honest());
  Committee h2 = e.committee("h2", e.params.holder_plain_bits(), e.honest());
  mpz_class m1 = 111, m2 = 222;
  auto o1 = e.chain.run_decrypt_committee(h1, {e.keys.tpk.pk.enc(m1, e.rng)},
                                          Phase::Offline, "a", &h2);
  EXPECT_EQ(o1[0], m1);
  EXPECT_EQ(e.chain.epochs(), 1u);
  EXPECT_EQ(e.chain.tpk().scale, e.keys.tpk.scale * e.keys.tpk.delta);
  // The next committee's shares decrypt too.
  auto o2 = e.chain.run_decrypt_committee(h2, {e.chain.tpk().pk.enc(m2, e.rng)},
                                          Phase::Offline, "b", nullptr);
  EXPECT_EQ(o2[0], m2);
}

TEST(Reencrypt, HandoverSurvivesMaliciousResharers) {
  Env e;
  Committee h1 = e.committee("h1", e.params.holder_plain_bits(),
                             e.corrupt(e.params.t, MaliciousStrategy::BadShare));
  Committee h2 = e.committee("h2", e.params.holder_plain_bits(), e.honest());
  e.chain.run_decrypt_committee(h1, {e.keys.tpk.pk.enc(mpz_class(9), e.rng)},
                                Phase::Offline, "a", &h2);
  mpz_class m = 31337;
  auto o = e.chain.run_decrypt_committee(h2, {e.chain.tpk().pk.enc(m, e.rng)},
                                         Phase::Offline, "b", nullptr);
  EXPECT_EQ(o[0], m);
}

TEST(Reencrypt, ThreeHandoversChain) {
  Env e;
  std::vector<Committee> holders;
  for (int i = 0; i < 4; ++i) {
    holders.push_back(e.committee("h" + std::to_string(i), e.params.holder_plain_bits(),
                                  e.honest()));
  }
  for (int i = 0; i < 3; ++i) {
    auto o = e.chain.run_decrypt_committee(
        holders[i], {e.chain.tpk().pk.enc(mpz_class(i), e.rng)}, Phase::Offline,
        "step" + std::to_string(i), &holders[i + 1]);
    EXPECT_EQ(o[0], i);
  }
  EXPECT_EQ(e.chain.epochs(), 3u);
  auto o = e.chain.run_decrypt_committee(holders[3],
                                         {e.chain.tpk().pk.enc(mpz_class(99), e.rng)},
                                         Phase::Offline, "final", nullptr);
  EXPECT_EQ(o[0], 99);
}

TEST(Reencrypt, EmptyBatchStillHandsOver) {
  Env e;
  Committee h1 = e.committee("h1", e.params.holder_plain_bits(), e.honest());
  Committee h2 = e.committee("h2", e.params.holder_plain_bits(), e.honest());
  auto o = e.chain.run_decrypt_committee(h1, {}, Phase::Offline, "empty", &h2);
  EXPECT_TRUE(o.empty());
  EXPECT_EQ(e.chain.epochs(), 1u);
}

TEST(Reencrypt, LedgerChargesMaskAndPdec) {
  Env e;
  Committee masker = e.committee("mask", e.params.paillier_bits, e.honest());
  Committee holder = e.committee("holder", e.params.holder_plain_bits(), e.honest());
  PaillierSK recipient = paillier_keygen(
      e.params.paillier_bits, e.params.exponent_for(e.params.role_plain_bits()), e.rng,
      false);
  e.chain.reencrypt_batch(masker, holder, {e.keys.tpk.pk.enc(mpz_class(1), e.rng)},
                          {&recipient.pk}, Phase::Offline, "lbl", nullptr);
  const auto& cats = e.ledger.categories(Phase::Offline);
  EXPECT_EQ(cats.at("lbl.mask").messages, e.params.n);
  EXPECT_EQ(cats.at("lbl.pdec").messages, e.params.n);
}

TEST(Reencrypt, RolesSpeakOncePerActivation) {
  Env e;
  Committee holder = e.committee("holder", e.params.holder_plain_bits(), e.honest());
  e.chain.run_decrypt_committee(holder, {e.keys.tpk.pk.enc(mpz_class(1), e.rng)},
                                Phase::Offline, "x", nullptr);
  // A second activation of the same committee violates YOSO.
  EXPECT_THROW(e.chain.run_decrypt_committee(holder, {e.keys.tpk.pk.enc(mpz_class(2), e.rng)},
                                             Phase::Offline, "y", nullptr),
               std::logic_error);
}

TEST(Reencrypt, OpenFutureLiftsModuloCorrectly) {
  // Recovery must reduce mod N^s even when the pad sum exceeds it.
  Env e;
  PaillierSK recipient = paillier_keygen(
      e.params.paillier_bits, e.params.exponent_for(e.params.role_plain_bits()), e.rng,
      false);
  const mpz_class& ns = e.keys.tpk.pk.ns;
  mpz_class m = ns - 5;
  mpz_class pad = ns - 3;  // m + pad wraps
  FutureCt fct;
  fct.masked = (m + pad) % ns;
  fct.pad_ct = recipient.pk.enc(pad, e.rng);
  EXPECT_EQ(open_future(recipient, fct, ns), m);
}

}  // namespace
}  // namespace yoso
