// Wire-format tests: round-trips for every message type, proofs that
// survive serialization still verify, malformed-input rejection, and
// consistency between the ledger's byte accounting and real encodings.
#include <gtest/gtest.h>

#include "crypto/prg.hpp"
#include "paillier/threshold.hpp"
#include "wire/codec.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

class CodecTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(7501);
    keys_ = new ThresholdKeys(tkgen(kBits, 1, 4, 1, *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }
  static Rng* rng_;
  static ThresholdKeys* keys_;
};

Rng* CodecTest::rng_ = nullptr;
ThresholdKeys* CodecTest::keys_ = nullptr;

TEST_F(CodecTest, PrimitivesRoundTrip) {
  Encoder e;
  e.u8(7);
  e.u32(0xDEADBEEF);
  e.u64(0x0123456789ABCDEFull);
  e.mpz(mpz_class("-123456789123456789123456789"));
  e.mpz_vec({mpz_class(0), mpz_class(1), mpz_class(-1)});
  Decoder d(e.data());
  EXPECT_EQ(d.u8(), 7);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(d.mpz(), mpz_class("-123456789123456789123456789"));
  auto v = d.mpz_vec();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], -1);
  d.expect_done();
}

TEST_F(CodecTest, TruncatedInputThrows) {
  Encoder e;
  e.mpz(mpz_class(123456));
  auto data = e.data();
  data.pop_back();
  Decoder d(data);
  EXPECT_THROW(d.mpz(), CodecError);
}

TEST_F(CodecTest, TrailingBytesDetected) {
  Encoder e;
  e.u8(1);
  e.u8(2);
  Decoder d(e.data());
  d.u8();
  EXPECT_THROW(d.expect_done(), CodecError);
}

TEST_F(CodecTest, ImplausibleVectorLengthRejected) {
  Encoder e;
  e.u32(0xFFFFFFFF);  // claims 4 billion elements
  Decoder d(e.data());
  EXPECT_THROW(d.mpz_vec(), CodecError);
}

TEST_F(CodecTest, LinkProofSurvivesSerializationAndVerifies) {
  const auto& pk = keys_->tpk.pk;
  mpz_class m = rng_->below(pk.ns), r;
  mpz_class c = pk.enc(m, *rng_, &r);
  LinkStatement st;
  st.domain = "codec.test";
  st.paillier_legs = {PaillierLeg{pk, c}};
  st.bound_bits = static_cast<unsigned>(mpz_sizeinbase(pk.ns.get_mpz_t(), 2));
  auto proof = link_prove(st, LinkWitness{SecretMpz(m), {SecretMpz(r)}}, *rng_);

  auto decoded = decode_link_proof(encode_link_proof(proof));
  EXPECT_TRUE(link_verify(st, decoded));
  EXPECT_EQ(decoded.z, proof.z);
}

TEST_F(CodecTest, LinkProofRejectsWrongTag) {
  auto data = encode_root_proof(RootProof{mpz_class(1), mpz_class(2)});
  EXPECT_THROW(decode_link_proof(data), CodecError);
}

TEST_F(CodecTest, MultProofRoundTrip) {
  const auto& pk = keys_->tpk.pk;
  mpz_class c_a = pk.enc(mpz_class(3), *rng_);
  mpz_class b = 4, rb, rho;
  mpz_class c_b = pk.enc(b, *rng_, &rb);
  mpz_class c_p = pk.rerandomize(pk.scal(c_a, b), *rng_, &rho);
  auto proof = prove_mult(pk, c_a, c_b, c_p, SecretMpz(b), SecretMpz(rb), SecretMpz(rho), *rng_);
  auto decoded = decode_mult_proof(encode_mult_proof(proof));
  EXPECT_TRUE(verify_mult(pk, c_a, c_b, c_p, decoded));
}

TEST_F(CodecTest, RootProofRoundTrip) {
  RootProof p{mpz_class("987654321"), mpz_class("123456789")};
  auto decoded = decode_root_proof(encode_root_proof(p));
  EXPECT_EQ(decoded.a, p.a);
  EXPECT_EQ(decoded.z, p.z);
}

TEST_F(CodecTest, MaskMsgRoundTrip) {
  const auto& pk = keys_->tpk.pk;
  MaskMsg m;
  mpz_class pad = 42, r1, r2;
  m.a = pk.enc(pad, *rng_, &r1);
  m.b = pk.enc(pad, *rng_, &r2);
  LinkStatement st;
  st.domain = "pad";
  st.paillier_legs = {PaillierLeg{pk, m.a}, PaillierLeg{pk, m.b}};
  st.bound_bits = 16;
  m.proof = link_prove(st, LinkWitness{SecretMpz(pad), {SecretMpz(r1), SecretMpz(r2)}}, *rng_);

  auto decoded = decode_mask_msg(encode_mask_msg(m));
  EXPECT_EQ(decoded.a, m.a);
  EXPECT_EQ(decoded.b, m.b);
  EXPECT_TRUE(link_verify(st, decoded.proof));
}

TEST_F(CodecTest, HandoverMsgRoundTrip) {
  HandoverMsg m;
  m.from_index = 3;
  m.commitments = {mpz_class(11), mpz_class(22)};
  m.enc_subshares = {mpz_class(33), mpz_class(-44)};
  m.proofs.resize(2);
  m.proofs[0].z = 5;
  m.proofs[1].z = -6;
  auto decoded = decode_handover_msg(encode_handover_msg(m));
  EXPECT_EQ(decoded.from_index, 3u);
  EXPECT_EQ(decoded.commitments, m.commitments);
  EXPECT_EQ(decoded.enc_subshares, m.enc_subshares);
  ASSERT_EQ(decoded.proofs.size(), 2u);
  EXPECT_EQ(decoded.proofs[1].z, -6);
}

TEST_F(CodecTest, FutureCtRoundTrip) {
  FutureCt f{mpz_class("314159"), mpz_class("271828")};
  auto decoded = decode_future_ct(encode_future_ct(f));
  EXPECT_EQ(decoded.masked, f.masked);
  EXPECT_EQ(decoded.pad_ct, f.pad_ct);
}

TEST_F(CodecTest, EncodedSizeTracksWireBytes) {
  // The ledger prices messages with wire_bytes() (raw integer payloads);
  // the framed encoding only adds bounded per-field overhead (tag +
  // 4-byte length prefixes).
  const auto& pk = keys_->tpk.pk;
  mpz_class m = rng_->below(pk.ns), r;
  mpz_class c = pk.enc(m, *rng_, &r);
  LinkStatement st;
  st.domain = "codec.size";
  st.paillier_legs = {PaillierLeg{pk, c}};
  st.bound_bits = static_cast<unsigned>(mpz_sizeinbase(pk.ns.get_mpz_t(), 2));
  auto proof = link_prove(st, LinkWitness{SecretMpz(m), {SecretMpz(r)}}, *rng_);
  std::size_t framed = encode_link_proof(proof).size();
  std::size_t raw = proof.wire_bytes();
  EXPECT_GT(framed, raw);
  EXPECT_LT(framed, raw + 64);  // tag + 3 vec headers + 4 field prefixes
}

TEST_F(CodecTest, TamperedEncodingFailsVerification) {
  const auto& pk = keys_->tpk.pk;
  mpz_class m = 9, r;
  mpz_class c = pk.enc(m, *rng_, &r);
  LinkStatement st;
  st.domain = "codec.tamper";
  st.paillier_legs = {PaillierLeg{pk, c}};
  st.bound_bits = 16;
  auto proof = link_prove(st, LinkWitness{SecretMpz(m), {SecretMpz(r)}}, *rng_);
  auto data = encode_link_proof(proof);
  data[data.size() / 2] ^= 0x40;
  LinkProof decoded;
  try {
    decoded = decode_link_proof(data);
  } catch (const CodecError&) {
    SUCCEED();  // structural corruption detected at decode time
    return;
  }
  EXPECT_FALSE(link_verify(st, decoded));
}

TEST_F(CodecTest, FuzzedInputsNeverCrashOnlyThrow) {
  // Random byte soup must be rejected cleanly (CodecError), never crash or
  // loop; structured prefixes with corrupted tails likewise.
  Prg prg(0xF022);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(1 + (trial % 97));
    prg.bytes(junk.data(), junk.size());
    try {
      (void)decode_link_proof(junk);
    } catch (const CodecError&) {
    }
    try {
      (void)decode_handover_msg(junk);
    } catch (const CodecError&) {
    }
    try {
      (void)decode_future_ct(junk);
    } catch (const CodecError&) {
    }
  }
  SUCCEED();
}

TEST_F(CodecTest, BitflippedRealMessagesRejectOrFailVerify) {
  const auto& pk = keys_->tpk.pk;
  mpz_class m = 77, r;
  mpz_class c = pk.enc(m, *rng_, &r);
  LinkStatement st;
  st.domain = "codec.fuzz";
  st.paillier_legs = {PaillierLeg{pk, c}};
  st.bound_bits = 16;
  auto proof = link_prove(st, LinkWitness{SecretMpz(m), {SecretMpz(r)}}, *rng_);
  auto data = encode_link_proof(proof);
  Prg prg(0xF023);
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = data;
    std::size_t pos = prg.u64() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1 + (prg.u64() % 255));
    try {
      LinkProof decoded = decode_link_proof(mutated);
      // Either the mutation hit a don't-care byte reproducing the original,
      // or verification must fail.
      if (mutated == data) continue;
      EXPECT_FALSE(link_verify(st, decoded) && !(decoded.z == proof.z &&
                                                 decoded.a_paillier == proof.a_paillier &&
                                                 decoded.z_rs == proof.z_rs));
    } catch (const CodecError&) {
      // clean rejection
    }
  }
}

// --- Property tests over every message type --------------------------------
// For each type: random instances must encode -> decode -> re-encode to the
// identical byte string (the encoding is canonical), every strict prefix of
// an encoding must throw CodecError, and random byte soup must be rejected
// cleanly.

mpz_class rand_mpz(Prg& prg, unsigned max_bytes = 12) {
  std::vector<std::uint8_t> b(1 + prg.u64() % max_bytes);
  prg.bytes(b.data(), b.size());
  mpz_class z;
  mpz_import(z.get_mpz_t(), b.size(), 1, 1, 0, 0, b.data());
  if (prg.u64() & 1) z = -z;
  return z;
}

std::vector<mpz_class> rand_mpz_vec(Prg& prg, unsigned max_count = 4) {
  std::vector<mpz_class> v(prg.u64() % (max_count + 1));
  for (auto& z : v) z = rand_mpz(prg);
  return v;
}

LinkProof rand_link_proof(Prg& prg) {
  LinkProof p;
  p.a_paillier = rand_mpz_vec(prg);
  p.a_exponent = rand_mpz_vec(prg);
  p.z = rand_mpz(prg);
  p.z_rs = rand_mpz_vec(prg);
  return p;
}

MaskMsg rand_mask_msg(Prg& prg) {
  MaskMsg m;
  m.a = rand_mpz(prg);
  m.b = rand_mpz(prg);
  m.proof = rand_link_proof(prg);
  return m;
}

// encode(decode(encode(msg))) == encode(msg), and all strict prefixes throw.
template <typename T, typename Enc, typename Dec>
void check_codec_properties(const T& msg, Enc enc, Dec dec, bool check_prefixes) {
  const std::vector<std::uint8_t> data = enc(msg);
  const T decoded = dec(data);
  EXPECT_EQ(enc(decoded), data);
  if (!check_prefixes) return;
  for (std::size_t len = 0; len < data.size(); ++len) {
    std::vector<std::uint8_t> prefix(data.begin(), data.begin() + len);
    EXPECT_THROW((void)dec(prefix), CodecError) << "prefix length " << len;
  }
}

TEST_F(CodecTest, EveryMessageTypeRoundTripsCanonically) {
  Prg prg(0xC0DEC);
  for (int trial = 0; trial < 8; ++trial) {
    const bool prefixes = trial == 0;  // prefix sweep is quadratic; once is enough

    check_codec_properties(rand_link_proof(prg), encode_link_proof, decode_link_proof,
                           prefixes);

    MultProof mult;
    mult.a1 = rand_mpz(prg);
    mult.a2 = rand_mpz(prg);
    mult.z = rand_mpz(prg);
    mult.z1 = rand_mpz(prg);
    mult.z2 = rand_mpz(prg);
    check_codec_properties(mult, encode_mult_proof, decode_mult_proof, prefixes);

    check_codec_properties(RootProof{rand_mpz(prg), rand_mpz(prg)}, encode_root_proof,
                           decode_root_proof, prefixes);

    check_codec_properties(rand_mask_msg(prg), encode_mask_msg, decode_mask_msg, prefixes);

    HandoverMsg ho;
    ho.from_index = static_cast<unsigned>(prg.u64() % 16);
    ho.commitments = rand_mpz_vec(prg);
    ho.enc_subshares = rand_mpz_vec(prg);
    ho.proofs.resize(prg.u64() % 3);
    for (auto& p : ho.proofs) p = rand_link_proof(prg);
    check_codec_properties(ho, encode_handover_msg, decode_handover_msg, prefixes);

    check_codec_properties(FutureCt{rand_mpz(prg), rand_mpz(prg)}, encode_future_ct,
                           decode_future_ct, prefixes);

    PdecMsg pdec;
    pdec.partials = rand_mpz_vec(prg);
    pdec.proofs.resize(prg.u64() % 3);
    for (auto& p : pdec.proofs) p.inner = rand_link_proof(prg);
    check_codec_properties(pdec, encode_pdec_msg, decode_pdec_msg, prefixes);

    ContribMsg contrib;
    contrib.cts = rand_mpz_vec(prg);
    contrib.proofs.resize(prg.u64() % 3);
    for (auto& p : contrib.proofs) p.inner = rand_link_proof(prg);
    check_codec_properties(contrib, encode_contrib_msg, decode_contrib_msg, prefixes);

    BeaverMsg beaver;
    beaver.cb = rand_mpz_vec(prg);
    beaver.cc = rand_mpz_vec(prg);
    beaver.proofs.resize(prg.u64() % 3);
    for (auto& p : beaver.proofs) {
      p.a1 = rand_mpz(prg);
      p.a2 = rand_mpz(prg);
      p.z = rand_mpz(prg);
      p.z1 = rand_mpz(prg);
      p.z2 = rand_mpz(prg);
    }
    check_codec_properties(beaver, encode_beaver_msg, decode_beaver_msg, prefixes);

    MultShareMsg ms;
    ms.p_int = rand_mpz_vec(prg);
    ms.proofs.resize(prg.u64() % 3);
    for (auto& p : ms.proofs) p = RootProof{rand_mpz(prg), rand_mpz(prg)};
    check_codec_properties(ms, encode_mult_share_msg, decode_mult_share_msg, prefixes);

    std::vector<MaskMsg> batch(prg.u64() % 3);
    for (auto& m : batch) m = rand_mask_msg(prg);
    check_codec_properties(batch, encode_mask_batch, decode_mask_batch, prefixes);
  }
}

TEST_F(CodecTest, GarbageRejectedForAggregateTypes) {
  Prg prg(0xBAD5EED);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(1 + (trial % 113));
    prg.bytes(junk.data(), junk.size());
    try { (void)decode_pdec_msg(junk); } catch (const CodecError&) {}
    try { (void)decode_contrib_msg(junk); } catch (const CodecError&) {}
    try { (void)decode_beaver_msg(junk); } catch (const CodecError&) {}
    try { (void)decode_mult_share_msg(junk); } catch (const CodecError&) {}
    try { (void)decode_mask_batch(junk); } catch (const CodecError&) {}
  }
  SUCCEED();
}

TEST_F(CodecTest, TagDispatch) {
  EXPECT_EQ(peek_tag(encode_root_proof(RootProof{mpz_class(1), mpz_class(2)})), kTagRootProof);
  EXPECT_EQ(peek_tag(encode_future_ct(FutureCt{mpz_class(1), mpz_class(2)})), kTagFutureCt);
  EXPECT_THROW(peek_tag({}), CodecError);
  EXPECT_STREQ(tag_name(kTagPdecMsg), "PdecMsg");
  EXPECT_STREQ(tag_name(kTagMaskBatch), "MaskBatch");
  EXPECT_STREQ(tag_name(0xEE), "unknown");
  // Cross-type decode must reject on the tag byte.
  EXPECT_THROW(decode_pdec_msg(encode_contrib_msg(ContribMsg{})), CodecError);
  EXPECT_THROW(decode_beaver_msg(encode_mult_share_msg(MultShareMsg{})), CodecError);
}

}  // namespace
}  // namespace yoso
