// Executable renderings of the paper's security definitions:
//   * Definition 2 (partial decryption simulatability, Fig. 2) as the
//     two-world game — both worlds must decrypt to the challenged message
//     and be consistent for every qualified set;
//   * the HVZK simulator for the sigma protocols (NIZKAoK.SimP) — the
//     simulated transcript must verify and have response marginals
//     matching honest proofs;
//   * the knowledge relation: honest proofs bind their statements (no
//     proof transplant across statements).
#include <gtest/gtest.h>

#include "nizk/link_proof.hpp"
#include "paillier/threshold.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

TEST(SimulatabilityGame, BothWorldsDecryptToChallengeMessage) {
  // Fig. 2: the challenger flips b; world 0 answers with honest partials,
  // world 1 with SimTPDec partials targeting the same message.  The game's
  // correctness precondition: in both worlds, TDec returns m for every
  // qualified set the adversary assembles.
  Rng rng(8401);
  ThresholdKeys keys = tkgen(kBits, 1, 6, 2, rng);
  const auto& tpk = keys.tpk;
  mpz_class m = rng.below(tpk.pk.ns);
  mpz_class c = tpk.pk.enc(m, rng);
  std::vector<unsigned> corrupt{2, 6};

  // World 0: honest partials everywhere.
  auto honest_partial = [&](unsigned i) { return tpdec(tpk, keys.shares[i - 1], c); };

  // World 1: simulated honest partials (target = the true m, as in the
  // game when the simulator must be consistent with the real message).
  std::vector<ThresholdKeyShare> honest_shares;
  for (const auto& sh : keys.shares) {
    if (sh.index != 2 && sh.index != 6) honest_shares.push_back(sh);
  }
  auto sim = sim_tpdec(tpk, c, m, m, honest_shares, corrupt);
  auto sim_partial = [&](unsigned i) -> mpz_class {
    if (i == 2 || i == 6) return honest_partial(i);
    std::size_t pos = 0;
    for (const auto& sh : honest_shares) {
      if (sh.index == i) return sim[pos];
      ++pos;
    }
    throw std::logic_error("bad index");
  };

  for (const auto& qual : std::vector<std::vector<unsigned>>{
           {1, 3, 4}, {2, 5, 6}, {1, 2, 3}, {4, 5, 6}, {1, 2, 3, 4, 5, 6}}) {
    std::vector<mpz_class> w0, w1;
    for (unsigned i : qual) {
      w0.push_back(honest_partial(i));
      w1.push_back(sim_partial(i));
    }
    EXPECT_EQ(tdec(tpk, qual, w0), m) << "world 0, set size " << qual.size();
    EXPECT_EQ(tdec(tpk, qual, w1), m) << "world 1, set size " << qual.size();
  }
}

TEST(SimulatabilityGame, SimulatorCanAlsoEquivocate) {
  // The simulator's real power (used in Hybrids 3-5 of the proof): forcing
  // a *different* message than the encrypted one.
  Rng rng(8402);
  ThresholdKeys keys = tkgen(kBits, 1, 5, 1, rng);
  const auto& tpk = keys.tpk;
  mpz_class m_true = 1111, m_lie = 2222;
  mpz_class c = tpk.pk.enc(m_true, rng);
  std::vector<ThresholdKeyShare> honest(keys.shares.begin() + 1, keys.shares.end());
  auto sim = sim_tpdec(tpk, c, m_lie, m_true, honest, {1});
  std::vector<unsigned> qual{2, 3};
  std::vector<mpz_class> partials{sim[0], sim[1]};
  EXPECT_EQ(tdec(tpk, qual, partials), m_lie);
}

TEST(Hvzk, SimulatedTranscriptVerifies) {
  Rng rng(8403);
  PaillierSK sk = paillier_keygen(kBits, 2, rng, false);
  mpz_class x = rng.below(mpz_class(1) << 64), r;
  mpz_class c = sk.pk.enc(x, rng, &r);
  mpz_class g = rng.unit_mod(sk.pk.ns1);
  g = g * g % sk.pk.ns1;
  mpz_class y;
  mpz_powm(y.get_mpz_t(), g.get_mpz_t(), x.get_mpz_t(), sk.pk.ns1.get_mpz_t());

  LinkStatement st;
  st.domain = "hvzk";
  st.paillier_legs = {PaillierLeg{sk.pk, c}};
  st.exponent_legs = {ExponentLeg{g, y, sk.pk.ns1}};
  st.bound_bits = 64;

  mpz_class e = rng.bits(kKappa);
  auto simulated = link_simulate(st, e, rng);
  EXPECT_TRUE(link_verify_with_challenge(st, simulated, e));
  // The simulated transcript is NOT a valid Fiat-Shamir proof (the hash
  // would not produce `e`) — that is exactly the ROM-programming point.
  EXPECT_FALSE(link_verify(st, simulated));
}

TEST(Hvzk, SimulatedResponsesMatchHonestMarginals) {
  // z in both worlds is (statistically close to) uniform over the mask
  // range; compare bit-length distributions coarsely.
  Rng rng(8404);
  PaillierSK sk = paillier_keygen(kBits, 2, rng, false);
  mpz_class x = 12345, r;
  mpz_class c = sk.pk.enc(x, rng, &r);
  LinkStatement st;
  st.domain = "hvzk.marginal";
  st.paillier_legs = {PaillierLeg{sk.pk, c}};
  st.bound_bits = 16;

  const unsigned mask_bits = st.bound_bits + kKappa + kStat;
  double honest_bits = 0, sim_bits = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    auto hp = link_prove(st, LinkWitness{SecretMpz(x), {SecretMpz(r)}}, rng);
    honest_bits += static_cast<double>(mpz_sizeinbase(hp.z.get_mpz_t(), 2));
    auto sp = link_simulate(st, rng.bits(kKappa), rng);
    sim_bits += static_cast<double>(mpz_sizeinbase(sp.z.get_mpz_t(), 2));
  }
  // Both averages sit within a few bits of the mask size.
  EXPECT_NEAR(honest_bits / trials, mask_bits, 4.0);
  EXPECT_NEAR(sim_bits / trials, mask_bits, 4.0);
}

TEST(Knowledge, ProofsDoNotTransplantAcrossStatements) {
  Rng rng(8405);
  PaillierSK sk = paillier_keygen(kBits, 2, rng, false);
  mpz_class x = 7, r1;
  mpz_class c1 = sk.pk.enc(x, rng, &r1);
  mpz_class c2 = sk.pk.enc(x, rng);  // same plaintext, different ciphertext
  LinkStatement st1;
  st1.domain = "bind";
  st1.paillier_legs = {PaillierLeg{sk.pk, c1}};
  st1.bound_bits = 16;
  auto proof = link_prove(st1, LinkWitness{SecretMpz(x), {SecretMpz(r1)}}, rng);
  LinkStatement st2 = st1;
  st2.paillier_legs[0].ciphertext = c2;
  EXPECT_TRUE(link_verify(st1, proof));
  EXPECT_FALSE(link_verify(st2, proof));  // challenge binds the statement
  // Even the domain label alone separates statements.
  LinkStatement st3 = st1;
  st3.domain = "bind.other";
  EXPECT_FALSE(link_verify(st3, proof));
}

}  // namespace
}  // namespace yoso
