// Tests for the src/obs tracing & metrics layer: span nesting, dual
// (virtual vs wall) timestamps, deterministic Chrome-trace export,
// histogram bucketing, and the unified run-report schema.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "mpc/failure.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/runtime.hpp"
#include "obs/trace.hpp"
#include "yoso/bulletin.hpp"
#include "yoso/ledger.hpp"

namespace yoso::obs {
namespace {

#ifndef OBS_DISABLED

// Each test runs against the process-global tracer/metrics; reset both and
// force-enable recording so test order cannot matter.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_enabled(true);
    tracer().reset();
    tracer().detach_virtual_clock(this);
    metrics().reset();
  }
  void TearDown() override {
    tracer().detach_virtual_clock(this);
    set_enabled(true);
  }
};

TEST_F(ObsTest, SpansNestByOpenStack) {
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
      Span("instant", "test").attr("k", "v");
    }
  }
  const auto& spans = tracer().spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "instant");
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[2].depth, 2u);
  for (const auto& s : spans) EXPECT_FALSE(s.open);
  EXPECT_EQ(tracer().open_depth(), 0u);
}

TEST_F(ObsTest, EndingAnOuterSpanUnwindsOpenInnerSpans) {
  std::uint32_t outer = tracer().begin_span("outer", "test");
  tracer().begin_span("inner", "test");
  tracer().end_span(outer);  // e.g. an exception unwound past `inner`
  const auto& spans = tracer().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_FALSE(spans[0].open);
  EXPECT_FALSE(spans[1].open);
  EXPECT_EQ(tracer().open_depth(), 0u);
}

TEST_F(ObsTest, ExplicitEndMakesTheDestructorANoOp) {
  Span s("early", "test");
  s.end();
  s.end();  // idempotent
  ASSERT_EQ(tracer().spans().size(), 1u);
  EXPECT_FALSE(tracer().spans()[0].open);
}

TEST_F(ObsTest, VirtualClockDrivesVirtTimestampsWallAlwaysRecorded) {
  double now = 1.5;
  tracer().attach_virtual_clock(this, [&now] { return now; });
  std::uint32_t id = tracer().begin_span("s", "test");
  now = 2.0;
  tracer().end_span(id);
  const SpanRecord& rec = tracer().spans()[0];
  EXPECT_DOUBLE_EQ(rec.virt_start, 1.5);
  EXPECT_DOUBLE_EQ(rec.virt_end, 2.0);
  EXPECT_GT(rec.wall_start_ns, 0u);
  EXPECT_GE(rec.wall_end_ns, rec.wall_start_ns);
}

TEST_F(ObsTest, WithoutVirtualClockVirtStaysUnset) {
  std::uint32_t id = tracer().begin_span("s", "test");
  tracer().end_span(id);
  const SpanRecord& rec = tracer().spans()[0];
  EXPECT_LT(rec.virt_start, 0);
  EXPECT_GT(rec.wall_start_ns, 0u);
}

TEST_F(ObsTest, DetachIsKeyedByOwnerSoStaleOwnersCannotClobber) {
  int other = 0;
  tracer().attach_virtual_clock(this, [] { return 1.0; });
  tracer().attach_virtual_clock(&other, [] { return 2.0; });
  tracer().detach_virtual_clock(this);  // stale owner: must be a no-op
  EXPECT_TRUE(tracer().has_virtual_clock());
  tracer().detach_virtual_clock(&other);
  EXPECT_FALSE(tracer().has_virtual_clock());
}

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  set_enabled(false);
  {
    Span s("muted", "test");
    s.attr("k", 1);
  }
  EXPECT_TRUE(tracer().spans().empty());
  set_enabled(true);
}

TEST_F(ObsTest, ChromeTraceRoundTripsThroughTheParser) {
  double now = 0.25;
  tracer().attach_virtual_clock(this, [&now] { return now; });
  std::uint32_t id = tracer().begin_span("phase.setup", "phase");
  tracer().attr(id, "committee", "setup.tkgen");
  tracer().attr_num(id, "n", 6);
  now = 0.75;
  tracer().end_span(id);

  const std::string text = tracer().chrome_trace_json();
  std::string error;
  EXPECT_TRUE(validate_trace_json(text, &error)) << error;

  const json::Value doc = json::parse(text);
  EXPECT_EQ(doc.str_or("displayTimeUnit", ""), "ms");
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 2u);  // process_name metadata + 1 span
  const json::Value& meta = events->items[0];
  EXPECT_EQ(meta.str_or("ph", ""), "M");
  const json::Value& ev = events->items[1];
  EXPECT_EQ(ev.str_or("ph", ""), "X");
  EXPECT_EQ(ev.str_or("name", ""), "phase.setup");
  EXPECT_EQ(ev.str_or("cat", ""), "phase");
  EXPECT_DOUBLE_EQ(ev.num_or("ts", -1), 0.25 * 1e6);   // virtual seconds -> us
  EXPECT_DOUBLE_EQ(ev.num_or("dur", -1), 0.5 * 1e6);
  const json::Value* args = ev.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->str_or("committee", ""), "setup.tkgen");
  EXPECT_DOUBLE_EQ(args->num_or("n", -1), 6);
}

TEST_F(ObsTest, ExportIsDeterministicUnderTheVirtualClock) {
  const auto record_once = [this] {
    tracer().reset();
    double now = 0;
    tracer().attach_virtual_clock(this, [&now] { return now; });
    for (int i = 0; i < 4; ++i) {
      std::uint32_t id = tracer().begin_span("step", "test");
      tracer().attr_num(id, "i", i);
      now += 0.125;
      tracer().end_span(id);
    }
    return tracer().chrome_trace_json();  // default: no wall timings
  };
  EXPECT_EQ(record_once(), record_once());
}

TEST_F(ObsTest, IncludeWallAddsWallArgs) {
  std::uint32_t id = tracer().begin_span("s", "test");
  tracer().end_span(id);
  const json::Value doc = json::parse(tracer().chrome_trace_json(/*include_wall=*/true));
  const json::Value& ev = doc.find("traceEvents")->items[1];
  EXPECT_NE(ev.find("args")->find("wall_dur_us"), nullptr);
  const json::Value plain = json::parse(tracer().chrome_trace_json());
  EXPECT_EQ(plain.find("traceEvents")->items[1].find("args")->find("wall_dur_us"), nullptr);
}

TEST_F(ObsTest, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(validate_trace_json("not json", &error));
  EXPECT_FALSE(validate_trace_json("[]", &error));
  EXPECT_FALSE(validate_trace_json(R"({"traceEvents":1})", &error));
  EXPECT_FALSE(validate_trace_json(R"({"traceEvents":[{"ph":"X","pid":1,"tid":1}]})", &error));
  EXPECT_FALSE(validate_trace_json(
      R"({"traceEvents":[{"name":"s","ph":"Q","pid":1,"tid":1,"ts":0,"dur":0}]})", &error));
  EXPECT_FALSE(validate_trace_json(
      R"({"traceEvents":[{"name":"s","ph":"X","pid":1,"tid":1,"ts":-5,"dur":0}]})", &error));
  EXPECT_TRUE(validate_trace_json(
      R"({"traceEvents":[{"name":"s","ph":"X","pid":1,"tid":1,"ts":0,"dur":3.5}]})", &error))
      << error;
}

TEST_F(ObsTest, HistogramLog2Bucketing) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);
  EXPECT_EQ(Histogram::bucket_max(0), 0u);
  EXPECT_EQ(Histogram::bucket_max(1), 1u);
  EXPECT_EQ(Histogram::bucket_max(11), 2047u);
  EXPECT_EQ(Histogram::bucket_max(64), ~std::uint64_t{0});

  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(900);
  h.observe(900);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1801u);
  EXPECT_EQ(h.max(), 900u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(10), 2u);
}

TEST_F(ObsTest, MetricsHandlesAreStableAndReportParses) {
  Counter& c = metrics().counter("test.counter");
  c.add(3);
  EXPECT_EQ(&c, &metrics().counter("test.counter"));
  EXPECT_EQ(c.value(), 3u);
  metrics().gauge("test.gauge").set(-7);
  metrics().histogram("test.hist").observe(100);

  const json::Value doc = json::parse(metrics().report_json());
  EXPECT_DOUBLE_EQ(doc.find("counters")->num_or("test.counter", -1), 3);
  EXPECT_DOUBLE_EQ(doc.find("gauges")->num_or("test.gauge", 0), -7);
  const json::Value* hist = doc.find("histograms")->find("test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->num_or("count", -1), 1);
  EXPECT_DOUBLE_EQ(hist->num_or("sum", -1), 100);

  metrics().reset();
  EXPECT_EQ(c.value(), 0u);

  set_enabled(false);
  c.add(5);
  EXPECT_EQ(c.value(), 0u);  // muted registry ignores updates
  set_enabled(true);
}

TEST_F(ObsTest, RunReportParsesWithAndWithoutFailure) {
  Ledger ledger;
  Bulletin board(ledger);
  board.publish_external("dealer", Phase::Setup, "setup.tpk", 64, 1);
  metrics().counter("paillier.enc").add(2);

  const json::Value plain = json::parse(run_report_json(board));
  ASSERT_NE(plain.find("board"), nullptr);
  ASSERT_NE(plain.find("metrics"), nullptr);
  EXPECT_EQ(plain.find("failure"), nullptr);
  EXPECT_DOUBLE_EQ(plain.find("metrics")->find("counters")->num_or("paillier.enc", -1), 2);

  FailureReport failure;
  failure.committee = "offline.mask \"L1\"";  // exercises escaping
  failure.gate = "offline.reenc.mask";
  failure.threshold = 3;
  failure.verified = 1;
  failure.missing = 2;
  const json::Value with = json::parse(run_report_json(board, &failure));
  const json::Value* f = with.find("failure");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->str_or("committee", ""), "offline.mask \"L1\"");
  EXPECT_DOUBLE_EQ(f->num_or("threshold", -1), 3);
  EXPECT_EQ(f->find("silence_decisive")->boolean, true);

  // The board section embeds the ledger report; both must stay parseable.
  const json::Value* board_doc = with.find("board");
  ASSERT_NE(board_doc->find("posts"), nullptr);
  ASSERT_NE(board_doc->find("ledger"), nullptr);
}

#else  // OBS_DISABLED

TEST(ObsDisabled, StubsCompileAndDoNothing) {
  Span s("noop", "test");
  s.attr("k", 1).attr("s", "v");
  s.end();
  OBS_COUNT("noop.count");
  OBS_COUNT_N("noop.count_n", 3);
  OBS_HIST("noop.hist", 7);
  EXPECT_FALSE(enabled());
}

#endif

}  // namespace
}  // namespace yoso::obs
