// Validates the analytic cost model against the real protocol's ledger —
// the model must predict the measured element counts *exactly* (it mirrors
// the implementation's message schedule), which licenses the paper-scale
// extrapolations in the benches.
#include <gtest/gtest.h>

#include "baseline/cdn.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"
#include "sortition/costmodel.hpp"
#include "sortition/table1.hpp"

namespace yoso {
namespace {

std::vector<std::vector<mpz_class>> small_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(100))));
    }
  }
  return inputs;
}

class CostModelVsMeasured : public ::testing::TestWithParam<int> {};

TEST_P(CostModelVsMeasured, PackedModelMatchesLedgerExactly) {
  Circuit c;
  switch (GetParam()) {
    case 0: c = wide_mul_circuit(4); break;
    case 1: c = inner_product_circuit(3); break;
    case 2: c = chain_circuit(2); break;
    default: c = statistics_circuit(3); break;
  }
  auto params = ProtocolParams::for_gap(5, 0.2, 128);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 7600 + GetParam());
  mpc.run(small_inputs(c, GetParam()));

  auto shape = CircuitShape::of(c);
  auto model = packed_cost(params, shape);
  double measured_off =
      static_cast<double>(mpc.ledger().phase_total(Phase::Offline).elements);
  double measured_on = static_cast<double>(mpc.ledger().phase_total(Phase::Online).elements);
  EXPECT_DOUBLE_EQ(model.offline, measured_off);
  EXPECT_DOUBLE_EQ(model.online, measured_on);
}

INSTANTIATE_TEST_SUITE_P(Circuits, CostModelVsMeasured, ::testing::Values(0, 1, 2, 3));

TEST(CostModel, CdnModelMatchesLedgerExactly) {
  Circuit c = wide_mul_circuit(4);
  auto params = ProtocolParams::for_gap(5, 0.2, 128);
  CdnBaseline cdn(params, c, AdversaryPlan::honest(params.n), 7610);
  cdn.run(small_inputs(c, 99));
  auto model = cdn_cost(params, CircuitShape::of(c));
  EXPECT_DOUBLE_EQ(model.offline,
                   static_cast<double>(cdn.ledger().phase_total(Phase::Offline).elements));
  EXPECT_DOUBLE_EQ(model.online,
                   static_cast<double>(cdn.ledger().phase_total(Phase::Online).elements));
}

TEST(CostModel, OnlinePerGateIsNOverK) {
  auto params = ProtocolParams::for_gap(16, 0.25, 128);
  auto shape = CircuitShape::wide(160);
  auto model = packed_cost(params, shape);
  EXPECT_NEAR(model.online_per_gate, 16.0 / params.k, 0.01);
  auto cdn = cdn_cost(params, shape);
  EXPECT_DOUBLE_EQ(cdn.online_per_gate, 2.0 * 16);
}

TEST(CostModel, ShapeOfExtractsLayers) {
  Circuit c = chain_circuit(3);
  auto s = CircuitShape::of(c);
  EXPECT_EQ(s.depth(), 3u);
  EXPECT_EQ(s.mul_gates, 3u);
  EXPECT_EQ(s.batches(2), 3u);  // one gate per layer, never merged
  EXPECT_EQ(CircuitShape::wide(10).batches(4), 3u);
}

TEST(CostModel, ParamsFromAnalysisRespectsGod) {
  auto g = analyze_gap(SortitionConfig{1000, 0.05});
  ASSERT_TRUE(g.feasible);
  auto p = params_from_analysis(g, 2048);
  EXPECT_LE(p.recon_threshold(), p.n - p.t);
  EXPECT_GE(p.k, 1u);
  EXPECT_NEAR(static_cast<double>(p.n), g.c, 1.0);
}

TEST(CostModel, PaperScaleOrderingHolds) {
  // At every feasible Table 1 cell, the packed protocol's online cost per
  // gate beats the baseline's by a factor within [k/4, 4k] — the paper's
  // "improvement by a factor of k" up to small constants.
  for (const auto& row : generate_table1()) {
    if (!row.analysis.feasible || row.analysis.k < 4) continue;
    auto p = params_from_analysis(row.analysis, 2048);
    auto shape = CircuitShape::wide(static_cast<std::size_t>(4) * p.n);
    double ours = packed_cost(p, shape).online_per_gate;
    double theirs = cdn_cost(p, shape).online_per_gate;
    double ratio = theirs / ours;
    EXPECT_GE(ratio, row.analysis.k / 4.0) << "C=" << row.C << " f=" << row.f;
    EXPECT_LE(ratio, 4.0 * row.analysis.k) << "C=" << row.C << " f=" << row.f;
  }
}

}  // namespace
}  // namespace yoso
