// White-box tests of the offline phase: decrypt the preprocessing
// artifacts with the dealer key (test-only) and check the correlation
// invariants the online phase relies on — lambda propagation through
// linear gates, Gamma = lambda_a * lambda_b - lambda_g, packed sharings
// storing the right vectors at the right degree, and FutureCts opening to
// the packed shares.
#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "field/zn_ring.hpp"
#include "mpc/offline.hpp"
#include "mpc/protocol.hpp"
#include "sharing/packed.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

// Drives setup + offline through internal entry points so the dealer key
// stays accessible for decryption.
struct OfflineEnv {
  ProtocolParams params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit circuit;
  Rng rng{8201};
  Ledger ledger;
  Bulletin bulletin{ledger};
  SetupArtifacts setup;
  std::deque<Committee> committees;
  std::optional<DecryptChain> chain;
  OfflineArtifacts off;

  explicit OfflineEnv(Circuit c) : circuit(std::move(c)) {
    params.planned_epochs = circuit.mul_depth() + 3;
    setup = run_setup(params, circuit.mul_depth(), circuit.num_clients(), bulletin, rng);
    auto spawn = [&](const std::string& name, unsigned plain_bits) -> Committee& {
      CommitteeCorruption cor;
      cor.status.assign(params.n, RoleStatus::Honest);
      committees.push_back(make_committee(name, params.paillier_bits,
                                          params.exponent_for(plain_bits), cor, rng));
      return committees.back();
    };
    OfflineCommittees coms;
    coms.beaver_a = &spawn("a", params.paillier_bits);
    coms.beaver_b = &spawn("b", params.paillier_bits);
    coms.randomness = &spawn("r", params.paillier_bits);
    for (unsigned l = 1; l <= circuit.mul_depth(); ++l) {
      coms.layer_holders.push_back(&spawn("h" + std::to_string(l), params.holder_plain_bits()));
    }
    coms.reenc_masker = &spawn("rm", params.paillier_bits);
    coms.reenc_holder = &spawn("rh", params.holder_plain_bits());
    coms.next_after = &spawn("next", params.holder_plain_bits());
    chain.emplace(setup.tkeys.tpk, setup.tkeys.shares, params, bulletin, rng);
    off = run_offline(params, circuit, setup, *chain, coms, bulletin, rng);
  }

  mpz_class dec(const mpz_class& c) { return setup.tkeys.dealer_sk.dec(c); }
  const mpz_class& ns() const { return setup.tkeys.tpk.pk.ns; }
};

TEST(OfflineInvariants, LambdaPropagatesThroughLinearGates) {
  Circuit c;
  WireId x = c.input(0);
  WireId y = c.input(0);
  WireId s = c.add(x, y);
  WireId d = c.sub(s, y);
  WireId ac = c.add_const(d, mpz_class(7));
  WireId mc = c.mul_const(ac, mpz_class(3));
  c.output(mc, 0);
  OfflineEnv env(std::move(c));
  ZnRing ring(env.ns());
  mpz_class lx = env.dec(env.off.wire_lambda_ct[x]);
  mpz_class ly = env.dec(env.off.wire_lambda_ct[y]);
  EXPECT_EQ(env.dec(env.off.wire_lambda_ct[s]), ring.add(lx, ly));
  EXPECT_EQ(env.dec(env.off.wire_lambda_ct[d]), lx);
  EXPECT_EQ(env.dec(env.off.wire_lambda_ct[ac]), lx);  // AddConst keeps lambda
  EXPECT_EQ(env.dec(env.off.wire_lambda_ct[mc]), ring.mul(mpz_class(3), lx));
}

TEST(OfflineInvariants, PackedSharesEncodeLambdaVectors) {
  OfflineEnv env(wide_mul_circuit(4));  // k = 2 -> 2 batches
  ZnRing ring(env.ns());
  ASSERT_EQ(env.off.batches.size(), 2u);
  for (std::size_t b = 0; b < env.off.batches.size(); ++b) {
    const MulBatch& batch = env.off.batches[b];
    const BatchShares& bs = env.off.batch_shares[b];
    // Recover each role's packed share by opening its FutureCt with the
    // role's KFF key, then reconstruct the secret vectors.
    std::vector<std::int64_t> pts;
    std::vector<mpz_class> sa, sb, sg;
    for (unsigned i = 0; i < env.params.n; ++i) {
      const PaillierSK& kff = env.setup.kff_mult[batch.layer - 1][i].sk;
      pts.push_back(i + 1);
      sa.push_back(open_future(kff, bs.alpha[i], env.ns()));
      sb.push_back(open_future(kff, bs.beta[i], env.ns()));
      sg.push_back(open_future(kff, bs.gamma[i], env.ns()));
    }
    const unsigned d = env.params.packed_degree();
    auto la = packed_reconstruct(ring, pts, sa, d, env.params.k);
    auto lb = packed_reconstruct(ring, pts, sb, d, env.params.k);
    auto gm = packed_reconstruct(ring, pts, sg, d, env.params.k);
    for (unsigned j = 0; j < env.params.k; ++j) {
      mpz_class ea = env.dec(env.off.wire_lambda_ct[batch.alpha[j]]);
      mpz_class eb = env.dec(env.off.wire_lambda_ct[batch.beta[j]]);
      mpz_class eg = env.dec(env.off.wire_lambda_ct[batch.gamma[j]]);
      EXPECT_EQ(la[j], ea) << "batch " << b << " slot " << j;
      EXPECT_EQ(lb[j], eb);
      // Gamma invariant: the heart of the online multiplication.
      EXPECT_EQ(gm[j], ring.sub(ring.mul(ea, eb), eg));
    }
  }
}

TEST(OfflineInvariants, InputLambdaFutureCtsOpenForClients) {
  OfflineEnv env(inner_product_circuit(2));
  for (const auto& [wire, fct] : env.off.input_lambda) {
    unsigned client = env.circuit.gates()[wire].client;
    mpz_class opened = open_future(env.setup.kff_client[client].sk, fct, env.ns());
    EXPECT_EQ(opened, env.dec(env.off.wire_lambda_ct[wire]));
  }
}

TEST(OfflineInvariants, FreshLambdasAreDistinct) {
  OfflineEnv env(wide_mul_circuit(3));
  std::set<std::string> seen;
  for (WireId w = 0; w < env.circuit.gates().size(); ++w) {
    if (env.circuit.gates()[w].kind != GateKind::Input &&
        env.circuit.gates()[w].kind != GateKind::Mul) {
      continue;
    }
    seen.insert(env.dec(env.off.wire_lambda_ct[w]).get_str());
  }
  EXPECT_EQ(seen.size(), env.circuit.num_inputs() + env.circuit.num_mul_gates());
}

TEST(OfflineInvariants, PaddedBatchSlotsRepeatSlotZero) {
  OfflineEnv env(wide_mul_circuit(3));  // k = 2 -> second batch padded
  const MulBatch& padded = env.off.batches[1];
  ASSERT_EQ(padded.real, 1u);
  EXPECT_EQ(padded.gamma[1], padded.gamma[0]);
  // The packed sharing stores the duplicated lambda in both slots.
  ZnRing ring(env.ns());
  std::vector<std::int64_t> pts;
  std::vector<mpz_class> sg;
  for (unsigned i = 0; i < env.params.n; ++i) {
    const PaillierSK& kff = env.setup.kff_mult[0][i].sk;
    pts.push_back(i + 1);
    sg.push_back(open_future(kff, env.off.batch_shares[1].alpha[i], env.ns()));
  }
  auto la = packed_reconstruct(ring, pts, sg, env.params.packed_degree(), env.params.k);
  EXPECT_EQ(la[0], la[1]);
}

}  // namespace
}  // namespace yoso
