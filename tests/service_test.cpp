// MPC-as-a-service tests: structured admission control, deterministic
// queueing, triple-pool hit/miss accounting with ledger-visible amortized
// offline cost, per-session ledger isolation, solo-vs-multiplexed
// determinism of session outputs and of the whole service report, the
// secure-aggregation workload oracles, and the chaos campaign's
// service-mode contract (GOD in bounds, classified failures out of bounds,
// a stalled pool never serves a hit).
#include <gtest/gtest.h>

#include "chaos/campaign.hpp"
#include "circuit/workloads.hpp"
#include "service/service.hpp"
#include "service/workloads.hpp"

namespace yoso {
namespace {

using service::AggregationConfig;
using service::AggregationWorkload;
using service::MpcService;
using service::RejectReason;
using service::ServiceConfig;
using service::SessionRequest;
using service::SessionState;

// Small, fast parameterization: n = 4, eps = 1/4 gives t = 0, k = 2.
ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = 7;
  return cfg;
}

std::vector<std::vector<mpz_class>> stats_inputs(unsigned parties, unsigned base) {
  std::vector<std::vector<mpz_class>> inputs;
  for (unsigned i = 0; i < parties; ++i) inputs.push_back({mpz_class(base + i)});
  return inputs;
}

SessionRequest stats_request(const std::string& tag, unsigned parties, unsigned base,
                             unsigned priority = 0) {
  SessionRequest req;
  req.tag = tag;
  req.circuit = statistics_circuit(parties);
  req.inputs = stats_inputs(parties, base);
  req.priority = priority;
  return req;
}

// --- Admission control ------------------------------------------------------

TEST(ServiceAdmissionTest, StructuredRejectionReasons) {
  ServiceConfig cfg = small_config();
  cfg.max_clients = 2;
  cfg.max_mul_depth = 1;
  cfg.max_concurrent = 1;
  cfg.max_queue = 0;  // no waiting room: second concurrent arrival bounces
  MpcService svc(cfg);

  // Too many input clients for the service.
  const auto too_many = svc.submit_at(0.0, stats_request("too-many", 3, 10));
  // Multiplicative depth beyond the cap.
  SessionRequest deep;
  deep.tag = "too-deep";
  deep.circuit = mul_tree_circuit(4);  // depth 2
  deep.inputs = {{mpz_class(1), mpz_class(2), mpz_class(3), mpz_class(4)}};
  const auto too_deep = svc.submit_at(0.0, std::move(deep));
  // Inputs not matching the circuit's declarations.
  SessionRequest bad;
  bad.tag = "bad-inputs";
  bad.circuit = statistics_circuit(2);
  bad.inputs = {{mpz_class(1)}};  // second client's inputs missing
  const auto bad_inputs = svc.submit_at(0.0, std::move(bad));
  // Admissible; occupies the single runner slot.
  const auto ok = svc.submit_at(0.0, stats_request("ok", 2, 10));
  // Arrives while the slot is taken and the queue holds zero: bounced.
  const auto overflow = svc.submit_at(1e-6, stats_request("overflow", 2, 20));
  // Arrives after shutdown.
  svc.shutdown_at(1.0);
  const auto late = svc.submit_at(2.0, stats_request("late", 2, 30));

  svc.run();

  EXPECT_EQ(svc.session(too_many).state, SessionState::Rejected);
  EXPECT_EQ(svc.session(too_many).reject_reason, RejectReason::TooManyClients);
  EXPECT_EQ(svc.session(too_deep).reject_reason, RejectReason::TooDeep);
  EXPECT_EQ(svc.session(bad_inputs).reject_reason, RejectReason::BadInputs);
  EXPECT_EQ(svc.session(overflow).reject_reason, RejectReason::QueueFull);
  EXPECT_EQ(svc.session(late).reject_reason, RejectReason::ShuttingDown);

  const auto& done = svc.session(ok);
  EXPECT_EQ(done.state, SessionState::Completed);
  EXPECT_EQ(done.reject_reason, RejectReason::None);
  // sum(10, 11) and 10^2 + 11^2.
  ASSERT_EQ(done.outputs.size(), 2u);
  EXPECT_EQ(done.outputs[0], 21);
  EXPECT_EQ(done.outputs[1], 221);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServiceQueueTest, PriorityBeforeFifoWithinLevel) {
  ServiceConfig cfg = small_config();
  cfg.max_concurrent = 1;
  MpcService svc(cfg);
  // All three arrive while the first submission runs; the priority-1 session
  // overtakes the earlier priority-0 one, FIFO breaks the tie at level 0.
  const auto head = svc.submit_at(0.0, stats_request("head", 2, 1));
  const auto low_a = svc.submit_at(0.001, stats_request("low-a", 2, 2));
  const auto high = svc.submit_at(0.002, stats_request("high", 2, 3, /*priority=*/1));
  const auto low_b = svc.submit_at(0.003, stats_request("low-b", 2, 4));
  svc.run();

  EXPECT_EQ(svc.session(head).state, SessionState::Completed);
  EXPECT_LT(svc.session(high).start_s, svc.session(low_a).start_s);
  EXPECT_LT(svc.session(low_a).start_s, svc.session(low_b).start_s);
}

// --- Triple pool ------------------------------------------------------------

TEST(ServicePoolTest, HitMissAccountingAndAmortizedLedger) {
  ServiceConfig cfg = small_config();
  cfg.max_concurrent = 1;
  cfg.pool.lanes = 1;
  cfg.pool.capacity = 2;
  cfg.pool_circuit = statistics_circuit(3);
  MpcService svc(cfg);

  // By t = 0.5 the pool has banked its two units; the third session reuses
  // the slot freed by the first claim.
  const auto a = svc.submit_at(0.50, stats_request("a", 3, 10));
  const auto b = svc.submit_at(0.51, stats_request("b", 3, 20));
  const auto c = svc.submit_at(0.52, stats_request("c", 3, 30));
  // Different circuit shape: never matches the pool's fingerprint.
  SessionRequest other;
  other.tag = "other";
  other.circuit = inner_product_circuit(1);
  other.inputs = {{mpz_class(6)}, {mpz_class(7)}};
  const auto d = svc.submit_at(0.53, std::move(other));
  svc.run();

  for (auto id : {a, b, c, d}) {
    EXPECT_EQ(svc.session(id).state, SessionState::Completed) << "session " << id;
  }
  EXPECT_TRUE(svc.session(a).pool_hit);
  EXPECT_FALSE(svc.session(d).pool_hit);
  EXPECT_EQ(svc.session(d).outputs[0], 42);

  const auto& pool = svc.pool().stats();
  EXPECT_EQ(pool.hits + pool.misses, 4u);
  EXPECT_GE(pool.hits, 2u);
  EXPECT_GE(pool.peak_depth, 2u);

  // A hit session's ledger carries the marker and the amortized production
  // traffic (setup + offline paid before the session arrived).
  const Ledger& hit_ledger = *svc.session(a).ledger;
  EXPECT_EQ(hit_ledger.categories(Phase::Online).count("service.pool.hit"), 1u);
  EXPECT_GT(hit_ledger.phase_total(Phase::Offline).bytes, 0u);
  // The mismatched session ran inline and is marked as a miss.
  const Ledger& miss_ledger = *svc.session(d).ledger;
  EXPECT_EQ(miss_ledger.categories(Phase::Online).count("service.pool.miss"), 1u);

  // A hit pays only online virtual latency; the mismatch paid all phases.
  EXPECT_LT(svc.session(a).latency_s(), svc.session(d).latency_s());
}

TEST(ServicePoolTest, StalledPoolForcesInlineMisses) {
  ServiceConfig cfg = small_config();
  cfg.pool.lanes = 1;
  cfg.pool.stalled = true;
  cfg.pool_circuit = statistics_circuit(2);
  MpcService svc(cfg);
  const auto id = svc.submit_at(0.5, stats_request("starved", 2, 5));
  svc.run();

  EXPECT_EQ(svc.session(id).state, SessionState::Completed);
  EXPECT_FALSE(svc.session(id).pool_hit);
  EXPECT_EQ(svc.pool().stats().hits, 0u);
  EXPECT_EQ(svc.pool().stats().produced, 0u);
}

// --- Ledger scoping ---------------------------------------------------------

TEST(ServiceLedgerTest, PerSessionIsolationAndAggregateFold) {
  ServiceConfig cfg = small_config();
  MpcService svc(cfg);
  const auto a = svc.submit_at(0.0, stats_request("a", 2, 10));
  const auto b = svc.submit_at(0.0, stats_request("b", 2, 20));
  svc.run();

  const Ledger& la = *svc.session(a).ledger;
  const Ledger& lb = *svc.session(b).ledger;
  // Identical workloads, isolated boards: same message structure, separate
  // books (byte totals differ slightly with each session's randomness).
  EXPECT_GT(la.total().bytes, 0u);
  EXPECT_EQ(la.total().messages, lb.total().messages);
  EXPECT_NE(&la, &lb);

  // The aggregate view is exactly the fold of the per-session ledgers (the
  // pool is idle here, so there is no unclaimed production traffic).
  const Ledger agg = svc.aggregate_ledger();
  EXPECT_EQ(agg.total().bytes, la.total().bytes + lb.total().bytes);
  EXPECT_EQ(agg.total().messages, la.total().messages + lb.total().messages);
}

// --- Determinism ------------------------------------------------------------

TEST(ServiceDeterminismTest, SoloVersusMultiplexedOutputs) {
  AggregationConfig acfg;
  acfg.clients_total = 3000;
  acfg.batch_clients = 1000;
  acfg.gateways = 3;
  AggregationWorkload workload(acfg);

  const auto run_service = [&](unsigned batches) {
    ServiceConfig cfg = small_config();
    cfg.pool.lanes = 1;
    cfg.pool.capacity = 2;
    cfg.pool_circuit = workload.session_circuit();
    auto svc = std::make_unique<MpcService>(cfg);
    for (unsigned b = 0; b < batches; ++b) {
      auto batch = workload.batch(b);
      svc->submit_at(batch.submit_at, std::move(batch.request));
    }
    svc->run();
    return svc;
  };

  const auto solo = run_service(1);
  const auto multi = run_service(3);
  ASSERT_EQ(solo->session(1).state, SessionState::Completed);
  ASSERT_EQ(multi->session(1).state, SessionState::Completed);
  // Batch 0's outputs do not depend on how many sessions share the service.
  EXPECT_EQ(solo->session(1).outputs, multi->session(1).outputs);
  for (unsigned b = 0; b < 3; ++b) {
    EXPECT_TRUE(workload.verify(workload.batch(b), multi->session(b + 1)))
        << "batch " << b;
  }

  // Bit-for-bit reproducibility of the full report across identical runs.
  const auto multi2 = run_service(3);
  EXPECT_EQ(multi->report_json(), multi2->report_json());
}

// --- Aggregation workload ---------------------------------------------------

TEST(AggregationWorkloadTest, BatchStreamIsDeterministicAndUnmasks) {
  AggregationConfig cfg;
  cfg.clients_total = 50'000;
  cfg.batch_clients = 10'000;
  cfg.gateways = 4;
  AggregationWorkload w(cfg);
  EXPECT_EQ(w.num_batches(), 5u);

  const auto b2 = w.batch(2);
  const auto b2_again = w.batch(2);
  EXPECT_EQ(b2.masked_sum, b2_again.masked_sum);
  EXPECT_EQ(b2.expected_mask_total, b2_again.expected_mask_total);
  EXPECT_EQ(b2.request.inputs, b2_again.request.inputs);
  EXPECT_EQ(b2.clients, 10'000u);

  // The coordinator's unmasking identity holds in the clear.
  EXPECT_EQ(b2.masked_sum - b2.expected_mask_total, b2.expected_value_sum);
  // Gateway subtotals sum to the batch's mask total.
  mpz_class total = 0;
  for (const auto& gw : b2.request.inputs) total += gw[0];
  EXPECT_EQ(total, b2.expected_mask_total);
  // Distinct seeds give distinct streams.
  AggregationConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(AggregationWorkload(other).batch(2).masked_sum, b2.masked_sum);
}

// --- Chaos service mode -----------------------------------------------------

TEST(ChaosServiceTest, SamplerAndJsonCoverServiceFields) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    chaos::FaultSchedule s = chaos::FaultSchedule::random_service(seed);
    EXPECT_EQ(chaos::FaultSchedule::random_service(seed), s);
    EXPECT_GE(s.service_sessions, 2u);
    EXPECT_EQ(chaos::FaultSchedule::from_json(s.to_json()), s) << s.to_json();
    // The base sampler's dimensions are untouched by the service roll.
    chaos::FaultSchedule base = chaos::FaultSchedule::random(seed);
    base.service_sessions = s.service_sessions;
    base.pool_stall = s.pool_stall;
    EXPECT_EQ(base, s);
  }
}

TEST(ChaosServiceTest, InBoundsServiceRunDeliversEverySession) {
  chaos::FaultSchedule s;  // honest defaults: n = 6, eps = 1/4
  s.paillier_bits = 96;
  s.service_sessions = 2;
  const chaos::RunReport r = chaos::CampaignRunner::run_one(s);
  EXPECT_EQ(r.outcome, chaos::Outcome::Correct) << r.to_json();
  EXPECT_EQ(r.svc_completed, 2u);
  EXPECT_EQ(r.svc_pool_hits + r.svc_pool_misses, 2u);
  EXPECT_TRUE(r.violations.empty());
}

TEST(ChaosServiceTest, PoolStallStarvationStaysCorrect) {
  chaos::FaultSchedule s;
  s.paillier_bits = 96;
  s.service_sessions = 2;
  s.pool_stall = true;
  const chaos::RunReport r = chaos::CampaignRunner::run_one(s);
  EXPECT_EQ(r.outcome, chaos::Outcome::Correct) << r.to_json();
  EXPECT_EQ(r.svc_pool_hits, 0u);
  EXPECT_EQ(r.svc_pool_misses, 2u);
}

TEST(ChaosServiceTest, OutOfBoundsServiceRunFailsClassified) {
  chaos::FaultSchedule s;
  s.paillier_bits = 96;
  s.service_sessions = 2;
  s.malicious = 3;  // leaves only 3 verifiable roles < recon threshold 4
  ASSERT_FALSE(s.in_bounds());
  const chaos::RunReport r = chaos::CampaignRunner::run_one(s);
  EXPECT_EQ(r.outcome, chaos::Outcome::ClassifiedAbort) << r.to_json();
  EXPECT_EQ(r.svc_failed, 2u);
  EXPECT_TRUE(r.failure.has_value());
}

}  // namespace
}  // namespace yoso
