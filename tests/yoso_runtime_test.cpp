#include <gtest/gtest.h>

#include "yoso/bulletin.hpp"
#include "yoso/role_assign.hpp"

namespace yoso {
namespace {

TEST(Ledger, RecordsPerPhaseAndCategory) {
  Ledger ledger;
  ledger.record(Phase::Offline, "beaver", 100, 2);
  ledger.record(Phase::Offline, "beaver", 50, 1);
  ledger.record(Phase::Online, "mult", 10, 1);
  auto off = ledger.phase_total(Phase::Offline);
  EXPECT_EQ(off.messages, 2u);
  EXPECT_EQ(off.elements, 3u);
  EXPECT_EQ(off.bytes, 150u);
  EXPECT_EQ(ledger.phase_total(Phase::Online).bytes, 10u);
  EXPECT_EQ(ledger.phase_total(Phase::Setup).bytes, 0u);
  EXPECT_EQ(ledger.total().bytes, 160u);
  EXPECT_EQ(ledger.categories(Phase::Offline).at("beaver").messages, 2u);
}

TEST(Ledger, ResetClears) {
  Ledger ledger;
  ledger.record(Phase::Setup, "x", 1);
  ledger.reset();
  EXPECT_EQ(ledger.total().bytes, 0u);
}

TEST(Ledger, ReportMentionsPhases) {
  Ledger ledger;
  ledger.record(Phase::Online, "mult", 42);
  auto rep = ledger.report();
  EXPECT_NE(rep.find("online"), std::string::npos);
  EXPECT_NE(rep.find("mult"), std::string::npos);
}

TEST(Committee, SpeakOnceEnforced) {
  Rng rng(5001);
  CommitteeCorruption cor;
  cor.status.assign(3, RoleStatus::Honest);
  Committee c = make_committee("test", 64, 1, cor, rng);
  c.speak(0);
  EXPECT_TRUE(c.has_spoken(0));
  EXPECT_THROW(c.speak(0), std::logic_error);
  c.speak(1);  // other roles unaffected
}

TEST(Committee, RoleKeysAreFunctional) {
  Rng rng(5002);
  CommitteeCorruption cor;
  cor.status.assign(2, RoleStatus::Honest);
  Committee c = make_committee("test", 96, 2, cor, rng);
  mpz_class m = 12345;
  EXPECT_EQ(c.role_sks[0].dec(c.role_pk(0).enc(m, rng)), m);
}

TEST(Bulletin, LogsAndEnforcesSpeakOnce) {
  Ledger ledger;
  Bulletin b(ledger);
  Rng rng(5003);
  CommitteeCorruption cor;
  cor.status.assign(2, RoleStatus::Honest);
  Committee c = make_committee("com", 64, 1, cor, rng);
  b.publish(c, 0, Phase::Offline, "x", 10, 1, /*first_post_of_role=*/true);
  EXPECT_THROW(b.publish(c, 0, Phase::Offline, "y", 10, 1, true), std::logic_error);
  b.publish(c, 0, Phase::Offline, "x2", 5, 1, /*first_post_of_role=*/false);
  b.publish_external("client0", Phase::Online, "input", 3, 1);
  EXPECT_EQ(b.log().size(), 3u);
  EXPECT_EQ(b.posts_by("com"), 2u);
  EXPECT_EQ(ledger.total().bytes, 18u);
}

TEST(Adversary, HonestPlanHasNoCorruptions) {
  auto plan = AdversaryPlan::honest(5);
  auto c = plan.committee(0);
  EXPECT_EQ(c.count(RoleStatus::Malicious), 0u);
  EXPECT_EQ(c.count(RoleStatus::FailStop), 0u);
  for (unsigned i = 0; i < 5; ++i) EXPECT_TRUE(c.is_active(i));
}

TEST(Adversary, FixedPlanPlacesCorruptions) {
  auto plan = AdversaryPlan::fixed(6, 2, 1, MaliciousStrategy::BadProof);
  auto c = plan.committee(3);
  EXPECT_EQ(c.count(RoleStatus::Malicious), 2u);
  EXPECT_EQ(c.count(RoleStatus::FailStop), 1u);
  EXPECT_TRUE(c.is_malicious(0));
  EXPECT_FALSE(c.is_active(2));  // the fail-stop slot
}

TEST(Adversary, SilentMaliciousCountAsInactive) {
  auto plan = AdversaryPlan::fixed(4, 1, 0, MaliciousStrategy::Silent);
  auto c = plan.committee(0);
  EXPECT_FALSE(c.is_active(0));
}

TEST(Adversary, RandomPlanPreservesCountsAndVaries) {
  Rng rng(5004);
  auto plan = AdversaryPlan::random(8, 2, 1, rng);
  bool saw_different_placement = false;
  auto first = plan.committee(0);
  for (unsigned i = 0; i < 8; ++i) {
    auto c = plan.committee(i);
    EXPECT_EQ(c.count(RoleStatus::Malicious), 2u);
    EXPECT_EQ(c.count(RoleStatus::FailStop), 1u);
    if (c.status != first.status) saw_different_placement = true;
  }
  EXPECT_TRUE(saw_different_placement);
  // Deterministic per committee index.
  EXPECT_EQ(plan.committee(3).status, plan.committee(3).status);
}

TEST(Adversary, TooManyCorruptionsThrows) {
  EXPECT_THROW(AdversaryPlan::fixed(4, 3, 2), std::invalid_argument);
}

TEST(RoleAssignment, HypergeometricCountsAreExact) {
  RoleAssignment ra(100, 30, 10, 6001);
  // Drawing the whole pool yields exactly the pool composition.
  auto c = ra.sample_committee(100);
  EXPECT_EQ(c.count(RoleStatus::Malicious), 30u);
  EXPECT_EQ(c.count(RoleStatus::FailStop), 10u);
}

TEST(RoleAssignment, MeanCorruptionTracksFraction) {
  RoleAssignment ra(10000, 2500, 0, 6002);
  double total = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) total += ra.sample_corrupt_count(100);
  EXPECT_NEAR(total / trials, 25.0, 1.5);
}

TEST(RoleAssignment, RejectsOversizedCommittee) {
  RoleAssignment ra(10, 2, 0, 6003);
  EXPECT_THROW(ra.sample_committee(11), std::invalid_argument);
  EXPECT_THROW(RoleAssignment(10, 8, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace yoso
