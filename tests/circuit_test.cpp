#include <gtest/gtest.h>

#include "circuit/batching.hpp"
#include "circuit/workloads.hpp"

namespace yoso {
namespace {

const mpz_class kMod("1000000007");

TEST(Circuit, BuilderAndEval) {
  Circuit c;
  WireId x = c.input(0);
  WireId y = c.input(1);
  WireId s = c.add(x, y);
  WireId p = c.mul(x, y);
  WireId d = c.sub(p, s);
  WireId e = c.add_const(d, mpz_class(10));
  WireId f = c.mul_const(e, mpz_class(3));
  c.output(f, 0);
  auto out = c.eval({{mpz_class(7)}, {mpz_class(5)}}, kMod);
  // ((7*5 - 12) + 10) * 3 = 99
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 99);
}

TEST(Circuit, EvalReducesModulo) {
  Circuit c;
  WireId x = c.input(0);
  c.output(c.mul(x, x), 0);
  auto out = c.eval({{kMod - 1}}, kMod);  // (-1)^2 = 1
  EXPECT_EQ(out[0], 1);
}

TEST(Circuit, ForwardReferenceThrows) {
  Circuit c;
  WireId x = c.input(0);
  EXPECT_THROW(c.add(x, 5), std::out_of_range);
}

TEST(Circuit, MissingInputThrows) {
  Circuit c;
  c.input(0);
  c.input(0);
  EXPECT_THROW(c.eval({{mpz_class(1)}}, kMod), std::invalid_argument);
}

TEST(Circuit, LayersFollowMultiplicativeDepth) {
  Circuit c;
  WireId x = c.input(0);
  WireId m1 = c.mul(x, x);          // layer 1
  WireId a = c.add(m1, x);          // layer 1 (additive)
  WireId m2 = c.mul(a, m1);         // layer 2
  WireId m3 = c.mul(x, x);          // layer 1
  c.output(c.add(m2, m3), 0);
  auto layers = c.mul_layers();
  EXPECT_EQ(layers[m1], 1u);
  EXPECT_EQ(layers[a], 1u);
  EXPECT_EQ(layers[m2], 2u);
  EXPECT_EQ(layers[m3], 1u);
  EXPECT_EQ(c.mul_depth(), 2u);
  auto by_layer = c.mul_gates_by_layer();
  ASSERT_EQ(by_layer.size(), 2u);
  EXPECT_EQ(by_layer[0].size(), 2u);
  EXPECT_EQ(by_layer[1].size(), 1u);
}

TEST(Circuit, InputsOfClientAreOrdered) {
  Circuit c;
  WireId a = c.input(1);
  WireId b = c.input(0);
  WireId d = c.input(1);
  auto ins = c.inputs_of(1);
  ASSERT_EQ(ins.size(), 2u);
  EXPECT_EQ(ins[0], a);
  EXPECT_EQ(ins[1], d);
  EXPECT_EQ(c.inputs_of(0), std::vector<WireId>{b});
  EXPECT_EQ(c.num_inputs(), 3u);
}

TEST(Batching, SplitsLayersIntoKGroups) {
  Circuit c = wide_mul_circuit(5);
  auto batches = make_batches(c, 2);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].real, 2u);
  EXPECT_EQ(batches[1].real, 2u);
  EXPECT_EQ(batches[2].real, 1u);  // padded
  EXPECT_EQ(batches[2].gamma[1], batches[2].gamma[0]);  // pad repeats slot 0
  EXPECT_EQ(batch_count(c, 2), 3u);
}

TEST(Batching, RespectsLayers) {
  Circuit c = chain_circuit(3);
  auto batches = make_batches(c, 4);
  ASSERT_EQ(batches.size(), 3u);  // one gate per layer, never merged
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(batches[i].layer, i + 1);
}

TEST(Batching, KOneIsPerGate) {
  Circuit c = wide_mul_circuit(4);
  EXPECT_EQ(make_batches(c, 1).size(), 4u);
}

TEST(Batching, ZeroKThrows) {
  Circuit c = wide_mul_circuit(1);
  EXPECT_THROW(make_batches(c, 0), std::invalid_argument);
}

TEST(Workloads, InnerProductEvaluates) {
  Circuit c = inner_product_circuit(3);
  auto out = c.eval({{mpz_class(1), mpz_class(2), mpz_class(3)},
                     {mpz_class(4), mpz_class(5), mpz_class(6)}},
                    kMod);
  EXPECT_EQ(out[0], 1 * 4 + 2 * 5 + 3 * 6);
}

TEST(Workloads, WideMulShape) {
  Circuit c = wide_mul_circuit(6);
  EXPECT_EQ(c.num_mul_gates(), 6u);
  EXPECT_EQ(c.mul_depth(), 1u);
  EXPECT_EQ(c.outputs().size(), 6u);
}

TEST(Workloads, MulTreeEvaluates) {
  Circuit c = mul_tree_circuit(5);
  auto out = c.eval({{mpz_class(2), mpz_class(3), mpz_class(4), mpz_class(5), mpz_class(6)}},
                    kMod);
  EXPECT_EQ(out[0], 2 * 3 * 4 * 5 * 6);
  EXPECT_EQ(c.mul_depth(), 3u);
}

TEST(Workloads, ChainEvaluates) {
  Circuit c = chain_circuit(2);
  // x=3: (9+1)=10; (100+2)=102
  auto out = c.eval({{mpz_class(3)}}, kMod);
  EXPECT_EQ(out[0], 102);
}

TEST(Workloads, StatisticsSumAndSquares) {
  Circuit c = statistics_circuit(3);
  auto out = c.eval({{mpz_class(2)}, {mpz_class(3)}, {mpz_class(4)}}, kMod);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[1], 4 + 9 + 16);
}

TEST(Workloads, AuctionScoring) {
  Circuit c = auction_scoring_circuit(2);
  // bids 10,20 weights 3,4 -> scores 30,80, total 110
  auto out = c.eval({{mpz_class(10), mpz_class(3)}, {mpz_class(20), mpz_class(4)}}, kMod);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 30);
  EXPECT_EQ(out[1], 80);
  EXPECT_EQ(out[2], 110);
}

TEST(Workloads, MatmulEvaluates) {
  Circuit c = matmul_circuit(2);
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]]
  auto out = c.eval({{mpz_class(1), mpz_class(2), mpz_class(3), mpz_class(4)},
                     {mpz_class(5), mpz_class(6), mpz_class(7), mpz_class(8)}},
                    kMod);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 19);
  EXPECT_EQ(out[1], 22);
  EXPECT_EQ(out[2], 43);
  EXPECT_EQ(out[3], 50);
  EXPECT_EQ(c.mul_depth(), 1u);
  EXPECT_EQ(c.num_mul_gates(), 8u);
}

TEST(Workloads, PolyEvalHorner) {
  Circuit c = poly_eval_circuit(3);
  // p(x) = 2 + 3x + 0x^2 + x^3 at x = 4: 2 + 12 + 64 = 78
  auto out = c.eval({{mpz_class(2), mpz_class(3), mpz_class(0), mpz_class(1)},
                     {mpz_class(4)}},
                    kMod);
  EXPECT_EQ(out[0], 78);
  EXPECT_EQ(c.mul_depth(), 3u);
  EXPECT_EQ(c.outputs()[0].client, 1u);
}

TEST(Workloads, MimcMatchesManualRounds) {
  Circuit c = mimc_circuit(2);
  mpz_class x = 5, key = 7;
  mpz_class s = x;
  for (unsigned r = 0; r < 2; ++r) {
    mpz_class m = (s + key + (r * 2 + 1)) % kMod;
    s = m * m % kMod * m % kMod;
  }
  mpz_class expected = (s + key) % kMod;
  auto out = c.eval({{x}, {key}}, kMod);
  EXPECT_EQ(out[0], expected);
  EXPECT_EQ(c.mul_depth(), 2u * 2u);  // two muls per round, sequential
}

TEST(Workloads, RejectDegenerateSizes) {
  EXPECT_THROW(inner_product_circuit(0), std::invalid_argument);
  EXPECT_THROW(wide_mul_circuit(0), std::invalid_argument);
  EXPECT_THROW(mul_tree_circuit(1), std::invalid_argument);
  EXPECT_THROW(chain_circuit(0), std::invalid_argument);
  EXPECT_THROW(statistics_circuit(0), std::invalid_argument);
  EXPECT_THROW(auction_scoring_circuit(0), std::invalid_argument);
  EXPECT_THROW(matmul_circuit(0), std::invalid_argument);
  EXPECT_THROW(poly_eval_circuit(0), std::invalid_argument);
  EXPECT_THROW(mimc_circuit(0), std::invalid_argument);
}

}  // namespace
}  // namespace yoso
