// The compute profiler (src/obs/profile.hpp): phase attribution, the
// counts-always/timings-gated determinism split, task-local cells merging
// join-order-independently, and the snapshot JSON surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/profile.hpp"
#include "obs/runtime.hpp"

namespace yoso::obs {
namespace {

#ifndef OBS_DISABLED

// Every test starts from a clean profiler with recording on (the obs
// singletons are process-global; see tests/determinism_test.cpp).
class ProfileTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_enabled(true);
    profiler().reset();
  }
  void TearDown() override { set_enabled(true); }
};

// A deterministic little workload: `salt` varies the mix so distinct task
// cells carry distinct numbers.
void record_workload(unsigned salt) {
  ScopedOpContext setup(PhaseCtx::Setup);
  for (unsigned i = 0; i < 2 + salt; ++i) {
    OBS_OP(CtPowmSec);
  }
  {
    ScopedOpContext online(PhaseCtx::Online);
    OBS_OP_COUNT_N(FieldMul, 10 * (salt + 1));
    OBS_OP_N(SharePack, salt + 1);
    { OBS_OP(NizkProve); }
  }
  OBS_OP_COUNT(PaillierAdd);  // context restored: lands back in Setup
}

TEST_F(ProfileTest, CountsAttributeToEnclosingPhase) {
  record_workload(1);
  const InstrumentCell cell = profiler().snapshot();
  EXPECT_EQ(cell.op_count(PhaseCtx::Setup, Op::CtPowmSec), 3u);
  EXPECT_EQ(cell.op_count(PhaseCtx::Setup, Op::PaillierAdd), 1u);
  EXPECT_EQ(cell.op_count(PhaseCtx::Online, Op::FieldMul), 20u);
  EXPECT_EQ(cell.op_count(PhaseCtx::Online, Op::SharePack), 2u);
  EXPECT_EQ(cell.op_count(PhaseCtx::Online, Op::NizkProve), 1u);
  // Nothing leaked into the other contexts.
  EXPECT_EQ(cell.op_count(PhaseCtx::Other, Op::CtPowmSec), 0u);
  EXPECT_EQ(cell.op_count(PhaseCtx::Online, Op::CtPowmSec), 0u);
  EXPECT_EQ(cell.op_total_count(Op::CtPowmSec), 3u);
}

TEST_F(ProfileTest, TimedOpRecordsSelfTimeHistogramAndPhaseWall) {
  {
    ScopedOpContext ctx(PhaseCtx::Offline);
    OBS_OP(CtPowmSec);
    volatile unsigned src = 3;
    unsigned sink = 0;
    for (unsigned i = 0; i < 50000; ++i) sink += src * i;
    EXPECT_NE(sink, 0u);
  }
  const InstrumentCell cell = profiler().snapshot();
  EXPECT_EQ(cell.op_total_count(Op::CtPowmSec), 1u);
  EXPECT_GT(cell.op_self_ns(PhaseCtx::Offline, Op::CtPowmSec), 0u);
  EXPECT_GT(cell.phase_wall_ns(PhaseCtx::Offline), 0u);
  // Exactly one histogram entry, for exactly one timed call.
  std::uint64_t hist_total = 0;
  for (int b = 0; b < InstrumentCell::kHistBuckets; ++b) {
    hist_total += cell.hist_bucket(Op::CtPowmSec, b);
  }
  EXPECT_EQ(hist_total, 1u);
}

// Self-times partition elapsed time: nested timed ops subtract their
// elapsed from the parent's self, so the per-phase self-time sum can never
// exceed the phase wall-clock that encloses every timer.
TEST_F(ProfileTest, NestedTimersSelfTimeStaysWithinPhaseWall) {
  {
    ScopedOpContext ctx(PhaseCtx::Online);
    OBS_OP(NizkProve);
    volatile unsigned src = 3;
    unsigned sink = 0;
    for (unsigned i = 0; i < 20000; ++i) sink += src * i;
    {
      OBS_OP(CtPowmSec);
      for (unsigned i = 0; i < 20000; ++i) sink += src * i;
    }
    EXPECT_NE(sink, 0u);
  }
  const InstrumentCell cell = profiler().snapshot();
  const std::uint64_t parent_self = cell.op_self_ns(PhaseCtx::Online, Op::NizkProve);
  const std::uint64_t child_self = cell.op_self_ns(PhaseCtx::Online, Op::CtPowmSec);
  EXPECT_GT(parent_self, 0u);
  EXPECT_GT(child_self, 0u);
  std::uint64_t phase_self = 0;
  for (unsigned o = 0; o < kOpCount; ++o) {
    phase_self += cell.op_self_ns(PhaseCtx::Online, static_cast<Op>(o));
  }
  EXPECT_LE(phase_self, cell.phase_wall_ns(PhaseCtx::Online));
}

TEST_F(ProfileTest, MutedRunStillCountsButSkipsTimings) {
  set_enabled(false);
  record_workload(0);
  const InstrumentCell cell = profiler().snapshot();
  EXPECT_EQ(cell.op_count(PhaseCtx::Setup, Op::CtPowmSec), 2u);
  EXPECT_EQ(cell.op_count(PhaseCtx::Online, Op::FieldMul), 10u);
  // No clock reads when muted: zero self-time, zero wall, empty histograms.
  EXPECT_EQ(cell.op_total_self_ns(Op::CtPowmSec), 0u);
  EXPECT_EQ(cell.phase_wall_ns(PhaseCtx::Setup), 0u);
  EXPECT_EQ(cell.phase_wall_ns(PhaseCtx::Online), 0u);
  for (int b = 0; b < InstrumentCell::kHistBuckets; ++b) {
    EXPECT_EQ(cell.hist_bucket(Op::CtPowmSec, b), 0u);
  }
}

// The determinism contract: the counts-only snapshot is byte-identical
// between an enabled and a muted run of the same workload.
TEST_F(ProfileTest, CountsSnapshotIdenticalEnabledVsMuted) {
  auto run = [](bool enabled) {
    set_enabled(enabled);
    profiler().reset();
    record_workload(2);
    set_enabled(true);
    return profiler().op_costs_json(false);
  };
  const std::string on = run(true);
  const std::string off = run(false);
  EXPECT_FALSE(on.empty());
  EXPECT_EQ(on, off);
  // And the deterministic document really excludes the timed fields.
  EXPECT_EQ(on.find("self_us"), std::string::npos);
  EXPECT_EQ(on.find("wall"), std::string::npos);
  EXPECT_EQ(on.find("hist"), std::string::npos);
}

TEST_F(ProfileTest, ScopedCellInstallsAndRestoresTaskCell) {
  InstrumentCell task;
  {
    ScopedCell guard(&task);
    ASSERT_EQ(&profiler().cell(), &task);
    ScopedOpContext ctx(PhaseCtx::Offline);
    OBS_OP_COUNT_N(FieldInv, 5);
  }
  EXPECT_EQ(task.op_count(PhaseCtx::Offline, Op::FieldInv), 5u);
  // The root saw nothing while the task cell was installed...
  EXPECT_EQ(profiler().snapshot().op_total_count(Op::FieldInv), 0u);
  // ...and recording lands back in the root once the guard is gone.
  profiler().cell().count(Op::FieldInv, 2);
  EXPECT_EQ(profiler().snapshot().op_total_count(Op::FieldInv), 2u);
}

// The abort path: an exception unwinding through a ScopedCell restores the
// previous cell, and the partial counts recorded before the abort are still
// sitting in the task cell, ready for the owner to merge.
TEST_F(ProfileTest, AbortedTaskCellRestoresAndStillMerges) {
  InstrumentCell task;
  auto worker = [&task] {
    ScopedCell guard(&task);
    ScopedOpContext ctx(PhaseCtx::Offline);
    OBS_OP_COUNT_N(FieldInv, 3);
    throw std::runtime_error("protocol abort");
  };
  EXPECT_THROW(worker(), std::runtime_error);
  // The root is current again after the unwind...
  profiler().cell().count(Op::FieldMul, 1);
  EXPECT_EQ(profiler().snapshot().op_total_count(Op::FieldMul), 1u);
  // ...and the aborted task's partial counts merge like any clean join.
  EXPECT_EQ(task.op_count(PhaseCtx::Offline, Op::FieldInv), 3u);
  profiler().cell().merge(task);
  EXPECT_EQ(profiler().snapshot().op_count(PhaseCtx::Offline, Op::FieldInv), 3u);
}

// Non-LIFO teardown (an unmatched install_cell with no guard, unwound past):
// the guard's dtor must not clobber the newer installation with its stale
// prev_ pointer.
TEST_F(ProfileTest, ScopedCellKeepsNewerInstallOnNonLifoTeardown) {
  InstrumentCell a;
  InstrumentCell b;
  {
    ScopedCell guard(&a);
    profiler().install_cell(&b);  // deliberately unguarded
  }
  EXPECT_EQ(&profiler().cell(), &b);
  profiler().install_cell(nullptr);  // back to the root for the next test
  EXPECT_NE(&profiler().cell(), &b);
}

// The mem.peak gauge rides the timing gate: sampled on enabled runs (every
// Unix has getrusage), absent on muted ones, and never in the deterministic
// counts-only export.
TEST_F(ProfileTest, MemPeakGaugeIsTimingGated) {
  {
    ScopedOpContext ctx(PhaseCtx::Online);
    OBS_OP_COUNT(FieldMul);
  }
  EXPECT_GT(profiler().snapshot().mem_peak_bytes(PhaseCtx::Online), 0u);
  EXPECT_NE(profiler().op_costs_json(true).find("mem_peak_bytes"), std::string::npos);
  EXPECT_EQ(profiler().op_costs_json(false).find("mem_peak_bytes"), std::string::npos);

  set_enabled(false);
  profiler().reset();
  {
    ScopedOpContext ctx(PhaseCtx::Online);
    OBS_OP_COUNT(FieldMul);
  }
  EXPECT_EQ(profiler().snapshot().mem_peak_bytes(PhaseCtx::Online), 0u);
}

// Peak RSS is a high-water mark: merging the same cell twice must not
// double it the way summed counters double.
TEST_F(ProfileTest, MemPeakMergesByMaxNotSum) {
  InstrumentCell task;
  {
    ScopedCell guard(&task);
    ScopedOpContext ctx(PhaseCtx::Setup);
    OBS_OP_COUNT(FieldMul);
  }
  const std::uint64_t peak = task.mem_peak_bytes(PhaseCtx::Setup);
  ASSERT_GT(peak, 0u);
  InstrumentCell root;
  root.merge(task);
  root.merge(task);
  EXPECT_EQ(root.mem_peak_bytes(PhaseCtx::Setup), peak);
  EXPECT_EQ(root.op_count(PhaseCtx::Setup, Op::FieldMul), 2u);  // sums, by contrast
}

// merge() is an elementwise sum, so the owner can merge task cells back in
// ANY join order and the root snapshot — timings included — is
// byte-identical.
TEST_F(ProfileTest, MergeIsJoinOrderIndependent) {
  constexpr unsigned kTasks = 4;
  std::vector<InstrumentCell> cells(kTasks);
  for (unsigned s = 0; s < kTasks; ++s) {
    ScopedCell guard(&cells[s]);
    record_workload(s);
  }

  std::vector<unsigned> order(kTasks);
  std::iota(order.begin(), order.end(), 0u);
  std::string first;
  do {
    InstrumentCell root;
    for (unsigned idx : order) root.merge(cells[idx]);
    const std::string snap = root.snapshot_json(true);
    if (first.empty()) {
      first = snap;
    } else {
      ASSERT_EQ(snap, first) << "join order changed the merged snapshot";
    }
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_FALSE(first.empty());

  // Merged totals are the elementwise sums of the parts.
  InstrumentCell root;
  for (const InstrumentCell& c : cells) root.merge(c);
  std::uint64_t expected = 0;
  for (const InstrumentCell& c : cells) expected += c.op_total_count(Op::CtPowmSec);
  EXPECT_EQ(root.op_total_count(Op::CtPowmSec), expected);
  // Live state does not merge: the target keeps its own context.
  EXPECT_EQ(root.context(), PhaseCtx::Other);
}

TEST_F(ProfileTest, SnapshotJsonParsesAndSortsOps) {
  record_workload(1);
  const std::string snap = profiler().op_costs_json(false);
  const json::Value doc = json::parse(snap);
  const json::Value* ops = doc.find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_TRUE(ops->is_object());
  EXPECT_EQ(ops->find("ct.powm_sec")->u64_or("count", 0), 3u);
  // Op names come out lexicographically sorted — a stable diffable order.
  std::vector<std::string> names;
  for (const auto& [name, v] : ops->members) names.push_back(name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // Per-phase attribution rides along.
  const json::Value* by_phase = ops->find("field.mul")->find("by_phase");
  ASSERT_NE(by_phase, nullptr);
  EXPECT_EQ(by_phase->find("online")->u64_or("count", 0), 20u);
}

TEST_F(ProfileTest, OpTrackSamplesRecordCumulativeCounts) {
  {
    ScopedOpContext ctx(PhaseCtx::Setup);
    OBS_OP_COUNT_N(FieldMul, 3);
  }
  profiler().sample_op_tracks(1.25);
  const auto& samples = profiler().op_track_samples();
  ASSERT_FALSE(samples.empty());
  bool found = false;
  for (const OpTrackSample& s : samples) {
    if (s.op == Op::FieldMul) {
      found = true;
      EXPECT_DOUBLE_EQ(s.t, 1.25);
      EXPECT_EQ(s.value, 3u);
    }
  }
  EXPECT_TRUE(found);
  profiler().reset();
  EXPECT_TRUE(profiler().op_track_samples().empty());
}

#else  // OBS_DISABLED: the stub surface must stay source-compatible.

TEST(ProfileTest, DisabledStubsCompileAndEmitEmpty) {
  InstrumentCell cell;
  cell.merge(InstrumentCell{});
  cell.reset();
  EXPECT_EQ(cell.snapshot_json(true), "{}");
  ScopedCell guard(&cell);
  ScopedOpContext ctx(PhaseCtx::Setup);
  OBS_OP(CtPowmSec);
  OBS_OP_N(SharePack, 4);
  OBS_OP_COUNT(PaillierAdd);
  OBS_OP_COUNT_N(FieldMul, 7);
}

#endif

}  // namespace
}  // namespace yoso::obs
