// Parameterized property sweeps across the cryptographic stack:
// threshold-scheme grid over (n, t), LinkProof grid over bound sizes and
// leg shapes, Damgard-Jurik grid over the exponent s, and the natural-YOSO
// pool-driven adversary.
#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"
#include "nizk/pdec_proof.hpp"

namespace yoso {
namespace {

// ---------- Threshold scheme over an (n, t) grid ---------------------------

struct NtParam {
  unsigned n, t;
};

class ThresholdGrid : public ::testing::TestWithParam<NtParam> {};

TEST_P(ThresholdGrid, DecryptReshareProveVerify) {
  auto [n, t] = GetParam();
  Rng rng(7800 + n * 13 + t);
  ThresholdKeys keys = tkgen(160, 1, n, t, rng);
  const auto& tpk = keys.tpk;

  // Threshold decryption from the first t+1 partials.
  mpz_class m = rng.below(tpk.pk.ns);
  mpz_class c = tpk.pk.enc(m, rng);
  std::vector<unsigned> idx;
  std::vector<mpz_class> partials;
  for (unsigned i = 1; i <= t + 1; ++i) {
    idx.push_back(i);
    partials.push_back(tpdec(tpk, keys.shares[i - 1], c));
  }
  EXPECT_EQ(tdec(tpk, idx, partials), m);

  // Every pdec proof verifies; a cross-assigned one does not.
  auto proof = prove_pdec(tpk, keys.shares[0], c, partials[0], rng);
  EXPECT_TRUE(verify_pdec(tpk, 1, c, partials[0], proof));
  if (n > 1) {
    EXPECT_FALSE(verify_pdec(tpk, 2, c, partials[0], proof));
  }

  // One resharing epoch keeps decryption working.
  std::vector<unsigned> from = idx;
  std::vector<ReshareMsg> msgs;
  for (unsigned i : from) msgs.push_back(tkres(tpk, keys.shares[i - 1], rng));
  for (const auto& msg : msgs) EXPECT_TRUE(verify_reshare(tpk, msg));
  ThresholdPK tpk2 = next_epoch_pk(tpk, from, msgs);
  std::vector<ThresholdKeyShare> next(n);
  for (unsigned j = 1; j <= n; ++j) {
    std::vector<SecretMpz> subs;
    for (const auto& msg : msgs) subs.push_back(msg.subshares[j - 1]);
    next[j - 1] = tkrec(tpk, j, from, subs);
  }
  mpz_class m2 = rng.below(tpk2.pk.ns);
  mpz_class c2 = tpk2.pk.enc(m2, rng);
  std::vector<unsigned> idx2;
  std::vector<mpz_class> partials2;
  for (unsigned i = n; i > n - (t + 1); --i) {  // a different qualified set
    idx2.push_back(i);
    partials2.push_back(tpdec(tpk2, next[i - 1], c2));
  }
  EXPECT_EQ(tdec(tpk2, idx2, partials2), m2);
}

INSTANTIATE_TEST_SUITE_P(Grid, ThresholdGrid,
                         ::testing::Values(NtParam{2, 1}, NtParam{3, 1}, NtParam{4, 1},
                                           NtParam{5, 2}, NtParam{7, 3}, NtParam{8, 3},
                                           NtParam{9, 4}, NtParam{11, 5}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "t" +
                                  std::to_string(info.param.t);
                         });

// ---------- LinkProof over bound sizes and leg shapes ----------------------

struct LinkParam {
  unsigned bound_bits;
  unsigned paillier_legs;
  unsigned exponent_legs;
};

class LinkGrid : public ::testing::TestWithParam<LinkParam> {};

TEST_P(LinkGrid, ProveVerifyAndRejectTamper) {
  auto [bound, np, ne] = GetParam();
  Rng rng(7900 + bound + np * 3 + ne * 7);
  PaillierSK sk = paillier_keygen(160, 3, rng, false);  // roomy plaintext space
  mpz_class x = rng.below(mpz_class(1) << bound);

  LinkStatement st;
  st.domain = "sweep";
  st.bound_bits = bound;
  LinkWitness w;
  w.x = SecretMpz(x);
  for (unsigned i = 0; i < np; ++i) {
    mpz_class r;
    st.paillier_legs.push_back(PaillierLeg{sk.pk, sk.pk.enc(x, rng, &r)});
    w.rs.push_back(SecretMpz(r));
  }
  for (unsigned i = 0; i < ne; ++i) {
    mpz_class g = rng.unit_mod(sk.pk.ns1);
    g = g * g % sk.pk.ns1;
    mpz_class y;
    mpz_powm(y.get_mpz_t(), g.get_mpz_t(), x.get_mpz_t(), sk.pk.ns1.get_mpz_t());
    st.exponent_legs.push_back(ExponentLeg{g, y, sk.pk.ns1});
  }
  auto proof = link_prove(st, w, rng);
  EXPECT_TRUE(link_verify(st, proof));

  LinkProof bad = proof;
  bad.z += 1;
  EXPECT_FALSE(link_verify(st, bad));

  if (np > 0) {
    LinkStatement st_bad = st;
    st_bad.paillier_legs[0].ciphertext = sk.pk.enc(x + 1, rng);
    EXPECT_FALSE(link_verify(st_bad, proof));
  }
  if (ne > 0) {
    LinkStatement st_bad = st;
    st_bad.exponent_legs[0].target =
        st.exponent_legs[0].target * st.exponent_legs[0].base % sk.pk.ns1;
    EXPECT_FALSE(link_verify(st_bad, proof));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, LinkGrid,
                         ::testing::Values(LinkParam{16, 1, 0}, LinkParam{16, 0, 1},
                                           LinkParam{64, 2, 0}, LinkParam{64, 1, 1},
                                           LinkParam{160, 1, 2}, LinkParam{160, 2, 2},
                                           LinkParam{250, 3, 1}),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param.bound_bits) + "p" +
                                  std::to_string(info.param.paillier_legs) + "e" +
                                  std::to_string(info.param.exponent_legs);
                         });

// ---------- Damgard-Jurik over the exponent s ------------------------------

class DjGrid : public ::testing::TestWithParam<unsigned> {};

TEST_P(DjGrid, HomomorphismAndEdgePlaintexts) {
  unsigned s = GetParam();
  Rng rng(8000 + s);
  PaillierSK sk = paillier_keygen(96, s, rng, false);
  mpz_class big = sk.pk.ns - 1;
  EXPECT_EQ(sk.dec(sk.pk.enc(big, rng)), big);
  mpz_class a = rng.below(sk.pk.ns), b = rng.below(sk.pk.ns);
  mpz_class c = sk.pk.add(sk.pk.enc(a, rng), sk.pk.enc(b, rng));
  EXPECT_EQ(sk.dec(c), (a + b) % sk.pk.ns);
  mpz_class scaled = sk.pk.scal(sk.pk.enc(a, rng), mpz_class(3));
  EXPECT_EQ(sk.dec(scaled), 3 * a % sk.pk.ns);
  // Root extraction works at every s.
  mpz_class zero_ct = sk.pk.enc(mpz_class(0), rng);
  SecretMpz rho = sk.extract_root(zero_ct);
  mpz_class check;
  mpz_powm(check.get_mpz_t(), rho.declassify().get_mpz_t(), sk.pk.ns.get_mpz_t(),
           sk.pk.ns1.get_mpz_t());
  EXPECT_EQ(check, zero_ct % sk.pk.ns1);
}

INSTANTIATE_TEST_SUITE_P(Grid, DjGrid, ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const auto& info) { return "s" + std::to_string(info.param); });

// ---------- Natural YOSO: pool-driven adversary -----------------------------

TEST(NaturalYoso, PoolPlanSamplesHypergeometrically) {
  auto plan = AdversaryPlan::pool(10, 1000, 100, 50, 8101);
  double mal = 0, fs = 0;
  const unsigned committees = 200;
  for (unsigned i = 0; i < committees; ++i) {
    auto c = plan.committee(i);
    mal += c.count(RoleStatus::Malicious);
    fs += c.count(RoleStatus::FailStop);
  }
  EXPECT_NEAR(mal / committees, 1.0, 0.25);   // 10 * 10%
  EXPECT_NEAR(fs / committees, 0.5, 0.2);     // 10 * 5%
  // Deterministic per index.
  EXPECT_EQ(plan.committee(7).status, plan.committee(7).status);
}

TEST(NaturalYoso, ProtocolRunsOverSampledPool) {
  // Pool with 4% corruption; committees of 8 tolerate t = 2, so sampled
  // committees almost surely stay within bound and the run succeeds.
  auto params = ProtocolParams::for_gap(8, 0.2, 192);
  ASSERT_EQ(params.t, 2u);
  Circuit c = wide_mul_circuit(2);
  auto plan = AdversaryPlan::pool(params.n, 10000, 400, 0, 8102);
  YosoMpc mpc(params, c, plan, 8103);
  std::vector<std::vector<mpz_class>> inputs{{mpz_class(6), mpz_class(2)},
                                             {mpz_class(7), mpz_class(9)}};
  auto res = mpc.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus()));
}

TEST(NaturalYoso, LeakyRolesDoNotAffectExecution) {
  auto params = ProtocolParams::for_gap(5, 0.2, 192);
  Circuit c = inner_product_circuit(2);
  auto plan = AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::BadShare)
                  .with_leaky(2);
  auto committee = plan.committee(0);
  EXPECT_EQ(committee.count(RoleStatus::Leaky), 2u);
  YosoMpc mpc(params, c, plan, 8104);
  std::vector<std::vector<mpz_class>> inputs{{mpz_class(2), mpz_class(3)},
                                             {mpz_class(4), mpz_class(5)}};
  auto res = mpc.run(inputs);
  EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus()));
}

TEST(NaturalYoso, PoolRejectsInconsistentSizes) {
  EXPECT_THROW(AdversaryPlan::pool(10, 5, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(AdversaryPlan::pool(4, 10, 8, 5, 1), std::invalid_argument);
  EXPECT_THROW(AdversaryPlan::fixed(4, 2, 1).with_leaky(2), std::invalid_argument);
}

}  // namespace
}  // namespace yoso
