#include <gtest/gtest.h>

#include "crypto/rand.hpp"
#include "nizk/link_proof.hpp"
#include "nizk/mult_proof.hpp"
#include "nizk/pdec_proof.hpp"
#include "nizk/plaintext_proof.hpp"
#include "paillier/threshold.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

class NizkTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(3001);
    sk_ = new PaillierSK(paillier_keygen(kBits, 1, *rng_));
  }
  static void TearDownTestSuite() {
    delete sk_;
    delete rng_;
    sk_ = nullptr;
    rng_ = nullptr;
  }
  static Rng* rng_;
  static PaillierSK* sk_;
};

Rng* NizkTest::rng_ = nullptr;
PaillierSK* NizkTest::sk_ = nullptr;

TEST_F(NizkTest, PlaintextProofAccepts) {
  mpz_class m = rng_->below(sk_->pk.ns);
  mpz_class r;
  mpz_class c = sk_->pk.enc(m, *rng_, &r);
  auto proof = prove_plaintext(sk_->pk, c, SecretMpz(m), SecretMpz(r), *rng_);
  EXPECT_TRUE(verify_plaintext(sk_->pk, c, proof));
}

TEST_F(NizkTest, PlaintextProofRejectsWrongCiphertext) {
  mpz_class m = 5, r;
  mpz_class c = sk_->pk.enc(m, *rng_, &r);
  auto proof = prove_plaintext(sk_->pk, c, SecretMpz(m), SecretMpz(r), *rng_);
  mpz_class other = sk_->pk.enc(mpz_class(6), *rng_);
  EXPECT_FALSE(verify_plaintext(sk_->pk, other, proof));
}

TEST_F(NizkTest, PlaintextProofRejectsTamperedResponse) {
  mpz_class m = 5, r;
  mpz_class c = sk_->pk.enc(m, *rng_, &r);
  auto proof = prove_plaintext(sk_->pk, c, SecretMpz(m), SecretMpz(r), *rng_);
  proof.inner.z += 1;
  EXPECT_FALSE(verify_plaintext(sk_->pk, c, proof));
}

TEST_F(NizkTest, PlaintextProofRejectsOversizedResponse) {
  mpz_class m = 5, r;
  mpz_class c = sk_->pk.enc(m, *rng_, &r);
  auto proof = prove_plaintext(sk_->pk, c, SecretMpz(m), SecretMpz(r), *rng_);
  proof.inner.z += mpz_class(1) << 4096;  // blow the range check
  EXPECT_FALSE(verify_plaintext(sk_->pk, c, proof));
}

TEST_F(NizkTest, PlaintextProofRejectsInvalidCiphertext) {
  mpz_class m = 5, r;
  mpz_class c = sk_->pk.enc(m, *rng_, &r);
  auto proof = prove_plaintext(sk_->pk, c, SecretMpz(m), SecretMpz(r), *rng_);
  EXPECT_FALSE(verify_plaintext(sk_->pk, mpz_class(0), proof));
}

TEST_F(NizkTest, MultProofAccepts) {
  const auto& pk = sk_->pk;
  mpz_class a = rng_->below(pk.ns);
  mpz_class c_a = pk.enc(a, *rng_);
  mpz_class b = rng_->below(pk.ns), r_b;
  mpz_class c_b = pk.enc(b, *rng_, &r_b);
  mpz_class rho;
  mpz_class c_p = pk.rerandomize(pk.scal(c_a, b), *rng_, &rho);
  auto proof = prove_mult(pk, c_a, c_b, c_p, SecretMpz(b), SecretMpz(r_b), SecretMpz(rho), *rng_);
  EXPECT_TRUE(verify_mult(pk, c_a, c_b, c_p, proof));
  // And the product really decrypts to a*b.
  EXPECT_EQ(sk_->dec(c_p), a * b % pk.ns);
}

TEST_F(NizkTest, MultProofRejectsMismatchedProduct) {
  const auto& pk = sk_->pk;
  mpz_class c_a = pk.enc(mpz_class(3), *rng_);
  mpz_class b = 4, r_b;
  mpz_class c_b = pk.enc(b, *rng_, &r_b);
  mpz_class rho;
  mpz_class c_p = pk.rerandomize(pk.scal(c_a, b), *rng_, &rho);
  auto proof = prove_mult(pk, c_a, c_b, c_p, SecretMpz(b), SecretMpz(r_b), SecretMpz(rho), *rng_);
  // Claim the product is something else.
  mpz_class c_bad = pk.enc(mpz_class(13), *rng_);
  EXPECT_FALSE(verify_mult(pk, c_a, c_b, c_bad, proof));
}

TEST_F(NizkTest, MultProofRejectsWrongB) {
  const auto& pk = sk_->pk;
  mpz_class c_a = pk.enc(mpz_class(3), *rng_);
  mpz_class b = 4, r_b;
  mpz_class c_b = pk.enc(b, *rng_, &r_b);
  mpz_class rho;
  // Product computed with a different scalar than the encrypted b.
  mpz_class c_p = pk.rerandomize(pk.scal(c_a, mpz_class(5)), *rng_, &rho);
  auto proof = prove_mult(pk, c_a, c_b, c_p, SecretMpz(mpz_class(5)), SecretMpz(r_b), SecretMpz(rho), *rng_);
  EXPECT_FALSE(verify_mult(pk, c_a, c_b, c_p, proof));
}

TEST_F(NizkTest, LinkProofTwoPaillierLegsEquality) {
  // The mask re-encryption statement: same pad under two different keys.
  Rng rng2(3002);
  PaillierSK sk2 = paillier_keygen(kBits + 64, 2, rng2, /*safe_primes=*/false);
  mpz_class pad = rng_->below(sk_->pk.ns);
  mpz_class r1, r2;
  mpz_class c1 = sk_->pk.enc(pad, *rng_, &r1);
  mpz_class c2 = sk2.pk.enc(pad, *rng_, &r2);

  LinkStatement st;
  st.domain = "test.padlink";
  st.paillier_legs = {PaillierLeg{sk_->pk, c1}, PaillierLeg{sk2.pk, c2}};
  st.bound_bits = static_cast<unsigned>(mpz_sizeinbase(sk_->pk.ns.get_mpz_t(), 2));
  LinkWitness w{SecretMpz(pad), {SecretMpz(r1), SecretMpz(r2)}};
  auto proof = link_prove(st, w, *rng_);
  EXPECT_TRUE(link_verify(st, proof));

  // Different plaintexts must not verify.
  mpz_class c2_bad = sk2.pk.enc(pad + 1, rng2);
  LinkStatement st_bad = st;
  st_bad.paillier_legs[1].ciphertext = c2_bad;
  EXPECT_FALSE(link_verify(st_bad, proof));
}

TEST_F(NizkTest, LinkProofPaillierPlusExponentLeg) {
  // The subshare <-> Feldman linkage: Enc(x) and v^x.
  const auto& pk = sk_->pk;
  mpz_class x = rng_->below(mpz_class(1) << 100);
  mpz_class r;
  mpz_class c = pk.enc(x, *rng_, &r);
  mpz_class v = rng_->unit_mod(pk.ns1);
  v = v * v % pk.ns1;
  mpz_class target;
  mpz_powm(target.get_mpz_t(), v.get_mpz_t(), x.get_mpz_t(), pk.ns1.get_mpz_t());

  LinkStatement st;
  st.domain = "test.subshare";
  st.paillier_legs = {PaillierLeg{pk, c}};
  st.exponent_legs = {ExponentLeg{v, target, pk.ns1}};
  st.bound_bits = 100;
  LinkWitness w{SecretMpz(x), {SecretMpz(r)}};
  auto proof = link_prove(st, w, *rng_);
  EXPECT_TRUE(link_verify(st, proof));

  // Tampering with the exponent target breaks it.
  LinkStatement st_bad = st;
  st_bad.exponent_legs[0].target = target * v % pk.ns1;
  EXPECT_FALSE(link_verify(st_bad, proof));
}

TEST_F(NizkTest, LinkProofNegativeWitness) {
  const auto& pk = sk_->pk;
  mpz_class x = -12345;
  mpz_class r;
  mpz_class c = pk.enc(x, *rng_, &r);  // encrypts x mod N^s
  mpz_class v = rng_->unit_mod(pk.ns1);
  v = v * v % pk.ns1;
  mpz_class target;
  mpz_powm(target.get_mpz_t(), v.get_mpz_t(), x.get_mpz_t(), pk.ns1.get_mpz_t());

  LinkStatement st;
  st.domain = "test.negative";
  st.paillier_legs = {PaillierLeg{pk, c}};
  st.exponent_legs = {ExponentLeg{v, target, pk.ns1}};
  st.bound_bits = 20;
  LinkWitness w{SecretMpz(x), {SecretMpz(r)}};
  auto proof = link_prove(st, w, *rng_);
  EXPECT_TRUE(link_verify(st, proof));
}

TEST_F(NizkTest, LinkProofRejectsWitnessOverBound) {
  const auto& pk = sk_->pk;
  LinkStatement st;
  st.domain = "test.bound";
  st.bound_bits = 10;
  mpz_class r;
  mpz_class c = pk.enc(mpz_class(5000), *rng_, &r);
  st.paillier_legs = {PaillierLeg{pk, c}};
  LinkWitness w{SecretMpz(mpz_class(5000)), {SecretMpz(r)}};  // 5000 > 2^10
  EXPECT_THROW(link_prove(st, w, *rng_), std::invalid_argument);
}

TEST_F(NizkTest, ProofSizesAreReported) {
  mpz_class m = 5, r;
  mpz_class c = sk_->pk.enc(m, *rng_, &r);
  auto proof = prove_plaintext(sk_->pk, c, SecretMpz(m), SecretMpz(r), *rng_);
  EXPECT_GT(proof.wire_bytes(), 0u);
}

class PdecNizkTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(3003);
    keys_ = new ThresholdKeys(tkgen(kBits, 1, 5, 2, *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }
  static Rng* rng_;
  static ThresholdKeys* keys_;
};

Rng* PdecNizkTest::rng_ = nullptr;
ThresholdKeys* PdecNizkTest::keys_ = nullptr;

TEST_F(PdecNizkTest, AcceptsHonestPartial) {
  const auto& tpk = keys_->tpk;
  mpz_class c = tpk.pk.enc(mpz_class(77), *rng_);
  for (const auto& sh : keys_->shares) {
    mpz_class partial = tpdec(tpk, sh, c);
    auto proof = prove_pdec(tpk, sh, c, partial, *rng_);
    EXPECT_TRUE(verify_pdec(tpk, sh.index, c, partial, proof));
  }
}

TEST_F(PdecNizkTest, RejectsCorruptedPartial) {
  const auto& tpk = keys_->tpk;
  mpz_class c = tpk.pk.enc(mpz_class(77), *rng_);
  const auto& sh = keys_->shares[0];
  mpz_class partial = tpdec(tpk, sh, c);
  auto proof = prove_pdec(tpk, sh, c, partial, *rng_);
  mpz_class bad = partial * (tpk.pk.n + 1) % tpk.pk.ns1;  // shift the plaintext part
  EXPECT_FALSE(verify_pdec(tpk, sh.index, c, bad, proof));
}

TEST_F(PdecNizkTest, RejectsPartialUnderWrongIndex) {
  const auto& tpk = keys_->tpk;
  mpz_class c = tpk.pk.enc(mpz_class(77), *rng_);
  const auto& sh = keys_->shares[0];
  mpz_class partial = tpdec(tpk, sh, c);
  auto proof = prove_pdec(tpk, sh, c, partial, *rng_);
  EXPECT_FALSE(verify_pdec(tpk, 2, c, partial, proof));  // claims to be party 2
  EXPECT_FALSE(verify_pdec(tpk, 0, c, partial, proof));
  EXPECT_FALSE(verify_pdec(tpk, 9, c, partial, proof));
}

TEST_F(PdecNizkTest, ProofBoundToCiphertext) {
  const auto& tpk = keys_->tpk;
  mpz_class c1 = tpk.pk.enc(mpz_class(1), *rng_);
  mpz_class c2 = tpk.pk.enc(mpz_class(2), *rng_);
  const auto& sh = keys_->shares[1];
  mpz_class partial = tpdec(tpk, sh, c1);
  auto proof = prove_pdec(tpk, sh, c1, partial, *rng_);
  EXPECT_FALSE(verify_pdec(tpk, sh.index, c2, partial, proof));
}

TEST_F(PdecNizkTest, WorksAfterResharingEpoch) {
  ThresholdPK tpk = keys_->tpk;
  std::vector<unsigned> from{1, 2, 3};
  std::vector<ReshareMsg> msgs;
  for (unsigned i : from) msgs.push_back(tkres(tpk, keys_->shares[i - 1], *rng_));
  ThresholdPK tpk2 = next_epoch_pk(tpk, from, msgs);
  std::vector<SecretMpz> subs;
  for (const auto& m : msgs) subs.push_back(m.subshares[3]);  // party 4's subshares
  auto sh4 = tkrec(tpk, 4, from, subs);

  mpz_class c = tpk2.pk.enc(mpz_class(55), *rng_);
  mpz_class partial = tpdec(tpk2, sh4, c);
  auto proof = prove_pdec(tpk2, sh4, c, partial, *rng_);
  EXPECT_TRUE(verify_pdec(tpk2, 4, c, partial, proof));
}

}  // namespace
}  // namespace yoso
