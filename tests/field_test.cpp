#include <gtest/gtest.h>

#include "crypto/rand.hpp"
#include "field/fp61.hpp"
#include "field/zn_ring.hpp"

namespace yoso {
namespace {

TEST(Fp61, ModulusIsMersenne61) {
  EXPECT_EQ(Fp61::kModulus, 2305843009213693951ULL);
}

TEST(Fp61, AddWraps) {
  EXPECT_EQ(Fp61::add(Fp61::kModulus - 1, 1), 0u);
  EXPECT_EQ(Fp61::add(Fp61::kModulus - 1, 2), 1u);
  EXPECT_EQ(Fp61::add(0, 0), 0u);
}

TEST(Fp61, SubWraps) {
  EXPECT_EQ(Fp61::sub(0, 1), Fp61::kModulus - 1);
  EXPECT_EQ(Fp61::sub(5, 5), 0u);
}

TEST(Fp61, NegIsAdditiveInverse) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    auto a = rng.u64_below(Fp61::kModulus);
    EXPECT_EQ(Fp61::add(a, Fp61::neg(a)), 0u);
  }
}

TEST(Fp61, MulAgreesWithNaive128) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    auto a = rng.u64_below(Fp61::kModulus);
    auto b = rng.u64_below(Fp61::kModulus);
    unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
    std::uint64_t expected = static_cast<std::uint64_t>(p % Fp61::kModulus);
    EXPECT_EQ(Fp61::mul(a, b), expected);
  }
}

TEST(Fp61, InvIsMultiplicativeInverse) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    auto a = rng.u64_below(Fp61::kModulus - 1) + 1;
    EXPECT_EQ(Fp61::mul(a, Fp61::inv(a)), 1u);
  }
}

TEST(Fp61, PowMatchesRepeatedMul) {
  std::uint64_t base = 12345;
  std::uint64_t acc = 1;
  for (unsigned e = 0; e < 20; ++e) {
    EXPECT_EQ(Fp61::pow(base, e), acc);
    acc = Fp61::mul(acc, base);
  }
}

TEST(Fp61, FermatLittleTheorem) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    auto a = rng.u64_below(Fp61::kModulus - 1) + 1;
    EXPECT_EQ(Fp61::pow(a, Fp61::kModulus - 1), 1u);
  }
}

TEST(Fp61, FromIntHandlesNegatives) {
  EXPECT_EQ(Fp61::from_int(-1), Fp61::kModulus - 1);
  EXPECT_EQ(Fp61::from_int(-7), Fp61::kModulus - 7);
  EXPECT_EQ(Fp61::from_int(42), 42u);
  EXPECT_EQ(Fp61::from_int(0), 0u);
}

TEST(Fp61, BatchInvMatchesScalarInv) {
  Rng rng(5);
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.u64_below(Fp61::kModulus - 1) + 1);
  auto expected = xs;
  for (auto& x : expected) x = Fp61::inv(x);
  Fp61::batch_inv(xs);
  EXPECT_EQ(xs, expected);
}

TEST(Fp61, ReduceIsCanonical) {
  EXPECT_EQ(Fp61::reduce(Fp61::kModulus), 0u);
  EXPECT_EQ(Fp61::reduce(Fp61::kModulus + 5), 5u);
  EXPECT_EQ(Fp61::reduce(~std::uint64_t{0}), Fp61::reduce(7u));  // 2^64-1 = 8p + 7
}

TEST(ZnRing, BasicArithmetic) {
  ZnRing r(mpz_class(35));  // 5 * 7
  EXPECT_EQ(r.add(30, 10), 5);
  EXPECT_EQ(r.sub(3, 10), 28);
  EXPECT_EQ(r.mul(6, 6), 1);
  EXPECT_EQ(r.neg(1), 34);
}

TEST(ZnRing, InvOfUnit) {
  ZnRing r(mpz_class(35));
  mpz_class inv2 = r.inv(2);
  EXPECT_EQ(r.mul(2, inv2), 1);
  EXPECT_THROW(r.inv(5), std::domain_error);  // 5 divides 35
}

TEST(ZnRing, IsUnit) {
  ZnRing r(mpz_class(35));
  EXPECT_TRUE(r.is_unit(2));
  EXPECT_FALSE(r.is_unit(7));
  EXPECT_FALSE(r.is_unit(0));
}

TEST(ZnRing, PointsOkDetectsNonUnitDifferences) {
  ZnRing r(mpz_class(35));
  EXPECT_TRUE(r.points_ok({0, 1, 2, 3}));
  EXPECT_FALSE(r.points_ok({0, 7}));   // difference 7 shares a factor with 35
  EXPECT_FALSE(r.points_ok({-2, 3}));  // difference -5
}

TEST(ZnRing, FromIntNegative) {
  ZnRing r(mpz_class(100));
  EXPECT_EQ(r.from_int(-3), 97);
}

TEST(Rng, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.u64(), b.u64());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  mpz_class bound("123456789123456789");
  for (int i = 0; i < 100; ++i) {
    mpz_class v = rng.below(bound);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, bound);
  }
}

TEST(Rng, UnitModIsCoprime) {
  Rng rng(8);
  mpz_class n = 35;
  for (int i = 0; i < 20; ++i) {
    mpz_class u = rng.unit_mod(n);
    mpz_class g;
    mpz_gcd(g.get_mpz_t(), u.get_mpz_t(), n.get_mpz_t());
    EXPECT_EQ(g, 1);
  }
}

TEST(Rng, PrimeHasExactBitsAndIsPrime) {
  Rng rng(9);
  for (unsigned bits : {16u, 24u, 48u}) {
    mpz_class p = rng.prime(bits);
    EXPECT_EQ(mpz_sizeinbase(p.get_mpz_t(), 2), bits);
    EXPECT_NE(mpz_probab_prime_p(p.get_mpz_t(), 30), 0);
  }
}

TEST(Rng, SafePrimeStructure) {
  Rng rng(10);
  mpz_class p = rng.safe_prime(32);
  EXPECT_NE(mpz_probab_prime_p(p.get_mpz_t(), 30), 0);
  mpz_class q = (p - 1) / 2;
  EXPECT_NE(mpz_probab_prime_p(q.get_mpz_t(), 30), 0);
}

}  // namespace
}  // namespace yoso
