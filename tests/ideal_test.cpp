// Tests of the ideal functionalities (Section 2 / Appendix C) and the
// real-vs-ideal comparison: the protocol's I/O behaviour must coincide
// with F_MPC's on identical inputs (the correctness half of UC emulation).
#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "mpc/ideal.hpp"
#include "mpc/protocol.hpp"

namespace yoso {
namespace {

IdealMpc::Function sum_function() {
  return [](const std::vector<mpz_class>& xs) {
    mpz_class s = 0;
    for (const auto& x : xs) s += x;
    return std::vector<mpz_class>{s};
  };
}

TEST(IdealMpc, HonestInputsFirstRoundOnly) {
  IdealMpc f(2, 1, sum_function());
  f.input(0, mpz_class(5), 1);
  EXPECT_TRUE(f.has_spoken(0));
  // A second input from the same honest role is ignored.
  f.input(0, mpz_class(100), 1);
  f.input(1, mpz_class(7), 1);
  f.evaluate(2);
  EXPECT_EQ(*f.read(0), 12);
}

TEST(IdealMpc, HonestLateInputIgnoredDefaultsToZero) {
  IdealMpc f(2, 1, sum_function());
  f.input(0, mpz_class(5), 1);
  f.input(1, mpz_class(9), 3);  // honest, but round > 1: default 0 stands
  f.evaluate(4);
  EXPECT_EQ(*f.read(0), 5);
}

TEST(IdealMpc, MaliciousMayCommitLate) {
  IdealMpc f(2, 1, sum_function());
  f.set_role_class(1, IdealRoleClass::Malicious);
  f.input(0, mpz_class(5), 1);
  std::string leak = f.input(1, mpz_class(9), 5);  // corrupt: accepted late
  EXPECT_EQ(leak, "9");  // and leaked in full
  f.evaluate(6);
  EXPECT_EQ(*f.read(0), 14);
}

TEST(IdealMpc, HonestInputLeaksOnlyLength) {
  IdealMpc f(1, 1, sum_function());
  std::string leak = f.input(0, mpz_class(255), 1);
  EXPECT_EQ(leak, "8");  // bit length, not the value
}

TEST(IdealMpc, OutputsUnavailableBeforeEvaluated) {
  IdealMpc f(1, 1, sum_function());
  f.input(0, mpz_class(1), 1);
  EXPECT_FALSE(f.read(0).has_value());
  EXPECT_THROW(f.evaluate(1), std::logic_error);  // r > 1 required
  f.evaluate(2);
  EXPECT_TRUE(f.read(0).has_value());
  EXPECT_THROW(f.evaluate(3), std::logic_error);  // only once
}

TEST(IdealMpc, LeakyOutputRolesLeakToSimulator) {
  IdealMpc f(1, 2, [](const std::vector<mpz_class>& xs) {
    return std::vector<mpz_class>{xs[0], xs[0] * 2};
  });
  f.set_output_class(1, IdealRoleClass::Leaky);
  f.input(0, mpz_class(21), 1);
  auto leaked = f.evaluate(2);
  ASSERT_EQ(leaked.size(), 1u);
  EXPECT_EQ(leaked.at(1), 42);
}

TEST(IdealBroadcast, SpeakOnceAndRushingLeak) {
  IdealBroadcast bc;
  const std::string& leak = bc.send("R1", "hello", 1);
  EXPECT_EQ(leak, "hello");  // rushing adversary sees it immediately
  EXPECT_THROW(bc.send("R1", "again", 2), std::logic_error);
  bc.send("R2", "world", 1);
  auto round1 = bc.read(1, 2);
  EXPECT_EQ(round1.size(), 2u);
  EXPECT_EQ(round1.at("R2"), "world");
  EXPECT_THROW(bc.read(2, 2), std::logic_error);  // cannot read the future
  EXPECT_TRUE(bc.read(0, 5).empty());
}

// The real protocol realizes F_MPC's I/O relation: identical inputs give
// identical outputs (with the protocol's Z_{N^s} as the ideal ring).
TEST(RealVsIdeal, ProtocolMatchesFunctionality) {
  auto params = ProtocolParams::for_gap(5, 0.2, 192);
  Circuit c = statistics_circuit(3);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 7701);
  std::vector<std::vector<mpz_class>> inputs{{mpz_class(4)}, {mpz_class(9)}, {mpz_class(16)}};
  auto real = mpc.run(inputs);

  const mpz_class ns = mpc.plaintext_modulus();
  IdealMpc ideal(3, 2, [&](const std::vector<mpz_class>& xs) {
    mpz_class sum = (xs[0] + xs[1] + xs[2]) % ns;
    mpz_class sq = (xs[0] * xs[0] + xs[1] * xs[1] + xs[2] * xs[2]) % ns;
    return std::vector<mpz_class>{sum, sq};
  });
  for (unsigned i = 0; i < 3; ++i) ideal.input(i, inputs[i][0], 1);
  ideal.evaluate(2);
  EXPECT_EQ(real.outputs[0], *ideal.read(0));
  EXPECT_EQ(real.outputs[1], *ideal.read(1));
}

TEST(RealVsIdeal, MatchesUnderActiveCorruption) {
  auto params = ProtocolParams::for_gap(5, 0.2, 192);
  Circuit c = inner_product_circuit(2);
  YosoMpc mpc(params, c,
              AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::BadShare),
              7702);
  std::vector<std::vector<mpz_class>> inputs{{mpz_class(3), mpz_class(5)},
                                             {mpz_class(7), mpz_class(11)}};
  auto real = mpc.run(inputs);
  IdealMpc ideal(4, 1, [&](const std::vector<mpz_class>& xs) {
    return std::vector<mpz_class>{(xs[0] * xs[2] + xs[1] * xs[3]) % mpc.plaintext_modulus()};
  });
  ideal.input(0, 3, 1);
  ideal.input(1, 5, 1);
  ideal.input(2, 7, 1);
  ideal.input(3, 11, 1);
  ideal.evaluate(2);
  EXPECT_EQ(real.outputs[0], *ideal.read(0));
}

}  // namespace
}  // namespace yoso
