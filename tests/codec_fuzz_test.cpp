// Seeded mutation tests for the wire codec, covering every message tag:
// exhaustive single-bit flips, every strict truncation, trailing-byte
// extensions, random multi-byte corruption, and cross-tag decodes.  The
// contract under test is the NetBulletin fault pipeline's assumption that a
// decoder either throws CodecError or returns a value that re-encodes
// cleanly — never crashes, hangs, or trips ASan/UBSan (the chaos-smoke CI
// job runs this suite sanitized).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "crypto/prg.hpp"
#include "wire/codec.hpp"

namespace yoso {
namespace {

mpz_class rand_mpz(Prg& prg, unsigned max_bytes = 12) {
  std::vector<std::uint8_t> b(1 + prg.u64() % max_bytes);
  prg.bytes(b.data(), b.size());
  mpz_class z;
  mpz_import(z.get_mpz_t(), b.size(), 1, 1, 0, 0, b.data());
  if (prg.u64() & 1) z = -z;
  return z;
}

std::vector<mpz_class> rand_mpz_vec(Prg& prg, unsigned max_count = 4) {
  std::vector<mpz_class> v(1 + prg.u64() % max_count);
  for (auto& z : v) z = rand_mpz(prg);
  return v;
}

LinkProof rand_link_proof(Prg& prg) {
  LinkProof p;
  p.a_paillier = rand_mpz_vec(prg);
  p.a_exponent = rand_mpz_vec(prg);
  p.z = rand_mpz(prg);
  p.z_rs = rand_mpz_vec(prg);
  return p;
}

MaskMsg rand_mask_msg(Prg& prg) {
  MaskMsg m;
  m.a = rand_mpz(prg);
  m.b = rand_mpz(prg);
  m.proof = rand_link_proof(prg);
  return m;
}

// One corpus entry: a real encoding of one message type plus a type-erased
// decode -> re-encode probe (the exact pipeline a receiving role runs).
struct Entry {
  const char* name;
  std::uint8_t tag;
  std::vector<std::uint8_t> encoded;
  // Throws CodecError on rejection; anything else is a contract violation.
  std::function<void(const std::vector<std::uint8_t>&)> decode_reencode;
};

template <typename T, typename Enc, typename Dec>
Entry make_entry(const char* name, std::uint8_t tag, const T& msg, Enc enc, Dec dec) {
  Entry e;
  e.name = name;
  e.tag = tag;
  e.encoded = enc(msg);
  e.decode_reencode = [enc, dec](const std::vector<std::uint8_t>& data) { (void)enc(dec(data)); };
  return e;
}

// A realistic instance of every one of the eleven tagged message types.
std::vector<Entry> make_corpus(Prg& prg) {
  std::vector<Entry> corpus;

  corpus.push_back(make_entry("LinkProof", kTagLinkProof, rand_link_proof(prg),
                              encode_link_proof, decode_link_proof));

  MultProof mult;
  mult.a1 = rand_mpz(prg);
  mult.a2 = rand_mpz(prg);
  mult.z = rand_mpz(prg);
  mult.z1 = rand_mpz(prg);
  mult.z2 = rand_mpz(prg);
  corpus.push_back(make_entry("MultProof", kTagMultProof, mult, encode_mult_proof,
                              decode_mult_proof));

  corpus.push_back(make_entry("RootProof", kTagRootProof, RootProof{rand_mpz(prg), rand_mpz(prg)},
                              encode_root_proof, decode_root_proof));

  corpus.push_back(make_entry("MaskMsg", kTagMaskMsg, rand_mask_msg(prg), encode_mask_msg,
                              decode_mask_msg));

  HandoverMsg ho;
  ho.from_index = static_cast<unsigned>(prg.u64() % 16);
  ho.commitments = rand_mpz_vec(prg);
  ho.enc_subshares = rand_mpz_vec(prg);
  ho.proofs.resize(1 + prg.u64() % 2);
  for (auto& p : ho.proofs) p = rand_link_proof(prg);
  corpus.push_back(make_entry("HandoverMsg", kTagHandoverMsg, ho, encode_handover_msg,
                              decode_handover_msg));

  corpus.push_back(make_entry("FutureCt", kTagFutureCt, FutureCt{rand_mpz(prg), rand_mpz(prg)},
                              encode_future_ct, decode_future_ct));

  PdecMsg pdec;
  pdec.partials = rand_mpz_vec(prg);
  pdec.proofs.resize(1 + prg.u64() % 2);
  for (auto& p : pdec.proofs) p.inner = rand_link_proof(prg);
  corpus.push_back(make_entry("PdecMsg", kTagPdecMsg, pdec, encode_pdec_msg, decode_pdec_msg));

  ContribMsg contrib;
  contrib.cts = rand_mpz_vec(prg);
  contrib.proofs.resize(1 + prg.u64() % 2);
  for (auto& p : contrib.proofs) p.inner = rand_link_proof(prg);
  corpus.push_back(make_entry("ContribMsg", kTagContribMsg, contrib, encode_contrib_msg,
                              decode_contrib_msg));

  BeaverMsg beaver;
  beaver.cb = rand_mpz_vec(prg);
  beaver.cc = rand_mpz_vec(prg);
  beaver.proofs.resize(1 + prg.u64() % 2);
  for (auto& p : beaver.proofs) {
    p.a1 = rand_mpz(prg);
    p.a2 = rand_mpz(prg);
    p.z = rand_mpz(prg);
    p.z1 = rand_mpz(prg);
    p.z2 = rand_mpz(prg);
  }
  corpus.push_back(make_entry("BeaverMsg", kTagBeaverMsg, beaver, encode_beaver_msg,
                              decode_beaver_msg));

  MultShareMsg ms;
  ms.p_int = rand_mpz_vec(prg);
  ms.proofs.resize(1 + prg.u64() % 2);
  for (auto& p : ms.proofs) p = RootProof{rand_mpz(prg), rand_mpz(prg)};
  corpus.push_back(make_entry("MultShareMsg", kTagMultShareMsg, ms, encode_mult_share_msg,
                              decode_mult_share_msg));

  std::vector<MaskMsg> batch(1 + prg.u64() % 2);
  for (auto& m : batch) m = rand_mask_msg(prg);
  corpus.push_back(make_entry("MaskBatch", kTagMaskBatch, batch, encode_mask_batch,
                              decode_mask_batch));

  return corpus;
}

// decode(mutated) must throw CodecError or succeed; on success the value
// must re-encode without incident.  Anything else fails the test.
void probe(const Entry& e, const std::vector<std::uint8_t>& mutated) {
  try {
    e.decode_reencode(mutated);
  } catch (const CodecError&) {
    // clean, classified rejection
  }
  // peek_tag/tag_name must likewise never misbehave on corrupt input.
  if (!mutated.empty()) (void)tag_name(peek_tag(mutated));
}

TEST(CodecFuzzTest, CorpusCoversEveryTag) {
  Prg prg(0xF0221);
  auto corpus = make_corpus(prg);
  ASSERT_EQ(corpus.size(), 11u);
  std::vector<bool> seen(0x0C, false);
  for (const auto& e : corpus) {
    EXPECT_EQ(peek_tag(e.encoded), e.tag) << e.name;
    EXPECT_STRNE(tag_name(e.tag), "unknown") << e.name;
    EXPECT_FALSE(seen[e.tag]) << "duplicate tag for " << e.name;
    seen[e.tag] = true;
    e.decode_reencode(e.encoded);  // the unmutated corpus itself round-trips
  }
}

TEST(CodecFuzzTest, EverySingleBitFlipRejectsOrReencodes) {
  Prg prg(0xF0222);
  for (const auto& e : make_corpus(prg)) {
    for (std::size_t pos = 0; pos < e.encoded.size(); ++pos) {
      for (unsigned bit = 0; bit < 8; ++bit) {
        auto mutated = e.encoded;
        mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
        probe(e, mutated);
      }
    }
  }
}

TEST(CodecFuzzTest, EveryTruncationThrows) {
  Prg prg(0xF0223);
  for (const auto& e : make_corpus(prg)) {
    for (std::size_t len = 0; len < e.encoded.size(); ++len) {
      std::vector<std::uint8_t> prefix(e.encoded.begin(), e.encoded.begin() + len);
      EXPECT_THROW(e.decode_reencode(prefix), CodecError)
          << e.name << " accepted a " << len << "-byte truncation";
    }
  }
}

TEST(CodecFuzzTest, TrailingBytesThrow) {
  Prg prg(0xF0224);
  for (const auto& e : make_corpus(prg)) {
    for (std::size_t extra : {std::size_t{1}, std::size_t{4}, std::size_t{33}}) {
      auto extended = e.encoded;
      std::vector<std::uint8_t> tail(extra);
      prg.bytes(tail.data(), tail.size());
      extended.insert(extended.end(), tail.begin(), tail.end());
      EXPECT_THROW(e.decode_reencode(extended), CodecError)
          << e.name << " accepted " << extra << " trailing bytes";
    }
  }
}

TEST(CodecFuzzTest, RandomMultiByteCorruptionNeverCrashes) {
  Prg prg(0xF0225);
  auto corpus = make_corpus(prg);
  for (int trial = 0; trial < 400; ++trial) {
    const Entry& e = corpus[prg.u64() % corpus.size()];
    auto mutated = e.encoded;
    const std::size_t flips = 1 + prg.u64() % 4;
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[prg.u64() % mutated.size()] ^= static_cast<std::uint8_t>(1 + prg.u64() % 255);
    }
    probe(e, mutated);
  }
}

TEST(CodecFuzzTest, CrossTagDecodeRejects) {
  // Feeding any message to any *other* type's decoder must reject on the
  // tag byte — the receiver-side guard NetBulletin's decode_check relies on.
  Prg prg(0xF0226);
  auto corpus = make_corpus(prg);
  for (const auto& payload : corpus) {
    for (const auto& decoder : corpus) {
      if (payload.tag == decoder.tag) continue;
      EXPECT_THROW(decoder.decode_reencode(payload.encoded), CodecError)
          << decoder.name << " accepted a " << payload.name;
    }
  }
}

}  // namespace
}  // namespace yoso
