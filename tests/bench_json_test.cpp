// Tests for the bench-file plumbing behind the performance observatory:
// the one-key-per-line BENCH_comm.json merge now goes through the
// json::parse funnel (round trips exactly, rejects malformed files instead
// of silently clobbering them), baselines flatten to suffix-toleranced
// metric maps, and the JSONL history round-trips snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <map>
#include <string>

#include "common/json.hpp"
#include "perf/baseline.hpp"
#include "perf/benchfile.hpp"
#include "perf/history.hpp"

namespace yoso {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
}

// --- merge_bench_json -------------------------------------------------------

TEST(BenchJson, MergeCreatesAndKeepsOneKeyPerLine) {
  const std::string path = temp_path("bench_create.json");
  spit(path, "");
  perf::merge_bench_json(path, "alpha", R"({"x":1})");
  perf::merge_bench_json(path, "beta", "[1,2,3]");
  const std::string text = slurp(path);
  EXPECT_EQ(text, "{\n\"alpha\": {\"x\":1},\n\"beta\": [1,2,3]\n}\n");

  // Replacing a key keeps the others and the layout.
  perf::merge_bench_json(path, "alpha", R"({"x":2})");
  EXPECT_EQ(slurp(path), "{\n\"alpha\": {\"x\":2},\n\"beta\": [1,2,3]\n}\n");
}

TEST(BenchJson, RoundTripsNestedValuesExactly) {
  const std::string path = temp_path("bench_roundtrip.json");
  spit(path, "");
  const std::string value =
      R"({"n4":{"ours":{"online":{"total":{"messages":18446744073709551615,"bytes":123}}},"s":"a\"b"}})";
  perf::merge_bench_json(path, "online_comm", value);
  auto entries = perf::read_bench_entries(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "online_comm");
  // Integers survive exactly (u64 max would be mangled by a double round
  // trip) and escapes re-serialize canonically.
  EXPECT_EQ(entries[0].second, value);

  // A second merge cycle produces a byte-identical file.
  const std::string before = slurp(path);
  perf::merge_bench_json(path, "online_comm", entries[0].second);
  EXPECT_EQ(slurp(path), before);
}

TEST(BenchJson, RejectsMalformedFileAndValue) {
  const std::string path = temp_path("bench_malformed.json");
  spit(path, "{\"good\": 1\n");  // truncated object
  EXPECT_THROW(perf::merge_bench_json(path, "k", "1"), std::invalid_argument);
  // The malformed file was not clobbered by the failed merge.
  EXPECT_EQ(slurp(path), "{\"good\": 1\n");

  spit(path, "{}\n");
  EXPECT_THROW(perf::merge_bench_json(path, "k", "{broken"), std::invalid_argument);
  EXPECT_THROW(perf::merge_bench_json(path, "k", ""), std::invalid_argument);
}

TEST(BenchJson, MissingFileReadsEmpty) {
  EXPECT_TRUE(perf::read_bench_entries(temp_path("does_not_exist.json")).empty());
}

// --- baseline flatten + check -----------------------------------------------

TEST(Baseline, FlattensNumericLeavesAndSkipsCategories) {
  const json::Value doc = json::parse(
      R"({"online_comm":{"n4":{"ours":{"online":{"total":{"messages":10,"bytes":999},)"
      R"("categories":{"online.mult":{"bytes":1}}}},"label":"text"}},"ignored":{"x":1}})");
  auto metrics = perf::flatten_metrics(doc, {"online_comm"});
  EXPECT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics.at("online_comm.n4.ours.online.total.messages"), 10);
  EXPECT_EQ(metrics.at("online_comm.n4.ours.online.total.bytes"), 999);
  EXPECT_EQ(metrics.count("online_comm.n4.ours.online.categories.online.mult.bytes"), 0u);
}

TEST(Baseline, ToleranceBySuffix) {
  EXPECT_DOUBLE_EQ(perf::tolerance_for("a.b.bytes"), 0.10);
  EXPECT_DOUBLE_EQ(perf::tolerance_for("a.b.messages"), 0.0);
  EXPECT_DOUBLE_EQ(perf::tolerance_for("a.b.elements"), 0.0);
  EXPECT_DOUBLE_EQ(perf::tolerance_for("scaling_audit.n4.k"), 0.0);
  // Measured time gets the wide factor band; op call counts stay exact.
  EXPECT_DOUBLE_EQ(perf::tolerance_for("op_costs.n4.costs.ops.ct.powm_sec.self_us"), 4.0);
  EXPECT_DOUBLE_EQ(perf::tolerance_for("op_costs.n4.costs.ops.ct.powm_sec.count"), 0.0);
}

// The op_costs point payload: "ops" totals flatten (count exact, self_us
// factor-banded via the suffix above) while the per-phase breakdown — the
// cost model's input, not a gate — is skipped like "categories".
TEST(Baseline, FlattensOpCostsButSkipsByPhase) {
  const json::Value doc = json::parse(
      R"({"op_costs":{"n4":{"k":1,"costs":{"ops":{"ct.powm_sec":{"count":96,"self_us":1875.2}},)"
      R"("by_phase":{"setup":{"wall_us":9000,"ops":{"ct.powm_sec":{"count":40,"self_us":800}}}}}}}})");
  auto metrics = perf::flatten_metrics(doc, {"op_costs"});
  EXPECT_EQ(metrics.at("op_costs.n4.k"), 1);
  EXPECT_EQ(metrics.at("op_costs.n4.costs.ops.ct.powm_sec.count"), 96);
  EXPECT_DOUBLE_EQ(metrics.at("op_costs.n4.costs.ops.ct.powm_sec.self_us"), 1875.2);
  for (const auto& [key, value] : metrics) {
    EXPECT_EQ(key.find("by_phase"), std::string::npos) << key;
  }
}

TEST(Baseline, CheckFlagsRegressionsMissingAndPasses) {
  std::map<std::string, double> baseline = {
      {"x.bytes", 1000}, {"x.messages", 10}, {"gone.elements", 5}};
  std::map<std::string, double> current = {
      {"x.bytes", 1099}, {"x.messages", 10}, {"extra.bytes", 1}};
  perf::CheckResult ok = perf::check_against_baseline(
      {{"x.bytes", 1000}, {"x.messages", 10}}, current);
  EXPECT_TRUE(ok.pass());
  EXPECT_EQ(ok.checked, 2u);

  // +25% bytes is outside the +-10% band; a missing metric always fails.
  current["x.bytes"] = 1250;
  perf::CheckResult bad = perf::check_against_baseline(baseline, current);
  EXPECT_FALSE(bad.pass());
  ASSERT_EQ(bad.mismatches.size(), 2u);
  EXPECT_EQ(bad.mismatches[0].metric, "gone.elements");
  EXPECT_TRUE(bad.mismatches[0].missing);
  EXPECT_EQ(bad.mismatches[1].metric, "x.bytes");
  EXPECT_DOUBLE_EQ(bad.mismatches[1].tolerance, 0.10);

  // An exact metric fails on any drift, even a tiny one.
  current["x.bytes"] = 1000;
  current["x.messages"] = 11;
  EXPECT_FALSE(perf::check_against_baseline(baseline, current).pass());

  // An empty baseline never passes (it checks nothing).
  EXPECT_FALSE(perf::check_against_baseline({}, current).pass());
}

TEST(Baseline, ParsesFlatObjectIgnoringNonNumbers) {
  auto metrics =
      perf::parse_baseline(json::parse(R"({"a.bytes":10,"note":"text","b.messages":3})"));
  EXPECT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics.at("a.bytes"), 10);
}

// --- history ----------------------------------------------------------------

TEST(History, AppendsAndLoadsSnapshots) {
  const std::string path = temp_path("history_roundtrip.jsonl");
  spit(path, "");
  perf::HistorySnapshot a{"2026-08-06T00:00:00Z", "first", {{"m.bytes", 100}}};
  perf::HistorySnapshot b{"2026-08-06T01:00:00Z", "second", {{"m.bytes", 110}, {"m.new", 1}}};
  perf::append_history(path, a);
  perf::append_history(path, b);

  auto snaps = perf::load_history(path);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].timestamp, "2026-08-06T00:00:00Z");
  EXPECT_EQ(snaps[0].label, "first");
  EXPECT_EQ(snaps[0].metrics.at("m.bytes"), 100);
  EXPECT_EQ(snaps[1].metrics.size(), 2u);

  // One snapshot per line, parseable standalone.
  const std::string text = slurp(path);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

// History files straddle the introduction of the profiler: snapshots
// recorded before the "profile" / "op_costs" bench keys existed sit next to
// lines that carry the flattened op counts.  Both generations must load
// from one file, and the old lines simply have no op metrics — absence, not
// an error.
TEST(History, MixedGenerationLinesLoadTogether) {
  const std::string path = temp_path("history_compat.jsonl");
  // A pre-profiler line, exactly as older `perf record` builds wrote it.
  spit(path,
       R"({"timestamp":"2026-07-01T00:00:00Z","label":"pre-profiler",)"
       R"("metrics":{"online_comm.n4.ours.online.total.bytes":1234}})"
       "\n");
  perf::HistorySnapshot current{
      "2026-08-08T00:00:00Z",
      "with-profile",
      {{"online_comm.n4.ours.online.total.bytes", 1240},
       {"profile.n4.counts.ops.ct.powm_sec.count", 96},
       {"op_costs.n4.costs.ops.ct.powm_sec.self_us", 1875.2}}};
  perf::append_history(path, current);

  auto snaps = perf::load_history(path);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].label, "pre-profiler");
  EXPECT_EQ(snaps[0].metrics.size(), 1u);
  EXPECT_EQ(snaps[0].metrics.count("profile.n4.counts.ops.ct.powm_sec.count"), 0u);
  EXPECT_EQ(snaps[1].metrics.at("profile.n4.counts.ops.ct.powm_sec.count"), 96);
  // Round trip: the new-generation line re-parses bit-exactly.
  EXPECT_EQ(perf::snapshot_json(snaps[1]), perf::snapshot_json(current));
}

TEST(History, MalformedLineNamesItsLineNumber) {
  const std::string path = temp_path("history_malformed.jsonl");
  spit(path, perf::snapshot_json({"t", "l", {}}) + "\n{oops\n");
  try {
    perf::load_history(path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace yoso
