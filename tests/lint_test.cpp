// Fixture tests for the secret-hygiene linter (tools/lint).  Each negative
// fixture is a miniature tree that must trip exactly its target rule; the
// clean fixtures and the real repository must pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace yoso::lint {
namespace {

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(LINT_FIXTURE_DIR) / name;
}

std::vector<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  std::sort(rules.begin(), rules.end());
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
  return rules;
}

TEST(LintFixtures, RawPowmFires) {
  auto findings = lint_tree(fixture("raw_powm"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"raw-powm"});
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].file, "src/bad.cpp");
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(LintFixtures, RawInvertFires) {
  auto findings = lint_tree(fixture("raw_invert"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"raw-invert"});
}

TEST(LintFixtures, MemcmpFires) {
  auto findings = lint_tree(fixture("memcmp"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"memcmp"});
}

TEST(LintFixtures, UnwhitelistedDeclassifyFires) {
  auto findings = lint_tree(fixture("declassify"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"declassify"});
}

TEST(LintFixtures, DeclassifyWhitelistSuppresses) {
  std::string err;
  Whitelist wl = Whitelist::parse("declassify src/bad.cpp -- fixture exemption\n", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(lint_tree(fixture("declassify"), wl).empty());
}

TEST(LintFixtures, NondeterminismFiresInConsensusScope) {
  auto findings = lint_tree(fixture("nondet"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"nondeterminism"});
  // unordered_map, time( and rand( each fire on their own line.
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintFixtures, BannedIncludeFires) {
  auto findings = lint_tree(fixture("banned_include"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"banned-include"});
  EXPECT_EQ(findings.size(), 2u);  // <random> and <unordered_map>
}

TEST(LintFixtures, CodecSwitchFlagsMissingCase) {
  auto findings = lint_tree(fixture("codec_switch"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"codec-switch"});
  // kTagBeta missing from both handler files.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("kTagBeta"), std::string::npos);
}

TEST(LintFixtures, RawJsonFiresOutsideTheWriterFunnel) {
  auto findings = lint_tree(fixture("raw_json"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"raw-json"});
  // src/common/json.cpp is exempt: only src/bad.cpp fires.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/bad.cpp");
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(LintFixtures, RawJsonWhitelistSuppresses) {
  std::string err;
  Whitelist wl = Whitelist::parse("raw-json src/bad.cpp -- fixture exemption\n", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(lint_tree(fixture("raw_json"), wl).empty());
}

TEST(LintFixtures, RawJsonIgnoresComments) {
  // A commented-out `\"key\":` must not fire; only live string literals do.
  auto findings = lint_file("src/x.cpp", "// return \"{\\\"key\\\":1}\";\n", Whitelist());
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintFixtures, CommentsAndStringsAreIgnored) {
  EXPECT_TRUE(lint_tree(fixture("comment_only"), Whitelist()).empty());
}

TEST(LintFixtures, PrgDisciplineFires) {
  auto findings = lint_tree(fixture("prg_discipline"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"prg-discipline"});
  // Rng ctor and gmp_randinit fire; the prg::derive_prg line is blessed.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_EQ(findings[1].line, 6u);
}

TEST(LintFixtures, PrgDisciplineWhitelistSuppresses) {
  std::string err;
  Whitelist wl = Whitelist::parse("prg-discipline src/bad.cpp -- fixture exemption\n", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(lint_tree(fixture("prg_discipline"), wl).empty());
}

TEST(LintFixtures, MutableGlobalFires) {
  auto findings = lint_tree(fixture("mutable_global"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"mutable-global"});
  // Only the mutable static fires; const/constexpr/function lines are clean.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintFixtures, OneShotFires) {
  auto findings = lint_tree(fixture("one_shot"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"one-shot"});
  ASSERT_EQ(findings.size(), 2u);
  // (a) the duplicate (committee, label) publish …
  EXPECT_EQ(findings[0].file, "src/mpc/bad.cpp");
  EXPECT_EQ(findings[0].line, 7u);
  EXPECT_NE(findings[0].message.find("mult-share"), std::string::npos);
  // … and (b) the Secret<…> member retained in a role-scope header.
  EXPECT_EQ(findings[1].file, "src/mpc/bad_state.hpp");
  EXPECT_EQ(findings[1].line, 9u);
}

TEST(LintFixtures, ObsHotLoopFires) {
  auto findings = lint_tree(fixture("obs_hot_loop"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"obs-hot-loop"});
  // The raw OBS_COUNT / OBS_HIST sites fire; the OBS_OP profiler seam is
  // clean, and the same macro outside src/crypto|paillier (src/obs/ok.cpp)
  // is out of the rule's path scope.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/paillier/bad.cpp");
  EXPECT_EQ(findings[0].line, 5u);
  EXPECT_EQ(findings[1].line, 7u);
}

TEST(LintFixtures, ObsHotLoopWhitelistSuppresses) {
  std::string err;
  Whitelist wl =
      Whitelist::parse("obs-hot-loop src/paillier/bad.cpp -- fixture exemption\n", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(lint_tree(fixture("obs_hot_loop"), wl).empty());
}

TEST(LintFixtures, TsanSuppressionWithoutReasonFires) {
  auto findings = lint_tree(fixture("tsan_reason"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"tsan-suppression"});
  // The reasoned entry is clean; the bare one fires.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "tools/tsan/suppressions.txt");
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(LintFixtures, ServiceScopeIsConsensusVisible) {
  // src/service joined the consensus scope: scheduling decisions replicate
  // across workers, so the nondeterminism rule applies there too.
  auto findings = lint_tree(fixture("service_scope"), Whitelist());
  EXPECT_EQ(rules_fired(findings), std::vector<std::string>{"nondeterminism"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/service/bad.cpp");
}

TEST(LintStrip, DigitSeparatorsAreNotCharLiterals) {
  // 10'000 must not open a char-literal state that swallows the ';' and
  // leaves a later comment visible to the token rules.
  auto findings = lint_file("src/yoso/x.cpp",
                            "int clients = 10'000;\n"
                            "// the batch's submit time (lets the pool warm)\n",
                            Whitelist());
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintJson, FindingsJsonlMatchesFindings) {
  auto findings = lint_tree(fixture("raw_powm"), Whitelist());
  ASSERT_FALSE(findings.empty());
  const std::string jsonl = findings_jsonl(findings);
  // One object per finding, one per line.
  EXPECT_EQ(static_cast<std::size_t>(std::count(jsonl.begin(), jsonl.end(), '\n')),
            findings.size());
  EXPECT_EQ(jsonl.substr(0, jsonl.find('\n')),
            "{\"rule\":\"raw-powm\",\"file\":\"src/bad.cpp\",\"line\":4,"
            "\"message\":\"raw GMP exponentiation; use powm_sec/powm_pub from "
            "common/ct_math.hpp\"}");
  EXPECT_EQ(findings_jsonl({}), "");
}

TEST(LintFixtures, CleanTreeIsClean) {
  EXPECT_TRUE(lint_tree(fixture("clean"), Whitelist()).empty());
}

TEST(LintWhitelist, RejectsEntryWithoutReason) {
  std::string err;
  Whitelist::parse("raw-powm src/foo.cpp\n", &err);
  EXPECT_FALSE(err.empty());
  Whitelist::parse("raw-powm src/foo.cpp --\n", &err);
  EXPECT_FALSE(err.empty());
}

TEST(LintWhitelist, ParsesCommentsAndEntries) {
  std::string err;
  Whitelist wl = Whitelist::parse("# header\n\nraw-powm src/a.cpp -- funnel\n", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(wl.size(), 1u);
  EXPECT_TRUE(wl.allows("raw-powm", "src/a.cpp"));
  EXPECT_FALSE(wl.allows("raw-powm", "src/b.cpp"));
  EXPECT_FALSE(wl.allows("raw-invert", "src/a.cpp"));
}

TEST(LintStrip, PreservesLineNumbers) {
  std::string s = "a /* x\n y */ b\n// c\nd \"mpz_powm\" e\n";
  std::string stripped = strip_comments_and_strings(s);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("mpz_powm"), std::string::npos);
}

// The acceptance criterion: the real tree lints clean under the real
// whitelist.  Mirrors the `repo_lint` ctest, but in-process so a failure
// prints the findings inline.
TEST(LintRepo, RealTreeIsClean) {
  const std::filesystem::path root(LINT_REPO_ROOT);
  Whitelist wl = Whitelist::load(root / "tools" / "lint" / "whitelist.txt");
  auto findings = lint_tree(root, wl);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

}  // namespace
}  // namespace yoso::lint
