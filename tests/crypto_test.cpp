#include <gtest/gtest.h>

#include "crypto/prg.hpp"
#include "crypto/sha256.hpp"
#include "crypto/transcript.hpp"

namespace yoso {
namespace {

// FIPS 180-4 test vectors.
TEST(Sha256, EmptyString) {
  auto d = Sha256::hash("", 0);
  EXPECT_EQ(Sha256::hex(d), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  auto d = Sha256::hash("abc", 3);
  EXPECT_EQ(Sha256::hex(d), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  auto d = Sha256::hash(msg.data(), msg.size());
  EXPECT_EQ(Sha256::hex(d), "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha256::hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  h.update(msg.substr(0, 10)).update(msg.substr(10));
  EXPECT_EQ(Sha256::hex(h.finalize()), Sha256::hex(Sha256::hash(msg.data(), msg.size())));
}

TEST(Sha256, UpdateAfterFinalizeThrows) {
  Sha256 h;
  h.update("x");
  h.finalize();
  EXPECT_THROW(h.update("y"), std::logic_error);
  Sha256 h2;
  h2.finalize();
  EXPECT_THROW(h2.finalize(), std::logic_error);
}

TEST(Prg, DeterministicFromSeed) {
  Prg a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.u64(), b.u64());
}

TEST(Prg, DifferentSeedsDiffer) {
  Prg a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= (a.u64() != b.u64());
  EXPECT_TRUE(any_diff);
}

TEST(Prg, BelowInRangeAndDeterministic) {
  Prg a(7), b(7);
  mpz_class bound("987654321987654321987654321");
  for (int i = 0; i < 32; ++i) {
    mpz_class x = a.below(bound);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, bound);
    EXPECT_EQ(x, b.below(bound));
  }
}

TEST(Prg, ByteStreamIsPositionIndependent) {
  Prg a(99), b(99);
  std::vector<std::uint8_t> one(64), two(64);
  a.bytes(one.data(), 64);
  b.bytes(two.data(), 32);
  b.bytes(two.data() + 32, 32);
  EXPECT_EQ(one, two);
}

TEST(Transcript, DeterministicChallenges) {
  Transcript t1("test"), t2("test");
  t1.absorb("x", mpz_class(123));
  t2.absorb("x", mpz_class(123));
  EXPECT_EQ(t1.challenge_bits("e", 128), t2.challenge_bits("e", 128));
}

TEST(Transcript, DifferentDataDifferentChallenge) {
  Transcript t1("test"), t2("test");
  t1.absorb("x", mpz_class(123));
  t2.absorb("x", mpz_class(124));
  EXPECT_NE(t1.challenge_bits("e", 128), t2.challenge_bits("e", 128));
}

TEST(Transcript, DifferentDomainsDiffer) {
  Transcript t1("a"), t2("b");
  EXPECT_NE(t1.challenge_bits("e", 128), t2.challenge_bits("e", 128));
}

TEST(Transcript, ChallengeBitsInRange) {
  Transcript t("range");
  mpz_class c = t.challenge_bits("e", 100);
  EXPECT_LT(mpz_sizeinbase(c.get_mpz_t(), 2), 101u);
}

TEST(Transcript, ChallengeBelowInRange) {
  Transcript t("below");
  mpz_class bound("1000000007");
  for (int i = 0; i < 10; ++i) {
    mpz_class c = t.challenge_below("e", bound);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, bound);
  }
}

TEST(Transcript, SuccessiveChallengesAreIndependent) {
  Transcript t("seq");
  EXPECT_NE(t.challenge_bits("e", 128), t.challenge_bits("e", 128));
}

TEST(Transcript, NegativeMpzAbsorbedDistinctly) {
  Transcript t1("sign"), t2("sign");
  t1.absorb("x", mpz_class(-5));
  t2.absorb("x", mpz_class(5));
  EXPECT_NE(t1.challenge_bits("e", 64), t2.challenge_bits("e", 64));
}

TEST(MpzBytes, RoundTrip) {
  for (const char* s : {"0", "1", "-1", "255", "256", "-98765432109876543210", "170141183460469231731687303715884105727"}) {
    mpz_class v(s);
    EXPECT_EQ(mpz_from_bytes(mpz_to_bytes(v)), v) << s;
  }
}

TEST(MpzBytes, WireSizeMatchesSerialization) {
  for (const char* s : {"0", "1", "65535", "-123456789"}) {
    mpz_class v(s);
    EXPECT_EQ(mpz_wire_size(v), mpz_to_bytes(v).size()) << s;
  }
}

}  // namespace
}  // namespace yoso
