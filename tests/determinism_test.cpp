// Replay-determinism harness: every seeded entry point must produce
// byte-identical reports when run again from the same seed.  This is the
// dynamic counterpart of the nondeterminism/prg-discipline lint rules — the
// property the deterministic multi-core engine will rely on is that a run
// is a pure function of its seeds, with no hidden state leaking between
// runs through the obs singletons or anywhere else.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "chaos/campaign.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "perf/critpath.hpp"
#include "perf/sweep.hpp"
#include "service/service.hpp"

namespace yoso {
namespace {

// Runs `body` from a clean observability slate and returns its report.  The
// obs singletons are process-global (reviewed mutable-global whitelist
// entries), so a replay must reset them or counters would accumulate across
// replays and mask — or fake — divergence.
std::string replay(const std::function<std::string()>& body) {
  obs::metrics().reset();
  obs::tracer().reset();
  obs::timeseries().reset();
  obs::profiler().reset();
  return body();
}

void expect_replay_identical(const std::function<std::string()>& body) {
  const std::string first = replay(body);
  const std::string second = replay(body);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "replay diverged";
}

std::vector<std::vector<mpz_class>> seeded_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  return inputs;
}

TEST(DeterminismTest, ProtocolOverNetBulletinReplays) {
  expect_replay_identical([] {
    auto params = ProtocolParams::for_gap(4, 0.25, 96);
    Circuit c = statistics_circuit(3);
    auto inputs = seeded_inputs(c, 4242);
    Ledger ledger;
    net::NetBulletin board(ledger, net::NetConfig{});
    YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 4242, &board);
    auto result = mpc.run(inputs);
    board.flush();
    std::ostringstream ss;
    for (const auto& v : result.outputs) ss << v << "\n";
    ss << board.report_json() << "\n" << mpc.ledger().report_json();
    return ss.str();
  });
}

TEST(DeterminismTest, ChaosCampaignReplays) {
  expect_replay_identical([] { return chaos::CampaignRunner::run_campaign(42, 3).to_json(); });
}

TEST(DeterminismTest, PerfSweepPointReplays) {
  expect_replay_identical([] {
    return perf::online_comm_json({perf::run_online_point(4)});
  });
}

TEST(DeterminismTest, ServiceRunReplays) {
  expect_replay_identical([] {
    service::ServiceConfig cfg;
    cfg.n = 4;
    cfg.eps = 0.25;
    cfg.paillier_bits = 96;
    cfg.seed = 7;
    service::MpcService svc(cfg);
    for (unsigned s = 0; s < 2; ++s) {
      service::SessionRequest req;
      req.tag = "det-" + std::to_string(s);
      req.circuit = statistics_circuit(2);
      req.inputs = {{mpz_class(10 + s)}, {mpz_class(20 + s)}};
      svc.submit_at(0.01 * (s + 1), std::move(req));
    }
    svc.shutdown_at(10.0);
    svc.run();
    return svc.report_json();
  });
}

// The profiler's determinism split (src/obs/profile.hpp): per-primitive op
// COUNTS are a pure function of the seeded run, so the counts-only snapshot
// must be byte-identical whether timing capture is enabled or muted — and
// across replays in either mode.
TEST(DeterminismTest, OpCountsIdenticalEnabledVsMuted) {
  auto body = [] {
    auto params = ProtocolParams::for_gap(4, 0.25, 96);
    Circuit c = statistics_circuit(3);
    auto inputs = seeded_inputs(c, 4242);
    YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 4242);
    (void)mpc.run(inputs);
    return obs::profiler().op_costs_json(false);
  };
  obs::set_enabled(true);
  const std::string enabled_counts = replay(body);
  obs::set_enabled(false);
  const std::string muted_counts = replay(body);
  obs::set_enabled(true);
  ASSERT_FALSE(enabled_counts.empty());
  EXPECT_NE(enabled_counts, "{}");
  EXPECT_EQ(enabled_counts, muted_counts) << "op counts depend on the mute switch";
}

// The causality observatory end to end (src/perf/critpath.hpp): DAG
// reconstruction + reference-table pricing + the k-worker forecast are all
// counts-driven, so a same-seed replay must reproduce the whole critpath
// bench point — crit report and DAG summary — byte for byte.
TEST(DeterminismTest, CritpathPointReplays) {
  expect_replay_identical([] {
    perf::CritpathOptions opt;
    opt.n = 4;
    const perf::CritpathPoint pt = perf::run_critpath_point(opt);
    return pt.crit_json + "\n" + pt.dag_json;
  });
}

// A churn schedule that only delivers after a Section 5.4 resubmission must
// replay byte-identically — retry accounting, backoff, ledger markers and
// all.  Campaign seed 42, index 2 is a known recovering schedule.
TEST(DeterminismTest, ChurnServiceRunWithRetryReplays) {
  expect_replay_identical([] {
    const auto s = chaos::CampaignRunner::churn_campaign_schedule(42, 2);
    const chaos::RunReport r = chaos::CampaignRunner::run_one(s);
    EXPECT_EQ(r.outcome, chaos::Outcome::Recovered);
    EXPECT_GT(r.svc_resubmits, 0u);
    return r.to_json();
  });
}

}  // namespace
}  // namespace yoso
