// The causality observatory (src/obs/dag): happens-before DAG
// reconstruction, the exact counts-reconciliation contract, structural
// invariants under seeded wire-fault/churn schedules, and the critical-path
// analyzer's work/span/forecast guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/json.hpp"
#include "crypto/rand.hpp"
#include "mpc/failure.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"
#include "obs/dag/critpath.hpp"
#include "obs/dag/dag.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/runtime.hpp"
#include "perf/sweep.hpp"

namespace yoso::obs::dag {
namespace {

#ifndef OBS_DISABLED

class DagTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_enabled(true);
    profiler().reset();
  }
};

// ---------------------------------------------------------------------------
// Recorder structure: FlowMatrix-style edge resolution on a hand-driven
// publish script.

TEST_F(DagTest, ResolvesPublishConsumeEdgesLikeFlowMatrix) {
  DagRecorder rec;
  // Dealer posts an input; the setup committee (two roles) consumes it; the
  // offline committee consumes the setup posts; its own post is dropped.
  rec.begin_post("dealer", 0, 0, true);
  rec.end_post("input", 100, true);
  rec.begin_post("setup.cmt", 0, 0, false);
  rec.end_post("pk", 50, true);
  rec.begin_post("setup.cmt", 1, 0, false);
  rec.end_post("pk", 50, true);
  rec.begin_post("off.cmt", 0, 1, false);
  rec.end_post("beaver", 70, false);  // rejected by the board
  rec.finalize();

  std::string err;
  ASSERT_TRUE(rec.validate(&err)) << err;

  // Index nodes by (kind, actor/role) for assertions.
  const auto& nodes = rec.nodes();
  const DagNode* dealer = nullptr;
  const DagNode* input_post = nullptr;
  const DagNode* setup0 = nullptr;
  const DagNode* setup1 = nullptr;
  const DagNode* off0 = nullptr;
  const DagNode* beaver_post = nullptr;
  std::vector<std::uint32_t> pk_posts;
  for (const DagNode& n : nodes) {
    if (n.kind == NodeKind::External) dealer = &n;
    if (n.kind == NodeKind::Post && n.label == "input") input_post = &n;
    if (n.kind == NodeKind::Post && n.label == "pk") pk_posts.push_back(n.id);
    if (n.kind == NodeKind::Post && n.label == "beaver") beaver_post = &n;
    if (n.kind == NodeKind::Role && n.actor == "setup.cmt" && n.role == 0) setup0 = &n;
    if (n.kind == NodeKind::Role && n.actor == "setup.cmt" && n.role == 1) setup1 = &n;
    if (n.kind == NodeKind::Role && n.actor == "off.cmt") off0 = &n;
  }
  ASSERT_NE(dealer, nullptr);
  ASSERT_NE(input_post, nullptr);
  ASSERT_NE(setup0, nullptr);
  ASSERT_NE(setup1, nullptr);
  ASSERT_NE(off0, nullptr);
  ASSERT_NE(beaver_post, nullptr);
  ASSERT_EQ(pk_posts.size(), 2u);

  // The dealer saw an empty board; its post is produced by it alone.
  EXPECT_TRUE(dealer->preds.empty());
  ASSERT_EQ(input_post->preds.size(), 1u);
  EXPECT_EQ(input_post->preds[0], dealer->id);

  // Both setup roles consume the dealer's delivered post.
  EXPECT_EQ(setup0->preds, std::vector<std::uint32_t>{input_post->id});
  EXPECT_EQ(setup1->preds, std::vector<std::uint32_t>{input_post->id});

  // The next committee consumes both pk posts of the previous activation.
  std::vector<std::uint32_t> want = pk_posts;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(off0->preds, want);

  // The dropped post exists (its pipeline work is real) but feeds nobody.
  EXPECT_FALSE(beaver_post->delivered);
  for (const DagNode& n : nodes) {
    for (std::uint32_t p : n.preds) EXPECT_NE(p, beaver_post->id);
  }
}

TEST_F(DagTest, AttributesCountDeltasToTheRightNodes) {
  InstrumentCell task;
  ScopedCell guard(&task);
  DagRecorder rec;
  {
    ScopedOpContext ctx(PhaseCtx::Setup);
    OBS_OP_COUNT_N(FieldMul, 5);
  }
  rec.begin_post("cmt", 0, 0, false);  // the 5 muls belong to the role
  {
    ScopedOpContext ctx(PhaseCtx::Setup);
    OBS_OP_COUNT_N(CodecEncode, 2);
  }
  rec.end_post("msg", 10, true);  // the 2 encodes belong to the post
  {
    ScopedOpContext ctx(PhaseCtx::Online);
    OBS_OP_COUNT_N(FieldInv, 3);
  }
  rec.finalize();  // the 3 inversions land in the residue

  const unsigned setup = static_cast<unsigned>(PhaseCtx::Setup);
  const unsigned online = static_cast<unsigned>(PhaseCtx::Online);
  const DagNode* role = nullptr;
  const DagNode* post = nullptr;
  const DagNode* residue = nullptr;
  for (const DagNode& n : rec.nodes()) {
    if (n.kind == NodeKind::Role) role = &n;
    if (n.kind == NodeKind::Post) post = &n;
    if (n.kind == NodeKind::Residue) residue = &n;
  }
  ASSERT_NE(role, nullptr);
  ASSERT_NE(post, nullptr);
  ASSERT_NE(residue, nullptr);
  EXPECT_EQ(role->counts.v[setup][static_cast<unsigned>(Op::FieldMul)], 5u);
  EXPECT_EQ(post->counts.v[setup][static_cast<unsigned>(Op::CodecEncode)], 2u);
  EXPECT_EQ(residue->counts.v[online][static_cast<unsigned>(Op::FieldInv)], 3u);

  // The reconciliation identity, exactly.
  EXPECT_TRUE(rec.recorded_total() == rec.profiler_delta());
  EXPECT_EQ(rec.recorded_total().total(), 10u);
}

// ---------------------------------------------------------------------------
// Property: over seeded chaos schedules (drops, duplicates, corruption,
// truncation, lateness, silence, churn) the reconstructed DAG always
// validates — no undelivered post ever grows a consumer edge — and the node
// counts still reconcile exactly with the profiler.

TEST_F(DagTest, ChaosSchedulesNeverDangleConsumeEdges) {
  struct Case {
    double drop, dup, flip, trunc, late;
    unsigned silence;
    double churn;
  };
  const Case cases[] = {
      {0, 0, 0, 0, 0, 0, 0},          // clean baseline
      {0.15, 0, 0, 0, 0, 0, 0},       // drops only
      {0, 0.25, 0, 0, 0, 0, 0},       // duplicates only
      {0.1, 0.15, 0.05, 0.05, 0.1, 0, 0},  // everything at once
      {0.05, 0.1, 0, 0, 0, 1, 0.1},   // wire faults + silence + churn
  };
  const unsigned n = 4;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const Case& cs : cases) {
      profiler().reset();
      auto params = ProtocolParams::for_gap(n, 0.25, 128);
      params.validate();
      Circuit c = wide_mul_circuit(8);
      net::NetConfig cfg;
      cfg.faults.drop_prob = cs.drop;
      cfg.faults.seed = seed;
      cfg.wire_faults.duplicate_prob = cs.dup;
      cfg.wire_faults.bitflip_prob = cs.flip;
      cfg.wire_faults.truncate_prob = cs.trunc;
      cfg.wire_faults.late_prob = cs.late;
      cfg.wire_faults.seed = seed + 17;
      cfg.faults.silence_per_committee = cs.silence;
      if (cs.churn > 0) {
        cfg.churn.leave_prob = cs.churn;
        cfg.churn.seed = seed;
      }
      Ledger ledger;
      net::NetBulletin board(ledger, cfg);
      YosoMpc mpc(params, c, AdversaryPlan::honest(n), 7000 + seed, &board);
      Rng rng(seed);
      std::vector<std::vector<mpz_class>> inputs(c.num_clients());
      for (const auto& g : c.gates()) {
        if (g.kind == GateKind::Input) {
          inputs[g.client].push_back(
              mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
        }
      }
      bool completed = true;
      try {
        mpc.run(inputs);
      } catch (const ProtocolAbort&) {
        completed = false;  // aborted runs still yield a valid prefix DAG
      }
      const DagRecorder& rec = board.dag();
      std::string err;
      EXPECT_TRUE(rec.validate(&err))
          << "seed=" << seed << " drop=" << cs.drop << " dup=" << cs.dup
          << " completed=" << completed << ": " << err;
      EXPECT_TRUE(rec.recorded_total() == rec.profiler_delta())
          << "counts drifted at seed=" << seed << " drop=" << cs.drop;
      EXPECT_FALSE(rec.nodes().empty());
      // Spot-check the leaf rule directly, independent of validate().
      for (const DagNode& node : rec.nodes()) {
        for (std::uint32_t p : node.preds) {
          const DagNode& pred = rec.nodes()[p];
          if (pred.kind == NodeKind::Post) {
            EXPECT_TRUE(pred.delivered)
                << "node " << node.id << " consumes undelivered post " << p;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Analyzer: synthetic DAGs with known work/span/forecast values.  Weights
// are driven through a coefficient table pricing exactly one op at 1us, so
// work == count.

CostCoeffs unit_coeffs() {
  CostCoeffs c;
  c.reference = true;
  c.us_per_op[static_cast<unsigned>(Op::FieldMul)] = 1.0;
  return c;
}

DagNode unit_node(std::uint32_t id, std::uint64_t weight, std::vector<std::uint32_t> preds,
                  std::uint8_t phase = 1) {
  DagNode n;
  n.id = id;
  n.kind = NodeKind::Role;
  n.phase = phase;
  n.actor = "synthetic";
  n.counts.v[static_cast<unsigned>(PhaseCtx::Offline)][static_cast<unsigned>(Op::FieldMul)] =
      weight;
  std::sort(preds.begin(), preds.end());
  n.preds = std::move(preds);
  return n;
}

TEST(CritpathTest, ChainHasParallelismOneAndFlatForecast) {
  std::vector<DagNode> nodes;
  for (std::uint32_t i = 0; i < 10; ++i) {
    nodes.push_back(unit_node(i, 1, i == 0 ? std::vector<std::uint32_t>{}
                                           : std::vector<std::uint32_t>{i - 1}));
  }
  const CritReport r = analyze(nodes, unit_coeffs());
  EXPECT_DOUBLE_EQ(r.total.work, 10.0);
  EXPECT_DOUBLE_EQ(r.total.span, 10.0);
  EXPECT_DOUBLE_EQ(r.total.parallelism(), 1.0);
  EXPECT_EQ(r.critical_path.size(), 10u);
  for (const ForecastPoint& f : r.forecast) {
    EXPECT_DOUBLE_EQ(f.makespan, 10.0) << "k=" << f.k;
    EXPECT_DOUBLE_EQ(f.speedup, 1.0) << "k=" << f.k;
  }
}

TEST(CritpathTest, FanOutReachesKnownSpeedups) {
  // root(1) -> 8 parallel children(1 each) -> sink(1): work 10, span 3.
  std::vector<DagNode> nodes;
  nodes.push_back(unit_node(0, 1, {}));
  std::vector<std::uint32_t> mids;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    nodes.push_back(unit_node(i, 1, {0}));
    mids.push_back(i);
  }
  nodes.push_back(unit_node(9, 1, mids));
  const CritReport r = analyze(nodes, unit_coeffs());
  EXPECT_DOUBLE_EQ(r.total.work, 10.0);
  EXPECT_DOUBLE_EQ(r.total.span, 3.0);
  std::map<unsigned, double> makespan;
  for (const ForecastPoint& f : r.forecast) makespan[f.k] = f.makespan;
  // k workers finish the 8-wide middle layer in ceil(8/k) steps.
  EXPECT_DOUBLE_EQ(makespan[1], 10.0);
  EXPECT_DOUBLE_EQ(makespan[2], 6.0);
  EXPECT_DOUBLE_EQ(makespan[4], 4.0);
  EXPECT_DOUBLE_EQ(makespan[8], 3.0);
  EXPECT_DOUBLE_EQ(makespan[16], 3.0);  // span floor: no benefit past width
}

// Random forward DAGs: the forecast contract (monotone, <= k, <= the
// parallelism ceiling, k=1 == work) and schedule validity hold on any
// topology, not just the hand-built ones.
TEST(CritpathTest, RandomDagsSatisfyForecastAndScheduleInvariants) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(900 + seed);
    const std::uint32_t count = 20 + static_cast<std::uint32_t>(rng.u64_below(30));
    std::vector<DagNode> nodes;
    for (std::uint32_t id = 0; id < count; ++id) {
      std::vector<std::uint32_t> preds;
      if (id > 0) {
        const unsigned deg = static_cast<unsigned>(rng.u64_below(3));
        for (unsigned d = 0; d < deg; ++d) {
          const std::uint32_t p = static_cast<std::uint32_t>(rng.u64_below(id));
          if (std::find(preds.begin(), preds.end(), p) == preds.end()) preds.push_back(p);
        }
      }
      nodes.push_back(unit_node(id, 1 + rng.u64_below(20), std::move(preds)));
    }
    const CritReport r = analyze(nodes, unit_coeffs());
    EXPECT_GT(r.total.work, 0.0);
    EXPECT_GE(r.total.work, r.total.span);

    double prev = 0;
    for (const ForecastPoint& f : r.forecast) {
      EXPECT_GE(f.speedup, prev - 1e-9) << "seed=" << seed << " k=" << f.k;
      EXPECT_LE(f.speedup, static_cast<double>(f.k) + 1e-9) << "seed=" << seed;
      EXPECT_LE(f.speedup, r.total.parallelism() + 1e-9) << "seed=" << seed;
      if (f.k == 1) {
        EXPECT_DOUBLE_EQ(f.makespan, r.total.work);
      }
      EXPECT_GE(f.makespan, r.total.span - 1e-9) << "seed=" << seed;
      prev = f.speedup;
    }

    // Schedule validity at k=3: precedence respected, workers sequential.
    std::vector<double> work(nodes.size(), 0);
    for (const DagNode& n : nodes) work[n.id] = node_work_us(n, unit_coeffs());
    const Schedule sched = list_schedule(nodes, work, 3);
    ASSERT_EQ(sched.tasks.size(), nodes.size());
    std::map<std::uint32_t, const ScheduledTask*> by_node;
    std::map<unsigned, std::vector<const ScheduledTask*>> by_worker;
    double max_end = 0;
    for (const ScheduledTask& t : sched.tasks) {
      by_node[t.node] = &t;
      by_worker[t.worker].push_back(&t);
      EXPECT_DOUBLE_EQ(t.end - t.start, work[t.node]);
      if (t.end > max_end) max_end = t.end;
    }
    EXPECT_DOUBLE_EQ(max_end, sched.makespan);
    for (const DagNode& n : nodes) {
      for (std::uint32_t p : n.preds) {
        EXPECT_GE(by_node[n.id]->start, by_node[p]->end - 1e-9)
            << "node " << n.id << " started before pred " << p << " finished";
      }
    }
    for (auto& [worker, tasks] : by_worker) {
      std::sort(tasks.begin(), tasks.end(),
                [](const ScheduledTask* a, const ScheduledTask* b) { return a->start < b->start; });
      for (std::size_t i = 1; i < tasks.size(); ++i) {
        EXPECT_GE(tasks[i]->start, tasks[i - 1]->end - 1e-9)
            << "worker " << worker << " overlaps";
      }
    }
  }
}

// Per-phase decomposition: phase subgraph work sums to the total, and each
// phase span is at most the end-to-end span.
TEST(CritpathTest, PhaseDecompositionIsConsistent) {
  std::vector<DagNode> nodes;
  nodes.push_back(unit_node(0, 4, {}, 0));
  nodes.push_back(unit_node(1, 6, {0}, 1));
  nodes.push_back(unit_node(2, 2, {0}, 1));
  nodes.push_back(unit_node(3, 5, {1, 2}, 2));
  const CritReport r = analyze(nodes, unit_coeffs());
  EXPECT_DOUBLE_EQ(r.phases[0].work + r.phases[1].work + r.phases[2].work, r.total.work);
  EXPECT_DOUBLE_EQ(r.phases[0].work, 4.0);
  EXPECT_DOUBLE_EQ(r.phases[1].work, 8.0);
  EXPECT_DOUBLE_EQ(r.phases[1].span, 6.0);  // 2 and 3 are parallel
  EXPECT_DOUBLE_EQ(r.phases[2].work, 5.0);
  for (const PhaseCrit& p : r.phases) EXPECT_LE(p.span, r.total.span);
  EXPECT_DOUBLE_EQ(r.total.span, 15.0);  // 1 -> 2 -> 4
}

// ---------------------------------------------------------------------------
// End-to-end determinism: two same-seed protocol runs produce byte-identical
// DAG reports, analyses, and Perfetto exports — enabled or muted.

std::string run_and_analyze(bool enable_obs, std::string* perfetto = nullptr) {
  set_enabled(enable_obs);
  profiler().reset();
  const unsigned n = 4;
  auto params = ProtocolParams::for_gap(n, 0.25, 128);
  params.validate();
  Circuit c = wide_mul_circuit(8);
  Ledger ledger;
  net::NetBulletin board(ledger, net::NetConfig{});
  YosoMpc mpc(params, c, AdversaryPlan::honest(n), 4242, &board);
  Rng rng(5);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  mpc.run(inputs);
  const DagRecorder& rec = board.dag();
  const CritReport r = analyze(rec.nodes(), CostCoeffs::reference_table());
  if (perfetto != nullptr) {
    *perfetto = critpath_perfetto_json(rec.nodes(), CostCoeffs::reference_table(), 4);
  }
  set_enabled(true);
  return rec.report_json() + "\n" + crit_report_json(r);
}

TEST_F(DagTest, SameSeedRunsYieldByteIdenticalAnalysis) {
  std::string perfetto_a;
  std::string perfetto_b;
  const std::string a = run_and_analyze(true, &perfetto_a);
  const std::string b = run_and_analyze(true, &perfetto_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(perfetto_a, perfetto_b);
  // The muted run reconstructs the same DAG and prices it identically:
  // counts are unconditional, and the reference table needs no timings.
  const std::string muted = run_and_analyze(false);
  EXPECT_EQ(a, muted);
}

TEST_F(DagTest, PerfettoExportValidatesAsChromeTrace) {
  std::string perfetto;
  run_and_analyze(true, &perfetto);
  std::string err;
  EXPECT_TRUE(validate_trace_json(perfetto, &err)) << err;
}

#else  // OBS_DISABLED: recorder and analyzer compile to stubs.

TEST(DagTest, DisabledStubsCompile) {
  DagRecorder rec;
  rec.begin_post("cmt", 0, 0, false);
  rec.end_post("msg", 10, true);
  rec.finalize();
  EXPECT_TRUE(rec.validate());
  EXPECT_EQ(rec.report_json(), "{}");
  EXPECT_EQ(rec.edge_count(), 0u);
}

#endif

}  // namespace
}  // namespace yoso::obs::dag
