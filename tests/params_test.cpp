// Tests for the parameter derivation: key-class sizing, bound
// monotonicity, and consistency with the threshold scheme's actual share
// growth (the holder budget must dominate reality).
#include <gtest/gtest.h>

#include "mpc/params.hpp"
#include "nizk/link_proof.hpp"
#include "paillier/threshold.hpp"

namespace yoso {
namespace {

TEST(Params, ExponentForCoversPlainBits) {
  ProtocolParams p = ProtocolParams::for_gap(8, 0.2, 192);
  for (unsigned bits : {100u, 191u, 192u, 500u, 2000u}) {
    unsigned s = p.exponent_for(bits);
    EXPECT_GE(s * (p.paillier_bits - 1), bits);
    if (s > 1) {
      EXPECT_LT((s - 1) * (p.paillier_bits - 1), bits);
    }
  }
}

TEST(Params, PadBoundsChain) {
  ProtocolParams p = ProtocolParams::for_gap(8, 0.2, 192);
  EXPECT_GT(p.pad_sum_bound_bits(), p.pad_bound_bits());
  EXPECT_GT(p.pint_bound_bits(), p.pad_sum_bound_bits());
  EXPECT_GE(p.kff_plain_bits(), p.pint_bound_bits());
  EXPECT_GT(p.role_plain_bits(), p.pad_bound_bits() + kKappa + kStat);
}

TEST(Params, HolderBudgetDominatesActualShareGrowth) {
  // Replay real resharings and check every actual subshare stays within
  // the planned holder plaintext budget.
  ProtocolParams p = ProtocolParams::for_gap(5, 0.2, 128);
  p.planned_epochs = 3;
  Rng rng(7201);
  ThresholdKeys keys = tkgen(p.paillier_bits, p.s, p.n, p.t, rng);
  ThresholdPK tpk = keys.tpk;
  std::vector<ThresholdKeyShare> shares = keys.shares;
  unsigned max_subshare_bits = 0;
  for (unsigned epoch = 0; epoch < p.planned_epochs; ++epoch) {
    std::vector<unsigned> from{1, 2};
    std::vector<ReshareMsg> msgs;
    for (unsigned i : from) msgs.push_back(tkres(tpk, shares[i - 1], rng));
    for (const auto& m : msgs) {
      for (const auto& s : m.subshares) {
        max_subshare_bits = std::max(
            max_subshare_bits,
            static_cast<unsigned>(mpz_sizeinbase(s.declassify().get_mpz_t(), 2)));
      }
    }
    ThresholdPK next = next_epoch_pk(tpk, from, msgs);
    std::vector<ThresholdKeyShare> next_shares(p.n);
    for (unsigned j = 1; j <= p.n; ++j) {
      std::vector<SecretMpz> subs;
      for (const auto& m : msgs) subs.push_back(m.subshares[j - 1]);
      next_shares[j - 1] = tkrec(tpk, j, from, subs);
    }
    tpk = next;
    shares = next_shares;
  }
  EXPECT_LE(max_subshare_bits + kKappa + kStat, p.holder_plain_bits());
}

TEST(Params, BoundsGrowWithPlannedEpochs) {
  ProtocolParams a = ProtocolParams::for_gap(8, 0.2, 192);
  ProtocolParams b = a;
  a.planned_epochs = 2;
  b.planned_epochs = 10;
  EXPECT_LT(a.holder_plain_bits(), b.holder_plain_bits());
}

TEST(Params, ReconThresholdFormula) {
  ProtocolParams p = ProtocolParams::for_gap(16, 0.25, 192);
  EXPECT_EQ(p.recon_threshold(), p.t + 2 * (p.k - 1) + 1);
  EXPECT_EQ(p.packed_degree(), p.t + p.k - 1);
}

TEST(Params, ForGapMaximizesPacking) {
  // k - 1 must be the largest value <= n*eps compatible with GOD.
  for (unsigned n : {8u, 16u, 24u}) {
    auto p = ProtocolParams::for_gap(n, 0.25, 192);
    // One more slot would break the reconstruction bound or exceed n*eps.
    ProtocolParams bigger = p;
    bigger.k += 1;
    bool breaks_god = bigger.recon_threshold() > bigger.n - bigger.t;
    bool exceeds_gap = (bigger.k - 1) > n * 0.25 + 1e-9;
    EXPECT_TRUE(breaks_god || exceeds_gap) << "n=" << n;
  }
}

TEST(Params, DescribeMentionsKeyFields) {
  auto p = ProtocolParams::for_gap(8, 0.2, 192, true);
  auto d = p.describe();
  EXPECT_NE(d.find("n=8"), std::string::npos);
  EXPECT_NE(d.find("fail-stop"), std::string::npos);
}

TEST(Params, TinyGapDegeneratesToKOne) {
  auto p = ProtocolParams::for_gap(8, 0.01, 192);
  EXPECT_EQ(p.k, 1u);
  EXPECT_EQ(p.t, 3u);  // floor(8 * 0.49) = 3
}

}  // namespace
}  // namespace yoso
