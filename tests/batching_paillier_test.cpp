#include <gtest/gtest.h>

#include "crypto/rand.hpp"
#include "paillier/batching.hpp"
#include "paillier/paillier.hpp"

namespace yoso {
namespace {

TEST(PlaintextBatcher, PackUnpackRoundTrip) {
  PlaintextBatcher b(16, 8);
  std::vector<mpz_class> vals{0, 1, 65535, 42};
  EXPECT_EQ(b.unpack(b.pack(vals), 4), vals);
}

TEST(PlaintextBatcher, RejectsOutOfRange) {
  PlaintextBatcher b(8, 4);
  EXPECT_THROW(b.pack({mpz_class(256)}), std::invalid_argument);
  EXPECT_THROW(b.pack({mpz_class(-1)}), std::invalid_argument);
}

TEST(PlaintextBatcher, CapacityMatchesLimbs) {
  PlaintextBatcher b(16, 16);
  EXPECT_EQ(b.limb_bits(), 32u);
  EXPECT_EQ(b.capacity(256), 8u);
  EXPECT_EQ(b.capacity(31), 0u);
}

TEST(PlaintextBatcher, HomomorphicAdditionPerLimb) {
  Rng rng(8301);
  PaillierSK sk = paillier_keygen(192, 1, rng, false);
  PlaintextBatcher b(16, 16);  // up to 2^16 additions safe
  unsigned cap = b.capacity(190);
  ASSERT_GE(cap, 4u);

  std::vector<mpz_class> x{10, 20, 30, 40}, y{1, 2, 3, 4};
  x.resize(cap, 0);
  y.resize(cap, 0);
  mpz_class cx = sk.pk.enc(b.pack(x), rng);
  mpz_class cy = sk.pk.enc(b.pack(y), rng);
  auto sums = b.unpack(sk.dec(sk.pk.add(cx, cy)), cap);
  EXPECT_EQ(sums[0], 11);
  EXPECT_EQ(sums[1], 22);
  EXPECT_EQ(sums[2], 33);
  EXPECT_EQ(sums[3], 44);
}

TEST(PlaintextBatcher, ScalarMultiplicationPerLimb) {
  Rng rng(8302);
  PaillierSK sk = paillier_keygen(192, 1, rng, false);
  PlaintextBatcher b(16, 16);
  std::vector<mpz_class> x{7, 9};
  x.resize(b.capacity(190), 0);
  mpz_class c = sk.pk.scal(sk.pk.enc(b.pack(x), rng), mpz_class(5));
  auto out = b.unpack(sk.dec(c), 2);
  EXPECT_EQ(out[0], 35);
  EXPECT_EQ(out[1], 45);
}

TEST(PlaintextBatcher, ManyAdditionsStayWithinSlack) {
  Rng rng(8303);
  PaillierSK sk = paillier_keygen(192, 1, rng, false);
  PlaintextBatcher b(8, 12);  // values < 256, up to 4096 additions
  unsigned cap = b.capacity(190);
  mpz_class acc = sk.pk.enc(mpz_class(0), rng);
  const int adds = 100;
  for (int i = 0; i < adds; ++i) {
    std::vector<mpz_class> v(cap, mpz_class(255));
    acc = sk.pk.add(acc, sk.pk.enc(b.pack(v), rng));
  }
  auto out = b.unpack(sk.dec(acc), cap);
  for (const auto& o : out) EXPECT_EQ(o, 255 * adds);
}

TEST(PlaintextBatcher, ByteAmortizationIsReal) {
  // One batched ciphertext replaces `cap` singleton ciphertexts.
  Rng rng(8304);
  PaillierSK sk = paillier_keygen(256, 1, rng, false);
  PlaintextBatcher b(16, 16);
  unsigned cap = b.capacity(254);
  ASSERT_GE(cap, 7u);
  std::size_t singleton_bytes = cap * sk.pk.ciphertext_bytes();
  std::size_t batched_bytes = sk.pk.ciphertext_bytes();
  EXPECT_GE(singleton_bytes, 7 * batched_bytes);
}

}  // namespace
}  // namespace yoso
