// Tests for the discrete-event network subsystem (src/net): event-loop
// determinism, link/transport math, and the NetBulletin acceptance
// criteria — the full protocol on a simulated network must produce the
// exact outputs and ledger byte totals of the passive board while
// additionally reporting virtual wall-clock per phase, and the fault
// injection hook must reproduce the fail-stop packing trade-off.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/cdn.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"

namespace yoso {
namespace {

using net::EventLoop;
using net::FaultPlan;
using net::LinkModel;
using net::NetBulletin;
using net::NetConfig;
using net::Topology;
using net::Transport;

constexpr unsigned kBits = 192;

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  return inputs;
}

// --- EventLoop --------------------------------------------------------------

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(3.0, [&] { order.push_back(3); });
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_at(2.0, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
  EXPECT_EQ(loop.processed(), 3u);
}

TEST(EventLoop, TiesBreakInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    loop.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, HandlersMayScheduleMoreWork) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1.0, [&] {
    ++fired;
    loop.schedule_in(0.5, [&] { ++fired; });
  });
  loop.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(loop.now(), 1.5);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.schedule_at(2.0, [] {});
  loop.run();
  double fired_at = -1;
  loop.schedule_at(1.0, [&] { fired_at = loop.now(); });  // in the past
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);  // never travels back in time
}

// --- LinkModel --------------------------------------------------------------

TEST(LinkModel, FragmentationMath) {
  LinkModel lan = LinkModel::lan();
  EXPECT_EQ(lan.frames_for(0), 1u);
  EXPECT_EQ(lan.frames_for(1), 1u);
  EXPECT_EQ(lan.frames_for(1500), 1u);
  EXPECT_EQ(lan.frames_for(1501), 2u);
  EXPECT_EQ(lan.wire_bytes(3000), 3000u + 2u * 66u);
  // 1 Gbps: 1 byte = 8 ns; one full frame ~ 12.5 us.
  EXPECT_NEAR(lan.transmit_seconds(1500 - 66), 1500.0 * 8.0 / 1e9, 1e-12);
}

TEST(LinkModel, PresetsAreOrderedBySpeed) {
  LinkModel lan = LinkModel::lan(), wan = LinkModel::wan(), bb = LinkModel::blockchain_bb();
  EXPECT_LT(lan.latency_s, wan.latency_s);
  EXPECT_LT(wan.latency_s, bb.latency_s);
  EXPECT_GT(lan.bandwidth_bps, wan.bandwidth_bps);
  EXPECT_GT(wan.bandwidth_bps, bb.bandwidth_bps);
  const std::size_t mb = 1 << 20;
  EXPECT_LT(lan.transmit_seconds(mb), wan.transmit_seconds(mb));
  EXPECT_LT(wan.transmit_seconds(mb), bb.transmit_seconds(mb));
}

// --- Transport --------------------------------------------------------------

TEST(TransportTest, SingleBroadcastTiming) {
  EventLoop loop;
  Transport tr(loop, LinkModel::wan(), Topology::StarViaBoard, /*observers=*/4);
  ASSERT_TRUE(tr.broadcast("alice", 1000, 0.0));
  double done = tr.run();
  // upload + hop to board + download + hop to observer.
  const double tx = tr.link().transmit_seconds(1000);
  EXPECT_NEAR(done, 2 * tx + 2 * tr.link().latency_s, 1e-9);
  EXPECT_EQ(tr.stats().delivered, 4u);
  EXPECT_EQ(tr.stats().senders.at("alice").messages, 1u);
}

TEST(TransportTest, UplinkSerializesAndMeasuresQueueing) {
  EventLoop loop;
  Transport tr(loop, LinkModel::wan(), Topology::StarViaBoard, 1);
  tr.broadcast("alice", 100000, 0.0);
  tr.broadcast("alice", 100000, 0.0);  // must wait for the first upload
  tr.run();
  const auto& s = tr.stats().senders.at("alice");
  const double tx = tr.link().transmit_seconds(100000);
  EXPECT_NEAR(s.queue_seconds, tx, 1e-9);
  EXPECT_NEAR(s.busy_seconds, 2 * tx, 1e-9);
}

TEST(TransportTest, ParallelSendersOverlapButDownlinkSerializes) {
  EventLoop loop;
  Transport tr(loop, LinkModel::wan(), Topology::StarViaBoard, 2);
  tr.broadcast("alice", 50000, 0.0);
  tr.broadcast("bob", 50000, 0.0);
  double done = tr.run();
  const double tx = tr.link().transmit_seconds(50000);
  // Uploads overlap (distinct uplinks); each observer downloads both copies
  // back-to-back through its one access link.
  EXPECT_NEAR(done, tx + 2 * tr.link().latency_s + 2 * tx, 1e-9);
  EXPECT_GT(tr.stats().downlink_queue_seconds, 0.0);
}

TEST(TransportTest, MeshUploadScalesWithAudience) {
  EventLoop loop_star, loop_mesh;
  Transport star(loop_star, LinkModel::wan(), Topology::StarViaBoard, 8);
  Transport mesh(loop_mesh, LinkModel::wan(), Topology::UniformMesh, 8);
  star.broadcast("alice", 10000, 0.0);
  mesh.broadcast("alice", 10000, 0.0);
  star.run();
  mesh.run();
  EXPECT_EQ(mesh.stats().senders.at("alice").wire_bytes,
            8u * star.stats().senders.at("alice").wire_bytes);
  EXPECT_NEAR(mesh.stats().senders.at("alice").busy_seconds,
              8 * star.stats().senders.at("alice").busy_seconds, 1e-9);
}

TEST(TransportTest, DropsAreDeterministic) {
  FaultPlan faults;
  faults.drop_prob = 0.5;
  faults.seed = 99;
  auto run_once = [&] {
    EventLoop loop;
    Transport tr(loop, LinkModel::lan(), Topology::StarViaBoard, 2, faults);
    std::vector<bool> sent;
    for (int i = 0; i < 32; ++i) sent.push_back(tr.broadcast("alice", 100, 0.0));
    tr.run();
    return sent;
  };
  auto a = run_once(), b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 32);  // some drops at p=0.5
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);   // but not all
}

// --- Bulletin one-shot enforcement ------------------------------------------

TEST(BulletinWindow, RoleDoubleSpeakRejectedOnDefaultPath) {
  Ledger ledger;
  Bulletin board(ledger);
  Rng rng(42);
  auto corr = AdversaryPlan::honest(3).committee(0);
  Committee com = make_committee("win.a", 128, 1, corr, rng);
  // Default path (no explicit speak, first_post_of_role defaulted): the
  // board itself marks the role spoken...
  board.publish(com, 0, Phase::Setup, "x", 10, 1);
  EXPECT_TRUE(com.has_spoken(0));
  // ...and an explicit first-post claim for the same role now throws.
  EXPECT_THROW(board.publish(com, 0, Phase::Setup, "x", 10, 1, /*first_post_of_role=*/true),
               std::logic_error);
}

TEST(BulletinWindow, CommitteeReactivationRejected) {
  Ledger ledger;
  Bulletin board(ledger);
  Rng rng(43);
  auto corr = AdversaryPlan::honest(3).committee(0);
  Committee a = make_committee("win.a", 128, 1, corr, rng);
  Committee b = make_committee("win.b", 128, 1, corr, rng);
  board.publish(a, 0, Phase::Setup, "x", 10, 1);
  board.publish(a, 1, Phase::Setup, "x", 10, 1);  // same window: fine
  board.publish(b, 0, Phase::Setup, "y", 10, 1);  // closes a's window
  EXPECT_THROW(board.publish(a, 2, Phase::Setup, "x", 10, 1), std::logic_error);
  // External posts are not one-shot roles and close no windows.
  board.publish_external("client0", Phase::Online, "in", 5, 1);
  board.publish(b, 1, Phase::Setup, "y", 10, 1);
}

// --- NetBulletin end-to-end acceptance --------------------------------------

struct NetRun {
  OnlineResult result;
  LedgerEntry total;
  double elapsed = 0;
  double online_s = 0;
  double offline_s = 0;
};

NetRun run_on_net(const LinkModel& link, std::uint64_t seed) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(3);
  auto inputs = make_inputs(c, seed);
  Ledger ledger;
  NetConfig cfg;
  cfg.link = link;
  NetBulletin board(ledger, cfg);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), seed, &board);
  NetRun r;
  r.result = mpc.run(inputs);
  board.flush();
  r.total = mpc.ledger().total();
  r.elapsed = board.elapsed();
  r.online_s = board.phase_traffic(Phase::Online).seconds;
  r.offline_s = board.phase_traffic(Phase::Offline).seconds;
  EXPECT_EQ(board.decode_failures(), 0u);
  EXPECT_FALSE(board.stats().senders.empty());
  return r;
}

TEST(NetBulletinTest, ProtocolMatchesPassiveBoardExactly) {
  const std::uint64_t seed = 5001;
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(3);
  auto inputs = make_inputs(c, seed);

  YosoMpc passive(params, c, AdversaryPlan::honest(params.n), seed);
  auto passive_res = passive.run(inputs);

  NetRun lan = run_on_net(LinkModel::lan(), seed);

  // Identical protocol outputs and identical ledger byte totals: the
  // network layer observes the execution, it must not perturb it.
  EXPECT_EQ(lan.result.outputs, passive_res.outputs);
  EXPECT_EQ(lan.total.bytes, passive.ledger().total().bytes);
  EXPECT_EQ(lan.total.messages, passive.ledger().total().messages);
  EXPECT_EQ(lan.total.elements, passive.ledger().total().elements);
  EXPECT_EQ(lan.result.outputs, c.eval(inputs, passive.plaintext_modulus()));

  // ...while reporting real virtual time per phase.
  EXPECT_GT(lan.online_s, 0.0);
  EXPECT_GT(lan.offline_s, 0.0);
  EXPECT_GE(lan.elapsed, lan.online_s + lan.offline_s);
}

TEST(NetBulletinTest, WanIsSlowerThanLanSameBytes) {
  NetRun lan = run_on_net(LinkModel::lan(), 5002);
  NetRun wan = run_on_net(LinkModel::wan(), 5002);
  EXPECT_EQ(lan.result.outputs, wan.result.outputs);
  EXPECT_EQ(lan.total.bytes, wan.total.bytes);
  EXPECT_GT(wan.elapsed, lan.elapsed);
  EXPECT_GT(wan.online_s, lan.online_s);
}

TEST(NetBulletinTest, ReportJsonMentionsEveryPhase) {
  Ledger ledger;
  NetBulletin board(ledger, NetConfig{});
  auto json = board.report_json();
  for (const char* key : {"\"link\"", "\"setup\"", "\"offline\"", "\"online\"",
                          "\"delivered\"", "\"decode_failures\"", "\"ledger\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }
}

TEST(NetBulletinTest, CdnBaselineRunsOnNetToo) {
  const std::uint64_t seed = 5003;
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  auto inputs = make_inputs(c, seed);

  CdnBaseline passive(params, c, AdversaryPlan::honest(params.n), seed);
  auto passive_res = passive.run(inputs);

  Ledger ledger;
  NetBulletin board(ledger, NetConfig{});
  CdnBaseline cdn(params, c, AdversaryPlan::honest(params.n), seed, &board);
  auto net_res = cdn.run(inputs);
  board.flush();

  EXPECT_EQ(net_res.outputs, passive_res.outputs);
  EXPECT_EQ(cdn.ledger().total().bytes, passive.ledger().total().bytes);
  EXPECT_GT(board.elapsed(), 0.0);
}

// --- Fault injection: the Section 5.4 packing trade-off ---------------------

TEST(NetFaultInjection, HalvedPackingSurvivesSilencedParties) {
  const unsigned n = 8;
  const double eps = 0.25;
  const std::uint64_t seed = 6001;
  Circuit c = wide_mul_circuit(4);
  auto inputs = make_inputs(c, seed);
  const unsigned silenced = static_cast<unsigned>(n * eps);  // floor(n*eps) = 2

  NetConfig cfg;
  cfg.faults.silence_per_committee = silenced;

  // Halved packing (failstop_mode): completes with correct outputs even
  // though every committee loses `silenced` honest parties to dead links
  // (on top of t actively malicious roles).
  auto half = ProtocolParams::for_gap(n, eps, 128, /*failstop_mode=*/true);
  {
    Ledger ledger;
    NetBulletin board(ledger, cfg);
    YosoMpc mpc(half, c,
                AdversaryPlan::fixed(n, half.t, 0, MaliciousStrategy::BadShare), seed, &board);
    auto res = mpc.run(inputs);
    board.flush();
    EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus()));
    EXPECT_GT(board.roles_silenced(), 0u);
    EXPECT_GT(board.elapsed(), 0.0);
  }

  // Full packing: the same outage leaves fewer than t+2(k-1)+1 verified
  // shares — no output delivery.
  auto full = ProtocolParams::for_gap(n, eps, 128, /*failstop_mode=*/false);
  {
    Ledger ledger;
    NetBulletin board(ledger, cfg);
    YosoMpc mpc(full, c,
                AdversaryPlan::fixed(n, full.t, 0, MaliciousStrategy::BadShare), seed, &board);
    EXPECT_THROW(mpc.run(inputs), ProtocolAbort);
  }
}

// --- Post accounting: the conservation law ----------------------------------

TEST(NetFaultInjection, PostLedgerConservesUnderWireFaults) {
  // Drive the full protocol through link drops plus every wire-fault class
  // and check the board's books balance per phase:
  //   originated == delivered + dropped_link + corrupt + truncated + late
  //                 + duplicate
  // whether or not the protocol survives the losses.
  const std::uint64_t seed = 6101;
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  auto inputs = make_inputs(c, seed);

  NetConfig cfg;
  cfg.faults.drop_prob = 0.05;
  cfg.faults.seed = seed;
  cfg.wire_faults.bitflip_prob = 0.1;
  cfg.wire_faults.truncate_prob = 0.1;
  cfg.wire_faults.duplicate_prob = 0.1;
  cfg.wire_faults.late_prob = 0.1;
  cfg.wire_faults.late_delay_s = 0.5;
  cfg.wire_faults.seed = seed + 1;

  Ledger ledger;
  NetBulletin board(ledger, cfg);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), seed, &board);
  bool aborted = false;
  try {
    mpc.run(inputs);
  } catch (const ProtocolAbort& e) {
    aborted = true;  // losses may exceed the thresholds; must still balance
    EXPECT_TRUE(e.report().has_value()) << e.what();
  }
  board.flush();

  std::size_t dropped = 0;
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    const net::PhasePosts& pp = board.phase_posts(p);
    EXPECT_TRUE(pp.conserved())
        << phase_name(p) << ": originated=" << pp.originated << " delivered=" << pp.delivered
        << " dropped=" << pp.dropped();
    dropped += pp.dropped();
  }
  const net::PhasePosts total = board.total_posts();
  EXPECT_TRUE(total.conserved());
  EXPECT_GT(total.originated, 0u);
  EXPECT_GT(dropped, 0u);  // the fault plan actually fired
  EXPECT_GT(total.delivered, 0u);
  // Mutated payloads were probed through the codec and tallied separately
  // from honest decode checking (which must stay clean).
  EXPECT_GT(board.fuzz_rejected() + board.fuzz_decoded(), 0u);
  EXPECT_EQ(board.decode_failures(), 0u);
  (void)aborted;
}

TEST(NetFaultInjection, GraceWindowAdmitsLatePosts) {
  const std::uint64_t seed = 6102;
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  auto inputs = make_inputs(c, seed);

  NetConfig cfg;
  cfg.wire_faults.late_prob = 1.0;  // every committee post misses its window
  cfg.wire_faults.late_delay_s = 0.5;
  cfg.wire_faults.seed = seed;

  {
    // No grace: every post is late, so the first threshold gate starves.
    Ledger ledger;
    NetBulletin board(ledger, cfg);
    YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), seed, &board);
    EXPECT_THROW(mpc.run(inputs), ProtocolAbort);
    board.flush();
    EXPECT_GT(board.total_posts().late, 0u);
    EXPECT_EQ(board.total_posts().late_graced, 0u);
  }
  {
    // Grace covering the delay: the same posts count, the run completes
    // with correct outputs, and the books record them as late-but-graced.
    NetConfig graced = cfg;
    graced.grace_window_s = 1.0;
    Ledger ledger;
    NetBulletin board(ledger, graced);
    YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), seed, &board);
    auto res = mpc.run(inputs);
    board.flush();
    EXPECT_EQ(res.outputs, c.eval(inputs, mpc.plaintext_modulus()));
    const net::PhasePosts total = board.total_posts();
    EXPECT_EQ(total.late, 0u);
    EXPECT_GT(total.late_graced, 0u);
    EXPECT_EQ(total.originated, total.delivered);
    EXPECT_TRUE(total.conserved());
  }
}

TEST(NetBulletinTest, ReportJsonIncludesPostAccounting) {
  Ledger ledger;
  NetBulletin board(ledger, NetConfig{});
  auto json = board.report_json();
  for (const char* key :
       {"\"posts\"", "\"originated\"", "\"dropped_link\"", "\"corrupt\"", "\"truncated\"",
        "\"late\"", "\"duplicate\"", "\"late_graced\"", "\"posts_originated\"",
        "\"posts_delivered\"", "\"posts_dropped\"", "\"fuzz_rejected\"", "\"fuzz_decoded\"",
        "\"roles_silenced\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }
}

}  // namespace
}  // namespace yoso
