#include <gtest/gtest.h>

#include "crypto/rand.hpp"
#include "paillier/threshold.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

class ThresholdTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(2001);
    keys_ = new ThresholdKeys(tkgen(kBits, 1, /*n=*/7, /*t=*/3, *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }
  static Rng* rng_;
  static ThresholdKeys* keys_;
};

Rng* ThresholdTest::rng_ = nullptr;
ThresholdKeys* ThresholdTest::keys_ = nullptr;

TEST_F(ThresholdTest, ThresholdDecryptionRoundTrip) {
  const auto& tpk = keys_->tpk;
  mpz_class m = rng_->below(tpk.pk.ns);
  mpz_class c = tpk.pk.enc(m, *rng_);
  std::vector<unsigned> idx{1, 2, 3, 4};
  std::vector<mpz_class> partials;
  for (unsigned i : idx) partials.push_back(tpdec(tpk, keys_->shares[i - 1], c));
  EXPECT_EQ(tdec(tpk, idx, partials), m);
}

TEST_F(ThresholdTest, AnyQualifiedSubsetDecrypts) {
  const auto& tpk = keys_->tpk;
  mpz_class m = 424242;
  mpz_class c = tpk.pk.enc(m, *rng_);
  for (const auto& idx : std::vector<std::vector<unsigned>>{{4, 5, 6, 7}, {1, 3, 5, 7}, {2, 3, 4, 6}}) {
    std::vector<mpz_class> partials;
    for (unsigned i : idx) partials.push_back(tpdec(tpk, keys_->shares[i - 1], c));
    EXPECT_EQ(tdec(tpk, idx, partials), m);
  }
}

TEST_F(ThresholdTest, MoreThanThresholdAlsoWorks) {
  const auto& tpk = keys_->tpk;
  mpz_class m = 99;
  mpz_class c = tpk.pk.enc(m, *rng_);
  std::vector<unsigned> idx{1, 2, 3, 4, 5, 6, 7};
  std::vector<mpz_class> partials;
  for (unsigned i : idx) partials.push_back(tpdec(tpk, keys_->shares[i - 1], c));
  EXPECT_EQ(tdec(tpk, idx, partials), m);
}

TEST_F(ThresholdTest, TooFewPartialsThrows) {
  const auto& tpk = keys_->tpk;
  mpz_class c = tpk.pk.enc(mpz_class(1), *rng_);
  std::vector<unsigned> idx{1, 2, 3};
  std::vector<mpz_class> partials;
  for (unsigned i : idx) partials.push_back(tpdec(tpk, keys_->shares[i - 1], c));
  EXPECT_THROW(tdec(tpk, idx, partials), std::invalid_argument);
}

TEST_F(ThresholdTest, DecryptionAfterHomomorphicEval) {
  const auto& tpk = keys_->tpk;
  mpz_class a = 1000, b = 2345;
  mpz_class c = tpk.pk.add(tpk.pk.enc(a, *rng_), tpk.pk.scal(tpk.pk.enc(b, *rng_), mpz_class(3)));
  std::vector<unsigned> idx{2, 4, 6, 7};
  std::vector<mpz_class> partials;
  for (unsigned i : idx) partials.push_back(tpdec(tpk, keys_->shares[i - 1], c));
  EXPECT_EQ(tdec(tpk, idx, partials), a + 3 * b);
}

TEST_F(ThresholdTest, VerificationKeysMatchShares) {
  const auto& tpk = keys_->tpk;
  for (const auto& sh : keys_->shares) {
    mpz_class expected;
    mpz_powm(expected.get_mpz_t(), tpk.v.get_mpz_t(), sh.d_i.declassify().get_mpz_t(),
             tpk.pk.ns1.get_mpz_t());
    EXPECT_EQ(tpk.vks[sh.index - 1], expected);
  }
}

TEST_F(ThresholdTest, ReshareRoundTripOneEpoch) {
  const auto& tpk = keys_->tpk;
  // Resharers: a qualified set of 4 parties.
  std::vector<unsigned> from{1, 2, 5, 7};
  std::vector<ReshareMsg> msgs;
  for (unsigned i : from) msgs.push_back(tkres(tpk, keys_->shares[i - 1], *rng_));
  for (const auto& m : msgs) EXPECT_TRUE(verify_reshare(tpk, m));

  ThresholdPK tpk2 = next_epoch_pk(tpk, from, msgs);
  EXPECT_EQ(tpk2.scale, tpk.scale * tpk.delta);

  // Each new-committee member assembles its share.
  std::vector<ThresholdKeyShare> new_shares(tpk.n);
  for (unsigned j = 1; j <= tpk.n; ++j) {
    std::vector<SecretMpz> subs;
    for (const auto& m : msgs) subs.push_back(m.subshares[j - 1]);
    new_shares[j - 1] = tkrec(tpk, j, from, subs);
  }

  // New epoch decrypts correctly.
  mpz_class m = 31337;
  mpz_class c = tpk2.pk.enc(m, *rng_);
  std::vector<unsigned> idx{1, 3, 4, 6};
  std::vector<mpz_class> partials;
  for (unsigned i : idx) partials.push_back(tpdec(tpk2, new_shares[i - 1], c));
  EXPECT_EQ(tdec(tpk2, idx, partials), m);

  // New verification keys are consistent with the new shares.
  for (const auto& sh : new_shares) {
    mpz_class expected;
    mpz_powm(expected.get_mpz_t(), tpk2.v.get_mpz_t(), sh.d_i.declassify().get_mpz_t(),
             tpk2.pk.ns1.get_mpz_t());
    EXPECT_EQ(tpk2.vks[sh.index - 1], expected);
  }
}

TEST_F(ThresholdTest, TwoEpochsOfResharing) {
  ThresholdPK tpk = keys_->tpk;
  std::vector<ThresholdKeyShare> shares = keys_->shares;
  for (int epoch = 0; epoch < 2; ++epoch) {
    std::vector<unsigned> from{1, 2, 3, 4};
    std::vector<ReshareMsg> msgs;
    for (unsigned i : from) msgs.push_back(tkres(tpk, shares[i - 1], *rng_));
    ThresholdPK tpk_next = next_epoch_pk(tpk, from, msgs);
    std::vector<ThresholdKeyShare> next(tpk.n);
    for (unsigned j = 1; j <= tpk.n; ++j) {
      std::vector<SecretMpz> subs;
      for (const auto& m : msgs) subs.push_back(m.subshares[j - 1]);
      next[j - 1] = tkrec(tpk, j, from, subs);
    }
    tpk = tpk_next;
    shares = next;
  }
  mpz_class m = 777;
  mpz_class c = tpk.pk.enc(m, *rng_);
  std::vector<unsigned> idx{3, 5, 6, 7};
  std::vector<mpz_class> partials;
  for (unsigned i : idx) partials.push_back(tpdec(tpk, shares[i - 1], c));
  EXPECT_EQ(tdec(tpk, idx, partials), m);
}

TEST_F(ThresholdTest, VerifyReshareRejectsTamperedSubshare) {
  const auto& tpk = keys_->tpk;
  ReshareMsg msg = tkres(tpk, keys_->shares[0], *rng_);
  msg.subshares[2] = msg.subshares[2] + 1;
  EXPECT_FALSE(verify_reshare(tpk, msg));
}

TEST_F(ThresholdTest, VerifyReshareRejectsWrongConstantTerm) {
  const auto& tpk = keys_->tpk;
  // Reshare a *different* value than the registered share: commitment[0]
  // will not match the verification key.
  ThresholdKeyShare fake = keys_->shares[0];
  fake.d_i = fake.d_i + 1;
  ReshareMsg msg = tkres(tpk, fake, *rng_);
  EXPECT_FALSE(verify_reshare(tpk, msg));
}

TEST_F(ThresholdTest, VerifyReshareRejectsMalformedSizes) {
  const auto& tpk = keys_->tpk;
  ReshareMsg msg = tkres(tpk, keys_->shares[0], *rng_);
  msg.subshares.pop_back();
  EXPECT_FALSE(verify_reshare(tpk, msg));
  ReshareMsg msg2 = tkres(tpk, keys_->shares[0], *rng_);
  msg2.from_index = 0;
  EXPECT_FALSE(verify_reshare(tpk, msg2));
}

TEST_F(ThresholdTest, SimTPDecForcesTargetPlaintext) {
  const auto& tpk = keys_->tpk;
  mpz_class m_true = 1234, m_target = 999999;
  mpz_class c = tpk.pk.enc(m_true, *rng_);
  std::vector<unsigned> corrupt{2, 5};
  std::vector<ThresholdKeyShare> honest;
  for (const auto& sh : keys_->shares) {
    if (sh.index != 2 && sh.index != 5) honest.push_back(sh);
  }
  auto sim = sim_tpdec(tpk, c, m_target, m_true, honest, corrupt);
  ASSERT_EQ(sim.size(), honest.size());

  // Qualified set mixing corrupt (honest-computed) and simulated partials.
  std::vector<unsigned> idx{2, 5, 1, 3};
  std::vector<mpz_class> partials{
      tpdec(tpk, keys_->shares[1], c),  // party 2 (corrupt, behaves honestly)
      tpdec(tpk, keys_->shares[4], c),  // party 5
      sim[0],                           // party 1 simulated
      sim[1],                           // party 3 simulated
  };
  EXPECT_EQ(tdec(tpk, idx, partials), m_target);

  // An all-simulated qualified set agrees too.
  std::vector<unsigned> idx2{1, 3, 4, 6};
  std::vector<mpz_class> partials2{sim[0], sim[1], sim[2], sim[3]};
  EXPECT_EQ(tdec(tpk, idx2, partials2), m_target);
}

TEST_F(ThresholdTest, SimTPDecRejectsTooManyCorruptions) {
  const auto& tpk = keys_->tpk;
  mpz_class c = tpk.pk.enc(mpz_class(1), *rng_);
  std::vector<unsigned> corrupt{1, 2, 3, 4};  // > t = 3
  EXPECT_THROW(sim_tpdec(tpk, c, 0, 1, {}, corrupt), std::invalid_argument);
}

TEST(ThresholdKeygen, RejectsBadThreshold) {
  Rng rng(2002);
  EXPECT_THROW(tkgen(128, 1, 3, 3, rng), std::invalid_argument);
  EXPECT_THROW(tkgen(128, 1, 0, 0, rng), std::invalid_argument);
}

TEST(ThresholdKeygen, SubshareBoundGrowsWithEpoch) {
  Rng rng(2003);
  ThresholdKeys keys = tkgen(128, 1, 4, 1, rng);
  unsigned bound0 = keys.tpk.share_bound_bits;
  std::vector<unsigned> from{1, 2};
  std::vector<ReshareMsg> msgs;
  for (unsigned i : from) msgs.push_back(tkres(keys.tpk, keys.shares[i - 1], rng));
  ThresholdPK tpk2 = next_epoch_pk(keys.tpk, from, msgs);
  EXPECT_GT(tpk2.share_bound_bits, bound0);
  // The bound really does bound the shares.
  for (unsigned j = 1; j <= keys.tpk.n; ++j) {
    std::vector<SecretMpz> subs;
    for (const auto& m : msgs) subs.push_back(m.subshares[j - 1]);
    auto sh = tkrec(keys.tpk, j, from, subs);
    EXPECT_LE(mpz_sizeinbase(sh.d_i.declassify().get_mpz_t(), 2), tpk2.share_bound_bits);
  }
}

}  // namespace
}  // namespace yoso
