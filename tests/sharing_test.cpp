#include <gtest/gtest.h>

#include "crypto/rand.hpp"
#include "field/fp61.hpp"
#include "field/zn_ring.hpp"
#include "sharing/packed.hpp"

namespace yoso {
namespace {

using Elems = std::vector<Fp61::Elem>;

Elems random_vec(const Fp61Ring& r, Rng& rng, unsigned k) {
  Elems v(k);
  for (auto& e : v) e = r.random(rng);
  return v;
}

TEST(PackedShamir, ShareReconstructRoundTrip) {
  Fp61Ring r;
  Rng rng(21);
  const unsigned n = 12, k = 4, d = 7;
  auto secrets = random_vec(r, rng, k);
  auto sh = packed_share(r, secrets, d, n, rng);
  EXPECT_EQ(sh.shares.size(), n);
  auto rec = packed_reconstruct(r, sh.points, sh.shares, d, k);
  EXPECT_EQ(rec, secrets);
}

TEST(PackedShamir, ReconstructFromAnySubsetOfDegreePlusOne) {
  Fp61Ring r;
  Rng rng(22);
  const unsigned n = 10, k = 3, d = 5;
  auto secrets = random_vec(r, rng, k);
  auto sh = packed_share(r, secrets, d, n, rng);
  // Take an arbitrary (d+1)-subset, not a prefix.
  std::vector<std::int64_t> pts{2, 4, 5, 7, 9, 10};
  Elems vals;
  for (auto p : pts) vals.push_back(sh.shares[p - 1]);
  EXPECT_EQ(packed_reconstruct(r, pts, vals, d, k), secrets);
}

TEST(PackedShamir, TooFewSharesThrows) {
  Fp61Ring r;
  Rng rng(23);
  auto sh = packed_share(r, random_vec(r, rng, 2), 4, 8, rng);
  std::vector<std::int64_t> pts{1, 2, 3, 4};
  Elems vals(sh.shares.begin(), sh.shares.begin() + 4);
  EXPECT_THROW(packed_reconstruct(r, pts, vals, 4, 2), std::invalid_argument);
}

TEST(PackedShamir, DegreeBelowKMinusOneThrows) {
  Fp61Ring r;
  Rng rng(24);
  EXPECT_THROW(packed_share(r, random_vec(r, rng, 4), 2, 8, rng), std::invalid_argument);
}

TEST(PackedShamir, Linearity) {
  Fp61Ring r;
  Rng rng(25);
  const unsigned n = 12, k = 4, d = 6;
  auto x = random_vec(r, rng, k);
  auto y = random_vec(r, rng, k);
  auto sx = packed_share(r, x, d, n, rng);
  auto sy = packed_share(r, y, d, n, rng);
  auto sum = packed_add(r, sx, sy);
  auto rec = packed_reconstruct(r, sum.points, sum.shares, d, k);
  for (unsigned i = 0; i < k; ++i) EXPECT_EQ(rec[i], r.add(x[i], y[i]));
  auto diff = packed_sub(r, sx, sy);
  rec = packed_reconstruct(r, diff.points, diff.shares, d, k);
  for (unsigned i = 0; i < k; ++i) EXPECT_EQ(rec[i], r.sub(x[i], y[i]));
}

TEST(PackedShamir, ShareWiseMultiplicationAddsDegrees) {
  Fp61Ring r;
  Rng rng(26);
  const unsigned n = 16, k = 3;
  auto x = random_vec(r, rng, k);
  auto y = random_vec(r, rng, k);
  auto sx = packed_share(r, x, 6, n, rng);
  auto sy = packed_share(r, y, 7, n, rng);
  auto prod = packed_mul(r, sx, sy);
  EXPECT_EQ(prod.degree, 13u);
  auto rec = packed_reconstruct(r, prod.points, prod.shares, prod.degree, k);
  for (unsigned i = 0; i < k; ++i) EXPECT_EQ(rec[i], r.mul(x[i], y[i]));
}

TEST(PackedShamir, MulDegreeOverflowThrows) {
  Fp61Ring r;
  Rng rng(27);
  const unsigned n = 8, k = 2;
  auto sx = packed_share(r, random_vec(r, rng, k), 4, n, rng);
  auto sy = packed_share(r, random_vec(r, rng, k), 4, n, rng);
  EXPECT_THROW(packed_mul(r, sx, sy), std::invalid_argument);
}

TEST(PackedShamir, PublicSharingIsDeterminedBySecrets) {
  Fp61Ring r;
  const unsigned n = 9;
  Elems c{5, 17, 123};
  auto s1 = packed_share_public(r, c, n);
  auto s2 = packed_share_public(r, c, n);
  EXPECT_EQ(s1.shares, s2.shares);
  EXPECT_EQ(s1.degree, 2u);
  auto rec = packed_reconstruct(r, s1.points, s1.shares, s1.degree, 3);
  EXPECT_EQ(rec, c);
}

TEST(PackedShamir, MultiplicationFriendlyPublicProduct) {
  // Section 3.2: c * [[x]]_{n-k} = [[c * x]]_{n-1} computed locally.
  Fp61Ring r;
  Rng rng(28);
  const unsigned n = 12, k = 3;
  auto x = random_vec(r, rng, k);
  Elems c{2, 3, 4};
  auto sx = packed_share(r, x, n - k, n, rng);
  auto prod = packed_mul_public(r, c, sx);
  EXPECT_EQ(prod.degree, n - 1);
  auto rec = packed_reconstruct(r, prod.points, prod.shares, prod.degree, k);
  for (unsigned i = 0; i < k; ++i) EXPECT_EQ(rec[i], r.mul(c[i], x[i]));
}

TEST(PackedShamir, PrivacyLowDegreeSharesLookUniformPairwise) {
  // Smoke statistical check: with d - k + 1 = 3 the first 3 shares of two
  // different secret vectors have identical marginal behaviour; we simply
  // check shares of a fixed secret vary across randomness.
  Fp61Ring r;
  Rng rng(29);
  Elems secrets{1, 2};
  auto a = packed_share(r, secrets, 4, 8, rng);
  auto b = packed_share(r, secrets, 4, 8, rng);
  EXPECT_NE(a.shares, b.shares);  // overwhelming probability
}

TEST(PackedShamir, WorksOverZn) {
  Rng rng(30);
  ZnRing ring(rng.prime(60) * rng.prime(60));
  const unsigned n = 10, k = 3, d = 6;
  std::vector<mpz_class> secrets;
  for (unsigned i = 0; i < k; ++i) secrets.push_back(ring.random(rng));
  auto sh = packed_share(ring, secrets, d, n, rng);
  auto rec = packed_reconstruct(ring, sh.points, sh.shares, d, k);
  EXPECT_EQ(rec, secrets);
}

TEST(StandardShamir, RoundTripAndThreshold) {
  Fp61Ring r;
  Rng rng(31);
  Fp61::Elem secret = 987654321;
  auto sh = shamir_share(r, secret, 3, 7, rng);
  std::vector<std::int64_t> pts{1, 4, 6, 7};
  Elems vals{sh.shares[0], sh.shares[3], sh.shares[5], sh.shares[6]};
  EXPECT_EQ(shamir_reconstruct(r, pts, vals, 3), secret);
}

TEST(StandardShamir, DifferentSubsetsAgree) {
  Fp61Ring r;
  Rng rng(32);
  Fp61::Elem secret = 42;
  auto sh = shamir_share(r, secret, 2, 6, rng);
  std::vector<std::vector<std::int64_t>> subsets{{1, 2, 3}, {4, 5, 6}, {1, 3, 5}};
  for (const auto& pts : subsets) {
    Elems vals;
    for (auto p : pts) vals.push_back(sh.shares[p - 1]);
    EXPECT_EQ(shamir_reconstruct(r, pts, vals, 2), secret);
  }
}

// Property-style sweep over (n, k, d) configurations.
struct PackedParam {
  unsigned n, k, d;
};

class PackedSweep : public ::testing::TestWithParam<PackedParam> {};

TEST_P(PackedSweep, RoundTrip) {
  auto [n, k, d] = GetParam();
  Fp61Ring r;
  Rng rng(100 + n * 31 + k * 7 + d);
  auto secrets = random_vec(r, rng, k);
  auto sh = packed_share(r, secrets, d, n, rng);
  EXPECT_EQ(packed_reconstruct(r, sh.points, sh.shares, d, k), secrets);
}

TEST_P(PackedSweep, HomomorphicAddition) {
  auto [n, k, d] = GetParam();
  Fp61Ring r;
  Rng rng(200 + n * 31 + k * 7 + d);
  auto x = random_vec(r, rng, k);
  auto y = random_vec(r, rng, k);
  auto sum = packed_add(r, packed_share(r, x, d, n, rng), packed_share(r, y, d, n, rng));
  auto rec = packed_reconstruct(r, sum.points, sum.shares, d, k);
  for (unsigned i = 0; i < k; ++i) EXPECT_EQ(rec[i], r.add(x[i], y[i]));
}

INSTANTIATE_TEST_SUITE_P(Configs, PackedSweep,
                         ::testing::Values(PackedParam{4, 1, 1}, PackedParam{4, 2, 1},
                                           PackedParam{8, 2, 5}, PackedParam{8, 4, 3},
                                           PackedParam{16, 4, 11}, PackedParam{16, 8, 7},
                                           PackedParam{32, 8, 23}, PackedParam{32, 16, 15},
                                           PackedParam{25, 5, 14}, PackedParam{13, 3, 9}));

}  // namespace
}  // namespace yoso
