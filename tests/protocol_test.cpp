// End-to-end tests of the full YOSO MPC protocol (Theorem 1): correctness,
// guaranteed output delivery under active corruption, and fail-stop
// tolerance (Section 5.4).
#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

namespace yoso {
namespace {

constexpr unsigned kBits = 192;

std::vector<std::vector<mpz_class>> small_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1000))));
    }
  }
  return inputs;
}

void expect_matches_cleartext(YosoMpc& mpc, const Circuit& c,
                              const std::vector<std::vector<mpz_class>>& inputs) {
  OnlineResult res = mpc.run(inputs);
  auto expected = c.eval(inputs, mpc.plaintext_modulus());
  ASSERT_EQ(res.outputs.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(res.outputs[i], expected[i]) << "output " << i;
  }
}

TEST(Protocol, HonestWideCircuit) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  EXPECT_EQ(params.t, 1u);
  EXPECT_EQ(params.k, 2u);
  Circuit c = wide_mul_circuit(4);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 101);
  expect_matches_cleartext(mpc, c, small_inputs(c, 1));
}

TEST(Protocol, HonestInnerProduct) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(3);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 102);
  expect_matches_cleartext(mpc, c, small_inputs(c, 2));
}

TEST(Protocol, HonestStatistics) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = statistics_circuit(3);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 103);
  expect_matches_cleartext(mpc, c, small_inputs(c, 3));
}

TEST(Protocol, HonestDeepChain) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = chain_circuit(3);  // three multiplicative layers
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 104);
  expect_matches_cleartext(mpc, c, small_inputs(c, 4));
}

TEST(Protocol, HonestMulTree) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = mul_tree_circuit(4);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 105);
  expect_matches_cleartext(mpc, c, small_inputs(c, 5));
}

TEST(Protocol, NoPackingConfigWorks) {
  auto params = ProtocolParams::for_gap(4, 0.1, kBits);
  EXPECT_EQ(params.k, 1u);
  Circuit c = wide_mul_circuit(2);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 106);
  expect_matches_cleartext(mpc, c, small_inputs(c, 6));
}

TEST(Protocol, AdditionOnlyCircuitNeedsNoMulCommittees) {
  auto params = ProtocolParams::for_gap(4, 0.1, kBits);
  Circuit c;
  WireId a = c.input(0);
  WireId b = c.input(1);
  c.output(c.add(c.add_const(a, mpz_class(7)), b), 0);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 107);
  expect_matches_cleartext(mpc, c, small_inputs(c, 7));
}

TEST(Protocol, GodUnderBadShareAdversary) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  YosoMpc mpc(params, c,
              AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::BadShare), 108);
  expect_matches_cleartext(mpc, c, small_inputs(c, 8));
}

TEST(Protocol, GodUnderBadProofAdversary) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  YosoMpc mpc(params, c,
              AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::BadProof), 109);
  expect_matches_cleartext(mpc, c, small_inputs(c, 9));
}

TEST(Protocol, GodUnderSilentAdversary) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  YosoMpc mpc(params, c,
              AdversaryPlan::fixed(params.n, params.t, 0, MaliciousStrategy::Silent), 110);
  expect_matches_cleartext(mpc, c, small_inputs(c, 10));
}

TEST(Protocol, GodUnderRandomlyPlacedCorruptions) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = wide_mul_circuit(2);
  Rng seed_rng(111);
  YosoMpc mpc(params, c,
              AdversaryPlan::random(params.n, params.t, 0, seed_rng,
                                    MaliciousStrategy::BadShare),
              111);
  expect_matches_cleartext(mpc, c, small_inputs(c, 11));
}

TEST(Protocol, FailStopToleranceAtHalvedPacking) {
  // Section 5.4: with k - 1 <= n*eps/2, the protocol survives n*eps silent
  // honest parties on top of t active corruptions.
  auto params = ProtocolParams::for_gap(8, 0.25, kBits, /*failstop_mode=*/true);
  EXPECT_EQ(params.t, 1u);
  EXPECT_EQ(params.k, 2u);
  unsigned capacity = params.n - params.t - params.recon_threshold();
  ASSERT_GE(capacity, 2u);
  Circuit c = wide_mul_circuit(2);
  YosoMpc mpc(params, c,
              AdversaryPlan::fixed(params.n, params.t, /*f_stop=*/2,
                                   MaliciousStrategy::BadShare),
              112);
  expect_matches_cleartext(mpc, c, small_inputs(c, 12));
}

TEST(Protocol, FullPackingFailsUnderFailStops) {
  // Without the halved packing, the same fail-stop load stalls the online
  // phase: fewer than t+2(k-1)+1 shares survive.
  auto params = ProtocolParams::for_gap(8, 0.25, kBits, /*failstop_mode=*/false);
  EXPECT_EQ(params.k, 3u);
  EXPECT_EQ(params.n - params.t - params.recon_threshold(), 1u);
  Circuit c = wide_mul_circuit(2);
  YosoMpc mpc(params, c,
              AdversaryPlan::fixed(params.n, params.t, /*f_stop=*/2,
                                   MaliciousStrategy::BadShare),
              113);
  EXPECT_THROW(mpc.run(small_inputs(c, 13)), ProtocolAbort);
}

TEST(Protocol, EvaluateTwiceViolatesYoso) {
  auto params = ProtocolParams::for_gap(4, 0.1, kBits);
  Circuit c = wide_mul_circuit(1);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 114);
  auto inputs = small_inputs(c, 14);
  mpc.run(inputs);
  EXPECT_THROW(mpc.evaluate(inputs), std::logic_error);
}

TEST(Protocol, EvaluateBeforePreprocessThrows) {
  auto params = ProtocolParams::for_gap(4, 0.1, kBits);
  Circuit c = wide_mul_circuit(1);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 115);
  EXPECT_THROW(mpc.evaluate(small_inputs(c, 15)), std::logic_error);
}

TEST(Protocol, LedgerSeparatesPhases) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = wide_mul_circuit(2);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 116);
  mpc.run(small_inputs(c, 16));
  EXPECT_GT(mpc.ledger().phase_total(Phase::Setup).bytes, 0u);
  EXPECT_GT(mpc.ledger().phase_total(Phase::Offline).bytes, 0u);
  EXPECT_GT(mpc.ledger().phase_total(Phase::Online).bytes, 0u);
  // Online is much lighter than offline (the headline claim, qualitatively).
  EXPECT_LT(mpc.ledger().phase_total(Phase::Online).elements,
            mpc.ledger().phase_total(Phase::Offline).elements);
}

TEST(Protocol, TskHandoverChainRanAllEpochs) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = chain_circuit(2);  // depth 2 -> holders: L1, L2, reenc, fkd, out
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 117);
  mpc.run(small_inputs(c, 17));
  EXPECT_EQ(mpc.epochs(), 4u);  // L1->L2->reenc->fkd->out
}

TEST(Protocol, MuValuesConsistentWithOutputs) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(2);
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), 118);
  auto inputs = small_inputs(c, 18);
  OnlineResult res = mpc.run(inputs);
  // Every wire got a public mu.
  EXPECT_EQ(res.mu.size(), c.num_wires());
}

TEST(Protocol, RejectsMismatchedPlanSize) {
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = wide_mul_circuit(1);
  EXPECT_THROW(YosoMpc(params, c, AdversaryPlan::honest(4), 119), std::invalid_argument);
}

TEST(ProtocolParams, ForGapRespectsTheorem) {
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    for (double eps : {0.1, 0.2, 0.3}) {
      auto p = ProtocolParams::for_gap(n, eps, kBits);
      EXPECT_LT(p.t, n * (0.5 - eps) + 1e-12);
      EXPECT_LE(p.recon_threshold(), n - p.t);
      EXPECT_GE(p.k, 1u);
    }
  }
}

TEST(ProtocolParams, FailstopModeHalvesPacking) {
  auto full = ProtocolParams::for_gap(16, 0.25, kBits, false);
  auto half = ProtocolParams::for_gap(16, 0.25, kBits, true);
  EXPECT_GT(full.k, half.k);
  EXPECT_GT(half.n - half.t - half.recon_threshold(),
            full.n - full.t - full.recon_threshold());
}

TEST(ProtocolParams, ValidateCatchesBadConfigs) {
  ProtocolParams p = ProtocolParams::for_gap(8, 0.2, kBits);
  p.t = 4;  // now t >= n(1/2 - eps)
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ProtocolParams::for_gap(8, 0.2, kBits);
  p.k = 5;  // blows the reconstruction threshold
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace yoso
