#include <gtest/gtest.h>

#include "crypto/rand.hpp"
#include "field/fp61.hpp"
#include "field/poly.hpp"
#include "field/zn_ring.hpp"

namespace yoso {
namespace {

TEST(Poly, EvalHorner) {
  Fp61Ring r;
  // f(x) = 3 + 2x + x^2
  std::vector<Fp61::Elem> f{3, 2, 1};
  EXPECT_EQ(poly_eval(r, f, r.from_int(0)), 3u);
  EXPECT_EQ(poly_eval(r, f, r.from_int(1)), 6u);
  EXPECT_EQ(poly_eval(r, f, r.from_int(2)), 11u);
  EXPECT_EQ(poly_eval(r, f, r.from_int(-1)), 2u);
}

TEST(Poly, EvalEmptyIsZero) {
  Fp61Ring r;
  EXPECT_EQ(poly_eval(r, {}, r.from_int(5)), 0u);
}

TEST(Poly, LagrangeRecoversPolynomialValues) {
  Fp61Ring r;
  Rng rng(11);
  std::vector<Fp61::Elem> coeffs;
  for (int i = 0; i < 6; ++i) coeffs.push_back(r.random(rng));
  std::vector<std::int64_t> pts{1, 2, 3, 4, 5, 6};
  std::vector<Fp61::Elem> vals;
  for (auto p : pts) vals.push_back(poly_eval(r, coeffs, r.from_int(p)));
  for (std::int64_t at : {0LL, -1LL, -2LL, 7LL, 100LL}) {
    EXPECT_EQ(lagrange_at(r, pts, vals, at), poly_eval(r, coeffs, r.from_int(at)));
  }
}

TEST(Poly, LagrangeCoeffsMatchDirectInterpolation) {
  Fp61Ring r;
  Rng rng(12);
  std::vector<std::int64_t> pts{1, 3, 5, 7};
  std::vector<Fp61::Elem> vals;
  for (std::size_t i = 0; i < pts.size(); ++i) vals.push_back(r.random(rng));
  auto coeffs = lagrange_coeffs(r, pts, -2);
  Fp61::Elem via_coeffs = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    via_coeffs = r.add(via_coeffs, r.mul(coeffs[i], vals[i]));
  }
  EXPECT_EQ(via_coeffs, lagrange_at(r, pts, vals, -2));
}

TEST(Poly, InterpolateCoeffsRoundTrip) {
  Fp61Ring r;
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Fp61::Elem> coeffs;
    for (int i = 0; i < 5; ++i) coeffs.push_back(r.random(rng));
    std::vector<std::int64_t> pts{0, -1, -2, 3, 4};
    std::vector<Fp61::Elem> vals;
    for (auto p : pts) vals.push_back(poly_eval(r, coeffs, r.from_int(p)));
    auto rec = interpolate_coeffs(r, pts, vals);
    ASSERT_EQ(rec.size(), coeffs.size());
    EXPECT_EQ(rec, coeffs);
  }
}

TEST(Poly, InterpolateCoeffsOverZn) {
  Rng rng(14);
  ZnRing ring(rng.prime(40) * rng.prime(40));
  std::vector<mpz_class> coeffs;
  for (int i = 0; i < 4; ++i) coeffs.push_back(ring.random(rng));
  std::vector<std::int64_t> pts{0, 1, -1, 2};
  std::vector<mpz_class> vals;
  for (auto p : pts) vals.push_back(poly_eval(ring, coeffs, ring.from_int(p)));
  EXPECT_EQ(interpolate_coeffs(ring, pts, vals), coeffs);
}

TEST(Poly, InterpolateSinglePoint) {
  Fp61Ring r;
  auto coeffs = interpolate_coeffs(r, {5}, {Fp61::Elem{42}});
  ASSERT_EQ(coeffs.size(), 1u);
  EXPECT_EQ(coeffs[0], 42u);
}

TEST(Poly, FactorialMatchesKnownValues) {
  EXPECT_EQ(factorial(0), 1);
  EXPECT_EQ(factorial(1), 1);
  EXPECT_EQ(factorial(5), 120);
  EXPECT_EQ(factorial(20), mpz_class("2432902008176640000"));
}

TEST(Poly, IntegerLagrangeReconstructsSecret) {
  // f(x) = 7 + 3x + 2x^2 over Z; shares at 1, 2, 3; Delta = 3!.
  auto f = [](long x) { return 7 + 3 * x + 2 * x * x; };
  std::vector<std::int64_t> pts{1, 2, 3};
  mpz_class delta = factorial(3);
  auto lambda = integer_lagrange(pts, 0, delta);
  mpz_class acc = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) acc += lambda[i] * f(pts[i]);
  EXPECT_EQ(acc, delta * 7);
}

TEST(Poly, IntegerLagrangeWithNegativeEvaluationPoint) {
  // Reconstruct at -1 instead of 0 (packed secret slots live at negatives).
  auto f = [](long x) { return 11 - 4 * x; };
  std::vector<std::int64_t> pts{1, 2};
  mpz_class delta = factorial(2);
  auto lambda = integer_lagrange(pts, -1, delta);
  mpz_class acc = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) acc += lambda[i] * f(pts[i]);
  EXPECT_EQ(acc, delta * f(-1));
}

TEST(Poly, IntegerLagrangeThrowsWhenNotIntegral) {
  // Delta = 1 cannot clear the denominators for 3 points.
  EXPECT_THROW(integer_lagrange({1, 2, 4}, 0, mpz_class(1)), std::invalid_argument);
}

TEST(Poly, IntegerLagrangeSubsetOfLargerPartySet) {
  // Points {2, 5, 9} out of n = 10 parties, Delta = 10!.
  auto f = [](long x) { return 100 + 17 * x + 5 * x * x; };
  std::vector<std::int64_t> pts{2, 5, 9};
  mpz_class delta = factorial(10);
  auto lambda = integer_lagrange(pts, 0, delta);
  mpz_class acc = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) acc += lambda[i] * f(pts[i]);
  EXPECT_EQ(acc, delta * 100);
}

}  // namespace
}  // namespace yoso
