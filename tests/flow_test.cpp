// Tests for the per-edge flow telemetry (src/obs/flow + src/obs/timeseries
// and their NetBulletin integration): the traffic matrix must obey the
// conservation law (per phase, flow messages == PhasePosts::delivered, with
// and without wire faults), two identical seeded runs must serialize a
// byte-identical "flow" report section, and the OBS_DISABLED build must
// compile the same call sites down to empty telemetry.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <string>

#include "circuit/workloads.hpp"
#include "common/json.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"
#include "obs/flow.hpp"
#include "obs/runtime.hpp"
#ifndef OBS_DISABLED
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#endif

namespace yoso {
namespace {

using net::NetBulletin;
using net::NetConfig;
using net::PhasePosts;
using net::WireFaultPlan;
using obs::FlowCell;
using obs::FlowKey;
using obs::FlowMatrix;

constexpr unsigned kBits = 192;

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  return inputs;
}

struct FlowRun {
  bool completed = false;
  std::string report;
  std::array<PhasePosts, 3> posts{};
  std::map<FlowKey, FlowCell> edges;
};

FlowRun run_flow(std::uint64_t seed, NetConfig cfg) {
#ifndef OBS_DISABLED
  obs::set_enabled(true);
  obs::timeseries().reset();
#endif
  auto params = ProtocolParams::for_gap(5, 0.2, kBits);
  Circuit c = inner_product_circuit(3);
  auto inputs = make_inputs(c, seed);
  Ledger ledger;
  NetBulletin board(ledger, std::move(cfg));
  YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), seed, &board);
  FlowRun r;
  try {
    mpc.run(inputs);
    r.completed = true;
  } catch (const ProtocolAbort&) {
    r.completed = false;
  }
  r.edges = board.flow().edges();
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    r.posts[static_cast<std::size_t>(p)] = board.phase_posts(p);
  }
  r.report = board.report_json();
  return r;
}

// Sum of edge messages per phase.
std::array<std::uint64_t, 3> flow_messages(const std::map<FlowKey, FlowCell>& edges) {
  std::array<std::uint64_t, 3> totals{};
  for (const auto& [key, cell] : edges) {
    totals[key.phase] += cell.messages;
  }
  return totals;
}

void expect_conserved(const FlowRun& run) {
  const auto totals = flow_messages(run.edges);
  for (std::size_t i = 0; i < 3; ++i) {
#ifndef OBS_DISABLED
    EXPECT_EQ(totals[i], run.posts[i].delivered)
        << "phase " << i << ": flow matrix disagrees with board accounting";
#else
    EXPECT_EQ(totals[i], 0u);
#endif
  }
}

// --- FlowMatrix unit --------------------------------------------------------

TEST(FlowMatrix, RecordResolveFinalize) {
  FlowMatrix fm;
  fm.record("alpha", "cat.a", 1, 100, 4);
  fm.record("alpha", "cat.a", 1, 50, 2);
  fm.record("beta", "cat.b", 2, 10, 1);
#ifndef OBS_DISABLED
  EXPECT_EQ(fm.pending(), 3u);
  EXPECT_TRUE(fm.edges().empty());

  fm.resolve("gamma");
  EXPECT_EQ(fm.pending(), 0u);
  ASSERT_EQ(fm.edges().size(), 2u);
  const FlowCell& merged = fm.edges().at(FlowKey{"alpha", "gamma", "cat.a", 1});
  EXPECT_EQ(merged.messages, 2u);
  EXPECT_EQ(merged.bytes, 150u);
  EXPECT_EQ(merged.elements, 6u);

  fm.record("gamma", "cat.c", 2, 7, 1);
  fm.finalize("observers");
  fm.finalize("observers");  // idempotent
  EXPECT_EQ(fm.edges().at(FlowKey{"gamma", "observers", "cat.c", 2}).messages, 1u);
  EXPECT_EQ(fm.phase_total(2).bytes, 17u);
  EXPECT_EQ(fm.phase_total(1).messages, 2u);

  fm.reset();
  EXPECT_TRUE(fm.edges().empty());
  EXPECT_EQ(fm.pending(), 0u);
#else
  // Compiled out: recording is a no-op and the matrix stays empty.
  EXPECT_EQ(fm.pending(), 0u);
  EXPECT_TRUE(fm.edges().empty());
  fm.resolve("gamma");
  fm.finalize("observers");
  EXPECT_EQ(fm.phase_total(1).messages, 0u);
#endif
}

TEST(FlowMatrix, WriteJsonIsSortedAndInsertionOrderFree) {
  FlowMatrix a, b;
  a.record("x", "c1", 0, 1, 1);
  a.record("a", "c2", 1, 2, 1);
  a.resolve("dst");
  b.record("a", "c2", 1, 2, 1);
  b.record("x", "c1", 0, 1, 1);
  b.resolve("dst");
  json::Writer wa, wb;
  a.write_json(wa);
  b.write_json(wb);
  const std::string ja = wa.take();
  EXPECT_EQ(ja, wb.take());
  const json::Value doc = json::parse(ja);
  ASSERT_TRUE(doc.is_array());
#ifndef OBS_DISABLED
  ASSERT_EQ(doc.items.size(), 2u);
  EXPECT_EQ(doc.items[0].str_or("src", ""), "a");  // sorted by key, not insertion
  EXPECT_EQ(doc.items[1].str_or("src", ""), "x");
  EXPECT_EQ(doc.items[0].u64_or("bytes", 0), 2u);
#else
  EXPECT_TRUE(doc.items.empty());
#endif
}

// --- NetBulletin integration ------------------------------------------------

TEST(FlowTest, ConservationOnCleanRun) {
  FlowRun run = run_flow(6101, NetConfig{});
  EXPECT_TRUE(run.completed);
  expect_conserved(run);
#ifndef OBS_DISABLED
  EXPECT_FALSE(run.edges.empty());
  // Every edge has a concrete consumer: the next committee or "observers".
  // With publish-time resolution only the final committee's output posts
  // fall through to the observers fallback; every other edge names the
  // next acting committee in the handover chain.
  std::size_t observer_edges = 0;
  for (const auto& [key, cell] : run.edges) {
    EXPECT_FALSE(key.dst.empty());
    EXPECT_GT(cell.messages, 0u);
    if (key.dst == "observers") {
      ++observer_edges;
      EXPECT_EQ(key.category, "online.output.pdec") << key.src;
    }
  }
  EXPECT_GT(run.edges.size(), 2 * observer_edges);
  EXPECT_GT(run.posts[1].delivered, 0u);
  EXPECT_GT(run.posts[2].delivered, 0u);
#endif
}

TEST(FlowTest, ConservationUnderGracedWireFaults) {
  NetConfig cfg;
  cfg.wire_faults.duplicate_prob = 0.3;
  cfg.wire_faults.late_prob = 0.2;
  cfg.wire_faults.late_delay_s = 1.0;
  cfg.wire_faults.seed = 61;
  cfg.grace_window_s = 2.0;  // late posts still land
  FlowRun run = run_flow(6102, cfg);
  EXPECT_TRUE(run.completed);
  expect_conserved(run);
#ifndef OBS_DISABLED
  // The injected duplicate copies were dropped by the board, so the flow
  // matrix must count strictly fewer messages than were originated.
  std::uint64_t originated = 0, flow_total = 0;
  for (const auto& pp : run.posts) originated += pp.originated;
  for (const auto& [key, cell] : run.edges) flow_total += cell.messages;
  EXPECT_LT(flow_total, originated);
#endif
}

TEST(FlowTest, ConservationUnderLossyWireFaults) {
  NetConfig cfg;
  cfg.wire_faults.bitflip_prob = 0.1;
  cfg.wire_faults.truncate_prob = 0.1;
  cfg.wire_faults.seed = 62;
  // The run may abort (dropped posts starve the protocol); the board's
  // accounting and the flow matrix must stay conserved regardless.
  FlowRun run = run_flow(6103, cfg);
  expect_conserved(run);
}

TEST(FlowTest, ReportSectionIsDeterministicAndComplete) {
  FlowRun a = run_flow(6104, NetConfig{});
  FlowRun b = run_flow(6104, NetConfig{});

  const json::Value doc_a = json::parse(a.report);
  const json::Value doc_b = json::parse(b.report);

  // The grace window is stated even when zero.
  const json::Value* grace = doc_a.find("grace_window_s");
  ASSERT_NE(grace, nullptr);
  EXPECT_EQ(grace->number, 0.0);

  const json::Value* flow_a = doc_a.find("flow");
  const json::Value* flow_b = doc_b.find("flow");
  ASSERT_NE(flow_a, nullptr);
  ASSERT_NE(flow_b, nullptr);
  json::Writer wa, wb;
  json::write(wa, *flow_a);
  json::write(wb, *flow_b);
  EXPECT_EQ(wa.take(), wb.take()) << "identical seeded runs must serialize identically";

  const json::Value* edges = flow_a->find("edges");
  const json::Value* series = flow_a->find("series");
  ASSERT_NE(edges, nullptr);
  ASSERT_NE(series, nullptr);
#ifndef OBS_DISABLED
  EXPECT_FALSE(edges->items.empty());
  // The virtual-clock series sampled at every round flush are in the report.
  EXPECT_NE(series->find("net.inflight.bytes"), nullptr);
  EXPECT_NE(series->find("net.queue.posts"), nullptr);
#else
  EXPECT_TRUE(edges->items.empty());
  EXPECT_TRUE(series->members.empty());
#endif
}

#ifndef OBS_DISABLED

// --- Time series ------------------------------------------------------------

TEST(TimeSeries, HandlesStayValidAcrossReset) {
  obs::set_enabled(true);
  auto& reg = obs::timeseries();
  reg.reset();
  obs::Series& s = reg.series("test.series");
  s.sample(1.0, 2.0);
  ASSERT_EQ(s.points().size(), 1u);
  reg.reset();
  EXPECT_TRUE(s.points().empty());  // same handle, cleared points
  s.sample(2.0, 3.0);
  EXPECT_EQ(&reg.series("test.series"), &s);
  reg.reset();
}

TEST(TimeSeries, SamplingIsMutedWhenDisabled) {
  auto& reg = obs::timeseries();
  reg.reset();
  obs::set_enabled(false);
  reg.series("test.muted").sample(1.0, 1.0);
  EXPECT_TRUE(reg.series("test.muted").points().empty());
  obs::set_enabled(true);
  reg.series("test.muted").sample(1.0, 1.0);
  EXPECT_EQ(reg.series("test.muted").points().size(), 1u);
  reg.reset();
}

TEST(TimeSeries, ReportOmitsEmptySeriesAndSortsNames) {
  obs::set_enabled(true);
  auto& reg = obs::timeseries();
  reg.reset();
  reg.series("zz.series").sample(1.0, 10.0);
  reg.series("aa.series").sample(0.5, 5.0);
  reg.series("empty.series");  // no samples: omitted
  const json::Value doc = json::parse(reg.report_json());
  ASSERT_EQ(doc.members.size(), 2u);
  EXPECT_EQ(doc.members[0].first, "aa.series");
  EXPECT_EQ(doc.members[1].first, "zz.series");
  ASSERT_EQ(doc.members[0].second.items.size(), 1u);
  EXPECT_EQ(doc.members[0].second.items[0].items[1].number, 5.0);
  reg.reset();
}

TEST(TimeSeries, SeriesBecomeCounterTracksInChromeTrace) {
  obs::set_enabled(true);
  obs::tracer().reset();
  auto& reg = obs::timeseries();
  reg.reset();
  {
    obs::Span span("covering", "test");
    reg.series("test.counter").sample(0.25, 42.0);
  }
  const std::string trace = obs::tracer().chrome_trace_json(false);
  EXPECT_NE(trace.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(trace.find("test.counter"), std::string::npos);
  std::string error;
  EXPECT_TRUE(obs::validate_trace_json(trace, &error)) << error;
  const json::Value doc = json::parse(trace);
  bool found = false;
  for (const auto& ev : doc.find("traceEvents")->items) {
    if (ev.str_or("ph", "") == "C" && ev.str_or("name", "") == "test.counter") {
      found = true;
      EXPECT_EQ(ev.num_or("ts", 0), 0.25 * 1e6);  // virtual seconds -> us
      const json::Value* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->num_or("value", 0), 42.0);
    }
  }
  EXPECT_TRUE(found);
  reg.reset();
  obs::tracer().reset();
}

#endif  // OBS_DISABLED

}  // namespace
}  // namespace yoso
