// Tests for the per-task PRG derivation seam (common/prg_stream).  The
// multi-core engine depends on three properties: streams keyed by distinct
// (seed, role, activation) are independent, derivation is a pure function of
// the key, and SequentialStreams hands out exactly the keyed derivations in
// activation order — so sequential and parallel schedules draw identical
// randomness.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/prg_stream.hpp"

namespace yoso::prg {
namespace {

std::vector<std::uint8_t> draw(Prg g, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  g.bytes(out.data(), out.size());
  return out;
}

TEST(PrgStream, SubseedIsStableAcrossCalls) {
  const StreamKey key{42, "dealer", 3};
  EXPECT_EQ(subseed(key), subseed(key));
  EXPECT_EQ(subseed(key), subseed(42, "dealer", 3));
}

TEST(PrgStream, DistinctKeysGiveDistinctSubseeds) {
  // Any single differing component must change the subseed.
  const std::uint64_t base = subseed(42, "dealer", 0);
  EXPECT_NE(base, subseed(43, "dealer", 0));
  EXPECT_NE(base, subseed(42, "holder", 0));
  EXPECT_NE(base, subseed(42, "dealer", 1));
}

TEST(PrgStream, RoleEncodingIsLengthPrefixed) {
  // ("ab", act) and ("a", …) must not alias: the role is length-prefixed in
  // the digest input, so no (role, activation) concatenation collides.
  std::set<std::uint64_t> seen;
  for (const char* role : {"a", "ab", "abc", "b", "ba"}) {
    for (std::uint64_t act = 0; act < 4; ++act) {
      seen.insert(subseed(7, role, act));
    }
  }
  EXPECT_EQ(seen.size(), 5u * 4u);
}

TEST(PrgStream, DerivedStreamsAreIndependent) {
  // Streams from different keys produce different bytes; the same key
  // reproduces the same bytes.
  const StreamKey a{42, "dealer", 0};
  const StreamKey b{42, "dealer", 1};
  EXPECT_EQ(draw(derive_prg(a), 64), draw(derive_prg(a), 64));
  EXPECT_NE(draw(derive_prg(a), 64), draw(derive_prg(b), 64));
}

TEST(PrgStream, SequentialStreamsMatchDirectDerivation) {
  // next_prg(role) must be exactly derive_prg({seed, role, k}) for the k-th
  // activation of that role, independent of interleaving with other roles.
  SequentialStreams streams(42);
  const auto d0 = draw(streams.next_prg("dealer"), 32);
  const auto h0 = draw(streams.next_prg("holder"), 32);
  const auto d1 = draw(streams.next_prg("dealer"), 32);

  EXPECT_EQ(d0, draw(derive_prg({42, "dealer", 0}), 32));
  EXPECT_EQ(h0, draw(derive_prg({42, "holder", 0}), 32));
  EXPECT_EQ(d1, draw(derive_prg({42, "dealer", 1}), 32));

  EXPECT_EQ(streams.activations("dealer"), 2u);
  EXPECT_EQ(streams.activations("holder"), 1u);
  EXPECT_EQ(streams.activations("never"), 0u);
}

TEST(PrgStream, NextSubseedAdvancesPerRole) {
  SequentialStreams streams(9);
  EXPECT_EQ(streams.next_subseed("r"), subseed(9, "r", 0));
  EXPECT_EQ(streams.next_subseed("r"), subseed(9, "r", 1));
  EXPECT_EQ(streams.next_subseed("s"), subseed(9, "s", 0));
}

}  // namespace
}  // namespace yoso::prg
