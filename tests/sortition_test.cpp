#include <gtest/gtest.h>

#include <cmath>

#include "sortition/montecarlo.hpp"
#include "sortition/table1.hpp"

namespace yoso {
namespace {

TEST(Sortition, Eps1ClosedFormSatisfiesEq2) {
  // Plugging the solved eps1 back into Eq. (2) must make it tight.
  for (double C : {1000.0, 20000.0}) {
    for (double f : {0.05, 0.2}) {
      double e1 = solve_eps1(C, f, 64, 128);
      double rhs = (64 + 128 + 1) * std::log(2.0) * (2 + e1) / (f * e1 * e1);
      EXPECT_NEAR(C, rhs, 1e-6 * C) << "C=" << C << " f=" << f;
    }
  }
}

TEST(Sortition, Eps2ClosedFormSatisfiesEq2) {
  for (double C : {5000.0, 40000.0}) {
    for (double f : {0.1, 0.25}) {
      double e2 = solve_eps2(C, f, 128);
      double rhs = (128 + 1) * std::log(2.0) * (2 + e2) / (f * (1 - f) * e2 * e2);
      EXPECT_NEAR(C, rhs, 1e-6 * C);
    }
  }
}

TEST(Sortition, Eps3MatchesBound) {
  double e3 = solve_eps3(10000, 0.1, 128);
  EXPECT_NEAR(e3 * e3 * 10000 * 0.81, 2 * 128 * std::log(2.0), 1e-9);
}

TEST(Sortition, EpsilonsShrinkWithC) {
  double prev1 = 10, prev2 = 10, prev3 = 10;
  for (double C : {1000.0, 5000.0, 20000.0, 100000.0}) {
    double e1 = solve_eps1(C, 0.1, 64, 128);
    double e2 = solve_eps2(C, 0.1, 128);
    double e3 = solve_eps3(C, 0.1, 128);
    EXPECT_LT(e1, prev1);
    EXPECT_LT(e2, prev2);
    EXPECT_LT(e3, prev3);
    prev1 = e1;
    prev2 = e2;
    prev3 = e3;
  }
}

TEST(Sortition, Table1MatchesPaperWithinRounding) {
  auto rows = generate_table1();
  const auto& paper = paper_table1();
  for (const auto& p : paper) {
    const Table1Row* mine = nullptr;
    for (const auto& r : rows) {
      if (r.C == p.C && std::abs(r.f - p.f) < 1e-9) mine = &r;
    }
    ASSERT_NE(mine, nullptr) << "C=" << p.C << " f=" << p.f;
    ASSERT_TRUE(mine->analysis.feasible) << "C=" << p.C << " f=" << p.f;
    EXPECT_NEAR(mine->analysis.t, p.t, 2.0) << "t at C=" << p.C << " f=" << p.f;
    EXPECT_NEAR(mine->analysis.c, p.c, 3.0) << "c at C=" << p.C << " f=" << p.f;
    EXPECT_NEAR(mine->analysis.c_prime, p.c_prime, 3.0);
    EXPECT_NEAR(mine->analysis.eps, p.eps, 0.011);
    EXPECT_NEAR(static_cast<double>(mine->analysis.k), p.k, 2.0)
        << "k at C=" << p.C << " f=" << p.f;
  }
}

TEST(Sortition, InfeasibleCellsMatchPaper) {
  // The paper's bottom-of-column "⊥" cells.
  auto rows = generate_table1();
  auto find = [&](double C, double f) {
    for (const auto& r : rows) {
      if (r.C == C && std::abs(r.f - f) < 1e-9) return r.analysis.feasible;
    }
    return true;
  };
  EXPECT_FALSE(find(1000, 0.10));
  EXPECT_FALSE(find(1000, 0.25));
  EXPECT_FALSE(find(5000, 0.20));
  EXPECT_FALSE(find(10000, 0.25));
  EXPECT_FALSE(find(20000, 0.25));
  EXPECT_TRUE(find(40000, 0.25));  // only the largest C supports f = 0.25
}

TEST(Sortition, HeadlineSpeedups) {
  // Section 1.1.2: ~28x at (C=1000, f=0.05); >1000x at (C=20000, f=0.2).
  SortitionConfig a{1000, 0.05};
  EXPECT_EQ(analyze_gap(a).k, 28u);
  SortitionConfig b{20000, 0.20};
  EXPECT_GE(analyze_gap(b).k, 1000u);
}

TEST(Sortition, CommitteeSizeIncreaseIsMarginal) {
  // Section 6: moving from c' (eps = 0) to c costs little for larger f.
  SortitionConfig cfg{20000, 0.20};
  auto g = analyze_gap(cfg);
  ASSERT_TRUE(g.feasible);
  EXPECT_LT(g.c / g.c_prime, 1.15);  // ~18k -> ~20k in the paper
}

TEST(SortitionMC, EmpiricalBoundsHoldAtSmallK) {
  // Re-run the analysis at k2 = k3 = 10 bits and check the empirical
  // failure rates stay below 2^-10 (with ~2^14 trials).
  SortitionConfig cfg;
  cfg.C = 1000;
  cfg.f = 0.05;
  cfg.k1 = 0;
  cfg.k2 = 10;
  cfg.k3 = 10;
  auto g = analyze_gap(cfg);
  ASSERT_TRUE(g.feasible);
  auto mc = sortition_monte_carlo(cfg, g, /*pool=*/100000, /*trials=*/1 << 14, /*seed=*/42);
  double corr_rate = static_cast<double>(mc.corruption_bound_failures) / mc.trials;
  double honest_rate = static_cast<double>(mc.honest_bound_failures) / mc.trials;
  EXPECT_LE(corr_rate, 1.0 / 1024);
  EXPECT_LE(honest_rate, 1.0 / 1024);
  EXPECT_NEAR(mc.mean_committee_size, 1000, 15);
  EXPECT_NEAR(mc.mean_corrupt, 50, 5);
}

TEST(SortitionMC, CorruptionBoundIsNotVacuous) {
  // With a deliberately tiny t the bound must fail often — guards against
  // the Monte-Carlo harness silently accepting everything.
  SortitionConfig cfg;
  cfg.C = 1000;
  cfg.f = 0.05;
  auto g = analyze_gap(cfg);
  g.t = 40;  // below the mean corrupt count of 50
  auto mc = sortition_monte_carlo(cfg, g, 100000, 1 << 12, 43);
  EXPECT_GT(mc.corruption_bound_failures, mc.trials / 2);
}

}  // namespace
}  // namespace yoso
