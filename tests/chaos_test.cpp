// Chaos campaign tests: schedule determinism and JSON round-trips, the
// machine-checked robustness contract over a seeded campaign (in-bounds
// schedules deliver, out-of-bounds schedules fail *classified*, post
// conservation, one-shot discipline), delta-debugging minimization of a
// planted failure, and graceful degradation to the Section 5.4 fail-stop
// regime verified against the ideal functionality with the retry's extra
// communication visible in the ledger.
#include <gtest/gtest.h>

#include <memory>

#include "chaos/campaign.hpp"
#include "chaos/minimize.hpp"
#include "circuit/workloads.hpp"
#include "mpc/ideal.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"
#include "yoso/adversary.hpp"

namespace yoso {
namespace {

using chaos::CampaignRunner;
using chaos::CampaignSummary;
using chaos::FaultSchedule;
using chaos::Outcome;
using chaos::RunReport;
using chaos::ScheduleMinimizer;

// --- FaultSchedule ----------------------------------------------------------

TEST(FaultScheduleTest, SamplerIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    EXPECT_EQ(FaultSchedule::random(seed), FaultSchedule::random(seed));
  }
  EXPECT_NE(FaultSchedule::random(1), FaultSchedule::random(2));
}

TEST(FaultScheduleTest, JsonRoundTripsExactly) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    FaultSchedule s = FaultSchedule::random(seed);
    EXPECT_EQ(FaultSchedule::from_json(s.to_json()), s) << s.to_json();
  }
}

TEST(FaultScheduleTest, JsonRejectsGarbageValues) {
  EXPECT_THROW(FaultSchedule::from_json("{\"seed\":oops}"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::from_json("{\"strategy\":9}"), std::invalid_argument);
}

TEST(FaultScheduleTest, InBoundsMatchesTheoremConditions) {
  FaultSchedule s;
  s.n = 6;
  s.eps = 0.25;  // t = 1, k = 2, recon = 4
  EXPECT_TRUE(s.in_bounds());

  s.malicious = 1;  // == t: still guaranteed
  EXPECT_TRUE(s.in_bounds());
  s.malicious = 2;  // > t
  EXPECT_FALSE(s.in_bounds());
  s.malicious = 1;

  s.failstop = 1;  // 4 speaking honest roles left == recon threshold
  EXPECT_TRUE(s.in_bounds());
  s.silenced = 1;  // 3 < 4
  EXPECT_FALSE(s.in_bounds());
  s.silenced = 0;
  s.failstop = 0;

  // Probabilistic loss voids the static guarantee...
  s.drop_prob = 0.01;
  EXPECT_FALSE(s.in_bounds());
  s.drop_prob = 0;
  // ...but duplicates and graced late posts are harmless.
  s.duplicate_prob = 0.5;
  EXPECT_TRUE(s.in_bounds());
  s.late_prob = 0.5;
  s.late_delay_s = 0.5;
  s.grace_window_s = 0;
  EXPECT_FALSE(s.in_bounds());
  s.grace_window_s = 1.0;
  EXPECT_TRUE(s.in_bounds());
}

TEST(FaultScheduleTest, ActiveFaultsCountsDimensions) {
  FaultSchedule s;
  EXPECT_EQ(s.active_faults(), 0u);
  s.malicious = 1;
  s.drop_prob = 0.1;
  s.late_prob = 0.2;
  EXPECT_EQ(s.active_faults(), 3u);
}

// --- The campaign contract --------------------------------------------------

TEST(ChaosCampaignTest, SmokeCampaignUpholdsTheContract) {
  // ~50 seeded schedules: every in-bounds run delivers GOD, every
  // out-of-bounds run fails classified — zero crashes, hangs, wrong
  // outputs, or invariant violations.  This is the CI chaos-smoke gate.
  CampaignSummary s = CampaignRunner::run_campaign(0xC7A05, 50);
  EXPECT_EQ(s.runs, 50u);
  EXPECT_TRUE(s.all_acceptable()) << s.to_json();
  EXPECT_EQ(s.crashed, 0u);
  EXPECT_EQ(s.wrong_output, 0u);
  EXPECT_EQ(s.invariant_violations, 0u);
  // The sampler must exercise both regimes.
  EXPECT_GT(s.correct, 0u);
  EXPECT_GT(s.classified, 0u);
}

TEST(ChaosCampaignTest, CampaignIsBitForBitDeterministic) {
  CampaignSummary a = CampaignRunner::run_campaign(7, 10);
  CampaignSummary b = CampaignRunner::run_campaign(7, 10);
  EXPECT_EQ(a.to_json(), b.to_json());
  // And per-run reports replay identically from their schedule JSON.
  FaultSchedule s = CampaignRunner::campaign_schedule(7, 3);
  RunReport r1 = CampaignRunner::run_one(s);
  RunReport r2 = CampaignRunner::run_one(FaultSchedule::from_json(s.to_json()));
  EXPECT_EQ(r1.to_json(), r2.to_json());
}

TEST(ChaosCampaignTest, OutOfBoundsAbortIsClassifiedWithConsistentCounts) {
  FaultSchedule s;
  s.seed = 31;
  s.n = 6;
  s.circuit_width = 1;
  s.malicious = 2;  // t = 1: one over the corruption bound
  s.failstop = 1;
  RunReport r = CampaignRunner::run_one(s);
  EXPECT_EQ(r.outcome, Outcome::ClassifiedAbort) << r.to_json();
  ASSERT_TRUE(r.failure.has_value());
  EXPECT_LT(r.failure->verified, r.failure->threshold);
  EXPECT_EQ(r.failure->roles(), s.n);
  EXPECT_FALSE(r.failure->gate.empty());
  EXPECT_FALSE(r.failure->committee.empty());
}

TEST(ChaosCampaignTest, WireFaultsConserveThePostLedger) {
  FaultSchedule s;
  s.seed = 77;
  s.n = 5;
  s.circuit_width = 1;
  s.drop_prob = 0.05;
  s.bitflip_prob = 0.1;
  s.truncate_prob = 0.1;
  s.duplicate_prob = 0.1;
  s.late_prob = 0.1;
  s.late_delay_s = 0.5;
  RunReport r = CampaignRunner::run_one(s);
  EXPECT_TRUE(r.acceptable()) << r.to_json();
  EXPECT_TRUE(r.violations.empty()) << r.to_json();
  EXPECT_EQ(r.posts_originated, r.posts_delivered + r.posts_dropped);
  EXPECT_GT(r.posts_dropped, 0u);  // the faults actually fired
}

// --- Minimization ------------------------------------------------------------

TEST(ScheduleMinimizerTest, PlantedFailureShrinksToMinimalReproducer) {
  // Plant a schedule with six active fault dimensions whose failure is
  // driven by malicious + failstop; the minimizer must strip the noise.
  FaultSchedule planted;
  planted.seed = 11;
  planted.n = 6;
  planted.circuit_width = 1;
  planted.malicious = 2;
  planted.failstop = 1;
  planted.silenced = 1;
  planted.duplicate_prob = 0.1;
  planted.extra_delay_s = 0.01;
  planted.late_prob = 0.1;
  planted.late_delay_s = 0.5;
  ASSERT_EQ(planted.active_faults(), 6u);

  const auto fails = [](const FaultSchedule& c) {
    RunReport r = CampaignRunner::run_one(c);
    return r.outcome != Outcome::Correct && r.outcome != Outcome::Recovered;
  };
  ASSERT_TRUE(fails(planted));
  auto res = ScheduleMinimizer::minimize(planted, fails);
  EXPECT_LE(res.schedule.active_faults(), 2u) << res.schedule.to_json();
  EXPECT_TRUE(fails(res.schedule));
  // The reproducer replays from its JSON.
  EXPECT_TRUE(fails(FaultSchedule::from_json(res.schedule.to_json())));
}

TEST(ScheduleMinimizerTest, RejectsPassingSchedule) {
  FaultSchedule healthy;
  healthy.n = 5;
  healthy.circuit_width = 1;
  EXPECT_THROW(ScheduleMinimizer::minimize(
                   healthy,
                   [](const FaultSchedule& c) {
                     return !CampaignRunner::run_one(c).acceptable();
                   }),
               std::invalid_argument);
}

// --- Graceful degradation ----------------------------------------------------

struct BoardBox {
  Ledger ledger;
  net::NetBulletin board;
  explicit BoardBox(net::NetConfig cfg) : board(ledger, std::move(cfg)) {}
};

TEST(DegradationTest, SilenceAbortRecoversUnderFailstopParams) {
  // Three silenced links per committee: the strict parameterization
  // (n = 6, t = 1, k = 2, recon = 4) hard-aborts — only 3 roles speak —
  // while the Section 5.4 retry (k = 1, recon = 2) completes.
  const unsigned n = 6;
  const double eps = 0.25;
  const std::uint64_t seed = 909;
  Circuit c = wide_mul_circuit(1);
  std::vector<std::vector<mpz_class>> inputs = {{mpz_class(21)}, {mpz_class(2)}};

  net::NetConfig cfg;
  cfg.faults.silence_per_committee = 3;
  std::vector<std::unique_ptr<BoardBox>> boards;
  auto factory = [&](bool) -> Bulletin* {
    boards.push_back(std::make_unique<BoardBox>(cfg));
    return &boards.back()->board;
  };

  DegradedRunResult d = run_with_degradation(n, eps, 128, c, AdversaryPlan::honest(n), seed,
                                             factory, inputs);
  ASSERT_TRUE(d.ok()) << (d.failure ? d.failure->describe() : "no failure report");
  EXPECT_TRUE(d.degraded);
  EXPECT_TRUE(d.recovered);
  ASSERT_TRUE(d.strict_failure.has_value());
  EXPECT_TRUE(d.strict_failure->silence_decisive());
  EXPECT_EQ(d.params_used.k, 1u);
  EXPECT_TRUE(d.params_used.failstop_mode);

  // Correctness against the ideal functionality F_MPC on the same inputs.
  IdealMpc ideal(2, 1, [&](const std::vector<mpz_class>& xs) {
    return c.eval({{xs[0]}, {xs[1]}}, d.plaintext_modulus);
  });
  ideal.input(0, inputs[0][0], 1);
  ideal.input(1, inputs[1][0], 1);
  ideal.evaluate(2);
  ASSERT_EQ(d.result->outputs.size(), 1u);
  EXPECT_EQ(d.result->outputs[0], ideal.read(0).value());
  EXPECT_EQ(d.result->outputs[0], mpz_class(42));

  // The recovery's sunk cost is ledger-visible: the retry board carries a
  // degrade.retry entry priced at the failed strict attempt's total bytes.
  ASSERT_EQ(boards.size(), 2u);
  EXPECT_GT(d.strict_attempt_bytes, 0u);
  EXPECT_EQ(boards[0]->ledger.total().bytes, d.strict_attempt_bytes);
  const auto& retry_cats = boards[1]->ledger.categories(Phase::Setup);
  ASSERT_TRUE(retry_cats.count("degrade.retry"));
  EXPECT_EQ(retry_cats.at("degrade.retry").bytes, d.strict_attempt_bytes);
  // Retry traffic itself exceeds the bookkeeping entry alone.
  EXPECT_GT(boards[1]->ledger.total().bytes, d.strict_attempt_bytes);
}

TEST(DegradationTest, MaliceDecisiveAbortIsNotRetried) {
  // Three malicious roles (t = 1): only 3 of 6 posts verify and none are
  // missing, so the shortfall is attributable to invalid contributions,
  // not silence — degrading would not help and must not run.
  const unsigned n = 6;
  Circuit c = wide_mul_circuit(1);
  std::vector<std::vector<mpz_class>> inputs = {{mpz_class(3)}, {mpz_class(4)}};
  std::vector<std::unique_ptr<BoardBox>> boards;
  auto factory = [&](bool) -> Bulletin* {
    boards.push_back(std::make_unique<BoardBox>(net::NetConfig{}));
    return &boards.back()->board;
  };
  DegradedRunResult d = run_with_degradation(
      n, 0.25, 128, c, AdversaryPlan::fixed(n, 3, 0, MaliciousStrategy::BadShare), 910,
      factory, inputs);
  EXPECT_FALSE(d.ok());
  EXPECT_FALSE(d.degraded);
  ASSERT_TRUE(d.failure.has_value());
  EXPECT_EQ(boards.size(), 1u);  // no second attempt
}

TEST(DegradationTest, CampaignSchedulesExerciseRecovery) {
  // Via the campaign surface: a degradation schedule whose strict run
  // aborts on silence ends in Outcome::Recovered with the sunk cost
  // reported.
  FaultSchedule s;
  s.seed = 911;
  s.n = 6;
  s.circuit_width = 1;
  s.silenced = 3;
  s.degradation = true;
  RunReport r = CampaignRunner::run_one(s);
  EXPECT_EQ(r.outcome, Outcome::Recovered) << r.to_json();
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.strict_attempt_bytes, 0u);
  EXPECT_TRUE(r.violations.empty()) << r.to_json();
}

// --- FailureReport -----------------------------------------------------------

TEST(FailureReportTest, DescribeAndJsonCarryTheDiagnosis) {
  FailureReport fr{FailureKind::Threshold, Phase::Online, "on.mult.L1", "online.mult", 4, 2, 1,
                   3};
  EXPECT_TRUE(fr.silence_decisive());  // 2 verified + 3 missing >= 4
  const std::string desc = fr.describe();
  EXPECT_NE(desc.find("online.mult"), std::string::npos);
  EXPECT_NE(desc.find("on.mult.L1"), std::string::npos);
  const std::string json = fr.to_json();
  for (const char* key : {"\"kind\"", "\"phase\"", "\"committee\"", "\"gate\"", "\"threshold\"",
                          "\"verified\"", "\"invalid\"", "\"missing\"", "\"silence_decisive\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }

  FailureReport malice{FailureKind::Threshold, Phase::Offline, "c", "g", 4, 1, 4, 1};
  EXPECT_FALSE(malice.silence_decisive());  // 1 + 1 < 4: silence alone is not enough

  ProtocolAbort abort(fr);
  ASSERT_TRUE(abort.report().has_value());
  EXPECT_EQ(abort.report()->gate, "online.mult");
  EXPECT_STREQ(abort.what(), fr.describe().c_str());
}

}  // namespace
}  // namespace yoso
