// Analytic communication-cost model of a full protocol execution.
//
// The ledger measures real runs at laptop-scale committees; this model
// expresses those counts as closed-form functions of (n, t, k, circuit),
// is *validated against the measured ledger* in the test suite, and then
// extrapolates to the paper-scale committee sizes of Table 1 — producing
// the end-to-end comparison (ours vs. the CDN baseline, offline + online)
// that a full paper's evaluation section would plot.
//
// Counts are broadcast ring/group elements; a deployment multiplies by the
// element size for its modulus.
#pragma once

#include <cstddef>

#include "circuit/circuit.hpp"
#include "mpc/params.hpp"
#include "sortition/analysis.hpp"

namespace yoso {

struct CircuitShape {
  std::size_t mul_gates = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  unsigned clients = 1;
  std::vector<std::size_t> per_layer;  // mul gates per multiplicative layer

  unsigned depth() const { return static_cast<unsigned>(per_layer.size()); }
  // Number of k-batches across all layers.
  std::size_t batches(unsigned k) const;

  static CircuitShape of(const Circuit& c);
  // A synthetic wide circuit: `width` independent products, one layer.
  static CircuitShape wide(std::size_t width, unsigned clients = 2);
};

// Elements broadcast by the packed protocol, per phase.
struct PackedCost {
  double offline = 0;
  double online = 0;
  double online_per_gate = 0;
};

// Elements broadcast by the CDN baseline (triples offline, two threshold
// decryptions per gate online).
struct CdnCost {
  double offline = 0;
  double online = 0;
  double online_per_gate = 0;
};

PackedCost packed_cost(const ProtocolParams& p, const CircuitShape& shape);
CdnCost cdn_cost(const ProtocolParams& p, const CircuitShape& shape);

// A Table 1 row turned into protocol parameters: n = round(c),
// t from the analysis, k the packing factor.
ProtocolParams params_from_analysis(const GapAnalysis& g, unsigned paillier_bits);

}  // namespace yoso
