#include "sortition/table1.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace yoso {

std::vector<Table1Row> generate_table1() {
  std::vector<Table1Row> rows;
  for (double C : {1000.0, 5000.0, 10000.0, 20000.0, 40000.0}) {
    for (double f : {0.05, 0.10, 0.15, 0.20, 0.25}) {
      SortitionConfig cfg;
      cfg.C = C;
      cfg.f = f;
      rows.push_back(Table1Row{C, f, analyze_gap(cfg)});
    }
  }
  return rows;
}

std::string render_table1(const std::vector<Table1Row>& rows) {
  std::ostringstream os;
  os << std::setw(7) << "C" << std::setw(7) << "f" << std::setw(9) << "t" << std::setw(9)
     << "c" << std::setw(9) << "c'" << std::setw(8) << "eps" << std::setw(9) << "k" << "\n";
  for (const auto& row : rows) {
    os << std::setw(7) << static_cast<long>(row.C) << std::setw(7) << std::fixed
       << std::setprecision(2) << row.f;
    if (!row.analysis.feasible) {
      os << std::setw(9) << "-" << std::setw(9) << "-" << std::setw(9) << "-" << std::setw(8)
         << "-" << std::setw(9) << "-" << "\n";
      continue;
    }
    os << std::setw(9) << static_cast<long>(std::llround(row.analysis.t)) << std::setw(9)
       << static_cast<long>(std::llround(row.analysis.c)) << std::setw(9)
       << static_cast<long>(std::llround(row.analysis.c_prime)) << std::setw(8)
       << std::setprecision(2) << row.analysis.eps << std::setw(9) << row.analysis.k << "\n";
  }
  return os.str();
}

const std::vector<PaperRow>& paper_table1() {
  static const std::vector<PaperRow> rows = {
      {1000, 0.05, 446, 949, 893, 0.03, 28},
      {5000, 0.05, 1078, 4699, 2157, 0.27, 1271},
      {5000, 0.10, 1721, 4925, 3444, 0.15, 741},
      {5000, 0.15, 2293, 5106, 4588, 0.05, 259},
      {10000, 0.05, 1754, 9518, 3509, 0.32, 3004},
      {10000, 0.10, 2937, 9841, 5876, 0.20, 1982},
      {10000, 0.15, 4004, 10098, 8009, 0.10, 1045},
      {10000, 0.20, 4983, 10319, 9968, 0.02, 175},
      {20000, 0.05, 2998, 19264, 5998, 0.34, 6633},
      {20000, 0.10, 5216, 19723, 10433, 0.24, 4645},
      {20000, 0.15, 7237, 20088, 14476, 0.14, 2806},
      {20000, 0.20, 9107, 20401, 18215, 0.05, 1093},
      {40000, 0.05, 5331, 38907, 10664, 0.36, 14121},
      {40000, 0.10, 9552, 39558, 19106, 0.26, 10226},
      {40000, 0.15, 13437, 40074, 26875, 0.16, 6600},
      {40000, 0.20, 17047, 40517, 34096, 0.08, 3211},
      {40000, 0.25, 20408, 40911, 40818, 0.01, 47},
  };
  return rows;
}

}  // namespace yoso
