#include "sortition/analysis.hpp"

#include <cmath>

namespace yoso {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}

double solve_eps1(double C, double f, unsigned k1, unsigned k2) {
  // C = (k1 + k2 + 1)(2 + eps1) ln2 / (f eps1^2)  =>
  // f C eps1^2 - A eps1 - 2A = 0 with A = (k1 + k2 + 1) ln2.
  const double A = (k1 + k2 + 1) * kLn2;
  const double M = f * C;
  return (A + std::sqrt(A * A + 8.0 * A * M)) / (2.0 * M);
}

double solve_eps2(double C, double f, unsigned k2) {
  const double A = (k2 + 1) * kLn2;
  const double M = f * (1.0 - f) * C;
  return (A + std::sqrt(A * A + 8.0 * A * M)) / (2.0 * M);
}

double solve_eps3(double C, double f, unsigned k3) {
  return std::sqrt(2.0 * k3 * kLn2 / (C * (1.0 - f) * (1.0 - f)));
}

GapAnalysis analyze_gap(const SortitionConfig& cfg) {
  GapAnalysis out;
  out.eps1 = solve_eps1(cfg.C, cfg.f, cfg.k1, cfg.k2);
  out.eps2 = solve_eps2(cfg.C, cfg.f, cfg.k2);
  out.eps3 = solve_eps3(cfg.C, cfg.f, cfg.k3);
  if (out.eps3 >= 1.0) return out;  // committee too small for the k3 bound

  const double B1 = cfg.f * cfg.C * (1.0 + out.eps1);
  const double B2 = cfg.f * (1.0 - cfg.f) * cfg.C * (1.0 + out.eps2);
  out.t = B1 + B2 + 1.0;

  // Right inequality of Eq. (6):
  //   delta <= (1 - eps3)(1-f)^2 C / (B1 + B2).
  out.delta_max = (1.0 - out.eps3) * (1.0 - cfg.f) * (1.0 - cfg.f) * cfg.C / (B1 + B2);
  if (out.delta_max <= 1.0) return out;  // not even eps = 0 achievable

  out.feasible = true;
  // delta = (1/2 + eps)/(1/2 - eps)  =>  eps = (delta - 1) / (2 (delta + 1)).
  out.eps = (out.delta_max - 1.0) / (2.0 * (out.delta_max + 1.0));
  out.c = out.t / (0.5 - out.eps);
  out.c_prime = 2.0 * out.t;
  out.k = static_cast<unsigned>(std::floor(out.c * out.eps));
  out.online_speedup = static_cast<double>(out.k);
  return out;
}

}  // namespace yoso
