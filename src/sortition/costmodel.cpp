#include "sortition/costmodel.hpp"

#include <cmath>

namespace yoso {

std::size_t CircuitShape::batches(unsigned k) const {
  std::size_t total = 0;
  for (auto m : per_layer) total += (m + k - 1) / k;
  return total;
}

CircuitShape CircuitShape::of(const Circuit& c) {
  CircuitShape s;
  s.mul_gates = c.num_mul_gates();
  s.inputs = c.num_inputs();
  s.outputs = c.outputs().size();
  s.clients = c.num_clients();
  for (const auto& layer : c.mul_gates_by_layer()) s.per_layer.push_back(layer.size());
  return s;
}

CircuitShape CircuitShape::wide(std::size_t width, unsigned clients) {
  CircuitShape s;
  s.mul_gates = width;
  s.inputs = 2 * width;
  s.outputs = width;
  s.clients = clients;
  s.per_layer = {width};
  return s;
}

PackedCost packed_cost(const ProtocolParams& p, const CircuitShape& shape) {
  const double n = p.n;
  const double M = static_cast<double>(shape.mul_gates);
  const double I = static_cast<double>(shape.inputs);
  const double O = static_cast<double>(shape.outputs);
  const double B = static_cast<double>(shape.batches(p.k));
  const double L = std::max<double>(shape.depth(), 0);

  PackedCost c;
  // Offline: Beaver (3nM) + wire randomness n(I + M + 3tB) + eps/delta
  // decryptions (2nM) + re-encryption masks/partials (3n per value, values
  // = I + 3nB) + tsk hand-overs ((L + 1) * 2n^2).
  const double reenc_values = I + 3 * n * B;
  c.offline = 3 * n * M + n * (I + M + 3 * p.t * B) + 2 * n * M + 3 * n * reenc_values +
              (L + 1) * 2 * n * n;
  // Online: FKD masks/partials over L*n roles + clients (+ output pads),
  // inputs, one element per role per batch, output partials, final
  // hand-over.
  const double fkd = L * n + shape.clients;
  c.online = 2 * n * (fkd + O) + n * fkd + I + n * B + n * O + 2 * n * n;
  c.online_per_gate = M > 0 ? (n * B) / M : 0;
  return c;
}

CdnCost cdn_cost(const ProtocolParams& p, const CircuitShape& shape) {
  const double n = p.n;
  const double M = static_cast<double>(shape.mul_gates);
  const double I = static_cast<double>(shape.inputs);
  const double O = static_cast<double>(shape.outputs);
  const double L = std::max<double>(shape.depth(), 0);

  CdnCost c;
  c.offline = 3 * n * M;  // Beaver triples
  // Online: inputs + two threshold decryptions per gate + layer hand-overs
  // + output re-encryption (masks + partials).
  c.online = I + 2 * n * M + L * 2 * n * n + 3 * n * O;
  c.online_per_gate = M > 0 ? (2 * n * M) / M : 0;
  return c;
}

ProtocolParams params_from_analysis(const GapAnalysis& g, unsigned paillier_bits) {
  ProtocolParams p;
  p.n = static_cast<unsigned>(std::llround(g.c));
  p.t = static_cast<unsigned>(std::llround(g.t));
  p.k = std::max(1u, g.k);
  p.epsilon = g.eps;
  p.paillier_bits = paillier_bits;
  // Ensure the GOD constraint holds after rounding.
  while (p.k > 1 && p.recon_threshold() > p.n - p.t) --p.k;
  return p;
}

}  // namespace yoso
