// Monte-Carlo validation of the sortition tail bounds (Section 6 / [6]).
//
// The analytic bounds use k2 = k3 = 128 bits, far beyond what sampling can
// confirm; the experiment therefore re-runs the analysis at *small* k2/k3
// (10-20 bits) and checks that the empirical failure rates stay below the
// claimed 2^-k bounds — validating the *shape* of the Chernoff analysis.
#pragma once

#include <cstdint>

#include "sortition/analysis.hpp"

namespace yoso {

struct McResult {
  std::uint64_t trials = 0;
  std::uint64_t corruption_bound_failures = 0;  // phi >= t           (the k2 event)
  std::uint64_t honest_bound_failures = 0;      // honest < delta * t (the k3 event)
  double mean_committee_size = 0;
  double mean_corrupt = 0;
};

// Samples `trials` committees via binomial self-selection out of a pool of
// `pool` machines with f * pool corrupt, and measures how often the bounds
// from `analysis` (computed at the caller's k2/k3) fail.
McResult sortition_monte_carlo(const SortitionConfig& cfg, const GapAnalysis& analysis,
                               std::uint64_t pool, std::uint64_t trials, std::uint64_t seed);

}  // namespace yoso
