#include "sortition/montecarlo.hpp"

#include <cmath>

#include "crypto/rand.hpp"

namespace yoso {

namespace {

// Binomial(n, p) sampler; for the committee sizes involved a direct
// normal-approximation-free inversion would be slow, so we use the
// waiting-time (geometric skip) method, O(np) expected.
std::uint64_t binomial(Rng& rng, std::uint64_t n, double p) {
  if (p <= 0) return 0;
  if (p >= 1) return n;
  // For moderate n*p, straightforward Bernoulli summation in blocks using
  // the geometric trick: skip ~Geom(p) failures at a time.
  std::uint64_t count = 0;
  double log1mp = std::log1p(-p);
  std::uint64_t i = 0;
  while (true) {
    double u = rng.uniform01();
    if (u <= 0) u = 1e-300;
    std::uint64_t skip = static_cast<std::uint64_t>(std::log(u) / log1mp);
    i += skip + 1;
    if (i > n) break;
    ++count;
  }
  return count;
}

}  // namespace

McResult sortition_monte_carlo(const SortitionConfig& cfg, const GapAnalysis& analysis,
                               std::uint64_t pool, std::uint64_t trials, std::uint64_t seed) {
  Rng rng(seed);
  McResult out;
  out.trials = trials;
  const double p = cfg.C / static_cast<double>(pool);
  const std::uint64_t corrupt_pool = static_cast<std::uint64_t>(cfg.f * pool);
  const std::uint64_t honest_pool = pool - corrupt_pool;

  double sum_size = 0, sum_corrupt = 0;
  for (std::uint64_t it = 0; it < trials; ++it) {
    std::uint64_t phi = binomial(rng, corrupt_pool, p);     // corrupt members
    std::uint64_t eta = binomial(rng, honest_pool, p);      // honest members
    std::uint64_t size = phi + eta;
    sum_size += static_cast<double>(size);
    sum_corrupt += static_cast<double>(phi);
    if (static_cast<double>(phi) >= analysis.t) ++out.corruption_bound_failures;
    // The k3 event (Eq. 3): honest members >= delta * t with
    // delta = (1/2 + eps)/(1/2 - eps).
    if (analysis.feasible) {
      double delta = (0.5 + analysis.eps) / (0.5 - analysis.eps);
      if (static_cast<double>(eta) < delta * analysis.t) ++out.honest_bound_failures;
    }
  }
  out.mean_committee_size = sum_size / static_cast<double>(trials);
  out.mean_corrupt = sum_corrupt / static_cast<double>(trials);
  return out;
}

}  // namespace yoso
