// Generator for Table 1 of the paper ("Sample parameters"): the sortition
// analysis evaluated over C in {1000, 5000, 10000, 20000, 40000} and
// f in {0.05, 0.10, 0.15, 0.20, 0.25}.
#pragma once

#include <string>
#include <vector>

#include "sortition/analysis.hpp"

namespace yoso {

struct Table1Row {
  double C = 0;
  double f = 0;
  GapAnalysis analysis;
};

// The paper's 25 (C, f) cells, in the paper's order.
std::vector<Table1Row> generate_table1();

// Renders the table in the paper's column layout
// (C, f, t, c, c', eps, k); infeasible cells print as "-".
std::string render_table1(const std::vector<Table1Row>& rows);

// The paper's reference values for the feasible cells, used by the tests
// and EXPERIMENTS.md to diff our reproduction against the publication.
struct PaperRow {
  double C, f;
  unsigned t, c, c_prime;
  double eps;
  unsigned k;
};
const std::vector<PaperRow>& paper_table1();

}  // namespace yoso
