// Committee-size analysis with a corruption "gap" (Section 6).
//
// Generalizes the Benhamouda et al. [6] cryptographic-sortition analysis:
// given the sortition parameter C (the expected committee size: each of the
// N machines self-selects with probability C/N) and a global corruption
// ratio f, find the corruption bound t, the guaranteed committee size
// c = t / (1/2 - eps), and the largest achievable gap eps > 0 — hence the
// packing factor k ~ c * eps the paper's protocol can exploit.
//
// Security parameters (defaults as in the paper): the adversary gets 2^k1
// sortition attempts; phi < t must hold except with prob. 2^-k2; the
// committee-size bound must hold except with prob. 2^-k3.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace yoso {

struct SortitionConfig {
  double C = 1000;      // expected committee size (sortition parameter)
  double f = 0.05;      // global corruption ratio
  unsigned k1 = 64;     // adversary's sortition grinding budget (bits)
  unsigned k2 = 128;    // corruption-bound failure probability (bits)
  unsigned k3 = 128;    // committee-size failure probability (bits)
};

struct GapAnalysis {
  bool feasible = false;  // delta_max > 1, i.e. some eps > 0 exists
  double eps1 = 0, eps2 = 0, eps3 = 0;  // the Chernoff slack parameters
  double delta_max = 0;   // largest delta = (1/2+eps)/(1/2-eps) satisfying Eq. 6
  double eps = 0;         // the gap
  double t = 0;           // corruption bound (B1 + B2 + 1)
  double c = 0;           // committee-size lower bound with the gap
  double c_prime = 0;     // committee-size lower bound at eps = 0 (i.e. 2t)
  unsigned k = 0;         // packing factor ~ c * eps
  double online_speedup = 0;  // = k (the paper's online improvement factor)
};

// Solves Eqs. (2)-(6) for the given configuration.
GapAnalysis analyze_gap(const SortitionConfig& cfg);

// Smallest eps1 satisfying Eq. (2), first term (closed form, Eq. (4)).
double solve_eps1(double C, double f, unsigned k1, unsigned k2);
// Smallest eps2 satisfying Eq. (2), second term (closed form, Eq. (5)).
double solve_eps2(double C, double f, unsigned k2);
// Smallest eps3 satisfying the left constraint of Eq. (6).
double solve_eps3(double C, double f, unsigned k3);

}  // namespace yoso
