#include "net/link.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "net/wire_faults.hpp"  // mix64 / mix64_str (deterministic draws)

namespace yoso::net {

std::size_t LinkModel::frames_for(std::size_t bytes) const {
  if (bytes == 0) return 1;
  return (bytes + frame_mtu - 1) / frame_mtu;
}

std::size_t LinkModel::wire_bytes(std::size_t bytes) const {
  return bytes + frames_for(bytes) * frame_overhead;
}

double LinkModel::transmit_seconds(std::size_t bytes) const {
  return static_cast<double>(wire_bytes(bytes)) * 8.0 / bandwidth_bps;
}

LinkModel LinkModel::lan() {
  LinkModel m;
  m.name = "lan";
  m.latency_s = 0.0005;
  m.bandwidth_bps = 1e9;
  m.frame_mtu = 1500;
  m.frame_overhead = 66;
  return m;
}

LinkModel LinkModel::wan() {
  LinkModel m;
  m.name = "wan";
  m.latency_s = 0.050;
  m.bandwidth_bps = 50e6;
  m.frame_mtu = 1500;
  m.frame_overhead = 66;
  return m;
}

LinkModel LinkModel::geo_metro() {
  LinkModel m;
  m.name = "geo-metro";
  m.latency_s = 0.005;
  m.bandwidth_bps = 400e6;
  m.frame_mtu = 1500;
  m.frame_overhead = 66;
  return m;
}

LinkModel LinkModel::geo_continental() {
  LinkModel m;
  m.name = "geo-continental";
  m.latency_s = 0.030;
  m.bandwidth_bps = 100e6;
  m.frame_mtu = 1500;
  m.frame_overhead = 66;
  return m;
}

LinkModel LinkModel::geo_intercontinental() {
  LinkModel m;
  m.name = "geo-intercontinental";
  m.latency_s = 0.130;
  m.bandwidth_bps = 25e6;
  m.frame_mtu = 1500;
  m.frame_overhead = 66;
  return m;
}

LinkModel LinkModel::mobile() {
  LinkModel m;
  m.name = "mobile";
  m.latency_s = 0.060;
  m.bandwidth_bps = 12e6;
  m.frame_mtu = 1400;  // tunneled MTU
  m.frame_overhead = 80;
  return m;
}

LinkModel LinkModel::by_name(const std::string& name) {
  if (name == "lan") return lan();
  if (name == "wan") return wan();
  if (name == "geo-metro") return geo_metro();
  if (name == "geo-continental") return geo_continental();
  if (name == "geo-intercontinental") return geo_intercontinental();
  if (name == "mobile") return mobile();
  if (name == "blockchain-bb") return blockchain_bb();
  throw std::invalid_argument("LinkModel: unknown link class '" + name + "'");
}

const std::vector<std::string>& LinkModel::class_names() {
  static const std::vector<std::string> names = {
      "lan",    "wan",    "geo-metro", "geo-continental", "geo-intercontinental",
      "mobile", "blockchain-bb"};
  return names;
}

LinkModel LinkModel::blockchain_bb() {
  LinkModel m;
  m.name = "blockchain-bb";
  m.latency_s = 12.0;        // block interval: publication = inclusion
  m.bandwidth_bps = 2e6;     // effective goodput toward the chain
  m.frame_mtu = 1u << 17;    // transactions, not ethernet frames
  m.frame_overhead = 512;    // envelope + signature per transaction
  return m;
}

std::string LinkModel::describe() const {
  std::ostringstream os;
  os << name << " (latency " << latency_s * 1e3 << " ms, " << bandwidth_bps / 1e6
     << " Mbps, mtu " << frame_mtu << " + " << frame_overhead << "B/frame)";
  return os.str();
}

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::StarViaBoard: return "star-via-board";
    case Topology::UniformMesh: return "uniform-mesh";
  }
  return "?";
}

const LinkModel& LinkClassMix::pick(const std::string& party) const {
  if (classes.size() == 1) return classes.front();
  double total = 0;
  for (double w : weights) total += w;
  // Uniform over classes when the weights are degenerate.
  const std::uint64_t h = mix64(mix64_str(seed, party));
  if (total <= 0) return classes[h % classes.size()];
  double u = static_cast<double>(h >> 11) * 0x1.0p-53 * total;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    u -= weights[i];
    if (u < 0) return classes[i];
  }
  return classes.back();
}

LinkClassMix LinkClassMix::geo(std::uint64_t seed) {
  LinkClassMix m;
  m.name = "geo-mix";
  m.classes = {LinkModel::geo_metro(), LinkModel::geo_continental(),
               LinkModel::geo_intercontinental()};
  m.weights = {0.4, 0.4, 0.2};
  m.seed = seed;
  return m;
}

LinkClassMix LinkClassMix::mobile_edge(std::uint64_t seed) {
  LinkClassMix m;
  m.name = "mobile-edge";
  m.classes = {LinkModel::geo_continental(), LinkModel::mobile()};
  m.weights = {0.5, 0.5};
  m.seed = seed;
  return m;
}

LinkClassMix LinkClassMix::by_name(const std::string& name, std::uint64_t seed) {
  if (name == "geo-mix") return geo(seed);
  if (name == "mobile-edge") return mobile_edge(seed);
  // A uniform preset wrapped as a one-class mix.
  LinkClassMix m;
  m.name = name;
  m.classes = {LinkModel::by_name(name)};  // throws on an unknown name
  m.weights = {1.0};
  m.seed = seed;
  return m;
}

bool ChurnPlan::leaves(const std::string& committee, unsigned role) const {
  if (leave_prob <= 0) return false;
  const std::uint64_t h = mix64(mix64_str(seed, committee) ^ role);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < leave_prob;
}

}  // namespace yoso::net
