#include "net/link.hpp"

#include <cstdint>
#include <sstream>

namespace yoso::net {

std::size_t LinkModel::frames_for(std::size_t bytes) const {
  if (bytes == 0) return 1;
  return (bytes + frame_mtu - 1) / frame_mtu;
}

std::size_t LinkModel::wire_bytes(std::size_t bytes) const {
  return bytes + frames_for(bytes) * frame_overhead;
}

double LinkModel::transmit_seconds(std::size_t bytes) const {
  return static_cast<double>(wire_bytes(bytes)) * 8.0 / bandwidth_bps;
}

LinkModel LinkModel::lan() {
  LinkModel m;
  m.name = "lan";
  m.latency_s = 0.0005;
  m.bandwidth_bps = 1e9;
  m.frame_mtu = 1500;
  m.frame_overhead = 66;
  return m;
}

LinkModel LinkModel::wan() {
  LinkModel m;
  m.name = "wan";
  m.latency_s = 0.050;
  m.bandwidth_bps = 50e6;
  m.frame_mtu = 1500;
  m.frame_overhead = 66;
  return m;
}

LinkModel LinkModel::blockchain_bb() {
  LinkModel m;
  m.name = "blockchain-bb";
  m.latency_s = 12.0;        // block interval: publication = inclusion
  m.bandwidth_bps = 2e6;     // effective goodput toward the chain
  m.frame_mtu = 1u << 17;    // transactions, not ethernet frames
  m.frame_overhead = 512;    // envelope + signature per transaction
  return m;
}

std::string LinkModel::describe() const {
  std::ostringstream os;
  os << name << " (latency " << latency_s * 1e3 << " ms, " << bandwidth_bps / 1e6
     << " Mbps, mtu " << frame_mtu << " + " << frame_overhead << "B/frame)";
  return os.str();
}

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::StarViaBoard: return "star-via-board";
    case Topology::UniformMesh: return "uniform-mesh";
  }
  return "?";
}

}  // namespace yoso::net
