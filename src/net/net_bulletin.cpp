#include "net/net_bulletin.hpp"

#include <algorithm>

#include "common/json.hpp"
#include "crypto/ct.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "wire/codec.hpp"

namespace yoso::net {

namespace {

std::size_t phase_idx(Phase p) { return static_cast<std::size_t>(p); }

const char* phase_key(std::size_t idx) {
  switch (idx) {
    case 0: return "setup";
    case 1: return "offline";
    case 2: return "online";
  }
  return "?";
}

}  // namespace

NetBulletin::NetBulletin(Ledger& ledger, NetConfig cfg)
    : Bulletin(ledger), cfg_(std::move(cfg)),
      transport_(loop_, cfg_.link, cfg_.topology, cfg_.observers, cfg_.faults,
                 cfg_.link_mix) {
#ifndef OBS_DISABLED
  // Spans begun while this board is alive get deterministic virtual
  // timestamps.  Keyed by `this` so destroying an old board (degradation
  // retries, chaos campaigns) cannot clobber a newer board's clock.
  obs::tracer().attach_virtual_clock(this, [this] { return clock_; });
#endif
}

NetBulletin::~NetBulletin() {
#ifndef OBS_DISABLED
  obs::tracer().detach_virtual_clock(this);
#endif
}

bool NetBulletin::roundtrip_ok(const std::vector<std::uint8_t>& payload) {
  try {
    std::vector<std::uint8_t> again;
    switch (peek_tag(payload)) {
      case kTagLinkProof: again = encode_link_proof(decode_link_proof(payload)); break;
      case kTagMultProof: again = encode_mult_proof(decode_mult_proof(payload)); break;
      case kTagRootProof: again = encode_root_proof(decode_root_proof(payload)); break;
      case kTagMaskMsg: again = encode_mask_msg(decode_mask_msg(payload)); break;
      case kTagHandoverMsg: again = encode_handover_msg(decode_handover_msg(payload)); break;
      case kTagFutureCt: again = encode_future_ct(decode_future_ct(payload)); break;
      case kTagPdecMsg: again = encode_pdec_msg(decode_pdec_msg(payload)); break;
      case kTagContribMsg: again = encode_contrib_msg(decode_contrib_msg(payload)); break;
      case kTagBeaverMsg: again = encode_beaver_msg(decode_beaver_msg(payload)); break;
      case kTagMultShareMsg: again = encode_mult_share_msg(decode_mult_share_msg(payload)); break;
      case kTagMaskBatch: again = encode_mask_batch(decode_mask_batch(payload)); break;
      default: return false;
    }
    // Compare round-trip digests instead of the raw byte vectors: the digest
    // comparison runs in time independent of where the first mismatch falls.
    const Sha256::Digest d_again = Sha256::hash(again.data(), again.size());
    const Sha256::Digest d_payload = Sha256::hash(payload.data(), payload.size());
    return ct_equal(d_again, d_payload);
  } catch (const CodecError&) {
    return false;
  }
}

// Runs a fault-mutated payload through the decoder: it must either reject
// with CodecError (counted as a clean rejection) or decode to some value (a
// flip inside a bignum body is syntactically valid — the frame checksum is
// what rejects the post).  Anything else (crash, UB) is caught by the
// sanitizer jobs running the chaos campaign.
void NetBulletin::probe_mutated(std::vector<std::uint8_t> mutated) {
  if (mutated.empty()) {
    ++fuzz_rejected_;
    return;
  }
  if (roundtrip_ok(mutated)) {
    ++fuzz_decoded_;
  } else {
    ++fuzz_rejected_;
  }
}

void NetBulletin::enqueue(std::string round_key, Phase phase, std::string sender,
                          std::size_t bytes, const std::vector<std::uint8_t>* payload,
                          bool link_dropped, double release_delay) {
  if (payload != nullptr && cfg_.decode_check && !roundtrip_ok(*payload)) ++decode_failures_;
  if (!pending_.empty() && (round_key != pending_key_ || phase != pending_phase_)) flush();
  pending_key_ = std::move(round_key);
  pending_phase_ = phase;
  pending_.push_back(PendingPost{std::move(sender), bytes, link_dropped, release_delay});
}

PostStatus NetBulletin::publish(Committee& committee, unsigned index0, Phase phase,
                                const std::string& label, std::size_t bytes,
                                std::size_t elements, bool first_post_of_role,
                                const std::vector<std::uint8_t>* payload) {
  // Close the compute window since the previous publish boundary: the delta
  // belongs to the posting role (the protocol interleaves "compute message
  // j, publish j"); everything between here and dag_.end_post — the
  // decode-check round-trip, fault probing — is the post's pipeline work.
  dag_.begin_post(committee.name, index0, static_cast<std::uint8_t>(phase_idx(phase)),
                  /*external=*/false);
  Bulletin::publish(committee, index0, phase, label, bytes, elements, first_post_of_role,
                    payload);
  // A committee that begins publishing has just activated; in the YOSO
  // handover order it consumed everything already on the board, so pending
  // flow edges resolve to it on its first post.  (Resolution cannot happen
  // at spawn time: YosoMpc spawns the whole committee schedule up front,
  // before any of them act.)
  if (committee.name != flow_actor_) {
    flow_.resolve(committee.name);
    flow_actor_ = committee.name;
  }
  if (payload != nullptr) bytes = payload->size();  // price the real serialized message
  const std::string sender = committee.name + "#" + std::to_string(index0);
  const std::string key = "c:" + committee.name;
  PhasePosts& pp = posts(phase);
  ++pp.originated;
  OBS_HIST("post.bytes", bytes);

  // Link-level fate first: a post lost on the sender's uplink never reaches
  // the board, whatever its payload.
  if (transport_.roll_drop(sender)) {
    ++pp.dropped_link;
    OBS_COUNT("post.dropped_link");
    obs::Span("post.dropped_link", "net").attr("sender", sender).attr("phase", phase_name(phase));
    enqueue(key, phase, sender, bytes, payload, /*link_dropped=*/true, 0);
    dag_.end_post(label, bytes, /*delivered=*/false);
    return PostStatus::DroppedLink;
  }

  // Wire-level fate: at most one fault per post, deterministic from
  // (seed, sender, sequence).
  std::uint64_t aux = 0;
  const WireFault fault = cfg_.wire_faults.roll(sender, ++post_seq_, &aux);
  switch (fault) {
    case WireFault::BitFlip: {
      if (payload != nullptr && !payload->empty()) {
        std::vector<std::uint8_t> flipped = *payload;
        const std::uint64_t bit = aux % (static_cast<std::uint64_t>(flipped.size()) * 8);
        flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        probe_mutated(std::move(flipped));
      }
      ++pp.corrupt;
      OBS_COUNT("post.corrupt");
      obs::Span("post.corrupt", "net").attr("sender", sender).attr("phase", phase_name(phase));
      enqueue(key, phase, sender, bytes, payload, /*link_dropped=*/false, 0);
      dag_.end_post(label, bytes, /*delivered=*/false);
      return PostStatus::CorruptPayload;
    }
    case WireFault::Truncate: {
      std::size_t cut = bytes == 0 ? 0 : static_cast<std::size_t>(aux % bytes);
      if (payload != nullptr && !payload->empty()) {
        std::vector<std::uint8_t> shorter = *payload;
        shorter.resize(std::min<std::size_t>(cut, shorter.size()));
        probe_mutated(std::move(shorter));
      }
      ++pp.truncated;
      OBS_COUNT("post.truncated");
      obs::Span("post.truncated", "net").attr("sender", sender).attr("phase", phase_name(phase));
      // Only the truncated prefix ever hit the wire.
      enqueue(key, phase, sender, cut, nullptr, /*link_dropped=*/false, 0);
      dag_.end_post(label, bytes, /*delivered=*/false);
      return PostStatus::Truncated;
    }
    case WireFault::Duplicate: {
      // The original counts; the replayed copy is priced on the wire but the
      // board's one-shot discipline ignores it.
      ++pp.delivered;
      flow_.record(committee.name, label, static_cast<std::uint8_t>(phase_idx(phase)), bytes,
                   elements);
      enqueue(key, phase, sender, bytes, payload, /*link_dropped=*/false, 0);
      ++pp.originated;
      ++pp.duplicate;
      OBS_COUNT("post.accepted");
      OBS_COUNT("post.duplicate");
      obs::Span("post.duplicate", "net").attr("sender", sender).attr("phase", phase_name(phase));
      const bool dup_dropped = transport_.roll_drop(sender);
      enqueue(key, phase, sender, bytes, nullptr, dup_dropped, 0);
      // One DAG post for the original only: the injected copy never becomes
      // a board post, so it must never grow consume edges.
      dag_.end_post(label, bytes, /*delivered=*/true);
      return PostStatus::Accepted;
    }
    case WireFault::LatePost: {
      const double delay = cfg_.wire_faults.late_delay_s;
      if (delay <= cfg_.grace_window_s) {
        ++pp.delivered;
        ++pp.late_graced;
        OBS_COUNT("post.accepted");
        OBS_COUNT("post.late_graced");
        flow_.record(committee.name, label, static_cast<std::uint8_t>(phase_idx(phase)), bytes,
                     elements);
        enqueue(key, phase, sender, bytes, payload, /*link_dropped=*/false, delay);
        dag_.end_post(label, bytes, /*delivered=*/true);
        return PostStatus::Accepted;
      }
      ++pp.late;
      OBS_COUNT("post.late");
      obs::Span("post.late", "net").attr("sender", sender).attr("phase", phase_name(phase));
      enqueue(key, phase, sender, bytes, payload, /*link_dropped=*/false, delay);
      dag_.end_post(label, bytes, /*delivered=*/false);
      return PostStatus::Late;
    }
    case WireFault::None: break;
  }
  ++pp.delivered;
  OBS_COUNT("post.accepted");
  flow_.record(committee.name, label, static_cast<std::uint8_t>(phase_idx(phase)), bytes,
               elements);
  enqueue(key, phase, sender, bytes, payload, /*link_dropped=*/false, 0);
  dag_.end_post(label, bytes, /*delivered=*/true);
  return PostStatus::Accepted;
}

void NetBulletin::publish_external(const std::string& who, Phase phase, const std::string& label,
                                   std::size_t bytes, std::size_t elements,
                                   const std::vector<std::uint8_t>* payload) {
  dag_.begin_post(who, 0, static_cast<std::uint8_t>(phase_idx(phase)), /*external=*/true);
  Bulletin::publish_external(who, phase, label, bytes, elements, payload);
  if (payload != nullptr) bytes = payload->size();
  // External senders (clients, the dealer) are outside the committee fault
  // plans: their posts always count.
  PhasePosts& pp = posts(phase);
  ++pp.originated;
  ++pp.delivered;
  flow_.record(who, label, static_cast<std::uint8_t>(phase_idx(phase)), bytes, elements);
  enqueue("x:" + label, phase, who, bytes, payload, /*link_dropped=*/false, 0);
  dag_.end_post(label, bytes, /*delivered=*/true);
}

void NetBulletin::on_committee_spawn(Committee& committee) {
  if (transport_.observers() == 0) transport_.set_observers(committee.n());
  // Churn first: a role whose member left between activations is silent
  // regardless of the link fault plan.  Silence injection below then skips
  // already-churned roles (they are no longer Honest), so the two fault
  // sources stack rather than overlap.
  unsigned churned = 0;
  if (!cfg_.churn.empty()) {
    for (unsigned i = 0; i < committee.n(); ++i) {
      if (cfg_.churn.max_per_committee != 0 && churned >= cfg_.churn.max_per_committee) break;
      if (committee.corruption.status[i] != RoleStatus::Honest) continue;
      if (!cfg_.churn.leaves(committee.name, i)) continue;
      committee.corruption.status[i] = RoleStatus::FailStop;
      ++churned;
    }
  }
  roles_churned_ += churned;
  unsigned silenced = 0;
  for (unsigned i = committee.n(); i-- > 0 && silenced < cfg_.faults.silence_per_committee;) {
    if (committee.corruption.status[i] == RoleStatus::Honest) {
      committee.corruption.status[i] = RoleStatus::FailStop;
      ++silenced;
    }
  }
  roles_silenced_ += silenced;
}

void NetBulletin::flush() {
  if (pending_.empty()) return;
  PhaseTraffic& pt = traffic_[phase_idx(pending_phase_)];
  const double round_start = clock_;
  std::size_t round_bytes = 0;
  const std::size_t round_posts = pending_.size();
  for (const PendingPost& p : pending_) {
    transport_.broadcast_decided(p.sender, p.bytes, clock_ + p.release_delay, p.link_dropped);
    pt.messages += 1;
    pt.payload_bytes += p.bytes;
    round_bytes += p.bytes;
  }
  transport_.run();
  const double round_end = std::max(clock_, transport_.last_delivery());
  pt.seconds += round_end - clock_;
  pt.rounds += 1;
  clock_ = round_end;
  pending_.clear();
  pending_key_.clear();
#ifndef OBS_DISABLED
  // Sample the round's shape on the virtual clock: what was in flight, how
  // deep the board queue ran, and the bandwidth the round achieved.  These
  // render as Perfetto counter tracks under the span timeline.
  //
  // Handles are resolved once and cached (docs/OBSERVABILITY.md, "Cached
  // handles"): flush() runs every broadcast round, and the per-call lookup
  // — registry lock plus string hash, with a string concatenation for the
  // bandwidth series — was the last repeated registry access on the net hot
  // path.  Registry handles are stable for the process lifetime (reset()
  // clears points, never nodes), so the cached pointers never dangle.
  static obs::Series* const queue_posts = &obs::timeseries().series("net.queue.posts");
  static obs::Series* const inflight = &obs::timeseries().series("net.inflight.bytes");
  static obs::Series* const bw_by_phase[3] = {
      &obs::timeseries().series("net.bw.setup"),
      &obs::timeseries().series("net.bw.offline"),
      &obs::timeseries().series("net.bw.online"),
  };
  queue_posts->sample(round_start, static_cast<double>(round_posts));
  inflight->sample(round_start, static_cast<double>(round_bytes));
  inflight->sample(round_end, 0);
  const std::size_t pidx = phase_idx(pending_phase_);
  if (round_end > round_start && pidx < 3) {
    bw_by_phase[pidx]->sample(round_end,
                              static_cast<double>(round_bytes) / (round_end - round_start));
  }
#else
  (void)round_start;
  (void)round_posts;
#endif
}

double NetBulletin::elapsed() {
  flush();
  return clock_;
}

const PhaseTraffic& NetBulletin::phase_traffic(Phase phase) {
  flush();
  return traffic_[phase_idx(phase)];
}

const TransportStats& NetBulletin::stats() {
  flush();
  return transport_.stats();
}

const PhasePosts& NetBulletin::phase_posts(Phase phase) const {
  return posts_[phase_idx(phase)];
}

const obs::FlowMatrix& NetBulletin::flow() {
  flush();
  flow_.finalize("observers");
  return flow_;
}

const obs::dag::DagRecorder& NetBulletin::dag() {
  flush();
  dag_.finalize();
  return dag_;
}

PhasePosts NetBulletin::total_posts() const {
  PhasePosts total;
  for (const PhasePosts& pp : posts_) {
    total.originated += pp.originated;
    total.delivered += pp.delivered;
    total.dropped_link += pp.dropped_link;
    total.corrupt += pp.corrupt;
    total.truncated += pp.truncated;
    total.late += pp.late;
    total.duplicate += pp.duplicate;
    total.late_graced += pp.late_graced;
  }
  return total;
}

std::string NetBulletin::report_json() const {
  const_cast<NetBulletin*>(this)->flush();
  const TransportStats& ts = transport_.stats();
  json::Writer w;
  w.begin_object();
  // Self-describing header: what build/obs generation produced this report
  // (obs/report.hpp) — cross-run diffs warn on mismatch instead of
  // reporting spurious deltas.
  w.key("meta").raw(obs::run_metadata_json());
  w.field("link", cfg_.link_mix.empty() ? cfg_.link.name : cfg_.link_mix.name);
  w.field("topology", topology_name(cfg_.topology));
  w.field("elapsed_s", clock_);
  // Always stated, even when zero: an absent key would be ambiguous between
  // "grace disabled" and "no grace configured".
  w.field("grace_window_s", cfg_.grace_window_s);
  w.key("phases").begin_object();
  for (std::size_t i = 0; i < traffic_.size(); ++i) {
    const PhaseTraffic& pt = traffic_[i];
    const PhasePosts& pp = posts_[i];
    w.key(phase_key(i)).begin_object();
    w.field("seconds", pt.seconds);
    w.field("rounds", static_cast<std::uint64_t>(pt.rounds));
    w.field("messages", static_cast<std::uint64_t>(pt.messages));
    w.field("payload_bytes", static_cast<std::uint64_t>(pt.payload_bytes));
    w.key("posts").begin_object();
    w.field("originated", static_cast<std::uint64_t>(pp.originated));
    w.field("delivered", static_cast<std::uint64_t>(pp.delivered));
    w.field("dropped", static_cast<std::uint64_t>(pp.dropped()));
    w.field("dropped_link", static_cast<std::uint64_t>(pp.dropped_link));
    w.field("corrupt", static_cast<std::uint64_t>(pp.corrupt));
    w.field("truncated", static_cast<std::uint64_t>(pp.truncated));
    w.field("late", static_cast<std::uint64_t>(pp.late));
    w.field("duplicate", static_cast<std::uint64_t>(pp.duplicate));
    w.field("late_graced", static_cast<std::uint64_t>(pp.late_graced));
    w.end_object();
    w.end_object();
  }
  w.end_object();
  const PhasePosts total = total_posts();
  w.field("delivered", static_cast<std::uint64_t>(ts.delivered));
  w.field("dropped", static_cast<std::uint64_t>(ts.dropped));
  w.field("downlink_queue_s", ts.downlink_queue_seconds);
  w.field("posts_originated", static_cast<std::uint64_t>(total.originated));
  w.field("posts_delivered", static_cast<std::uint64_t>(total.delivered));
  w.field("posts_dropped", static_cast<std::uint64_t>(total.dropped()));
  w.field("decode_failures", static_cast<std::uint64_t>(decode_failures_));
  w.field("fuzz_rejected", static_cast<std::uint64_t>(fuzz_rejected_));
  w.field("fuzz_decoded", static_cast<std::uint64_t>(fuzz_decoded_));
  w.field("roles_silenced", static_cast<std::uint64_t>(roles_silenced_));
  w.field("roles_churned", static_cast<std::uint64_t>(roles_churned_));
  if (!ts.link_class_counts.empty()) {
    w.key("link_classes").begin_object();
    for (const auto& [cls, count] : ts.link_class_counts) {
      w.field(cls, static_cast<std::uint64_t>(count));
    }
    w.end_object();
  }
  w.key("flow").begin_object();
  {
    // flow() flushes and finalizes pending edges to "observers".
    const obs::FlowMatrix& fm = const_cast<NetBulletin*>(this)->flow();
    json::Writer edges;
    fm.write_json(edges);
    w.key("edges").raw(edges.take());
#ifndef OBS_DISABLED
    w.key("series").raw(obs::timeseries().report_json());
#else
    w.key("series").raw("{}");
#endif
  }
  w.end_object();
  // Happens-before DAG summary (counts only — deterministic).
  w.key("dag").raw(const_cast<NetBulletin*>(this)->dag().report_json());
  w.key("base").raw(Bulletin::report_json());
  w.end_object();
  return w.take();
}

}  // namespace yoso::net
