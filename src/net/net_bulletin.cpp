#include "net/net_bulletin.hpp"

#include <algorithm>
#include <sstream>

#include "crypto/ct.hpp"
#include "crypto/sha256.hpp"
#include "wire/codec.hpp"

namespace yoso::net {

namespace {

std::size_t phase_idx(Phase p) { return static_cast<std::size_t>(p); }

const char* phase_key(std::size_t idx) {
  switch (idx) {
    case 0: return "setup";
    case 1: return "offline";
    case 2: return "online";
  }
  return "?";
}

}  // namespace

NetBulletin::NetBulletin(Ledger& ledger, NetConfig cfg)
    : Bulletin(ledger), cfg_(std::move(cfg)),
      transport_(loop_, cfg_.link, cfg_.topology, cfg_.observers, cfg_.faults) {}

void NetBulletin::check_payload(const std::vector<std::uint8_t>& payload) {
  try {
    std::vector<std::uint8_t> again;
    switch (peek_tag(payload)) {
      case kTagLinkProof: again = encode_link_proof(decode_link_proof(payload)); break;
      case kTagMultProof: again = encode_mult_proof(decode_mult_proof(payload)); break;
      case kTagRootProof: again = encode_root_proof(decode_root_proof(payload)); break;
      case kTagMaskMsg: again = encode_mask_msg(decode_mask_msg(payload)); break;
      case kTagHandoverMsg: again = encode_handover_msg(decode_handover_msg(payload)); break;
      case kTagFutureCt: again = encode_future_ct(decode_future_ct(payload)); break;
      case kTagPdecMsg: again = encode_pdec_msg(decode_pdec_msg(payload)); break;
      case kTagContribMsg: again = encode_contrib_msg(decode_contrib_msg(payload)); break;
      case kTagBeaverMsg: again = encode_beaver_msg(decode_beaver_msg(payload)); break;
      case kTagMultShareMsg: again = encode_mult_share_msg(decode_mult_share_msg(payload)); break;
      case kTagMaskBatch: again = encode_mask_batch(decode_mask_batch(payload)); break;
      default: ++decode_failures_; return;
    }
    // Compare round-trip digests instead of the raw byte vectors: the digest
    // comparison runs in time independent of where the first mismatch falls.
    const Sha256::Digest d_again = Sha256::hash(again.data(), again.size());
    const Sha256::Digest d_payload = Sha256::hash(payload.data(), payload.size());
    if (!ct_equal(d_again, d_payload)) ++decode_failures_;
  } catch (const CodecError&) {
    ++decode_failures_;
  }
}

void NetBulletin::enqueue(std::string round_key, Phase phase, std::string sender,
                          std::size_t bytes, const std::vector<std::uint8_t>* payload) {
  if (payload != nullptr) {
    bytes = payload->size();  // price the real serialized message
    if (cfg_.decode_check) check_payload(*payload);
  }
  if (!pending_.empty() && (round_key != pending_key_ || phase != pending_phase_)) flush();
  pending_key_ = std::move(round_key);
  pending_phase_ = phase;
  pending_.push_back(PendingPost{std::move(sender), bytes});
}

void NetBulletin::publish(Committee& committee, unsigned index0, Phase phase,
                          const std::string& label, std::size_t bytes, std::size_t elements,
                          bool first_post_of_role, const std::vector<std::uint8_t>* payload) {
  Bulletin::publish(committee, index0, phase, label, bytes, elements, first_post_of_role,
                    payload);
  enqueue("c:" + committee.name, phase,
          committee.name + "#" + std::to_string(index0), bytes, payload);
}

void NetBulletin::publish_external(const std::string& who, Phase phase, const std::string& label,
                                   std::size_t bytes, std::size_t elements,
                                   const std::vector<std::uint8_t>* payload) {
  Bulletin::publish_external(who, phase, label, bytes, elements, payload);
  enqueue("x:" + label, phase, who, bytes, payload);
}

void NetBulletin::on_committee_spawn(Committee& committee) {
  if (transport_.observers() == 0) transport_.set_observers(committee.n());
  unsigned silenced = 0;
  for (unsigned i = committee.n(); i-- > 0 && silenced < cfg_.faults.silence_per_committee;) {
    if (committee.corruption.status[i] == RoleStatus::Honest) {
      committee.corruption.status[i] = RoleStatus::FailStop;
      ++silenced;
    }
  }
  roles_silenced_ += silenced;
}

void NetBulletin::flush() {
  if (pending_.empty()) return;
  PhaseTraffic& pt = traffic_[phase_idx(pending_phase_)];
  for (const PendingPost& p : pending_) {
    transport_.broadcast(p.sender, p.bytes, clock_);
    pt.messages += 1;
    pt.payload_bytes += p.bytes;
  }
  transport_.run();
  const double round_end = std::max(clock_, transport_.last_delivery());
  pt.seconds += round_end - clock_;
  pt.rounds += 1;
  clock_ = round_end;
  pending_.clear();
  pending_key_.clear();
}

double NetBulletin::elapsed() {
  flush();
  return clock_;
}

const PhaseTraffic& NetBulletin::phase_traffic(Phase phase) {
  flush();
  return traffic_[phase_idx(phase)];
}

const TransportStats& NetBulletin::stats() {
  flush();
  return transport_.stats();
}

std::string NetBulletin::report_json() const {
  const_cast<NetBulletin*>(this)->flush();
  const TransportStats& ts = transport_.stats();
  std::ostringstream os;
  os << "{\"link\":\"" << cfg_.link.name << "\",\"topology\":\""
     << topology_name(cfg_.topology) << "\",\"elapsed_s\":" << clock_ << ",\"phases\":{";
  for (std::size_t i = 0; i < traffic_.size(); ++i) {
    if (i != 0) os << ",";
    const PhaseTraffic& pt = traffic_[i];
    os << "\"" << phase_key(i) << "\":{\"seconds\":" << pt.seconds << ",\"rounds\":" << pt.rounds
       << ",\"messages\":" << pt.messages << ",\"payload_bytes\":" << pt.payload_bytes << "}";
  }
  os << "},\"delivered\":" << ts.delivered << ",\"dropped\":" << ts.dropped
     << ",\"downlink_queue_s\":" << ts.downlink_queue_seconds
     << ",\"decode_failures\":" << decode_failures_
     << ",\"roles_silenced\":" << roles_silenced_ << ",\"base\":" << Bulletin::report_json()
     << "}";
  return os.str();
}

}  // namespace yoso::net
