// Wire-level fault injection at the NetBulletin / codec boundary.
//
// Where FaultPlan (link.hpp) models the *link* failing (dead links, drops,
// delay), WireFaultPlan models the *message* failing: a payload bit flips
// in flight (the frame checksum rejects it at the board), a frame is
// truncated (the codec rejects the partial buffer), a role's post is
// duplicated by a confused relay (the board's one-shot discipline must
// ignore the copy), or a post arrives after the committee's posting window
// closed (it only counts if the board runs with a grace window).
//
// Decisions are deterministic from (seed, sender, per-board sequence) so a
// chaos schedule replays bit-for-bit; the protocol's own Rng stream is
// never touched.
#pragma once

#include <cstdint>
#include <string>

namespace yoso::net {

// Which wire fault hits one post (at most one per post).
enum class WireFault : std::uint8_t { None, BitFlip, Truncate, Duplicate, LatePost };

const char* wire_fault_name(WireFault f);

struct WireFaultPlan {
  double bitflip_prob = 0;    // payload corrupted in flight
  double truncate_prob = 0;   // frame cut short
  double duplicate_prob = 0;  // post replayed a second time
  double late_prob = 0;       // post delayed past the posting window
  double late_delay_s = 1.0;  // how late a LatePost arrives
  std::uint64_t seed = 1;

  bool empty() const {
    return bitflip_prob == 0 && truncate_prob == 0 && duplicate_prob == 0 && late_prob == 0;
  }

  // The fault hitting post number `seq` from `sender`, plus an auxiliary
  // 64-bit draw (bit position to flip / truncation point), both pure
  // functions of (seed, sender, seq).
  WireFault roll(const std::string& sender, std::uint64_t seq, std::uint64_t* aux) const;
};

// SplitMix64 — shared by the drop decisions in transport.cpp and the wire
// fault rolls here.
std::uint64_t mix64(std::uint64_t x);

// Hash of (seed, string) for deterministic per-sender streams.
std::uint64_t mix64_str(std::uint64_t seed, const std::string& s);

}  // namespace yoso::net
