#include "net/wire_faults.hpp"

namespace yoso::net {

const char* wire_fault_name(WireFault f) {
  switch (f) {
    case WireFault::None: return "none";
    case WireFault::BitFlip: return "bitflip";
    case WireFault::Truncate: return "truncate";
    case WireFault::Duplicate: return "duplicate";
    case WireFault::LatePost: return "late";
  }
  return "?";
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t mix64_str(std::uint64_t seed, const std::string& s) {
  std::uint64_t h = seed;
  for (char c : s) h = mix64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  return h;
}

WireFault WireFaultPlan::roll(const std::string& sender, std::uint64_t seq,
                              std::uint64_t* aux) const {
  if (empty()) return WireFault::None;
  std::uint64_t h = mix64(mix64_str(seed, sender) ^ seq);
  if (aux != nullptr) *aux = mix64(h);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double acc = bitflip_prob;
  if (u < acc) return WireFault::BitFlip;
  acc += truncate_prob;
  if (u < acc) return WireFault::Truncate;
  acc += duplicate_prob;
  if (u < acc) return WireFault::Duplicate;
  acc += late_prob;
  if (u < acc) return WireFault::LatePost;
  return WireFault::None;
}

}  // namespace yoso::net
