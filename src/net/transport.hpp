// Serialized store-and-forward transport over the configured link model.
//
// Every broadcast is fragmented into frames and pushed through per-party
// access links whose serialization is exclusive: a link busy with one
// message queues the next (the queueing delay is measured and reported).
// Delivery of a round is complete when the slowest observer has downloaded
// every message of the round; the discrete-event loop orders all of this
// deterministically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/link.hpp"

namespace yoso::net {

struct EndpointStats {
  std::size_t messages = 0;      // broadcasts originated
  std::size_t payload_bytes = 0; // serialized payload uploaded
  std::size_t wire_bytes = 0;    // payload + frame overhead
  std::size_t frames = 0;
  double busy_seconds = 0;       // uplink serialization time
  double queue_seconds = 0;      // waited for a busy uplink
};

struct TransportStats {
  std::map<std::string, EndpointStats> senders;  // per-role bandwidth accounting
  std::vector<std::size_t> size_histogram;       // log2(bytes) buckets
  std::size_t delivered = 0;        // message copies handed to observers
  std::size_t dropped = 0;          // messages lost to fault injection
  double downlink_queue_seconds = 0;
  // Heterogeneous profiles: parties per assigned link class (uplinks and
  // downlinks; empty under a uniform link).
  std::map<std::string, std::size_t> link_class_counts;

  void note_size(std::size_t bytes);
  std::size_t total_payload_bytes() const;
  std::size_t total_wire_bytes() const;
};

class Transport {
public:
  Transport(EventLoop& loop, LinkModel link, Topology topo, unsigned observers,
            FaultPlan faults = {}, LinkClassMix mix = {});

  // Queues a broadcast of `bytes` payload from `sender`, released no
  // earlier than virtual time `release`.  Returns false when the fault
  // plan drops the message at the sender's link.
  bool broadcast(const std::string& sender, std::size_t bytes, double release);

  // Pre-rolls the drop decision for the next broadcast from `sender`,
  // advancing the per-message sequence.  Callers that need the verdict
  // before the message is priced (NetBulletin decides a post's fate at
  // publish time but prices it at round flush) roll here and pass the
  // decision back through broadcast_decided.
  bool roll_drop(const std::string& sender);

  // As broadcast(), but with the drop decision already made by roll_drop.
  bool broadcast_decided(const std::string& sender, std::size_t bytes, double release,
                         bool dropped);

  // Drains the event loop (all queued frames delivered).
  double run();

  // Completion time of the latest delivery so far.
  double last_delivery() const { return last_delivery_; }
  const TransportStats& stats() const { return stats_; }
  const LinkModel& link() const { return link_; }
  // The access link pricing `party`'s traffic: the uniform link, or the
  // party's deterministically assigned class under a heterogeneous mix.
  const LinkModel& link_for(const std::string& party);
  Topology topology() const { return topo_; }
  unsigned observers() const { return observers_; }
  void set_observers(unsigned n) { observers_ = n; }

private:
  bool should_drop(const std::string& sender);
  const LinkModel& downlink_for(unsigned observer);

  EventLoop* loop_;
  LinkModel link_;
  Topology topo_;
  unsigned observers_;
  FaultPlan faults_;
  LinkClassMix mix_;
  std::map<std::string, LinkModel> assigned_;  // heterogeneous per-party cache
  std::vector<const LinkModel*> downlinks_;    // per-observer class (mix only)
  std::map<std::string, double> uplink_free_;
  std::vector<double> downlink_free_;
  double last_delivery_ = 0;
  std::uint64_t msg_seq_ = 0;
  TransportStats stats_;
};

}  // namespace yoso::net
