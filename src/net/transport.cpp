#include "net/transport.hpp"

#include <algorithm>
#include <bit>

#include "net/wire_faults.hpp"  // mix64 / mix64_str

namespace yoso::net {

void TransportStats::note_size(std::size_t bytes) {
  std::size_t bucket = std::bit_width(bytes);  // log2 bucket, 0 for empty
  if (size_histogram.size() <= bucket) size_histogram.resize(bucket + 1, 0);
  ++size_histogram[bucket];
}

std::size_t TransportStats::total_payload_bytes() const {
  std::size_t total = 0;
  for (const auto& [_, s] : senders) total += s.payload_bytes;
  return total;
}

std::size_t TransportStats::total_wire_bytes() const {
  std::size_t total = 0;
  for (const auto& [_, s] : senders) total += s.wire_bytes;
  return total;
}

Transport::Transport(EventLoop& loop, LinkModel link, Topology topo, unsigned observers,
                     FaultPlan faults, LinkClassMix mix)
    : loop_(&loop), link_(std::move(link)), topo_(topo), observers_(observers),
      faults_(std::move(faults)), mix_(std::move(mix)) {}

const LinkModel& Transport::link_for(const std::string& party) {
  if (mix_.empty()) return link_;
  auto it = assigned_.find(party);
  if (it == assigned_.end()) {
    it = assigned_.emplace(party, mix_.pick(party)).first;
    ++stats_.link_class_counts[it->second.name];
  }
  return it->second;
}

// Observers are addressed by index; their download links draw from the
// same mix under a synthetic party name, so a heterogeneous committee pays
// heterogeneous download times too.
const LinkModel& Transport::downlink_for(unsigned observer) {
  if (mix_.empty()) return link_;
  if (downlinks_.size() <= observer) downlinks_.resize(observer + 1, nullptr);
  if (downlinks_[observer] == nullptr) {
    downlinks_[observer] = &link_for("down#" + std::to_string(observer));
  }
  return *downlinks_[observer];
}

// Deterministic per-message drop decisions from (seed, sender, sequence)
// without touching the protocol's Rng stream.
bool Transport::should_drop(const std::string& sender) {
  if (faults_.drop_prob <= 0) return false;
  std::uint64_t h = mix64(mix64_str(faults_.seed, sender) ^ msg_seq_);
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < faults_.drop_prob;
}

bool Transport::roll_drop(const std::string& sender) {
  ++msg_seq_;
  return should_drop(sender);
}

bool Transport::broadcast(const std::string& sender, std::size_t bytes, double release) {
  return broadcast_decided(sender, bytes, release, roll_drop(sender));
}

bool Transport::broadcast_decided(const std::string& sender, std::size_t bytes, double release,
                                  bool dropped) {
  if (dropped) {
    ++stats_.dropped;
    return false;
  }
  if (downlink_free_.size() < observers_) downlink_free_.resize(observers_, 0.0);

  const LinkModel& up = link_for(sender);
  const std::size_t frames = up.frames_for(bytes);
  const std::size_t wire = up.wire_bytes(bytes);
  const double one_copy_tx = up.transmit_seconds(bytes);
  const double up_tx = topo_ == Topology::UniformMesh
                           ? one_copy_tx * static_cast<double>(std::max(observers_, 1u))
                           : one_copy_tx;
  const double hop_delay = up.latency_s + faults_.extra_delay_s;

  double& upfree = uplink_free_[sender];
  const double start = std::max(release, upfree);
  upfree = start + up_tx;

  EndpointStats& es = stats_.senders[sender];
  es.messages += 1;
  es.payload_bytes += bytes;
  es.wire_bytes += topo_ == Topology::UniformMesh ? wire * std::max(observers_, 1u) : wire;
  es.frames += topo_ == Topology::UniformMesh ? frames * std::max(observers_, 1u) : frames;
  es.busy_seconds += up_tx;
  es.queue_seconds += start - release;
  stats_.note_size(bytes);

  // The full message reaches the board (star) / egresses the sender (mesh)
  // one propagation delay after the last frame leaves the uplink; each
  // observer then pulls its copy through its own serialized downlink (its
  // own link class under a heterogeneous mix).
  const double arrival = start + up_tx + hop_delay;
  const bool extra_hop = topo_ == Topology::StarViaBoard;
  loop_->schedule_at(arrival, [this, bytes, one_copy_tx, extra_hop]() {
    const double now = loop_->now();
    for (unsigned r = 0; r < observers_; ++r) {
      const LinkModel& down = downlink_for(r);
      const double down_tx = mix_.empty() ? one_copy_tx : down.transmit_seconds(bytes);
      const double dstart = std::max(now, downlink_free_[r]);
      stats_.downlink_queue_seconds += dstart - now;
      downlink_free_[r] = dstart + down_tx;
      const double delivery =
          downlink_free_[r] + (extra_hop ? down.latency_s + faults_.extra_delay_s : 0.0);
      last_delivery_ = std::max(last_delivery_, delivery);
      ++stats_.delivered;
    }
  });
  return true;
}

double Transport::run() {
  loop_->run();
  return last_delivery_;
}

}  // namespace yoso::net
