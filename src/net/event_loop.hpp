// Deterministic discrete-event scheduler: the virtual clock driving the
// network simulation.
//
// Events fire in (time, insertion order); the monotone sequence number
// breaks ties so identical runs replay identically regardless of allocator
// or container internals.  Handlers may schedule further events (frames
// spawning deliveries); run() drains the queue to quiescence.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace yoso::net {

class EventLoop {
public:
  using Handler = std::function<void()>;

  // Schedules `fn` at absolute virtual time `at` (clamped to now()).
  void schedule_at(double at, Handler fn);
  void schedule_in(double delay, Handler fn);

  // Drains the queue; returns the final clock value.
  double run();
  // Fires events with time <= until, then advances the clock to `until`.
  double run_until(double until);

  double now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t processed() const { return processed_; }

  // Moves the clock forward without firing anything (round barriers).
  void advance_to(double at);

private:
  struct Event {
    double at = 0;
    std::uint64_t seq = 0;
    Handler fn;
  };
  // Min-heap on (at, seq).
  static bool later(const Event& a, const Event& b);
  Event pop_next();

  std::vector<Event> heap_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace yoso::net
