// A Bulletin whose posts travel over the simulated network.
//
// NetBulletin implements the Bulletin publish surface, so YosoMpc (and the
// CDN baseline) run completely unmodified; in addition to the ledger's byte
// accounting it yields per-phase virtual wall-clock timings, queueing
// delays, and per-role bandwidth histograms from the discrete-event
// Transport underneath.
//
// Round model: consecutive posts by the same committee (or under the same
// external label) form one round — all senders release in parallel at the
// round's start, and the round completes when the slowest observer has
// downloaded every message (YOSO proceeds in broadcast rounds, Section 3.3).
// The virtual clock then advances to that completion time; per-phase time
// is the sum of the phase's round durations.
//
// Payloads: when the protocol hands a real serialized message (one tagged
// wire/codec buffer per post), the transport prices that exact byte string
// and — with decode_check on — round-trips it through the codec to catch
// encoder drift.  Posts without payloads fall back to the ledger's byte
// count.
//
// Fault model: beyond the link-level FaultPlan (dead links realized as
// fail-stop roles, per-message drops, added delay), a WireFaultPlan
// injects message-level faults at the codec boundary — bit-flipped
// payloads (rejected by the frame checksum), truncated frames (rejected by
// the codec), duplicated posts (ignored by the one-shot discipline), and
// late posts (rejected unless within `grace_window_s`).  Every post's fate
// is returned to the publishing protocol code as a PostStatus and tallied
// per phase; the chaos campaign (src/chaos) asserts the conservation law
// originated == delivered + dropped over these tallies.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/link.hpp"
#include "net/transport.hpp"
#include "net/wire_faults.hpp"
#include "obs/dag/dag.hpp"
#include "obs/flow.hpp"
#include "yoso/bulletin.hpp"

namespace yoso::net {

struct NetConfig {
  LinkModel link = LinkModel::lan();
  // Heterogeneous per-member link classes; non-empty overrides `link` with
  // a deterministic per-party class assignment.
  LinkClassMix link_mix = {};
  Topology topology = Topology::StarViaBoard;
  unsigned observers = 0;  // downloading parties; 0 = first committee's n
  FaultPlan faults = {};
  // Background churn realized at committee spawn (departed members' roles
  // become fail-stop, Section 5.4).
  ChurnPlan churn = {};
  WireFaultPlan wire_faults = {};
  double grace_window_s = 0;  // late posts within this window still count
  bool decode_check = true;   // round-trip every payload through the codec
};

// Virtual-time traffic accumulated for one protocol phase.
struct PhaseTraffic {
  double seconds = 0;
  std::size_t rounds = 0;
  std::size_t messages = 0;
  std::size_t payload_bytes = 0;
};

// Board-level post accounting for one protocol phase.  Conservation law:
// originated == delivered + dropped, where dropped splits into the loss
// classes below (duplicate counts the injected copies the board ignored).
struct PhasePosts {
  std::size_t originated = 0;  // posts attempted, including duplicate copies
  std::size_t delivered = 0;   // accepted onto the board
  std::size_t dropped_link = 0;
  std::size_t corrupt = 0;
  std::size_t truncated = 0;
  std::size_t late = 0;        // late beyond the grace window
  std::size_t duplicate = 0;   // injected copies ignored by the board
  std::size_t late_graced = 0; // late but within grace (subset of delivered)

  std::size_t dropped() const {
    return dropped_link + corrupt + truncated + late + duplicate;
  }
  bool conserved() const { return originated == delivered + dropped(); }
};

class NetBulletin : public Bulletin {
public:
  NetBulletin(Ledger& ledger, NetConfig cfg = {});
  ~NetBulletin() override;

  PostStatus publish(Committee& committee, unsigned index0, Phase phase,
                     const std::string& label, std::size_t bytes, std::size_t elements,
                     bool first_post_of_role = false,
                     const std::vector<std::uint8_t>* payload = nullptr) override;
  void publish_external(const std::string& who, Phase phase, const std::string& label,
                        std::size_t bytes, std::size_t elements,
                        const std::vector<std::uint8_t>* payload = nullptr) override;

  bool wants_payload() const override { return true; }

  // Realizes churn and the fault plan at activation: roles whose members
  // departed between activations (ChurnPlan, deterministic per committee
  // and role) and the last `silence_per_committee` honest roles have their
  // links down for the whole activation, so they behave as fail-stop
  // parties (Section 5.4).
  void on_committee_spawn(Committee& committee) override;

  // Delivers any buffered round.  Accessors below flush implicitly; call
  // this explicitly after the protocol finishes to close the final round.
  void flush();

  // Virtual wall-clock so far (seconds).
  double elapsed();
  const PhaseTraffic& phase_traffic(Phase phase);
  const TransportStats& stats();
  const NetConfig& config() const { return cfg_; }
  std::size_t decode_failures() const { return decode_failures_; }
  unsigned roles_silenced() const { return roles_silenced_; }
  unsigned roles_churned() const { return roles_churned_; }

  // Post accounting (chaos invariants + report_json).
  const PhasePosts& phase_posts(Phase phase) const;
  PhasePosts total_posts() const;
  // Per-edge traffic matrix over delivered posts: sender committee ->
  // consuming committee (the next one to begin publishing), keyed by ledger
  // category.  Edges still pending a consumer — the final committee's
  // output posts — resolve to "observers" on first access.
  const obs::FlowMatrix& flow();
  // Mutated payloads probed through the codec: rejected cleanly vs. decoded
  // anyway (a flip inside a bignum body is syntactically valid; the frame
  // checksum still rejects the post).
  std::size_t fuzz_rejected() const { return fuzz_rejected_; }
  std::size_t fuzz_decoded() const { return fuzz_decoded_; }

  // Happens-before DAG of the run as the board observed it (obs/dag).
  // Finalizes the trailing compute residue; meaningful for boards that host
  // one protocol run (service boards interleave sessions on one profiler
  // cell, so their deltas blur across sessions — docs/OBSERVABILITY.md).
  const obs::dag::DagRecorder& dag();

  std::string report_json() const override;

private:
  // Concurrency note (docs/STATIC_ANALYSIS.md): unlike the base Bulletin,
  // whose window/log state is lock-protected, NetBulletin's own members are
  // deliberately *not* annotated — each instance is confined to one session
  // or pool lane and driven by one event loop, so the multi-core plan never
  // shares an instance across workers.  Cross-session state (the Ledger the
  // board feeds, the obs registries) carries its own locks.
  struct PendingPost {
    std::string sender;
    std::size_t bytes;
    bool link_dropped = false;
    double release_delay = 0;  // late posts enter the uplink this much later
  };

  void enqueue(std::string round_key, Phase phase, std::string sender, std::size_t bytes,
               const std::vector<std::uint8_t>* payload, bool link_dropped,
               double release_delay);
  bool roundtrip_ok(const std::vector<std::uint8_t>& payload);
  void probe_mutated(std::vector<std::uint8_t> mutated);
  PhasePosts& posts(Phase phase) { return posts_[static_cast<std::size_t>(phase)]; }

  NetConfig cfg_;
  EventLoop loop_;
  Transport transport_;
  double clock_ = 0;
  std::vector<PendingPost> pending_;
  std::string pending_key_;
  Phase pending_phase_ = Phase::Setup;
  std::array<PhaseTraffic, 3> traffic_{};
  std::array<PhasePosts, 3> posts_{};
  obs::FlowMatrix flow_;
  obs::dag::DagRecorder dag_;
  std::string flow_actor_;  // committee currently publishing (flow consumer tracking)
  std::size_t decode_failures_ = 0;
  std::size_t fuzz_rejected_ = 0;
  std::size_t fuzz_decoded_ = 0;
  std::uint64_t post_seq_ = 0;  // wire-fault roll sequence
  unsigned roles_silenced_ = 0;
  unsigned roles_churned_ = 0;
};

}  // namespace yoso::net
