#include "net/event_loop.hpp"

#include <algorithm>
#include <utility>

namespace yoso::net {

bool EventLoop::later(const Event& a, const Event& b) {
  if (a.at != b.at) return a.at > b.at;
  return a.seq > b.seq;
}

void EventLoop::schedule_at(double at, Handler fn) {
  Event ev;
  ev.at = std::max(at, now_);
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), later);
}

void EventLoop::schedule_in(double delay, Handler fn) {
  schedule_at(now_ + delay, std::move(fn));
}

EventLoop::Event EventLoop::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

double EventLoop::run() {
  while (!heap_.empty()) {
    Event ev = pop_next();
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }
  return now_;
}

double EventLoop::run_until(double until) {
  while (!heap_.empty() && heap_.front().at <= until) {
    Event ev = pop_next();
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }
  now_ = std::max(now_, until);
  return now_;
}

void EventLoop::advance_to(double at) { now_ = std::max(now_, at); }

}  // namespace yoso::net
