// Link and topology models for the simulated YOSO network.
//
// A LinkModel prices one direction of one party's access link: propagation
// latency, serialization bandwidth, and per-frame overhead (the message is
// fragmented into MTU-sized frames, each paying header bytes).  Presets
// cover the settings the MPC-performance literature measures against
// (LAN / WAN), geo-distributed latency/bandwidth tiers, a mobile edge
// profile, plus a blockchain bulletin board whose block interval dominates
// everything else.
//
// Named link classes compose into a LinkClassMix: a weighted set of
// classes from which every party's access link is drawn as a pure function
// of (seed, party name), so a committee can mix metro members with
// intercontinental stragglers deterministically — the heterogeneous
// large-network regime of "Secure MPC in Large Networks".
//
// The Topology says how a broadcast reaches the observers:
//   * StarViaBoard — the YOSO model: one upload to the bulletin board, then
//     every observer downloads from the board over its own access link.
//   * UniformMesh  — no board: the sender pushes one copy per observer
//     through its own uplink (upload cost scales with the audience).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace yoso::net {

struct LinkModel {
  std::string name = "custom";
  double latency_s = 0.0005;        // one-way propagation delay
  double bandwidth_bps = 1e9;       // serialization rate of an access link
  std::size_t frame_mtu = 1500;     // payload bytes per frame
  std::size_t frame_overhead = 66;  // header bytes per frame

  // Number of frames a `bytes`-sized message fragments into (>= 1: even an
  // empty post occupies one frame on the wire).
  std::size_t frames_for(std::size_t bytes) const;
  // Total bytes on the wire including per-frame overhead.
  std::size_t wire_bytes(std::size_t bytes) const;
  // Seconds the link is busy serializing the message (excludes latency).
  double transmit_seconds(std::size_t bytes) const;

  // Data-center / same-rack setting: 1 Gbps, 0.5 ms one-way.
  static LinkModel lan();
  // Wide-area setting (the SoK's WAN profile): 50 Mbps, 50 ms one-way.
  static LinkModel wan();
  // Geo tiers: members in the same metro area, on the same continent, and
  // across an ocean.
  static LinkModel geo_metro();             // 5 ms, 400 Mbps
  static LinkModel geo_continental();       // 30 ms, 100 Mbps
  static LinkModel geo_intercontinental();  // 130 ms, 25 Mbps
  // Mobile edge member: high latency, thin uplink, small effective MTU.
  static LinkModel mobile();                // 60 ms, 12 Mbps
  // Blockchain bulletin board: the "link" is block inclusion — 12 s
  // one-way (block interval), ~2 Mbps effective goodput, big frames.
  static LinkModel blockchain_bb();

  // Preset lookup by its `name` field; throws std::invalid_argument on an
  // unknown class (schedules carry class names through JSON).
  static LinkModel by_name(const std::string& name);
  static const std::vector<std::string>& class_names();

  std::string describe() const;
};

// Heterogeneous per-member link profiles: each party's access link is one
// of the named classes, chosen by weight as a pure function of
// (seed, party name).  An empty mix means every party uses the uniform
// NetConfig link.
struct LinkClassMix {
  std::string name = "uniform";
  std::vector<LinkModel> classes;  // empty = uniform link for everyone
  std::vector<double> weights;     // parallel to classes; relative weights
  std::uint64_t seed = 1;

  bool empty() const { return classes.empty(); }
  // Deterministic weighted draw for `party` (stable across calls).
  const LinkModel& pick(const std::string& party) const;

  // Geo-distributed committee: 40% metro, 40% continental, 20%
  // intercontinental members.
  static LinkClassMix geo(std::uint64_t seed);
  // Mobile-edge committee: half continental, half mobile members.
  static LinkClassMix mobile_edge(std::uint64_t seed);
  // Mix (or uniform preset wrapped as a one-class mix) by name:
  // "geo-mix", "mobile-edge", or any LinkModel preset name.  Throws
  // std::invalid_argument on an unknown name.
  static LinkClassMix by_name(const std::string& name, std::uint64_t seed);
};

enum class Topology { StarViaBoard, UniformMesh };

const char* topology_name(Topology t);

// Link-level fault injection.  Silencing is realized at committee spawn
// (the affected roles' links are down for their entire activation, so they
// behave as fail-stop parties, Section 5.4); drops and extra delay act per
// message on live links.
struct FaultPlan {
  unsigned silence_per_committee = 0;  // roles whose links are down
  double extra_delay_s = 0;            // added one-way delay on every link
  double drop_prob = 0;                // per-message drop probability
  std::uint64_t seed = 1;              // deterministic drop decisions

  bool empty() const {
    return silence_per_committee == 0 && extra_delay_s == 0 && drop_prob == 0;
  }
};

// Seeded background churn: members leave (and are replaced) between
// committee activations.  A role whose member departed before its
// committee activates has nobody holding its one-shot keys, so it is
// realized as a fail-stop role at spawn — stacking with the FaultPlan's
// silence injection and the adversary's own fail-stop corruptions.
// Departures are a pure function of (seed, committee name, role index);
// max_per_committee bounds them, which is what lets a schedule stay inside
// the Section 5.4 envelope under nonzero churn.
struct ChurnPlan {
  double leave_prob = 0;           // per-role departure probability per activation
  unsigned max_per_committee = 0;  // cap on departures per committee (0 = unbounded)
  std::uint64_t seed = 1;

  bool empty() const { return leave_prob <= 0; }
  // Deterministic departure decision for one role of one committee.
  bool leaves(const std::string& committee, unsigned role) const;
};

}  // namespace yoso::net
