// Link and topology models for the simulated YOSO network.
//
// A LinkModel prices one direction of one party's access link: propagation
// latency, serialization bandwidth, and per-frame overhead (the message is
// fragmented into MTU-sized frames, each paying header bytes).  Presets
// cover the settings the MPC-performance literature measures against
// (LAN / WAN) plus a blockchain bulletin board whose block interval
// dominates everything else.
//
// The Topology says how a broadcast reaches the observers:
//   * StarViaBoard — the YOSO model: one upload to the bulletin board, then
//     every observer downloads from the board over its own access link.
//   * UniformMesh  — no board: the sender pushes one copy per observer
//     through its own uplink (upload cost scales with the audience).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace yoso::net {

struct LinkModel {
  std::string name = "custom";
  double latency_s = 0.0005;        // one-way propagation delay
  double bandwidth_bps = 1e9;       // serialization rate of an access link
  std::size_t frame_mtu = 1500;     // payload bytes per frame
  std::size_t frame_overhead = 66;  // header bytes per frame

  // Number of frames a `bytes`-sized message fragments into (>= 1: even an
  // empty post occupies one frame on the wire).
  std::size_t frames_for(std::size_t bytes) const;
  // Total bytes on the wire including per-frame overhead.
  std::size_t wire_bytes(std::size_t bytes) const;
  // Seconds the link is busy serializing the message (excludes latency).
  double transmit_seconds(std::size_t bytes) const;

  // Data-center / same-rack setting: 1 Gbps, 0.5 ms one-way.
  static LinkModel lan();
  // Wide-area setting (the SoK's WAN profile): 50 Mbps, 50 ms one-way.
  static LinkModel wan();
  // Blockchain bulletin board: the "link" is block inclusion — 12 s
  // one-way (block interval), ~2 Mbps effective goodput, big frames.
  static LinkModel blockchain_bb();

  std::string describe() const;
};

enum class Topology { StarViaBoard, UniformMesh };

const char* topology_name(Topology t);

// Link-level fault injection.  Silencing is realized at committee spawn
// (the affected roles' links are down for their entire activation, so they
// behave as fail-stop parties, Section 5.4); drops and extra delay act per
// message on live links.
struct FaultPlan {
  unsigned silence_per_committee = 0;  // roles whose links are down
  double extra_delay_s = 0;            // added one-way delay on every link
  double drop_prob = 0;                // per-message drop probability
  std::uint64_t seed = 1;              // deterministic drop decisions

  bool empty() const {
    return silence_per_committee == 0 && extra_delay_s == 0 && drop_prob == 0;
  }
};

}  // namespace yoso::net
