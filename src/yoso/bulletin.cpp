#include "yoso/bulletin.hpp"

#include "common/json.hpp"

namespace yoso {

const char* post_status_name(PostStatus s) {
  switch (s) {
    case PostStatus::Accepted: return "accepted";
    case PostStatus::DroppedLink: return "dropped";
    case PostStatus::CorruptPayload: return "corrupt";
    case PostStatus::Truncated: return "truncated";
    case PostStatus::Late: return "late";
  }
  return "?";
}

void Bulletin::record_post(const std::string& sender, unsigned index0, Phase phase,
                           const std::string& label, std::size_t bytes, std::size_t elements,
                           bool external) {
  ledger_->record(phase, label, bytes, elements);  // the ledger locks itself
  MutexLock lock(&mu_);
  log_.push_back(Post{sender, index0, label, bytes, elements, phase, external});
}

PostStatus Bulletin::publish(Committee& committee, unsigned index0, Phase phase,
                             const std::string& label, std::size_t bytes, std::size_t elements,
                             bool first_post_of_role, const std::vector<std::uint8_t>* payload) {
  (void)payload;  // the passive board only prices messages
  {
    MutexLock lock(&mu_);
    if (committee.name != open_committee_) {
      if (closed_committees_.count(committee.name)) {
        throw std::logic_error("YOSO violation: committee " + committee.name +
                               " re-activated after its posting window closed");
      }
      if (!open_committee_.empty()) closed_committees_.insert(open_committee_);
      open_committee_ = committee.name;
    }
  }
  // A role is spoken from its first post on; later posts in the same
  // activation window are parts of the same one-shot message.  The
  // committee object is the caller's, not board state.
  if (first_post_of_role || !committee.has_spoken(index0)) committee.speak(index0);
  record_post(committee.name, index0, phase, label, bytes, elements);
  return PostStatus::Accepted;
}

void Bulletin::publish_external(const std::string& who, Phase phase, const std::string& label,
                                std::size_t bytes, std::size_t elements,
                                const std::vector<std::uint8_t>* payload) {
  (void)payload;
  record_post(who, 0, phase, label, bytes, elements, /*external=*/true);
}

const std::vector<Post>& Bulletin::log() const {
  MutexLock lock(&mu_);
  return log_;
}

std::size_t Bulletin::posts_by(const std::string& committee) const {
  MutexLock lock(&mu_);
  std::size_t count = 0;
  for (const auto& p : log_) {
    if (p.committee == committee) ++count;
  }
  return count;
}

std::string Bulletin::report_json() const {
  std::size_t posts = 0;
  {
    MutexLock lock(&mu_);
    posts = log_.size();
  }
  json::Writer w;
  w.begin_object();
  w.field("posts", static_cast<std::uint64_t>(posts));
  w.key("ledger").raw(ledger_->report_json());
  w.end_object();
  return w.take();
}

}  // namespace yoso
