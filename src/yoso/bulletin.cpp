#include "yoso/bulletin.hpp"

namespace yoso {

void Bulletin::publish(Committee& committee, unsigned index0, Phase phase,
                       const std::string& label, std::size_t bytes, std::size_t elements,
                       bool first_post_of_role) {
  if (first_post_of_role) committee.speak(index0);
  ledger_->record(phase, label, bytes, elements);
  log_.push_back(Post{committee.name, index0, label, bytes, elements, phase});
}

void Bulletin::publish_external(const std::string& who, Phase phase, const std::string& label,
                                std::size_t bytes, std::size_t elements) {
  ledger_->record(phase, label, bytes, elements);
  log_.push_back(Post{who, 0, label, bytes, elements, phase});
}

std::size_t Bulletin::posts_by(const std::string& committee) const {
  std::size_t count = 0;
  for (const auto& p : log_) {
    if (p.committee == committee) ++count;
  }
  return count;
}

}  // namespace yoso
