// Ideal role-assignment functionality (the "natural YOSO" substrate the
// paper assumes, cf. Benhamouda et al. [6]).
//
// A global pool of N machines contains floor(f*N) corrupt ones.  Sampling a
// committee assigns each role to a machine chosen uniformly without the
// adversary learning the mapping; the only adversarially relevant outcome
// is *how many* corrupt machines land in the committee, which we model by
// a hypergeometric draw.  Fail-stop machines are drawn the same way from a
// separate fail-stop fraction.
#pragma once

#include "crypto/rand.hpp"
#include "yoso/adversary.hpp"

namespace yoso {

class RoleAssignment {
public:
  // N machines, `corrupt` of them malicious, `failstop` of them crash-prone
  // (disjoint sets).
  RoleAssignment(std::uint64_t pool_size, std::uint64_t corrupt, std::uint64_t failstop,
                 std::uint64_t seed);

  // Samples the corruption pattern of a fresh committee of n roles
  // (machines drawn without replacement within a committee; committees are
  // drawn independently, modelling re-randomized sortition per round).
  CommitteeCorruption sample_committee(unsigned n,
                                       MaliciousStrategy strategy = MaliciousStrategy::BadShare);

  // Number of corrupt roles a committee of n would get, drawn
  // hypergeometrically; exposed for the Monte-Carlo sortition experiments.
  unsigned sample_corrupt_count(unsigned n);

private:
  std::uint64_t pool_size_;
  std::uint64_t corrupt_;
  std::uint64_t failstop_;
  Rng rng_;
};

}  // namespace yoso
