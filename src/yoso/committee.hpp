// Committees of one-shot YOSO roles.
//
// A Role in the YOSO model speaks exactly once and is then killed (the
// Spoke token) and its state erased.  Committee::speak enforces the
// one-shot discipline; the simulation driver calls it exactly when a role
// publishes its (single, possibly multi-part) message.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/rand.hpp"
#include "paillier/paillier.hpp"
#include "yoso/adversary.hpp"

namespace yoso {

// A committee of n roles together with their YOSO role-assignment keys.
// The simulation holds every role's secret key; honest protocol code for
// role i only ever touches role_sks[i].
struct Committee {
  std::string name;
  CommitteeCorruption corruption;
  std::vector<PaillierSK> role_sks;  // role-assignment PKE keypairs
  std::vector<bool> spoken;

  unsigned n() const { return static_cast<unsigned>(role_sks.size()); }

  const PaillierPK& role_pk(unsigned index0) const { return role_sks.at(index0).pk; }

  // Marks role `index0` as having spoken; throws if it already has.
  void speak(unsigned index0) {
    if (spoken.at(index0)) {
      throw std::logic_error("YOSO violation: role " + name + "[" +
                             std::to_string(index0) + "] spoke twice");
    }
    spoken[index0] = true;
  }

  bool has_spoken(unsigned index0) const { return spoken.at(index0); }
};

// Generates a committee with fresh role keys (|N| = key_bits, exponent s).
// Role keys never need safe primes (they carry no verification keys).
inline Committee make_committee(std::string name, unsigned key_bits, unsigned s,
                                CommitteeCorruption corruption, Rng& rng) {
  Committee c;
  c.name = std::move(name);
  c.corruption = std::move(corruption);
  const unsigned n = c.corruption.n();
  c.role_sks.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    c.role_sks.push_back(paillier_keygen(key_bits, s, rng, /*safe_primes=*/false));
  }
  c.spoken.assign(n, false);
  return c;
}

}  // namespace yoso
