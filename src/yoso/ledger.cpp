#include "yoso/ledger.hpp"

#include <sstream>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace yoso {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Setup: return "setup";
    case Phase::Offline: return "offline";
    case Phase::Online: return "online";
  }
  return "?";
}

std::map<std::string, LedgerEntry>& Ledger::bucket(Phase phase) {
  switch (phase) {
    case Phase::Setup: return setup_;
    case Phase::Offline: return offline_;
    case Phase::Online: return online_;
  }
  return setup_;
}

const std::map<std::string, LedgerEntry>& Ledger::bucket(Phase phase) const {
  switch (phase) {
    case Phase::Setup: return setup_;
    case Phase::Offline: return offline_;
    case Phase::Online: return online_;
  }
  return setup_;
}

void Ledger::record(Phase phase, const std::string& category, std::size_t bytes,
                    std::size_t elements) {
  auto& e = bucket(phase)[category];
  e.messages += 1;
  e.elements += elements;
  e.bytes += bytes;
#ifndef OBS_DISABLED
  static obs::Counter* by_phase[3] = {&obs::metrics().counter("bytes.posted.setup"),
                                      &obs::metrics().counter("bytes.posted.offline"),
                                      &obs::metrics().counter("bytes.posted.online")};
  by_phase[static_cast<int>(phase)]->add(bytes);
#endif
}

LedgerEntry Ledger::phase_total(Phase phase) const {
  LedgerEntry total;
  for (const auto& [_, e] : bucket(phase)) {
    total.messages += e.messages;
    total.elements += e.elements;
    total.bytes += e.bytes;
  }
  return total;
}

LedgerEntry Ledger::total() const {
  LedgerEntry t;
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    auto e = phase_total(p);
    t.messages += e.messages;
    t.elements += e.elements;
    t.bytes += e.bytes;
  }
  return t;
}

const std::map<std::string, LedgerEntry>& Ledger::categories(Phase phase) const {
  return bucket(phase);
}

void Ledger::reset() {
  setup_.clear();
  offline_.clear();
  online_.clear();
}

void Ledger::merge(const Ledger& other) {
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    for (const auto& [cat, e] : other.bucket(p)) {
      LedgerEntry& mine = bucket(p)[cat];
      mine.messages += e.messages;
      mine.elements += e.elements;
      mine.bytes += e.bytes;
    }
  }
}

namespace {

void entry_json(json::Writer& w, const LedgerEntry& e) {
  w.begin_object();
  w.field("messages", static_cast<std::uint64_t>(e.messages));
  w.field("elements", static_cast<std::uint64_t>(e.elements));
  w.field("bytes", static_cast<std::uint64_t>(e.bytes));
  w.end_object();
}

}  // namespace

std::string Ledger::report_json() const {
  json::Writer w;
  w.begin_object();
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    w.key(phase_name(p)).begin_object();
    w.key("total");
    entry_json(w, phase_total(p));
    w.key("categories").begin_object();
    for (const auto& [cat, e] : bucket(p)) {
      w.key(cat);
      entry_json(w, e);
    }
    w.end_object();
    w.end_object();
  }
  w.key("total");
  entry_json(w, total());
  w.end_object();
  return w.take();
}

std::string Ledger::report() const {
  std::ostringstream os;
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    auto t = phase_total(p);
    os << phase_name(p) << ": " << t.messages << " msgs, " << t.elements << " elems, "
       << t.bytes << " bytes\n";
    for (const auto& [cat, e] : bucket(p)) {
      os << "  " << cat << ": " << e.messages << " msgs, " << e.elements << " elems, "
         << e.bytes << " bytes\n";
    }
  }
  return os.str();
}

}  // namespace yoso
