#include "yoso/ledger.hpp"

#include <sstream>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace yoso {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Setup: return "setup";
    case Phase::Offline: return "offline";
    case Phase::Online: return "online";
  }
  return "?";
}

Ledger::Ledger(const Ledger& other) {
  MutexLock lock(&other.mu_);
  setup_ = other.setup_;
  offline_ = other.offline_;
  online_ = other.online_;
}

Ledger& Ledger::operator=(const Ledger& other) {
  if (this == &other) return *this;
  // Snapshot under the source lock, then install under ours: two short
  // critical sections instead of a two-lock ordering protocol.
  std::map<std::string, LedgerEntry> s, off, on;
  {
    MutexLock lock(&other.mu_);
    s = other.setup_;
    off = other.offline_;
    on = other.online_;
  }
  MutexLock lock(&mu_);
  setup_ = std::move(s);
  offline_ = std::move(off);
  online_ = std::move(on);
  return *this;
}

std::map<std::string, LedgerEntry>& Ledger::bucket(Phase phase) {
  switch (phase) {
    case Phase::Setup: return setup_;
    case Phase::Offline: return offline_;
    case Phase::Online: return online_;
  }
  return setup_;
}

const std::map<std::string, LedgerEntry>& Ledger::bucket(Phase phase) const {
  switch (phase) {
    case Phase::Setup: return setup_;
    case Phase::Offline: return offline_;
    case Phase::Online: return online_;
  }
  return setup_;
}

void Ledger::record(Phase phase, const std::string& category, std::size_t bytes,
                    std::size_t elements) {
  {
    MutexLock lock(&mu_);
    auto& e = bucket(phase)[category];
    e.messages += 1;
    e.elements += elements;
    e.bytes += bytes;
  }
#ifndef OBS_DISABLED
  static obs::Counter* by_phase[3] = {&obs::metrics().counter("bytes.posted.setup"),
                                      &obs::metrics().counter("bytes.posted.offline"),
                                      &obs::metrics().counter("bytes.posted.online")};
  by_phase[static_cast<int>(phase)]->add(bytes);
#endif
}

LedgerEntry Ledger::phase_total_locked(Phase phase) const {
  LedgerEntry total;
  for (const auto& [_, e] : bucket(phase)) {
    total.messages += e.messages;
    total.elements += e.elements;
    total.bytes += e.bytes;
  }
  return total;
}

LedgerEntry Ledger::phase_total(Phase phase) const {
  MutexLock lock(&mu_);
  return phase_total_locked(phase);
}

LedgerEntry Ledger::total_locked() const {
  LedgerEntry t;
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    auto e = phase_total_locked(p);
    t.messages += e.messages;
    t.elements += e.elements;
    t.bytes += e.bytes;
  }
  return t;
}

LedgerEntry Ledger::total() const {
  MutexLock lock(&mu_);
  return total_locked();
}

const std::map<std::string, LedgerEntry>& Ledger::categories(Phase phase) const {
  MutexLock lock(&mu_);
  return bucket(phase);
}

void Ledger::reset() {
  MutexLock lock(&mu_);
  setup_.clear();
  offline_.clear();
  online_.clear();
}

void Ledger::merge(const Ledger& other) {
  if (this == &other) return;  // self-merge would double every entry
  // Snapshot the source first so we never hold both locks at once.
  std::map<std::string, LedgerEntry> snap[3];
  {
    MutexLock lock(&other.mu_);
    snap[0] = other.setup_;
    snap[1] = other.offline_;
    snap[2] = other.online_;
  }
  MutexLock lock(&mu_);
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    for (const auto& [cat, e] : snap[static_cast<int>(p)]) {
      LedgerEntry& mine = bucket(p)[cat];
      mine.messages += e.messages;
      mine.elements += e.elements;
      mine.bytes += e.bytes;
    }
  }
}

namespace {

void entry_json(json::Writer& w, const LedgerEntry& e) {
  w.begin_object();
  w.field("messages", static_cast<std::uint64_t>(e.messages));
  w.field("elements", static_cast<std::uint64_t>(e.elements));
  w.field("bytes", static_cast<std::uint64_t>(e.bytes));
  w.end_object();
}

}  // namespace

std::string Ledger::report_json() const {
  MutexLock lock(&mu_);
  json::Writer w;
  w.begin_object();
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    w.key(phase_name(p)).begin_object();
    w.key("total");
    entry_json(w, phase_total_locked(p));
    w.key("categories").begin_object();
    for (const auto& [cat, e] : bucket(p)) {
      w.key(cat);
      entry_json(w, e);
    }
    w.end_object();
    w.end_object();
  }
  w.key("total");
  entry_json(w, total_locked());
  w.end_object();
  return w.take();
}

std::string Ledger::report() const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    auto t = phase_total_locked(p);
    os << phase_name(p) << ": " << t.messages << " msgs, " << t.elements << " elems, "
       << t.bytes << " bytes\n";
    for (const auto& [cat, e] : bucket(p)) {
      os << "  " << cat << ": " << e.messages << " msgs, " << e.elements << " elems, "
         << e.bytes << " bytes\n";
    }
  }
  return os.str();
}

}  // namespace yoso
