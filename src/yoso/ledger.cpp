#include "yoso/ledger.hpp"

#include <sstream>

namespace yoso {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Setup: return "setup";
    case Phase::Offline: return "offline";
    case Phase::Online: return "online";
  }
  return "?";
}

std::map<std::string, LedgerEntry>& Ledger::bucket(Phase phase) {
  switch (phase) {
    case Phase::Setup: return setup_;
    case Phase::Offline: return offline_;
    case Phase::Online: return online_;
  }
  return setup_;
}

const std::map<std::string, LedgerEntry>& Ledger::bucket(Phase phase) const {
  switch (phase) {
    case Phase::Setup: return setup_;
    case Phase::Offline: return offline_;
    case Phase::Online: return online_;
  }
  return setup_;
}

void Ledger::record(Phase phase, const std::string& category, std::size_t bytes,
                    std::size_t elements) {
  auto& e = bucket(phase)[category];
  e.messages += 1;
  e.elements += elements;
  e.bytes += bytes;
}

LedgerEntry Ledger::phase_total(Phase phase) const {
  LedgerEntry total;
  for (const auto& [_, e] : bucket(phase)) {
    total.messages += e.messages;
    total.elements += e.elements;
    total.bytes += e.bytes;
  }
  return total;
}

LedgerEntry Ledger::total() const {
  LedgerEntry t;
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    auto e = phase_total(p);
    t.messages += e.messages;
    t.elements += e.elements;
    t.bytes += e.bytes;
  }
  return t;
}

const std::map<std::string, LedgerEntry>& Ledger::categories(Phase phase) const {
  return bucket(phase);
}

void Ledger::reset() {
  setup_.clear();
  offline_.clear();
  online_.clear();
}

namespace {

void entry_json(std::ostringstream& os, const LedgerEntry& e) {
  os << "{\"messages\":" << e.messages << ",\"elements\":" << e.elements << ",\"bytes\":"
     << e.bytes << "}";
}

}  // namespace

std::string Ledger::report_json() const {
  std::ostringstream os;
  os << "{";
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    os << "\"" << phase_name(p) << "\":{\"total\":";
    entry_json(os, phase_total(p));
    os << ",\"categories\":{";
    bool first = true;
    for (const auto& [cat, e] : bucket(p)) {
      if (!first) os << ",";
      first = false;
      os << "\"" << cat << "\":";
      entry_json(os, e);
    }
    os << "}},";
  }
  os << "\"total\":";
  entry_json(os, total());
  os << "}";
  return os.str();
}

std::string Ledger::report() const {
  std::ostringstream os;
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    auto t = phase_total(p);
    os << phase_name(p) << ": " << t.messages << " msgs, " << t.elements << " elems, "
       << t.bytes << " bytes\n";
    for (const auto& [cat, e] : bucket(p)) {
      os << "  " << cat << ": " << e.messages << " msgs, " << e.elements << " elems, "
         << e.bytes << " bytes\n";
    }
  }
  return os.str();
}

}  // namespace yoso
