#include "yoso/role_assign.hpp"

#include <stdexcept>

namespace yoso {

RoleAssignment::RoleAssignment(std::uint64_t pool_size, std::uint64_t corrupt,
                               std::uint64_t failstop, std::uint64_t seed)
    : pool_size_(pool_size), corrupt_(corrupt), failstop_(failstop), rng_(seed) {
  if (corrupt + failstop > pool_size) {
    throw std::invalid_argument("RoleAssignment: corrupt + failstop > pool");
  }
}

CommitteeCorruption RoleAssignment::sample_committee(unsigned n, MaliciousStrategy strategy) {
  if (n > pool_size_) throw std::invalid_argument("RoleAssignment: committee > pool");
  CommitteeCorruption c;
  c.status.assign(n, RoleStatus::Honest);
  c.strategy = strategy;
  // Draw n machines without replacement; track how many of the remaining
  // corrupt / fail-stop machines get picked.
  std::uint64_t remaining = pool_size_;
  std::uint64_t bad = corrupt_;
  std::uint64_t fs = failstop_;
  for (unsigned i = 0; i < n; ++i) {
    std::uint64_t pick = rng_.u64_below(remaining);
    if (pick < bad) {
      c.status[i] = RoleStatus::Malicious;
      --bad;
    } else if (pick < bad + fs) {
      c.status[i] = RoleStatus::FailStop;
      --fs;
    }
    --remaining;
  }
  return c;
}

unsigned RoleAssignment::sample_corrupt_count(unsigned n) {
  auto c = sample_committee(n);
  return c.count(RoleStatus::Malicious);
}

}  // namespace yoso
