// The simulated bulletin board.
//
// In YOSO, every message — point-to-point included — is realized as a
// broadcast of (possibly encrypted) data on a public board, so one-to-one
// communication costs the same as one-to-all (Section 3.3).  The base
// Bulletin only needs to (a) keep an auditable log, (b) feed the
// communication Ledger, and (c) enforce the one-shot discipline; actual
// payloads flow through typed protocol structs in src/mpc.
//
// The publish surface is virtual: net::NetBulletin (src/net) substitutes a
// discrete-event network simulation behind the same interface, so YosoMpc
// runs unmodified but additionally yields virtual wall-clock timings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "yoso/committee.hpp"
#include "yoso/ledger.hpp"

namespace yoso {

struct Post {
  std::string committee;
  unsigned role_index0 = 0;
  std::string label;
  std::size_t bytes = 0;
  std::size_t elements = 0;
  Phase phase = Phase::Setup;
  bool external = false;  // client/dealer post, not a one-shot role
};

// Fate of one post, reported back to the publishing protocol code.  The
// passive board accepts everything; fault-injecting transports
// (net::NetBulletin under a chaos schedule) return the loss class so the
// caller can treat the role as unheard — the role still spoke (its one-shot
// token is consumed) but no observer ever sees the message.
enum class PostStatus : std::uint8_t {
  Accepted,        // on the board, visible to every observer
  DroppedLink,     // lost on the sender's access link
  CorruptPayload,  // bit-flipped in flight; the frame checksum rejects it
  Truncated,       // truncated frame; the codec rejects it
  Late,            // arrived after the committee's window (+ grace) closed
};

const char* post_status_name(PostStatus s);

class Bulletin {
public:
  explicit Bulletin(Ledger& ledger) : ledger_(&ledger) {}
  virtual ~Bulletin() = default;

  // Records that role `index0` of `committee` published `elements` ring
  // elements totaling `bytes` under `label`.
  //
  // One-shot enforcement is on the default path: a committee gets exactly
  // one contiguous posting window (its activation), a role is marked as
  // having spoken on its first post, and re-activating a committee whose
  // window has closed throws — even when the caller forgot to thread
  // `first_post_of_role` / Committee::speak.  `first_post_of_role = true`
  // additionally insists this is the role's first post (throws otherwise).
  //
  // `payload` optionally carries the real serialized message (one tagged
  // wire/codec message per post); transports that model traffic request it
  // via wants_payload() and fragment it into frames.
  //
  // The return value is the post's fate.  Anything other than Accepted
  // means no observer sees the message: the publishing code must treat the
  // role as silent for this value (its in-memory contribution is void).
  virtual PostStatus publish(Committee& committee, unsigned index0, Phase phase,
                             const std::string& label, std::size_t bytes, std::size_t elements,
                             bool first_post_of_role = false,
                             const std::vector<std::uint8_t>* payload = nullptr);

  // Publication by an entity outside any committee (a client / the dealer);
  // those senders are not one-shot roles.
  virtual void publish_external(const std::string& who, Phase phase, const std::string& label,
                                std::size_t bytes, std::size_t elements,
                                const std::vector<std::uint8_t>* payload = nullptr);

  // Should the protocol hand real encoded payloads to publish()?  The
  // passive board does not need them; network transports do.
  virtual bool wants_payload() const { return false; }

  // Hook invoked by the protocol driver right after a committee is spawned.
  // The net layer uses it to realize link failures as fail-stop roles; the
  // passive board ignores it.
  virtual void on_committee_spawn(Committee& committee) { (void)committee; }

  const Ledger& ledger() const { return *ledger_; }
  // Locks internally; the reference stays valid for the board's lifetime
  // but is only consistent while no publisher is active (today the
  // simulation is single-threaded).
  const std::vector<Post>& log() const;
  std::size_t posts_by(const std::string& committee) const;

  // Machine-readable single-line JSON dump (ledger + audit-log summary).
  virtual std::string report_json() const;

protected:
  // Shared bookkeeping for subclasses: ledger recording + audit log.
  void record_post(const std::string& sender, unsigned index0, Phase phase,
                   const std::string& label, std::size_t bytes, std::size_t elements,
                   bool external = false);

private:
  Ledger* ledger_;
  // The audit log and the one-shot window state are shared across every
  // publisher, so they are lock-protected and thread-safety-annotated
  // ahead of the multi-core engine (docs/STATIC_ANALYSIS.md).  The Ledger
  // carries its own lock.
  mutable Mutex mu_;
  std::vector<Post> log_ GUARDED_BY(mu_);
  std::string open_committee_ GUARDED_BY(mu_);               // committee currently posting
  std::set<std::string> closed_committees_ GUARDED_BY(mu_);  // posting window closed
};

}  // namespace yoso
