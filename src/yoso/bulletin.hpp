// The simulated bulletin board.
//
// In YOSO, every message — point-to-point included — is realized as a
// broadcast of (possibly encrypted) data on a public board, so one-to-one
// communication costs the same as one-to-all (Section 3.3).  The board
// therefore only needs to (a) keep an auditable log and (b) feed the
// communication Ledger; actual payloads flow through typed protocol
// structs in src/mpc.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "yoso/committee.hpp"
#include "yoso/ledger.hpp"

namespace yoso {

struct Post {
  std::string committee;
  unsigned role_index0 = 0;
  std::string label;
  std::size_t bytes = 0;
  std::size_t elements = 0;
  Phase phase = Phase::Setup;
};

class Bulletin {
public:
  explicit Bulletin(Ledger& ledger) : ledger_(&ledger) {}

  // Records that role `index0` of `committee` published `elements` ring
  // elements totaling `bytes` under `label`.  Enforces the one-shot rule
  // through Committee::speak when `first_post_of_role` is true.
  void publish(Committee& committee, unsigned index0, Phase phase, const std::string& label,
               std::size_t bytes, std::size_t elements, bool first_post_of_role = false);

  // Publication by an entity outside any committee (a client / the dealer).
  void publish_external(const std::string& who, Phase phase, const std::string& label,
                        std::size_t bytes, std::size_t elements);

  const std::vector<Post>& log() const { return log_; }
  std::size_t posts_by(const std::string& committee) const;

private:
  Ledger* ledger_;
  std::vector<Post> log_;
};

}  // namespace yoso
