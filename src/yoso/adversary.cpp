#include "yoso/adversary.hpp"

#include <algorithm>
#include <stdexcept>

namespace yoso {

unsigned CommitteeCorruption::count(RoleStatus s) const {
  return static_cast<unsigned>(std::count(status.begin(), status.end(), s));
}

AdversaryPlan AdversaryPlan::honest(unsigned n) {
  AdversaryPlan p;
  p.n_ = n;
  return p;
}

AdversaryPlan AdversaryPlan::fixed(unsigned n, unsigned t_mal, unsigned f_stop,
                                   MaliciousStrategy strategy) {
  if (t_mal + f_stop > n) throw std::invalid_argument("AdversaryPlan: too many corruptions");
  AdversaryPlan p;
  p.n_ = n;
  p.t_mal_ = t_mal;
  p.f_stop_ = f_stop;
  p.strategy_ = strategy;
  return p;
}

AdversaryPlan AdversaryPlan::random(unsigned n, unsigned t_mal, unsigned f_stop, Rng& rng,
                                    MaliciousStrategy strategy) {
  AdversaryPlan p = fixed(n, t_mal, f_stop, strategy);
  p.randomize_ = true;
  p.seed_ = rng.u64();
  return p;
}

AdversaryPlan AdversaryPlan::pool(unsigned n, std::uint64_t pool_size, std::uint64_t corrupt,
                                  std::uint64_t failstop, std::uint64_t seed,
                                  MaliciousStrategy strategy) {
  if (corrupt + failstop > pool_size || n > pool_size) {
    throw std::invalid_argument("AdversaryPlan::pool: inconsistent pool");
  }
  AdversaryPlan p;
  p.n_ = n;
  p.strategy_ = strategy;
  p.seed_ = seed;
  p.pool_size_ = pool_size;
  p.pool_corrupt_ = corrupt;
  p.pool_failstop_ = failstop;
  return p;
}

AdversaryPlan& AdversaryPlan::with_leaky(unsigned leaky) {
  if (t_mal_ + f_stop_ + leaky > n_) {
    throw std::invalid_argument("AdversaryPlan: too many leaky roles");
  }
  leaky_ = leaky;
  return *this;
}

CommitteeCorruption AdversaryPlan::committee(unsigned idx) const {
  CommitteeCorruption c;
  c.status.assign(n_, RoleStatus::Honest);
  c.strategy = strategy_;
  if (pool_size_ > 0) {
    // Hypergeometric draw of n machines from the pool, fresh per committee.
    Rng rng(seed_ ^ (0xa24baed4963ee407ULL * (idx + 1)));
    std::uint64_t remaining = pool_size_, bad = pool_corrupt_, fs = pool_failstop_;
    for (unsigned i = 0; i < n_; ++i) {
      std::uint64_t pick = rng.u64_below(remaining);
      if (pick < bad) {
        c.status[i] = RoleStatus::Malicious;
        --bad;
      } else if (pick < bad + fs) {
        c.status[i] = RoleStatus::FailStop;
        --fs;
      }
      --remaining;
    }
    return c;
  }
  for (unsigned i = 0; i < t_mal_; ++i) c.status[i] = RoleStatus::Malicious;
  for (unsigned i = 0; i < f_stop_; ++i) c.status[t_mal_ + i] = RoleStatus::FailStop;
  for (unsigned i = 0; i < leaky_; ++i) c.status[t_mal_ + f_stop_ + i] = RoleStatus::Leaky;
  if (randomize_) {
    // Deterministic per-committee shuffle from the plan seed.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (idx + 1)));
    for (unsigned i = n_; i > 1; --i) {
      unsigned j = static_cast<unsigned>(rng.u64_below(i));
      std::swap(c.status[i - 1], c.status[j]);
    }
  }
  return c;
}

}  // namespace yoso
