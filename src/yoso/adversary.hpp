// Adversary model for the simulated YOSO execution.
//
// The paper distinguishes (Section 2 + Remark 1):
//   * Malicious roles  — behave arbitrarily; our controller makes them emit
//     syntactically valid but *wrong* contributions (bad ciphertexts, bad
//     shares, proofs over wrong statements), which honest verifiers must
//     reject via the NIZKs.
//   * Fail-stop roles  — honest parties that silently drop out (DoS,
//     crashes); they simply never speak (Section 5.4).
//   * Leaky roles      — honest-but-curious; they follow the protocol, so
//     for execution purposes they count as honest (they only matter for
//     privacy analysis, not correctness/GOD).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/rand.hpp"

namespace yoso {

enum class RoleStatus : std::uint8_t { Honest, Leaky, Malicious, FailStop };

// Which wrong behaviour a malicious role exhibits this execution.
enum class MaliciousStrategy : std::uint8_t {
  BadShare,        // publish a perturbed value with a proof that cannot verify
  BadProof,        // publish the right value but a junk proof
  Silent,          // behave like a fail-stop (always allowed for malicious)
  HonestLooking,   // follow the protocol (covert adversary baseline)
};

// The corruption pattern of one committee.
struct CommitteeCorruption {
  std::vector<RoleStatus> status;   // per role, size n
  MaliciousStrategy strategy = MaliciousStrategy::BadShare;

  unsigned n() const { return static_cast<unsigned>(status.size()); }
  bool is_active(unsigned index0) const {  // does role speak at all?
    return status[index0] != RoleStatus::FailStop &&
           !(status[index0] == RoleStatus::Malicious && strategy == MaliciousStrategy::Silent);
  }
  bool is_malicious(unsigned index0) const { return status[index0] == RoleStatus::Malicious; }
  unsigned count(RoleStatus s) const;
};

// Builds corruption patterns for tests and benches.
class AdversaryPlan {
public:
  // All committees honest.
  static AdversaryPlan honest(unsigned n);
  // Every committee: the first `t_mal` roles malicious, next `f_stop`
  // fail-stop (deterministic placement; position does not matter for the
  // protocol, which treats indices symmetrically).
  static AdversaryPlan fixed(unsigned n, unsigned t_mal, unsigned f_stop,
                             MaliciousStrategy strategy = MaliciousStrategy::BadShare);
  // Random placement of `t_mal` malicious + `f_stop` fail-stop roles,
  // re-sampled per committee (models YOSO's random role corruption).
  static AdversaryPlan random(unsigned n, unsigned t_mal, unsigned f_stop, Rng& rng,
                              MaliciousStrategy strategy = MaliciousStrategy::BadShare);
  // "Natural YOSO": each committee's corruption pattern is drawn from a
  // machine pool of `pool_size` machines with `corrupt` malicious and
  // `failstop` crash-prone ones (hypergeometric per committee, fresh draw
  // per committee index — the role-assignment functionality's view).
  static AdversaryPlan pool(unsigned n, std::uint64_t pool_size, std::uint64_t corrupt,
                            std::uint64_t failstop, std::uint64_t seed,
                            MaliciousStrategy strategy = MaliciousStrategy::BadShare);
  // Marks `leaky` roles per committee honest-but-curious (they follow the
  // protocol; only the privacy analysis distinguishes them).
  AdversaryPlan& with_leaky(unsigned leaky);

  // The corruption pattern for the `idx`-th committee spawned.
  CommitteeCorruption committee(unsigned idx) const;

  unsigned n() const { return n_; }

private:
  unsigned n_ = 0;
  unsigned t_mal_ = 0;
  unsigned f_stop_ = 0;
  unsigned leaky_ = 0;
  MaliciousStrategy strategy_ = MaliciousStrategy::HonestLooking;
  bool randomize_ = false;
  std::uint64_t seed_ = 0;
  // Pool mode (natural YOSO): when pool_size_ > 0, per-committee counts are
  // hypergeometric draws instead of the fixed t_mal_/f_stop_.
  std::uint64_t pool_size_ = 0;
  std::uint64_t pool_corrupt_ = 0;
  std::uint64_t pool_failstop_ = 0;
};

}  // namespace yoso
