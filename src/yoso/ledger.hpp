// Communication ledger: every value a role publishes to the bulletin board
// is recorded here, priced in bytes and in ring elements.  The paper's
// claims (online O(1) per gate, offline O(n) per gate) are verified against
// these counters by the benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace yoso {

enum class Phase { Setup, Offline, Online };

const char* phase_name(Phase p);

struct LedgerEntry {
  std::size_t messages = 0;  // distinct broadcasts
  std::size_t elements = 0;  // ring/group elements carried
  std::size_t bytes = 0;     // serialized size
};

class Ledger {
public:
  // Records one broadcast of `elements` ring elements totaling `bytes`.
  void record(Phase phase, const std::string& category, std::size_t bytes,
              std::size_t elements = 1);

  LedgerEntry phase_total(Phase phase) const;
  LedgerEntry total() const;
  // Per-category breakdown within a phase.
  const std::map<std::string, LedgerEntry>& categories(Phase phase) const;

  void reset();

  // Adds every entry of `other` into this ledger, phase and category
  // preserved.  The service layer (src/service) folds per-session ledgers
  // and the triple pool's production ledgers into one aggregate view.
  void merge(const Ledger& other);

  // Human-readable dump (used by benches and examples).
  std::string report() const;

  // Machine-readable single-line JSON dump: per-phase totals and category
  // breakdowns plus the grand total.  Benches write this to BENCH_comm.json
  // so the communication trajectory is tracked across PRs.
  std::string report_json() const;

private:
  std::map<std::string, LedgerEntry> setup_, offline_, online_;
  std::map<std::string, LedgerEntry>& bucket(Phase phase);
  const std::map<std::string, LedgerEntry>& bucket(Phase phase) const;
};

}  // namespace yoso
