// Communication ledger: every value a role publishes to the bulletin board
// is recorded here, priced in bytes and in ring elements.  The paper's
// claims (online O(1) per gate, offline O(n) per gate) are verified against
// these counters by the benchmark harness.
//
// The ledger is one of the shared-state classes the multi-core engine
// (ROADMAP item 3) will contend on, so its buckets are lock-protected and
// thread-safety-annotated: clang -Wthread-safety proves every access goes
// through mu_ (see docs/STATIC_ANALYSIS.md, "Concurrency readiness").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/sync.hpp"

namespace yoso {

enum class Phase { Setup, Offline, Online };

const char* phase_name(Phase p);

struct LedgerEntry {
  std::size_t messages = 0;  // distinct broadcasts
  std::size_t elements = 0;  // ring/group elements carried
  std::size_t bytes = 0;     // serialized size
};

class Ledger {
public:
  Ledger() = default;
  // Deep copy under `other`'s lock.  Needed because the mutex member would
  // otherwise delete copying, and the service layer returns aggregate
  // ledgers by value.
  Ledger(const Ledger& other);
  Ledger& operator=(const Ledger& other);

  // Records one broadcast of `elements` ring elements totaling `bytes`.
  void record(Phase phase, const std::string& category, std::size_t bytes,
              std::size_t elements = 1);

  LedgerEntry phase_total(Phase phase) const;
  LedgerEntry total() const;
  // Per-category breakdown within a phase.  Locks internally; the returned
  // reference stays valid for the ledger's lifetime but is only consistent
  // while no writer is active (today the simulation is single-threaded).
  const std::map<std::string, LedgerEntry>& categories(Phase phase) const;

  void reset();

  // Adds every entry of `other` into this ledger, phase and category
  // preserved.  The service layer (src/service) folds per-session ledgers
  // and the triple pool's production ledgers into one aggregate view.
  void merge(const Ledger& other);

  // Human-readable dump (used by benches and examples).
  std::string report() const;

  // Machine-readable single-line JSON dump: per-phase totals and category
  // breakdowns plus the grand total.  Benches write this to BENCH_comm.json
  // so the communication trajectory is tracked across PRs.
  std::string report_json() const;

private:
  mutable Mutex mu_;
  std::map<std::string, LedgerEntry> setup_ GUARDED_BY(mu_);
  std::map<std::string, LedgerEntry> offline_ GUARDED_BY(mu_);
  std::map<std::string, LedgerEntry> online_ GUARDED_BY(mu_);

  std::map<std::string, LedgerEntry>& bucket(Phase phase) REQUIRES(mu_);
  const std::map<std::string, LedgerEntry>& bucket(Phase phase) const REQUIRES(mu_);
  LedgerEntry phase_total_locked(Phase phase) const REQUIRES(mu_);
  LedgerEntry total_locked() const REQUIRES(mu_);
};

}  // namespace yoso
