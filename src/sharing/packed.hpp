// Packed Shamir secret sharing [Franklin-Yung 92], the core primitive of the
// paper's online phase, plus standard Shamir as the k = 1 special case.
//
// Conventions (Section 3.2 of the paper):
//   * a degree-d packed sharing [[x]]_d of x in F^k stores x_i at evaluation
//     point -(i-1), i.e. at 0, -1, ..., -(k-1);
//   * party i's share is the polynomial evaluated at point i (1-based);
//   * d + 1 shares reconstruct; any d - k + 1 shares are independent of the
//     secrets;
//   * sharings are linear: [[x + y]]_d = [[x]]_d + [[y]]_d;
//   * share-wise products multiply degrees: [[x * y]]_{d1+d2};
//   * multiplication-friendliness: a public vector c becomes a *determined*
//     degree-(k-1) sharing, so c * [[x]]_{n-k} = [[c * x]]_{n-1} locally.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/secret.hpp"
#include "obs/profile.hpp"
#include "crypto/rand.hpp"
#include "field/poly.hpp"

namespace yoso {

// A packed sharing: shares[i] belongs to party holding evaluation point
// points[i].  `degree` and `k` describe the underlying polynomial.
template <typename R>
struct PackedShares {
  unsigned degree = 0;
  unsigned k = 1;
  std::vector<std::int64_t> points;           // evaluation point per share
  std::vector<typename R::Elem> shares;
};

// Secret slot i (0-based) lives at evaluation point -(i).
inline std::int64_t secret_point(unsigned slot) { return -static_cast<std::int64_t>(slot); }

// Default share points for n parties: 1..n.
inline std::vector<std::int64_t> party_points(unsigned n) {
  std::vector<std::int64_t> p(n);
  for (unsigned i = 0; i < n; ++i) p[i] = static_cast<std::int64_t>(i) + 1;
  return p;
}

// Produces a uniformly random degree-`degree` packed sharing of `secrets`
// among n parties (share points 1..n).
// Preconditions: secrets.size() >= 1, degree >= secrets.size() - 1,
// degree < n + secrets.size() (so the polynomial is determined by secrets
// plus at most n auxiliary values).
template <typename R>
PackedShares<R> packed_share(const R& ring, const std::vector<typename R::Elem>& secrets,
                             unsigned degree, unsigned n, Rng& rng) {
  const unsigned k = static_cast<unsigned>(secrets.size());
  if (k == 0) throw std::invalid_argument("packed_share: no secrets");
  OBS_OP_N(SharePack, k);
  if (degree + 1 < k) throw std::invalid_argument("packed_share: degree < k - 1");
  if (degree >= n + k) throw std::invalid_argument("packed_share: degree too large for n");

  // Fix the polynomial by its values at the k secret points plus
  // (degree + 1 - k) random auxiliary points chosen among the party points.
  std::vector<std::int64_t> fix_points;
  std::vector<typename R::Elem> fix_values;
  fix_points.reserve(degree + 1);
  fix_values.reserve(degree + 1);
  for (unsigned i = 0; i < k; ++i) {
    fix_points.push_back(secret_point(i));
    fix_values.push_back(secrets[i]);
  }
  for (unsigned i = 0; i + k < degree + 1; ++i) {
    fix_points.push_back(static_cast<std::int64_t>(i) + 1);
    fix_values.push_back(ring.random(rng));
  }
  const auto coeffs = interpolate_coeffs(ring, fix_points, fix_values);

  PackedShares<R> out;
  out.degree = degree;
  out.k = k;
  out.points = party_points(n);
  out.shares.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    out.shares.push_back(poly_eval(ring, coeffs, ring.from_int(out.points[i])));
  }
  return out;
}

// Taint-aware entry point: shares tainted secrets.  The declassify() here is
// the sanctioned exit for dealer-side sharing — once interpolated against
// degree + 1 - k uniformly random auxiliary values, any d - k + 1 shares are
// information-theoretically independent of the secrets, and each share is
// addressed to exactly one party.
template <typename R>
PackedShares<R> packed_share_secret(const R& ring,
                                    const std::vector<Secret<typename R::Elem>>& secrets,
                                    unsigned degree, unsigned n, Rng& rng) {
  std::vector<typename R::Elem> plain;
  plain.reserve(secrets.size());
  for (const auto& s : secrets) plain.push_back(s.declassify());
  return packed_share(ring, plain, degree, n, rng);
}

// The *determined* degree-(k-1) sharing of a public vector c (all shares are
// functions of the secrets alone) — the multiplication-friendly embedding.
template <typename R>
PackedShares<R> packed_share_public(const R& ring, const std::vector<typename R::Elem>& c,
                                    unsigned n) {
  const unsigned k = static_cast<unsigned>(c.size());
  if (k == 0) throw std::invalid_argument("packed_share_public: no secrets");
  OBS_OP_N(SharePack, k);
  std::vector<std::int64_t> pts(k);
  for (unsigned i = 0; i < k; ++i) pts[i] = secret_point(i);
  const auto coeffs = interpolate_coeffs(ring, pts, c);

  PackedShares<R> out;
  out.degree = k - 1;
  out.k = k;
  out.points = party_points(n);
  out.shares.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    out.shares.push_back(poly_eval(ring, coeffs, ring.from_int(out.points[i])));
  }
  return out;
}

// Reconstructs the k secrets from any subset of shares.
// `points`/`shares` give the subset; needs at least degree + 1 of them.
template <typename R>
std::vector<typename R::Elem> packed_reconstruct(const R& ring,
                                                 const std::vector<std::int64_t>& points,
                                                 const std::vector<typename R::Elem>& shares,
                                                 unsigned degree, unsigned k) {
  if (points.size() != shares.size()) {
    throw std::invalid_argument("packed_reconstruct: size mismatch");
  }
  if (points.size() < degree + 1) {
    throw std::invalid_argument("packed_reconstruct: not enough shares");
  }
  OBS_OP_N(ShareUnpack, k);
  std::vector<std::int64_t> pts(points.begin(), points.begin() + degree + 1);
  std::vector<typename R::Elem> vals(shares.begin(), shares.begin() + degree + 1);
  std::vector<typename R::Elem> secrets;
  secrets.reserve(k);
  for (unsigned i = 0; i < k; ++i) {
    secrets.push_back(lagrange_at(ring, pts, vals, secret_point(i)));
  }
  return secrets;
}

// Share-wise linear operations (same party-point layout assumed).
template <typename R>
PackedShares<R> packed_add(const R& ring, const PackedShares<R>& a, const PackedShares<R>& b) {
  if (a.shares.size() != b.shares.size() || a.k != b.k) {
    throw std::invalid_argument("packed_add: layout mismatch");
  }
  PackedShares<R> out = a;
  out.degree = std::max(a.degree, b.degree);
  for (std::size_t i = 0; i < out.shares.size(); ++i) {
    out.shares[i] = ring.add(a.shares[i], b.shares[i]);
  }
  return out;
}

template <typename R>
PackedShares<R> packed_sub(const R& ring, const PackedShares<R>& a, const PackedShares<R>& b) {
  if (a.shares.size() != b.shares.size() || a.k != b.k) {
    throw std::invalid_argument("packed_sub: layout mismatch");
  }
  PackedShares<R> out = a;
  out.degree = std::max(a.degree, b.degree);
  for (std::size_t i = 0; i < out.shares.size(); ++i) {
    out.shares[i] = ring.sub(a.shares[i], b.shares[i]);
  }
  return out;
}

// Share-wise product: [[x * y]]_{d1 + d2}.  Precondition: d1 + d2 < n.
template <typename R>
PackedShares<R> packed_mul(const R& ring, const PackedShares<R>& a, const PackedShares<R>& b) {
  if (a.shares.size() != b.shares.size() || a.k != b.k) {
    throw std::invalid_argument("packed_mul: layout mismatch");
  }
  if (a.degree + b.degree >= a.shares.size()) {
    throw std::invalid_argument("packed_mul: product degree >= n");
  }
  PackedShares<R> out = a;
  out.degree = a.degree + b.degree;
  for (std::size_t i = 0; i < out.shares.size(); ++i) {
    out.shares[i] = ring.mul(a.shares[i], b.shares[i]);
  }
  return out;
}

// Multiplication by a public vector (Section 3.2): c * [[x]]_d with
// d <= n - k yields [[c * x]]_{d + k - 1} locally.
template <typename R>
PackedShares<R> packed_mul_public(const R& ring, const std::vector<typename R::Elem>& c,
                                  const PackedShares<R>& x) {
  auto cs = packed_share_public(ring, c, static_cast<unsigned>(x.shares.size()));
  return packed_mul(ring, cs, x);
}

// Standard (non-packed) Shamir, as the k = 1 case.
template <typename R>
PackedShares<R> shamir_share(const R& ring, const typename R::Elem& secret, unsigned degree,
                             unsigned n, Rng& rng) {
  return packed_share(ring, std::vector<typename R::Elem>{secret}, degree, n, rng);
}

template <typename R>
typename R::Elem shamir_reconstruct(const R& ring, const std::vector<std::int64_t>& points,
                                    const std::vector<typename R::Elem>& shares,
                                    unsigned degree) {
  return packed_reconstruct(ring, points, shares, degree, 1).front();
}

}  // namespace yoso
