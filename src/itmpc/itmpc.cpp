#include "itmpc/itmpc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sharing/packed.hpp"

namespace yoso {

void ItParams::validate() const {
  if (n == 0 || k == 0) throw std::invalid_argument("ItParams: zero n or k");
  if (recon_threshold() > n) {
    throw std::invalid_argument("ItParams: reconstruction threshold exceeds n");
  }
  if (packed_degree() >= n) throw std::invalid_argument("ItParams: degree >= n");
}

ItParams ItParams::for_gap(unsigned n, double eps, bool failstop_mode) {
  ItParams p;
  p.n = n;
  double bound = n * (0.5 - eps);
  unsigned t = static_cast<unsigned>(std::floor(bound - 1e-9));
  p.t = t;
  double keps = failstop_mode ? eps / 2.0 : eps;
  unsigned k = static_cast<unsigned>(std::floor(n * keps + 1e-9)) + 1;
  while (k > 1 && p.t + 2 * (k - 1) + 1 > n - p.t) --k;
  p.k = k;
  p.validate();
  return p;
}

ItCorrelations it_deal(const Circuit& circuit, const ItParams& params, Rng& rng) {
  Fp61Ring ring;
  const auto& gates = circuit.gates();
  ItCorrelations corr;
  corr.batches = make_batches(circuit, params.k);

  // Wire lambdas: fresh for input/mul outputs, derived through linear gates
  // (the dealer plays the role of the whole offline phase).
  corr.wire_lambda.resize(gates.size());
  for (WireId w = 0; w < gates.size(); ++w) {
    const Gate& g = gates[w];
    switch (g.kind) {
      case GateKind::Input:
      case GateKind::Mul:
        corr.wire_lambda[w] = ring.random(rng);
        break;
      case GateKind::Add:
        corr.wire_lambda[w] = ring.add(corr.wire_lambda[g.in0], corr.wire_lambda[g.in1]);
        break;
      case GateKind::Sub:
        corr.wire_lambda[w] = ring.sub(corr.wire_lambda[g.in0], corr.wire_lambda[g.in1]);
        break;
      case GateKind::AddConst:
        corr.wire_lambda[w] = corr.wire_lambda[g.in0];
        break;
      case GateKind::MulConst: {
        mpz_class c = g.constant % Fp61::kModulus;
        if (c < 0) c += Fp61::kModulus;
        corr.wire_lambda[w] = ring.mul(corr.wire_lambda[g.in0], c.get_ui());
        break;
      }
    }
  }

  // Packed sharings per batch: lambda_alpha, lambda_beta and
  // Gamma = lambda_alpha * lambda_beta - lambda_gamma, all degree t+k-1.
  const unsigned d = params.packed_degree();
  corr.packed_alpha.resize(corr.batches.size());
  corr.packed_beta.resize(corr.batches.size());
  corr.packed_gamma.resize(corr.batches.size());
  for (std::size_t b = 0; b < corr.batches.size(); ++b) {
    const MulBatch& batch = corr.batches[b];
    std::vector<Secret<Fp61::Elem>> la, lb, gm;
    for (unsigned j = 0; j < params.k; ++j) {
      Fp61::Elem a = corr.wire_lambda[batch.alpha[j]];
      Fp61::Elem bb = corr.wire_lambda[batch.beta[j]];
      Fp61::Elem g = corr.wire_lambda[batch.gamma[j]];
      la.push_back(Secret<Fp61::Elem>(a));
      lb.push_back(Secret<Fp61::Elem>(bb));
      gm.push_back(Secret<Fp61::Elem>(ring.sub(ring.mul(a, bb), g)));
    }
    corr.packed_alpha[b] = packed_share_secret(ring, la, d, params.n, rng).shares;
    corr.packed_beta[b] = packed_share_secret(ring, lb, d, params.n, rng).shares;
    corr.packed_gamma[b] = packed_share_secret(ring, gm, d, params.n, rng).shares;
  }

  for (WireId w = 0; w < gates.size(); ++w) {
    if (gates[w].kind == GateKind::Input) corr.input_lambda[w] = corr.wire_lambda[w];
  }
  for (const auto& spec : circuit.outputs()) {
    corr.output_lambda[spec.wire] = corr.wire_lambda[spec.wire];
  }
  return corr;
}

ItResult it_online(const Circuit& circuit, const ItParams& params,
                   const ItCorrelations& corr,
                   const std::vector<std::vector<Fp61::Elem>>& inputs,
                   unsigned failstops_per_committee, std::uint64_t seed) {
  Fp61Ring ring;
  const auto& gates = circuit.gates();
  ItResult result;

  // --- Inputs -------------------------------------------------------------
  std::vector<bool> known(gates.size(), false);
  std::vector<Fp61::Elem> mu(gates.size(), 0);
  std::vector<std::size_t> next_input(circuit.num_clients(), 0);
  for (WireId w = 0; w < gates.size(); ++w) {
    if (gates[w].kind != GateKind::Input) continue;
    unsigned c = gates[w].client;
    if (c >= inputs.size() || next_input[c] >= inputs[c].size()) {
      throw std::invalid_argument("it_online: missing input");
    }
    Fp61::Elem v = Fp61::reduce(inputs[c][next_input[c]++]);
    mu[w] = ring.sub(v, corr.input_lambda.at(w));
    known[w] = true;
    ++result.input_elements;
  }

  auto sweep_linear = [&]() {
    for (WireId w = 0; w < gates.size(); ++w) {
      if (known[w]) continue;
      const Gate& g = gates[w];
      switch (g.kind) {
        case GateKind::Add:
          if (known[g.in0] && known[g.in1]) {
            mu[w] = ring.add(mu[g.in0], mu[g.in1]);
            known[w] = true;
          }
          break;
        case GateKind::Sub:
          if (known[g.in0] && known[g.in1]) {
            mu[w] = ring.sub(mu[g.in0], mu[g.in1]);
            known[w] = true;
          }
          break;
        case GateKind::AddConst:
          if (known[g.in0]) {
            mu[w] = ring.add(mu[g.in0], Fp61::from_int(g.constant.get_si()));
            known[w] = true;
          }
          break;
        case GateKind::MulConst:
          if (known[g.in0]) {
            mpz_class c = g.constant % Fp61::kModulus;
            if (c < 0) c += Fp61::kModulus;
            mu[w] = ring.mul(mu[g.in0], c.get_ui());
            known[w] = true;
          }
          break;
        default:
          break;
      }
    }
  };
  sweep_linear();

  // --- Multiplication layers ----------------------------------------------
  Rng crash_rng(seed);
  const unsigned depth = circuit.mul_depth();
  for (unsigned layer = 1; layer <= depth; ++layer) {
    // Crash a random subset of this layer's committee.
    std::vector<bool> alive(params.n, true);
    unsigned crashed = 0;
    while (crashed < std::min(failstops_per_committee, params.n)) {
      unsigned i = static_cast<unsigned>(crash_rng.u64_below(params.n));
      if (alive[i]) {
        alive[i] = false;
        ++crashed;
      }
    }

    for (std::size_t b = 0; b < corr.batches.size(); ++b) {
      const MulBatch& batch = corr.batches[b];
      if (batch.layer != layer) continue;
      std::vector<Fp61::Elem> mu_a, mu_b;
      for (unsigned j = 0; j < params.k; ++j) {
        mu_a.push_back(mu[batch.alpha[j]]);
        mu_b.push_back(mu[batch.beta[j]]);
      }
      auto mu_a_sh = packed_share_public(ring, mu_a, params.n).shares;
      auto mu_b_sh = packed_share_public(ring, mu_b, params.n).shares;

      // Every alive role broadcasts its mu-share (one field element).
      std::vector<std::int64_t> pts;
      std::vector<Fp61::Elem> shares;
      for (unsigned i = 0; i < params.n; ++i) {
        if (!alive[i]) continue;
        // mu_i^gamma = mu_a mu_b + mu_a lam_b + mu_b lam_a + Gamma_i
        Fp61::Elem s = ring.add(
            ring.add(ring.mul(mu_a_sh[i], mu_b_sh[i]),
                     ring.mul(mu_a_sh[i], corr.packed_beta[b][i])),
            ring.add(ring.mul(mu_b_sh[i], corr.packed_alpha[b][i]), corr.packed_gamma[b][i]));
        ++result.mult_share_elements;
        if (pts.size() < params.recon_threshold()) {
          pts.push_back(static_cast<std::int64_t>(i) + 1);
          shares.push_back(s);
        }
      }
      if (pts.size() < params.recon_threshold()) {
        result.delivered = false;
        return result;
      }
      for (unsigned j = 0; j < batch.real; ++j) {
        mu[batch.gamma[j]] = lagrange_at(ring, pts, shares, secret_point(j));
        known[batch.gamma[j]] = true;
      }
    }
    sweep_linear();
  }

  // --- Outputs --------------------------------------------------------------
  result.delivered = true;
  for (const auto& spec : circuit.outputs()) {
    if (!known[spec.wire]) throw std::logic_error("it_online: output wire not evaluated");
    result.outputs.push_back(ring.add(mu[spec.wire], corr.output_lambda.at(spec.wire)));
  }
  return result;
}

}  // namespace yoso
