// Information-theoretic packed YOSO MPC (the paper's future-work item:
// "explore what the impact of the gap is in the context of
// information-theoretic security").
//
// This module instantiates the same online structure as the computational
// protocol — public mu = v - lambda per wire, one broadcast share per role
// per batch of k multiplications, reconstruction from t + 2(k-1) + 1
// shares — but over the fast prime field F_{2^61-1} with the offline
// correlations produced by a trusted dealer (the IT analogue of the
// preprocessing functionality; in a deployment this would itself be a
// committee protocol a la BGW).  Security is semi-honest /
// information-theoretic: there are no proofs, so a mu-share is one field
// element, and honest-but-silent (fail-stop) roles are tolerated exactly
// as in Section 5.4.
//
// Because no public-key operations are involved, this engine runs
// committees of thousands of roles on a laptop, which is how
// bench_it_scaling demonstrates the O(1)-per-gate online shape at
// paper-scale committee sizes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "circuit/batching.hpp"
#include "circuit/circuit.hpp"
#include "crypto/rand.hpp"
#include "field/fp61.hpp"
#include "mpc/params.hpp"

namespace yoso {

struct ItParams {
  unsigned n = 0;  // committee size
  unsigned t = 0;  // privacy threshold (shares of any t roles leak nothing)
  unsigned k = 1;  // packing factor

  unsigned recon_threshold() const { return t + 2 * (k - 1) + 1; }
  unsigned packed_degree() const { return t + k - 1; }
  void validate() const;

  static ItParams for_gap(unsigned n, double eps, bool failstop_mode = false);
};

// The dealer's output: everything the online phase consumes.
struct ItCorrelations {
  std::vector<Fp61::Elem> wire_lambda;  // lambda per wire (dealer-internal;
                                        // exposed for tests/simulation)
  std::vector<MulBatch> batches;
  // packed_*[b][i] = role i's share for batch b.
  std::vector<std::vector<Fp61::Elem>> packed_alpha, packed_beta, packed_gamma;
  std::map<WireId, Fp61::Elem> input_lambda;   // handed to the owning client
  std::map<WireId, Fp61::Elem> output_lambda;  // handed to the receiving client
};

// Trusted-dealer offline phase.
ItCorrelations it_deal(const Circuit& circuit, const ItParams& params, Rng& rng);

struct ItResult {
  bool delivered = false;              // false if too few shares survived
  std::vector<Fp61::Elem> outputs;     // valid when delivered
  // Online accounting: field elements broadcast, split by source.
  std::size_t input_elements = 0;
  std::size_t mult_share_elements = 0;
};

// Online phase.  `failstops_per_committee` roles per layer committee stay
// silent (chosen deterministically from `seed`, modelling random crashes).
ItResult it_online(const Circuit& circuit, const ItParams& params,
                   const ItCorrelations& corr,
                   const std::vector<std::vector<Fp61::Elem>>& inputs,
                   unsigned failstops_per_committee, std::uint64_t seed);

}  // namespace yoso
