#include "nizk/pdec_proof.hpp"

namespace yoso {

namespace {

LinkStatement make_statement(const ThresholdPK& tpk, unsigned index, const mpz_class& c,
                             const mpz_class& partial) {
  LinkStatement st;
  st.domain = "pdec";
  const mpz_class c2 = c * c % tpk.pk.ns1;
  st.exponent_legs.push_back(ExponentLeg{c2, partial, tpk.pk.ns1});
  st.exponent_legs.push_back(ExponentLeg{tpk.v, tpk.vks.at(index - 1), tpk.pk.ns1});
  st.bound_bits = tpk.share_bound_bits;
  return st;
}

}  // namespace

PdecProof prove_pdec(const ThresholdPK& tpk, const ThresholdKeyShare& share, const mpz_class& c,
                     const mpz_class& partial, Rng& rng) {
  LinkStatement st = make_statement(tpk, share.index, c, partial);
  LinkWitness w;
  w.x = share.d_i;
  return PdecProof{link_prove(st, w, rng)};
}

bool verify_pdec(const ThresholdPK& tpk, unsigned index, const mpz_class& c,
                 const mpz_class& partial, const PdecProof& proof) {
  if (index == 0 || index > tpk.n) return false;
  return link_verify(make_statement(tpk, index, c, partial), proof.inner);
}

}  // namespace yoso
