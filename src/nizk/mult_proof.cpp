#include "nizk/mult_proof.hpp"

#include "crypto/transcript.hpp"
#include "nizk/link_proof.hpp"  // for kKappa / kStat

namespace yoso {

namespace {

mpz_class powm(const mpz_class& base, const mpz_class& exp, const mpz_class& mod) {
  mpz_class r;
  mpz_powm(r.get_mpz_t(), base.get_mpz_t(), exp.get_mpz_t(), mod.get_mpz_t());
  return r;
}

mpz_class challenge(const PaillierPK& pk, const mpz_class& c_a, const mpz_class& c_b,
                    const mpz_class& c_p, const mpz_class& a1, const mpz_class& a2) {
  Transcript tr("yoso.nizk.mult");
  tr.absorb("pk.n", pk.n);
  tr.absorb_u64("pk.s", pk.s);
  tr.absorb("c_a", c_a);
  tr.absorb("c_b", c_b);
  tr.absorb("c_p", c_p);
  tr.absorb("a1", a1);
  tr.absorb("a2", a2);
  return tr.challenge_bits("e", kKappa);
}

}  // namespace

std::size_t MultProof::wire_bytes() const {
  return mpz_wire_size(a1) + mpz_wire_size(a2) + mpz_wire_size(z) + mpz_wire_size(z1) +
         mpz_wire_size(z2);
}

MultProof prove_mult(const PaillierPK& pk, const mpz_class& c_a, const mpz_class& c_b,
                     const mpz_class& c_p, const mpz_class& b, const mpz_class& r_b,
                     const mpz_class& rho, Rng& rng) {
  const unsigned mask_bits =
      static_cast<unsigned>(mpz_sizeinbase(pk.ns.get_mpz_t(), 2)) + kKappa + kStat;
  mpz_class x = rng.bits(mask_bits);
  mpz_class u = rng.unit_mod(pk.n);
  mpz_class w = rng.unit_mod(pk.n);

  MultProof proof;
  proof.a1 = pk.enc(x, u);
  proof.a2 = powm(c_a, x, pk.ns1) * powm(w, pk.ns, pk.ns1) % pk.ns1;

  const mpz_class e = challenge(pk, c_a, c_b, c_p, proof.a1, proof.a2);
  proof.z = x + e * b;
  proof.z1 = u * powm(r_b, e, pk.ns1) % pk.ns1;
  proof.z2 = w * powm(rho, e, pk.ns1) % pk.ns1;
  return proof;
}

bool verify_mult(const PaillierPK& pk, const mpz_class& c_a, const mpz_class& c_b,
                 const mpz_class& c_p, const MultProof& proof) {
  if (!pk.valid_ciphertext(c_a) || !pk.valid_ciphertext(c_b) || !pk.valid_ciphertext(c_p)) {
    return false;
  }
  const mpz_class e = challenge(pk, c_a, c_b, c_p, proof.a1, proof.a2);
  // (1+N)^z * z1^{N^s} == a1 * c_b^e
  mpz_class lhs1 = pk.enc(proof.z, proof.z1);
  mpz_class rhs1 = proof.a1 * powm(c_b, e, pk.ns1) % pk.ns1;
  if (lhs1 != rhs1) return false;
  // c_a^z * z2^{N^s} == a2 * c_p^e
  mpz_class lhs2 = powm(c_a, proof.z, pk.ns1) * powm(proof.z2, pk.ns, pk.ns1) % pk.ns1;
  mpz_class rhs2 = proof.a2 * powm(c_p, e, pk.ns1) % pk.ns1;
  return lhs2 == rhs2;
}

}  // namespace yoso
