#include "nizk/mult_proof.hpp"

#include "crypto/ct.hpp"
#include "obs/profile.hpp"
#include "crypto/transcript.hpp"
#include "nizk/link_proof.hpp"  // for kKappa / kStat

namespace yoso {

namespace {

mpz_class challenge(const PaillierPK& pk, const mpz_class& c_a, const mpz_class& c_b,
                    const mpz_class& c_p, const mpz_class& a1, const mpz_class& a2) {
  Transcript tr("yoso.nizk.mult");
  tr.absorb("pk.n", pk.n);
  tr.absorb_u64("pk.s", pk.s);
  tr.absorb("c_a", c_a);
  tr.absorb("c_b", c_b);
  tr.absorb("c_p", c_p);
  tr.absorb("a1", a1);
  tr.absorb("a2", a2);
  return tr.challenge_bits("e", kKappa);
}

}  // namespace

std::size_t MultProof::wire_bytes() const {
  return mpz_wire_size(a1) + mpz_wire_size(a2) + mpz_wire_size(z) + mpz_wire_size(z1) +
         mpz_wire_size(z2);
}

MultProof prove_mult(const PaillierPK& pk, const mpz_class& c_a, const mpz_class& c_b,
                     const mpz_class& c_p, const SecretMpz& b, const SecretMpz& r_b,
                     const SecretMpz& rho, Rng& rng) {
  OBS_OP(NizkProve);
  const unsigned mask_bits =
      static_cast<unsigned>(mpz_sizeinbase(pk.ns.get_mpz_t(), 2)) + kKappa + kStat;
  SecretMpz x(rng.bits(mask_bits));
  SecretMpz u(rng.unit_mod(pk.n));
  SecretMpz w(rng.unit_mod(pk.n));

  MultProof proof;
  proof.a1 = pk.enc_secret(x, u.declassify());
  proof.a2 =
      (powm_sec(c_a, x, pk.ns1) * powm_sec(w, pk.ns, pk.ns1).declassify()) % pk.ns1;

  const mpz_class e = challenge(pk, c_a, c_b, c_p, proof.a1, proof.a2);
  proof.z = (x + b * e).declassify();
  proof.z1 = (u * powm_sec(r_b, e, pk.ns1) % pk.ns1).declassify();
  proof.z2 = (w * powm_sec(rho, e, pk.ns1) % pk.ns1).declassify();
  return proof;
}

bool verify_mult(const PaillierPK& pk, const mpz_class& c_a, const mpz_class& c_b,
                 const mpz_class& c_p, const MultProof& proof) {
  OBS_OP(NizkVerify);
  if (!pk.valid_ciphertext(c_a) || !pk.valid_ciphertext(c_b) || !pk.valid_ciphertext(c_p)) {
    return false;
  }
  const mpz_class e = challenge(pk, c_a, c_b, c_p, proof.a1, proof.a2);
  // (1+N)^z * z1^{N^s} == a1 * c_b^e
  mpz_class lhs1 = pk.enc(proof.z, proof.z1);
  mpz_class rhs1 = proof.a1 * powm_pub(c_b, e, pk.ns1) % pk.ns1;
  if (!ct_equal(lhs1, rhs1)) return false;
  // c_a^z * z2^{N^s} == a2 * c_p^e
  mpz_class lhs2 = powm_pub(c_a, proof.z, pk.ns1) * powm_pub(proof.z2, pk.ns, pk.ns1) % pk.ns1;
  mpz_class rhs2 = proof.a2 * powm_pub(c_p, e, pk.ns1) % pk.ns1;
  return ct_equal(lhs2, rhs2);
}

}  // namespace yoso
