// CDN-style NIZK proof of correct multiplication: the prover knows
// (b, r_b, rho) such that
//
//   c_b = (1+N)^b * r_b^{N^s}        (a fresh encryption of b), and
//   c_p = c_a^b * rho^{N^s}          (the homomorphic product, blinded),
//
// i.e. c_p encrypts a * b where c_a encrypts a.  Used by the second
// committee in Protocol 3 (Beaver triple generation): each role proves
// that its published c_i^c really is c^a scaled by its own b_i.
#pragma once

#include <gmpxx.h>

#include "crypto/rand.hpp"
#include "paillier/paillier.hpp"

namespace yoso {

struct MultProof {
  mpz_class a1;   // commitment for the c_b relation
  mpz_class a2;   // commitment for the c_p relation
  mpz_class z;    // masked b
  mpz_class z1;   // masked r_b
  mpz_class z2;   // masked rho

  std::size_t wire_bytes() const;
};

// The witness (b, r_b, rho) is tainted; the prover declassifies only the
// statistically masked responses.
MultProof prove_mult(const PaillierPK& pk, const mpz_class& c_a, const mpz_class& c_b,
                     const mpz_class& c_p, const SecretMpz& b, const SecretMpz& r_b,
                     const SecretMpz& rho, Rng& rng);

bool verify_mult(const PaillierPK& pk, const mpz_class& c_a, const mpz_class& c_b,
                 const mpz_class& c_p, const MultProof& proof);

}  // namespace yoso
