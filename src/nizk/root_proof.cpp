#include "nizk/root_proof.hpp"

#include "crypto/ct.hpp"
#include "obs/profile.hpp"
#include "crypto/transcript.hpp"
#include "nizk/link_proof.hpp"  // kKappa

namespace yoso {

namespace {

mpz_class challenge(const PaillierPK& pk, const mpz_class& u, const mpz_class& a) {
  Transcript tr("yoso.nizk.root");
  tr.absorb("pk.n", pk.n);
  tr.absorb_u64("pk.s", pk.s);
  tr.absorb("u", u);
  tr.absorb("a", a);
  return tr.challenge_bits("e", kKappa);
}

}  // namespace

std::size_t RootProof::wire_bytes() const { return mpz_wire_size(a) + mpz_wire_size(z); }

RootProof prove_root(const PaillierPK& pk, const mpz_class& u, const SecretMpz& rho, Rng& rng) {
  OBS_OP(NizkProve);
  SecretMpz u0(rng.unit_mod(pk.n));
  RootProof proof;
  proof.a = powm_sec(u0, pk.ns, pk.ns1).declassify();
  const mpz_class e = challenge(pk, u, proof.a);
  proof.z = (u0 * powm_sec(rho, e, pk.ns1) % pk.ns1).declassify();
  return proof;
}

bool verify_root(const PaillierPK& pk, const mpz_class& u, const RootProof& proof) {
  OBS_OP(NizkVerify);
  if (u <= 0 || u >= pk.ns1) return false;
  const mpz_class e = challenge(pk, u, proof.a);
  mpz_class lhs = powm_pub(proof.z, pk.ns, pk.ns1);
  mpz_class rhs = proof.a * powm_pub(u, e, pk.ns1) % pk.ns1;
  return ct_equal(lhs, rhs);
}

}  // namespace yoso
