#include "nizk/root_proof.hpp"

#include "crypto/transcript.hpp"
#include "nizk/link_proof.hpp"  // kKappa

namespace yoso {

namespace {

mpz_class powm(const mpz_class& base, const mpz_class& exp, const mpz_class& mod) {
  mpz_class r;
  mpz_powm(r.get_mpz_t(), base.get_mpz_t(), exp.get_mpz_t(), mod.get_mpz_t());
  return r;
}

mpz_class challenge(const PaillierPK& pk, const mpz_class& u, const mpz_class& a) {
  Transcript tr("yoso.nizk.root");
  tr.absorb("pk.n", pk.n);
  tr.absorb_u64("pk.s", pk.s);
  tr.absorb("u", u);
  tr.absorb("a", a);
  return tr.challenge_bits("e", kKappa);
}

}  // namespace

std::size_t RootProof::wire_bytes() const { return mpz_wire_size(a) + mpz_wire_size(z); }

RootProof prove_root(const PaillierPK& pk, const mpz_class& u, const mpz_class& rho, Rng& rng) {
  mpz_class u0 = rng.unit_mod(pk.n);
  RootProof proof;
  proof.a = powm(u0, pk.ns, pk.ns1);
  const mpz_class e = challenge(pk, u, proof.a);
  proof.z = u0 * powm(rho, e, pk.ns1) % pk.ns1;
  return proof;
}

bool verify_root(const PaillierPK& pk, const mpz_class& u, const RootProof& proof) {
  if (u <= 0 || u >= pk.ns1) return false;
  const mpz_class e = challenge(pk, u, proof.a);
  mpz_class lhs = powm(proof.z, pk.ns, pk.ns1);
  mpz_class rhs = proof.a * powm(u, e, pk.ns1) % pk.ns1;
  return lhs == rhs;
}

}  // namespace yoso
