#include "nizk/plaintext_proof.hpp"

namespace yoso {

namespace {

LinkStatement make_statement(const PaillierPK& pk, const mpz_class& c) {
  LinkStatement st;
  st.domain = "plaintext";
  st.paillier_legs.push_back(PaillierLeg{pk, c});
  st.bound_bits = static_cast<unsigned>(mpz_sizeinbase(pk.ns.get_mpz_t(), 2));
  return st;
}

}  // namespace

PlaintextProof prove_plaintext(const PaillierPK& pk, const mpz_class& c, const SecretMpz& m,
                               const SecretMpz& r, Rng& rng) {
  LinkStatement st = make_statement(pk, c);
  LinkWitness w;
  w.x = m;
  w.rs = {r};
  return PlaintextProof{link_prove(st, w, rng)};
}

bool verify_plaintext(const PaillierPK& pk, const mpz_class& c, const PlaintextProof& proof) {
  return link_verify(make_statement(pk, c), proof.inner);
}

}  // namespace yoso
