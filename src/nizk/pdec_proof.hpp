// NIZK proof of correct partial decryption (Shoup-style equality of
// discrete logarithms): the prover knows d_i such that
//
//   partial = (c^2)^{d_i}   and   vk_i = v^{d_i}   (mod N^{s+1}).
//
// This is the proof each committee role attaches to its TPDec share in
// Protocols 1-2 (Re-encrypt / Decrypt), enabling everyone to select a
// qualified set of t+1 correct partials and guaranteeing output delivery.
//
// Thin wrapper over the generic LinkProof with two exponent legs.
#pragma once

#include "nizk/link_proof.hpp"
#include "paillier/threshold.hpp"

namespace yoso {

struct PdecProof {
  LinkProof inner;
  std::size_t wire_bytes() const { return inner.wire_bytes(); }
};

PdecProof prove_pdec(const ThresholdPK& tpk, const ThresholdKeyShare& share, const mpz_class& c,
                     const mpz_class& partial, Rng& rng);

bool verify_pdec(const ThresholdPK& tpk, unsigned index, const mpz_class& c,
                 const mpz_class& partial, const PdecProof& proof);

}  // namespace yoso
