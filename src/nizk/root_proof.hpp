// NIZK proof of knowledge of an N^s-th root: the prover knows rho with
//
//   rho^{N^s} = u  (mod N^{s+1}),
//
// i.e. u is a Paillier encryption of 0 under pk.  This is the online-phase
// correctness proof: a role claims a public ciphertext combination
// c_combined encrypts exactly the integer P it published, by proving that
// c_combined * Enc(P; 1)^{-1} encrypts 0.  Only the holder of the matching
// secret key can extract the root (PaillierSK::extract_root), so the proof
// doubles as evidence that the role actually decrypted its packed shares.
#pragma once

#include <gmpxx.h>

#include "crypto/rand.hpp"
#include "paillier/paillier.hpp"

namespace yoso {

struct RootProof {
  mpz_class a;  // u0^{N^s} for random unit u0
  mpz_class z;  // u0 * rho^e

  std::size_t wire_bytes() const;
};

// rho is the extracted root (PaillierSK::extract_root), a proof witness;
// it stays tainted until the masked response z is published.
RootProof prove_root(const PaillierPK& pk, const mpz_class& u, const SecretMpz& rho, Rng& rng);
bool verify_root(const PaillierPK& pk, const mpz_class& u, const RootProof& proof);

}  // namespace yoso
