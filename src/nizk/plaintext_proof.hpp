// NIZK proof of plaintext knowledge: the prover knows (m, r) such that
// c = TEnc(tpk, m; r).  Used for every fresh ciphertext a role broadcasts
// during the offline phase (Beaver contributions, random wire values,
// packing helpers), per Protocols 3-4 of the paper.
//
// Thin wrapper over the generic LinkProof with a single Paillier leg.
#pragma once

#include "nizk/link_proof.hpp"

namespace yoso {

struct PlaintextProof {
  LinkProof inner;
  std::size_t wire_bytes() const { return inner.wire_bytes(); }
};

// Proves knowledge of (m, r) for c under pk.  `m` must lie in [0, N^s).
// The plaintext and encryption randomness are the witness; they stay
// tainted through the underlying LinkProof prover.
PlaintextProof prove_plaintext(const PaillierPK& pk, const mpz_class& c, const SecretMpz& m,
                               const SecretMpz& r, Rng& rng);

bool verify_plaintext(const PaillierPK& pk, const mpz_class& c, const PlaintextProof& proof);

}  // namespace yoso
