#include "nizk/link_proof.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"
#include "obs/profile.hpp"

namespace yoso {

namespace {

Transcript statement_transcript(const LinkStatement& st) {
  Transcript tr("yoso.nizk.link." + st.domain);
  tr.absorb_u64("bound_bits", st.bound_bits);
  tr.absorb_u64("n_paillier", st.paillier_legs.size());
  for (const auto& leg : st.paillier_legs) {
    tr.absorb("pk.n", leg.pk.n);
    tr.absorb_u64("pk.s", leg.pk.s);
    tr.absorb("c", leg.ciphertext);
  }
  tr.absorb_u64("n_exponent", st.exponent_legs.size());
  for (const auto& leg : st.exponent_legs) {
    tr.absorb("base", leg.base);
    tr.absorb("target", leg.target);
    tr.absorb("mod", leg.modulus);
  }
  return tr;
}

mpz_class derive_challenge(Transcript&& tr, const LinkProof& proof) {
  for (const auto& a : proof.a_paillier) tr.absorb("a_p", a);
  for (const auto& a : proof.a_exponent) tr.absorb("a_e", a);
  return tr.challenge_bits("e", kKappa);
}

}  // namespace

std::size_t LinkProof::wire_bytes() const {
  std::size_t total = 0;
  for (const auto& a : a_paillier) total += mpz_wire_size(a);
  for (const auto& a : a_exponent) total += mpz_wire_size(a);
  total += mpz_wire_size(z);
  for (const auto& zr : z_rs) total += mpz_wire_size(zr);
  return total;
}

LinkProof link_prove(const LinkStatement& st, const LinkWitness& w, Rng& rng) {
  OBS_OP(NizkProve);
  if (w.rs.size() != st.paillier_legs.size()) {
    throw std::invalid_argument("link_prove: randomness count mismatch");
  }
  // The witness *bound* is public protocol data (share_bound_bits is posted
  // per epoch), so checking it is a sanctioned exit from the taint.
  if (mpz_sizeinbase(w.x.declassify().get_mpz_t(), 2) > st.bound_bits) {
    throw std::invalid_argument("link_prove: witness exceeds bound");
  }
  // Mask: y uniform in [0, 2^{bound + kappa + stat}).  Legs whose plaintext
  // space is smaller than 2^{mask_bits} bind x only modulo their own N^s;
  // callers needing integer binding must include a leg with a larger space
  // (role keys are sized for this at setup).
  const unsigned mask_bits = st.bound_bits + kKappa + kStat;
  SecretMpz y(rng.bits(mask_bits));

  LinkProof proof;
  std::vector<SecretMpz> us;  // commitment randomness per Paillier leg
  for (const auto& leg : st.paillier_legs) {
    SecretMpz u(rng.unit_mod(leg.pk.n));
    us.push_back(u);
    proof.a_paillier.push_back(leg.pk.enc_secret(y, u.declassify()));
  }
  for (const auto& leg : st.exponent_legs) {
    proof.a_exponent.push_back(powm_sec(leg.base, y, leg.modulus));
  }

  const mpz_class e = derive_challenge(statement_transcript(st), proof);

  // z = y + e x over the integers (may be negative for x < 0); publishing
  // it is safe because y statistically masks e x.
  proof.z = (y + w.x * e).declassify();
  for (std::size_t i = 0; i < st.paillier_legs.size(); ++i) {
    const auto& pk = st.paillier_legs[i].pk;
    SecretMpz re = powm_sec(w.rs[i], e, pk.ns1);
    proof.z_rs.push_back((us[i] * re % pk.ns1).declassify());
  }
  return proof;
}

namespace {

// The verification equations, parameterized by the challenge.
bool check_equations(const LinkStatement& st, const LinkProof& proof, const mpz_class& e) {
  for (std::size_t i = 0; i < st.paillier_legs.size(); ++i) {
    const auto& leg = st.paillier_legs[i];
    if (!leg.pk.valid_ciphertext(leg.ciphertext)) return false;
    mpz_class lhs = leg.pk.enc(proof.z, proof.z_rs[i]);
    mpz_class rhs = proof.a_paillier[i] * powm_pub(leg.ciphertext, e, leg.pk.ns1) % leg.pk.ns1;
    if (!ct_equal(lhs, rhs)) return false;
  }
  for (std::size_t i = 0; i < st.exponent_legs.size(); ++i) {
    const auto& leg = st.exponent_legs[i];
    mpz_class lhs = powm_pub(leg.base, proof.z, leg.modulus);
    mpz_class rhs = proof.a_exponent[i] * powm_pub(leg.target, e, leg.modulus) % leg.modulus;
    if (!ct_equal(lhs, rhs)) return false;
  }
  return true;
}

}  // namespace

LinkProof link_simulate(const LinkStatement& st, const mpz_class& challenge, Rng& rng) {
  LinkProof proof;
  // Sample the responses exactly like an honest prover's marginals...
  proof.z = rng.bits(st.bound_bits + kKappa + kStat);
  for (const auto& leg : st.paillier_legs) proof.z_rs.push_back(rng.unit_mod(leg.pk.ns1));
  // ...and solve the verification equations for the first messages.
  for (std::size_t i = 0; i < st.paillier_legs.size(); ++i) {
    const auto& leg = st.paillier_legs[i];
    mpz_class lhs = leg.pk.enc(proof.z, proof.z_rs[i]);
    mpz_class ce = powm_pub(leg.ciphertext, challenge, leg.pk.ns1);
    mpz_class ce_inv = mod_inverse(ce, leg.pk.ns1);
    proof.a_paillier.push_back(lhs * ce_inv % leg.pk.ns1);
  }
  for (const auto& leg : st.exponent_legs) {
    mpz_class lhs = powm_pub(leg.base, proof.z, leg.modulus);
    mpz_class ye = powm_pub(leg.target, challenge, leg.modulus);
    mpz_class ye_inv = mod_inverse(ye, leg.modulus);
    proof.a_exponent.push_back(lhs * ye_inv % leg.modulus);
  }
  return proof;
}

bool link_verify_with_challenge(const LinkStatement& st, const LinkProof& proof,
                                const mpz_class& challenge) {
  if (proof.a_paillier.size() != st.paillier_legs.size() ||
      proof.a_exponent.size() != st.exponent_legs.size() ||
      proof.z_rs.size() != st.paillier_legs.size()) {
    return false;
  }
  return check_equations(st, proof, challenge);
}

bool link_verify(const LinkStatement& st, const LinkProof& proof) {
  OBS_OP(NizkVerify);
  if (proof.a_paillier.size() != st.paillier_legs.size() ||
      proof.a_exponent.size() != st.exponent_legs.size() ||
      proof.z_rs.size() != st.paillier_legs.size()) {
    return false;
  }
  // Range check: |z| < 2^{bound + kappa + stat + 1} bounds the extracted
  // witness by 2^{bound + kappa + stat + 2}.
  if (mpz_sizeinbase(proof.z.get_mpz_t(), 2) > st.bound_bits + kKappa + kStat + 1) {
    return false;
  }

  const mpz_class e = derive_challenge(statement_transcript(st), proof);

  for (std::size_t i = 0; i < st.paillier_legs.size(); ++i) {
    const auto& leg = st.paillier_legs[i];
    if (!leg.pk.valid_ciphertext(leg.ciphertext)) return false;
    // (1+N)^z * z_r^{N^s} == a * c^e  (mod N^{s+1}); enc() reduces z mod N^s.
    mpz_class lhs = leg.pk.enc(proof.z, proof.z_rs[i]);
    mpz_class rhs = proof.a_paillier[i] * powm_pub(leg.ciphertext, e, leg.pk.ns1) % leg.pk.ns1;
    if (!ct_equal(lhs, rhs)) return false;
  }
  for (std::size_t i = 0; i < st.exponent_legs.size(); ++i) {
    const auto& leg = st.exponent_legs[i];
    mpz_class lhs = powm_pub(leg.base, proof.z, leg.modulus);
    mpz_class rhs =
        proof.a_exponent[i] * powm_pub(leg.target, e, leg.modulus) % leg.modulus;
    if (!ct_equal(lhs, rhs)) return false;
  }
  return true;
}

}  // namespace yoso
