// Generic "linked value" Fiat-Shamir sigma protocol: proves knowledge of a
// single integer x (range-bounded) that simultaneously opens several "legs":
//
//   * a PAILLIER leg:  c = (1+N)^x * r^{N^s} mod N^{s+1}   (knows r too)
//   * an EXPONENT leg: y = g^x mod M                        (unknown order)
//
// This one protocol instantiates every composite relation of the paper's
// Protocols 1-3:
//   - plaintext equality across two Paillier keys (mask re-encryption in
//     Re-encrypt: the same pad is encrypted under tpk and under the KFF);
//   - subshare <-> Feldman-commitment linkage in TKRes (Paillier +
//     exponent legs), making key resharing publicly verifiable;
//   - correct partial decryption (two exponent legs; see pdec_proof.hpp
//     which wraps this).
//
// Soundness gives equality of x across all legs as an *integer* in
// (-2^B, 2^B) with B = bound_bits + kKappa + kStat + 2, provided every
// Paillier leg's plaintext modulus exceeds 2^{B+1} (checked by the prover
// and required of callers).  Honest-verifier zero-knowledge comes from the
// statistical masking of z.
#pragma once

#include <gmpxx.h>

#include <string>
#include <vector>

#include "crypto/rand.hpp"
#include "crypto/transcript.hpp"
#include "paillier/paillier.hpp"

namespace yoso {

inline constexpr unsigned kKappa = 128;  // Fiat-Shamir challenge bits
inline constexpr unsigned kStat = 40;    // statistical masking slack bits

struct PaillierLeg {
  PaillierPK pk;
  mpz_class ciphertext;
};

struct ExponentLeg {
  mpz_class base;
  mpz_class target;
  mpz_class modulus;
};

struct LinkStatement {
  std::string domain;            // domain-separation label
  std::vector<PaillierLeg> paillier_legs;
  std::vector<ExponentLeg> exponent_legs;
  unsigned bound_bits = 0;       // public bound: |x| < 2^bound_bits
};

// The witness is tainted end to end: the prover only publishes x and rs
// after statistical masking (the declassify sites in link_prove).
struct LinkWitness {
  SecretMpz x;
  std::vector<SecretMpz> rs;  // randomness per Paillier leg, same order
};

struct LinkProof {
  std::vector<mpz_class> a_paillier;  // first messages per Paillier leg
  std::vector<mpz_class> a_exponent;  // first messages per exponent leg
  mpz_class z;                        // masked response for x (signed)
  std::vector<mpz_class> z_rs;        // masked randomness per Paillier leg

  std::size_t wire_bytes() const;
};

LinkProof link_prove(const LinkStatement& st, const LinkWitness& w, Rng& rng);
bool link_verify(const LinkStatement& st, const LinkProof& proof);

// The paper's NIZKAoK.SimP, at the sigma-protocol level: produces an
// accepting transcript for `challenge` *without* a witness (sample the
// responses, solve for the first messages).  In the random-oracle
// instantiation the UC simulator programs the oracle to return `challenge`
// at this transcript; the test suite uses it to check honest proofs are
// distributed like simulated ones (honest-verifier zero knowledge).
LinkProof link_simulate(const LinkStatement& st, const mpz_class& challenge, Rng& rng);

// Verification with an explicit challenge (bypassing Fiat-Shamir); used
// together with link_simulate by the ZK tests.
bool link_verify_with_challenge(const LinkStatement& st, const LinkProof& proof,
                                const mpz_class& challenge);

}  // namespace yoso
