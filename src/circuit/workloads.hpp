// Standard benchmark workloads: the circuit families used by the test
// suite, the examples, and the communication benchmarks (E3/E4).
#pragma once

#include "circuit/circuit.hpp"

namespace yoso {

// <x, y> for two clients holding the two m-vectors; one output to client 0.
Circuit inner_product_circuit(unsigned m);

// Wide single-layer circuit: `width` independent products a_i * b_i, all
// output to client 0.  This is the "circuit width O(n)" regime where the
// paper's amortization claims live.
Circuit wide_mul_circuit(unsigned width);

// A multiplication tree over `leaves` inputs of client 0 (depth log2).
Circuit mul_tree_circuit(unsigned leaves);

// `width` independent chains of `depth` sequential multiplications (a
// width x depth grid; chain i starts from a_i * b_i and keeps multiplying
// by b_i).  Controls width and depth independently — the knob the network
// benchmarks turn to trade round count against per-round byte volume.
Circuit grid_mul_circuit(unsigned width, unsigned depth);

// `depth` sequential squarings interleaved with additions (deep & narrow —
// the adversarial regime for packing).
Circuit chain_circuit(unsigned depth);

// Federated statistics: `parties` clients each hold one value; outputs
// (to client 0) the sum and the sum of squares, from which mean/variance
// follow.  Exercise: additions across many clients + one square per input.
Circuit statistics_circuit(unsigned parties);

// dim x dim matrix product C = A * B, A held by client 0 and B by client 1,
// all entries of C output to client 0.  dim^3 multiplications in one layer.
Circuit matmul_circuit(unsigned dim);

// Horner evaluation of a degree-`degree` polynomial: client 0 holds the
// coefficients, client 1 holds the evaluation point.  Deep and narrow.
Circuit poly_eval_circuit(unsigned degree);

// A MiMC-like keyed permutation: `rounds` rounds of x <- (x + key + c_i)^3.
// Client 0 holds x, client 1 the key; classic block-cipher-style MPC load.
Circuit mimc_circuit(unsigned rounds);

// Second-price (Vickrey) auction over 2^log_bidders bidders is beyond an
// arithmetic circuit without comparisons; instead this models the payment
// computation of a *scoring auction*: score_i = bid_i * weight_i, plus the
// total, all revealed to the auctioneer (client 0).  `bidders` clients.
Circuit auction_scoring_circuit(unsigned bidders);

}  // namespace yoso
