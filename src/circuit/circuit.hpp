// Arithmetic circuits over the plaintext ring Z_{N^s}.
//
// Wires are identified with the gate that produces them (Input / Add / Mul
// gates each produce exactly one wire).  Output gates mark which wires are
// revealed to which client.  The layering used by the protocol is the
// multiplicative depth: a Mul gate is in layer 1 + max(layer of inputs),
// where Input gates and everything reachable through additions only stay in
// the layer of their deepest Mul ancestor (layer 0 if none).
#pragma once

#include <cstdint>
#include <gmpxx.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace yoso {

using WireId = std::uint32_t;

enum class GateKind : std::uint8_t { Input, Add, Sub, AddConst, MulConst, Mul };

struct Gate {
  GateKind kind = GateKind::Input;
  WireId in0 = 0, in1 = 0;  // operand wires (unused fields are 0)
  unsigned client = 0;      // Input: which client supplies the value
  mpz_class constant;       // AddConst / MulConst operand
};

struct OutputSpec {
  WireId wire = 0;
  unsigned client = 0;  // who learns this output
};

class Circuit {
public:
  // --- Builder API ---------------------------------------------------
  WireId input(unsigned client);
  WireId add(WireId a, WireId b);
  WireId sub(WireId a, WireId b);
  WireId add_const(WireId a, mpz_class c);
  WireId mul_const(WireId a, mpz_class c);
  WireId mul(WireId a, WireId b);
  void output(WireId w, unsigned client);

  // --- Introspection ---------------------------------------------------
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<OutputSpec>& outputs() const { return outputs_; }
  std::size_t num_wires() const { return gates_.size(); }
  unsigned num_clients() const { return num_clients_; }
  std::size_t num_inputs() const;
  std::size_t num_mul_gates() const;
  // Input wires owned by `client`, in declaration order.
  std::vector<WireId> inputs_of(unsigned client) const;

  // Multiplicative layer of every wire (layer of a Mul gate is >= 1).
  std::vector<unsigned> mul_layers() const;
  unsigned mul_depth() const;
  // Mul gate ids grouped by layer, layers ascending starting at 1.
  std::vector<std::vector<WireId>> mul_gates_by_layer() const;

  // Reference cleartext evaluation over Z_modulus.  `inputs[c]` holds
  // client c's inputs in declaration order.  Returns the output wire
  // values in outputs() order.
  std::vector<mpz_class> eval(const std::vector<std::vector<mpz_class>>& inputs,
                              const mpz_class& modulus) const;

  // Deterministic structural fingerprint (FNV-1a over gates, constants and
  // output specs).  Two circuits with equal fingerprints have identical gate
  // lists, so preprocessing banked for one (src/service triple pool) is
  // consumable by the other.
  std::uint64_t fingerprint() const;

private:
  WireId push(Gate g);
  void check_wire(WireId w) const;

  std::vector<Gate> gates_;
  std::vector<OutputSpec> outputs_;
  unsigned num_clients_ = 0;
};

}  // namespace yoso
