// Batching of multiplication gates into packed groups of k (Section 3.1).
//
// Every layer's Mul gates are chopped into batches of k; the last batch of
// a layer may be padded with "dummy" slots (encodes as repeating the first
// gate of the batch — the protocol simply computes that product again in
// the spare slots, which is always safe).  Batches carry the wire vectors
// alpha (left inputs), beta (right inputs), gamma (outputs) that the
// offline phase must route packed sharings for.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace yoso {

struct MulBatch {
  unsigned layer = 1;                // 1-based multiplicative layer
  std::vector<WireId> alpha, beta;   // input wire vectors, size k
  std::vector<WireId> gamma;         // output (gate) ids, size k
  unsigned real = 0;                 // first `real` slots are genuine gates
};

// Splits the circuit's Mul gates into batches of k per layer.
std::vector<MulBatch> make_batches(const Circuit& c, unsigned k);

// Total number of batches a circuit needs at packing k.
std::size_t batch_count(const Circuit& c, unsigned k);

}  // namespace yoso
