#include "circuit/workloads.hpp"

#include <stdexcept>

namespace yoso {

Circuit inner_product_circuit(unsigned m) {
  if (m == 0) throw std::invalid_argument("inner_product_circuit: m must be positive");
  Circuit c;
  std::vector<WireId> xs, ys;
  for (unsigned i = 0; i < m; ++i) xs.push_back(c.input(0));
  for (unsigned i = 0; i < m; ++i) ys.push_back(c.input(1));
  WireId acc = c.mul(xs[0], ys[0]);
  for (unsigned i = 1; i < m; ++i) acc = c.add(acc, c.mul(xs[i], ys[i]));
  c.output(acc, 0);
  return c;
}

Circuit wide_mul_circuit(unsigned width) {
  if (width == 0) throw std::invalid_argument("wide_mul_circuit: width must be positive");
  Circuit c;
  for (unsigned i = 0; i < width; ++i) {
    WireId a = c.input(0);
    WireId b = c.input(1);
    c.output(c.mul(a, b), 0);
  }
  return c;
}

Circuit mul_tree_circuit(unsigned leaves) {
  if (leaves < 2) throw std::invalid_argument("mul_tree_circuit: need >= 2 leaves");
  Circuit c;
  std::vector<WireId> level;
  for (unsigned i = 0; i < leaves; ++i) level.push_back(c.input(0));
  while (level.size() > 1) {
    std::vector<WireId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(c.mul(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  c.output(level[0], 0);
  return c;
}

Circuit grid_mul_circuit(unsigned width, unsigned depth) {
  if (width == 0 || depth == 0) {
    throw std::invalid_argument("grid_mul_circuit: width and depth must be positive");
  }
  Circuit c;
  for (unsigned i = 0; i < width; ++i) {
    WireId a = c.input(0);
    WireId b = c.input(1);
    WireId acc = c.mul(a, b);
    for (unsigned l = 1; l < depth; ++l) acc = c.mul(acc, b);
    c.output(acc, 0);
  }
  return c;
}

Circuit chain_circuit(unsigned depth) {
  if (depth == 0) throw std::invalid_argument("chain_circuit: depth must be positive");
  Circuit c;
  WireId x = c.input(0);
  WireId acc = x;
  for (unsigned i = 0; i < depth; ++i) {
    acc = c.mul(acc, acc);
    acc = c.add_const(acc, mpz_class(i + 1));
  }
  c.output(acc, 0);
  return c;
}

Circuit statistics_circuit(unsigned parties) {
  if (parties == 0) throw std::invalid_argument("statistics_circuit: need parties");
  Circuit c;
  std::vector<WireId> xs;
  for (unsigned i = 0; i < parties; ++i) xs.push_back(c.input(i));
  WireId sum = xs[0];
  for (unsigned i = 1; i < parties; ++i) sum = c.add(sum, xs[i]);
  WireId sq_sum = c.mul(xs[0], xs[0]);
  for (unsigned i = 1; i < parties; ++i) sq_sum = c.add(sq_sum, c.mul(xs[i], xs[i]));
  c.output(sum, 0);
  c.output(sq_sum, 0);
  return c;
}

Circuit matmul_circuit(unsigned dim) {
  if (dim == 0) throw std::invalid_argument("matmul_circuit: dim must be positive");
  Circuit c;
  std::vector<WireId> a(dim * dim), b(dim * dim);
  for (auto& w : a) w = c.input(0);
  for (auto& w : b) w = c.input(1);
  for (unsigned i = 0; i < dim; ++i) {
    for (unsigned j = 0; j < dim; ++j) {
      WireId acc = c.mul(a[i * dim], b[j]);
      for (unsigned l = 1; l < dim; ++l) {
        acc = c.add(acc, c.mul(a[i * dim + l], b[l * dim + j]));
      }
      c.output(acc, 0);
    }
  }
  return c;
}

Circuit poly_eval_circuit(unsigned degree) {
  if (degree == 0) throw std::invalid_argument("poly_eval_circuit: degree must be positive");
  Circuit c;
  std::vector<WireId> coeffs(degree + 1);
  for (auto& w : coeffs) w = c.input(0);
  WireId x = c.input(1);
  // Horner: acc = c_d; acc = acc * x + c_{i}.
  WireId acc = coeffs[degree];
  for (unsigned i = degree; i-- > 0;) {
    acc = c.add(c.mul(acc, x), coeffs[i]);
  }
  c.output(acc, 1);  // the evaluator learns p(x)
  return c;
}

Circuit mimc_circuit(unsigned rounds) {
  if (rounds == 0) throw std::invalid_argument("mimc_circuit: rounds must be positive");
  Circuit c;
  WireId x = c.input(0);
  WireId key = c.input(1);
  WireId state = x;
  for (unsigned r = 0; r < rounds; ++r) {
    WireId mixed = c.add_const(c.add(state, key), mpz_class(r * 2 + 1));  // round constant
    WireId sq = c.mul(mixed, mixed);
    state = c.mul(sq, mixed);  // cube
  }
  c.output(c.add(state, key), 0);  // final key addition
  return c;
}

Circuit auction_scoring_circuit(unsigned bidders) {
  if (bidders == 0) throw std::invalid_argument("auction_scoring_circuit: need bidders");
  Circuit c;
  std::vector<WireId> scores;
  for (unsigned i = 0; i < bidders; ++i) {
    WireId bid = c.input(i);     // bidder's private bid
    WireId weight = c.input(i);  // bidder's private quality weight
    WireId score = c.mul(bid, weight);
    scores.push_back(score);
    c.output(score, 0);
  }
  WireId total = scores[0];
  for (unsigned i = 1; i < bidders; ++i) total = c.add(total, scores[i]);
  c.output(total, 0);
  return c;
}

}  // namespace yoso
