#include "circuit/circuit.hpp"

#include <algorithm>

namespace yoso {

WireId Circuit::push(Gate g) {
  gates_.push_back(std::move(g));
  return static_cast<WireId>(gates_.size() - 1);
}

void Circuit::check_wire(WireId w) const {
  if (w >= gates_.size()) throw std::out_of_range("Circuit: wire refers to a later gate");
}

WireId Circuit::input(unsigned client) {
  num_clients_ = std::max(num_clients_, client + 1);
  Gate g;
  g.kind = GateKind::Input;
  g.client = client;
  return push(std::move(g));
}

WireId Circuit::add(WireId a, WireId b) {
  check_wire(a);
  check_wire(b);
  Gate g;
  g.kind = GateKind::Add;
  g.in0 = a;
  g.in1 = b;
  return push(std::move(g));
}

WireId Circuit::sub(WireId a, WireId b) {
  check_wire(a);
  check_wire(b);
  Gate g;
  g.kind = GateKind::Sub;
  g.in0 = a;
  g.in1 = b;
  return push(std::move(g));
}

WireId Circuit::add_const(WireId a, mpz_class c) {
  check_wire(a);
  Gate g;
  g.kind = GateKind::AddConst;
  g.in0 = a;
  g.constant = std::move(c);
  return push(std::move(g));
}

WireId Circuit::mul_const(WireId a, mpz_class c) {
  check_wire(a);
  Gate g;
  g.kind = GateKind::MulConst;
  g.in0 = a;
  g.constant = std::move(c);
  return push(std::move(g));
}

WireId Circuit::mul(WireId a, WireId b) {
  check_wire(a);
  check_wire(b);
  Gate g;
  g.kind = GateKind::Mul;
  g.in0 = a;
  g.in1 = b;
  return push(std::move(g));
}

void Circuit::output(WireId w, unsigned client) {
  check_wire(w);
  num_clients_ = std::max(num_clients_, client + 1);
  outputs_.push_back(OutputSpec{w, client});
}

std::size_t Circuit::num_inputs() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.kind == GateKind::Input; }));
}

std::size_t Circuit::num_mul_gates() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.kind == GateKind::Mul; }));
}

std::vector<WireId> Circuit::inputs_of(unsigned client) const {
  std::vector<WireId> out;
  for (WireId w = 0; w < gates_.size(); ++w) {
    if (gates_[w].kind == GateKind::Input && gates_[w].client == client) out.push_back(w);
  }
  return out;
}

std::vector<unsigned> Circuit::mul_layers() const {
  std::vector<unsigned> layer(gates_.size(), 0);
  for (WireId w = 0; w < gates_.size(); ++w) {
    const Gate& g = gates_[w];
    switch (g.kind) {
      case GateKind::Input:
        layer[w] = 0;
        break;
      case GateKind::Add:
      case GateKind::Sub:
        layer[w] = std::max(layer[g.in0], layer[g.in1]);
        break;
      case GateKind::AddConst:
      case GateKind::MulConst:
        layer[w] = layer[g.in0];
        break;
      case GateKind::Mul:
        layer[w] = 1 + std::max(layer[g.in0], layer[g.in1]);
        break;
    }
  }
  return layer;
}

unsigned Circuit::mul_depth() const {
  auto layers = mul_layers();
  unsigned d = 0;
  for (auto l : layers) d = std::max(d, l);
  return d;
}

std::vector<std::vector<WireId>> Circuit::mul_gates_by_layer() const {
  auto layers = mul_layers();
  std::vector<std::vector<WireId>> out(mul_depth());
  for (WireId w = 0; w < gates_.size(); ++w) {
    if (gates_[w].kind == GateKind::Mul) out[layers[w] - 1].push_back(w);
  }
  return out;
}

std::vector<mpz_class> Circuit::eval(const std::vector<std::vector<mpz_class>>& inputs,
                                     const mpz_class& modulus) const {
  std::vector<std::size_t> next_input(num_clients_, 0);
  std::vector<mpz_class> value(gates_.size());
  auto mod = [&](const mpz_class& v) {
    mpz_class r;
    mpz_mod(r.get_mpz_t(), v.get_mpz_t(), modulus.get_mpz_t());
    return r;
  };
  for (WireId w = 0; w < gates_.size(); ++w) {
    const Gate& g = gates_[w];
    switch (g.kind) {
      case GateKind::Input: {
        if (g.client >= inputs.size() || next_input[g.client] >= inputs[g.client].size()) {
          throw std::invalid_argument("Circuit::eval: missing input for client " +
                                      std::to_string(g.client));
        }
        value[w] = mod(inputs[g.client][next_input[g.client]++]);
        break;
      }
      case GateKind::Add:
        value[w] = mod(value[g.in0] + value[g.in1]);
        break;
      case GateKind::Sub:
        value[w] = mod(value[g.in0] - value[g.in1]);
        break;
      case GateKind::AddConst:
        value[w] = mod(value[g.in0] + g.constant);
        break;
      case GateKind::MulConst:
        value[w] = mod(value[g.in0] * g.constant);
        break;
      case GateKind::Mul:
        value[w] = mod(value[g.in0] * value[g.in1]);
        break;
    }
  }
  std::vector<mpz_class> out;
  out.reserve(outputs_.size());
  for (const auto& o : outputs_) out.push_back(value[o.wire]);
  return out;
}

std::uint64_t Circuit::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(num_clients_);
  mix(gates_.size());
  for (const Gate& g : gates_) {
    mix(static_cast<std::uint64_t>(g.kind));
    mix(g.in0);
    mix(g.in1);
    mix(g.client);
    if (g.kind == GateKind::AddConst || g.kind == GateKind::MulConst) {
      const std::string c = g.constant.get_str(16);
      for (char ch : c) mix(static_cast<unsigned char>(ch));
    }
  }
  mix(outputs_.size());
  for (const OutputSpec& o : outputs_) {
    mix(o.wire);
    mix(o.client);
  }
  return h;
}

}  // namespace yoso
