#include "circuit/batching.hpp"

#include <stdexcept>

namespace yoso {

std::vector<MulBatch> make_batches(const Circuit& c, unsigned k) {
  if (k == 0) throw std::invalid_argument("make_batches: k must be positive");
  std::vector<MulBatch> out;
  const auto& gates = c.gates();
  auto by_layer = c.mul_gates_by_layer();
  for (unsigned layer = 1; layer <= by_layer.size(); ++layer) {
    const auto& ids = by_layer[layer - 1];
    for (std::size_t start = 0; start < ids.size(); start += k) {
      MulBatch b;
      b.layer = layer;
      b.real = static_cast<unsigned>(std::min<std::size_t>(k, ids.size() - start));
      for (unsigned j = 0; j < k; ++j) {
        WireId id = ids[start + (j < b.real ? j : 0)];  // pad by repeating slot 0
        b.gamma.push_back(id);
        b.alpha.push_back(gates[id].in0);
        b.beta.push_back(gates[id].in1);
      }
      out.push_back(std::move(b));
    }
  }
  return out;
}

std::size_t batch_count(const Circuit& c, unsigned k) {
  std::size_t total = 0;
  for (const auto& ids : c.mul_gates_by_layer()) total += (ids.size() + k - 1) / k;
  return total;
}

}  // namespace yoso
