// Protocol parameters (Theorem 1 + Section 5.4).
//
// Committee size n, corruption bound t < n(1/2 - eps), packing factor k
// with k - 1 <= n*eps (guaranteed output delivery) or k - 1 <= n*eps/2
// (additionally tolerating n*eps fail-stop honest parties).  The derived
// Paillier exponents size every key class so that every NIZK in the
// protocol gets integer binding and no homomorphic combination ever wraps.
#pragma once

#include <stdexcept>
#include <string>

namespace yoso {

struct ProtocolParams {
  unsigned n = 0;              // committee size
  unsigned t = 0;              // active corruptions tolerated per committee
  unsigned k = 1;              // packing factor
  double epsilon = 0.0;        // the gap: t < n(1/2 - eps)
  unsigned paillier_bits = 192;  // |N| of the threshold key (and role keys)
  unsigned s = 1;              // threshold-key plaintext exponent (Z_{N^s})
  unsigned planned_epochs = 8;   // upper bound on tsk resharing hand-overs
  bool failstop_mode = false;  // k was chosen for the Section 5.4 regime

  // --- Derived quantities -------------------------------------------------

  // Shares needed to reconstruct an online mu-share polynomial
  // (degree t + 2(k-1), Section 5.3/5.4).
  unsigned recon_threshold() const { return t + 2 * (k - 1) + 1; }

  // Degree of the packed lambda sharings produced by the offline phase.
  unsigned packed_degree() const { return t + k - 1; }

  // Pads are drawn from [0, N^s * 2^pad_slack_bits) so that revealing the
  // masked integer combinations online leaks nothing (Section 5.3 of
  // DESIGN.md's instantiation notes).
  static constexpr unsigned pad_slack_bits = 40;

  // Plaintext-space bit requirements per key class (see mpc/reencrypt.hpp
  // for what each class receives).
  unsigned pad_bound_bits() const;        // a single pad as an integer
  unsigned pad_sum_bound_bits() const;    // sum of <= n pads
  unsigned pint_bound_bits() const;       // online P_int combination
  unsigned kff_plain_bits() const;        // KFF keys hold pads + P_int combos
  unsigned role_plain_bits() const;       // online role keys receive FKD pads
  unsigned holder_plain_bits() const;     // decrypt-committee keys hold tsk subshares
  unsigned client_plain_bits() const;     // client keys receive output pads

  // Paillier exponent s' needed for `plain_bits` of plaintext at the given
  // modulus size.
  unsigned exponent_for(unsigned plain_bits) const;

  void validate() const;

  // Convenience constructor: given n and the gap eps, picks the maximal
  // t < n(1/2 - eps) and maximal packing (k - 1 = floor(n*eps), halved in
  // fail-stop mode), mirroring the paper's parameter choices.
  static ProtocolParams for_gap(unsigned n, double eps, unsigned paillier_bits,
                                bool failstop_mode = false);

  std::string describe() const;
};

}  // namespace yoso
