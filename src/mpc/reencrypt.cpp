#include "mpc/reencrypt.hpp"

#include <cassert>

#include "obs/trace.hpp"
#include "wire/codec.hpp"

namespace yoso {

mpz_class open_future(const PaillierSK& recipient, const FutureCt& fct, const mpz_class& ns) {
  mpz_class pad = recipient.dec(fct.pad_ct);
  mpz_class m = (fct.masked - pad) % ns;
  if (m < 0) m += ns;
  return m;
}

std::size_t MaskMsg::wire_bytes() const {
  return mpz_wire_size(a) + mpz_wire_size(b) + proof.wire_bytes();
}

std::size_t HandoverMsg::wire_bytes() const {
  std::size_t total = 0;
  for (const auto& c : commitments) total += mpz_wire_size(c);
  for (const auto& e : enc_subshares) total += mpz_wire_size(e);
  for (const auto& p : proofs) total += p.wire_bytes();
  return total;
}

DecryptChain::DecryptChain(ThresholdPK tpk, std::vector<ThresholdKeyShare> shares,
                           const ProtocolParams& params, Bulletin& bulletin, Rng& rng)
    : tpk_(std::move(tpk)), shares_(std::move(shares)), params_(&params), bulletin_(&bulletin),
      rng_(&rng) {}

namespace {

LinkStatement pad_statement(const ThresholdPK& tpk, const PaillierPK& target,
                            const mpz_class& a, const mpz_class& b, unsigned bound_bits) {
  LinkStatement st;
  st.domain = "pad";
  st.paillier_legs = {PaillierLeg{tpk.pk, a}, PaillierLeg{target, b}};
  st.bound_bits = bound_bits;
  return st;
}

}  // namespace

std::vector<DecryptChain::MaskSums> DecryptChain::run_mask_committee(
    Committee& masker, const std::vector<const PaillierPK*>& targets, Phase phase,
    const std::string& label) {
  obs::Span span("reencrypt.mask", "reencrypt");
  span.attr("committee", masker.name).attr("targets", targets.size()).attr("label", label);
  const unsigned n = masker.n();
  const std::size_t m = targets.size();
  const unsigned bound_bits = params_->pad_bound_bits();
  const mpz_class pad_space = mpz_class(1) << bound_bits;

  // msgs[j][r]: role j's contribution for value r (inactive roles: empty).
  std::vector<std::vector<MaskMsg>> msgs(n);
  for (unsigned j = 0; j < n; ++j) {
    if (!masker.corruption.is_active(j)) continue;
    masker.speak(j);
    const bool bad = masker.corruption.is_malicious(j);
    const auto strat = masker.corruption.strategy;
    msgs[j].reserve(m);
    std::size_t bytes = 0;
    for (std::size_t r = 0; r < m; ++r) {
      SecretMpz pad(rng_->below(pad_space));
      MaskMsg msg;
      mpz_class r1, r2;
      msg.a = tpk_.pk.enc_secret(pad, *rng_, &r1);
      SecretMpz b_plain = pad;
      if (bad && strat == MaliciousStrategy::BadShare) {
        b_plain = b_plain + mpz_class(1);  // inconsistent pad
      }
      msg.b = targets[r]->enc_secret(b_plain, *rng_, &r2);
      LinkWitness w{pad, {SecretMpz(r1), SecretMpz(r2)}};
      msg.proof = link_prove(pad_statement(tpk_, *targets[r], msg.a, msg.b, bound_bits), w,
                             *rng_);
      if (bad && strat == MaliciousStrategy::BadProof) msg.proof.z += 1;
      bytes += msg.wire_bytes();
      msgs[j].push_back(std::move(msg));
    }
    std::vector<std::uint8_t> payload;
    if (bulletin_->wants_payload()) payload = encode_mask_batch(msgs[j]);
    PostStatus st = bulletin_->publish(masker, j, phase, label + ".mask", bytes, 2 * m,
                                       /*first_post_of_role=*/false,
                                       payload.empty() ? nullptr : &payload);
    // A post that never reached the board leaves the role silent.
    if (st != PostStatus::Accepted) msgs[j].clear();
  }

  unsigned present = 0;
  for (unsigned j = 0; j < n; ++j) present += msgs[j].empty() ? 0 : 1;

  // Everyone verifies; per value, sum over the roles whose proof checks.
  std::vector<MaskSums> out(m);
  for (std::size_t r = 0; r < m; ++r) {
    mpz_class a_sum = 0, b_sum = 0;  // 0 is not a valid ciphertext; start empty
    bool first = true;
    unsigned verified = 0;
    for (unsigned j = 0; j < n; ++j) {
      if (msgs[j].empty()) continue;
      const MaskMsg& msg = msgs[j][r];
      if (!link_verify(pad_statement(tpk_, *targets[r], msg.a, msg.b, bound_bits), msg.proof)) {
        continue;
      }
      ++verified;
      if (first) {
        a_sum = msg.a;
        b_sum = msg.b;
        first = false;
      } else {
        a_sum = tpk_.pk.add(a_sum, msg.a);
        b_sum = targets[r]->add(b_sum, msg.b);
      }
    }
    if (verified < tpk_.t + 1) {
      throw ProtocolAbort(FailureReport{FailureKind::Threshold, phase, masker.name,
                                        label + ".mask", tpk_.t + 1, verified,
                                        present - verified, n - present});
    }
    out[r] = MaskSums{std::move(a_sum), std::move(b_sum)};
  }
  return out;
}

std::vector<mpz_class> DecryptChain::run_decrypt_committee(Committee& holder,
                                                           const std::vector<mpz_class>& cts,
                                                           Phase phase, const std::string& label,
                                                           Committee* next_holder) {
  obs::Span span("reencrypt.pdec", "reencrypt");
  span.attr("committee", holder.name).attr("cts", cts.size()).attr("label", label);
  const unsigned n = holder.n();
  const std::size_t m = cts.size();

  struct RoleOutput {
    std::vector<mpz_class> partials;
    std::vector<PdecProof> proofs;
  };
  std::vector<std::optional<RoleOutput>> outputs(n);

  for (unsigned j = 0; j < n; ++j) {
    if (!holder.corruption.is_active(j)) continue;
    holder.speak(j);
    const bool bad = holder.corruption.is_malicious(j);
    const auto strat = holder.corruption.strategy;
    RoleOutput ro;
    std::size_t bytes = 0;
    for (const auto& c : cts) {
      mpz_class partial = tpdec(tpk_, shares_[j], c);
      if (bad && strat == MaliciousStrategy::BadShare) {
        partial = partial * (tpk_.pk.n + 1) % tpk_.pk.ns1;  // shift the plaintext part
      }
      PdecProof proof = prove_pdec(tpk_, shares_[j], c, partial, *rng_);
      if (bad && strat == MaliciousStrategy::BadProof) proof.inner.z += 1;
      bytes += mpz_wire_size(partial) + proof.wire_bytes();
      ro.partials.push_back(std::move(partial));
      ro.proofs.push_back(std::move(proof));
    }
    std::vector<std::uint8_t> payload;
    if (bulletin_->wants_payload()) payload = encode_pdec_msg(PdecMsg{ro.partials, ro.proofs});
    PostStatus st = bulletin_->publish(holder, j, phase, label + ".pdec", bytes, m,
                                       /*first_post_of_role=*/false,
                                       payload.empty() ? nullptr : &payload);
    if (st == PostStatus::Accepted) outputs[j] = std::move(ro);
  }

  unsigned present = 0;
  for (unsigned j = 0; j < n; ++j) present += outputs[j] ? 1 : 0;

  // Combine: per ciphertext, take the first t+1 verified partials.
  std::vector<mpz_class> plain(m);
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<unsigned> idx;
    std::vector<mpz_class> parts;
    for (unsigned j = 0; j < n && idx.size() < tpk_.t + 1; ++j) {
      if (!outputs[j]) continue;
      const auto& ro = *outputs[j];
      if (!verify_pdec(tpk_, j + 1, cts[r], ro.partials[r], ro.proofs[r])) continue;
      idx.push_back(j + 1);
      parts.push_back(ro.partials[r]);
    }
    if (idx.size() < tpk_.t + 1) {
      const unsigned verified = static_cast<unsigned>(idx.size());
      throw ProtocolAbort(FailureReport{FailureKind::Threshold, phase, holder.name,
                                        label + ".pdec", tpk_.t + 1, verified,
                                        present - verified, n - present});
    }
    plain[r] = tdec(tpk_, idx, parts);
  }

  if (next_holder != nullptr) handover(holder, *next_holder, phase);
  return plain;
}

void DecryptChain::handover(Committee& holder, Committee& next_holder, Phase phase) {
  obs::Span span("reencrypt.handover", "reencrypt");
  span.attr("from", holder.name).attr("to", next_holder.name).attr("phase", phase_name(phase));
  const unsigned n = holder.n();
  const unsigned bound_bits = tpk_.subshare_bound_bits();

  std::vector<std::optional<HandoverMsg>> msgs(n);
  for (unsigned j = 0; j < n; ++j) {
    // The role already spoke its partials in run_decrypt_committee; the
    // hand-over rides in the same single message, so no new speak().
    if (!holder.corruption.is_active(j)) continue;
    const bool bad = holder.corruption.is_malicious(j);
    const auto strat = holder.corruption.strategy;

    ReshareMsg res = tkres(tpk_, shares_[j], *rng_);
    HandoverMsg msg;
    msg.from_index = j + 1;
    msg.commitments = res.commitments;
    msg.enc_subshares.resize(n);
    msg.proofs.resize(n);
    for (unsigned i = 0; i < n; ++i) {
      const PaillierPK& rpk = next_holder.role_pk(i);
      SecretMpz sub = res.subshares[i];
      if (bad && strat == MaliciousStrategy::BadShare) sub = sub + mpz_class(1);
      mpz_class renc;
      msg.enc_subshares[i] = rpk.enc_secret(sub, *rng_, &renc);
      // Exponent leg: v^{f_j(i+1)}, publicly derivable from the commitments.
      mpz_class v_fij = 1;
      mpz_class pw = 1;
      for (const auto& com : msg.commitments) {
        v_fij = v_fij * powm_pub(com, pw, tpk_.pk.ns1) % tpk_.pk.ns1;
        pw *= (i + 1);
      }
      LinkStatement st;
      st.domain = "handover";
      st.paillier_legs = {PaillierLeg{rpk, msg.enc_subshares[i]}};
      st.exponent_legs = {ExponentLeg{tpk_.v, v_fij, tpk_.pk.ns1}};
      st.bound_bits = bound_bits;
      LinkWitness w{res.subshares[i], {SecretMpz(renc)}};
      if (bad && strat == MaliciousStrategy::BadShare) {
        // Witness does not match the tampered ciphertext; proof will fail.
        msg.proofs[i] = link_prove(st, w, *rng_);
      } else {
        msg.proofs[i] = link_prove(st, w, *rng_);
        if (bad && strat == MaliciousStrategy::BadProof) msg.proofs[i].z += 1;
      }
    }
    std::vector<std::uint8_t> payload;
    if (bulletin_->wants_payload()) payload = encode_handover_msg(msg);
    PostStatus st = bulletin_->publish(holder, j, phase, "tsk.handover", msg.wire_bytes(),
                                       n * 2, /*first_post_of_role=*/false,
                                       payload.empty() ? nullptr : &payload);
    if (st == PostStatus::Accepted) msgs[j] = std::move(msg);
  }

  unsigned present = 0;
  for (unsigned j = 0; j < n; ++j) present += msgs[j] ? 1 : 0;

  // Everyone verifies and agrees on the qualified set: the first t+1 roles
  // whose commitments tie to their verification key and whose every
  // subshare proof checks.
  std::vector<unsigned> qualified;
  std::vector<ReshareMsg> qualified_msgs;  // commitments only (for next_epoch_pk)
  for (unsigned j = 0; j < n && qualified.size() < tpk_.t + 1; ++j) {
    if (!msgs[j]) continue;
    const HandoverMsg& msg = *msgs[j];
    if (msg.commitments.size() != tpk_.t + 1) continue;
    if (msg.commitments[0] != tpk_.vks[j]) continue;
    bool all_ok = true;
    for (unsigned i = 0; i < n && all_ok; ++i) {
      mpz_class v_fij = 1;
      mpz_class pw = 1;
      for (const auto& com : msg.commitments) {
        v_fij = v_fij * powm_pub(com, pw, tpk_.pk.ns1) % tpk_.pk.ns1;
        pw *= (i + 1);
      }
      LinkStatement st;
      st.domain = "handover";
      st.paillier_legs = {PaillierLeg{next_holder.role_pk(i), msg.enc_subshares[i]}};
      st.exponent_legs = {ExponentLeg{tpk_.v, v_fij, tpk_.pk.ns1}};
      st.bound_bits = bound_bits;
      all_ok = link_verify(st, msg.proofs[i]);
    }
    if (!all_ok) continue;
    qualified.push_back(j + 1);
    ReshareMsg rm;
    rm.from_index = j + 1;
    rm.commitments = msg.commitments;
    qualified_msgs.push_back(std::move(rm));
  }
  if (qualified.size() < tpk_.t + 1) {
    const unsigned verified = static_cast<unsigned>(qualified.size());
    throw ProtocolAbort(FailureReport{FailureKind::Threshold, phase, holder.name,
                                      "tsk.handover", tpk_.t + 1, verified, present - verified,
                                      n - present});
  }

  // Each next-committee role decrypts the subshares addressed to it and
  // recombines (this happens locally on the recipient machines).
  const ThresholdPK old_tpk = tpk_;
  std::vector<ThresholdKeyShare> next_shares(n);
  for (unsigned i = 0; i < n; ++i) {
    const PaillierSK& rsk = next_holder.role_sks[i];
    const mpz_class half = rsk.pk.ns / 2;
    std::vector<SecretMpz> subs;
    for (unsigned q : qualified) {
      mpz_class v = rsk.dec(msgs[q - 1]->enc_subshares[i]);
      if (v > half) v -= rsk.pk.ns;  // lift to a signed integer
      subs.push_back(SecretMpz(std::move(v)));
    }
    next_shares[i] = tkrec(old_tpk, i + 1, qualified, subs);
  }
  tpk_ = next_epoch_pk(old_tpk, qualified, qualified_msgs);
  shares_ = std::move(next_shares);
  ++epochs_;
}

std::vector<FutureCt> DecryptChain::reencrypt_batch(Committee& masker, Committee& holder,
                                                    const std::vector<mpz_class>& cts,
                                                    const std::vector<const PaillierPK*>& targets,
                                                    Phase phase, const std::string& label,
                                                    Committee* next_holder) {
  assert(cts.size() == targets.size());
  obs::Span span("reencrypt.batch", "reencrypt");
  span.attr("masker", masker.name).attr("holder", holder.name).attr("cts", cts.size());
  auto sums = run_mask_committee(masker, targets, phase, label);
  std::vector<mpz_class> masked_cts;
  masked_cts.reserve(cts.size());
  for (std::size_t r = 0; r < cts.size(); ++r) {
    masked_cts.push_back(tpk_.pk.add(cts[r], sums[r].a_sum));
  }
  auto opened = run_decrypt_committee(holder, masked_cts, phase, label, next_holder);
  std::vector<FutureCt> out(cts.size());
  for (std::size_t r = 0; r < cts.size(); ++r) {
    out[r] = FutureCt{std::move(opened[r]), std::move(sums[r].b_sum)};
  }
  return out;
}

}  // namespace yoso
