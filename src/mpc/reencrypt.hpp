// The Re-encrypt / Decrypt engine (Protocols 1-2 of the paper).
//
// Our instantiation of Re-encrypt_{C}(pk, c) is the verifiable-masking
// variant (documented in DESIGN.md): a *mask committee* publishes, per
// re-encrypted value, a pad encrypted both under the threshold key tpk and
// under the recipient key pk together with a LinkProof that the two
// ciphertexts hold the same pad; a *decrypt committee* (the current holder
// of tsk) then publicly threshold-decrypts c + sum-of-verified-pads with
// per-partial PdecProofs.  The public masked value plus the pad-ciphertext
// sum form a "ciphertext to the future" that only the recipient can open.
// Every step is publicly verifiable, so any t+1 honest contributions
// guarantee output delivery.  Communication: O(n) broadcast elements per
// re-encrypted value, exactly the paper's cost.
//
// Decrypt_{C}(c) is the same without the mask step (the result is public).
//
// The tsk hand-over between consecutive decrypt committees (the TKRes /
// TKRec part of Protocols 1-2) is realized with Feldman commitments plus
// per-subshare LinkProofs binding the encrypted subshare to the committed
// polynomial, making the resharing publicly verifiable; cost O(n^2) per
// hand-over, the paper's one-time per-committee cost.
#pragma once

#include <optional>
#include <vector>

#include "mpc/failure.hpp"  // ProtocolAbort + FailureReport
#include "mpc/params.hpp"
#include "nizk/link_proof.hpp"
#include "nizk/pdec_proof.hpp"
#include "paillier/threshold.hpp"
#include "yoso/bulletin.hpp"

namespace yoso {

// A "ciphertext to the future": the public masked value together with the
// pad ciphertext sum under the recipient's key.
struct FutureCt {
  mpz_class masked;  // (m + sum of pads) mod N^s, publicly known
  mpz_class pad_ct;  // sum of the verified pad ciphertexts under target pk
};

// Recipient-side opening: m = masked - Dec(pad_ct) mod N^s.
mpz_class open_future(const PaillierSK& recipient, const FutureCt& fct, const mpz_class& ns);

// One role's mask contribution for one value.
struct MaskMsg {
  mpz_class a;  // TEnc(tpk, pad)
  mpz_class b;  // Enc(target, pad)
  LinkProof proof;
  std::size_t wire_bytes() const;
};

// One role's verifiable hand-over of its tsk share to the next committee.
struct HandoverMsg {
  unsigned from_index = 0;                // 1-based
  std::vector<mpz_class> commitments;     // Feldman commitments v^{a_c}
  std::vector<mpz_class> enc_subshares;   // enc_subshares[j] under next role j+1
  std::vector<LinkProof> proofs;          // one per subshare
  std::size_t wire_bytes() const;
};

class DecryptChain {
public:
  DecryptChain(ThresholdPK tpk, std::vector<ThresholdKeyShare> shares,
               const ProtocolParams& params, Bulletin& bulletin, Rng& rng);

  const ThresholdPK& tpk() const { return tpk_; }
  unsigned epochs() const { return epochs_; }

  // --- Mask committee activation ----------------------------------------
  // `targets[r]` is the recipient key of the r-th value.  The committee
  // speaks once, contributing a pad for every value.  Returns per value the
  // verified pad-ciphertext sums (a_sum under tpk, b_sum under target).
  struct MaskSums {
    mpz_class a_sum;
    mpz_class b_sum;
  };
  std::vector<MaskSums> run_mask_committee(Committee& masker,
                                           const std::vector<const PaillierPK*>& targets,
                                           Phase phase, const std::string& label);

  // --- Decrypt committee activation ---------------------------------------
  // Publicly threshold-decrypts all of `cts`.  If `next_holder` is given,
  // each role additionally hands its tsk share over to that committee (the
  // chain's current shares then move to `next_holder`).  Throws
  // ProtocolAbort if fewer than t+1 verified partials survive.
  std::vector<mpz_class> run_decrypt_committee(Committee& holder,
                                               const std::vector<mpz_class>& cts, Phase phase,
                                               const std::string& label,
                                               Committee* next_holder);

  // Convenience composition: Re-encrypt a batch of values, each toward its
  // own recipient key, using one mask committee + one decrypt committee.
  std::vector<FutureCt> reencrypt_batch(Committee& masker, Committee& holder,
                                        const std::vector<mpz_class>& cts,
                                        const std::vector<const PaillierPK*>& targets,
                                        Phase phase, const std::string& label,
                                        Committee* next_holder);

private:
  void handover(Committee& holder, Committee& next_holder, Phase phase);

  ThresholdPK tpk_;
  std::vector<ThresholdKeyShare> shares_;  // shares of the *current* holder
  const ProtocolParams* params_;
  Bulletin* bulletin_;
  Rng* rng_;
  unsigned epochs_ = 0;
};

}  // namespace yoso
