#include "mpc/protocol.hpp"

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace yoso {

YosoMpc::YosoMpc(ProtocolParams params, Circuit circuit, AdversaryPlan plan, std::uint64_t seed,
                 Bulletin* board)
    : params_(params), circuit_(std::move(circuit)), plan_(std::move(plan)), rng_(seed),
      own_board_(ledger_), board_(board != nullptr ? board : &own_board_) {
  // Holder committees: one per mul layer + re-encrypt + FKD + output.
  params_.planned_epochs = circuit_.mul_depth() + 3;
  params_.validate();
  if (plan_.n() != params_.n) throw std::invalid_argument("YosoMpc: plan size != n");
}

Committee& YosoMpc::spawn(const std::string& name, unsigned plain_bits) {
  unsigned s = params_.exponent_for(plain_bits);
  committees_.push_back(make_committee(name, params_.paillier_bits, s,
                                       plan_.committee(committee_counter_++), rng_));
  board_->on_committee_spawn(committees_.back());
  OBS_COUNT("committee.spawned");
  obs::Span("committee.spawn", "proto")
      .attr("committee", name)
      .attr("n", committees_.back().n());
  return committees_.back();
}

void YosoMpc::preprocess() {
  if (preprocessed_) throw std::logic_error("YosoMpc: preprocess called twice");
  preprocessed_ = true;

  const unsigned depth = circuit_.mul_depth();
  {
    obs::Span span("phase.setup", "phase");
    obs::ScopedOpContext op_ctx(obs::PhaseCtx::Setup);
    span.attr("n", params_.n).attr("depth", depth);
    setup_ = run_setup(params_, depth, circuit_.num_clients(), *board_, rng_);
  }

  // Spawn the full committee schedule.  Mask/contribution committees never
  // receive private data, so their role keys are minimal.
  const unsigned tiny = params_.paillier_bits;  // s = 1
  OfflineCommittees off;
  off.beaver_a = &spawn("off.beaver.a", tiny);
  off.beaver_b = &spawn("off.beaver.b", tiny);
  off.randomness = &spawn("off.lambda", tiny);
  for (unsigned l = 1; l <= depth; ++l) {
    off.layer_holders.push_back(&spawn("off.holder.L" + std::to_string(l),
                                       params_.holder_plain_bits()));
  }
  off.reenc_masker = &spawn("off.reenc.mask", tiny);
  off.reenc_holder = &spawn("off.reenc.holder", params_.holder_plain_bits());

  online_coms_.fkd_masker = &spawn("on.fkd.mask", tiny);
  online_coms_.fkd_holder = &spawn("on.fkd.holder", params_.holder_plain_bits());
  for (unsigned l = 1; l <= depth; ++l) {
    online_coms_.mult.push_back(&spawn("on.mult.L" + std::to_string(l),
                                       params_.role_plain_bits()));
  }
  online_coms_.out_holder = &spawn("on.out.holder", params_.holder_plain_bits());
  off.next_after = online_coms_.fkd_holder;

  // The dealer hands the initial tsk shares to the first holder committee.
  Committee* first_holder = depth > 0 ? off.layer_holders[0] : off.reenc_holder;
  (void)first_holder;  // in the simulation the chain holds the shares directly
  chain_.emplace(setup_->tkeys.tpk, setup_->tkeys.shares, params_, *board_, rng_);

  if (depth == 0) {
    // No layer holders: the re-encrypt holder is the first in the chain.
    off.layer_holders.clear();
  }
  obs::Span span("phase.offline", "phase");
  obs::ScopedOpContext op_ctx(obs::PhaseCtx::Offline);
  span.attr("n", params_.n).attr("depth", depth).attr("gates", circuit_.gates().size());
  offline_ = run_offline(params_, circuit_, *setup_, *chain_, off, *board_, rng_);
}

OnlineResult YosoMpc::evaluate(const std::vector<std::vector<mpz_class>>& inputs) {
  if (!preprocessed_) throw std::logic_error("YosoMpc: evaluate before preprocess");
  if (evaluated_) throw std::logic_error("YosoMpc: roles speak once; evaluate called twice");
  evaluated_ = true;
  obs::Span span("phase.online", "phase");
  obs::ScopedOpContext op_ctx(obs::PhaseCtx::Online);
  span.attr("n", params_.n).attr("gates", circuit_.gates().size());
  return run_online(params_, circuit_, *setup_, *offline_, *chain_, online_coms_, inputs,
                    *board_, rng_);
}

OnlineResult YosoMpc::run(const std::vector<std::vector<mpz_class>>& inputs) {
  preprocess();
  return evaluate(inputs);
}

const mpz_class& YosoMpc::plaintext_modulus() const {
  if (!setup_) throw std::logic_error("YosoMpc: no setup yet");
  return setup_->tkeys.tpk.pk.ns;
}

unsigned YosoMpc::epochs() const { return chain_ ? chain_->epochs() : 0; }

DegradedRunResult run_with_degradation(unsigned n, double eps, unsigned paillier_bits,
                                       const Circuit& circuit, const AdversaryPlan& plan,
                                       std::uint64_t seed, const BoardFactory& board_for,
                                       const std::vector<std::vector<mpz_class>>& inputs) {
  DegradedRunResult out;
  const ProtocolParams strict = ProtocolParams::for_gap(n, eps, paillier_bits);
  out.params_used = strict;

  Bulletin* strict_board = board_for ? board_for(/*failstop_retry=*/false) : nullptr;
  try {
    obs::Span span("degrade.strict", "degrade");
    span.attr("n", n);
    YosoMpc mpc(strict, circuit, plan, seed, strict_board);
    out.result = mpc.run(inputs);
    out.plaintext_modulus = mpc.plaintext_modulus();
    return out;
  } catch (const ProtocolAbort& abort) {
    if (abort.report()) out.strict_failure = *abort.report();
    if (strict_board != nullptr) {
      out.strict_attempt_bytes = strict_board->ledger().total().bytes;
    }
    const ProtocolParams failstop =
        ProtocolParams::for_gap(n, eps, paillier_bits, /*failstop_mode=*/true);
    const bool recoverable = out.strict_failure && out.strict_failure->silence_decisive() &&
                             failstop.recon_threshold() < strict.recon_threshold();
    if (!recoverable) {
      out.failure = out.strict_failure;
      return out;
    }

    // Silence-attributable and the fail-stop regime genuinely lowers the
    // reconstruction bar: retry under Section 5.4 on a fresh board.
    out.degraded = true;
    out.params_used = failstop;
    OBS_COUNT_N("degrade.retry_bytes", out.strict_attempt_bytes);
    Bulletin* retry_board = board_for ? board_for(/*failstop_retry=*/true) : nullptr;
    try {
      obs::Span span("degrade.retry", "degrade");
      span.attr("n", n).attr("sunk_bytes", out.strict_attempt_bytes);
      YosoMpc mpc(failstop, circuit, plan, seed, retry_board);
      if (retry_board != nullptr) {
        // Make the recovery's sunk cost ledger-visible before the retry runs.
        retry_board->publish_external("degrade", Phase::Setup, "degrade.retry",
                                      out.strict_attempt_bytes, 0);
      }
      out.result = mpc.run(inputs);
      out.plaintext_modulus = mpc.plaintext_modulus();
      out.recovered = true;
    } catch (const ProtocolAbort& retry_abort) {
      if (retry_abort.report()) out.failure = *retry_abort.report();
      else out.failure = out.strict_failure;
    }
    return out;
  }
}

}  // namespace yoso
