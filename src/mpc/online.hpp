// Pi_YOSO-Online (Section 5.3, Protocol 5).
//
// 1. Future key distribution: the first online committee re-encrypts every
//    KFF secret (transported as a prime factor under tpk) toward the now
//    known YOSO role keys / client keys.
// 2. Input: each client opens its lambda FutureCts with its KFF key and
//    broadcasts mu = v - lambda.
// 3. Addition (and constant) gates: mu propagates locally, for free.
// 4. Multiplication batches: role i of the layer committee opens its packed
//    shares, publishes the integer pad combination P_int together with a
//    RootProof that pins P_int to the public pad ciphertexts; everyone
//    derives the verified mu-shares and reconstructs mu^gamma from
//    t + 2(k-1) + 1 of them (guaranteed output delivery).
// 5. Output: the last committee re-encrypts lambda^alpha toward the
//    receiving client (Re-encrypt*, no further tsk hand-over); the client
//    computes v = mu + lambda.
#pragma once

#include <map>

#include "mpc/offline.hpp"

namespace yoso {

struct OnlineCommittees {
  Committee* fkd_masker = nullptr;  // pads for FKD and for the output wires
  Committee* fkd_holder = nullptr;  // first online tsk holder
  std::vector<Committee*> mult;     // one per multiplicative layer
  Committee* out_holder = nullptr;  // final tsk holder (Re-encrypt*)
};

struct OnlineResult {
  std::vector<mpz_class> outputs;      // in circuit.outputs() order
  std::map<WireId, mpz_class> mu;      // the public mu value of every wire
};

OnlineResult run_online(const ProtocolParams& params, const Circuit& circuit,
                        const SetupArtifacts& setup, const OfflineArtifacts& offline,
                        DecryptChain& chain, OnlineCommittees committees,
                        const std::vector<std::vector<mpz_class>>& inputs, Bulletin& bulletin,
                        Rng& rng);

}  // namespace yoso
