#include "mpc/failure.hpp"

#include <sstream>

namespace yoso {

std::string FailureReport::describe() const {
  std::ostringstream os;
  os << phase_name(phase) << " " << gate << " [" << committee << "]: ";
  if (kind == FailureKind::Consistency) {
    os << "inconsistent reconstruction from " << verified << " verified posts";
  } else {
    os << verified << " verified < threshold " << threshold << " (" << invalid << " invalid, "
       << missing << " missing";
    os << (silence_decisive() ? "; silence decisive)" : "; malice decisive)");
  }
  return os.str();
}

std::string FailureReport::to_json() const {
  std::ostringstream os;
  os << "{\"kind\":\"" << (kind == FailureKind::Threshold ? "threshold" : "consistency")
     << "\",\"phase\":\"" << phase_name(phase) << "\",\"committee\":\"" << committee
     << "\",\"gate\":\"" << gate << "\",\"threshold\":" << threshold
     << ",\"verified\":" << verified << ",\"invalid\":" << invalid << ",\"missing\":" << missing
     << ",\"silence_decisive\":" << (silence_decisive() ? "true" : "false") << "}";
  return os.str();
}

ProtocolAbort::ProtocolAbort(FailureReport r)
    : std::runtime_error(r.describe()), report_(std::move(r)) {}

}  // namespace yoso
