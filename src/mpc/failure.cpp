#include "mpc/failure.hpp"

#include <sstream>

#include "common/json.hpp"

namespace yoso {

std::string FailureReport::describe() const {
  std::ostringstream os;
  os << phase_name(phase) << " " << gate << " [" << committee << "]: ";
  if (kind == FailureKind::Consistency) {
    os << "inconsistent reconstruction from " << verified << " verified posts";
  } else {
    os << verified << " verified < threshold " << threshold << " (" << invalid << " invalid, "
       << missing << " missing";
    os << (silence_decisive() ? "; silence decisive)" : "; malice decisive)");
  }
  return os.str();
}

std::string FailureReport::to_json() const {
  json::Writer w;
  w.begin_object();
  w.field("kind", kind == FailureKind::Threshold ? "threshold" : "consistency");
  w.field("phase", phase_name(phase));
  w.field("committee", committee);
  w.field("gate", gate);
  w.field("threshold", static_cast<std::uint64_t>(threshold));
  w.field("verified", static_cast<std::uint64_t>(verified));
  w.field("invalid", static_cast<std::uint64_t>(invalid));
  w.field("missing", static_cast<std::uint64_t>(missing));
  w.field("silence_decisive", silence_decisive());
  w.end_object();
  return w.take();
}

ProtocolAbort::ProtocolAbort(FailureReport r)
    : std::runtime_error(r.describe()), report_(std::move(r)) {}

}  // namespace yoso
