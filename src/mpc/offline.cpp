#include "mpc/offline.hpp"

#include <array>

#include "field/poly.hpp"
#include "field/zn_ring.hpp"
#include "mpc/contrib.hpp"
#include "obs/trace.hpp"
#include "sharing/packed.hpp"
#include "nizk/mult_proof.hpp"
#include "nizk/plaintext_proof.hpp"

namespace yoso {

OfflineArtifacts run_offline(const ProtocolParams& params, const Circuit& circuit,
                             const SetupArtifacts& setup, DecryptChain& chain,
                             OfflineCommittees committees, Bulletin& bulletin, Rng& rng) {
  const PaillierPK& pk = chain.tpk().pk;  // the pk part never changes across epochs
  ZnRing ring(pk.ns);
  OfflineArtifacts out;
  out.batches = make_batches(circuit, params.k);

  // ----- Step 1: Beaver triples, one per multiplication gate --------------
  const auto& gates = circuit.gates();
  std::vector<WireId> mul_ids;
  for (WireId w = 0; w < gates.size(); ++w) {
    if (gates[w].kind == GateKind::Mul) mul_ids.push_back(w);
  }
  std::map<WireId, std::size_t> triple_of;  // mul gate -> triple index
  for (std::size_t i = 0; i < mul_ids.size(); ++i) triple_of[mul_ids[i]] = i;
  std::vector<BeaverTriple> triples;
  if (!mul_ids.empty()) {
    triples = make_beaver_triples(chain.tpk(), *committees.beaver_a, *committees.beaver_b,
                                  mul_ids.size(), Phase::Offline, bulletin, rng);
  }

  // ----- Step 2: random wire values + packing helpers ---------------------
  // Fresh randomness is needed for every input wire, every mul output wire,
  // and 3t helpers per batch (for packing alpha, beta, Gamma).
  std::vector<WireId> fresh_wires;
  for (WireId w = 0; w < gates.size(); ++w) {
    if (gates[w].kind == GateKind::Input || gates[w].kind == GateKind::Mul) {
      fresh_wires.push_back(w);
    }
  }
  const std::size_t helper_count = out.batches.size() * 3 * params.t;
  std::vector<mpz_class> fresh = contribute_randoms(
      chain.tpk(), *committees.randomness, fresh_wires.size() + helper_count, Phase::Offline,
      "lambda.fresh", bulletin, rng);
  // helpers[b][which in 0..2][j in 0..t-1]
  auto helper_at = [&](std::size_t batch, unsigned which, unsigned j) -> const mpz_class& {
    return fresh[fresh_wires.size() + (batch * 3 + which) * params.t + j];
  };

  // ----- Step 3: dependent wire values -------------------------------------
  out.wire_lambda_ct.resize(gates.size());
  {
    std::size_t next_fresh = 0;
    for (WireId w = 0; w < gates.size(); ++w) {
      const Gate& g = gates[w];
      switch (g.kind) {
        case GateKind::Input:
        case GateKind::Mul:
          out.wire_lambda_ct[w] = fresh[next_fresh++];
          break;
        case GateKind::Add:
          out.wire_lambda_ct[w] = pk.add(out.wire_lambda_ct[g.in0], out.wire_lambda_ct[g.in1]);
          break;
        case GateKind::Sub:
          out.wire_lambda_ct[w] =
              pk.add(out.wire_lambda_ct[g.in0], pk.scal(out.wire_lambda_ct[g.in1], -1));
          break;
        case GateKind::AddConst:
          out.wire_lambda_ct[w] = out.wire_lambda_ct[g.in0];  // lambda unchanged
          break;
        case GateKind::MulConst:
          out.wire_lambda_ct[w] = pk.scal(out.wire_lambda_ct[g.in0], ring.mod(g.constant));
          break;
      }
    }
  }

  // Per multiplicative layer: decrypt epsilon/delta and derive Gamma.
  std::map<WireId, mpz_class> gamma_ct;  // mul gate -> TEnc(Gamma)
  auto by_layer = circuit.mul_gates_by_layer();
  {
    obs::Span epsdelta_span("offline.epsdelta", "offline");
    epsdelta_span.attr("layers", by_layer.size());
    for (unsigned layer = 1; layer <= by_layer.size(); ++layer) {
      const auto& ids = by_layer[layer - 1];
      std::vector<mpz_class> to_decrypt;
      to_decrypt.reserve(2 * ids.size());
      for (WireId w : ids) {
        const Gate& g = gates[w];
        const BeaverTriple& tr = triples[triple_of[w]];
        to_decrypt.push_back(pk.add(out.wire_lambda_ct[g.in0], tr.a));  // epsilon
        to_decrypt.push_back(pk.add(out.wire_lambda_ct[g.in1], tr.b));  // delta
      }
      Committee* next = (layer < by_layer.size()) ? committees.layer_holders[layer]
                                                  : committees.reenc_holder;
      std::vector<mpz_class> opened = chain.run_decrypt_committee(
          *committees.layer_holders[layer - 1], to_decrypt, Phase::Offline,
          "offline.epsdelta", next);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        WireId w = ids[i];
        const Gate& g = gates[w];
        const BeaverTriple& tr = triples[triple_of[w]];
        const mpz_class& eps = opened[2 * i];
        const mpz_class& del = opened[2 * i + 1];
        // Gamma = eps * lambda^beta - delta * lambda^x + lambda^z - lambda^gamma
        gamma_ct[w] = pk.eval({out.wire_lambda_ct[g.in1], tr.a, tr.c, out.wire_lambda_ct[w]},
                              {eps, ring.neg(del), ring.one(), ring.neg(ring.one())});
      }
    }
  }

  // ----- Step 4: packing (local homomorphic interpolation) ----------------
  // Polynomial through secrets at 0, -1, ..., -(k-1) and helpers at 1..t;
  // party i's packed share is its evaluation at i.
  // packed[b][which][i]: ciphertext of role i's packed share.
  std::vector<std::array<std::vector<mpz_class>, 3>> packed(out.batches.size());
  {
    obs::Span pack_span("offline.pack", "offline");
    pack_span.attr("batches", out.batches.size()).attr("k", params.k);
    std::vector<std::int64_t> src_points;
    for (unsigned j = 0; j < params.k; ++j) src_points.push_back(secret_point(j));
    for (unsigned j = 1; j <= params.t; ++j) src_points.push_back(j);
    std::vector<std::vector<mpz_class>> coeffs_at(params.n);
    for (unsigned i = 0; i < params.n; ++i) {
      coeffs_at[i] = lagrange_coeffs(ring, src_points, static_cast<std::int64_t>(i) + 1);
    }

    for (std::size_t b = 0; b < out.batches.size(); ++b) {
      const MulBatch& batch = out.batches[b];
      for (unsigned which = 0; which < 3; ++which) {
        std::vector<mpz_class> sources;
        sources.reserve(params.k + params.t);
        for (unsigned j = 0; j < params.k; ++j) {
          WireId w = (which == 0) ? batch.alpha[j] : (which == 1) ? batch.beta[j] : batch.gamma[j];
          sources.push_back(which == 2 ? gamma_ct.at(w) : out.wire_lambda_ct[w]);
        }
        for (unsigned j = 0; j < params.t; ++j) sources.push_back(helper_at(b, which, j));
        packed[b][which].reserve(params.n);
        for (unsigned i = 0; i < params.n; ++i) {
          packed[b][which].push_back(pk.eval(sources, coeffs_at[i]));
        }
      }
    }
  }

  // ----- Steps 5 + 6: re-encrypt toward the KFFs --------------------------
  std::vector<mpz_class> reenc_cts;
  std::vector<const PaillierPK*> reenc_targets;
  std::vector<WireId> input_wires;
  for (WireId w = 0; w < gates.size(); ++w) {
    if (gates[w].kind == GateKind::Input) {
      input_wires.push_back(w);
      reenc_cts.push_back(out.wire_lambda_ct[w]);
      reenc_targets.push_back(&setup.kff_client[gates[w].client].sk.pk);
    }
  }
  for (std::size_t b = 0; b < out.batches.size(); ++b) {
    const unsigned layer = out.batches[b].layer;
    for (unsigned which = 0; which < 3; ++which) {
      for (unsigned i = 0; i < params.n; ++i) {
        reenc_cts.push_back(packed[b][which][i]);
        reenc_targets.push_back(&setup.kff_mult[layer - 1][i].sk.pk);
      }
    }
  }

  std::vector<FutureCt> fcts = chain.reencrypt_batch(
      *committees.reenc_masker, *committees.reenc_holder, reenc_cts, reenc_targets,
      Phase::Offline, "offline.reenc", committees.next_after);

  std::size_t pos = 0;
  for (WireId w : input_wires) out.input_lambda[w] = std::move(fcts[pos++]);
  out.batch_shares.resize(out.batches.size());
  for (std::size_t b = 0; b < out.batches.size(); ++b) {
    for (unsigned which = 0; which < 3; ++which) {
      auto& dst = (which == 0)   ? out.batch_shares[b].alpha
                  : (which == 1) ? out.batch_shares[b].beta
                                 : out.batch_shares[b].gamma;
      dst.reserve(params.n);
      for (unsigned i = 0; i < params.n; ++i) dst.push_back(std::move(fcts[pos++]));
    }
  }
  return out;
}

}  // namespace yoso
