// Pi_YOSO-Setup (Section 5.1).
//
// Generates, via the assumed trusted dealer:
//   * the threshold key pair (tpk published, tsk Shamir-shared to the first
//     decrypt committee);
//   * keys for future (KFF) for every role of every online multiplication
//     committee and for every input client; each KFF secret key is
//     transported as its prime factor, encrypted under tpk;
//   * client identity keys (the paper's known input/output machines).
//
// The Fiat-Shamir NIZKs used throughout are transparent (random-oracle),
// so no structured CRS is needed; the NIZKAoK.Setup of the paper
// degenerates to fixing the domain-separation labels.
#pragma once

#include <vector>

#include "mpc/params.hpp"
#include "paillier/threshold.hpp"
#include "yoso/bulletin.hpp"

namespace yoso {

struct KffKey {
  PaillierSK sk;        // held by the simulation; honest roles obtain it
                        // only through the FKD re-encryption
  mpz_class factor_ct;  // TEnc(tpk, p) where p is the smaller prime factor
};

struct SetupArtifacts {
  ThresholdKeys tkeys;
  std::vector<std::vector<KffKey>> kff_mult;  // [online layer][role index]
  std::vector<KffKey> kff_client;             // [client]
  std::vector<PaillierSK> client_keys;        // client identity keys
};

// `online_layers` = number of online multiplication committees the circuit
// needs (its multiplicative depth).
SetupArtifacts run_setup(const ProtocolParams& params, unsigned online_layers,
                         unsigned num_clients, Bulletin& bulletin, Rng& rng);

}  // namespace yoso
