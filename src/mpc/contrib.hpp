// Committee contribution sub-protocols shared by the packed protocol and
// the CDN baseline:
//   * contribute_randoms — each role of a committee encrypts a fresh random
//     value under tpk with a plaintext proof; the value becomes the sum of
//     the verified contributions (>= t+1 required).
//   * make_beaver_triples — Protocol 3: two committees jointly produce
//     encrypted Beaver triples, the second proving consistency with a CDN
//     multiplication proof.
#pragma once

#include <vector>

#include "paillier/threshold.hpp"
#include "yoso/bulletin.hpp"

namespace yoso {

std::vector<mpz_class> contribute_randoms(const ThresholdPK& tpk, Committee& com,
                                          std::size_t count, Phase phase,
                                          const std::string& label, Bulletin& bulletin,
                                          Rng& rng);

struct BeaverTriple {
  mpz_class a, b, c;  // ciphertexts under tpk, c encrypts a*b
};

std::vector<BeaverTriple> make_beaver_triples(const ThresholdPK& tpk, Committee& com_a,
                                              Committee& com_b, std::size_t count, Phase phase,
                                              Bulletin& bulletin, Rng& rng);

}  // namespace yoso
