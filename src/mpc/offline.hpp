// Pi_YOSO-Offline (Section 5.2, Protocol 4).
//
// Step 1  Beaver triples (Protocol 3) by two contribution committees.
// Step 2  random wire values lambda^alpha, contributed by a committee and
//         summed homomorphically under tpk.
// Step 3  dependent wire values: additions homomorphic; per multiplication
//         gate, consume a Beaver triple and publicly threshold-decrypt
//         epsilon/delta (one decrypt committee per multiplicative layer).
// Step 4  packing: per batch of k gates, interpolate packed-share
//         ciphertexts of lambda^alpha, lambda^beta and Gamma^gamma from the
//         per-wire ciphertexts plus t contributed helper randoms.
// Step 5  re-encrypt each input wire's lambda toward the owning client's
//         KFF key.
// Step 6  re-encrypt every packed share toward the KFF of the online role
//         that will consume it.
#pragma once

#include <map>

#include "circuit/batching.hpp"
#include "circuit/circuit.hpp"
#include "mpc/reencrypt.hpp"
#include "mpc/setup.hpp"

namespace yoso {

// Everything the online phase consumes.
struct BatchShares {
  std::vector<FutureCt> alpha, beta, gamma;  // per role i in [0, n)
};

struct OfflineArtifacts {
  std::vector<mpz_class> wire_lambda_ct;  // TEnc(tpk, lambda^w) per wire id
  std::vector<MulBatch> batches;
  std::vector<BatchShares> batch_shares;  // parallel to `batches`
  std::map<WireId, FutureCt> input_lambda;  // input wire -> client-KFF FutureCt
};

// The committees the offline phase consumes, created by the driver so that
// the adversary plan applies uniformly.  `layer_holders[l]` decrypts the
// epsilon/delta values of multiplicative layer l+1; the last layer holder
// hands tsk to `reenc_holder`, which in turn hands it to the (online)
// committee passed as `next_after`.
struct OfflineCommittees {
  Committee* beaver_a = nullptr;
  Committee* beaver_b = nullptr;
  Committee* randomness = nullptr;             // wire lambdas + packing helpers
  std::vector<Committee*> layer_holders;       // one per multiplicative layer
  Committee* reenc_masker = nullptr;
  Committee* reenc_holder = nullptr;
  Committee* next_after = nullptr;             // first online holder (FKD)
};

OfflineArtifacts run_offline(const ProtocolParams& params, const Circuit& circuit,
                             const SetupArtifacts& setup, DecryptChain& chain,
                             OfflineCommittees committees, Bulletin& bulletin, Rng& rng);

}  // namespace yoso
