#include "mpc/params.hpp"

#include <cmath>
#include <sstream>

#include "nizk/link_proof.hpp"  // kKappa / kStat

namespace yoso {

namespace {

unsigned log2_ceil(unsigned v) {
  unsigned b = 0;
  while ((1u << b) < v) ++b;
  return b;
}

// Bits of n! (Stirling-free overestimate: n * ceil(log2 n)).
unsigned delta_bits(unsigned n) { return n * log2_ceil(n + 1) + 2; }

}  // namespace

unsigned ProtocolParams::pad_bound_bits() const {
  return paillier_bits * s + pad_slack_bits;
}

unsigned ProtocolParams::pad_sum_bound_bits() const {
  // Verified adversarial pads are bounded by the LinkProof extraction slack.
  unsigned extracted = pad_bound_bits() + kKappa + kStat + 2;
  return extracted + log2_ceil(n + 1) + 1;
}

unsigned ProtocolParams::pint_bound_bits() const {
  // P_int = mu_a * p_b + mu_b * p_a + p_Gamma, mu < N^s.
  return paillier_bits * s + pad_sum_bound_bits() + 2;
}

unsigned ProtocolParams::kff_plain_bits() const {
  unsigned link_binding = pad_bound_bits() + kKappa + kStat + 4;
  return std::max(pint_bound_bits(), link_binding) + 8;
}

unsigned ProtocolParams::role_plain_bits() const {
  return pad_bound_bits() + kKappa + kStat + 12;
}

unsigned ProtocolParams::client_plain_bits() const { return role_plain_bits(); }

unsigned ProtocolParams::holder_plain_bits() const {
  // Replay the tsk share-size growth over the planned epochs (must agree
  // with ThresholdPK::subshare_bound_bits / next_epoch_pk).
  const unsigned ns1_bits = paillier_bits * (s + 1) + 1;
  const unsigned logn = log2_ceil(n + 1);
  const unsigned logt = log2_ceil(t + 2);
  unsigned share_bound = ns1_bits + 1;
  unsigned worst_subshare = 0;
  for (unsigned e = 0; e < planned_epochs; ++e) {
    unsigned mask_bits = ns1_bits + 40;  // ThresholdPK::stat_sec
    unsigned subshare = std::max(share_bound, mask_bits + t * logn + 8) + 1;
    worst_subshare = std::max(worst_subshare, subshare);
    share_bound = subshare + (delta_bits(n) + t * logn) + logt + 1;
  }
  return worst_subshare + kKappa + kStat + 12;
}

unsigned ProtocolParams::exponent_for(unsigned plain_bits) const {
  // N^{s'} has at least s' * (paillier_bits - 1) bits.
  return (plain_bits + paillier_bits - 2) / (paillier_bits - 1);
}

void ProtocolParams::validate() const {
  if (n == 0) throw std::invalid_argument("params: n == 0");
  if (t + 1 > n) throw std::invalid_argument("params: t + 1 > n");
  if (k == 0) throw std::invalid_argument("params: k == 0");
  if (static_cast<double>(t) >= n * (0.5 - epsilon)) {
    throw std::invalid_argument("params: t >= n(1/2 - eps)");
  }
  if (recon_threshold() > n - t) {
    throw std::invalid_argument(
        "params: reconstruction threshold t + 2(k-1) + 1 exceeds honest count");
  }
  if (paillier_bits < 64) throw std::invalid_argument("params: modulus too small");
}

ProtocolParams ProtocolParams::for_gap(unsigned n, double eps, unsigned paillier_bits,
                                       bool failstop_mode) {
  ProtocolParams p;
  p.n = n;
  p.epsilon = eps;
  p.paillier_bits = paillier_bits;
  p.failstop_mode = failstop_mode;
  double bound = n * (0.5 - eps);
  unsigned t = static_cast<unsigned>(std::floor(bound - 1e-9));
  if (static_cast<double>(t) >= bound) t = (t == 0) ? 0 : t - 1;
  p.t = t;
  double keps = failstop_mode ? eps / 2.0 : eps;
  unsigned k = static_cast<unsigned>(std::floor(n * keps + 1e-9)) + 1;
  // Shrink k until the GOD condition holds (it always does at k = 1).
  while (k > 1 && p.t + 2 * (k - 1) + 1 > n - p.t) --k;
  p.k = k;
  p.validate();
  return p;
}

std::string ProtocolParams::describe() const {
  std::ostringstream os;
  os << "n=" << n << " t=" << t << " k=" << k << " eps=" << epsilon
     << " |N|=" << paillier_bits << " s=" << s << " recon=" << recon_threshold()
     << (failstop_mode ? " [fail-stop mode]" : "");
  return os.str();
}

}  // namespace yoso
