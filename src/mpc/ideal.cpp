#include "mpc/ideal.hpp"

#include <stdexcept>

namespace yoso {

IdealMpc::IdealMpc(unsigned input_roles, unsigned output_roles, Function f)
    : inputs_(input_roles), outputs_(output_roles), f_(std::move(f)),
      x_(input_roles, mpz_class(0)),  // default input 0 for all roles
      spoken_(input_roles, false),
      cls_(input_roles, IdealRoleClass::Honest),
      out_cls_(output_roles, IdealRoleClass::Honest) {}

void IdealMpc::set_role_class(unsigned input_role, IdealRoleClass c) {
  cls_.at(input_role) = c;
}

void IdealMpc::set_output_class(unsigned output_role, IdealRoleClass c) {
  out_cls_.at(output_role) = c;
}

std::string IdealMpc::input(unsigned role, const mpz_class& x, unsigned round) {
  if (role >= inputs_) throw std::out_of_range("IdealMpc: no such input role");
  if (evaluated_) throw std::logic_error("IdealMpc: stage is already Evaluated");
  const bool honest = cls_[role] == IdealRoleClass::Honest;
  if (honest) {
    // Only the first input, and only in round 1, is considered; then Spoke.
    if (!spoken_[role] && round == 1) x_[role] = x;
    spoken_[role] = true;
    return std::to_string(mpz_sizeinbase(x.get_mpz_t(), 2));  // leak |x|
  }
  // Corrupt roles may (re)commit later; their input leaks in full.
  x_[role] = x;
  return x.get_str();
}

bool IdealMpc::has_spoken(unsigned input_role) const { return spoken_.at(input_role); }

std::map<unsigned, mpz_class> IdealMpc::evaluate(unsigned round) {
  if (round <= 1) throw std::logic_error("IdealMpc: Evaluated only in a round r > 1");
  if (evaluated_) throw std::logic_error("IdealMpc: already Evaluated");
  evaluated_ = true;
  y_ = f_(x_);
  if (y_.size() != outputs_) throw std::logic_error("IdealMpc: function arity mismatch");
  std::map<unsigned, mpz_class> leaked;
  for (unsigned r = 0; r < outputs_; ++r) {
    if (out_cls_[r] != IdealRoleClass::Honest) leaked[r] = y_[r];
  }
  return leaked;
}

std::optional<mpz_class> IdealMpc::read(unsigned output_role) const {
  if (output_role >= outputs_) throw std::out_of_range("IdealMpc: no such output role");
  if (!evaluated_) return std::nullopt;
  return y_[output_role];
}

const std::string& IdealBroadcast::send(const std::string& role, std::string x,
                                        unsigned round) {
  if (spoken_.count(role)) {
    throw std::logic_error("IdealBroadcast: role " + role + " spoke twice");
  }
  spoken_.insert(role);
  auto [it, _] = rounds_[round].emplace(role, std::move(x));
  return it->second;  // rushing leakage
}

std::map<std::string, std::string> IdealBroadcast::read(unsigned round_read,
                                                        unsigned current_round) const {
  if (round_read >= current_round) {
    throw std::logic_error("IdealBroadcast: can only read past rounds");
  }
  auto it = rounds_.find(round_read);
  if (it == rounds_.end()) return {};
  return it->second;
}

bool IdealBroadcast::has_spoken(const std::string& role) const {
  return spoken_.count(role) > 0;
}

}  // namespace yoso
