// The end-to-end protocol driver: spawns committees per the adversary plan,
// wires the tsk hand-over chain through them, and runs
// Pi_Setup -> Pi_Offline -> Pi_Online over a circuit.
//
// This is the main public entry point of the library:
//
//   ProtocolParams params = ProtocolParams::for_gap(8, 0.25, 256);
//   Circuit c = inner_product_circuit(4);
//   YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), /*seed=*/1);
//   mpc.preprocess();                       // offline, input-independent
//   auto result = mpc.evaluate(inputs);     // online, O(1)/gate broadcast
#pragma once

#include <deque>
#include <optional>

#include "mpc/online.hpp"

namespace yoso {

class YosoMpc {
public:
  // `board` optionally substitutes a custom Bulletin (e.g. net::NetBulletin
  // for simulated network traffic); it must outlive the YosoMpc and wrap
  // its own Ledger.  By default the driver owns a passive board.
  YosoMpc(ProtocolParams params, Circuit circuit, AdversaryPlan plan, std::uint64_t seed,
          Bulletin* board = nullptr);

  // Setup + offline phase (circuit-dependent, input-independent).
  void preprocess();

  // Online phase; one evaluation per YosoMpc instance (roles speak once).
  // `inputs[c]` holds client c's inputs in declaration order.
  OnlineResult evaluate(const std::vector<std::vector<mpz_class>>& inputs);

  // preprocess() + evaluate().
  OnlineResult run(const std::vector<std::vector<mpz_class>>& inputs);

  const ProtocolParams& params() const { return params_; }
  const Circuit& circuit() const { return circuit_; }
  const Ledger& ledger() const { return board_->ledger(); }
  const Bulletin& bulletin() const { return *board_; }
  // Plaintext modulus N^s of the computation.
  const mpz_class& plaintext_modulus() const;
  // Number of tsk hand-overs executed so far.
  unsigned epochs() const;

private:
  Committee& spawn(const std::string& name, unsigned plain_bits);

  ProtocolParams params_;
  Circuit circuit_;
  AdversaryPlan plan_;
  Rng rng_;
  Ledger ledger_;          // backs own_board_ (unused with an external board)
  Bulletin own_board_;
  Bulletin* board_;        // the board every phase publishes to
  unsigned committee_counter_ = 0;

  std::deque<Committee> committees_;  // stable addresses for the phase structs
  std::optional<SetupArtifacts> setup_;
  std::optional<OfflineArtifacts> offline_;
  std::optional<DecryptChain> chain_;
  OnlineCommittees online_coms_;
  bool preprocessed_ = false;
  bool evaluated_ = false;
};

}  // namespace yoso
