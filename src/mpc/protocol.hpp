// The end-to-end protocol driver: spawns committees per the adversary plan,
// wires the tsk hand-over chain through them, and runs
// Pi_Setup -> Pi_Offline -> Pi_Online over a circuit.
//
// This is the main public entry point of the library:
//
//   ProtocolParams params = ProtocolParams::for_gap(8, 0.25, 256);
//   Circuit c = inner_product_circuit(4);
//   YosoMpc mpc(params, c, AdversaryPlan::honest(params.n), /*seed=*/1);
//   mpc.preprocess();                       // offline, input-independent
//   auto result = mpc.evaluate(inputs);     // online, O(1)/gate broadcast
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "mpc/online.hpp"

namespace yoso {

class YosoMpc {
public:
  // `board` optionally substitutes a custom Bulletin (e.g. net::NetBulletin
  // for simulated network traffic); it must outlive the YosoMpc and wrap
  // its own Ledger.  By default the driver owns a passive board.
  YosoMpc(ProtocolParams params, Circuit circuit, AdversaryPlan plan, std::uint64_t seed,
          Bulletin* board = nullptr);

  // Setup + offline phase (circuit-dependent, input-independent).
  void preprocess();

  // Online phase; one evaluation per YosoMpc instance (roles speak once).
  // `inputs[c]` holds client c's inputs in declaration order.
  OnlineResult evaluate(const std::vector<std::vector<mpz_class>>& inputs);

  // preprocess() + evaluate().
  OnlineResult run(const std::vector<std::vector<mpz_class>>& inputs);

  const ProtocolParams& params() const { return params_; }
  const Circuit& circuit() const { return circuit_; }
  const Ledger& ledger() const { return board_->ledger(); }
  const Bulletin& bulletin() const { return *board_; }
  // Session re-entry seams (src/service): the triple pool banks instances
  // after preprocess() and hands them to sessions, which call evaluate()
  // later on the same board — these accessors let the service layer check
  // where an instance stands without poking the run.
  bool preprocessed() const { return preprocessed_; }
  bool evaluated() const { return evaluated_; }
  // Plaintext modulus N^s of the computation.
  const mpz_class& plaintext_modulus() const;
  // Number of tsk hand-overs executed so far.
  unsigned epochs() const;

private:
  Committee& spawn(const std::string& name, unsigned plain_bits);

  ProtocolParams params_;
  Circuit circuit_;
  AdversaryPlan plan_;
  Rng rng_;
  Ledger ledger_;          // backs own_board_ (unused with an external board)
  Bulletin own_board_;
  Bulletin* board_;        // the board every phase publishes to
  unsigned committee_counter_ = 0;

  std::deque<Committee> committees_;  // stable addresses for the phase structs
  std::optional<SetupArtifacts> setup_;
  std::optional<OfflineArtifacts> offline_;
  std::optional<DecryptChain> chain_;
  OnlineCommittees online_coms_;
  bool preprocessed_ = false;
  bool evaluated_ = false;
};

// ---------------------------------------------------------------------------
// Graceful degradation to the Section 5.4 fail-stop regime.
//
// A threshold abort whose FailureReport is silence-decisive (restoring the
// missing roles alone would have met the gate) is attributable to crashes /
// dead links rather than malice.  The strict parameterization gave those
// runs no slack: k - 1 = floor(n * eps) spends the whole gap on packing.
// Section 5.4 spends half the gap on fail-stop tolerance instead
// (k - 1 <= n * eps / 2), so the same fault pattern completes.  The driver
// runs the strict attempt, diagnoses the abort, and — when the diagnosis
// licenses it — re-runs with ProtocolParams::for_gap(..., failstop_mode).
// ---------------------------------------------------------------------------

struct DegradedRunResult {
  std::optional<OnlineResult> result;  // outputs of the attempt that completed
  bool degraded = false;               // the Section 5.4 retry was attempted
  bool recovered = false;              // the retry completed after a strict abort
  std::optional<FailureReport> strict_failure;  // strict attempt's diagnosis
  std::optional<FailureReport> failure;  // terminal failure (unrecoverable/retry failed)
  ProtocolParams params_used;          // parameters of the final attempt
  mpz_class plaintext_modulus = 0;     // N^s of the completed attempt (0 if none)
  std::size_t strict_attempt_bytes = 0;  // bytes spent on a failed strict attempt

  bool ok() const { return result.has_value(); }
};

// Supplies the board for each attempt (`failstop_retry` = false for the
// strict attempt, true for the retry); return nullptr to let YosoMpc own a
// passive board.  Each attempt needs a fresh board: roles speak once, so a
// retry is a brand-new activation of every committee.  The retry's board
// additionally carries a ledger entry "degrade.retry" (phase Setup) priced
// at the strict attempt's total bytes, so recovery's true communication
// cost — retry traffic plus the sunk strict attempt — is ledger-visible.
using BoardFactory = std::function<Bulletin*(bool failstop_retry)>;

DegradedRunResult run_with_degradation(unsigned n, double eps, unsigned paillier_bits,
                                       const Circuit& circuit, const AdversaryPlan& plan,
                                       std::uint64_t seed, const BoardFactory& board_for,
                                       const std::vector<std::vector<mpz_class>>& inputs);

}  // namespace yoso
