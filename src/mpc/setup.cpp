#include "mpc/setup.hpp"

#include "crypto/transcript.hpp"
#include "obs/trace.hpp"

namespace yoso {

namespace {

KffKey make_kff(const ProtocolParams& params, const ThresholdPK& tpk, unsigned plain_bits,
                Bulletin& bulletin, Rng& rng) {
  KffKey kff;
  kff.sk = paillier_keygen(params.paillier_bits, params.exponent_for(plain_bits), rng,
                           /*safe_primes=*/false);
  // Transport the smaller factor; it fits in Z_{N^s} of the threshold key.
  const mpz_class& factor = kff.sk.p < kff.sk.q ? kff.sk.p : kff.sk.q;
  kff.factor_ct = tpk.pk.enc_secret(SecretMpz(factor), rng);
  bulletin.publish_external("dealer", Phase::Setup, "setup.kff",
                            mpz_wire_size(kff.factor_ct) +
                                mpz_wire_size(kff.sk.pk.n),
                            2);
  return kff;
}

}  // namespace

SetupArtifacts run_setup(const ProtocolParams& params, unsigned online_layers,
                         unsigned num_clients, Bulletin& bulletin, Rng& rng) {
  SetupArtifacts out;
  {
    obs::Span span("setup.tkgen", "setup");
    span.attr("n", params.n).attr("t", params.t);
    out.tkeys = tkgen(params.paillier_bits, params.s, params.n, params.t, rng);
  }
  bulletin.publish_external("dealer", Phase::Setup, "setup.tpk",
                            mpz_wire_size(out.tkeys.tpk.pk.n) +
                                mpz_wire_size(out.tkeys.tpk.v),
                            2 + params.n);

  obs::Span span("setup.kff", "setup");
  span.attr("layers", online_layers).attr("clients", num_clients);
  out.kff_mult.resize(online_layers);
  for (unsigned l = 0; l < online_layers; ++l) {
    out.kff_mult[l].reserve(params.n);
    for (unsigned i = 0; i < params.n; ++i) {
      out.kff_mult[l].push_back(
          make_kff(params, out.tkeys.tpk, params.kff_plain_bits(), bulletin, rng));
    }
  }
  out.kff_client.reserve(num_clients);
  out.client_keys.reserve(num_clients);
  for (unsigned c = 0; c < num_clients; ++c) {
    out.kff_client.push_back(
        make_kff(params, out.tkeys.tpk, params.kff_plain_bits(), bulletin, rng));
    out.client_keys.push_back(paillier_keygen(
        params.paillier_bits, params.exponent_for(params.client_plain_bits()), rng,
        /*safe_primes=*/false));
  }
  return out;
}

}  // namespace yoso
