#include "mpc/contrib.hpp"

#include "mpc/reencrypt.hpp"  // ProtocolAbort
#include "nizk/mult_proof.hpp"
#include "nizk/plaintext_proof.hpp"
#include "obs/trace.hpp"
#include "wire/codec.hpp"

namespace yoso {

std::vector<mpz_class> contribute_randoms(const ThresholdPK& tpk, Committee& com,
                                          std::size_t count, Phase phase,
                                          const std::string& label, Bulletin& bulletin,
                                          Rng& rng) {
  obs::Span span("contrib.randoms", "contrib");
  span.attr("committee", com.name).attr("count", count).attr("phase", phase_name(phase));
  const unsigned n = com.n();
  struct Contribution {
    mpz_class ct;
    PlaintextProof proof;
  };
  std::vector<std::vector<Contribution>> msgs(n);
  for (unsigned j = 0; j < n; ++j) {
    if (!com.corruption.is_active(j)) continue;
    com.speak(j);
    const bool bad = com.corruption.is_malicious(j);
    const auto strat = com.corruption.strategy;
    msgs[j].reserve(count);
    std::size_t bytes = 0;
    for (std::size_t v = 0; v < count; ++v) {
      SecretMpz m(rng.below(tpk.pk.ns));
      mpz_class r;
      mpz_class ct = tpk.pk.enc_secret(m, rng, &r);
      PlaintextProof proof = prove_plaintext(tpk.pk, ct, m, SecretMpz(r), rng);
      if (bad && strat == MaliciousStrategy::BadShare) {
        ct = tpk.pk.add(ct, tpk.pk.enc(mpz_class(1), rng));  // proof no longer matches
      }
      if (bad && strat == MaliciousStrategy::BadProof) proof.inner.z += 1;
      bytes += mpz_wire_size(ct) + proof.wire_bytes();
      msgs[j].push_back(Contribution{std::move(ct), std::move(proof)});
    }
    std::vector<std::uint8_t> payload;
    if (bulletin.wants_payload()) {
      ContribMsg wire;
      for (const auto& c : msgs[j]) {
        wire.cts.push_back(c.ct);
        wire.proofs.push_back(c.proof);
      }
      payload = encode_contrib_msg(wire);
    }
    PostStatus st = bulletin.publish(com, j, phase, label, bytes, count,
                                     /*first_post_of_role=*/false,
                                     payload.empty() ? nullptr : &payload);
    // A post that never reached the board leaves the role silent: observers
    // verify what the board serves, not what the role computed.
    if (st != PostStatus::Accepted) msgs[j].clear();
  }

  unsigned present = 0;
  for (unsigned j = 0; j < n; ++j) present += msgs[j].empty() ? 0 : 1;

  std::vector<mpz_class> out(count);
  for (std::size_t v = 0; v < count; ++v) {
    mpz_class sum;
    bool first = true;
    unsigned verified = 0;
    for (unsigned j = 0; j < n; ++j) {
      if (msgs[j].empty()) continue;
      const auto& c = msgs[j][v];
      if (!verify_plaintext(tpk.pk, c.ct, c.proof)) continue;
      ++verified;
      if (first) {
        sum = c.ct;
        first = false;
      } else {
        sum = tpk.pk.add(sum, c.ct);
      }
    }
    if (verified < tpk.t + 1) {
      throw ProtocolAbort(FailureReport{FailureKind::Threshold, phase, com.name, label,
                                        tpk.t + 1, verified, present - verified, n - present});
    }
    out[v] = std::move(sum);
  }
  return out;
}

std::vector<BeaverTriple> make_beaver_triples(const ThresholdPK& tpk, Committee& com_a,
                                              Committee& com_b, std::size_t count, Phase phase,
                                              Bulletin& bulletin, Rng& rng) {
  obs::Span span("contrib.beaver", "contrib");
  span.attr("committee", com_b.name).attr("count", count).attr("phase", phase_name(phase));
  std::vector<mpz_class> c_a =
      contribute_randoms(tpk, com_a, count, phase, "beaver.a", bulletin, rng);

  const unsigned n = com_b.n();
  struct BC {
    mpz_class cb, cc;
    MultProof proof;
  };
  std::vector<std::vector<BC>> msgs(n);
  for (unsigned j = 0; j < n; ++j) {
    if (!com_b.corruption.is_active(j)) continue;
    com_b.speak(j);
    const bool bad = com_b.corruption.is_malicious(j);
    const auto strat = com_b.corruption.strategy;
    msgs[j].reserve(count);
    std::size_t bytes = 0;
    for (std::size_t g = 0; g < count; ++g) {
      SecretMpz b(rng.below(tpk.pk.ns));
      mpz_class rb, rho;
      mpz_class cb = tpk.pk.enc_secret(b, rng, &rb);
      mpz_class cc = tpk.pk.rerandomize(tpk.pk.scal_secret(c_a[g], b), rng, &rho);
      if (bad && strat == MaliciousStrategy::BadShare) {
        cc = tpk.pk.add(cc, tpk.pk.enc(mpz_class(1), rng));  // c no longer a*b
      }
      MultProof proof = prove_mult(tpk.pk, c_a[g], cb, cc, b, SecretMpz(rb), SecretMpz(rho), rng);
      if (bad && strat == MaliciousStrategy::BadProof) proof.z += 1;
      bytes += mpz_wire_size(cb) + mpz_wire_size(cc) + proof.wire_bytes();
      msgs[j].push_back(BC{std::move(cb), std::move(cc), std::move(proof)});
    }
    std::vector<std::uint8_t> payload;
    if (bulletin.wants_payload()) {
      BeaverMsg wire;
      for (const auto& m : msgs[j]) {
        wire.cb.push_back(m.cb);
        wire.cc.push_back(m.cc);
        wire.proofs.push_back(m.proof);
      }
      payload = encode_beaver_msg(wire);
    }
    PostStatus st = bulletin.publish(com_b, j, phase, "beaver.bc", bytes, 2 * count,
                                     /*first_post_of_role=*/false,
                                     payload.empty() ? nullptr : &payload);
    if (st != PostStatus::Accepted) msgs[j].clear();
  }

  unsigned present = 0;
  for (unsigned j = 0; j < n; ++j) present += msgs[j].empty() ? 0 : 1;

  std::vector<BeaverTriple> out(count);
  for (std::size_t g = 0; g < count; ++g) {
    mpz_class sb, sc;
    bool first = true;
    unsigned verified = 0;
    for (unsigned j = 0; j < n; ++j) {
      if (msgs[j].empty()) continue;
      const auto& m = msgs[j][g];
      if (!verify_mult(tpk.pk, c_a[g], m.cb, m.cc, m.proof)) continue;
      ++verified;
      if (first) {
        sb = m.cb;
        sc = m.cc;
        first = false;
      } else {
        sb = tpk.pk.add(sb, m.cb);
        sc = tpk.pk.add(sc, m.cc);
      }
    }
    if (verified < tpk.t + 1) {
      throw ProtocolAbort(FailureReport{FailureKind::Threshold, phase, com_b.name, "beaver.bc",
                                        tpk.t + 1, verified, present - verified, n - present});
    }
    out[g] = BeaverTriple{c_a[g], std::move(sb), std::move(sc)};
  }
  return out;
}

}  // namespace yoso
