// The ideal functionalities of the YOSO framework, as executable code:
//
//   * F_MPC  (Section 2)  — the two-stage (GettingInputs / Evaluated) MPC
//     functionality with default inputs, first-round input commitment for
//     honest roles, adversarial leakage of corrupt inputs, and Spoke
//     tokens; and
//   * F_BC   (Appendix C) — the round-based broadcast functionality with
//     rushing leakage.
//
// These serve two purposes: they pin down the security target in code (the
// test suite checks the real protocol's I/O behaviour coincides with
// F_MPC's on identical inputs — the correctness half of UC emulation), and
// they document the model for library users extending the protocol.
#pragma once

#include <gmpxx.h>

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace yoso {

enum class IdealRoleClass { Honest, Leaky, Malicious };

class IdealMpc {
public:
  // `f` maps the full input map to one output per output-role.
  using Function = std::function<std::vector<mpz_class>(const std::vector<mpz_class>&)>;

  IdealMpc(unsigned input_roles, unsigned output_roles, Function f);

  void set_role_class(unsigned input_role, IdealRoleClass c);

  // (Input, R, x) in round `round`.  Honest roles: only the first input,
  // and only in round 1, is considered; the role receives Spoke.  Returns
  // what leaks to the simulator: |x| for honest roles, x itself for leaky
  // or malicious ones (as a decimal string for the length case).
  std::string input(unsigned role, const mpz_class& x, unsigned round);

  bool has_spoken(unsigned input_role) const;

  // S's Evaluated signal; only valid in a round r > 1 while still in the
  // GettingInputs stage.  Returns the outputs leaked to the simulator
  // (those of leaky/malicious output roles).
  std::map<unsigned, mpz_class> evaluate(unsigned round);

  // (Read, R): delivery of role R's output once Evaluated.
  std::optional<mpz_class> read(unsigned output_role) const;

  bool evaluated() const { return evaluated_; }

private:
  unsigned inputs_, outputs_;
  Function f_;
  std::vector<mpz_class> x_;
  std::vector<bool> spoken_;
  std::vector<IdealRoleClass> cls_;
  std::vector<IdealRoleClass> out_cls_;
  std::vector<mpz_class> y_;
  bool evaluated_ = false;

public:
  void set_output_class(unsigned output_role, IdealRoleClass c);
};

// F_BC: the broadcast functionality with per-round message maps and
// rushing leakage (the adversary sees honest messages before corrupt roles
// must commit to theirs — modeled by leak-on-send).
class IdealBroadcast {
public:
  // (Send, R, x) in round r; each role sends once.  Returns the leaked
  // message (rushing adversaries see it immediately).
  const std::string& send(const std::string& role, std::string x, unsigned round);

  // (Read, R, r') in a later round: the full map of round r'.
  std::map<std::string, std::string> read(unsigned round_read, unsigned current_round) const;

  bool has_spoken(const std::string& role) const;

private:
  std::map<unsigned, std::map<std::string, std::string>> rounds_;
  std::set<std::string> spoken_;
};

}  // namespace yoso
