// Structured failure diagnosis for protocol aborts.
//
// Every threshold gate in the protocol (t+1 verified pads / partials /
// contributions, t+2(k-1)+1 verified mu-shares) can miss when the adversary
// plus fault injection remove too many posts.  Instead of a context-free
// string, ProtocolAbort carries a FailureReport: which committee missed
// which gate, the expected threshold, and the verified / invalid / missing
// breakdown.  Consumers:
//   * the chaos InvariantChecker (src/chaos) asserts every out-of-bounds
//     run ends in a *classified* failure, and that the report's counts are
//     internally consistent;
//   * the degradation driver (mpc/protocol.hpp) re-runs with the Section
//     5.4 fail-stop parameterization exactly when silence_decisive() says
//     the shortfall is attributable to silent roles, not malice.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "yoso/ledger.hpp"

namespace yoso {

// What kind of gate failed.
enum class FailureKind : unsigned char {
  Threshold,    // fewer verified contributions than the gate requires
  Consistency,  // contradictory reconstructions (equivocation on the board)
};

struct FailureReport {
  FailureKind kind = FailureKind::Threshold;
  Phase phase = Phase::Setup;
  std::string committee;   // committee whose activation missed the gate
  std::string gate;        // ledger label of the gate ("offline.reenc.mask", ...)
  unsigned threshold = 0;  // verified contributions the gate needed
  unsigned verified = 0;   // posts that arrived and passed verification
  unsigned invalid = 0;    // posts that arrived but failed verification
  unsigned missing = 0;    // roles whose post never reached the board

  // The committee size implied by the counts (every role is exactly one of
  // verified / invalid / missing).
  unsigned roles() const { return verified + invalid + missing; }

  // True when restoring the missing (silent) roles would have met the
  // gate: the abort is attributable to silence rather than malice, so the
  // Section 5.4 parameterization (halved packing, lower reconstruction
  // threshold) can recover.  Consistency failures are never recoverable.
  bool silence_decisive() const {
    return kind == FailureKind::Threshold && verified + missing >= threshold;
  }

  std::string describe() const;
  std::string to_json() const;
};

// Raised when the adversary manages to stall the protocol (must never
// happen within the theorem's corruption bounds; tests assert on it).
// Carries the structured diagnosis when the throw site can provide one.
struct ProtocolAbort : std::runtime_error {
  explicit ProtocolAbort(const std::string& what) : std::runtime_error(what) {}
  explicit ProtocolAbort(FailureReport r);

  const std::optional<FailureReport>& report() const { return report_; }

private:
  std::optional<FailureReport> report_;
};

}  // namespace yoso
