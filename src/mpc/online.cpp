#include "mpc/online.hpp"

#include <stdexcept>

#include "field/zn_ring.hpp"
#include "nizk/link_proof.hpp"  // kKappa/kStat (bounds)
#include "nizk/root_proof.hpp"
#include "obs/trace.hpp"
#include "sharing/packed.hpp"
#include "wire/codec.hpp"

namespace yoso {

namespace {

// Public derivation of one mu-share from a role's published P_int.
// Returns the share's value; validity was already established by the
// RootProof against the public pad ciphertexts.
mpz_class derive_mu_share(const ZnRing& ring, const mpz_class& mu_a, const mpz_class& mu_b,
                          const mpz_class& m_alpha, const mpz_class& m_beta,
                          const mpz_class& m_gamma, const mpz_class& p_int) {
  mpz_class bracket = mu_a * mu_b + mu_a * m_beta + mu_b * m_alpha + m_gamma;
  return ring.mod(bracket - p_int);
}

}  // namespace

OnlineResult run_online(const ProtocolParams& params, const Circuit& circuit,
                        const SetupArtifacts& setup, const OfflineArtifacts& offline,
                        DecryptChain& chain, OnlineCommittees committees,
                        const std::vector<std::vector<mpz_class>>& inputs, Bulletin& bulletin,
                        Rng& rng) {
  const PaillierPK& pk = chain.tpk().pk;
  const mpz_class& ns = pk.ns;
  ZnRing ring(ns);
  const auto& gates = circuit.gates();
  const unsigned n = params.n;

  // ----- Step 1: future key distribution + output pads --------------------
  // One mask-committee activation covers the FKD pads and the output pads.
  obs::Span fkd_span("online.fkd", "online");
  std::vector<mpz_class> fkd_cts;
  std::vector<const PaillierPK*> fkd_targets;
  for (std::size_t l = 0; l < committees.mult.size(); ++l) {
    for (unsigned i = 0; i < n; ++i) {
      fkd_cts.push_back(setup.kff_mult[l][i].factor_ct);
      fkd_targets.push_back(&committees.mult[l]->role_pk(i));
    }
  }
  for (unsigned c = 0; c < setup.kff_client.size(); ++c) {
    fkd_cts.push_back(setup.kff_client[c].factor_ct);
    fkd_targets.push_back(&setup.client_keys[c].pk);
  }
  std::vector<mpz_class> out_cts;
  std::vector<const PaillierPK*> out_targets;
  for (const auto& spec : circuit.outputs()) {
    out_cts.push_back(offline.wire_lambda_ct[spec.wire]);
    out_targets.push_back(&setup.client_keys[spec.client].pk);
  }

  std::vector<const PaillierPK*> all_targets = fkd_targets;
  all_targets.insert(all_targets.end(), out_targets.begin(), out_targets.end());
  auto mask_sums = chain.run_mask_committee(*committees.fkd_masker, all_targets, Phase::Online,
                                            "online.fkd");

  std::vector<mpz_class> fkd_masked;
  for (std::size_t r = 0; r < fkd_cts.size(); ++r) {
    fkd_masked.push_back(pk.add(fkd_cts[r], mask_sums[r].a_sum));
  }
  std::vector<mpz_class> fkd_opened = chain.run_decrypt_committee(
      *committees.fkd_holder, fkd_masked, Phase::Online, "online.fkd", committees.out_holder);

  // Assemble the FutureCts and let the recipients derive their KFF keys.
  std::size_t pos = 0;
  std::vector<std::vector<PaillierSK>> kff_sk(committees.mult.size());
  for (std::size_t l = 0; l < committees.mult.size(); ++l) {
    for (unsigned i = 0; i < n; ++i, ++pos) {
      FutureCt fct{fkd_opened[pos], mask_sums[pos].b_sum};
      mpz_class factor = open_future(committees.mult[l]->role_sks[i], fct, ns);
      kff_sk[l].push_back(paillier_sk_from_factor(setup.kff_mult[l][i].sk.pk, factor));
    }
  }
  std::vector<PaillierSK> client_kff_sk;
  for (unsigned c = 0; c < setup.kff_client.size(); ++c, ++pos) {
    FutureCt fct{fkd_opened[pos], mask_sums[pos].b_sum};
    mpz_class factor = open_future(setup.client_keys[c], fct, ns);
    client_kff_sk.push_back(paillier_sk_from_factor(setup.kff_client[c].sk.pk, factor));
  }
  fkd_span.attr("keys", pos).end();

  // ----- Step 2: client inputs ---------------------------------------------
  OnlineResult result;
  std::vector<std::size_t> next_input(circuit.num_clients(), 0);
  for (WireId w = 0; w < gates.size(); ++w) {
    if (gates[w].kind != GateKind::Input) continue;
    unsigned c = gates[w].client;
    if (c >= inputs.size() || next_input[c] >= inputs[c].size()) {
      throw std::invalid_argument("run_online: missing input for client " + std::to_string(c));
    }
    mpz_class v = ring.mod(inputs[c][next_input[c]++]);
    mpz_class lambda = open_future(client_kff_sk[c], offline.input_lambda.at(w), ns);
    result.mu[w] = ring.sub(v, lambda);
    bulletin.publish_external("client" + std::to_string(c), Phase::Online, "online.input",
                              mpz_wire_size(result.mu[w]), 1);
  }

  // ----- Steps 3-4: layer-by-layer evaluation ------------------------------
  auto sweep_local = [&]() {
    for (WireId w = 0; w < gates.size(); ++w) {
      if (result.mu.count(w)) continue;
      const Gate& g = gates[w];
      switch (g.kind) {
        case GateKind::Add:
          if (result.mu.count(g.in0) && result.mu.count(g.in1)) {
            result.mu[w] = ring.add(result.mu[g.in0], result.mu[g.in1]);
          }
          break;
        case GateKind::Sub:
          if (result.mu.count(g.in0) && result.mu.count(g.in1)) {
            result.mu[w] = ring.sub(result.mu[g.in0], result.mu[g.in1]);
          }
          break;
        case GateKind::AddConst:
          if (result.mu.count(g.in0)) {
            result.mu[w] = ring.add(result.mu[g.in0], ring.mod(g.constant));
          }
          break;
        case GateKind::MulConst:
          if (result.mu.count(g.in0)) {
            result.mu[w] = ring.mul(result.mu[g.in0], ring.mod(g.constant));
          }
          break;
        default:
          break;
      }
    }
  };
  sweep_local();

  const unsigned depth = circuit.mul_depth();
  for (unsigned layer = 1; layer <= depth; ++layer) {
    Committee& com = *committees.mult[layer - 1];
    const auto& kffs = kff_sk[layer - 1];

    // Collect this layer's batches and the public mu-share vectors.
    std::vector<std::size_t> layer_batches;
    for (std::size_t b = 0; b < offline.batches.size(); ++b) {
      if (offline.batches[b].layer == layer) layer_batches.push_back(b);
    }
    obs::Span layer_span("online.mult", "online");
    layer_span.attr("committee", com.name).attr("layer", layer).attr("batches",
                                                                     layer_batches.size());
    // Public, determined degree-(k-1) sharings of the mu input vectors.
    std::vector<std::vector<mpz_class>> mu_a_shares(layer_batches.size());
    std::vector<std::vector<mpz_class>> mu_b_shares(layer_batches.size());
    for (std::size_t bi = 0; bi < layer_batches.size(); ++bi) {
      const MulBatch& batch = offline.batches[layer_batches[bi]];
      std::vector<mpz_class> mu_a, mu_b;
      for (unsigned j = 0; j < params.k; ++j) {
        mu_a.push_back(result.mu.at(batch.alpha[j]));
        mu_b.push_back(result.mu.at(batch.beta[j]));
      }
      mu_a_shares[bi] = packed_share_public(ring, mu_a, n).shares;
      mu_b_shares[bi] = packed_share_public(ring, mu_b, n).shares;
    }

    // Each active role publishes P_int + RootProof per batch.
    struct RoleMsg {
      std::vector<mpz_class> p_int;    // per batch
      std::vector<RootProof> proofs;
    };
    std::vector<std::optional<RoleMsg>> msgs(n);
    for (unsigned i = 0; i < n; ++i) {
      if (!com.corruption.is_active(i)) continue;
      com.speak(i);
      const bool bad = com.corruption.is_malicious(i);
      const auto strat = com.corruption.strategy;
      RoleMsg rm;
      std::size_t bytes = 0;
      for (std::size_t bi = 0; bi < layer_batches.size(); ++bi) {
        const BatchShares& bs = offline.batch_shares[layer_batches[bi]];
        const PaillierSK& kff = kffs[i];
        mpz_class p_a = kff.dec(bs.alpha[i].pad_ct);
        mpz_class p_b = kff.dec(bs.beta[i].pad_ct);
        mpz_class p_g = kff.dec(bs.gamma[i].pad_ct);
        const mpz_class& mu_ai = mu_a_shares[bi][i];
        const mpz_class& mu_bi = mu_b_shares[bi][i];
        mpz_class p_int = mu_ai * p_b + mu_bi * p_a + p_g;
        if (bad && strat == MaliciousStrategy::BadShare) p_int += 1;
        // c_combined = B_beta^{mu_ai} * B_alpha^{mu_bi} * B_gamma under KFF.
        mpz_class c_comb = kff.pk.add(
            kff.pk.add(kff.pk.scal(bs.beta[i].pad_ct, mu_ai), kff.pk.scal(bs.alpha[i].pad_ct, mu_bi)),
            bs.gamma[i].pad_ct);
        mpz_class enc_pint = kff.pk.enc(p_int, mpz_class(1));
        mpz_class u = c_comb * mod_inverse(enc_pint, kff.pk.ns1) % kff.pk.ns1;
        RootProof proof;
        if (bad && strat == MaliciousStrategy::BadShare) {
          // No root exists for the shifted P_int; fake an attempt.
          proof = prove_root(kff.pk, u, SecretMpz(rng.unit_mod(kff.pk.n)), rng);
        } else {
          SecretMpz rho = kff.extract_root(u);
          proof = prove_root(kff.pk, u, rho, rng);
          if (bad && strat == MaliciousStrategy::BadProof) proof.z += 1;
        }
        bytes += mpz_wire_size(p_int) + proof.wire_bytes();
        rm.p_int.push_back(std::move(p_int));
        rm.proofs.push_back(std::move(proof));
      }
      std::vector<std::uint8_t> payload;
      if (bulletin.wants_payload()) {
        payload = encode_mult_share_msg(MultShareMsg{rm.p_int, rm.proofs});
      }
      PostStatus st = bulletin.publish(com, i, Phase::Online, "online.mult", bytes,
                                       layer_batches.size(), /*first_post_of_role=*/false,
                                       payload.empty() ? nullptr : &payload);
      if (st == PostStatus::Accepted) msgs[i] = std::move(rm);
    }

    unsigned present = 0;
    for (unsigned i = 0; i < n; ++i) present += msgs[i] ? 1 : 0;

    // Everyone verifies and reconstructs mu^gamma per batch.
    const mpz_class pint_bound = mpz_class(1) << params.pint_bound_bits();
    for (std::size_t bi = 0; bi < layer_batches.size(); ++bi) {
      const MulBatch& batch = offline.batches[layer_batches[bi]];
      const BatchShares& bs = offline.batch_shares[layer_batches[bi]];
      std::vector<std::int64_t> pts;
      std::vector<mpz_class> shares;
      for (unsigned i = 0; i < n && pts.size() < params.recon_threshold(); ++i) {
        if (!msgs[i]) continue;
        const auto& rm = *msgs[i];
        const mpz_class& p_int = rm.p_int[bi];
        if (p_int < 0 || p_int >= pint_bound) continue;
        const PaillierPK& kpk = setup.kff_mult[layer - 1][i].sk.pk;
        const mpz_class& mu_ai = mu_a_shares[bi][i];
        const mpz_class& mu_bi = mu_b_shares[bi][i];
        mpz_class c_comb = kpk.add(
            kpk.add(kpk.scal(bs.beta[i].pad_ct, mu_ai), kpk.scal(bs.alpha[i].pad_ct, mu_bi)),
            bs.gamma[i].pad_ct);
        mpz_class enc_pint = kpk.enc(p_int, mpz_class(1));
        mpz_class enc_inv;
        try {
          enc_inv = mod_inverse(enc_pint, kpk.ns1);
        } catch (const std::domain_error&) {
          continue;
        }
        mpz_class u = c_comb * enc_inv % kpk.ns1;
        if (!verify_root(kpk, u, rm.proofs[bi])) continue;
        pts.push_back(static_cast<std::int64_t>(i) + 1);
        shares.push_back(derive_mu_share(ring, mu_ai, mu_bi, bs.alpha[i].masked,
                                         bs.beta[i].masked, bs.gamma[i].masked, p_int));
      }
      if (pts.size() < params.recon_threshold()) {
        const unsigned verified = static_cast<unsigned>(pts.size());
        throw ProtocolAbort(FailureReport{FailureKind::Threshold, Phase::Online, com.name,
                                          "online.mult", params.recon_threshold(), verified,
                                          present - verified, n - present});
      }
      for (unsigned j = 0; j < batch.real; ++j) {
        mpz_class mu_g = lagrange_at(ring, pts, shares, secret_point(j));
        WireId w = batch.gamma[j];
        auto [it, inserted] = result.mu.emplace(w, mu_g);
        if (!inserted && it->second != mu_g) {
          FailureReport fr{FailureKind::Consistency, Phase::Online, com.name, "online.mult",
                           params.recon_threshold(), static_cast<unsigned>(pts.size()), 0, 0};
          throw ProtocolAbort(std::move(fr));
        }
      }
    }
    sweep_local();
  }

  // ----- Step 5: outputs ----------------------------------------------------
  obs::Span out_span("online.output", "online");
  out_span.attr("outputs", circuit.outputs().size());
  std::vector<mpz_class> out_masked;
  for (std::size_t r = 0; r < out_cts.size(); ++r) {
    out_masked.push_back(pk.add(out_cts[r], mask_sums[fkd_cts.size() + r].a_sum));
  }
  std::vector<mpz_class> out_opened = chain.run_decrypt_committee(
      *committees.out_holder, out_masked, Phase::Online, "online.output", nullptr);
  for (std::size_t r = 0; r < circuit.outputs().size(); ++r) {
    const auto& spec = circuit.outputs()[r];
    FutureCt fct{out_opened[r], mask_sums[fkd_cts.size() + r].b_sum};
    mpz_class lambda = open_future(setup.client_keys[spec.client], fct, ns);
    result.outputs.push_back(ring.add(result.mu.at(spec.wire), lambda));
  }
  return result;
}

}  // namespace yoso
