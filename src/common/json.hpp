// The repository's single JSON surface.
//
// Every machine-readable report in the tree (Ledger, Bulletin, NetBulletin,
// FailureReport, the chaos RunReport/CampaignSummary/FaultSchedule, the obs
// tracer and metrics registry) emits through json::Writer, and every consumer
// that needs to read JSON back (FaultSchedule reproducers, tools/trace, the
// schema tests) goes through json::parse.  Hand-rolled "{\"key\":..." string
// building is banned outside this header by the tools/lint `raw-json` rule:
// the three emitters that predated this file had already diverged on string
// escaping (none escaped at all), which is exactly the class of bug a single
// funnel removes.
//
// Writer guarantees:
//   * commas and colons are managed by the writer, never by the caller;
//   * strings are escaped per RFC 8259 (quote, backslash, control chars);
//   * doubles print shortest-round-trip via std::to_chars, so output is
//     deterministic and locale-independent (required for bit-for-bit
//     reproducible traces);
//   * nesting is validated: mismatched begin/end throw std::logic_error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace yoso::json {

class Writer {
public:
  Writer();

  // Containers.  key() is mandatory between values inside an object.
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  Writer& key(std::string_view k);

  // Scalars.
  Writer& str(std::string_view v);
  Writer& num(std::int64_t v);
  Writer& num(std::uint64_t v);
  Writer& num(std::uint32_t v) { return num(static_cast<std::uint64_t>(v)); }
  Writer& num(std::int32_t v) { return num(static_cast<std::int64_t>(v)); }
  Writer& num(double v);
  Writer& boolean(bool v);
  Writer& null();
  // Splices an already-serialized JSON value (a nested report).
  Writer& raw(std::string_view json_value);

  // Convenience for the ubiquitous `"k": v` pairs.
  Writer& field(std::string_view k, std::string_view v) { return key(k).str(v); }
  Writer& field(std::string_view k, const char* v) { return key(k).str(v); }
  Writer& field(std::string_view k, std::int64_t v) { return key(k).num(v); }
  Writer& field(std::string_view k, std::uint64_t v) { return key(k).num(v); }
  Writer& field(std::string_view k, std::uint32_t v) { return key(k).num(v); }
  Writer& field(std::string_view k, std::int32_t v) { return key(k).num(v); }
  Writer& field(std::string_view k, double v) { return key(k).num(v); }
  Writer& field(std::string_view k, bool v) { return key(k).boolean(v); }

  // Finishes and returns the document; throws if containers are still open.
  std::string take();

  static std::string escape(std::string_view raw);

private:
  enum class Frame : std::uint8_t { Object, Array };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_value_;  // per frame: a value was already written
  bool key_pending_ = false;
  bool done_ = false;
};

// Parsed JSON value.  Numbers keep both the double value and the raw source
// text so integer consumers do not round-trip through floating point.
struct Value {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string text;  // String: the value; Number: the raw token
  std::vector<Value> items;                          // Array
  std::vector<std::pair<std::string, Value>> members;  // Object, source order

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  // Object member lookup (first match); nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  // find() + kind check helpers with defaults.
  double num_or(std::string_view key, double fallback) const;
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  std::string str_or(std::string_view key, std::string fallback) const;
};

// Parses one JSON document (object/array/scalar + trailing whitespace).
// Throws std::invalid_argument with a byte offset on malformed input.
Value parse(std::string_view text);

// Re-emits a parsed Value through a Writer (numbers keep their raw source
// token, so integers stay exact across a parse/write round trip).
void write(Writer& w, const Value& v);

}  // namespace yoso::json
