// Annotated synchronization primitives for the shared-state classes the
// multi-core engine (ROADMAP item 3) will contend on.
//
// `Mutex` is std::mutex carrying the CAPABILITY attribute so Clang's
// thread-safety analysis can track it; `MutexLock` is the RAII guard.  The
// simulation is still single-threaded today, so the runtime cost of the
// uncontended locks taken here is one atomic op per critical section — the
// point is that -Wthread-safety proves, before any thread pool exists,
// exactly which state is lock-protected and which methods require the lock
// to be held (the `_locked` / REQUIRES(mu_) split in Ledger and friends).
#pragma once

#include <mutex>

#include "common/annotations.hpp"

namespace yoso {

class CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
  std::mutex mu_;
};

// RAII guard; SCOPED_CAPABILITY tells the analysis the capability is held
// for exactly the guard's scope.
class SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

private:
  Mutex* mu_;
};

}  // namespace yoso
