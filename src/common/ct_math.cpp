#include "common/ct_math.hpp"

#include <stdexcept>

#include "obs/profile.hpp"

namespace yoso {

namespace {

// mpz_powm_sec demands exp > 0 and mod odd; route the public edge cases
// (sign, zero) here so callers never touch the raw primitive.
mpz_class powm_sec_raw(const mpz_class& base, const mpz_class& exp, const mpz_class& mod) {
  if (mpz_odd_p(mod.get_mpz_t()) == 0) {
    throw std::invalid_argument("powm_sec: modulus must be odd");
  }
  if (exp == 0) return mpz_class(1) % mod;
  mpz_class r;
  if (exp < 0) {
    mpz_class base_inv = mod_inverse(base, mod);
    mpz_class mag = -exp;
    mpz_powm_sec(r.get_mpz_t(), base_inv.get_mpz_t(), mag.get_mpz_t(), mod.get_mpz_t());
  } else {
    mpz_powm_sec(r.get_mpz_t(), base.get_mpz_t(), exp.get_mpz_t(), mod.get_mpz_t());
  }
  return r;
}

}  // namespace

mpz_class powm_sec(const mpz_class& base, const SecretMpz& exp, const mpz_class& mod) {
  OBS_OP(CtPowmSec);
  return powm_sec_raw(base, exp.declassify(), mod);
}

SecretMpz powm_sec(const SecretMpz& base, const mpz_class& exp, const mpz_class& mod) {
  OBS_OP(CtPowmSec);
  if (exp < 0) throw std::invalid_argument("powm_sec: secret-base exponent must be >= 0");
  return SecretMpz(powm_sec_raw(base.declassify(), exp, mod));
}

mpz_class powm_pub(const mpz_class& base, const mpz_class& exp, const mpz_class& mod) {
  OBS_OP(CtPowmPub);
  mpz_class r;
  mpz_powm(r.get_mpz_t(), base.get_mpz_t(), exp.get_mpz_t(), mod.get_mpz_t());
  return r;
}

mpz_class mod_inverse(const mpz_class& a, const mpz_class& m) {
  OBS_OP(CtModInverse);
  mpz_class r;
  if (mpz_invert(r.get_mpz_t(), a.get_mpz_t(), m.get_mpz_t()) == 0) {
    throw std::domain_error("mod_inverse: operand not invertible");
  }
  return r;
}

}  // namespace yoso
