// Per-task PRG stream derivation — the blessed seam for task-local
// randomness (ROADMAP item 3).
//
// A shared sequential PRG is the enemy of parallelism: the value a task
// draws depends on how many draws every earlier task made, so any change in
// scheduling order changes every downstream byte.  The multi-core engine
// instead keys each task's randomness by (seed, role, activation index):
//
//   std::uint64_t s = prg::subseed({run_seed, "offline.triple", gate});
//   Rng rng(s);                       // or: Prg stream = prg::derive_prg(key)
//
// Two properties make this the determinism contract the thread-pool PR must
// keep (tests/prg_stream_test.cpp):
//
//   * independence — distinct (seed, role, activation) keys give
//     independent streams; no draw count leaks between tasks, so tasks can
//     execute in any order (or concurrently) with identical results;
//   * sequential equivalence — SequentialStreams hands out the same
//     sub-seeds a direct keyed derivation would produce when activations
//     are consumed in order, so a single-threaded run and an N-threaded
//     run that partition the same activation space are bit-identical.
//
// The tools/lint `prg-discipline` rule flags ad-hoc construction of the
// sequential generators (Rng / Prg / gmp_randclass) outside this seam;
// pre-existing derivations are whitelisted (changing them would shift every
// seeded transcript and the perf baselines) but new code must come here.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "crypto/prg.hpp"

namespace yoso::prg {

// One task-local stream identity.  `role` names the seam (dotted lowercase,
// e.g. "offline.triple", "chaos.schedule"); `activation` is the task's
// index within that role (gate number, schedule number, party index, ...).
struct StreamKey {
  std::uint64_t seed = 0;
  std::string role;
  std::uint64_t activation = 0;
};

// 64-bit sub-seed: the first 8 bytes (little-endian) of
// SHA-256("yoso.prg.stream" || seed || role || activation).  Collisions
// across distinct keys are cryptographically negligible, unlike the xor/mix
// folklore derivations this replaces.
std::uint64_t subseed(const StreamKey& key);
std::uint64_t subseed(std::uint64_t seed, std::string_view role, std::uint64_t activation);

// A full independent byte stream for tasks that draw heavily (Prg is the
// SHA-256 counter-mode generator; copyable, unlike Rng).
Prg derive_prg(const StreamKey& key);

// Sequential facade over the keyed derivation: next_subseed(role) consumes
// activation indices 0, 1, 2, ... per role.  A single-threaded caller that
// pulls streams in activation order gets exactly the sub-seeds a parallel
// scheduler would hand its tasks by direct keyed derivation — that equality
// is asserted in tests/prg_stream_test.cpp.
class SequentialStreams {
public:
  explicit SequentialStreams(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t next_subseed(const std::string& role);
  Prg next_prg(const std::string& role);

  // Activations consumed so far for `role` (the next index handed out).
  std::uint64_t activations(const std::string& role) const;

private:
  std::uint64_t seed_ = 0;
  std::map<std::string, std::uint64_t> next_;
};

}  // namespace yoso::prg
