// Clang Thread Safety Analysis annotation shim.
//
// The deterministic multi-core engine (ROADMAP item 3) will contend on a
// handful of shared-state classes (Ledger, the obs registries, Bulletin, the
// service queues/pool).  Before any thread pool lands, those classes carry
// capability annotations so `clang -Wthread-safety` can prove every access
// to guarded state happens under the right lock — at compile time, on every
// CI run (the `thread-safety` job builds with -Werror=thread-safety).
//
// The macros expand to Clang's `__attribute__((...))` thread-safety
// attributes under Clang and to nothing elsewhere, so GCC builds are
// unaffected.  Usage follows the canonical pattern:
//
//   class CAPABILITY("mutex") Mutex { ... };       // common/sync.hpp
//   Mutex mu_;
//   int shared_ GUARDED_BY(mu_);
//   void touch() { MutexLock lock(&mu_); shared_++; }
//   void touch_locked() REQUIRES(mu_);             // caller must hold mu_
//
// See docs/STATIC_ANALYSIS.md ("Concurrency readiness") for the policy.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define YOSO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define YOSO_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) YOSO_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY YOSO_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) YOSO_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) YOSO_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) YOSO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) YOSO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) YOSO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) YOSO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) YOSO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) YOSO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) YOSO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) YOSO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) YOSO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) YOSO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) YOSO_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) YOSO_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS YOSO_THREAD_ANNOTATION(no_thread_safety_analysis)
