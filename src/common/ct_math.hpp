// Modular arithmetic entry points, split by secrecy of the operands.
//
// This is the only translation unit in the tree allowed to call the raw GMP
// powm/invert primitives (tools/lint rule `no-raw-powm` / `no-raw-invert`);
// everything under src/ picks one of the named wrappers below, so the
// secrecy of every exponent is an explicit, greppable decision:
//
//   powm_sec(base, Secret exp, mod)   side-channel resistant ladder
//   powm_sec(Secret base, exp, mod)   secret base, public small exponent
//   powm_pub(base, exp, mod)          public data, fast left-to-right window
//   mod_inverse(a, m)                 variable-time; public or dealer-offline
//                                     operands only
//
// GMP's mpz_powm_sec requires exp > 0 and an odd modulus.  All protocol
// moduli are odd (powers of an RSA modulus), and the wrappers normalize
// negative and zero exponents themselves: the *sign* and zero-ness of a
// share is treated as public (share bounds are published per epoch), its
// value is not.
#pragma once

#include <gmpxx.h>

#include "common/secret.hpp"

namespace yoso {

using SecretMpz = Secret<mpz_class>;

// base^exp mod `mod` for a secret exponent.  `mod` must be odd.  Negative
// exponents invert the (public) base first; a zero exponent returns 1.
mpz_class powm_sec(const mpz_class& base, const SecretMpz& exp, const mpz_class& mod);

// base^exp mod `mod` for a secret base and a public positive exponent
// (sigma-protocol responses r^e).  `mod` must be odd.  The result stays
// tainted; callers declassify when they publish the masked response.
SecretMpz powm_sec(const SecretMpz& base, const mpz_class& exp, const mpz_class& mod);

// base^exp mod `mod` where every operand is public (NIZK verification,
// Feldman commitment recombination).  Kept on GMP's fast path on purpose.
mpz_class powm_pub(const mpz_class& base, const mpz_class& exp, const mpz_class& mod);

// a^{-1} mod m, variable time.  Only for public operands or dealer-side key
// generation (which runs offline, before any adversary can time it).
// Throws std::domain_error if a is not invertible.
mpz_class mod_inverse(const mpz_class& a, const mpz_class& m);

// Constant-time select on 64-bit words: mask must be 0 or ~0ull.
inline std::uint64_t ct_select_u64(std::uint64_t mask, std::uint64_t a, std::uint64_t b) {
  return (mask & a) | (~mask & b);
}

// Expands a boolean into a full select mask without branching.
inline std::uint64_t ct_mask_u64(bool cond) {
  return static_cast<std::uint64_t>(0) - static_cast<std::uint64_t>(cond);
}

}  // namespace yoso
