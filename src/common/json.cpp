#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace yoso::json {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

Writer::Writer() { out_.reserve(256); }

std::string Writer::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Writer::before_value() {
  if (done_) throw std::logic_error("json::Writer: document already finished");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Frame::Object && !key_pending_) {
    throw std::logic_error("json::Writer: value in object without key()");
  }
  if (stack_.back() == Frame::Array && has_value_.back()) out_ += ',';
  key_pending_ = false;
  has_value_.back() = true;
}

Writer& Writer::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::Object) {
    throw std::logic_error("json::Writer: key() outside an object");
  }
  if (key_pending_) throw std::logic_error("json::Writer: key() twice in a row");
  if (has_value_.back()) out_ += ',';
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

Writer& Writer::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::Object);
  has_value_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || key_pending_) {
    throw std::logic_error("json::Writer: unbalanced end_object()");
  }
  out_ += '}';
  stack_.pop_back();
  has_value_.pop_back();
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::Array);
  has_value_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw std::logic_error("json::Writer: unbalanced end_array()");
  }
  out_ += ']';
  stack_.pop_back();
  has_value_.pop_back();
  return *this;
}

Writer& Writer::str(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

Writer& Writer::num(std::int64_t v) {
  before_value();
  char buf[24];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, r.ptr);
  return *this;
}

Writer& Writer::num(std::uint64_t v) {
  before_value();
  char buf[24];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, r.ptr);
  return *this;
}

Writer& Writer::num(double v) {
  before_value();
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  char buf[32];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);  // shortest round-trip
  out_.append(buf, r.ptr);
  return *this;
}

Writer& Writer::boolean(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  return *this;
}

Writer& Writer::raw(std::string_view json_value) {
  before_value();
  out_ += json_value;
  return *this;
}

std::string Writer::take() {
  if (!stack_.empty()) throw std::logic_error("json::Writer: unclosed container");
  done_ = true;
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.text = string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::Bool;
        if (literal("true")) v.boolean = true;
        else if (literal("false")) v.boolean = false;
        else fail("bad literal");
        return v;
      }
      case 'n': {
        if (!literal("null")) fail("bad literal");
        return Value{};
      }
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string k = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(k), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Escaped ASCII round-trips exactly; wider code points encode UTF-8.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        digits = digits || (c >= '0' && c <= '9');
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) fail("expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    v.text = std::string(text_.substr(start, pos_ - start));
    auto r = std::from_chars(v.text.data(), v.text.data() + v.text.size(), v.number);
    if (r.ec != std::errc()) fail("bad number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view k) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [key, val] : members) {
    if (key == k) return &val;
  }
  return nullptr;
}

double Value::num_or(std::string_view k, double fallback) const {
  const Value* v = find(k);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::uint64_t Value::u64_or(std::string_view k, std::uint64_t fallback) const {
  const Value* v = find(k);
  if (v == nullptr || !v->is_number()) return fallback;
  std::uint64_t out = 0;
  auto r = std::from_chars(v->text.data(), v->text.data() + v->text.size(), out);
  if (r.ec != std::errc() || r.ptr != v->text.data() + v->text.size()) {
    return static_cast<std::uint64_t>(v->number);  // float-formed (1e3) or signed
  }
  return out;
}

std::string Value::str_or(std::string_view k, std::string fallback) const {
  const Value* v = find(k);
  return (v != nullptr && v->is_string()) ? v->text : std::move(fallback);
}

Value parse(std::string_view text) { return Parser(text).document(); }

void write(Writer& w, const Value& v) {
  switch (v.kind) {
    case Value::Kind::Null: w.null(); break;
    case Value::Kind::Bool: w.boolean(v.boolean); break;
    case Value::Kind::Number: w.raw(v.text); break;  // raw token: integers stay exact
    case Value::Kind::String: w.str(v.text); break;
    case Value::Kind::Array:
      w.begin_array();
      for (const auto& item : v.items) write(w, item);
      w.end_array();
      break;
    case Value::Kind::Object:
      w.begin_object();
      for (const auto& [key, val] : v.members) {
        w.key(key);
        write(w, val);
      }
      w.end_object();
      break;
  }
}

}  // namespace yoso::json
