#include "common/prg_stream.hpp"

#include "crypto/sha256.hpp"

namespace yoso::prg {

namespace {

constexpr char kDomain[] = "yoso.prg.stream";

void append_u64_le(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// SHA-256(domain || seed || len(role) || role || activation): the role
// length is hashed so ("ab", 1) and ("a", ...) style boundary ambiguities
// cannot alias two distinct keys.
Sha256::Digest key_digest(const StreamKey& key) {
  std::vector<std::uint8_t> buf;
  buf.reserve(sizeof(kDomain) + key.role.size() + 24);
  buf.insert(buf.end(), kDomain, kDomain + sizeof(kDomain) - 1);
  append_u64_le(&buf, key.seed);
  append_u64_le(&buf, key.role.size());
  buf.insert(buf.end(), key.role.begin(), key.role.end());
  append_u64_le(&buf, key.activation);
  return Sha256::hash(buf.data(), buf.size());
}

}  // namespace

std::uint64_t subseed(const StreamKey& key) {
  const Sha256::Digest d = key_digest(key);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  return v;
}

std::uint64_t subseed(std::uint64_t seed, std::string_view role, std::uint64_t activation) {
  return subseed(StreamKey{seed, std::string(role), activation});
}

Prg derive_prg(const StreamKey& key) {
  const Sha256::Digest d = key_digest(key);
  return Prg(std::vector<std::uint8_t>(d.begin(), d.end()));
}

std::uint64_t SequentialStreams::next_subseed(const std::string& role) {
  const std::uint64_t activation = next_[role]++;
  return subseed(StreamKey{seed_, role, activation});
}

Prg SequentialStreams::next_prg(const std::string& role) {
  const std::uint64_t activation = next_[role]++;
  return derive_prg(StreamKey{seed_, role, activation});
}

std::uint64_t SequentialStreams::activations(const std::string& role) const {
  auto it = next_.find(role);
  return it == next_.end() ? 0 : it->second;
}

}  // namespace yoso::prg
