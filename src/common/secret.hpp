// Taint type for secret values (key shares, exponents, witnesses, pads).
//
// A Secret<T> deliberately has almost no API: arithmetic propagates the
// taint, comparisons and streaming are deleted, and the only way back to a
// plain T is an explicit, greppable declassify().  The type system thereby
// flushes out every site where secret data meets a variable-time or
// observable operation:
//
//   * modular exponentiation with a secret exponent must go through
//     powm_sec() (common/ct_math.hpp), which uses GMP's side-channel
//     resistant ladder;
//   * equality on secret-derived bytes must go through ct_equal()
//     (crypto/ct.hpp);
//   * printing/logging a secret does not compile.
//
// declassify() marks the sanctioned exits: publishing a masked sigma-protocol
// response, handing a plaintext to Enc(), emitting a share to its owner.
// tools/lint enforces that declassify() only appears in whitelisted files,
// so the set of exits stays a reviewed list.
//
// Scope note: big-integer add/mul/mod are not constant-time in the operand
// *sizes*; Secret<T> tracks data flow and forbids the classically exploitable
// operations (exponentiation, branching comparisons, I/O).  See
// docs/STATIC_ANALYSIS.md for the full threat model.
#pragma once

#include <type_traits>
#include <utility>

namespace yoso {

template <typename T>
class Secret {
public:
  using value_type = T;

  Secret() = default;
  explicit Secret(T v) : v_(std::move(v)) {}

  // The single sanctioned exit from the taint.  Call sites are whitelisted
  // per-file in tools/lint/whitelist.txt.
  const T& declassify() const { return v_; }

  // Taint-propagating arithmetic (secret op secret and secret op public).
  friend Secret operator+(const Secret& a, const Secret& b) { return Secret(a.v_ + b.v_); }
  friend Secret operator+(const Secret& a, const T& b) { return Secret(a.v_ + b); }
  friend Secret operator-(const Secret& a, const Secret& b) { return Secret(a.v_ - b.v_); }
  friend Secret operator-(const Secret& a, const T& b) { return Secret(a.v_ - b); }
  friend Secret operator*(const Secret& a, const Secret& b) { return Secret(a.v_ * b.v_); }
  friend Secret operator*(const Secret& a, const T& b) { return Secret(a.v_ * b); }
  friend Secret operator*(const T& a, const Secret& b) { return Secret(a * b.v_); }
  friend Secret operator%(const Secret& a, const T& m) { return Secret(a.v_ % m); }
  Secret& operator+=(const Secret& o) {
    v_ += o.v_;
    return *this;
  }
  Secret& operator*=(const Secret& o) {
    v_ *= o.v_;
    return *this;
  }

  // Secrets never branch: no comparisons, no ordering.
  friend bool operator==(const Secret&, const Secret&) = delete;
  friend bool operator!=(const Secret&, const Secret&) = delete;
  friend bool operator<(const Secret&, const Secret&) = delete;

private:
  T v_;
};

// Secrets never stream.  Any `os << secret` picks this deleted overload.
template <typename Stream, typename T>
Stream& operator<<(Stream&, const Secret<T>&) = delete;

template <typename T>
struct is_secret : std::false_type {};
template <typename T>
struct is_secret<Secret<T>> : std::true_type {};
template <typename T>
inline constexpr bool is_secret_v = is_secret<T>::value;

}  // namespace yoso
