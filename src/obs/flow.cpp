#include "obs/flow.hpp"

#include "common/json.hpp"

namespace yoso::obs {

#ifndef OBS_DISABLED

void FlowMatrix::record(std::string src, std::string category, std::uint8_t phase,
                        std::uint64_t bytes, std::uint64_t elements) {
  pending_.push_back(Pending{std::move(src), std::move(category), phase, bytes, elements});
}

void FlowMatrix::resolve(const std::string& dst) {
  for (Pending& p : pending_) {
    FlowCell& cell = edges_[FlowKey{std::move(p.src), dst, std::move(p.category), p.phase}];
    cell.messages += 1;
    cell.bytes += p.bytes;
    cell.elements += p.elements;
  }
  pending_.clear();
}

void FlowMatrix::finalize(const std::string& fallback) { resolve(fallback); }

void FlowMatrix::reset() {
  pending_.clear();
  edges_.clear();
}

#endif  // OBS_DISABLED

FlowCell FlowMatrix::phase_total(std::uint8_t phase) const {
  FlowCell total;
  for (const auto& [key, cell] : edges()) {
    if (key.phase != phase) continue;
    total.messages += cell.messages;
    total.bytes += cell.bytes;
    total.elements += cell.elements;
  }
  return total;
}

void FlowMatrix::write_json(json::Writer& w) const {
  w.begin_array();
  for (const auto& [key, cell] : edges()) {
    w.begin_object();
    w.field("src", key.src);
    w.field("dst", key.dst);
    w.field("category", key.category);
    w.field("phase", static_cast<std::uint64_t>(key.phase));
    w.field("messages", cell.messages);
    w.field("bytes", cell.bytes);
    w.field("elements", cell.elements);
    w.end_object();
  }
  w.end_array();
}

}  // namespace yoso::obs
