// Scaling-law auditor: turns the paper's asymptotic claims into measured,
// machine-checked exponents.
//
// The paper's headline numbers are slopes, not byte counts: online cost is
// O(1) per multiplication gate, offline is O(n), the CDN baseline's online
// cost is O(n).  fit_power_law() runs an ordinary least-squares fit on
// (log n, log y) and returns the fitted exponent with a 95% confidence
// band (Student-t on the slope's standard error), so an n-sweep of per-gate
// totals becomes a verdict: check_exponent() compares the fitted slope
// against a declared band and passes or fails.
//
// derive_packed_speedup() re-derives the paper's headline ratio (28x at
// C = 1000, f = 0.05) from *measured* data: the measured per-mu-share
// element coefficient e0 and the measured CDN per-member slope, projected
// to the committee sizes the sortition analysis (Section 6) prescribes.
//
// This header is pure analysis — no protocol state, no recording — so it
// is NOT gated by OBS_DISABLED: tools/perf must audit no-obs builds too.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace yoso::obs {

struct PowerFit {
  bool ok = false;        // >= 3 usable points and positive x/y throughout
  std::size_t points = 0;
  double slope = 0;       // fitted exponent b in y ~ a * x^b
  double intercept = 0;   // log(a)
  double r2 = 0;
  double se_slope = 0;    // standard error of the slope
  double ci_lo = 0;       // 95% confidence band on the exponent
  double ci_hi = 0;
};

// OLS on (log x, log y).  Points with x <= 0 or y <= 0 are rejected (the
// fit reports ok = false rather than silently dropping them).
PowerFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y);

struct LinearFit {
  bool ok = false;       // >= 3 points with nonzero x variance
  std::size_t points = 0;
  double slope = 0;      // b in y ~ a + b x
  double intercept = 0;  // a
  double r2 = 0;
  double se_slope = 0;
  double ci_lo = 0;      // 95% confidence band on the slope
  double ci_hi = 0;
};

// Plain (untransformed) OLS y ~ a + b x.  Used by the per-phase compute
// cost model: x = Σ count_p · µs_p predicted from per-op self-times,
// y = measured phase wall-clock; slope ≈ 1 with small residual means the
// primitive terms explain the phase (tools/perf audit, docs/PROFILING.md).
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

// Two-sided 97.5% Student-t critical value for `df` degrees of freedom
// (exact table for df <= 10, 1.96 asymptote above).
double t_critical_975(std::size_t df);

struct ExponentBand {
  double lo = 0;
  double hi = 0;
};

struct ExponentCheck {
  std::string name;
  PowerFit fit;
  ExponentBand band;
  bool pass = false;  // fit ok and band.lo <= slope <= band.hi
};

ExponentCheck check_exponent(std::string name, const std::vector<double>& x,
                             const std::vector<double>& y, ExponentBand band);

struct SpeedupDerivation {
  bool feasible = false;
  double C = 0, f = 0;          // sortition regime
  double c = 0, c_prime = 0;    // committee sizes with / without the gap
  unsigned k = 0;               // packing factor at (C, f) — the paper's 28
  double e0 = 0;                // measured: ours online-mult elements per mu-share
  double cdn_per_member = 0;    // measured: CDN online-mult elements per gate per member
  double baseline_per_gate = 0; // cdn_per_member * c'
  double ours_per_gate = 0;     // e0 * c / k
  double speedup = 0;           // baseline_per_gate / ours_per_gate (~2k)
};

// `ours_mult_per_gate` / `cdn_mult_per_gate` are measured per-gate online
// multiplication costs (elements) at committee size n with packing k.
SpeedupDerivation derive_packed_speedup(double C, double f, double ours_mult_per_gate,
                                        double cdn_mult_per_gate, unsigned n, unsigned k);

}  // namespace yoso::obs
