// Metrics registry: counters, gauges and log-scale histograms.
//
// Naming convention is dotted lowercase (`paillier.enc`, `post.accepted`,
// `bytes.posted.online`); docs/OBSERVABILITY.md tabulates every name the
// stack emits.  Handles returned by counter()/gauge()/histogram() are stable
// for the lifetime of the registry (node-based map), so call sites cache
// them in a function-local static — that is what the OBS_COUNT family of
// macros below does — and recording is one branch plus one add.
//
// Histograms are log2-bucketed: bucket 0 holds the value 0, bucket b >= 1
// holds values in [2^(b-1), 2^b).  64-bit values therefore need 65 buckets.
//
// Like the tracer, the registry is muted by obs::set_enabled(false) and
// compiled out entirely by OBS_DISABLED.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/sync.hpp"
#include "obs/runtime.hpp"

namespace yoso::obs {

#ifndef OBS_DISABLED

class Counter {
public:
  void add(std::uint64_t delta = 1) {
    if (enabled()) value_ += delta;
  }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

private:
  std::uint64_t value_ = 0;
};

class Gauge {
public:
  void set(std::int64_t v) {
    if (enabled()) value_ = v;
  }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

private:
  std::int64_t value_ = 0;
};

class Histogram {
public:
  static constexpr int kBuckets = 65;  // bucket 0: {0}; bucket b: [2^(b-1), 2^b)

  void observe(std::uint64_t v);
  static int bucket_of(std::uint64_t v);
  // Inclusive upper bound of a bucket (0 for bucket 0, 2^b - 1 otherwise).
  static std::uint64_t bucket_max(int bucket);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket(int b) const { return buckets_[b]; }
  void reset();

private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// The registry *maps* are lock-protected (handle lookup may happen from any
// worker once the multi-core engine lands); the instrument cells themselves
// are not — the determinism plan keeps recording task-local, with a
// deterministic merge on join, so cross-thread increments on one cell are a
// design error, not a locking gap (docs/STATIC_ANALYSIS.md).
class Metrics {
public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Zeroes every registered instrument (handles stay valid).
  void reset();

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,
  // buckets:[[upper,count],...]}}} — names in lexicographic order.
  std::string report_json() const;

private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

Metrics& metrics();

#define OBS_COUNT(name)                                      \
  do {                                                       \
    static ::yoso::obs::Counter& obs_c_ =                    \
        ::yoso::obs::metrics().counter(name);                \
    obs_c_.add();                                            \
  } while (0)

#define OBS_COUNT_N(name, delta)                             \
  do {                                                       \
    static ::yoso::obs::Counter& obs_c_ =                    \
        ::yoso::obs::metrics().counter(name);                \
    obs_c_.add(static_cast<std::uint64_t>(delta));           \
  } while (0)

#define OBS_HIST(name, value)                                \
  do {                                                       \
    static ::yoso::obs::Histogram& obs_h_ =                  \
        ::yoso::obs::metrics().histogram(name);              \
    obs_h_.observe(static_cast<std::uint64_t>(value));       \
  } while (0)

#define OBS_GAUGE_SET(name, value)                           \
  do {                                                       \
    static ::yoso::obs::Gauge& obs_g_ =                      \
        ::yoso::obs::metrics().gauge(name);                  \
    obs_g_.set(static_cast<std::int64_t>(value));            \
  } while (0)

#else  // OBS_DISABLED

#define OBS_COUNT(name) \
  do {                  \
  } while (0)
#define OBS_COUNT_N(name, delta)   \
  do {                             \
    (void)sizeof((delta));         \
  } while (0)
#define OBS_HIST(name, value)      \
  do {                             \
    (void)sizeof((value));         \
  } while (0)
#define OBS_GAUGE_SET(name, value) \
  do {                             \
    (void)sizeof((value));         \
  } while (0)

#endif

}  // namespace yoso::obs
