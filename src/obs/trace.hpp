// Span tracer: RAII scoped spans over the whole protocol stack.
//
// Spans nest (parent = innermost open span), carry key/value attributes
// (committee id, gate label, phase, party role), and record *dual*
// timestamps:
//   * virtual seconds from the discrete-event clock, whenever a
//     net::NetBulletin is attached (attach_virtual_clock) — deterministic,
//     so two identical runs export bit-for-bit identical traces;
//   * monotonic wall-clock nanoseconds, always — for profiling real CPU
//     cost (excluded from the export by default to keep it deterministic).
//
// The export is Chrome trace-event JSON ("X" complete events), which loads
// directly in Perfetto / chrome://tracing; tools/trace wraps it in a CLI
// (run / check / summarize / diff).
//
// Cost model: recording is sampling-free; the span buffer is preallocated
// and grows geometrically; a muted tracer (obs::set_enabled(false)) costs
// one branch per event; OBS_DISABLED compiles call sites out entirely.
// The buffers are lock-protected and thread-safety-annotated ahead of the
// multi-core engine (docs/STATIC_ANALYSIS.md, "Concurrency readiness").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/sync.hpp"
#include "obs/runtime.hpp"

namespace yoso::obs {

#ifndef OBS_DISABLED

struct SpanAttr {
  std::string key;
  std::string value;
  bool numeric = false;  // emit bare (unquoted) in the export
};

struct SpanRecord {
  std::uint32_t id = 0;      // 1-based; 0 means "no span"
  std::uint32_t parent = 0;  // 0 for roots
  std::uint16_t depth = 0;
  bool open = false;
  std::string name;
  std::string cat;
  double virt_start = -1;  // seconds; -1 when no virtual clock was attached
  double virt_end = -1;
  std::uint64_t wall_start_ns = 0;
  std::uint64_t wall_end_ns = 0;
  std::vector<SpanAttr> attrs;
};

class Tracer {
public:
  Tracer();

  // Drops every recorded span (keeps the preallocated buffer).
  void reset();

  // Virtual clock source in seconds.  Keyed by owner so that a board being
  // destroyed cannot detach a clock some newer board installed.
  using VirtualClock = std::function<double()>;
  void attach_virtual_clock(const void* owner, VirtualClock clock);
  void detach_virtual_clock(const void* owner);
  bool has_virtual_clock() const {
    MutexLock lock(&mu_);
    return static_cast<bool>(vclock_);
  }
  // Current virtual time in seconds, or -1 when no clock is attached.
  double virtual_now() const {
    MutexLock lock(&mu_);
    return vclock_ ? vclock_() : -1.0;
  }

  std::uint32_t begin_span(std::string name, std::string cat);
  void end_span(std::uint32_t id);
  void attr(std::uint32_t id, std::string key, std::string value);
  void attr_num(std::uint32_t id, std::string key, std::int64_t value);

  // Locks internally; the reference is only consistent while no span is
  // being recorded (today the simulation is single-threaded).
  const std::vector<SpanRecord>& spans() const {
    MutexLock lock(&mu_);
    return spans_;
  }
  std::size_t open_depth() const {
    MutexLock lock(&mu_);
    return open_.size();
  }

  // Chrome trace-event JSON.  With include_wall the wall-clock timings ride
  // along as args (making the bytes machine-dependent); without it the
  // export is a pure function of the virtual clock.
  std::string chrome_trace_json(bool include_wall = false) const;

private:
  // The tracer is a process-wide singleton the multi-core engine's workers
  // will all reach; its buffers are lock-protected and annotated so
  // -Wthread-safety proves every access (docs/STATIC_ANALYSIS.md).
  mutable Mutex mu_;
  std::vector<SpanRecord> spans_ GUARDED_BY(mu_);
  std::vector<std::uint32_t> open_ GUARDED_BY(mu_);  // stack of open span ids
  VirtualClock vclock_ GUARDED_BY(mu_);
  const void* vclock_owner_ GUARDED_BY(mu_) = nullptr;
};

Tracer& tracer();

// RAII span handle.  A full-expression temporary (constructed and destroyed
// in one statement) records a zero-duration event.
class Span {
public:
  explicit Span(const char* name, const char* cat = "proto");
  Span(std::string name, const char* cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& attr(const char* key, std::string value);
  Span& attr(const char* key, const char* value);
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Span& attr(const char* key, T value) {
    return attr_i64(key, static_cast<std::int64_t>(value));
  }
  // Closes the span before scope exit (the destructor becomes a no-op).
  void end();

private:
  Span& attr_i64(const char* key, std::int64_t value);
  std::uint32_t id_ = 0;
};

#else  // OBS_DISABLED: the entire tracer compiles away.

class Span {
public:
  explicit Span(const char*, const char* = "proto") {}
  Span(const std::string&, const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  template <typename K, typename V>
  Span& attr(K&&, V&&) {
    return *this;
  }
  void end() {}
};

#endif

}  // namespace yoso::obs
