#include "obs/scaling.hpp"

#include <cmath>

#include "sortition/analysis.hpp"

namespace yoso::obs {

double t_critical_975(std::size_t df) {
  // Two-sided 95% (upper 97.5% point).  df = m - 2 for a slope fit.
  static const double kTable[] = {0,     12.706, 4.303, 3.182, 2.776, 2.571,
                                  2.447, 2.365,  2.306, 2.262, 2.228};
  if (df == 0) return 0;
  if (df <= 10) return kTable[df];
  return 1.96;
}

PowerFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  PowerFit fit;
  if (x.size() != y.size() || x.size() < 3) return fit;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) return fit;
  }
  const std::size_t m = x.size();
  std::vector<double> lx(m), ly(m);
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < m; ++i) {
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
    mx += lx[i];
    my += ly[i];
  }
  mx /= static_cast<double>(m);
  my /= static_cast<double>(m);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < m; ++i) {
    sxx += (lx[i] - mx) * (lx[i] - mx);
    sxy += (lx[i] - mx) * (ly[i] - my);
    syy += (ly[i] - my) * (ly[i] - my);
  }
  if (sxx <= 0) return fit;
  fit.points = m;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double sse = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double resid = ly[i] - (fit.intercept + fit.slope * lx[i]);
    sse += resid * resid;
  }
  fit.r2 = syy > 0 ? 1.0 - sse / syy : 1.0;
  const double df = static_cast<double>(m - 2);
  fit.se_slope = std::sqrt((sse / df) / sxx);
  const double t = t_critical_975(m - 2);
  fit.ci_lo = fit.slope - t * fit.se_slope;
  fit.ci_hi = fit.slope + t * fit.se_slope;
  fit.ok = true;
  return fit;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  if (x.size() != y.size() || x.size() < 3) return fit;
  const std::size_t m = x.size();
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < m; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(m);
  my /= static_cast<double>(m);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < m; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0) return fit;
  fit.points = m;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double sse = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double resid = y[i] - (fit.intercept + fit.slope * x[i]);
    sse += resid * resid;
  }
  fit.r2 = syy > 0 ? 1.0 - sse / syy : 1.0;
  const double df = static_cast<double>(m - 2);
  fit.se_slope = std::sqrt((sse / df) / sxx);
  const double t = t_critical_975(m - 2);
  fit.ci_lo = fit.slope - t * fit.se_slope;
  fit.ci_hi = fit.slope + t * fit.se_slope;
  fit.ok = true;
  return fit;
}

ExponentCheck check_exponent(std::string name, const std::vector<double>& x,
                             const std::vector<double>& y, ExponentBand band) {
  ExponentCheck check;
  check.name = std::move(name);
  check.fit = fit_power_law(x, y);
  check.band = band;
  check.pass = check.fit.ok && check.fit.slope >= band.lo && check.fit.slope <= band.hi;
  return check;
}

SpeedupDerivation derive_packed_speedup(double C, double f, double ours_mult_per_gate,
                                        double cdn_mult_per_gate, unsigned n, unsigned k) {
  SpeedupDerivation d;
  d.C = C;
  d.f = f;
  if (n == 0 || k == 0 || ours_mult_per_gate <= 0 || cdn_mult_per_gate <= 0) return d;
  const GapAnalysis g = analyze_gap(SortitionConfig{C, f, 64, 128, 128});
  if (!g.feasible || g.k == 0) return d;
  d.c = g.c;
  d.c_prime = g.c_prime;
  d.k = g.k;
  // Calibration: the baseline posts cdn_per_member elements per gate per
  // committee member; ours posts e0 elements per mu-share with c/k shares
  // per gate (same coefficients bench_online_comm prints as E3's
  // paper-scale projection).
  d.cdn_per_member = cdn_mult_per_gate / n;
  d.e0 = ours_mult_per_gate * static_cast<double>(k) / n;
  d.baseline_per_gate = d.cdn_per_member * g.c_prime;
  d.ours_per_gate = d.e0 * g.c / static_cast<double>(g.k);
  if (d.ours_per_gate <= 0) return d;
  d.speedup = d.baseline_per_gate / d.ours_per_gate;
  d.feasible = true;
  return d;
}

}  // namespace yoso::obs
