// Runtime on/off switch shared by the span tracer and the metrics registry.
//
// Two layers of gating:
//   * compile time: building with -DOBS_DISABLED stubs the whole subsystem
//     out — instrumented call sites compile to nothing (the acceptance bar:
//     bench_god with OBS_DISABLED within 2% of the uninstrumented baseline);
//   * run time: set_enabled(false) mutes recording behind one predictable
//     branch per event, which is what bench_obs uses to price the enabled
//     instrumentation inside a single binary (the `obs_overhead` key).
#pragma once

namespace yoso::obs {

#ifndef OBS_DISABLED

inline bool& enabled_flag() {
  static bool on = true;  // constant-initialized: no guard on the hot path
  return on;
}
inline bool enabled() { return enabled_flag(); }
inline void set_enabled(bool on) { enabled_flag() = on; }

#else

inline bool enabled() { return false; }
inline void set_enabled(bool) {}

#endif

}  // namespace yoso::obs
