// Hot-path compute profiler: per-primitive counters, self-time accounting
// and log2 wall-time histograms, recorded into task-local InstrumentCells.
//
// Where the metrics registry (obs/metrics.hpp) answers "what happened on
// the board", the profiler answers "where did the CPU go": every crypto
// primitive funnel — the ct_math exponentiations, the Paillier layer, NIZK
// prove/verify, packed share/reconstruct, the field-op funnels in
// field/poly.hpp — records into a fixed-size cell indexed by a closed Op
// enum, attributed to the enclosing protocol phase (ScopedOpContext).
// Array indexing replaces the registry's name->handle map on these paths:
// recording is a couple of adds on a task-local cell, no lock, no lookup.
//
// Determinism contract (the same split the FlowMatrix uses):
//   * op COUNTS are always recorded — they are a pure function of the
//     seeded run, ride into run reports / BENCH files, and must be
//     byte-identical across replays and identical between enabled and
//     muted runs (tests/determinism_test.cpp asserts both);
//   * op TIMINGS (self-ns, histograms, phase wall) are machine-dependent
//     and therefore muted by obs::set_enabled(false); exports keep them
//     out of deterministic documents unless explicitly asked
//     (include_wall, mirroring the tracer's --wall).
//
// Task-local cells: a worker task installs its own cell with ScopedCell at
// spawn and the owner merges it back with InstrumentCell::merge on join.
// merge() is an elementwise sum — commutative and associative — so any
// join order yields a byte-identical snapshot (the merge-on-join half of
// ROADMAP item 3; the thread pool itself is future work).
//
// OBS_DISABLED compiles the whole subsystem out; docs/PROFILING.md is the
// user guide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/runtime.hpp"

namespace yoso::obs {

#ifndef OBS_DISABLED

// Closed set of profiled primitives.  Adding one: extend the enum, add its
// dotted name to op_name(), mark it timed or count-only at the call site
// (docs/PROFILING.md walks through it).
enum class Op : unsigned {
  CtPowmSec = 0,
  CtPowmPub,
  CtModInverse,
  PaillierEnc,
  PaillierEncSecret,
  PaillierDec,
  PaillierEval,
  PaillierTpdec,
  PaillierExtractRoot,
  PaillierAdd,
  PaillierScal,
  PaillierScalSecret,
  PaillierRerandomize,
  NizkProve,
  NizkVerify,
  SharePack,
  ShareUnpack,
  FieldMul,
  FieldInv,
  CodecEncode,
  CodecDecode,
  kCount
};

inline constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

// Enclosing-phase attribution for every recorded op.
enum class PhaseCtx : unsigned { Setup = 0, Offline, Online, Cdn, Other, kCount };

inline constexpr std::size_t kPhaseCtxCount = static_cast<std::size_t>(PhaseCtx::kCount);

const char* op_name(Op op);
const char* phase_ctx_name(PhaseCtx ctx);

class OpTimer;

// Per-task accumulation buffer.  Plain arrays, value-semantic, no locks:
// exactly one task writes a cell at a time (the task-local policy in
// docs/STATIC_ANALYSIS.md), and cross-task aggregation happens through
// merge() on join.
class InstrumentCell {
public:
  static constexpr int kHistBuckets = 65;  // log2: bucket 0 = {0}, b = [2^(b-1), 2^b)

  // Always records (determinism contract above); attribution is the cell's
  // current phase context.
  void count(Op op, std::uint64_t delta = 1) {
    counts_[static_cast<unsigned>(ctx_)][static_cast<unsigned>(op)] += delta;
  }

  // Elementwise sum of counts, self-times, histograms and phase wall —
  // commutative + associative, so join order cannot change the result.
  // Live state (current context, open timer chain) is not merged.
  void merge(const InstrumentCell& other);

  void reset();

  std::uint64_t op_count(PhaseCtx ctx, Op op) const {
    return counts_[static_cast<unsigned>(ctx)][static_cast<unsigned>(op)];
  }
  std::uint64_t op_total_count(Op op) const;
  std::uint64_t op_self_ns(PhaseCtx ctx, Op op) const {
    return self_ns_[static_cast<unsigned>(ctx)][static_cast<unsigned>(op)];
  }
  std::uint64_t op_total_self_ns(Op op) const;
  std::uint64_t hist_bucket(Op op, int bucket) const {
    return hist_[static_cast<unsigned>(op)][bucket];
  }
  std::uint64_t phase_wall_ns(PhaseCtx ctx) const {
    return phase_wall_ns_[static_cast<unsigned>(ctx)];
  }
  // Peak RSS observed while this phase context was active (getrusage, sampled
  // at context boundaries).  Timing-gated like wall: machine-dependent, so it
  // never enters the deterministic exports.
  std::uint64_t mem_peak_bytes(PhaseCtx ctx) const {
    return mem_peak_bytes_[static_cast<unsigned>(ctx)];
  }
  PhaseCtx context() const { return ctx_; }

  // {"ops":{"<name>":{"count":...,"by_phase":{...}}},...} through the
  // json::Writer funnel; deterministic unless include_wall adds the
  // machine-dependent self_us / hist fields.  Op names sorted.
  std::string snapshot_json(bool include_wall = false) const;

private:
  friend class OpTimer;
  friend class ScopedOpContext;

  std::uint64_t counts_[kPhaseCtxCount][kOpCount] = {};
  std::uint64_t self_ns_[kPhaseCtxCount][kOpCount] = {};
  std::uint64_t hist_[kOpCount][kHistBuckets] = {};
  std::uint64_t phase_wall_ns_[kPhaseCtxCount] = {};
  std::uint64_t mem_peak_bytes_[kPhaseCtxCount] = {};  // merged via max, not sum

  // Live (unmerged) state: current phase attribution and the innermost open
  // timer, for self-time = elapsed - time spent in nested profiled ops.
  PhaseCtx ctx_ = PhaseCtx::Other;
  OpTimer* open_ = nullptr;
};

// One op-granularity counter-track sample: cumulative count of `op` at
// virtual time `t`.  Recorded at phase-context boundaries, emitted by the
// tracer's Chrome export as "C" events named `op.count.<name>` — Perfetto
// renders them as stepped graphs under the span timeline.  Deterministic:
// counts and the virtual clock both are.
struct OpTrackSample {
  double t = 0;
  Op op = Op::CtPowmSec;
  std::uint64_t value = 0;
};

// The profiler: owns the root cell (the main task's buffer) and the
// task-local current-cell pointer the recording macros go through.
class Profiler {
public:
  // The cell the current task records into (the root unless a ScopedCell
  // installed a task-local one).
  InstrumentCell& cell();

  // Installs `c` as the current task's cell; returns the previous one.
  // Use ScopedCell rather than calling this directly.
  InstrumentCell* install_cell(InstrumentCell* c);

  // Copy of the root cell (after any merged joins).
  InstrumentCell snapshot() const { return root_; }

  void reset();

  // Appends one sample per op with a nonzero cumulative count in the
  // current task's cell.  Called by ScopedOpContext at phase boundaries.
  void sample_op_tracks(double t);
  const std::vector<OpTrackSample>& op_track_samples() const { return track_; }

  // Convenience over snapshot().snapshot_json().
  std::string op_costs_json(bool include_wall = false) const {
    return root_.snapshot_json(include_wall);
  }

private:
  InstrumentCell root_;
  // Counter-track buffer: contexts open and close on the owning task only
  // (the same task-local policy as the cells), so no lock.
  std::vector<OpTrackSample> track_;
};

Profiler& profiler();

// RAII task-cell installation: create one at task spawn with the task's own
// cell; the destructor restores the previous cell.  The owner merges the
// task cell on join: profiler().cell().merge(task_cell).
class ScopedCell {
public:
  explicit ScopedCell(InstrumentCell* c) : cell_(c), prev_(profiler().install_cell(c)) {}
  ~ScopedCell() {
    // LIFO-checked restore: only uninstall if our cell is still the innermost
    // installation.  An exception unwinding past an unmatched install_cell()
    // call (no scope guard) would otherwise have this dtor clobber the newer
    // installation with a possibly-dangling prev_.
    InstrumentCell* displaced = profiler().install_cell(prev_);
    if (displaced != cell_) profiler().install_cell(displaced);
  }
  ScopedCell(const ScopedCell&) = delete;
  ScopedCell& operator=(const ScopedCell&) = delete;

private:
  InstrumentCell* cell_;
  InstrumentCell* prev_;
};

// RAII phase attribution.  Installed at the protocol phase roots
// (mpc/protocol.cpp, baseline/cdn.cpp); everything recorded inside lands in
// that phase's row.  Context switching is unconditional (counts must
// attribute identically whether recording is muted or not); the wall-clock
// accounting and the op.count.* counter-track samples are enabled-gated.
class ScopedOpContext {
public:
  explicit ScopedOpContext(PhaseCtx ctx);
  ~ScopedOpContext();
  ScopedOpContext(const ScopedOpContext&) = delete;
  ScopedOpContext& operator=(const ScopedOpContext&) = delete;

private:
  InstrumentCell* cell_;
  PhaseCtx prev_;
  PhaseCtx ctx_;
  std::uint64_t wall_start_ns_;
};

// RAII per-op timer: counts on construction semantics are recorded on
// destruction — count `delta`, total elapsed into the op's log2 histogram,
// and elapsed minus nested-profiled-op time into self-ns.  Muted runs skip
// the clock reads but still count.
class OpTimer {
public:
  explicit OpTimer(Op op, std::uint64_t delta = 1);
  ~OpTimer();
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

private:
  friend class InstrumentCell;
  InstrumentCell* cell_;
  OpTimer* parent_;
  Op op_;
  std::uint64_t delta_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  bool timed_ = false;
};

#define OBS_PROFILE_CONCAT2(a, b) a##b
#define OBS_PROFILE_CONCAT(a, b) OBS_PROFILE_CONCAT2(a, b)

// Timed op (RAII over the rest of the enclosing scope).
#define OBS_OP(op) \
  ::yoso::obs::OpTimer OBS_PROFILE_CONCAT(obs_op_timer_, __LINE__)(::yoso::obs::Op::op)
#define OBS_OP_N(op, delta)                                                     \
  ::yoso::obs::OpTimer OBS_PROFILE_CONCAT(obs_op_timer_, __LINE__)(             \
      ::yoso::obs::Op::op, static_cast<std::uint64_t>(delta))

// Count-only op (too hot or too coarse to time per call).
#define OBS_OP_COUNT(op)                                          \
  do {                                                            \
    ::yoso::obs::profiler().cell().count(::yoso::obs::Op::op);    \
  } while (0)
#define OBS_OP_COUNT_N(op, delta)                                 \
  do {                                                            \
    ::yoso::obs::profiler().cell().count(::yoso::obs::Op::op,     \
                                         static_cast<std::uint64_t>(delta)); \
  } while (0)

#else  // OBS_DISABLED: the profiler compiles away entirely.

enum class PhaseCtx : unsigned { Setup = 0, Offline, Online, Cdn, Other, kCount };

class InstrumentCell {
public:
  void merge(const InstrumentCell&) {}
  void reset() {}
  std::string snapshot_json(bool = false) const { return "{}"; }
};

class ScopedCell {
public:
  explicit ScopedCell(InstrumentCell*) {}
};

class ScopedOpContext {
public:
  explicit ScopedOpContext(PhaseCtx) {}
};

#define OBS_OP(op) \
  do {             \
  } while (0)
#define OBS_OP_N(op, delta)  \
  do {                       \
    (void)sizeof((delta));   \
  } while (0)
#define OBS_OP_COUNT(op) \
  do {                   \
  } while (0)
#define OBS_OP_COUNT_N(op, delta) \
  do {                            \
    (void)sizeof((delta));        \
  } while (0)

#endif

}  // namespace yoso::obs
