// Per-edge traffic matrix: who sent how much to whom, under which ledger
// category, in which phase.
//
// The bulletin board realizes every message as a broadcast, so the
// "receiver" of a post is the committee that *consumes* it — which, in the
// YOSO activation order, is the next committee to act after the post is on
// the board.  FlowMatrix therefore records posts with a pending receiver;
// NetBulletin resolves all pending posts to a committee when it begins
// publishing (its first post marks its activation — spawn time is useless
// as a signal, the whole schedule is spawned up front), and anything still
// pending at report time (the final committee's output posts) resolves to
// the `observers` fallback.
//
// Only posts *accepted onto the board* are recorded, so the matrix obeys a
// conservation law against the PhasePosts accounting from the chaos layer:
// for every phase, the sum of edge messages equals PhasePosts::delivered
// (tests/flow_test.cpp asserts this under fault injection).
//
// Like the rest of src/obs the matrix is compiled out by OBS_DISABLED:
// record()/resolve() become empty inline functions and the report emits an
// empty edge list.  It is deliberately *not* muted by obs::set_enabled —
// it is board-scoped accounting (like the ledger), not sampling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace yoso::json {
class Writer;
}

namespace yoso::obs {

struct FlowKey {
  std::string src;       // sending committee (or external sender name)
  std::string dst;       // consuming committee (or "observers")
  std::string category;  // ledger category of the post
  std::uint8_t phase = 0;

  bool operator<(const FlowKey& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    if (category != o.category) return category < o.category;
    return phase < o.phase;
  }
};

struct FlowCell {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t elements = 0;
};

class FlowMatrix {
public:
#ifndef OBS_DISABLED
  // Records one delivered post whose consumer is not yet known.
  void record(std::string src, std::string category, std::uint8_t phase, std::uint64_t bytes,
              std::uint64_t elements);
  // Assigns every pending post to `dst` (the committee that just started
  // acting consumes everything already on the board).
  void resolve(const std::string& dst);
  // Resolves any leftover pending posts to `fallback`; idempotent.
  void finalize(const std::string& fallback);
  void reset();

  const std::map<FlowKey, FlowCell>& edges() const { return edges_; }
  std::size_t pending() const { return pending_.size(); }
#else
  void record(const std::string&, const std::string&, std::uint8_t, std::uint64_t,
              std::uint64_t) {}
  void resolve(const std::string&) {}
  void finalize(const std::string&) {}
  void reset() {}

  const std::map<FlowKey, FlowCell>& edges() const {
    static const std::map<FlowKey, FlowCell> kEmpty;
    return kEmpty;
  }
  std::size_t pending() const { return 0; }
#endif

  // Sum over all edges of one phase.
  FlowCell phase_total(std::uint8_t phase) const;

  // Writes the matrix as a JSON array value (one object per edge, sorted by
  // key, so identical runs serialize byte-identically).
  void write_json(json::Writer& w) const;

#ifndef OBS_DISABLED
private:
  struct Pending {
    std::string src;
    std::string category;
    std::uint8_t phase;
    std::uint64_t bytes;
    std::uint64_t elements;
  };
  std::vector<Pending> pending_;
  std::map<FlowKey, FlowCell> edges_;
#endif
};

}  // namespace yoso::obs
