#include "obs/timeseries.hpp"

#ifndef OBS_DISABLED

#include "common/json.hpp"

namespace yoso::obs {

Series& TimeSeriesRegistry::series(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, std::make_unique<Series>()).first;
  }
  return *it->second;
}

void TimeSeriesRegistry::reset() {
  MutexLock lock(&mu_);
  for (auto& [name, s] : series_) s->reset();
}

std::string TimeSeriesRegistry::report_json() const {
  MutexLock lock(&mu_);
  json::Writer w;
  w.begin_object();
  for (const auto& [name, s] : series_) {
    if (s->points().empty()) continue;
    w.key(name).begin_array();
    for (const auto& [t, v] : s->points()) {
      w.begin_array().num(t).num(v).end_array();
    }
    w.end_array();
  }
  w.end_object();
  return w.take();
}

TimeSeriesRegistry& timeseries() {
  static TimeSeriesRegistry r;
  return r;
}

}  // namespace yoso::obs

#endif  // OBS_DISABLED
