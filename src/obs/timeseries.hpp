// Virtual-clock-sampled time series: the communication *shape* of a run
// over time, inspectable and diffable.
//
// A Series is a list of (t, value) samples in virtual seconds; the
// registry hands out stable handles by dotted name, exactly like the
// metrics registry (node-based map — reset() clears the points but keeps
// every handle valid).  NetBulletin samples in-flight bytes, board queue
// depth and per-phase bandwidth at every round flush; because the sample
// clock is the discrete-event virtual clock, two identical seeded runs
// produce byte-identical series.
//
// The tracer's Chrome-trace export emits every series as a Perfetto
// counter track ("C" events), so the byte flow renders as a graph under
// the span timeline.  Sampling is muted by obs::set_enabled(false) and the
// whole registry is compiled out by OBS_DISABLED (call sites must be
// guarded, as they are in net_bulletin.cpp).
#pragma once

#ifndef OBS_DISABLED

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "obs/runtime.hpp"

namespace yoso::obs {

class Series {
public:
  void sample(double t, double v) {
    if (enabled()) points_.emplace_back(t, v);
  }
  const std::vector<std::pair<double, double>>& points() const { return points_; }
  void reset() { points_.clear(); }

private:
  std::vector<std::pair<double, double>> points_;
};

// Like the metrics registry: the name->handle map is lock-protected (any
// worker may look up a series once the multi-core engine lands), while the
// Series cells stay task-local by the determinism plan's merge-on-join rule
// (docs/STATIC_ANALYSIS.md).
class TimeSeriesRegistry {
public:
  // Stable for the registry's lifetime (node-based map).
  Series& series(const std::string& name);

  // Clears every series' points (handles stay valid).
  void reset();

  // Locks internally; the reference is only consistent while no sampler is
  // active (today the simulation is single-threaded).
  const std::map<std::string, std::unique_ptr<Series>>& all() const {
    MutexLock lock(&mu_);
    return series_;
  }

  // {"name":[[t,v],...],...} — names in lexicographic order; series with no
  // samples are omitted.
  std::string report_json() const;

private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Series>> series_ GUARDED_BY(mu_);
};

TimeSeriesRegistry& timeseries();

}  // namespace yoso::obs

#endif  // OBS_DISABLED
