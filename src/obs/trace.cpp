#include "obs/trace.hpp"

#ifndef OBS_DISABLED

#include <chrono>

#include "common/json.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"

namespace yoso::obs {

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer::Tracer() {
  spans_.reserve(1024);
  open_.reserve(32);
}

void Tracer::reset() {
  MutexLock lock(&mu_);
  spans_.clear();
  open_.clear();
}

void Tracer::attach_virtual_clock(const void* owner, VirtualClock clock) {
  MutexLock lock(&mu_);
  vclock_ = std::move(clock);
  vclock_owner_ = owner;
}

void Tracer::detach_virtual_clock(const void* owner) {
  MutexLock lock(&mu_);
  if (owner != vclock_owner_) return;  // a newer clock took over; leave it
  vclock_ = nullptr;
  vclock_owner_ = nullptr;
}

std::uint32_t Tracer::begin_span(std::string name, std::string cat) {
  if (!enabled()) return 0;
  MutexLock lock(&mu_);
  SpanRecord rec;
  rec.id = static_cast<std::uint32_t>(spans_.size()) + 1;
  rec.parent = open_.empty() ? 0 : open_.back();
  rec.depth = static_cast<std::uint16_t>(open_.size());
  rec.open = true;
  rec.name = std::move(name);
  rec.cat = std::move(cat);
  if (vclock_) rec.virt_start = vclock_();
  rec.wall_start_ns = wall_now_ns();
  spans_.push_back(std::move(rec));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::end_span(std::uint32_t id) {
  MutexLock lock(&mu_);
  if (id == 0 || id > spans_.size()) return;
  SpanRecord& rec = spans_[id - 1];
  if (!rec.open) return;
  rec.open = false;
  if (vclock_) rec.virt_end = vclock_();
  rec.wall_end_ns = wall_now_ns();
  // Unwind the open stack down to (and including) this span; exceptions may
  // close an outer span while an inner one is still marked open.
  while (!open_.empty()) {
    std::uint32_t top = open_.back();
    open_.pop_back();
    if (top == id) break;
    SpanRecord& inner = spans_[top - 1];
    if (inner.open) {
      inner.open = false;
      inner.virt_end = rec.virt_end;
      inner.wall_end_ns = rec.wall_end_ns;
    }
  }
}

void Tracer::attr(std::uint32_t id, std::string key, std::string value) {
  MutexLock lock(&mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.push_back(SpanAttr{std::move(key), std::move(value), false});
}

void Tracer::attr_num(std::uint32_t id, std::string key, std::int64_t value) {
  MutexLock lock(&mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.push_back(SpanAttr{std::move(key), std::to_string(value), true});
}

std::string Tracer::chrome_trace_json(bool include_wall) const {
  MutexLock lock(&mu_);
  json::Writer w;
  w.begin_object();
  w.key("displayTimeUnit").str("ms");
  // Self-describing header (satellite of the causality observatory): which
  // build and obs generation produced this trace.  `trace diff` warns when
  // two documents disagree.
  w.key("runMeta").raw(run_metadata_json());
  w.key("traceEvents").begin_array();

  w.begin_object();
  w.field("ph", "M").field("pid", 1).field("tid", 1).field("name", "process_name");
  w.key("args").begin_object().field("name", "yoso-mpc").end_object();
  w.end_object();

  // Wall epoch: the first span's start, so wall ts stay small and relative.
  std::uint64_t wall_epoch = 0;
  for (const SpanRecord& s : spans_) {
    if (wall_epoch == 0 || (s.wall_start_ns != 0 && s.wall_start_ns < wall_epoch)) {
      wall_epoch = s.wall_start_ns;
    }
  }

  for (const SpanRecord& s : spans_) {
    const bool has_virt = s.virt_start >= 0;
    const double ts_us = has_virt
                             ? s.virt_start * 1e6
                             : static_cast<double>(s.wall_start_ns - wall_epoch) / 1e3;
    const std::uint64_t wall_end = s.open ? s.wall_start_ns : s.wall_end_ns;
    const double dur_us =
        has_virt ? (s.open ? 0.0 : (s.virt_end - s.virt_start) * 1e6)
                 : static_cast<double>(wall_end - s.wall_start_ns) / 1e3;
    w.begin_object();
    w.field("ph", "X").field("pid", 1).field("tid", 1);
    w.field("name", s.name).field("cat", s.cat);
    w.key("ts").num(ts_us);
    w.key("dur").num(dur_us < 0 ? 0.0 : dur_us);
    w.key("args").begin_object();
    for (const SpanAttr& a : s.attrs) {
      if (a.numeric) {
        w.key(a.key).raw(a.value);
      } else {
        w.field(a.key, a.value);
      }
    }
    if (include_wall) {
      w.key("wall_start_us").num(static_cast<double>(s.wall_start_ns - wall_epoch) / 1e3);
      w.key("wall_dur_us").num(static_cast<double>(wall_end - s.wall_start_ns) / 1e3);
    }
    w.end_object();
    w.end_object();
  }

  // Flow/time-series samples become Perfetto counter tracks: one "C" event
  // per sample, named after the series, on the virtual-clock timeline.
  for (const auto& [name, series] : timeseries().all()) {
    for (const auto& [t, v] : series->points()) {
      w.begin_object();
      w.field("ph", "C").field("pid", 1).field("tid", 1);
      w.field("name", name);
      w.key("ts").num(t * 1e6);
      w.key("args").begin_object();
      w.key("value").num(v);
      w.end_object();
      w.end_object();
    }
  }

  // Op-granularity counter tracks from the compute profiler: cumulative
  // per-primitive counts sampled at phase boundaries (deterministic — both
  // the counts and the virtual clock are), plus, when wall timings are
  // requested, one final self-µs sample per op so Perfetto shows where the
  // CPU went next to where the bytes went.
  for (const OpTrackSample& s : profiler().op_track_samples()) {
    w.begin_object();
    w.field("ph", "C").field("pid", 1).field("tid", 1);
    w.field("name", std::string("op.count.") + op_name(s.op));
    w.key("ts").num(s.t * 1e6);
    w.key("args").begin_object();
    w.key("value").num(static_cast<double>(s.value));
    w.end_object();
    w.end_object();
  }
  if (include_wall) {
    const InstrumentCell cell = profiler().snapshot();
    double last_ts = 0;
    for (const OpTrackSample& s : profiler().op_track_samples()) {
      if (s.t * 1e6 > last_ts) last_ts = s.t * 1e6;
    }
    for (unsigned o = 0; o < kOpCount; ++o) {
      const Op op = static_cast<Op>(o);
      const std::uint64_t self_ns = cell.op_total_self_ns(op);
      if (self_ns == 0) continue;
      w.begin_object();
      w.field("ph", "C").field("pid", 1).field("tid", 1);
      w.field("name", std::string("op.self_us.") + op_name(op));
      w.key("ts").num(last_ts);
      w.key("args").begin_object();
      w.key("value").num(static_cast<double>(self_ns) / 1e3);
      w.end_object();
      w.end_object();
    }
    // Per-phase peak-RSS gauges, same timing gate as self-times (getrusage
    // is machine-dependent, so it stays out of deterministic exports).
    for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
      const PhaseCtx ctx = static_cast<PhaseCtx>(p);
      const std::uint64_t peak = cell.mem_peak_bytes(ctx);
      if (peak == 0) continue;
      w.begin_object();
      w.field("ph", "C").field("pid", 1).field("tid", 1);
      w.field("name", std::string("mem.peak_bytes.") + phase_ctx_name(ctx));
      w.key("ts").num(last_ts);
      w.key("args").begin_object();
      w.key("value").num(static_cast<double>(peak));
      w.end_object();
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  return w.take();
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

Span::Span(const char* name, const char* cat) { id_ = tracer().begin_span(name, cat); }

Span::Span(std::string name, const char* cat) {
  id_ = tracer().begin_span(std::move(name), cat);
}

Span::~Span() {
  if (id_ != 0) tracer().end_span(id_);
}

void Span::end() {
  if (id_ != 0) tracer().end_span(id_);
  id_ = 0;
}

Span& Span::attr(const char* key, std::string value) {
  if (id_ != 0) tracer().attr(id_, key, std::move(value));
  return *this;
}

Span& Span::attr(const char* key, const char* value) {
  if (id_ != 0) tracer().attr(id_, key, value);
  return *this;
}

Span& Span::attr_i64(const char* key, std::int64_t value) {
  if (id_ != 0) tracer().attr_num(id_, key, value);
  return *this;
}

}  // namespace yoso::obs

#endif  // OBS_DISABLED
