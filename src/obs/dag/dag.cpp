#include "obs/dag/dag.hpp"

#ifndef OBS_DISABLED

#include <algorithm>

#include "common/json.hpp"

namespace yoso::obs::dag {

CountMatrix CountMatrix::capture(const InstrumentCell& cell) {
  CountMatrix m;
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) {
      m.v[p][o] = cell.op_count(static_cast<PhaseCtx>(p), static_cast<Op>(o));
    }
  }
  return m;
}

CountMatrix CountMatrix::delta_since(const CountMatrix& earlier) const {
  CountMatrix d;
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) {
      d.v[p][o] = v[p][o] - earlier.v[p][o];
    }
  }
  return d;
}

void CountMatrix::add(const CountMatrix& other) {
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) v[p][o] += other.v[p][o];
  }
}

bool CountMatrix::operator==(const CountMatrix& other) const {
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) {
      if (v[p][o] != other.v[p][o]) return false;
    }
  }
  return true;
}

bool CountMatrix::is_zero() const {
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) {
      if (v[p][o] != 0) return false;
    }
  }
  return true;
}

std::uint64_t CountMatrix::total() const {
  std::uint64_t t = 0;
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) t += v[p][o];
  }
  return t;
}

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::Role: return "role";
    case NodeKind::Post: return "post";
    case NodeKind::External: return "external";
    case NodeKind::Residue: return "residue";
  }
  return "?";
}

DagRecorder::DagRecorder()
    : base_(CountMatrix::capture(profiler().cell())), last_(base_) {}

CountMatrix DagRecorder::take_delta() {
  const CountMatrix cur = CountMatrix::capture(profiler().cell());
  const CountMatrix d = cur.delta_since(last_);
  last_ = cur;
  return d;
}

std::uint32_t DagRecorder::add_node(NodeKind kind, std::uint8_t phase, const std::string& actor,
                                    unsigned role, std::vector<std::uint32_t> preds) {
  DagNode node;
  node.id = static_cast<std::uint32_t>(nodes_.size());
  node.kind = kind;
  node.phase = phase;
  node.actor = actor;
  node.role = role;
  node.preds = std::move(preds);
  std::sort(node.preds.begin(), node.preds.end());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void DagRecorder::switch_activation(const std::string& actor) {
  board_inputs_ = std::move(pending_posts_);
  pending_posts_.clear();
  live_actors_.clear();
  cur_actor_ = actor;
}

void DagRecorder::begin_post(const std::string& actor, unsigned role, std::uint8_t phase,
                             bool external) {
  const CountMatrix delta = take_delta();
  if (!external && actor != cur_actor_) switch_activation(actor);

  const std::string key =
      (external ? "x:" + actor : "c:" + actor + "#" + std::to_string(role));
  std::uint32_t node_id = 0;
  bool found = false;
  for (const auto& [k, id] : live_actors_) {
    if (k == key) {
      node_id = id;
      found = true;
      break;
    }
  }
  if (!found) {
    std::vector<std::uint32_t> preds = board_inputs_;
    if (external) {
      // An external sender reads the board as published so far, including
      // posts of the activation in flight (a client consumes the setup
      // committee's encryption key before contributing).
      preds.insert(preds.end(), pending_posts_.begin(), pending_posts_.end());
    }
    node_id = add_node(external ? NodeKind::External : NodeKind::Role, phase, actor, role,
                       std::move(preds));
    live_actors_.emplace_back(key, node_id);
  }
  nodes_[node_id].counts.add(delta);
  nodes_[node_id].phase = phase;  // a role activation spans one ledger phase
  open_.producer = node_id;
  open_.phase = phase;
  open_.open = true;
}

void DagRecorder::end_post(const std::string& label, std::uint64_t bytes, bool delivered) {
  const CountMatrix delta = take_delta();
  std::vector<std::uint32_t> preds;
  std::uint8_t phase = 0;
  std::string actor;
  if (open_.open) {
    preds.push_back(open_.producer);
    phase = open_.phase;
    actor = nodes_[open_.producer].actor;
    open_.open = false;
  }
  const std::uint32_t id = add_node(NodeKind::Post, phase, actor, 0, std::move(preds));
  DagNode& node = nodes_[id];
  node.label = label;
  node.bytes = bytes;
  node.delivered = delivered;
  node.counts = delta;
  // A post the board never accepted has no consumers: dropped, corrupt,
  // truncated and late posts must stay leaves (validate() enforces it).
  if (delivered) pending_posts_.push_back(id);
}

void DagRecorder::finalize() {
  const CountMatrix delta = take_delta();
  if (delta.is_zero() && has_residue_) return;
  if (!has_residue_) {
    // Trailing compute — output reconstruction, final verification sweeps —
    // consumes the last activation's delivered posts.
    std::uint8_t phase = 0;
    if (!nodes_.empty()) phase = nodes_.back().phase;
    residue_ = add_node(NodeKind::Residue, phase, "observers", 0, pending_posts_);
    has_residue_ = true;
  }
  nodes_[residue_].counts.add(delta);
}

std::size_t DagRecorder::edge_count() const {
  std::size_t edges = 0;
  for (const DagNode& node : nodes_) edges += node.preds.size();
  return edges;
}

CountMatrix DagRecorder::recorded_total() const {
  CountMatrix total;
  for (const DagNode& node : nodes_) total.add(node.counts);
  return total;
}

CountMatrix DagRecorder::profiler_delta() const {
  return CountMatrix::capture(profiler().cell()).delta_since(base_);
}

bool DagRecorder::validate(std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  for (const DagNode& node : nodes_) {
    std::uint32_t prev = 0;
    bool first = true;
    for (std::uint32_t p : node.preds) {
      if (p >= node.id) {
        return fail("node " + std::to_string(node.id) + ": non-backward edge to " +
                    std::to_string(p));
      }
      if (!first && p <= prev) {
        return fail("node " + std::to_string(node.id) + ": preds not strictly ascending");
      }
      prev = p;
      first = false;
      const DagNode& src = nodes_[p];
      if (node.kind == NodeKind::Post) {
        if (src.kind != NodeKind::Role && src.kind != NodeKind::External) {
          return fail("post node " + std::to_string(node.id) + ": producer " +
                      std::to_string(p) + " is not a role/external");
        }
      } else {
        if (src.kind != NodeKind::Post) {
          return fail("node " + std::to_string(node.id) + ": consume edge from non-post " +
                      std::to_string(p));
        }
        if (!src.delivered) {
          return fail("node " + std::to_string(node.id) + ": consumes undelivered post " +
                      std::to_string(p) + " (" + src.label + ")");
        }
      }
    }
    if (node.kind == NodeKind::Post && node.preds.size() > 1) {
      return fail("post node " + std::to_string(node.id) + ": multiple producers");
    }
  }
  return true;
}

std::string DagRecorder::report_json() const {
  std::size_t by_kind[4] = {};
  std::size_t phase_nodes[3] = {};
  std::size_t delivered = 0;
  std::size_t undelivered = 0;
  for (const DagNode& node : nodes_) {
    ++by_kind[static_cast<unsigned>(node.kind)];
    if (node.phase < 3) ++phase_nodes[node.phase];
    if (node.kind == NodeKind::Post) {
      if (node.delivered) {
        ++delivered;
      } else {
        ++undelivered;
      }
    }
  }
  json::Writer w;
  w.begin_object();
  w.field("nodes", static_cast<std::uint64_t>(nodes_.size()));
  w.field("edges", static_cast<std::uint64_t>(edge_count()));
  w.key("kinds").begin_object();
  for (unsigned k = 0; k < 4; ++k) {
    w.field(node_kind_name(static_cast<NodeKind>(k)), static_cast<std::uint64_t>(by_kind[k]));
  }
  w.end_object();
  w.field("posts_delivered", static_cast<std::uint64_t>(delivered));
  w.field("posts_undelivered", static_cast<std::uint64_t>(undelivered));
  w.key("phases").begin_object();
  static constexpr const char* kPhaseKeys[3] = {"setup", "offline", "online"};
  for (unsigned p = 0; p < 3; ++p) {
    w.field(kPhaseKeys[p], static_cast<std::uint64_t>(phase_nodes[p]));
  }
  w.end_object();
  w.field("op_total", recorded_total().total());
  w.end_object();
  return w.take();
}

}  // namespace yoso::obs::dag

#endif  // OBS_DISABLED
