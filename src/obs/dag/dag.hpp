// Happens-before DAG reconstruction for a YOSO run.
//
// The YOSO model makes the concurrency structure of a run fully recoverable
// from the board: every role speaks once, every message is a broadcast, and
// a committee that begins publishing has — by the handover order — consumed
// everything already on the board.  DagRecorder rebuilds that structure as
// the board observes it:
//
//   nodes  = role activations (the compute a role performs before and
//            between its posts), per-post pipeline work (codec encode +
//            decode-check round-trip), external senders (clients, dealer),
//            and one trailing Residue node for compute after the last post
//            (output reconstruction, verification sweeps);
//   edges  = publish -> consume, resolved exactly the way the FlowMatrix
//            resolves committee traffic: posts delivered while committee A
//            publishes are consumed by the next committee B to begin
//            publishing — every role of B gets an in-edge from each of A's
//            delivered posts.  Dropped/corrupt/truncated/late posts get NO
//            out-edges: nothing downstream may depend on a post the board
//            never accepted (tests/dag_test.cpp holds this under seeded
//            wire-fault schedules).
//
// Node weights come from the compute observatory (PR 9): each node carries
// the per-(phase, op) count delta the profiler accumulated while that
// node's work ran — the delta-snapshot taken at every publish boundary.
// Summed over all nodes (including the residue) the counts reconcile
// *exactly* with the profiler's own totals: Sigma node counts == profiler
// delta over the run, by construction.  Attribution is producer-biased:
// protocol code interleaves "compute message j, publish j" per role, so the
// delta before a post belongs to the posting role; consumer-side
// verification that runs before the *next* post lands on that next node
// (docs/OBSERVABILITY.md discusses the bias).
//
// Everything here is counts-only and therefore deterministic: a same-seed
// replay produces a byte-identical DAG whether obs timing is enabled or
// muted.  Pricing the nodes (critpath.hpp) uses a fixed reference
// coefficient table for the same reason.
//
// OBS_DISABLED compiles the recorder down to no-op stubs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace yoso::obs::dag {

#ifndef OBS_DISABLED

// Flat copy of a cell's per-(phase, op) counters; the unit of node weight.
struct CountMatrix {
  std::uint64_t v[kPhaseCtxCount][kOpCount] = {};

  static CountMatrix capture(const InstrumentCell& cell);
  // Elementwise this - earlier (counters are monotone within a run).
  CountMatrix delta_since(const CountMatrix& earlier) const;
  void add(const CountMatrix& other);
  bool operator==(const CountMatrix& other) const;
  bool is_zero() const;
  std::uint64_t total() const;
};

enum class NodeKind : std::uint8_t { Role, Post, External, Residue };

const char* node_kind_name(NodeKind kind);

struct DagNode {
  std::uint32_t id = 0;
  NodeKind kind = NodeKind::Role;
  // Ledger phase of the activity (Setup/Offline/Online index; Residue nodes
  // keep the phase of the last post).
  std::uint8_t phase = 0;
  std::string actor;   // committee name, or external sender for External
  unsigned role = 0;   // role index within the committee (Role nodes)
  std::string label;   // ledger category (Post nodes)
  std::uint64_t bytes = 0;
  bool delivered = true;  // Post nodes: accepted onto the board
  CountMatrix counts;
  // In-edges; always predecessors by id (construction order is a
  // topological order), sorted ascending.
  std::vector<std::uint32_t> preds;
};

// Reconstructs the happens-before DAG from the board's publish stream.
// Driven by NetBulletin: begin_post() at the top of every publish (closes
// the compute window since the previous publish and attributes it to the
// posting role), end_post() once the post's fate is decided (attributes the
// codec/verify pipeline work to a Post node), finalize() after the run
// (captures the trailing residue).
class DagRecorder {
public:
  DagRecorder();

  void begin_post(const std::string& actor, unsigned role, std::uint8_t phase, bool external);
  void end_post(const std::string& label, std::uint64_t bytes, bool delivered);
  // Captures compute since the last post into the Residue node.  Idempotent
  // in the sense that repeated calls only add whatever ran in between.
  void finalize();

  const std::vector<DagNode>& nodes() const { return nodes_; }
  std::size_t edge_count() const;

  // Sigma over node counts; equals profiler_delta() once finalized.
  CountMatrix recorded_total() const;
  // Profiler counts accumulated in the current task's cell since this
  // recorder was constructed.
  CountMatrix profiler_delta() const;

  // Structural invariants: every edge points strictly backwards (ids are a
  // topological order), every Post node has exactly one Role/External
  // producer, and no undelivered post has a consumer.  Returns false and
  // fills *error on the first violation.
  bool validate(std::string* error = nullptr) const;

  // Deterministic summary: node/edge counts by kind, per-phase node counts.
  std::string report_json() const;

private:
  struct OpenPost {
    std::uint32_t producer = 0;
    std::uint8_t phase = 0;
    bool open = false;
  };

  std::uint32_t add_node(NodeKind kind, std::uint8_t phase, const std::string& actor,
                         unsigned role, std::vector<std::uint32_t> preds);
  CountMatrix take_delta();
  // Activation switch: the posts delivered during the previous activation
  // become the inputs of every node created in the new one.
  void switch_activation(const std::string& actor);

  std::vector<DagNode> nodes_;
  CountMatrix base_;   // profiler counts at construction
  CountMatrix last_;   // profiler counts at the last snapshot
  // Posts delivered during the current activation window (consumers pending).
  std::vector<std::uint32_t> pending_posts_;
  // Inputs consumed by nodes of the current activation: the previous
  // window's delivered posts.
  std::vector<std::uint32_t> board_inputs_;
  // (actor-qualified role key) -> node id, for the current window only.
  std::vector<std::pair<std::string, std::uint32_t>> live_actors_;
  std::string cur_actor_;  // committee currently publishing
  OpenPost open_;
  std::uint32_t residue_ = 0;  // Residue node id once created (0 = none yet)
  bool has_residue_ = false;
};

#else  // OBS_DISABLED

struct CountMatrix {};

enum class NodeKind : std::uint8_t { Role, Post, External, Residue };

struct DagNode {};

class DagRecorder {
public:
  void begin_post(const std::string&, unsigned, std::uint8_t, bool) {}
  void end_post(const std::string&, std::uint64_t, bool) {}
  void finalize() {}
  const std::vector<DagNode>& nodes() const { return nodes_; }
  std::size_t edge_count() const { return 0; }
  bool validate(std::string* = nullptr) const { return true; }
  std::string report_json() const { return "{}"; }

private:
  std::vector<DagNode> nodes_;
};

#endif

}  // namespace yoso::obs::dag
