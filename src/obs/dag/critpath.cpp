#include "obs/dag/critpath.hpp"

#ifndef OBS_DISABLED

#include <algorithm>
#include <queue>

#include "common/json.hpp"

namespace yoso::obs::dag {

namespace {

// Reference cost table: model-us per op call, fitted from a Release run of
// `tools/perf record` (self-time / count averages at the CI sweep sizes).
// Committed as constants so every critpath figure is a pure function of the
// seeded run — the absolute scale is one machine's, the *structure* (work
// ratios, span, forecast curve) is what the gates consume.  Indexed by Op;
// keep in sync with the enum (static_assert below).
// SELF-microseconds per call (nested profiled ops are counted separately,
// so coefficients must not re-include them — a PaillierEnc prices its two
// powms through the CtPowm rows, not here).  Fitted from a Release
// `trace costs --seed 7 --n 8` run on the CI machine class; re-fit with
// `trace critpath --measured` locally when hardware shifts.
constexpr double kReferenceUsPerOp[] = {
    40.0,    // CtPowmSec: constant-time modexp, the dominant primitive
    18.0,    // CtPowmPub: public-exponent modexp
    1.0,     // CtModInverse
    0.6,     // PaillierEnc: glue around its two counted powms
    1.0,     // PaillierEncSecret
    10.0,    // PaillierDec
    0.7,     // PaillierEval: ct-ct add/scal chains
    0.2,     // PaillierTpdec: glue around the counted powm_sec
    0.6,     // PaillierExtractRoot
    0.3,     // PaillierAdd: modular mul of ciphertexts (count-only)
    1.0,     // PaillierScal: ct^s (count-only)
    2.0,     // PaillierScalSecret (count-only)
    1.5,     // PaillierRerandomize (count-only)
    15.0,    // NizkProve: Chaum-Pedersen / mult proof glue
    19.0,    // NizkVerify
    4.0,     // SharePack: packed-poly evaluation over n points
    4.0,     // ShareUnpack: Lagrange reconstruction
    0.02,    // FieldMul: single 61-bit field multiply (count-only)
    0.3,     // FieldInv: Fermat inversion chain (count-only)
    1.3,     // CodecEncode: serialize one tagged wire message
    1.3,     // CodecDecode: parse + checksum one tagged wire message
};

static_assert(sizeof(kReferenceUsPerOp) / sizeof(kReferenceUsPerOp[0]) == kOpCount,
              "reference cost table must cover every Op");

constexpr const char* kPhaseKeys[3] = {"setup", "offline", "online"};

}  // namespace

const CostCoeffs& CostCoeffs::reference_table() {
  static const CostCoeffs table = [] {
    CostCoeffs c;
    for (unsigned o = 0; o < kOpCount; ++o) c.us_per_op[o] = kReferenceUsPerOp[o];
    c.reference = true;
    return c;
  }();
  return table;
}

CostCoeffs CostCoeffs::measured(const InstrumentCell& cell) {
  CostCoeffs c;
  c.reference = false;
  for (unsigned o = 0; o < kOpCount; ++o) {
    const Op op = static_cast<Op>(o);
    const std::uint64_t count = cell.op_total_count(op);
    const std::uint64_t self_ns = cell.op_total_self_ns(op);
    c.us_per_op[o] = (count > 0 && self_ns > 0)
                         ? static_cast<double>(self_ns) / (1e3 * static_cast<double>(count))
                         : kReferenceUsPerOp[o];
  }
  return c;
}

double node_work_us(const DagNode& node, const CostCoeffs& coeffs) {
  double work = 0;
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) {
      const std::uint64_t count = node.counts.v[p][o];
      if (count != 0) work += static_cast<double>(count) * coeffs.us_per_op[o];
    }
  }
  return work;
}

std::string node_display_name(const DagNode& node) {
  switch (node.kind) {
    case NodeKind::Role: return "c:" + node.actor + "#" + std::to_string(node.role);
    case NodeKind::Post: return "post:" + node.label;
    case NodeKind::External: return "x:" + node.actor;
    case NodeKind::Residue: return "residue";
  }
  return "?";
}

Schedule list_schedule(const std::vector<DagNode>& nodes, const std::vector<double>& work,
                       unsigned k) {
  Schedule sched;
  const std::size_t n = nodes.size();
  if (n == 0 || k == 0) return sched;

  // Successor lists and downstream-critical-path priorities (ids are a
  // topological order, so one reverse sweep suffices).
  std::vector<std::vector<std::uint32_t>> succs(n);
  std::vector<std::size_t> indeg(n, 0);
  for (const DagNode& node : nodes) {
    indeg[node.id] = node.preds.size();
    for (std::uint32_t p : node.preds) succs[p].push_back(node.id);
  }
  std::vector<double> prio(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    double best = 0;
    for (std::uint32_t s : succs[i]) best = std::max(best, prio[s]);
    prio[i] = work[i] + best;
  }

  // Ready max-heap: highest priority first, smallest id on ties — a total
  // order, so the schedule is deterministic.
  auto ready_less = [&prio](std::uint32_t a, std::uint32_t b) {
    if (prio[a] != prio[b]) return prio[a] < prio[b];
    return a > b;
  };
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, decltype(ready_less)> ready(
      ready_less);

  struct Running {
    double end;
    unsigned worker;
    std::uint32_t node;
  };
  auto running_greater = [](const Running& a, const Running& b) {
    if (a.end != b.end) return a.end > b.end;
    if (a.worker != b.worker) return a.worker > b.worker;
    return a.node > b.node;
  };
  std::priority_queue<Running, std::vector<Running>, decltype(running_greater)> running(
      running_greater);

  // Idle workers, smallest index first.
  std::priority_queue<unsigned, std::vector<unsigned>, std::greater<unsigned>> idle;
  for (unsigned w = 0; w < k; ++w) idle.push(w);

  for (std::uint32_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push(i);
  }

  double t = 0;
  sched.tasks.reserve(n);
  while (!ready.empty() || !running.empty()) {
    while (!ready.empty() && !idle.empty()) {
      const std::uint32_t node = ready.top();
      ready.pop();
      const unsigned w = idle.top();
      idle.pop();
      running.push(Running{t + work[node], w, node});
      sched.tasks.push_back(ScheduledTask{node, w, t, t + work[node]});
    }
    if (running.empty()) break;  // ready non-empty here is impossible: k >= 1
    t = running.top().end;
    while (!running.empty() && running.top().end == t) {
      const Running done = running.top();
      running.pop();
      idle.push(done.worker);
      for (std::uint32_t s : succs[done.node]) {
        if (--indeg[s] == 0) ready.push(s);
      }
    }
    sched.makespan = t;
  }
  return sched;
}

CritReport analyze(const std::vector<DagNode>& nodes, const CostCoeffs& coeffs,
                   const std::vector<unsigned>& ks) {
  CritReport report;
  report.nodes = nodes.size();
  report.reference_costs = coeffs.reference;
  const std::size_t n = nodes.size();

  std::vector<double> work(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    work[i] = node_work_us(nodes[i], coeffs);
    report.total.work += work[i];
    report.edges += nodes[i].preds.size();
  }
  report.total.nodes = n;

  // Longest weighted path (ids are topological).  dist = finish time of the
  // node on an infinite machine; the argmax's backtrack is the critical path.
  std::vector<double> dist(n, 0);
  std::uint32_t sink = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double in = 0;
    for (std::uint32_t p : nodes[i].preds) in = std::max(in, dist[p]);
    dist[i] = in + work[i];
    if (dist[i] > report.total.span) {
      report.total.span = dist[i];
      sink = static_cast<std::uint32_t>(i);
    }
  }
  if (n > 0 && report.total.span > 0) {
    std::uint32_t cur = sink;
    for (;;) {
      report.critical_path.push_back(cur);
      const DagNode& node = nodes[cur];
      if (node.preds.empty()) break;
      std::uint32_t best = node.preds[0];
      for (std::uint32_t p : node.preds) {
        if (dist[p] > dist[best]) best = p;
      }
      if (dist[best] <= 0) break;
      cur = best;
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
  }

  // Per-phase work/span over the phase's induced subgraph (edges with both
  // endpoints in the phase).
  for (unsigned ph = 0; ph < 3; ++ph) {
    PhaseCrit& pc = report.phases[ph];
    std::vector<double> pdist(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (nodes[i].phase != ph) continue;
      ++pc.nodes;
      pc.work += work[i];
      double in = 0;
      for (std::uint32_t p : nodes[i].preds) {
        if (nodes[p].phase == ph) in = std::max(in, pdist[p]);
      }
      pdist[i] = in + work[i];
      pc.span = std::max(pc.span, pdist[i]);
    }
  }

  // Forecast: list-schedule on k workers; running-min over k irons out
  // Graham anomalies (k workers can emulate fewer by idling).
  std::vector<unsigned> sorted_ks = ks;
  std::sort(sorted_ks.begin(), sorted_ks.end());
  sorted_ks.erase(std::unique(sorted_ks.begin(), sorted_ks.end()), sorted_ks.end());
  double best_ms = -1;
  for (unsigned k : sorted_ks) {
    if (k == 0) continue;
    double ms = list_schedule(nodes, work, k).makespan;
    if (best_ms >= 0) ms = std::min(ms, best_ms);
    best_ms = ms;
    ForecastPoint fp;
    fp.k = k;
    fp.makespan = ms;
    fp.speedup = (ms > 0 && report.total.work > 0) ? report.total.work / ms : 1.0;
    report.forecast.push_back(fp);
  }
  return report;
}

namespace {

void write_phase_crit(json::Writer& w, const PhaseCrit& pc) {
  w.begin_object();
  w.field("nodes", static_cast<std::uint64_t>(pc.nodes));
  w.key("work").num(pc.work);
  w.key("span").num(pc.span);
  w.key("parallelism").num(pc.parallelism());
  w.end_object();
}

}  // namespace

std::string crit_report_json(const CritReport& report) {
  json::Writer w;
  w.begin_object();
  w.field("nodes", static_cast<std::uint64_t>(report.nodes));
  w.field("edges", static_cast<std::uint64_t>(report.edges));
  w.field("coeffs", report.reference_costs ? "reference" : "measured");
  w.key("work").num(report.total.work);
  w.key("span").num(report.total.span);
  w.key("parallelism").num(report.total.parallelism());
  w.field("critical_path_nodes", static_cast<std::uint64_t>(report.critical_path.size()));
  w.key("phases").begin_object();
  for (unsigned ph = 0; ph < 3; ++ph) {
    w.key(kPhaseKeys[ph]);
    write_phase_crit(w, report.phases[ph]);
  }
  w.end_object();
  w.key("forecast").begin_object();
  for (const ForecastPoint& fp : report.forecast) {
    std::string key = "k";
    key += std::to_string(fp.k);
    w.key(key).num(fp.speedup);
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string critpath_perfetto_json(const std::vector<DagNode>& nodes, const CostCoeffs& coeffs,
                                   unsigned lanes_k) {
  const std::size_t n = nodes.size();
  std::vector<double> work(n, 0);
  for (std::size_t i = 0; i < n; ++i) work[i] = node_work_us(nodes[i], coeffs);
  const CritReport report = analyze(nodes, coeffs, {lanes_k == 0 ? 1u : lanes_k});

  json::Writer w;
  w.begin_object();
  w.key("displayTimeUnit").str("ms");
  w.key("traceEvents").begin_array();

  w.begin_object();
  w.field("ph", "M").field("pid", 2).field("tid", 1).field("name", "process_name");
  w.key("args").begin_object().field("name", "yoso-critpath").end_object();
  w.end_object();
  w.begin_object();
  w.field("ph", "M").field("pid", 2).field("tid", 1).field("name", "thread_name");
  w.key("args").begin_object().field("name", "critical path").end_object();
  w.end_object();

  // The critical path as one sequential track: each node at its finish-time
  // offset on the infinite-machine timeline.
  double cursor = 0;
  for (std::uint32_t id : report.critical_path) {
    const DagNode& node = nodes[id];
    w.begin_object();
    w.field("ph", "X").field("pid", 2).field("tid", 1);
    w.field("name", node_display_name(node)).field("cat", "critpath");
    w.key("ts").num(cursor);
    w.key("dur").num(work[id]);
    w.key("args").begin_object();
    w.field("kind", node_kind_name(node.kind));
    w.field("node", static_cast<std::uint64_t>(id));
    w.key("work_model_us").num(work[id]);
    if (node.kind == NodeKind::Post) w.field("bytes", node.bytes);
    w.end_object();
    w.end_object();
    cursor += work[id];
  }

  // k-worker forecast lanes: where the list scheduler placed every node.
  const unsigned k = lanes_k == 0 ? 1u : lanes_k;
  const Schedule sched = list_schedule(nodes, work, k);
  for (unsigned lane = 0; lane < k; ++lane) {
    w.begin_object();
    w.field("ph", "M").field("pid", 2).field("tid", 10 + lane).field("name", "thread_name");
    w.key("args").begin_object();
    w.field("name", "worker " + std::to_string(lane) + "/" + std::to_string(k));
    w.end_object();
    w.end_object();
  }
  for (const ScheduledTask& task : sched.tasks) {
    const DagNode& node = nodes[task.node];
    w.begin_object();
    w.field("ph", "X").field("pid", 2).field("tid", 10 + task.worker);
    w.field("name", node_display_name(node)).field("cat", "forecast");
    w.key("ts").num(task.start);
    w.key("dur").num(task.end - task.start);
    w.key("args").begin_object();
    w.field("kind", node_kind_name(node.kind));
    w.field("node", static_cast<std::uint64_t>(task.node));
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace yoso::obs::dag

#endif  // OBS_DISABLED
