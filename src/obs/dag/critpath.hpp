// Work/span analysis and a parallel-speedup forecaster over the
// happens-before DAG (dag.hpp).
//
// Node weights: each DAG node carries per-(phase, op) counts; a node's work
// is Sigma count * coefficient.  The default coefficient table is a FIXED
// reference (kReferenceUsPerOp below, fitted once from a Release run on the
// CI machine class) so the whole analysis — work, span, forecast curve —
// is a pure function of the seeded run: byte-identical across replays,
// machines, and enabled-vs-muted obs.  `CostCoeffs::measured` swaps in the
// live self-time averages for local what-does-MY-machine-say runs; exports
// label which table produced them.
//
// Work  = Sigma over nodes of work(node)          (one-worker runtime)
// Span  = longest weighted path through the DAG   (infinite-worker runtime)
// Parallelism = work / span                       (the speedup ceiling)
//
// The forecaster replays the DAG on k virtual workers with deterministic
// list scheduling: ready nodes are dispatched by longest-downstream-path
// priority (critical-path scheduling), ties broken by node id, workers by
// index.  speedup(k) = work / makespan(k).  Greedy list scheduling is not
// monotone in k in general (Graham anomalies), so makespan(k) is reported
// as the running minimum over k' <= k — k workers can always emulate fewer
// by idling — which CI gates as: speedup non-decreasing, <= k, and <= the
// parallelism ceiling.
//
// This is the measurable target for ROADMAP §3: the thread pool, once it
// exists, must approach forecast(k) on the same seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/dag/dag.hpp"

namespace yoso::obs::dag {

#ifndef OBS_DISABLED

struct CostCoeffs {
  double us_per_op[kOpCount] = {};
  bool reference = true;  // fixed table vs live-measured

  // The committed reference table (deterministic everywhere).
  static const CostCoeffs& reference_table();
  // Live self-time averages from `cell` (self_ns / count per op), falling
  // back to the reference value for ops the run never timed.  Requires an
  // enabled run; results are machine-dependent.
  static CostCoeffs measured(const InstrumentCell& cell);
};

// Sigma over (phase, op) of count * coefficient, in model-us.
double node_work_us(const DagNode& node, const CostCoeffs& coeffs);

struct PhaseCrit {
  std::size_t nodes = 0;
  double work = 0;  // model-us
  double span = 0;  // model-us
  double parallelism() const { return span > 0 ? work / span : 1.0; }
};

struct ForecastPoint {
  unsigned k = 1;
  double makespan = 0;  // model-us, running-min over k' <= k
  double speedup = 1;   // work / makespan
};

// One task placement from the list-scheduling simulation.
struct ScheduledTask {
  std::uint32_t node = 0;
  unsigned worker = 0;
  double start = 0;  // model-us
  double end = 0;
};

struct Schedule {
  double makespan = 0;
  std::vector<ScheduledTask> tasks;  // in dispatch order
};

struct CritReport {
  PhaseCrit total;
  PhaseCrit phases[3];  // setup / offline / online subgraphs
  std::vector<std::uint32_t> critical_path;  // node ids, source -> sink
  std::vector<ForecastPoint> forecast;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  bool reference_costs = true;
};

inline const std::vector<unsigned>& default_forecast_ks() {
  static const std::vector<unsigned> ks = {1, 2, 4, 8, 16};
  return ks;
}

// Deterministic k-worker replay of the DAG (critical-path list scheduling).
Schedule list_schedule(const std::vector<DagNode>& nodes, const std::vector<double>& work,
                       unsigned k);

CritReport analyze(const std::vector<DagNode>& nodes, const CostCoeffs& coeffs,
                   const std::vector<unsigned>& ks = default_forecast_ks());

// {"nodes","edges","work","span","parallelism","phases":{...},
//  "forecast":{"k1":...}} — deterministic with reference coefficients; the
// field names carry no .bytes/_us suffix so the perf baseline gates them
// exactly.
std::string crit_report_json(const CritReport& report);

// Standalone Chrome-trace document: the critical path as its own track plus
// one lane per virtual worker of the k-worker schedule (model-us
// timestamps).  Loads in Perfetto next to the run trace.
std::string critpath_perfetto_json(const std::vector<DagNode>& nodes, const CostCoeffs& coeffs,
                                   unsigned lanes_k);

// Display name for a DAG node ("c:off.beaver#3", "post:beaver.a", ...).
std::string node_display_name(const DagNode& node);

#else  // OBS_DISABLED

struct CostCoeffs {
  static const CostCoeffs& reference_table() {
    static const CostCoeffs c;
    return c;
  }
};

struct PhaseCrit {
  double work = 0;
  double span = 0;
  double parallelism() const { return 1.0; }
};

struct CritReport {
  PhaseCrit total;
};

inline CritReport analyze(const std::vector<DagNode>&, const CostCoeffs&) { return {}; }

inline std::string crit_report_json(const CritReport&) { return "{}"; }

#endif

}  // namespace yoso::obs::dag
