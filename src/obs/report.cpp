#include "obs/report.hpp"

#include "common/json.hpp"
#include "mpc/failure.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "yoso/bulletin.hpp"

namespace yoso::obs {

std::string run_metadata_json() {
  json::Writer w;
  w.begin_object();
  w.field("obs_generation", kObsGeneration);
#ifdef NDEBUG
  w.field("build", "release");
#else
  w.field("build", "debug");
#endif
#ifdef OBS_DISABLED
  w.field("obs_disabled", true);
#else
  w.field("obs_disabled", false);
#endif
  w.end_object();
  return w.take();
}

std::string run_report_json(const Bulletin& board, const FailureReport* failure) {
  json::Writer w;
  w.begin_object();
  w.key("meta").raw(run_metadata_json());
  w.key("board").raw(board.report_json());
#ifndef OBS_DISABLED
  w.key("metrics").raw(metrics().report_json());
  // Per-primitive op counts with per-phase attribution (src/obs/profile.hpp).
  // Counts only — deterministic, so run reports stay byte-identical across
  // replays; measured self-times live in the op_costs bench key instead.
  w.key("op_costs").raw(profiler().op_costs_json(false));
#else
  w.key("metrics").begin_object().end_object();
  w.key("op_costs").begin_object().end_object();
#endif
  if (failure != nullptr) w.key("failure").raw(failure->to_json());
  w.end_object();
  return w.take();
}

namespace {

bool fail(std::string* error, std::string what) {
  if (error != nullptr) *error = std::move(what);
  return false;
}

bool is_num(const json::Value* v) { return v != nullptr && v->is_number(); }

}  // namespace

bool validate_trace_json(const std::string& text, std::string* error) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    return fail(error, e.what());
  }
  if (!doc.is_object()) return fail(error, "document is not an object");
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail(error, "missing traceEvents array");
  }
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const json::Value& ev = events->items[i];
    const std::string at = " in event " + std::to_string(i);
    if (!ev.is_object()) return fail(error, "event is not an object" + at);
    const json::Value* name = ev.find("name");
    if (name == nullptr || !name->is_string()) return fail(error, "missing name" + at);
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string()) return fail(error, "missing ph" + at);
    const std::string& p = ph->text;
    if (p != "X" && p != "M" && p != "i" && p != "C" && p != "B" && p != "E") {
      return fail(error, "unknown ph '" + p + "'" + at);
    }
    if (!is_num(ev.find("pid")) || !is_num(ev.find("tid"))) {
      return fail(error, "missing pid/tid" + at);
    }
    if (p == "X") {
      const json::Value* ts = ev.find("ts");
      const json::Value* dur = ev.find("dur");
      if (!is_num(ts)) return fail(error, "X event missing ts" + at);
      if (!is_num(dur)) return fail(error, "X event missing dur" + at);
      if (ts->number < 0) return fail(error, "negative ts" + at);
      if (dur->number < 0) return fail(error, "negative dur" + at);
    }
  }
  return true;
}

}  // namespace yoso::obs
