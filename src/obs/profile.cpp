#include "obs/profile.hpp"

#ifndef OBS_DISABLED

#include <algorithm>
#include <chrono>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace yoso::obs {

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The current task's cell.  Thread-local so each worker of the future
// multi-core engine records without synchronization; merge-on-join folds
// the cells back deterministically (docs/STATIC_ANALYSIS.md).
thread_local InstrumentCell* tls_cell = nullptr;

// Process peak RSS in bytes; 0 when the platform has no getrusage.
std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage ru = {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  struct rusage ru = {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#else
  return 0;
#endif
}

constexpr const char* kOpNames[kOpCount] = {
    "ct.powm_sec",           // CtPowmSec
    "ct.powm_pub",           // CtPowmPub
    "ct.mod_inverse",        // CtModInverse
    "paillier.enc",          // PaillierEnc
    "paillier.enc_secret",   // PaillierEncSecret
    "paillier.dec",          // PaillierDec
    "paillier.eval",         // PaillierEval
    "paillier.tpdec",        // PaillierTpdec
    "paillier.extract_root", // PaillierExtractRoot
    "paillier.add",          // PaillierAdd
    "paillier.scal",         // PaillierScal
    "paillier.scal_secret",  // PaillierScalSecret
    "paillier.rerandomize",  // PaillierRerandomize
    "nizk.prove",            // NizkProve
    "nizk.verify",           // NizkVerify
    "share.pack",            // SharePack
    "share.unpack",          // ShareUnpack
    "field.mul",             // FieldMul
    "field.inv",             // FieldInv
    "codec.encode",          // CodecEncode
    "codec.decode",          // CodecDecode
};

constexpr const char* kPhaseCtxNames[kPhaseCtxCount] = {
    "setup", "offline", "online", "cdn", "other",
};

// Op indices in lexicographic name order, so every JSON export is sorted
// without a per-call sort of strings.
const std::vector<unsigned>& sorted_op_order() {
  static const std::vector<unsigned> order = [] {
    std::vector<unsigned> idx(kOpCount);
    for (unsigned i = 0; i < kOpCount; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [](unsigned a, unsigned b) {
      return std::string_view(kOpNames[a]) < std::string_view(kOpNames[b]);
    });
    return idx;
  }();
  return order;
}

}  // namespace

const char* op_name(Op op) { return kOpNames[static_cast<unsigned>(op)]; }

const char* phase_ctx_name(PhaseCtx ctx) {
  return kPhaseCtxNames[static_cast<unsigned>(ctx)];
}

void InstrumentCell::merge(const InstrumentCell& other) {
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) {
      counts_[p][o] += other.counts_[p][o];
      self_ns_[p][o] += other.self_ns_[p][o];
    }
    phase_wall_ns_[p] += other.phase_wall_ns_[p];
    // Peak RSS is a process-wide high-water mark, not an accumulator: the
    // max over cells is the max the process saw, a sum would double-count.
    if (other.mem_peak_bytes_[p] > mem_peak_bytes_[p]) {
      mem_peak_bytes_[p] = other.mem_peak_bytes_[p];
    }
  }
  for (unsigned o = 0; o < kOpCount; ++o) {
    for (int b = 0; b < kHistBuckets; ++b) hist_[o][b] += other.hist_[o][b];
  }
}

void InstrumentCell::reset() {
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    for (unsigned o = 0; o < kOpCount; ++o) {
      counts_[p][o] = 0;
      self_ns_[p][o] = 0;
    }
    phase_wall_ns_[p] = 0;
    mem_peak_bytes_[p] = 0;
  }
  for (unsigned o = 0; o < kOpCount; ++o) {
    for (int b = 0; b < kHistBuckets; ++b) hist_[o][b] = 0;
  }
  ctx_ = PhaseCtx::Other;
  open_ = nullptr;
}

std::uint64_t InstrumentCell::op_total_count(Op op) const {
  std::uint64_t total = 0;
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    total += counts_[p][static_cast<unsigned>(op)];
  }
  return total;
}

std::uint64_t InstrumentCell::op_total_self_ns(Op op) const {
  std::uint64_t total = 0;
  for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
    total += self_ns_[p][static_cast<unsigned>(op)];
  }
  return total;
}

std::string InstrumentCell::snapshot_json(bool include_wall) const {
  json::Writer w;
  w.begin_object();
  w.key("ops").begin_object();
  for (unsigned o : sorted_op_order()) {
    const Op op = static_cast<Op>(o);
    const std::uint64_t total = op_total_count(op);
    if (total == 0) continue;
    w.key(kOpNames[o]).begin_object();
    w.field("count", total);
    if (include_wall) {
      w.field("self_us", static_cast<double>(op_total_self_ns(op)) / 1e3);
    }
    w.key("by_phase").begin_object();
    for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
      if (counts_[p][o] == 0) continue;
      w.key(kPhaseCtxNames[p]).begin_object();
      w.field("count", counts_[p][o]);
      if (include_wall) {
        w.field("self_us", static_cast<double>(self_ns_[p][o]) / 1e3);
      }
      w.end_object();
    }
    w.end_object();
    if (include_wall) {
      // Sparse log2 histogram of per-call *total* elapsed ns, matching the
      // metrics registry's [upper_bound, count] export shape.
      w.key("hist_ns").begin_array();
      for (int b = 0; b < kHistBuckets; ++b) {
        if (hist_[o][b] == 0) continue;
        w.begin_array().num(Histogram::bucket_max(b)).num(hist_[o][b]).end_array();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  if (include_wall) {
    w.key("phase_wall_us").begin_object();
    for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
      if (phase_wall_ns_[p] == 0) continue;
      w.field(kPhaseCtxNames[p], static_cast<double>(phase_wall_ns_[p]) / 1e3);
    }
    w.end_object();
    w.key("mem_peak_bytes").begin_object();
    for (unsigned p = 0; p < kPhaseCtxCount; ++p) {
      if (mem_peak_bytes_[p] == 0) continue;
      w.field(kPhaseCtxNames[p], mem_peak_bytes_[p]);
    }
    w.end_object();
  }
  w.end_object();
  return w.take();
}

InstrumentCell& Profiler::cell() { return tls_cell != nullptr ? *tls_cell : root_; }

InstrumentCell* Profiler::install_cell(InstrumentCell* c) {
  InstrumentCell* prev = tls_cell;
  tls_cell = c;
  return prev;
}

void Profiler::reset() {
  root_.reset();
  track_.clear();
}

void Profiler::sample_op_tracks(double t) {
  const InstrumentCell& c = cell();
  for (unsigned o : sorted_op_order()) {
    const Op op = static_cast<Op>(o);
    const std::uint64_t total = c.op_total_count(op);
    if (total == 0) continue;
    track_.push_back(OpTrackSample{t, op, total});
  }
}

Profiler& profiler() {
  static Profiler p;
  return p;
}

ScopedOpContext::ScopedOpContext(PhaseCtx ctx)
    : cell_(&profiler().cell()), prev_(cell_->ctx_), ctx_(ctx), wall_start_ns_(0) {
  // Context switching is unconditional so counts attribute identically in
  // muted and enabled runs; only the timing side is gated.
  cell_->ctx_ = ctx;
  if (enabled()) wall_start_ns_ = wall_now_ns();
}

ScopedOpContext::~ScopedOpContext() {
  if (enabled()) {
    if (wall_start_ns_ != 0) {
      cell_->phase_wall_ns_[static_cast<unsigned>(ctx_)] += wall_now_ns() - wall_start_ns_;
    }
    const std::uint64_t rss = peak_rss_bytes();
    const unsigned pc = static_cast<unsigned>(ctx_);
    if (rss > cell_->mem_peak_bytes_[pc]) cell_->mem_peak_bytes_[pc] = rss;
    const double vt = tracer().virtual_now();
    if (vt >= 0) profiler().sample_op_tracks(vt);
  }
  cell_->ctx_ = prev_;
}

OpTimer::OpTimer(Op op, std::uint64_t delta)
    : cell_(&profiler().cell()), parent_(nullptr), op_(op), delta_(delta) {
  cell_->count(op_, delta_);
  if (enabled()) {
    timed_ = true;
    parent_ = cell_->open_;
    cell_->open_ = this;
    start_ns_ = wall_now_ns();
  }
}

OpTimer::~OpTimer() {
  if (!timed_) return;
  const std::uint64_t elapsed = wall_now_ns() - start_ns_;
  const std::uint64_t self = elapsed > child_ns_ ? elapsed - child_ns_ : 0;
  cell_->self_ns_[static_cast<unsigned>(cell_->ctx_)][static_cast<unsigned>(op_)] += self;
  cell_->hist_[static_cast<unsigned>(op_)][Histogram::bucket_of(elapsed)] += 1;
  cell_->open_ = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
}

}  // namespace yoso::obs

#endif  // OBS_DISABLED
