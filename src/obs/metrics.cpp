#include "obs/metrics.hpp"

#ifndef OBS_DISABLED

#include <bit>

#include "common/json.hpp"

namespace yoso::obs {

int Histogram::bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  return 64 - std::countl_zero(v);  // 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
}

std::uint64_t Histogram::bucket_max(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

void Histogram::observe(std::uint64_t v) {
  if (!enabled()) return;
  buckets_[bucket_of(v)] += 1;
  count_ += 1;
  sum_ += v;
  if (v > max_) max_ = v;
}

void Histogram::reset() {
  for (auto& b : buckets_) b = 0;
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

Counter& Metrics::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Metrics::reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Metrics::report_json() const {
  MutexLock lock(&mu_);
  json::Writer w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.field("count", h->count()).field("sum", h->sum()).field("max", h->max());
    w.key("buckets").begin_array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h->bucket(b) == 0) continue;  // sparse: only occupied buckets
      w.begin_array().num(Histogram::bucket_max(b)).num(h->bucket(b)).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

Metrics& metrics() {
  static Metrics m;
  return m;
}

}  // namespace yoso::obs

#endif  // OBS_DISABLED
