// Unified run report + trace validation.
//
// run_report_json() is the one JSON document a run leaves behind: the board
// report (posts + ledger), the metrics registry snapshot, and — when the run
// aborted — the structured FailureReport.  Every producer (tools/trace run,
// the chaos campaign, bench_obs) emits this same shape, so downstream
// tooling parses one schema instead of three.
//
// validate_trace_json() is the schema check behind `tools/trace check` and
// tests/obs_test: it parses a Chrome trace-event document and verifies the
// fields Perfetto actually requires.
#pragma once

#include <string>

namespace yoso {
class Bulletin;
struct FailureReport;
}  // namespace yoso

namespace yoso::obs {

// {"board":{...},"metrics":{...}[,"failure":{...}]}
// Under OBS_DISABLED the metrics section is an empty object.
std::string run_report_json(const Bulletin& board, const FailureReport* failure = nullptr);

// Validates a Chrome trace-event JSON document:
//   * parses as an object with a `traceEvents` array;
//   * every event has string `name`/`ph` and numeric `pid`/`tid`;
//   * `ph` is one of X M i C B E;
//   * X events carry numeric ts >= 0 and dur >= 0.
// On failure returns false and, if `error` is non-null, a description.
bool validate_trace_json(const std::string& text, std::string* error = nullptr);

}  // namespace yoso::obs
