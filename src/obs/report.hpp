// Unified run report + trace validation.
//
// run_report_json() is the one JSON document a run leaves behind: the board
// report (posts + ledger), the metrics registry snapshot, and — when the run
// aborted — the structured FailureReport.  Every producer (tools/trace run,
// the chaos campaign, bench_obs) emits this same shape, so downstream
// tooling parses one schema instead of three.
//
// validate_trace_json() is the schema check behind `tools/trace check` and
// tests/obs_test: it parses a Chrome trace-event document and verifies the
// fields Perfetto actually requires.
#pragma once

#include <string>

namespace yoso {
class Bulletin;
struct FailureReport;
}  // namespace yoso

namespace yoso::obs {

// Observability schema generation.  Bumped whenever the shape of exported
// documents changes incompatibly (new op enum entries, new report keys):
// tools comparing two recordings (`trace diff`, baseline checks) warn when
// generations differ instead of reporting spurious behavioral deltas.
//   1 — PR 9 compute observatory (op_costs, profile keys)
//   2 — PR 10 causality observatory (run metadata, codec ops, dag/critpath)
inline constexpr int kObsGeneration = 2;

// {"obs_generation":2,"build":"release|debug","obs_disabled":false}
// The self-describing header stamped into every report/trace document so
// cross-run comparisons know what produced them.
std::string run_metadata_json();

// {"meta":{...},"board":{...},"metrics":{...}[,"failure":{...}]}
// Under OBS_DISABLED the metrics section is an empty object.
std::string run_report_json(const Bulletin& board, const FailureReport* failure = nullptr);

// Validates a Chrome trace-event JSON document:
//   * parses as an object with a `traceEvents` array;
//   * every event has string `name`/`ph` and numeric `pid`/`tid`;
//   * `ph` is one of X M i C B E;
//   * X events carry numeric ts >= 0 and dur >= 0.
// On failure returns false and, if `error` is non-null, a description.
bool validate_trace_json(const std::string& text, std::string* error = nullptr);

}  // namespace yoso::obs
