// The CDN-style YOSO MPC baseline (Gentry et al. [29], Braun et al. [10]):
// every wire value stays encrypted under tpk, and every multiplication gate
// consumes a Beaver triple plus two *public threshold decryptions*, each
// requiring n partial decryptions with proofs.
//
// The offline phase prepares the encrypted Beaver triples (the most
// favourable split for the baseline); the online phase still pays
// Theta(n) broadcast elements per gate because each masked value needs n
// partials to open — this is the cost the paper's packed protocol removes.
// This module exists so the benchmarks can regenerate the paper's
// comparison (online O(n) per gate vs. our O(1)).
#pragma once

#include <deque>
#include <optional>

#include "circuit/circuit.hpp"
#include "mpc/reencrypt.hpp"
#include "mpc/setup.hpp"

namespace yoso {

struct CdnResult {
  std::vector<mpz_class> outputs;  // in circuit.outputs() order
};

class CdnBaseline {
public:
  // `board` optionally substitutes a custom Bulletin (e.g. net::NetBulletin);
  // it must outlive the CdnBaseline and wrap its own Ledger.
  CdnBaseline(ProtocolParams params, Circuit circuit, AdversaryPlan plan, std::uint64_t seed,
              Bulletin* board = nullptr);

  // Offline: threshold key setup + encrypted Beaver triples.
  void preprocess();
  // Online: encrypted inputs, homomorphic additions, two threshold
  // decryptions per multiplication, re-encrypted outputs.
  CdnResult evaluate(const std::vector<std::vector<mpz_class>>& inputs);
  CdnResult run(const std::vector<std::vector<mpz_class>>& inputs);

  const Ledger& ledger() const { return board_->ledger(); }
  const ProtocolParams& params() const { return params_; }
  const mpz_class& plaintext_modulus() const;

private:
  Committee& spawn(const std::string& name, unsigned plain_bits);

  ProtocolParams params_;
  Circuit circuit_;
  AdversaryPlan plan_;
  Rng rng_;
  Ledger ledger_;          // backs own_board_ (unused with an external board)
  Bulletin own_board_;
  Bulletin* board_;        // the board every phase publishes to
  unsigned committee_counter_ = 0;

  std::deque<Committee> committees_;
  std::optional<ThresholdKeys> tkeys_;
  std::optional<DecryptChain> chain_;
  std::vector<PaillierSK> client_keys_;
  struct Triple {
    mpz_class a, b, c;
  };
  std::vector<Triple> triples_;          // one per mul gate, in gate order
  std::vector<Committee*> layer_holders_;
  Committee* out_masker_ = nullptr;
  Committee* out_holder_ = nullptr;
  bool preprocessed_ = false;
  bool evaluated_ = false;
};

}  // namespace yoso
