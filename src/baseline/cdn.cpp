#include "baseline/cdn.hpp"

#include "field/zn_ring.hpp"
#include "mpc/contrib.hpp"
#include "nizk/plaintext_proof.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace yoso {

CdnBaseline::CdnBaseline(ProtocolParams params, Circuit circuit, AdversaryPlan plan,
                         std::uint64_t seed, Bulletin* board)
    : params_(params), circuit_(std::move(circuit)), plan_(std::move(plan)), rng_(seed),
      own_board_(ledger_), board_(board != nullptr ? board : &own_board_) {
  params_.planned_epochs = circuit_.mul_depth() + 2;
  params_.validate();
  if (plan_.n() != params_.n) throw std::invalid_argument("CdnBaseline: plan size != n");
}

Committee& CdnBaseline::spawn(const std::string& name, unsigned plain_bits) {
  unsigned s = params_.exponent_for(plain_bits);
  committees_.push_back(make_committee(name, params_.paillier_bits, s,
                                       plan_.committee(committee_counter_++), rng_));
  board_->on_committee_spawn(committees_.back());
  return committees_.back();
}

void CdnBaseline::preprocess() {
  if (preprocessed_) throw std::logic_error("CdnBaseline: preprocess called twice");
  preprocessed_ = true;

  obs::Span span("cdn.preprocess", "cdn");
  obs::ScopedOpContext op_ctx(obs::PhaseCtx::Cdn);
  span.attr("n", params_.n);
  ThresholdKeys keys = tkgen(params_.paillier_bits, params_.s, params_.n, params_.t, rng_);
  tkeys_ = keys;
  board_->publish_external("dealer", Phase::Setup, "setup.tpk",
                             mpz_wire_size(keys.tpk.pk.n), 1 + params_.n);
  for (unsigned c = 0; c < circuit_.num_clients(); ++c) {
    client_keys_.push_back(paillier_keygen(
        params_.paillier_bits, params_.exponent_for(params_.client_plain_bits()), rng_,
        /*safe_primes=*/false));
  }
  chain_.emplace(keys.tpk, keys.shares, params_, *board_, rng_);

  const unsigned tiny = params_.paillier_bits;
  Committee& beaver_a = spawn("cdn.beaver.a", tiny);
  Committee& beaver_b = spawn("cdn.beaver.b", tiny);
  for (unsigned l = 1; l <= circuit_.mul_depth(); ++l) {
    layer_holders_.push_back(&spawn("cdn.holder.L" + std::to_string(l),
                                    params_.holder_plain_bits()));
  }
  out_masker_ = &spawn("cdn.out.mask", tiny);
  out_holder_ = &spawn("cdn.out.holder", params_.holder_plain_bits());

  std::size_t mul_count = circuit_.num_mul_gates();
  if (mul_count > 0) {
    auto triples = make_beaver_triples(tkeys_->tpk, beaver_a, beaver_b, mul_count,
                                       Phase::Offline, *board_, rng_);
    triples_.reserve(mul_count);
    for (auto& t : triples) triples_.push_back(Triple{t.a, t.b, t.c});
  }
}

CdnResult CdnBaseline::evaluate(const std::vector<std::vector<mpz_class>>& inputs) {
  if (!preprocessed_) throw std::logic_error("CdnBaseline: evaluate before preprocess");
  if (evaluated_) throw std::logic_error("CdnBaseline: evaluate called twice");
  evaluated_ = true;

  obs::Span span("cdn.evaluate", "cdn");
  obs::ScopedOpContext op_ctx(obs::PhaseCtx::Cdn);
  span.attr("n", params_.n).attr("gates", circuit_.gates().size());
  const PaillierPK& pk = chain_->tpk().pk;
  ZnRing ring(pk.ns);
  const auto& gates = circuit_.gates();

  // ----- Inputs: clients broadcast encryptions with plaintext proofs -------
  std::vector<mpz_class> wire_ct(gates.size());
  std::vector<std::size_t> next_input(circuit_.num_clients(), 0);
  for (WireId w = 0; w < gates.size(); ++w) {
    if (gates[w].kind != GateKind::Input) continue;
    unsigned c = gates[w].client;
    if (c >= inputs.size() || next_input[c] >= inputs[c].size()) {
      throw std::invalid_argument("CdnBaseline: missing input for client " + std::to_string(c));
    }
    SecretMpz v(ring.mod(inputs[c][next_input[c]++]));
    mpz_class r;
    wire_ct[w] = pk.enc_secret(v, rng_, &r);
    PlaintextProof proof = prove_plaintext(pk, wire_ct[w], v, SecretMpz(r), rng_);
    board_->publish_external("client" + std::to_string(c), Phase::Online, "cdn.input",
                               mpz_wire_size(wire_ct[w]) + proof.wire_bytes(), 1);
  }

  // ----- Gate-by-gate evaluation under encryption ---------------------------
  std::map<WireId, std::size_t> triple_of;
  {
    std::size_t i = 0;
    for (WireId w = 0; w < gates.size(); ++w) {
      if (gates[w].kind == GateKind::Mul) triple_of[w] = i++;
    }
  }
  auto layers = circuit_.mul_layers();
  auto by_layer = circuit_.mul_gates_by_layer();

  // Propagate the linear gates below a given layer.
  auto sweep_linear = [&](unsigned max_layer) {
    for (WireId w = 0; w < gates.size(); ++w) {
      const Gate& g = gates[w];
      if (wire_ct[w] != 0 || layers[w] > max_layer) continue;
      switch (g.kind) {
        case GateKind::Add:
          if (wire_ct[g.in0] != 0 && wire_ct[g.in1] != 0) {
            wire_ct[w] = pk.add(wire_ct[g.in0], wire_ct[g.in1]);
          }
          break;
        case GateKind::Sub:
          if (wire_ct[g.in0] != 0 && wire_ct[g.in1] != 0) {
            wire_ct[w] = pk.add(wire_ct[g.in0], pk.scal(wire_ct[g.in1], -1));
          }
          break;
        case GateKind::AddConst:
          if (wire_ct[g.in0] != 0) {
            wire_ct[w] = pk.add(wire_ct[g.in0], pk.enc(g.constant, mpz_class(1)));
          }
          break;
        case GateKind::MulConst:
          if (wire_ct[g.in0] != 0) wire_ct[w] = pk.scal(wire_ct[g.in0], ring.mod(g.constant));
          break;
        default:
          break;
      }
    }
  };
  sweep_linear(0);

  for (unsigned layer = 1; layer <= by_layer.size(); ++layer) {
    const auto& ids = by_layer[layer - 1];
    std::vector<mpz_class> to_open;
    to_open.reserve(2 * ids.size());
    for (WireId w : ids) {
      const Gate& g = gates[w];
      const Triple& tr = triples_[triple_of[w]];
      to_open.push_back(pk.add(wire_ct[g.in0], tr.a));  // epsilon = x + a
      to_open.push_back(pk.add(wire_ct[g.in1], tr.b));  // delta = y + b
    }
    Committee* next = (layer < by_layer.size()) ? layer_holders_[layer] : out_holder_;
    auto opened = chain_->run_decrypt_committee(*layer_holders_[layer - 1], to_open,
                                                Phase::Online, "cdn.mult", next);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      WireId w = ids[i];
      const Gate& g = gates[w];
      const Triple& tr = triples_[triple_of[w]];
      const mpz_class& eps = opened[2 * i];
      const mpz_class& del = opened[2 * i + 1];
      // x*y = eps*y - a*delta + a*b
      wire_ct[w] = pk.eval({wire_ct[g.in1], tr.a, tr.c}, {eps, ring.neg(del), ring.one()});
    }
    sweep_linear(layer);
  }

  // ----- Outputs: re-encrypt toward the receiving clients ------------------
  std::vector<mpz_class> out_cts;
  std::vector<const PaillierPK*> out_targets;
  for (const auto& spec : circuit_.outputs()) {
    out_cts.push_back(wire_ct[spec.wire]);
    out_targets.push_back(&client_keys_[spec.client].pk);
  }
  auto fcts = chain_->reencrypt_batch(*out_masker_, *out_holder_, out_cts, out_targets,
                                      Phase::Online, "cdn.output", nullptr);
  CdnResult result;
  for (std::size_t r = 0; r < circuit_.outputs().size(); ++r) {
    const auto& spec = circuit_.outputs()[r];
    result.outputs.push_back(open_future(client_keys_[spec.client], fcts[r], pk.ns));
  }
  return result;
}

CdnResult CdnBaseline::run(const std::vector<std::vector<mpz_class>>& inputs) {
  preprocess();
  return evaluate(inputs);
}

const mpz_class& CdnBaseline::plaintext_modulus() const {
  if (!tkeys_) throw std::logic_error("CdnBaseline: no setup yet");
  return tkeys_->tpk.pk.ns;
}

}  // namespace yoso
