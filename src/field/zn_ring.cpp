#include "field/zn_ring.hpp"

#include <stdexcept>

#include "common/ct_math.hpp"

namespace yoso {

ZnRing::Elem ZnRing::inv(const Elem& a) const {
  // Lagrange denominators over public evaluation points; the variable-time
  // mod_inverse funnel is fine here.
  return mod_inverse(mod(a), n_);
}

bool ZnRing::is_unit(const Elem& a) const {
  mpz_class g;
  mpz_class am = mod(a);
  mpz_gcd(g.get_mpz_t(), am.get_mpz_t(), n_.get_mpz_t());
  return g == 1;
}

bool ZnRing::points_ok(const std::vector<std::int64_t>& points) const {
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (!is_unit(from_int(points[i] - points[j]))) return false;
    }
  }
  return true;
}

}  // namespace yoso
