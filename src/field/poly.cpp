#include "field/poly.hpp"

namespace yoso {

mpz_class factorial(unsigned n) {
  mpz_class f;
  mpz_fac_ui(f.get_mpz_t(), n);
  return f;
}

std::vector<mpz_class> integer_lagrange(const std::vector<std::int64_t>& points,
                                        std::int64_t at, const mpz_class& delta) {
  std::vector<mpz_class> out(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    mpq_class acc(delta);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      mpq_class term(mpz_class(static_cast<long>(at - points[j])),
                     mpz_class(static_cast<long>(points[i] - points[j])));
      term.canonicalize();
      acc *= term;
    }
    if (acc.get_den() != 1) {
      throw std::invalid_argument("integer_lagrange: Delta does not clear denominators");
    }
    out[i] = acc.get_num();
  }
  return out;
}

}  // namespace yoso
