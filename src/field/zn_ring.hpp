// The ring Z_N for an RSA-style modulus N (the Paillier plaintext space).
//
// Shamir secret sharing over Z_N requires the differences of evaluation
// points to be units; for evaluation points of magnitude <= n + k << p, q
// this always holds for honestly generated N (checked by `points_ok`).
#pragma once

#include <gmpxx.h>

#include <cstdint>
#include <vector>

#include "crypto/rand.hpp"

namespace yoso {

class ZnRing {
public:
  using Elem = mpz_class;

  ZnRing() : n_(1) {}
  explicit ZnRing(mpz_class n) : n_(std::move(n)) {}

  const mpz_class& modulus() const { return n_; }

  Elem add(const Elem& a, const Elem& b) const { return mod(a + b); }
  Elem sub(const Elem& a, const Elem& b) const { return mod(a - b); }
  Elem mul(const Elem& a, const Elem& b) const { return mod(a * b); }
  Elem neg(const Elem& a) const { return mod(-a); }

  // Multiplicative inverse; precondition: gcd(a, N) == 1.
  Elem inv(const Elem& a) const;

  Elem zero() const { return 0; }
  Elem one() const { return 1; }
  Elem from_int(std::int64_t v) const { return mod(mpz_class(static_cast<long>(v))); }
  bool eq(const Elem& a, const Elem& b) const { return mod(a) == mod(b); }
  bool is_unit(const Elem& a) const;
  Elem random(Rng& rng) const { return rng.below(n_); }

  Elem mod(const Elem& a) const {
    mpz_class r;
    mpz_mod(r.get_mpz_t(), a.get_mpz_t(), n_.get_mpz_t());
    return r;
  }

  // True iff all pairwise differences of the signed points are units mod N
  // (the precondition for Shamir interpolation over Z_N).
  bool points_ok(const std::vector<std::int64_t>& points) const;

private:
  mpz_class n_;
};

}  // namespace yoso
