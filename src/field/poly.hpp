// Polynomial utilities over an abstract ring, plus exact integer Lagrange
// coefficients for the Shoup Delta = n! trick used by threshold decryption.
//
// The ring concept (see Fp61Ring / ZnRing) provides:
//   Elem, add, sub, mul, neg, inv, zero, one, from_int, eq, is_unit.
//
// Evaluation points throughout the library are *signed small integers*:
// packed sharings store secrets at 0, -1, ..., -(k-1) and shares at 1..n.
#pragma once

#include <gmpxx.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/profile.hpp"

namespace yoso {

// Evaluates the polynomial with coefficient vector `coeffs` (low order
// first) at ring element `x` by Horner's rule.
template <typename R>
typename R::Elem poly_eval(const R& ring, const std::vector<typename R::Elem>& coeffs,
                           const typename R::Elem& x) {
  OBS_OP_COUNT_N(FieldMul, coeffs.size());
  typename R::Elem acc = ring.zero();
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = ring.add(ring.mul(acc, x), coeffs[i]);
  }
  return acc;
}

// Lagrange-interpolates the unique polynomial of degree < points.size()
// through (points[i], values[i]) and returns its value at `at`.
// Precondition: pairwise differences of points are units in the ring.
template <typename R>
typename R::Elem lagrange_at(const R& ring, const std::vector<std::int64_t>& points,
                             const std::vector<typename R::Elem>& values, std::int64_t at) {
  if (points.size() != values.size() || points.empty()) {
    throw std::invalid_argument("lagrange_at: size mismatch");
  }
  using Elem = typename R::Elem;
  // 2(m-1) inner + 2 combine muls and one inversion per basis term.
  OBS_OP_COUNT_N(FieldMul, points.size() * 2 * points.size());
  OBS_OP_COUNT_N(FieldInv, points.size());
  Elem result = ring.zero();
  const Elem x = ring.from_int(at);
  for (std::size_t i = 0; i < points.size(); ++i) {
    Elem num = ring.one();
    Elem den = ring.one();
    const Elem xi = ring.from_int(points[i]);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      const Elem xj = ring.from_int(points[j]);
      num = ring.mul(num, ring.sub(x, xj));
      den = ring.mul(den, ring.sub(xi, xj));
    }
    result = ring.add(result, ring.mul(values[i], ring.mul(num, ring.inv(den))));
  }
  return result;
}

// Lagrange basis coefficients: returns L with L[i] = l_i(at), so that the
// interpolated value at `at` is sum_i L[i] * values[i].  Reusable across
// many sharings with the same point set.
template <typename R>
std::vector<typename R::Elem> lagrange_coeffs(const R& ring,
                                              const std::vector<std::int64_t>& points,
                                              std::int64_t at) {
  using Elem = typename R::Elem;
  // 2(m-1) + 1 muls and one inversion per basis coefficient.
  OBS_OP_COUNT_N(FieldMul, points.size() * (2 * points.size() - 1));
  OBS_OP_COUNT_N(FieldInv, points.size());
  std::vector<Elem> out(points.size());
  const Elem x = ring.from_int(at);
  for (std::size_t i = 0; i < points.size(); ++i) {
    Elem num = ring.one();
    Elem den = ring.one();
    const Elem xi = ring.from_int(points[i]);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      const Elem xj = ring.from_int(points[j]);
      num = ring.mul(num, ring.sub(x, xj));
      den = ring.mul(den, ring.sub(xi, xj));
    }
    out[i] = ring.mul(num, ring.inv(den));
  }
  return out;
}

// Interpolates coefficient form: returns the coefficient vector (low order
// first) of the unique polynomial of degree < points.size() through the
// given (point, value) pairs.  O(m^2); used at setup time only.
template <typename R>
std::vector<typename R::Elem> interpolate_coeffs(const R& ring,
                                                 const std::vector<std::int64_t>& points,
                                                 const std::vector<typename R::Elem>& values) {
  using Elem = typename R::Elem;
  const std::size_t m = points.size();
  if (values.size() != m || m == 0) throw std::invalid_argument("interpolate_coeffs: size");
  // Divided differences: m(m-1)/2 mul+inv pairs; expansion: ~m^2 muls.
  OBS_OP_COUNT_N(FieldMul, m * (m - 1) / 2 + m * m);
  OBS_OP_COUNT_N(FieldInv, m * (m - 1) / 2);
  // Newton's divided differences.
  std::vector<Elem> xs(m);
  for (std::size_t i = 0; i < m; ++i) xs[i] = ring.from_int(points[i]);
  std::vector<Elem> dd = values;  // dd[i] becomes the i-th divided difference
  for (std::size_t level = 1; level < m; ++level) {
    for (std::size_t i = m - 1; i >= level; --i) {
      Elem num = ring.sub(dd[i], dd[i - 1]);
      Elem den = ring.sub(xs[i], xs[i - level]);
      dd[i] = ring.mul(num, ring.inv(den));
      if (i == level) break;
    }
  }
  // Expand the Newton form into monomial coefficients.
  std::vector<Elem> coeffs(m, ring.zero());
  std::vector<Elem> basis{ring.one()};  // product (x - x_0)...(x - x_{j-1})
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t c = 0; c < basis.size(); ++c) {
      coeffs[c] = ring.add(coeffs[c], ring.mul(dd[j], basis[c]));
    }
    if (j + 1 < m) {
      // basis *= (x - x_j)
      std::vector<Elem> next(basis.size() + 1, ring.zero());
      for (std::size_t c = 0; c < basis.size(); ++c) {
        next[c + 1] = ring.add(next[c + 1], basis[c]);
        next[c] = ring.add(next[c], ring.mul(basis[c], ring.neg(xs[j])));
      }
      basis = std::move(next);
    }
  }
  return coeffs;
}

// Exact integer-scaled Lagrange coefficients for the Shoup trick: returns
// lambda[i] = Delta * l_i(at) as exact integers, where l_i is the Lagrange
// basis for the given distinct nonzero points and Delta = delta_factorial.
// Precondition: Delta * l_i(at) is integral (guaranteed when Delta = n! and
// points are distinct integers in [-(k-1), n]).
std::vector<mpz_class> integer_lagrange(const std::vector<std::int64_t>& points,
                                        std::int64_t at, const mpz_class& delta);

// Delta = n!.
mpz_class factorial(unsigned n);

}  // namespace yoso
