// Fast prime field F_p for p = 2^61 - 1 (a Mersenne prime).
//
// This field backs the information-theoretic sharing layer, property tests,
// and any protocol component that does not need the Paillier plaintext ring.
// Elements are stored in canonical form, i.e. in [0, p).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/rand.hpp"

namespace yoso {

class Fp61 {
public:
  using Elem = std::uint64_t;

  static constexpr Elem kModulus = (std::uint64_t{1} << 61) - 1;

  // Reduces an arbitrary 64-bit value into canonical form.
  static constexpr Elem reduce(std::uint64_t x) {
    x = (x & kModulus) + (x >> 61);
    if (x >= kModulus) x -= kModulus;
    return x;
  }

  static constexpr Elem add(Elem a, Elem b) {
    std::uint64_t s = a + b;  // < 2^62, no overflow
    if (s >= kModulus) s -= kModulus;
    return s;
  }

  static constexpr Elem sub(Elem a, Elem b) { return a >= b ? a - b : a + kModulus - b; }

  static constexpr Elem neg(Elem a) { return a == 0 ? 0 : kModulus - a; }

  static Elem mul(Elem a, Elem b) {
    unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
    std::uint64_t lo = static_cast<std::uint64_t>(t & kModulus);
    std::uint64_t hi = static_cast<std::uint64_t>(t >> 61);
    std::uint64_t s = lo + hi;
    if (s >= kModulus) s -= kModulus;
    return s;
  }

  static Elem pow(Elem base, std::uint64_t exp);

  // Multiplicative inverse of a non-zero element (Fermat).
  // Precondition: a != 0.
  static Elem inv(Elem a);

  // Maps a signed integer into the field (negative values wrap).
  static constexpr Elem from_int(std::int64_t v) {
    if (v >= 0) return reduce(static_cast<std::uint64_t>(v));
    std::uint64_t mag = reduce(static_cast<std::uint64_t>(-v));
    return neg(mag);
  }

  // Batch inversion via Montgomery's trick: inverts every element of `xs`.
  // Precondition: no element is zero.
  static void batch_inv(std::vector<Elem>& xs);
};

// Ring-traits adapter so templated sharing/polynomial code can use F_p
// interchangeably with Z_N.  All traits objects are cheap to copy.
class Fp61Ring {
public:
  using Elem = Fp61::Elem;

  Elem add(Elem a, Elem b) const { return Fp61::add(a, b); }
  Elem sub(Elem a, Elem b) const { return Fp61::sub(a, b); }
  Elem mul(Elem a, Elem b) const { return Fp61::mul(a, b); }
  Elem neg(Elem a) const { return Fp61::neg(a); }
  Elem inv(Elem a) const { return Fp61::inv(a); }
  Elem zero() const { return 0; }
  Elem one() const { return 1; }
  Elem from_int(std::int64_t v) const { return Fp61::from_int(v); }
  bool eq(Elem a, Elem b) const { return a == b; }
  bool is_unit(Elem a) const { return a != 0; }
  Elem random(Rng& rng) const { return rng.u64_below(Fp61::kModulus); }
};

}  // namespace yoso
