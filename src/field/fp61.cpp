#include "field/fp61.hpp"

namespace yoso {

Fp61::Elem Fp61::pow(Elem base, std::uint64_t exp) {
  Elem acc = 1;
  Elem b = reduce(base);
  while (exp != 0) {
    if (exp & 1) acc = mul(acc, b);
    b = mul(b, b);
    exp >>= 1;
  }
  return acc;
}

Fp61::Elem Fp61::inv(Elem a) { return pow(a, kModulus - 2); }

void Fp61::batch_inv(std::vector<Elem>& xs) {
  if (xs.empty()) return;
  std::vector<Elem> prefix(xs.size());
  Elem acc = 1;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    prefix[i] = acc;
    acc = mul(acc, xs[i]);
  }
  Elem inv_all = inv(acc);
  for (std::size_t i = xs.size(); i-- > 0;) {
    Elem orig = xs[i];
    xs[i] = mul(inv_all, prefix[i]);
    inv_all = mul(inv_all, orig);
  }
}

}  // namespace yoso
