// Paillier plaintext batching: packs a vector of bounded values into one
// Z_{N^s} plaintext as base-2^limb_bits limbs with headroom for
// homomorphic additions.
//
// This is the classic amortization companion to the protocol: the offline
// phase ships Theta(n) ciphertexts per re-encrypted value, and batching j
// values per ciphertext divides the *byte* cost by ~j without changing
// the protocol logic (each limb behaves additively as long as fewer than
// 2^slack_bits additions occur, so carries never cross limbs).  Exposed as
// a standalone utility + bench-backed optimization; DESIGN.md lists it as
// an ablation.
#pragma once

#include <gmpxx.h>

#include <stdexcept>
#include <vector>

namespace yoso {

class PlaintextBatcher {
public:
  // Values must be < 2^value_bits; up to 2^slack_bits batched ciphertexts
  // may be summed homomorphically before limbs overflow.
  PlaintextBatcher(unsigned value_bits, unsigned slack_bits)
      : value_bits_(value_bits), slack_bits_(slack_bits) {
    if (value_bits == 0) throw std::invalid_argument("PlaintextBatcher: zero value bits");
  }

  unsigned limb_bits() const { return value_bits_ + slack_bits_; }

  // How many values fit into a plaintext space of `plain_bits` bits.
  unsigned capacity(unsigned plain_bits) const { return plain_bits / limb_bits(); }

  // Packs values (each < 2^value_bits) into one plaintext.
  mpz_class pack(const std::vector<mpz_class>& values) const;

  // Unpacks `count` limbs.  Values that accumulated homomorphic additions
  // come back as the limb sums (hence the slack headroom).
  std::vector<mpz_class> unpack(const mpz_class& plain, unsigned count) const;

private:
  unsigned value_bits_;
  unsigned slack_bits_;
};

}  // namespace yoso
