#include "paillier/paillier.hpp"

#include <stdexcept>

namespace yoso {

namespace {

mpz_class powm(const mpz_class& base, const mpz_class& exp, const mpz_class& mod) {
  mpz_class r;
  mpz_powm(r.get_mpz_t(), base.get_mpz_t(), exp.get_mpz_t(), mod.get_mpz_t());
  return r;
}

}  // namespace

mpz_class PaillierPK::enc(const mpz_class& m, const mpz_class& r) const {
  mpz_class mm = m % ns;
  if (mm < 0) mm += ns;
  mpz_class g_m = powm(n + 1, mm, ns1);
  mpz_class r_ns = powm(r, ns, ns1);
  return g_m * r_ns % ns1;
}

mpz_class PaillierPK::enc(const mpz_class& m, Rng& rng, mpz_class* r_out) const {
  mpz_class r = rng.unit_mod(n);
  if (r_out != nullptr) *r_out = r;
  return enc(m, r);
}

mpz_class PaillierPK::add(const mpz_class& c1, const mpz_class& c2) const {
  return c1 * c2 % ns1;
}

mpz_class PaillierPK::scal(const mpz_class& c, const mpz_class& k) const {
  return powm(c, k, ns1);  // GMP inverts the base for negative exponents
}

mpz_class PaillierPK::rerandomize(const mpz_class& c, Rng& rng, mpz_class* r_out) const {
  mpz_class r = rng.unit_mod(n);
  if (r_out != nullptr) *r_out = r;
  return c * powm(r, ns, ns1) % ns1;
}

mpz_class PaillierPK::eval(const std::vector<mpz_class>& cts,
                           const std::vector<mpz_class>& coeffs) const {
  if (cts.size() != coeffs.size()) throw std::invalid_argument("PaillierPK::eval: size mismatch");
  mpz_class acc = 1;
  for (std::size_t i = 0; i < cts.size(); ++i) {
    acc = acc * scal(cts[i], coeffs[i]) % ns1;
  }
  return acc;
}

std::size_t PaillierPK::ciphertext_bytes() const {
  return (mpz_sizeinbase(ns1.get_mpz_t(), 2) + 7) / 8;
}

bool PaillierPK::valid_ciphertext(const mpz_class& c) const {
  if (c <= 0 || c >= ns1) return false;
  mpz_class g;
  mpz_gcd(g.get_mpz_t(), c.get_mpz_t(), ns1.get_mpz_t());
  return g == 1;
}

mpz_class dlog_1pn(const PaillierPK& pk, const mpz_class& u) {
  // Damgard-Jurik iterative extraction of m from (1+N)^m mod N^{s+1}.
  const mpz_class& n = pk.n;
  mpz_class i = 0;
  mpz_class n_pow_j = 1;  // N^j
  for (unsigned j = 1; j <= pk.s; ++j) {
    n_pow_j *= n;                       // N^j
    mpz_class n_pow_j1 = n_pow_j * n;   // N^{j+1}
    mpz_class u_mod = u % n_pow_j1;
    mpz_class t1 = (u_mod - 1) / n;     // L(u mod N^{j+1}); exact by construction
    if ((u_mod - 1) % n != 0) throw std::domain_error("dlog_1pn: input is not a power of 1+N");
    mpz_class t2 = i;
    mpz_class kfac = 1;
    mpz_class ii = i;
    for (unsigned k = 2; k <= j; ++k) {
      ii -= 1;
      t2 = t2 * ii % n_pow_j;
      kfac *= k;
      // t1 -= t2 * N^{k-1} / k!  (division via modular inverse of k!)
      mpz_class kfac_inv;
      if (mpz_invert(kfac_inv.get_mpz_t(), kfac.get_mpz_t(), n_pow_j.get_mpz_t()) == 0) {
        throw std::domain_error("dlog_1pn: k! not invertible (modulus has tiny factor)");
      }
      mpz_class n_pow_k1 = 1;
      for (unsigned h = 1; h < k; ++h) n_pow_k1 *= n;
      t1 = (t1 - t2 * n_pow_k1 % n_pow_j * kfac_inv) % n_pow_j;
      if (t1 < 0) t1 += n_pow_j;
    }
    i = t1 % n_pow_j;
    if (i < 0) i += n_pow_j;
  }
  return i;
}

mpz_class PaillierSK::dec(const mpz_class& c) const {
  mpz_class u;
  mpz_powm(u.get_mpz_t(), c.get_mpz_t(), d.get_mpz_t(), pk.ns1.get_mpz_t());
  return dlog_1pn(pk, u);
}

mpz_class PaillierSK::extract_root(const mpz_class& u) const {
  // u = rho^{N^s} for some unit rho; the (1+N)-component of u is trivial,
  // so a root is u^{(N^s)^{-1} mod lambda} where lambda = lcm(p-1, q-1).
  mpz_class lambda;
  mpz_lcm(lambda.get_mpz_t(), mpz_class(p - 1).get_mpz_t(), mpz_class(q - 1).get_mpz_t());
  mpz_class e_inv;
  if (mpz_invert(e_inv.get_mpz_t(), pk.ns.get_mpz_t(), lambda.get_mpz_t()) == 0) {
    throw std::domain_error("extract_root: N^s not invertible mod lambda");
  }
  mpz_class rho;
  mpz_powm(rho.get_mpz_t(), u.get_mpz_t(), e_inv.get_mpz_t(), pk.ns1.get_mpz_t());
  return rho;
}

PaillierSK paillier_sk_from_factor(const PaillierPK& pk, const mpz_class& p) {
  if (p <= 1 || pk.n % p != 0) throw std::invalid_argument("sk_from_factor: not a factor");
  PaillierSK sk;
  sk.pk = pk;
  sk.p = p;
  sk.q = pk.n / p;
  mpz_class l;
  mpz_lcm(l.get_mpz_t(), mpz_class(sk.p - 1).get_mpz_t(), mpz_class(sk.q - 1).get_mpz_t());
  sk.m_order = l;
  mpz_class m_inv;
  if (mpz_invert(m_inv.get_mpz_t(), sk.m_order.get_mpz_t(), sk.pk.ns.get_mpz_t()) == 0) {
    throw std::domain_error("sk_from_factor: gcd(m, N^s) != 1");
  }
  sk.d = sk.m_order * (m_inv % sk.pk.ns);
  return sk;
}

PaillierSK paillier_keygen(unsigned modulus_bits, unsigned s, Rng& rng, bool safe_primes) {
  if (s < 1) throw std::invalid_argument("paillier_keygen: s must be >= 1");
  if (modulus_bits < 32) throw std::invalid_argument("paillier_keygen: modulus too small");
  PaillierSK sk;
  const unsigned half = modulus_bits / 2;
  for (;;) {
    if (safe_primes) {
      sk.p = rng.safe_prime(half);
      do {
        sk.q = rng.safe_prime(modulus_bits - half);
      } while (sk.q == sk.p);
    } else {
      sk.p = rng.prime(half);
      do {
        sk.q = rng.prime(modulus_bits - half);
      } while (sk.q == sk.p);
    }
    mpz_class n = sk.p * sk.q;
    if (mpz_sizeinbase(n.get_mpz_t(), 2) == modulus_bits) {
      sk.pk.n = n;
      break;
    }
  }
  sk.pk.s = s;
  sk.pk.ns = 1;
  for (unsigned i = 0; i < s; ++i) sk.pk.ns *= sk.pk.n;
  sk.pk.ns1 = sk.pk.ns * sk.pk.n;

  if (safe_primes) {
    sk.m_order = (sk.p - 1) / 2 * ((sk.q - 1) / 2);
  } else {
    // lambda(N) / gcd(p-1, q-1) would be the exponent; for the plain scheme
    // we only need d == 0 mod lambda', where lambda' = lcm(p-1, q-1)/2 works
    // for the r-part.  Use m_order = lcm(p-1, q-1).
    mpz_class l;
    mpz_lcm(l.get_mpz_t(), mpz_class(sk.p - 1).get_mpz_t(), mpz_class(sk.q - 1).get_mpz_t());
    sk.m_order = l;
  }

  // d == 1 mod N^s and d == 0 mod lambda (CRT; gcd(lambda, N^s) == 1).
  // For safe primes lambda = 2 * m_order; the factor 2 kills the order-2
  // component of r^{N^s d} in direct decryption.
  mpz_class lambda = safe_primes ? mpz_class(2 * sk.m_order) : sk.m_order;
  mpz_class l_inv;
  if (mpz_invert(l_inv.get_mpz_t(), lambda.get_mpz_t(), sk.pk.ns.get_mpz_t()) == 0) {
    throw std::domain_error("paillier_keygen: gcd(lambda, N^s) != 1");
  }
  sk.d = lambda * (l_inv % sk.pk.ns);
  // Now d == 0 mod lambda and d == 1 mod N^s.
  return sk;
}

}  // namespace yoso
