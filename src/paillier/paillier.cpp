#include "paillier/paillier.hpp"

#include <stdexcept>

#include "obs/profile.hpp"

namespace yoso {

mpz_class PaillierPK::enc(const mpz_class& m, const mpz_class& r) const {
  OBS_OP(PaillierEnc);
  mpz_class mm = m % ns;
  if (mm < 0) mm += ns;
  mpz_class g_m = powm_pub(n + 1, mm, ns1);
  mpz_class r_ns = powm_pub(r, ns, ns1);
  return g_m * r_ns % ns1;
}

mpz_class PaillierPK::enc(const mpz_class& m, Rng& rng, mpz_class* r_out) const {
  mpz_class r = rng.unit_mod(n);
  if (r_out != nullptr) *r_out = r;
  return enc(m, r);
}

mpz_class PaillierPK::enc_secret(const SecretMpz& m, const mpz_class& r) const {
  OBS_OP(PaillierEncSecret);
  // Branch-free normalization into [0, N^s): one reduction can leave a
  // negative representative, adding N^s and reducing again cannot.
  SecretMpz mm = (m % ns + ns) % ns;
  mpz_class g_m = powm_sec(n + 1, mm, ns1);
  mpz_class r_ns = powm_sec(SecretMpz(r), ns, ns1).declassify();
  return g_m * r_ns % ns1;
}

mpz_class PaillierPK::enc_secret(const SecretMpz& m, Rng& rng, mpz_class* r_out) const {
  mpz_class r = rng.unit_mod(n);
  if (r_out != nullptr) *r_out = r;
  return enc_secret(m, r);
}

mpz_class PaillierPK::add(const mpz_class& c1, const mpz_class& c2) const {
  OBS_OP_COUNT(PaillierAdd);
  return c1 * c2 % ns1;
}

mpz_class PaillierPK::scal(const mpz_class& c, const mpz_class& k) const {
  OBS_OP_COUNT(PaillierScal);
  return powm_pub(c, k, ns1);  // GMP inverts the base for negative exponents
}

mpz_class PaillierPK::scal_secret(const mpz_class& c, const SecretMpz& k) const {
  OBS_OP_COUNT(PaillierScalSecret);
  return powm_sec(c, k, ns1);
}

mpz_class PaillierPK::rerandomize(const mpz_class& c, Rng& rng, mpz_class* r_out) const {
  OBS_OP_COUNT(PaillierRerandomize);
  mpz_class r = rng.unit_mod(n);
  if (r_out != nullptr) *r_out = r;
  // r is the rerandomization witness (handed to NIZK provers); keep its
  // exponentiation on the hardened ladder.
  return c * powm_sec(SecretMpz(r), ns, ns1).declassify() % ns1;
}

mpz_class PaillierPK::eval(const std::vector<mpz_class>& cts,
                           const std::vector<mpz_class>& coeffs) const {
  if (cts.size() != coeffs.size()) throw std::invalid_argument("PaillierPK::eval: size mismatch");
  OBS_OP(PaillierEval);
  mpz_class acc = 1;
  for (std::size_t i = 0; i < cts.size(); ++i) {
    acc = acc * scal(cts[i], coeffs[i]) % ns1;
  }
  return acc;
}

std::size_t PaillierPK::ciphertext_bytes() const {
  return (mpz_sizeinbase(ns1.get_mpz_t(), 2) + 7) / 8;
}

bool PaillierPK::valid_ciphertext(const mpz_class& c) const {
  if (c <= 0 || c >= ns1) return false;
  mpz_class g;
  mpz_gcd(g.get_mpz_t(), c.get_mpz_t(), ns1.get_mpz_t());
  return g == 1;
}

mpz_class dlog_1pn(const PaillierPK& pk, const mpz_class& u) {
  // Damgard-Jurik iterative extraction of m from (1+N)^m mod N^{s+1}.
  const mpz_class& n = pk.n;
  mpz_class i = 0;
  mpz_class n_pow_j = 1;  // N^j
  for (unsigned j = 1; j <= pk.s; ++j) {
    n_pow_j *= n;                       // N^j
    mpz_class n_pow_j1 = n_pow_j * n;   // N^{j+1}
    mpz_class u_mod = u % n_pow_j1;
    mpz_class t1 = (u_mod - 1) / n;     // L(u mod N^{j+1}); exact by construction
    if ((u_mod - 1) % n != 0) throw std::domain_error("dlog_1pn: input is not a power of 1+N");
    mpz_class t2 = i;
    mpz_class kfac = 1;
    mpz_class ii = i;
    for (unsigned k = 2; k <= j; ++k) {
      ii -= 1;
      t2 = t2 * ii % n_pow_j;
      kfac *= k;
      // t1 -= t2 * N^{k-1} / k!  (division via modular inverse of k!)
      mpz_class kfac_inv = mod_inverse(kfac, n_pow_j);
      mpz_class n_pow_k1 = 1;
      for (unsigned h = 1; h < k; ++h) n_pow_k1 *= n;
      t1 = (t1 - t2 * n_pow_k1 % n_pow_j * kfac_inv) % n_pow_j;
      if (t1 < 0) t1 += n_pow_j;
    }
    i = t1 % n_pow_j;
    if (i < 0) i += n_pow_j;
  }
  return i;
}

mpz_class PaillierSK::dec(const mpz_class& c) const {
  OBS_OP(PaillierDec);
  mpz_class u = powm_sec(c, d, pk.ns1);
  return dlog_1pn(pk, u);
}

SecretMpz PaillierSK::extract_root(const mpz_class& u) const {
  OBS_OP(PaillierExtractRoot);
  // u = rho^{N^s} for some unit rho; the (1+N)-component of u is trivial,
  // so a root is u^{(N^s)^{-1} mod lambda} where lambda = lcm(p-1, q-1).
  mpz_class lambda;
  mpz_lcm(lambda.get_mpz_t(), mpz_class(p - 1).get_mpz_t(), mpz_class(q - 1).get_mpz_t());
  SecretMpz e_inv(mod_inverse(pk.ns, lambda));
  return SecretMpz(powm_sec(u, e_inv, pk.ns1));
}

PaillierSK paillier_sk_from_factor(const PaillierPK& pk, const mpz_class& p) {
  if (p <= 1 || pk.n % p != 0) throw std::invalid_argument("sk_from_factor: not a factor");
  PaillierSK sk;
  sk.pk = pk;
  sk.p = p;
  sk.q = pk.n / p;
  mpz_class l;
  mpz_lcm(l.get_mpz_t(), mpz_class(sk.p - 1).get_mpz_t(), mpz_class(sk.q - 1).get_mpz_t());
  sk.m_order = l;
  mpz_class m_inv = mod_inverse(sk.m_order, sk.pk.ns);
  sk.d = SecretMpz(sk.m_order * (m_inv % sk.pk.ns));
  return sk;
}

PaillierSK paillier_keygen(unsigned modulus_bits, unsigned s, Rng& rng, bool safe_primes) {
  if (s < 1) throw std::invalid_argument("paillier_keygen: s must be >= 1");
  if (modulus_bits < 32) throw std::invalid_argument("paillier_keygen: modulus too small");
  PaillierSK sk;
  const unsigned half = modulus_bits / 2;
  for (;;) {
    if (safe_primes) {
      sk.p = rng.safe_prime(half);
      do {
        sk.q = rng.safe_prime(modulus_bits - half);
      } while (sk.q == sk.p);
    } else {
      sk.p = rng.prime(half);
      do {
        sk.q = rng.prime(modulus_bits - half);
      } while (sk.q == sk.p);
    }
    mpz_class n = sk.p * sk.q;
    if (mpz_sizeinbase(n.get_mpz_t(), 2) == modulus_bits) {
      sk.pk.n = n;
      break;
    }
  }
  sk.pk.s = s;
  sk.pk.ns = 1;
  for (unsigned i = 0; i < s; ++i) sk.pk.ns *= sk.pk.n;
  sk.pk.ns1 = sk.pk.ns * sk.pk.n;

  if (safe_primes) {
    sk.m_order = (sk.p - 1) / 2 * ((sk.q - 1) / 2);
  } else {
    // lambda(N) / gcd(p-1, q-1) would be the exponent; for the plain scheme
    // we only need d == 0 mod lambda', where lambda' = lcm(p-1, q-1)/2 works
    // for the r-part.  Use m_order = lcm(p-1, q-1).
    mpz_class l;
    mpz_lcm(l.get_mpz_t(), mpz_class(sk.p - 1).get_mpz_t(), mpz_class(sk.q - 1).get_mpz_t());
    sk.m_order = l;
  }

  // d == 1 mod N^s and d == 0 mod lambda (CRT; gcd(lambda, N^s) == 1).
  // For safe primes lambda = 2 * m_order; the factor 2 kills the order-2
  // component of r^{N^s d} in direct decryption.
  mpz_class lambda = safe_primes ? mpz_class(2 * sk.m_order) : sk.m_order;
  mpz_class l_inv = mod_inverse(lambda, sk.pk.ns);
  sk.d = SecretMpz(lambda * (l_inv % sk.pk.ns));
  // Now d == 0 mod lambda and d == 1 mod N^s.
  return sk;
}

}  // namespace yoso
