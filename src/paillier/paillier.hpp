// Paillier encryption in its Damgard-Jurik generalization (IJIS 2010, the
// paper's reference [19]): plaintext space Z_{N^s}, ciphertexts mod N^{s+1}.
//
//   Enc(m; r) = (1 + N)^m * r^{N^s}  mod N^{s+1},   r a unit mod N.
//
// The scheme is linearly homomorphic: multiplying ciphertexts adds
// plaintexts; raising to a scalar multiplies the plaintext.  s = 1 is
// textbook Paillier; higher s widens the plaintext space (used for
// encrypting threshold key shares under role keys, see threshold.hpp).
#pragma once

#include <gmpxx.h>

#include "common/ct_math.hpp"
#include "common/secret.hpp"
#include "crypto/rand.hpp"

namespace yoso {

struct PaillierPK {
  mpz_class n;    // RSA modulus N
  unsigned s = 1;
  mpz_class ns;   // N^s  (plaintext modulus)
  mpz_class ns1;  // N^{s+1} (ciphertext modulus)

  // Deterministic encryption with caller-supplied randomness r (unit mod N).
  // This is the fast path for *public* plaintexts (NIZK verification
  // equations re-encrypt published responses); secret plaintexts go through
  // enc_secret below.
  mpz_class enc(const mpz_class& m, const mpz_class& r) const;
  // Randomized encryption; `r_out`, if non-null, receives the randomness
  // (needed by the NIZK provers).
  mpz_class enc(const mpz_class& m, Rng& rng, mpz_class* r_out = nullptr) const;

  // Encryption of a secret plaintext: both exponentiations ((1+N)^m and
  // r^{N^s}) run on the side-channel resistant ladder, since m is tainted
  // and r is the semantic-security witness.
  mpz_class enc_secret(const SecretMpz& m, const mpz_class& r) const;
  mpz_class enc_secret(const SecretMpz& m, Rng& rng, mpz_class* r_out = nullptr) const;

  // Homomorphic addition of plaintexts.
  mpz_class add(const mpz_class& c1, const mpz_class& c2) const;
  // Homomorphic scalar multiplication (scalar may be negative).  Public
  // scalars only (Lagrange coefficients, published combinations).
  mpz_class scal(const mpz_class& c, const mpz_class& k) const;
  // Homomorphic scalar multiplication by a secret scalar (Beaver b-legs).
  mpz_class scal_secret(const mpz_class& c, const SecretMpz& k) const;
  // Fresh randomization of a ciphertext.
  mpz_class rerandomize(const mpz_class& c, Rng& rng, mpz_class* r_out = nullptr) const;

  // TEval from Section 4.1: sum_i lambda_i * m_i.
  mpz_class eval(const std::vector<mpz_class>& cts, const std::vector<mpz_class>& coeffs) const;

  // Wire size of one ciphertext in bytes (for the communication ledger).
  std::size_t ciphertext_bytes() const;

  bool valid_ciphertext(const mpz_class& c) const;
};

struct PaillierSK {
  PaillierPK pk;
  // The factors stay un-tainted: they only feed dealer-side key generation,
  // which runs offline (branching/retry loops there are unobservable).
  mpz_class p, q;
  mpz_class m_order;  // p' * q' for safe primes p = 2p'+1, q = 2q'+1
  SecretMpz d;        // d == 1 mod N^s, d == 0 mod m_order

  mpz_class dec(const mpz_class& c) const;

  // Extracts an N^s-th root of u, assuming one exists (i.e. u encrypts 0).
  // Used by the online-phase correctness proofs: a role holding the key can
  // prove that a public ciphertext combination encrypts a claimed value by
  // exhibiting the root of the difference.  The root is a proof witness and
  // stays tainted until the prover publishes its masked response.
  SecretMpz extract_root(const mpz_class& u) const;
};

// Rebuilds a full secret key from the public key and one prime factor p.
// This is how compact "keys for future" are transported: only the factor
// (half the modulus size) is ever encrypted under the threshold key.
PaillierSK paillier_sk_from_factor(const PaillierPK& pk, const mpz_class& p);

// Generates a key with |N| = modulus_bits.  With `safe_primes` the factors
// are safe primes (required by the threshold variant's verification keys);
// otherwise m_order = lambda(N)/2 may share factors with small integers,
// which is fine for the plain scheme.
PaillierSK paillier_keygen(unsigned modulus_bits, unsigned s, Rng& rng,
                           bool safe_primes = true);

// Discrete log of u = (1+N)^m mod N^{s+1} (Damgard-Jurik extraction).
// Returns m mod N^s.
mpz_class dlog_1pn(const PaillierPK& pk, const mpz_class& u);

}  // namespace yoso
