// Linearly homomorphic *key-rerandomizable* threshold encryption
// (Section 4.1 of the paper), instantiated as threshold Damgard-Jurik with
// Shoup's Delta = n! trick so no party ever learns the group order:
//
//   * TKGen   : Shamir-shares d (d == 1 mod N^s, d == 0 mod p'q') with a
//               degree-t polynomial over Z_{m N^s}; publishes verification
//               keys v_i = v^{d_i} for a random square v.
//   * TPDec   : partial decryption c_i = c^{2 d_i}.
//   * TDec    : combine >= t+1 partials with integer-scaled Lagrange
//               coefficients; extract the plaintext with dlog_1pn and divide
//               by 4 * scale (scale accumulates a Delta factor per epoch).
//   * TKRes   : verifiable resharing of a key share toward the next
//               committee: integer Shamir with statistical masking plus
//               Feldman commitments v^{a_c} so anyone can derive the next
//               epoch's verification keys.
//   * TKRec   : Lagrange-combine received subshares into the next share.
//   * SimTPDec: the simulatability algorithm used by the security proof /
//               simulator tests (needs the game challenger's knowledge: the
//               true plaintext and the honest shares, as in Definition 2).
//
// TEval is inherited from PaillierPK::eval.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "field/poly.hpp"
#include "paillier/paillier.hpp"

namespace yoso {

struct ThresholdPK {
  PaillierPK pk;
  unsigned n = 0;       // committee size
  unsigned t = 0;       // sharing degree; any t+1 partials decrypt
  mpz_class delta;      // n!
  mpz_class v;          // verification base, a square in Z*_{N^{s+1}}
  std::vector<mpz_class> vks;  // vks[i] = v^{d_{i+1}} for the current epoch
  mpz_class scale;      // Delta^{epoch+1}; TDec divides by 4 * scale

  // Statistical masking bound for integer resharing polynomials.
  unsigned stat_sec = 40;

  // Public upper bound (in bits) on |d_i| for the current epoch; NIZK
  // masks and recipient plaintext spaces are sized from this.
  unsigned share_bound_bits = 0;
  // Bound (in bits) on the subshares produced by tkres this epoch.
  unsigned subshare_bound_bits() const;
};

struct ThresholdKeyShare {
  unsigned index = 0;  // 1-based party index (the Shamir evaluation point)
  SecretMpz d_i;       // integer share (may be negative after resharing)
};

struct ThresholdKeys {
  ThresholdPK tpk;
  std::vector<ThresholdKeyShare> shares;  // one per party, index i+1
  // Kept by tests and the UC-style simulator only (never given to roles):
  PaillierSK dealer_sk;
};

// Dealer key generation (the paper assumes this setup, Section 5.1).
ThresholdKeys tkgen(unsigned modulus_bits, unsigned s, unsigned n, unsigned t, Rng& rng);

// Partial decryption c^{2 d_i}.
mpz_class tpdec(const ThresholdPK& tpk, const ThresholdKeyShare& share, const mpz_class& c);

// Combines partial decryptions from the parties listed in `indices`
// (1-based, distinct, size >= t+1) into the plaintext.
mpz_class tdec(const ThresholdPK& tpk, const std::vector<unsigned>& indices,
               const std::vector<mpz_class>& partials, const mpz_class& c_unused = 0);

// --- Key resharing across committees -------------------------------------

// What one party broadcasts when resharing its key share: encrypted
// subshares are produced by the caller (the protocol layer), this struct
// carries the in-clear polynomial evaluations plus Feldman commitments.
struct ReshareMsg {
  unsigned from_index = 0;
  // subshares[j] = f_i(j+1), addressed to party j+1 only.  The protocol
  // layer encrypts each one under the recipient's role key (enc_secret);
  // they stay tainted until then.
  std::vector<SecretMpz> subshares;
  std::vector<mpz_class> commitments;  // v^{a_c} for each coefficient a_c
};

// TKRes: splits `share` into n subshares with a degree-t integer polynomial
// whose non-constant coefficients are masked by stat_sec extra bits.
ReshareMsg tkres(const ThresholdPK& tpk, const ThresholdKeyShare& share, Rng& rng);

// Verifies one party's resharing message against its current verification
// key (Feldman check v^{f_i(j)} == prod_c A_c^{j^c} for every j).
bool verify_reshare(const ThresholdPK& tpk, const ReshareMsg& msg);

// TKRec: party `my_index` combines the subshares addressed to it from the
// qualified set `from` (>= t+1 verified resharers) into its next-epoch share.
ThresholdKeyShare tkrec(const ThresholdPK& tpk, unsigned my_index,
                        const std::vector<unsigned>& from,
                        const std::vector<SecretMpz>& subshares_for_me);

// Advances the public key to the next epoch: multiplies scale by Delta and
// recomputes all verification keys from the qualified resharers' Feldman
// commitments.  `from` and `msgs` must be the same qualified set used by
// tkrec everywhere.
ThresholdPK next_epoch_pk(const ThresholdPK& tpk, const std::vector<unsigned>& from,
                          const std::vector<ReshareMsg>& msgs);

// --- Simulatability (Definition 2) ----------------------------------------

// Produces honest partial decryptions of `c` that make TDec output
// `m_target` for *any* qualified set, given the corrupt parties' honest
// partials.  Requires the challenger's knowledge of the true plaintext
// `m_true` and the honest shares, exactly as available in the security game.
std::vector<mpz_class> sim_tpdec(const ThresholdPK& tpk, const mpz_class& c,
                                 const mpz_class& m_target, const mpz_class& m_true,
                                 const std::vector<ThresholdKeyShare>& honest_shares,
                                 const std::vector<unsigned>& corrupt_indices);

}  // namespace yoso
