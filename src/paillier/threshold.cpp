#include "paillier/threshold.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"
#include "field/zn_ring.hpp"
#include "obs/profile.hpp"

namespace yoso {

namespace {

// Evaluates the secret integer polynomial (coeffs low-order first) at the
// public point x; the result carries the coefficients' taint.
SecretMpz int_poly_eval(const std::vector<SecretMpz>& coeffs, const mpz_class& x) {
  SecretMpz acc;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

// Bits of the largest integer-scaled Lagrange coefficient: |Delta * l_i(0)|
// <= Delta * n^t (crude but public).
unsigned lagrange_bound_bits(const ThresholdPK& tpk) {
  unsigned delta_bits = static_cast<unsigned>(mpz_sizeinbase(tpk.delta.get_mpz_t(), 2));
  unsigned log_n = 1;
  while ((1u << log_n) < tpk.n + 1) ++log_n;
  return delta_bits + tpk.t * log_n;
}

}  // namespace

unsigned ThresholdPK::subshare_bound_bits() const {
  // |f_i(j)| <= |d_i| + (t+1) * B * n^t  with B = N^{s+1} * 2^stat.
  unsigned mask_bits = static_cast<unsigned>(mpz_sizeinbase(pk.ns1.get_mpz_t(), 2)) + stat_sec;
  unsigned log_n = 1;
  while ((1u << log_n) < n + 1) ++log_n;
  unsigned poly_bits = mask_bits + t * log_n + 8;
  return std::max(share_bound_bits, poly_bits) + 1;
}

ThresholdKeys tkgen(unsigned modulus_bits, unsigned s, unsigned n, unsigned t, Rng& rng) {
  if (n == 0 || t + 1 > n) throw std::invalid_argument("tkgen: need t + 1 <= n");
  ThresholdKeys out;
  out.dealer_sk = paillier_keygen(modulus_bits, s, rng, /*safe_primes=*/true);
  out.tpk.pk = out.dealer_sk.pk;
  out.tpk.n = n;
  out.tpk.t = t;
  out.tpk.delta = factorial(n);
  out.tpk.scale = out.tpk.delta;
  out.tpk.share_bound_bits =
      static_cast<unsigned>(mpz_sizeinbase(out.tpk.pk.ns1.get_mpz_t(), 2)) + 1;

  // Shamir-share d over Z_{m N^s} with a degree-t polynomial.
  const mpz_class share_mod = out.dealer_sk.m_order * out.tpk.pk.ns;
  std::vector<SecretMpz> coeffs(t + 1);
  coeffs[0] = out.dealer_sk.d % share_mod;
  for (unsigned c = 1; c <= t; ++c) coeffs[c] = SecretMpz(rng.below(share_mod));

  out.shares.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    out.shares[i].index = i + 1;
    out.shares[i].d_i = int_poly_eval(coeffs, mpz_class(i + 1)) % share_mod;
  }

  // Verification base: a random square generates (w.h.p.) the cyclic part
  // of Z*_{N^{s+1}} of order m N^s.
  mpz_class r = rng.unit_mod(out.tpk.pk.ns1);
  out.tpk.v = r * r % out.tpk.pk.ns1;
  out.tpk.vks.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    out.tpk.vks[i] = powm_sec(out.tpk.v, out.shares[i].d_i, out.tpk.pk.ns1);
  }
  return out;
}

mpz_class tpdec(const ThresholdPK& tpk, const ThresholdKeyShare& share, const mpz_class& c) {
  OBS_OP(PaillierTpdec);
  return powm_sec(c, share.d_i * mpz_class(2), tpk.pk.ns1);
}

mpz_class tdec(const ThresholdPK& tpk, const std::vector<unsigned>& indices,
               const std::vector<mpz_class>& partials, const mpz_class& /*c_unused*/) {
  if (indices.size() != partials.size()) throw std::invalid_argument("tdec: size mismatch");
  if (indices.size() < tpk.t + 1) throw std::invalid_argument("tdec: not enough partials");
  std::vector<std::int64_t> pts(indices.begin(), indices.end());
  const auto lambda = integer_lagrange(pts, 0, tpk.delta);
  mpz_class acc = 1;
  for (std::size_t i = 0; i < partials.size(); ++i) {
    acc = acc * powm_pub(partials[i], 2 * lambda[i], tpk.pk.ns1) % tpk.pk.ns1;
  }
  mpz_class u = dlog_1pn(tpk.pk, acc);  // = 4 * scale * m  (mod N^s)
  mpz_class denom = 4 * tpk.scale % tpk.pk.ns;
  mpz_class denom_inv = mod_inverse(denom, tpk.pk.ns);
  return u * denom_inv % tpk.pk.ns;
}

ReshareMsg tkres(const ThresholdPK& tpk, const ThresholdKeyShare& share, Rng& rng) {
  ReshareMsg msg;
  msg.from_index = share.index;
  // Integer polynomial with constant term d_i and statistically masking
  // higher coefficients (parties do not know m N^s, so they mask with the
  // public bound N^{s+1} * 2^stat_sec).
  mpz_class bound = tpk.pk.ns1 << tpk.stat_sec;
  std::vector<SecretMpz> coeffs(tpk.t + 1);
  coeffs[0] = share.d_i;
  for (unsigned c = 1; c <= tpk.t; ++c) coeffs[c] = SecretMpz(rng.below(bound));

  msg.subshares.resize(tpk.n);
  for (unsigned j = 0; j < tpk.n; ++j) {
    msg.subshares[j] = int_poly_eval(coeffs, mpz_class(j + 1));
  }
  msg.commitments.resize(tpk.t + 1);
  for (unsigned c = 0; c <= tpk.t; ++c) {
    msg.commitments[c] = powm_sec(tpk.v, coeffs[c], tpk.pk.ns1);
  }
  return msg;
}

bool verify_reshare(const ThresholdPK& tpk, const ReshareMsg& msg) {
  if (msg.from_index == 0 || msg.from_index > tpk.n) return false;
  if (msg.subshares.size() != tpk.n || msg.commitments.size() != tpk.t + 1) return false;
  // The constant-term commitment must match the resharer's verification key
  // (ties f(0) to the share it is supposed to reshare).
  if (!ct_equal(msg.commitments[0], tpk.vks[msg.from_index - 1])) return false;
  for (unsigned j = 1; j <= tpk.n; ++j) {
    mpz_class lhs = powm_sec(tpk.v, msg.subshares[j - 1], tpk.pk.ns1);
    mpz_class rhs = 1;
    mpz_class j_pow = 1;
    for (unsigned c = 0; c <= tpk.t; ++c) {
      rhs = rhs * powm_pub(msg.commitments[c], j_pow, tpk.pk.ns1) % tpk.pk.ns1;
      j_pow *= j;
    }
    if (!ct_equal(lhs, rhs)) return false;
  }
  return true;
}

ThresholdKeyShare tkrec(const ThresholdPK& tpk, unsigned my_index,
                        const std::vector<unsigned>& from,
                        const std::vector<SecretMpz>& subshares_for_me) {
  if (from.size() != subshares_for_me.size() || from.size() < tpk.t + 1) {
    throw std::invalid_argument("tkrec: need >= t + 1 verified resharings");
  }
  std::vector<std::int64_t> pts(from.begin(), from.end());
  const auto lambda = integer_lagrange(pts, 0, tpk.delta);
  ThresholdKeyShare out;
  out.index = my_index;
  for (std::size_t i = 0; i < from.size(); ++i) {
    out.d_i += lambda[i] * subshares_for_me[i];
  }
  return out;
}

ThresholdPK next_epoch_pk(const ThresholdPK& tpk, const std::vector<unsigned>& from,
                          const std::vector<ReshareMsg>& msgs) {
  if (from.size() != msgs.size() || from.size() < tpk.t + 1) {
    throw std::invalid_argument("next_epoch_pk: need >= t + 1 resharings");
  }
  ThresholdPK out = tpk;
  out.scale = tpk.scale * tpk.delta;
  unsigned log_t = 1;
  while ((1u << log_t) < tpk.t + 2) ++log_t;
  out.share_bound_bits = tpk.subshare_bound_bits() + lagrange_bound_bits(tpk) + log_t + 1;
  std::vector<std::int64_t> pts(from.begin(), from.end());
  const auto lambda = integer_lagrange(pts, 0, tpk.delta);
  for (unsigned j = 1; j <= tpk.n; ++j) {
    mpz_class vk = 1;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      // v^{f_i(j)} from the Feldman commitments, then Lagrange-weighted.
      mpz_class vfij = 1;
      mpz_class j_pow = 1;
      for (std::size_t c = 0; c < msgs[i].commitments.size(); ++c) {
        vfij = vfij * powm_pub(msgs[i].commitments[c], j_pow, tpk.pk.ns1) % tpk.pk.ns1;
        j_pow *= j;
      }
      vk = vk * powm_pub(vfij, lambda[i], tpk.pk.ns1) % tpk.pk.ns1;
    }
    out.vks[j - 1] = vk;
  }
  return out;
}

std::vector<mpz_class> sim_tpdec(const ThresholdPK& tpk, const mpz_class& c,
                                 const mpz_class& m_target, const mpz_class& m_true,
                                 const std::vector<ThresholdKeyShare>& honest_shares,
                                 const std::vector<unsigned>& corrupt_indices) {
  if (corrupt_indices.size() > tpk.t) {
    throw std::invalid_argument("sim_tpdec: more than t corruptions");
  }
  // Build the correction polynomial h over Z_{N^s}: degree t, h(i) = 0 for
  // corrupt i, h(0) = scale * (m_target - m_true) * Delta^{-1}.
  ZnRing ring(tpk.pk.ns);
  Rng pad_rng(0xD15EA5E);  // padding points carry no secret; fixed seed is fine
  mpz_class delta_inv = mod_inverse(tpk.delta, tpk.pk.ns);
  mpz_class h0 = ring.mod(tpk.scale * ring.sub(m_target, m_true) % tpk.pk.ns * delta_inv);

  std::vector<std::int64_t> pts{0};
  std::vector<mpz_class> vals{h0};
  for (unsigned idx : corrupt_indices) {
    pts.push_back(static_cast<std::int64_t>(idx));
    vals.push_back(ring.zero());
  }
  // Pad with random constraints at points beyond the party range so the
  // polynomial has degree exactly t regardless of |corrupt|.
  std::int64_t pad_pt = static_cast<std::int64_t>(tpk.n) + 1;
  while (pts.size() < tpk.t + 1) {
    pts.push_back(pad_pt++);
    vals.push_back(ring.random(pad_rng));
  }
  const auto coeffs = interpolate_coeffs(ring, pts, vals);

  std::vector<mpz_class> out;
  out.reserve(honest_shares.size());
  const mpz_class one_pn = tpk.pk.n + 1;
  for (const auto& sh : honest_shares) {
    mpz_class w = poly_eval(ring, coeffs, ring.from_int(static_cast<std::int64_t>(sh.index)));
    mpz_class honest = powm_sec(c, sh.d_i * mpz_class(2), tpk.pk.ns1);
    // The correction exponent derives from the true plaintext, so it is
    // just as secret as a key share.
    mpz_class corr = powm_sec(one_pn, SecretMpz(2 * w % tpk.pk.ns), tpk.pk.ns1);
    out.push_back(honest * corr % tpk.pk.ns1);
  }
  return out;
}

}  // namespace yoso
