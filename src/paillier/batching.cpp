#include "paillier/batching.hpp"

namespace yoso {

mpz_class PlaintextBatcher::pack(const std::vector<mpz_class>& values) const {
  mpz_class acc = 0;
  const mpz_class bound = mpz_class(1) << value_bits_;
  for (std::size_t i = values.size(); i-- > 0;) {
    if (values[i] < 0 || values[i] >= bound) {
      throw std::invalid_argument("PlaintextBatcher::pack: value out of range");
    }
    acc = (acc << limb_bits()) + values[i];
  }
  return acc;
}

std::vector<mpz_class> PlaintextBatcher::unpack(const mpz_class& plain, unsigned count) const {
  std::vector<mpz_class> out;
  out.reserve(count);
  mpz_class rest = plain;
  const mpz_class mask = (mpz_class(1) << limb_bits()) - 1;
  for (unsigned i = 0; i < count; ++i) {
    out.push_back(rest & mask);
    rest >>= limb_bits();
  }
  return out;
}

}  // namespace yoso
