// Baseline-gated perf regression checking.
//
// A baseline is a flat {"metric.path": number} object committed under
// bench/baselines/.  Metrics are the numeric leaves of the recorded bench
// keys (online_comm / offline_comm / scaling_audit), flattened by joining
// member names with '.'; per-category ledger breakdowns are skipped so a
// baseline stays reviewable while still pinning every phase total.
//
// Tolerances are by metric suffix: ".bytes" leaves get a relative band
// (serialized sizes may drift a few percent with encoder changes that are
// not regressions), "_us" leaves — the op_costs self-times and phase
// wall-clocks — get a wide 4x factor band (they are real measured time and
// vary by machine; the gate exists to catch order-of-magnitude cliffs),
// everything else — message and element counts, op call counts, the
// recorded t/k/gates parameters — must match exactly, because the benches
// are seeded and deterministic.  A metric present in the baseline but
// missing from the current run is a failure, not a skip: silently dropping
// a metric is how regressions hide.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace yoso::perf {

// Relative tolerance for a metric (0 = exact).
double tolerance_for(const std::string& metric);

// Flattens the numeric leaves of `root`'s members named in `keys`.
std::map<std::string, double> flatten_metrics(const json::Value& root,
                                              const std::vector<std::string>& keys);

struct Mismatch {
  std::string metric;
  double expected = 0;
  double actual = 0;
  double tolerance = 0;  // relative; 0 = exact
  bool missing = false;  // metric absent from the current run
};

struct CheckResult {
  std::size_t checked = 0;
  std::vector<Mismatch> mismatches;
  bool pass() const { return mismatches.empty() && checked > 0; }
};

CheckResult check_against_baseline(const std::map<std::string, double>& baseline,
                                   const std::map<std::string, double>& current);

// Baseline file round trip: a flat JSON object, non-numeric members ignored.
std::map<std::string, double> parse_baseline(const json::Value& v);

}  // namespace yoso::perf
