// The scaling-law audit: fitted exponents vs. the paper's claims.
//
// Consumes the "scaling_audit" key recorded by tools/perf (the controlled
// fixed-ratio sweep, see perf/sweep.hpp) and renders a verdict per series:
//
//   ours.online.mult.bytes_per_gate    claimed O(1)  — band [-0.15, 0.15]
//   cdn.online.pdec.bytes_per_gate     claimed O(n)  — band [ 0.85, 1.25]
//   ours.offline.total.bytes_per_gate  claimed O(n)  — band [ 0.85, 1.75]
//
// (The offline upper band is deliberately loose: on the small-n sweep the
// per-gate cost still carries Theta(n^2)-ish key-setup terms amortized
// over Theta(n) gates, so the measured exponent sits above 1 and tightens
// as n grows.)  The audit also re-derives the paper's headline speedup at
// C = 1000, f = 0.05 from the measured per-element coefficients of the
// largest point and requires it to clear the paper's 28x floor.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/scaling.hpp"
#include "perf/critpath.hpp"
#include "perf/opcosts.hpp"

namespace yoso::perf {

struct AuditReport {
  std::vector<obs::ExponentCheck> checks;
  obs::SpeedupDerivation speedup;
  double speedup_floor = 28.0;  // the paper's headline ratio
  // Per-phase compute cost model, fitted when the bench file carries an
  // op_costs section (perf/opcosts.hpp).  Absent data is a note, not a
  // failure — pre-PR-9 bench files stay auditable — but a fitted model
  // below its explained-fraction floor fails the audit.
  CostModel cost_model;
  // Forecast-curve checks over the "critpath" key (perf/critpath.hpp):
  // speedup(k) non-decreasing, <= k, <= the parallelism ceiling.  Same
  // absent-is-a-note policy as the cost model.
  std::vector<CritpathCheck> critpath;
  std::string critpath_note;
  bool pass = false;
  std::string error;  // non-empty when the bench data was unusable
};

// `bench` is the parsed bench file (the whole BENCH_comm.json document).
AuditReport audit_scaling(const json::Value& bench);

// Machine-readable verdict (fits, bands, derivation) for reports/CI logs.
std::string audit_report_json(const AuditReport& report);

}  // namespace yoso::perf
