// Critical-path sweep points and the forecast-curve gate.
//
// run_critpath_point() replays the audit-regime configuration (the same
// circuits and packing as perf/sweep.hpp, seeds 9500 + n) over a
// NetBulletin so the board reconstructs the happens-before DAG
// (src/obs/dag), then prices it with the *reference* coefficient table:
// the resulting work/span figures and forecast speedup curve are a pure
// function of the seeded run — byte-identical across machines and
// replays, committed to BENCH_comm.json by bench_critpath (E16) and
// baseline-gated by `perf check`.
//
// Fault variants (silenced roles, background churn) show how fail-stop
// faults serialize the run: dropped posts become DAG leaves, the surviving
// roles' work concentrates on fewer parallel chains, and the forecast
// curve flattens (docs/OBSERVABILITY.md, "Causality & critical path").
//
// check_critpath() is the CI gate over a recorded "critpath" key:
// speedup(k) must be non-decreasing in k (the analyzer reports the
// running-min makespan, so a violation means the recording is corrupt or
// hand-edited), bounded by k, and bounded by the point's parallelism
// ceiling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace yoso::perf {

struct CritpathOptions {
  unsigned n = 8;
  unsigned silence = 0;       // fail-stop roles per committee
  double churn_prob = 0;      // per-role departure probability per activation
  std::uint64_t seed_base = 9500;  // run seed = seed_base + n
};

struct CritpathPoint {
  unsigned n = 0, t = 0, k = 0;
  std::uint64_t gates = 0;
  bool completed = true;     // faulted runs may abort; the DAG so far still prices
  std::string crit_json;     // crit_report_json — deterministic (reference coeffs)
  std::string dag_json;      // DAG summary (nodes/edges/kinds)
};

CritpathPoint run_critpath_point(const CritpathOptions& opt);

// BENCH value for the "critpath" key: {"n4": {...}, "n8": {...}}.
std::string critpath_sweep_json(const std::vector<CritpathPoint>& pts);

// One gated point from a recorded critpath key.
struct CritpathCheck {
  std::string point;          // "n4", "n8", ...
  bool monotone = true;       // speedup(k) non-decreasing in k
  bool bounded = true;        // speedup(k) <= k and <= parallelism
  double parallelism = 0;     // work / span
  double max_speedup = 0;     // forecast at the largest k
  std::string error;
  bool pass() const { return monotone && bounded && error.empty(); }
};

// Empty result + *error when the key is missing/unusable (a note for the
// auditor, not a failure — pre-PR-10 bench files stay auditable).
std::vector<CritpathCheck> check_critpath(const json::Value& bench, std::string* error);

}  // namespace yoso::perf
