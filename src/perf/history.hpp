// Append-only perf history (BENCH_history.jsonl).
//
// `perf record` appends one snapshot line per run — timestamp, free-form
// label, and the flattened metric map — and `perf trend` diffs consecutive
// snapshots.  JSONL keeps the file merge-friendly: appends never rewrite
// earlier lines.  Timestamps are supplied by the caller (the CLI), not
// read here, so the library stays deterministic and testable.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace yoso::perf {

struct HistorySnapshot {
  std::string timestamp;  // ISO-8601 UTC, caller-provided
  std::string label;
  std::map<std::string, double> metrics;
};

// One-line JSON document for a snapshot.
std::string snapshot_json(const HistorySnapshot& snap);

// Appends `snap` as one line; creates the file when absent.
void append_history(const std::string& path, const HistorySnapshot& snap);

// Parses every non-blank line; a malformed line throws std::invalid_argument
// naming its line number.
std::vector<HistorySnapshot> load_history(const std::string& path);

}  // namespace yoso::perf
