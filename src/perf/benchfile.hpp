// One-key-per-line bench result files (BENCH_comm.json and friends).
//
// The file is a JSON object whose every top-level key sits on exactly one
// line ("key": <single-line value>), so independent benches each update
// their own key while a plain `git diff` still shows which experiment
// moved.  Unlike the hand-rolled line scanner this replaces, the file is
// read back through json::parse — a malformed file is an error, not a
// silent partial merge — and values are re-serialized through json::Writer
// so integers survive the round trip exactly.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace yoso::perf {

// Parses `path` and returns its top-level members in source order, each
// value re-serialized to a single line.  A missing or empty file yields an
// empty list; malformed JSON throws std::invalid_argument.
std::vector<std::pair<std::string, std::string>> read_bench_entries(const std::string& path);

// Writes the entries back in the one-key-per-line layout.
void write_bench_entries(const std::string& path,
                         const std::vector<std::pair<std::string, std::string>>& entries);

// Replaces (or appends) one top-level key.  `value` must itself be valid
// JSON — it is parsed before the file is touched.
void merge_bench_json(const std::string& path, const std::string& key,
                      const std::string& value);

}  // namespace yoso::perf
