// Per-primitive compute costs: the profile sweep recorder and the
// per-phase linear cost model.
//
// run_profile_point() replays the audit-regime configuration (same
// circuits, same 9300/9400 + n seeds as perf/sweep.hpp) under the compute
// profiler, so one point exercises all four phase contexts — ours'
// setup/offline/online plus the CDN baseline — and yields per-primitive
// counts and self-times attributed per phase (src/obs/profile.hpp).
//
// Two bench keys come out of the same points:
//   * "profile"  — counts only.  A pure function of the seeded run, so
//     bench_profile commits it to BENCH_comm.json bit-for-bit (E15).
//   * "op_costs" — counts plus measured self-µs and phase wall-µs.  The
//     machine-dependent side, recorded by `perf record` and checked in
//     bench/baselines/ci.json with the wide `_us` factor tolerance.
//
// fit_cost_model() closes the loop: from a recorded op_costs section it
// estimates one µs-per-call coefficient per primitive (global mean
// self-time), predicts every phase's wall-clock as Σ count_p · µs_p, and
// OLS-fits measured against predicted across all (phase, n) pairs.  A
// slope near 1 with high explained fraction means the primitive terms
// account for the phase — and the per-op coefficients then say where an
// NTT or multi-exp win will land (docs/PROFILING.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/scaling.hpp"

namespace yoso::perf {

// One profiled audit-regime point; the JSON payloads are prebuilt so the
// struct is usable from OBS_DISABLED builds (where they are empty objects).
struct ProfilePoint {
  unsigned n = 0, t = 0, k = 0;
  std::uint64_t gates = 0;
  std::string counts_json;  // {"ops":{...counts only...}} — deterministic
  std::string costs_json;   // counts + self_us + by_phase wall_us
};

ProfilePoint run_profile_point(unsigned n);

// BENCH_comm.json values ({"n4": ..., "n8": ...}) for a recorded sweep.
std::string profile_sweep_json(const std::vector<ProfilePoint>& pts);
std::string op_costs_sweep_json(const std::vector<ProfilePoint>& pts);

// One estimated primitive coefficient.
struct CostTerm {
  std::string op;
  std::uint64_t count = 0;  // total calls across the sweep
  double self_us = 0;       // total measured self-time
  double us_per_op = 0;     // self_us / count
};

// One (phase, n) observation: predicted vs measured wall-clock.
struct CostModelRow {
  std::string phase;
  unsigned n = 0;
  double predicted_us = 0;  // sum over ops of count * us_per_op
  double measured_us = 0;   // profiler phase wall-clock
  double explained = 0;     // predicted / measured
};

struct CostModel {
  bool ok = false;
  std::string error;             // why the model could not be fitted
  std::vector<CostTerm> terms;   // per-primitive coefficients, sorted by name
  std::vector<CostModelRow> rows;
  obs::LinearFit fit;            // measured ~ a + b * predicted
  unsigned n_max = 0;
  double explained_at_n_max = 0;  // Σ predicted / Σ measured at the largest n
  double explained_floor = 0.75;  // audit pass bar (conservative vs the ~0.9
                                  // a Release machine shows; Debug and CI
                                  // runners carry more unprofiled overhead)
  bool pass = false;
};

// Fits the model from a parsed bench document's "op_costs" key.  Missing or
// unusable data reports ok = false with an error instead of failing the
// caller: pre-PR-9 bench files and OBS_DISABLED recordings stay auditable.
CostModel fit_cost_model(const json::Value& bench);

std::string cost_model_json(const CostModel& model);

}  // namespace yoso::perf
