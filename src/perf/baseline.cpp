#include "perf/baseline.hpp"

#include <cmath>

namespace yoso::perf {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void flatten_into(const json::Value& v, const std::string& prefix,
                  std::map<std::string, double>* out) {
  if (v.is_number()) {
    (*out)[prefix] = v.number;
    return;
  }
  if (v.is_object()) {
    for (const auto& [key, val] : v.members) {
      if (key == "categories") continue;  // too volatile for a baseline
      if (key == "by_phase") continue;    // cost-model input, not a gate
      flatten_into(val, prefix + "." + key, out);
    }
  }
  // Arrays, strings and booleans carry no baseline-checkable numbers.
}

}  // namespace

double tolerance_for(const std::string& metric) {
  if (ends_with(metric, ".bytes")) return 0.10;
  // Measured wall-clock (op self-times, phase walls): the gate exists to
  // catch order-of-magnitude regressions — a primitive suddenly 5x slower —
  // not scheduler jitter, so the band is a wide 4x factor.
  if (ends_with(metric, "_us")) return 4.0;
  return 0.0;
}

std::map<std::string, double> flatten_metrics(const json::Value& root,
                                              const std::vector<std::string>& keys) {
  std::map<std::string, double> out;
  for (const auto& key : keys) {
    if (const json::Value* v = root.find(key)) flatten_into(*v, key, &out);
  }
  return out;
}

CheckResult check_against_baseline(const std::map<std::string, double>& baseline,
                                   const std::map<std::string, double>& current) {
  CheckResult result;
  result.checked = baseline.size();
  for (const auto& [metric, expected] : baseline) {
    Mismatch mm;
    mm.metric = metric;
    mm.expected = expected;
    mm.tolerance = tolerance_for(metric);
    auto it = current.find(metric);
    if (it == current.end()) {
      mm.missing = true;
      result.mismatches.push_back(std::move(mm));
      continue;
    }
    mm.actual = it->second;
    const bool ok = mm.tolerance > 0
                        ? std::abs(mm.actual - expected) <= mm.tolerance * std::abs(expected)
                        : mm.actual == expected;
    if (!ok) result.mismatches.push_back(std::move(mm));
  }
  return result;
}

std::map<std::string, double> parse_baseline(const json::Value& v) {
  std::map<std::string, double> out;
  if (!v.is_object()) return out;
  for (const auto& [key, val] : v.members) {
    if (val.is_number()) out[key] = val.number;
  }
  return out;
}

}  // namespace yoso::perf
