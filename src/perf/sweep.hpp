// Reproducible n-sweeps for the performance observatory.
//
// Each point replays exactly the configuration the standalone benches
// (bench_online_comm / bench_offline_comm) run — same circuits, same
// protocol seeds (9000/9100/9200 + n), same Rng(n) inputs — so a sweep
// recorded by tools/perf is bit-identical to the numbers already committed
// in BENCH_comm.json.
//
// The *audit* sweep is the controlled regime the scaling fitter consumes.
// ProtocolParams::for_gap lets the packing factor k drift sublinearly at
// small n (k = 1, 2, 2, 3, 4 over n = 4..16), which contaminates the
// online per-gate exponent with a spurious n/k trend; the audit regime
// pins k = max(1, (n+2)/4) so n/k stays (near) constant and the fitted
// slope measures the per-gate cost law itself.  Seeds 9300/9400 + n keep
// the audit runs distinct from the headline benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace yoso::perf {

// One point of the E3 online sweep: ours + CDN on wide_mul_circuit(4n).
struct OnlinePoint {
  unsigned n = 0, t = 0, k = 0;
  std::uint64_t gates = 0;
  double ours_mult_elems = 0;   // online.mult category, total elements
  double ours_total_elems = 0;  // online phase total, elements
  double cdn_mult_elems = 0;    // cdn.mult.pdec category, elements
  double cdn_total_elems = 0;   // CDN online phase total, elements
  std::string ours_report;      // full ledger JSON
  std::string cdn_report;
};

// One point of the E4 offline sweep: ours on wide_mul_circuit(n).
struct OfflinePoint {
  unsigned n = 0, t = 0, k = 0;
  std::uint64_t gates = 0;
  double offline_elems = 0;  // offline phase total, elements
  double offline_bytes = 0;
  std::string report;
};

// One point of the controlled fixed-ratio audit sweep (4n-wide circuit,
// k pinned by audit_packing).
struct AuditPoint {
  unsigned n = 0, t = 0, k = 0;
  std::uint64_t gates = 0;
  double ours_mult_bytes = 0, ours_mult_elems = 0;  // online.mult category
  double cdn_mult_bytes = 0, cdn_mult_elems = 0;    // cdn.mult.pdec category
  double offline_bytes = 0, offline_elems = 0;      // ours offline phase total
  std::string ours_report;
  std::string cdn_report;
};

// The pinned packing factor of the audit regime: max(1, (n+2)/4), which
// ProtocolParams::validate() accepts for every n >= 4 at eps = 0.25.
unsigned audit_packing(unsigned n);

OnlinePoint run_online_point(unsigned n);
OfflinePoint run_offline_point(unsigned n);
AuditPoint run_audit_point(unsigned n);

// BENCH_comm.json values ({"n4": ..., "n6": ...}) for a recorded sweep.
std::string online_comm_json(const std::vector<OnlinePoint>& pts);
std::string offline_comm_json(const std::vector<OfflinePoint>& pts);
std::string scaling_audit_json(const std::vector<AuditPoint>& pts);

}  // namespace yoso::perf
