#include "perf/critpath.hpp"

#include <algorithm>
#include <cstdlib>

#include "circuit/workloads.hpp"
#include "mpc/failure.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"
#include "obs/dag/critpath.hpp"
#include "perf/sweep.hpp"

namespace yoso::perf {

namespace {

// Same input derivation as the sweep/profile recorders: Rng seeded with n.
std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 20))));
    }
  }
  return inputs;
}

}  // namespace

CritpathPoint run_critpath_point(const CritpathOptions& opt) {
  CritpathPoint pt;
  pt.n = opt.n;
  auto params = ProtocolParams::for_gap(opt.n, 0.25, 128);
  params.k = audit_packing(opt.n);
  params.validate();
  pt.t = params.t;
  pt.k = params.k;
  Circuit c = wide_mul_circuit(4 * opt.n);
  pt.gates = c.num_mul_gates();

#ifndef OBS_DISABLED
  // Fresh profiler per point so the DAG's delta-snapshots start from a
  // clean cell (the recorder tolerates a nonzero base, but a clean one
  // keeps the reconciliation test in dag_test.cpp exact end to end).
  obs::profiler().reset();
#endif

  net::NetConfig cfg;
  cfg.faults.silence_per_committee = opt.silence;
  if (opt.churn_prob > 0) {
    cfg.churn.leave_prob = opt.churn_prob;
    cfg.churn.seed = opt.seed_base + opt.n;
  }
  Ledger ledger;
  net::NetBulletin board(ledger, cfg);

  YosoMpc ours(params, c, AdversaryPlan::honest(opt.n), opt.seed_base + opt.n, &board);
  try {
    ours.run(make_inputs(c, opt.n));
  } catch (const ProtocolAbort&) {
    // Faulted runs may classify-abort; the DAG up to the abort still prices.
    pt.completed = false;
  }

#ifndef OBS_DISABLED
  const obs::dag::DagRecorder& dag = board.dag();
  const obs::dag::CritReport report =
      obs::dag::analyze(dag.nodes(), obs::dag::CostCoeffs::reference_table());
  pt.crit_json = obs::dag::crit_report_json(report);
  pt.dag_json = dag.report_json();
#else
  pt.crit_json = "{}";
  pt.dag_json = "{}";
#endif
  return pt;
}

std::string critpath_sweep_json(const std::vector<CritpathPoint>& pts) {
  json::Writer w;
  w.begin_object();
  for (const auto& pt : pts) {
    std::string key = "n";
    key += std::to_string(pt.n);
    w.key(key).begin_object();
    w.field("t", pt.t);
    w.field("k", pt.k);
    w.field("gates", static_cast<std::uint64_t>(pt.gates));
    w.field("completed", pt.completed);
    w.key("crit").raw(pt.crit_json);
    w.key("dag").raw(pt.dag_json);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

std::vector<CritpathCheck> check_critpath(const json::Value& bench, std::string* error) {
  std::vector<CritpathCheck> checks;
  const json::Value* cp = bench.find("critpath");
  if (cp == nullptr || !cp->is_object()) {
    if (error != nullptr) *error = "no critpath key; run `perf record` on an obs-enabled build";
    return checks;
  }
  for (const auto& [key, point] : cp->members) {
    if (key.size() < 2 || key[0] != 'n') continue;
    CritpathCheck check;
    check.point = key;
    const json::Value* crit = point.find("crit");
    if (crit == nullptr || !crit->is_object() || crit->find("forecast") == nullptr) {
      check.error = "point carries no forecast (OBS_DISABLED recording?)";
      checks.push_back(std::move(check));
      continue;
    }
    const double work = crit->num_or("work", 0);
    const double span = crit->num_or("span", 0);
    check.parallelism = span > 0 ? work / span : 1.0;

    // forecast is {"k1": speedup, "k2": ..., ...}; sort by numeric k.
    std::vector<std::pair<unsigned, double>> curve;
    for (const auto& [kkey, v] : crit->find("forecast")->members) {
      if (kkey.size() < 2 || kkey[0] != 'k' || !v.is_number()) continue;
      const unsigned k = static_cast<unsigned>(std::strtoul(kkey.c_str() + 1, nullptr, 10));
      if (k > 0) curve.emplace_back(k, v.number);
    }
    std::sort(curve.begin(), curve.end());
    if (curve.empty()) {
      check.error = "empty forecast curve";
      checks.push_back(std::move(check));
      continue;
    }
    constexpr double kEps = 1e-9;
    double prev = 0;
    for (const auto& [k, speedup] : curve) {
      if (speedup + kEps < prev) check.monotone = false;
      if (speedup > static_cast<double>(k) + kEps) check.bounded = false;
      if (speedup > check.parallelism + kEps) check.bounded = false;
      prev = speedup;
      check.max_speedup = speedup;
    }
    checks.push_back(std::move(check));
  }
  if (checks.empty() && error != nullptr) *error = "critpath has no usable points";
  return checks;
}

}  // namespace yoso::perf
