#include "perf/sweep.hpp"

#include "baseline/cdn.hpp"
#include "circuit/workloads.hpp"
#include "common/json.hpp"
#include "mpc/protocol.hpp"

namespace yoso::perf {

namespace {

// Same input derivation as the standalone benches: Rng seeded with n.
std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 20))));
    }
  }
  return inputs;
}

double category_elems(const Ledger& ledger, Phase phase, const std::string& cat) {
  const auto& cats = ledger.categories(phase);
  auto it = cats.find(cat);
  return it == cats.end() ? 0 : static_cast<double>(it->second.elements);
}

double category_bytes(const Ledger& ledger, Phase phase, const std::string& cat) {
  const auto& cats = ledger.categories(phase);
  auto it = cats.find(cat);
  return it == cats.end() ? 0 : static_cast<double>(it->second.bytes);
}

}  // namespace

unsigned audit_packing(unsigned n) {
  const unsigned k = (n + 2) / 4;
  return k == 0 ? 1 : k;
}

OnlinePoint run_online_point(unsigned n) {
  OnlinePoint pt;
  pt.n = n;
  auto params = ProtocolParams::for_gap(n, 0.25, 128);
  pt.t = params.t;
  pt.k = params.k;
  Circuit c = wide_mul_circuit(4 * n);  // width Theta(n), the paper's regime
  pt.gates = c.num_mul_gates();

  YosoMpc ours(params, c, AdversaryPlan::honest(n), 9000 + n);
  ours.run(make_inputs(c, n));
  pt.ours_mult_elems = category_elems(ours.ledger(), Phase::Online, "online.mult");
  pt.ours_total_elems = static_cast<double>(ours.ledger().phase_total(Phase::Online).elements);
  pt.ours_report = ours.ledger().report_json();

  CdnBaseline cdn(params, c, AdversaryPlan::honest(n), 9100 + n);
  cdn.run(make_inputs(c, n));
  pt.cdn_mult_elems = category_elems(cdn.ledger(), Phase::Online, "cdn.mult.pdec");
  pt.cdn_total_elems = static_cast<double>(cdn.ledger().phase_total(Phase::Online).elements);
  pt.cdn_report = cdn.ledger().report_json();
  return pt;
}

OfflinePoint run_offline_point(unsigned n) {
  OfflinePoint pt;
  pt.n = n;
  auto params = ProtocolParams::for_gap(n, 0.25, 128);
  pt.t = params.t;
  pt.k = params.k;
  Circuit c = wide_mul_circuit(n);
  pt.gates = c.num_mul_gates();

  YosoMpc mpc(params, c, AdversaryPlan::honest(n), 9200 + n);
  mpc.run(make_inputs(c, n));
  pt.offline_elems = static_cast<double>(mpc.ledger().phase_total(Phase::Offline).elements);
  pt.offline_bytes = static_cast<double>(mpc.ledger().phase_total(Phase::Offline).bytes);
  pt.report = mpc.ledger().report_json();
  return pt;
}

AuditPoint run_audit_point(unsigned n) {
  AuditPoint pt;
  pt.n = n;
  auto params = ProtocolParams::for_gap(n, 0.25, 128);
  params.k = audit_packing(n);
  params.validate();
  pt.t = params.t;
  pt.k = params.k;
  Circuit c = wide_mul_circuit(4 * n);
  pt.gates = c.num_mul_gates();

  YosoMpc ours(params, c, AdversaryPlan::honest(n), 9300 + n);
  ours.run(make_inputs(c, n));
  pt.ours_mult_elems = category_elems(ours.ledger(), Phase::Online, "online.mult");
  pt.ours_mult_bytes = category_bytes(ours.ledger(), Phase::Online, "online.mult");
  pt.offline_elems = static_cast<double>(ours.ledger().phase_total(Phase::Offline).elements);
  pt.offline_bytes = static_cast<double>(ours.ledger().phase_total(Phase::Offline).bytes);
  pt.ours_report = ours.ledger().report_json();

  CdnBaseline cdn(params, c, AdversaryPlan::honest(n), 9400 + n);
  cdn.run(make_inputs(c, n));
  pt.cdn_mult_elems = category_elems(cdn.ledger(), Phase::Online, "cdn.mult.pdec");
  pt.cdn_mult_bytes = category_bytes(cdn.ledger(), Phase::Online, "cdn.mult.pdec");
  pt.cdn_report = cdn.ledger().report_json();
  return pt;
}

std::string online_comm_json(const std::vector<OnlinePoint>& pts) {
  json::Writer w;
  w.begin_object();
  for (const auto& pt : pts) {
    std::string key = "n";
    key += std::to_string(pt.n);
    w.key(key).begin_object();
    w.key("ours").raw(pt.ours_report);
    w.key("cdn").raw(pt.cdn_report);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

std::string offline_comm_json(const std::vector<OfflinePoint>& pts) {
  json::Writer w;
  w.begin_object();
  for (const auto& pt : pts) {
    std::string key = "n";
    key += std::to_string(pt.n);
    w.key(key).raw(pt.report);
  }
  w.end_object();
  return w.take();
}

std::string scaling_audit_json(const std::vector<AuditPoint>& pts) {
  json::Writer w;
  w.begin_object();
  for (const auto& pt : pts) {
    std::string key = "n";
    key += std::to_string(pt.n);
    w.key(key).begin_object();
    w.field("t", pt.t);
    w.field("k", pt.k);
    w.field("gates", static_cast<std::uint64_t>(pt.gates));
    w.key("ours").raw(pt.ours_report);
    w.key("cdn").raw(pt.cdn_report);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

}  // namespace yoso::perf
