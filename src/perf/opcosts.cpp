#include "perf/opcosts.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "baseline/cdn.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"
#include "obs/profile.hpp"
#include "perf/sweep.hpp"

namespace yoso::perf {

namespace {

// Same input derivation as the sweep recorder: Rng seeded with n.
std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 20))));
    }
  }
  return inputs;
}

#ifndef OBS_DISABLED

// The op_costs point payload: totals plus a per-phase breakdown with the
// measured phase wall-clock.  Baselines flatten "ops" (counts exact,
// self_us within the `_us` factor band) and skip "by_phase" wholesale —
// the per-phase split is the cost model's input, not a gate.
std::string costs_point_json(const obs::InstrumentCell& cell) {
  json::Writer w;
  w.begin_object();
  w.key("ops").begin_object();
  for (unsigned o = 0; o < obs::kOpCount; ++o) {
    const obs::Op op = static_cast<obs::Op>(o);
    const std::uint64_t total = cell.op_total_count(op);
    if (total == 0) continue;
    w.key(obs::op_name(op)).begin_object();
    w.field("count", total);
    w.field("self_us", static_cast<double>(cell.op_total_self_ns(op)) / 1e3);
    w.end_object();
  }
  w.end_object();
  w.key("by_phase").begin_object();
  for (unsigned p = 0; p < obs::kPhaseCtxCount; ++p) {
    const obs::PhaseCtx ctx = static_cast<obs::PhaseCtx>(p);
    const std::uint64_t wall_ns = cell.phase_wall_ns(ctx);
    bool any = wall_ns != 0;
    for (unsigned o = 0; o < obs::kOpCount && !any; ++o) {
      any = cell.op_count(ctx, static_cast<obs::Op>(o)) != 0;
    }
    if (!any) continue;
    w.key(obs::phase_ctx_name(ctx)).begin_object();
    w.field("wall_us", static_cast<double>(wall_ns) / 1e3);
    w.key("ops").begin_object();
    for (unsigned o = 0; o < obs::kOpCount; ++o) {
      const obs::Op op = static_cast<obs::Op>(o);
      const std::uint64_t count = cell.op_count(ctx, op);
      if (count == 0) continue;
      w.key(obs::op_name(op)).begin_object();
      w.field("count", count);
      w.field("self_us", static_cast<double>(cell.op_self_ns(ctx, op)) / 1e3);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

#endif  // OBS_DISABLED

}  // namespace

ProfilePoint run_profile_point(unsigned n) {
  ProfilePoint pt;
  pt.n = n;
  auto params = ProtocolParams::for_gap(n, 0.25, 128);
  params.k = audit_packing(n);
  params.validate();
  pt.t = params.t;
  pt.k = params.k;
  Circuit c = wide_mul_circuit(4 * n);
  pt.gates = c.num_mul_gates();

#ifndef OBS_DISABLED
  // Fresh cell per point: the sweep caller decides what to do with the
  // previous point's numbers, the point itself must be self-contained.
  obs::profiler().reset();
#endif

  YosoMpc ours(params, c, AdversaryPlan::honest(n), 9300 + n);
  ours.run(make_inputs(c, n));

  CdnBaseline cdn(params, c, AdversaryPlan::honest(n), 9400 + n);
  cdn.run(make_inputs(c, n));

#ifndef OBS_DISABLED
  const obs::InstrumentCell cell = obs::profiler().snapshot();
  pt.counts_json = cell.snapshot_json(false);
  pt.costs_json = costs_point_json(cell);
#else
  pt.counts_json = "{}";
  pt.costs_json = "{}";
#endif
  return pt;
}

namespace {

std::string sweep_json(const std::vector<ProfilePoint>& pts, bool costs) {
  json::Writer w;
  w.begin_object();
  for (const auto& pt : pts) {
    std::string key = "n";
    key += std::to_string(pt.n);
    w.key(key).begin_object();
    w.field("t", pt.t);
    w.field("k", pt.k);
    w.field("gates", static_cast<std::uint64_t>(pt.gates));
    w.key(costs ? "costs" : "counts").raw(costs ? pt.costs_json : pt.counts_json);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

}  // namespace

std::string profile_sweep_json(const std::vector<ProfilePoint>& pts) {
  return sweep_json(pts, false);
}

std::string op_costs_sweep_json(const std::vector<ProfilePoint>& pts) {
  return sweep_json(pts, true);
}

CostModel fit_cost_model(const json::Value& bench) {
  CostModel model;
  const json::Value* costs = bench.find("op_costs");
  if (costs == nullptr || !costs->is_object()) {
    model.error = "no op_costs key; run `perf record` on an obs-enabled build";
    return model;
  }

  struct PointRef {
    unsigned n = 0;
    const json::Value* by_phase = nullptr;
  };
  std::vector<PointRef> points;
  std::map<std::string, CostTerm> terms;  // global per-op totals

  for (const auto& [key, point] : costs->members) {
    if (key.size() < 2 || key[0] != 'n') continue;
    const unsigned n = static_cast<unsigned>(std::strtoul(key.c_str() + 1, nullptr, 10));
    if (n == 0) continue;
    const json::Value* ops = nullptr;
    if (const json::Value* c = point.find("costs")) ops = c->find("ops");
    if (ops == nullptr || !ops->is_object()) continue;
    for (const auto& [op, v] : ops->members) {
      CostTerm& term = terms[op];
      term.op = op;
      term.count += v.u64_or("count", 0);
      term.self_us += v.num_or("self_us", 0);
    }
    PointRef ref;
    ref.n = n;
    if (const json::Value* c = point.find("costs")) ref.by_phase = c->find("by_phase");
    points.push_back(ref);
  }

  if (points.empty()) {
    model.error = "op_costs has no usable points (profiler muted or disabled?)";
    return model;
  }

  // One coefficient per primitive: the sweep-wide mean self-µs per call.
  // Count-only primitives (paillier.add, field.mul, ...) carry zero
  // self-time and so predict zero — that is the point: their cost is
  // already attributed to the timed primitives they sit inside.
  for (auto& [op, term] : terms) {
    if (term.count > 0) term.us_per_op = term.self_us / static_cast<double>(term.count);
    model.terms.push_back(term);
  }

  double total_self_us = 0;
  for (const CostTerm& t : model.terms) total_self_us += t.self_us;
  if (total_self_us <= 0) {
    model.error = "op_costs carries no self-time; record with timings enabled";
    return model;
  }

  std::vector<double> xs, ys;
  for (const PointRef& ref : points) {
    if (ref.by_phase == nullptr || !ref.by_phase->is_object()) continue;
    for (const auto& [phase, ph] : ref.by_phase->members) {
      const double measured = ph.num_or("wall_us", 0);
      if (measured <= 0) continue;
      double predicted = 0;
      if (const json::Value* ops = ph.find("ops")) {
        for (const auto& [op, v] : ops->members) {
          auto it = terms.find(op);
          if (it == terms.end()) continue;
          predicted += static_cast<double>(v.u64_or("count", 0)) * it->second.us_per_op;
        }
      }
      CostModelRow row;
      row.phase = phase;
      row.n = ref.n;
      row.predicted_us = predicted;
      row.measured_us = measured;
      row.explained = predicted / measured;
      model.rows.push_back(row);
      xs.push_back(predicted);
      ys.push_back(measured);
      if (ref.n > model.n_max) model.n_max = ref.n;
    }
  }
  if (model.rows.empty()) {
    model.error = "op_costs has no phase wall-clock measurements";
    return model;
  }

  model.fit = obs::fit_linear(xs, ys);

  double pred_max = 0, meas_max = 0;
  for (const CostModelRow& row : model.rows) {
    if (row.n != model.n_max) continue;
    pred_max += row.predicted_us;
    meas_max += row.measured_us;
  }
  model.explained_at_n_max = meas_max > 0 ? pred_max / meas_max : 0;
  model.ok = true;
  model.pass = model.explained_at_n_max >= model.explained_floor;
  return model;
}

std::string cost_model_json(const CostModel& model) {
  json::Writer w;
  w.begin_object();
  w.field("ok", model.ok);
  w.field("pass", model.pass);
  if (!model.error.empty()) w.field("error", model.error);
  w.field("n_max", static_cast<std::uint64_t>(model.n_max));
  w.field("explained_at_n_max", model.explained_at_n_max);
  w.field("explained_floor", model.explained_floor);
  if (model.fit.ok) {
    w.key("fit").begin_object();
    w.field("slope", model.fit.slope);
    w.field("intercept", model.fit.intercept);
    w.field("r2", model.fit.r2);
    w.field("ci_lo", model.fit.ci_lo);
    w.field("ci_hi", model.fit.ci_hi);
    w.field("points", static_cast<std::uint64_t>(model.fit.points));
    w.end_object();
  }
  w.key("terms").begin_array();
  for (const CostTerm& t : model.terms) {
    w.begin_object();
    w.field("op", t.op);
    w.field("count", t.count);
    w.field("self_us", t.self_us);
    w.field("us_per_op", t.us_per_op);
    w.end_object();
  }
  w.end_array();
  w.key("rows").begin_array();
  for (const CostModelRow& row : model.rows) {
    w.begin_object();
    w.field("phase", row.phase);
    w.field("n", static_cast<std::uint64_t>(row.n));
    w.field("predicted_us", row.predicted_us);
    w.field("measured_us", row.measured_us);
    w.field("explained", row.explained);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace yoso::perf
