#include "perf/benchfile.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "common/json.hpp"

namespace yoso::perf {

std::vector<std::pair<std::string, std::string>> read_bench_entries(const std::string& path) {
  std::vector<std::pair<std::string, std::string>> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) return entries;
  const std::string text(std::istreambuf_iterator<char>(in), {});
  if (text.find_first_not_of(" \t\r\n") == std::string::npos) return entries;
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) {
    throw std::invalid_argument("bench file " + path + ": top level is not an object");
  }
  for (const auto& [key, value] : doc.members) {
    json::Writer w;
    json::write(w, value);
    entries.emplace_back(key, w.take());
  }
  return entries;
}

void write_bench_entries(const std::string& path,
                         const std::vector<std::pair<std::string, std::string>>& entries) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << '"' << json::Writer::escape(entries[i].first) << '"' << ": " << entries[i].second
        << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

void merge_bench_json(const std::string& path, const std::string& key,
                      const std::string& value) {
  (void)json::parse(value);  // refuse to write a file we could not read back
  auto entries = read_bench_entries(path);
  bool replaced = false;
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = value;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries.emplace_back(key, value);
  write_bench_entries(path, entries);
  std::printf("[%s updated: key \"%s\"]\n", path.c_str(), key.c_str());
}

}  // namespace yoso::perf
