#include "perf/audit.hpp"

#include <algorithm>
#include <cstdlib>

namespace yoso::perf {

namespace {

struct AuditRow {
  double n = 0;
  double k = 0;
  double gates = 0;
  double ours_mult_bytes = 0, ours_mult_elems = 0;
  double cdn_mult_bytes = 0, cdn_mult_elems = 0;
  double offline_bytes = 0;
};

const json::Value* descend(const json::Value* v, std::initializer_list<const char*> path) {
  for (const char* key : path) {
    if (v == nullptr) return nullptr;
    v = v->find(key);
  }
  return v;
}

double leaf(const json::Value* v, std::initializer_list<const char*> path, const char* field) {
  const json::Value* node = descend(v, path);
  return node == nullptr ? 0 : node->num_or(field, 0);
}

}  // namespace

AuditReport audit_scaling(const json::Value& bench) {
  AuditReport report;
  const json::Value* audit = bench.find("scaling_audit");
  if (audit == nullptr || !audit->is_object()) {
    report.error = "no scaling_audit key; run `perf record` first";
    return report;
  }

  std::vector<AuditRow> rows;
  for (const auto& [key, point] : audit->members) {
    if (key.size() < 2 || key[0] != 'n') continue;
    AuditRow row;
    row.n = std::strtod(key.c_str() + 1, nullptr);
    row.k = point.num_or("k", 0);
    row.gates = point.num_or("gates", 0);
    if (row.n <= 0 || row.gates <= 0) continue;
    row.ours_mult_bytes = leaf(&point, {"ours", "online", "categories", "online.mult"}, "bytes");
    row.ours_mult_elems =
        leaf(&point, {"ours", "online", "categories", "online.mult"}, "elements");
    row.cdn_mult_bytes = leaf(&point, {"cdn", "online", "categories", "cdn.mult.pdec"}, "bytes");
    row.cdn_mult_elems =
        leaf(&point, {"cdn", "online", "categories", "cdn.mult.pdec"}, "elements");
    row.offline_bytes = leaf(&point, {"ours", "offline", "total"}, "bytes");
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const AuditRow& a, const AuditRow& b) {
    return a.n < b.n;
  });
  if (rows.size() < 3) {
    report.error = "scaling_audit has fewer than 3 usable points";
    return report;
  }

  std::vector<double> ns, ours_online, cdn_online, ours_offline;
  for (const AuditRow& row : rows) {
    ns.push_back(row.n);
    ours_online.push_back(row.ours_mult_bytes / row.gates);
    cdn_online.push_back(row.cdn_mult_bytes / row.gates);
    ours_offline.push_back(row.offline_bytes / row.gates);
  }
  report.checks.push_back(obs::check_exponent("ours.online.mult.bytes_per_gate", ns,
                                              ours_online, {-0.15, 0.15}));
  report.checks.push_back(
      obs::check_exponent("cdn.online.pdec.bytes_per_gate", ns, cdn_online, {0.85, 1.25}));
  report.checks.push_back(obs::check_exponent("ours.offline.total.bytes_per_gate", ns,
                                              ours_offline, {0.85, 1.75}));

  const AuditRow& last = rows.back();
  report.speedup = obs::derive_packed_speedup(
      1000, 0.05, last.ours_mult_elems / last.gates, last.cdn_mult_elems / last.gates,
      static_cast<unsigned>(last.n), static_cast<unsigned>(last.k));

  report.pass = report.speedup.feasible && report.speedup.speedup >= report.speedup_floor;
  for (const obs::ExponentCheck& check : report.checks) {
    report.pass = report.pass && check.pass;
  }

  report.cost_model = fit_cost_model(bench);
  if (report.cost_model.ok) report.pass = report.pass && report.cost_model.pass;

  report.critpath = check_critpath(bench, &report.critpath_note);
  for (const CritpathCheck& check : report.critpath) {
    report.pass = report.pass && check.pass();
  }
  return report;
}

std::string audit_report_json(const AuditReport& report) {
  json::Writer w;
  w.begin_object();
  w.field("pass", report.pass);
  if (!report.error.empty()) w.field("error", report.error);
  w.key("checks").begin_array();
  for (const obs::ExponentCheck& check : report.checks) {
    w.begin_object();
    w.field("name", check.name);
    w.field("pass", check.pass);
    w.field("slope", check.fit.slope);
    w.field("ci_lo", check.fit.ci_lo);
    w.field("ci_hi", check.fit.ci_hi);
    w.field("r2", check.fit.r2);
    w.field("band_lo", check.band.lo);
    w.field("band_hi", check.band.hi);
    w.field("points", static_cast<std::uint64_t>(check.fit.points));
    w.end_object();
  }
  w.end_array();
  w.key("speedup").begin_object();
  w.field("feasible", report.speedup.feasible);
  w.field("C", report.speedup.C);
  w.field("f", report.speedup.f);
  w.field("c", report.speedup.c);
  w.field("c_prime", report.speedup.c_prime);
  w.field("k", report.speedup.k);
  w.field("e0", report.speedup.e0);
  w.field("cdn_per_member", report.speedup.cdn_per_member);
  w.field("baseline_per_gate", report.speedup.baseline_per_gate);
  w.field("ours_per_gate", report.speedup.ours_per_gate);
  w.field("speedup", report.speedup.speedup);
  w.field("floor", report.speedup_floor);
  w.end_object();
  w.key("cost_model").raw(cost_model_json(report.cost_model));
  w.key("critpath").begin_object();
  if (!report.critpath_note.empty()) w.field("note", report.critpath_note);
  w.key("points").begin_array();
  for (const CritpathCheck& check : report.critpath) {
    w.begin_object();
    w.field("point", check.point);
    w.field("pass", check.pass());
    w.field("monotone", check.monotone);
    w.field("bounded", check.bounded);
    w.field("parallelism", check.parallelism);
    w.field("max_speedup", check.max_speedup);
    if (!check.error.empty()) w.field("error", check.error);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace yoso::perf
