#include "perf/history.hpp"

#include <fstream>
#include <stdexcept>

#include "common/json.hpp"

namespace yoso::perf {

std::string snapshot_json(const HistorySnapshot& snap) {
  json::Writer w;
  w.begin_object();
  w.field("timestamp", snap.timestamp);
  w.field("label", snap.label);
  w.key("metrics").begin_object();
  for (const auto& [metric, value] : snap.metrics) {
    w.field(metric, value);
  }
  w.end_object();
  w.end_object();
  return w.take();
}

void append_history(const std::string& path, const HistorySnapshot& snap) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) throw std::runtime_error("history: cannot open " + path);
  out << snapshot_json(snap) << "\n";
}

std::vector<HistorySnapshot> load_history(const std::string& path) {
  std::vector<HistorySnapshot> snaps;
  std::ifstream in(path, std::ios::binary);
  if (!in) return snaps;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    json::Value doc;
    try {
      doc = json::parse(line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("history " + path + " line " + std::to_string(lineno) +
                                  ": " + e.what());
    }
    HistorySnapshot snap;
    snap.timestamp = doc.str_or("timestamp", "");
    snap.label = doc.str_or("label", "");
    if (const json::Value* metrics = doc.find("metrics"); metrics && metrics->is_object()) {
      for (const auto& [key, val] : metrics->members) {
        if (val.is_number()) snap.metrics[key] = val.number;
      }
    }
    snaps.push_back(std::move(snap));
  }
  return snaps;
}

}  // namespace yoso::perf
