#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/json.hpp"
#include "net/wire_faults.hpp"  // mix64 (seed derivation)
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace yoso::service {

MpcService::MpcService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      params_(ProtocolParams::for_gap(cfg_.n, cfg_.eps, cfg_.paillier_bits, cfg_.failstop_mode)),
      plan_(cfg_.plan.value_or(AdversaryPlan::honest(cfg_.n))) {
  pool_ = std::make_unique<TriplePool>(params_, cfg_.pool_circuit, cfg_.net, plan_,
                                       net::mix64(cfg_.seed ^ 0x9001ULL), cfg_.pool, &loop_);
  attach_master_clock();
}

MpcService::~MpcService() {
#ifndef OBS_DISABLED
  obs::tracer().detach_virtual_clock(this);
#endif
}

void MpcService::attach_master_clock() {
#ifndef OBS_DISABLED
  obs::tracer().attach_virtual_clock(this, [this] { return loop_.now(); });
#endif
}

std::uint64_t MpcService::submit_at(double at, SessionRequest req) {
  auto rec = std::make_unique<SessionRecord>();
  rec->id = records_.size() + 1;
  rec->tag = req.tag;
  rec->priority = req.priority;
  rec->request = std::move(req);
  const std::uint64_t id = rec->id;
  records_.push_back(std::move(rec));
  {
    MutexLock lock(&mu_);
    pending_arrivals_ += 1;
  }
  loop_.schedule_at(at, [this, id] { arrive(id); });
  return id;
}

std::uint64_t MpcService::submit(SessionRequest req) {
  return submit_at(loop_.now(), std::move(req));
}

void MpcService::shutdown_at(double at) {
  loop_.schedule_at(at, [this] {
    {
      MutexLock lock(&mu_);
      shutting_down_ = true;
    }
    pool_->halt();
  });
}

void MpcService::arrive(std::uint64_t id) {
  SessionRecord& rec = *records_[id - 1];
  rec.submit_s = loop_.now();
  const Circuit& c = rec.request.circuit;
  if (cfg_.pool.adaptive) pool_->note_arrival();

  bool shutting = false;
  {
    MutexLock lock(&mu_);
    pending_arrivals_ -= 1;
    shutting = shutting_down_;
  }
  if (shutting) {
    reject(rec, RejectReason::ShuttingDown);
    return;
  }
  if (c.num_clients() > cfg_.max_clients) {
    reject(rec, RejectReason::TooManyClients);
    return;
  }
  if (c.mul_depth() > cfg_.max_mul_depth) {
    reject(rec, RejectReason::TooDeep);
    return;
  }
  bool inputs_ok = rec.request.inputs.size() == c.num_clients();
  for (unsigned client = 0; inputs_ok && client < c.num_clients(); ++client) {
    inputs_ok = rec.request.inputs[client].size() == c.inputs_of(client).size();
  }
  if (!inputs_ok) {
    reject(rec, RejectReason::BadInputs);
    return;
  }
  // Occupancy check: a session that can start immediately never queues, so
  // the cap only bites when every runner slot is taken too.  Checked and
  // enqueued under one lock so concurrent arrivals cannot both squeeze past
  // the cap.
  bool full = false;
  {
    MutexLock lock(&mu_);
    if (queue_.size() >= cfg_.max_queue && running_ >= cfg_.max_concurrent) {
      full = true;
    } else {
      queue_.insert({-static_cast<std::int64_t>(rec.priority), id});
    }
  }
  if (full) {
    reject(rec, RejectReason::QueueFull);
    return;
  }
  try_dispatch();
}

void MpcService::reject(SessionRecord& rec, RejectReason reason) {
  rec.state = SessionState::Rejected;
  rec.reject_reason = reason;
  rec.finish_s = loop_.now();
  OBS_COUNT("service.session.rejected");
  maybe_halt_pool();
}

void MpcService::try_dispatch() {
  while (true) {
    std::uint64_t id = 0;
    {
      // Pop + slot reservation in one critical section, so two finish
      // events cannot dispatch the same session or overshoot the cap.
      MutexLock lock(&mu_);
      if (running_ >= cfg_.max_concurrent || queue_.empty()) return;
      id = queue_.begin()->second;
      queue_.erase(queue_.begin());
      running_ += 1;
    }
    execute(id);  // heavy protocol work runs outside the lock
  }
}

void MpcService::execute(std::uint64_t id) {
  SessionRecord& rec = *records_[id - 1];
  rec.state = SessionState::Running;
  if (rec.attempts == 0) rec.start_s = loop_.now();
  rec.attempts += 1;
  const unsigned attempt = rec.attempts;
  rec.failure.reset();
  rec.error.clear();
  rec.outputs.clear();

  // First attempt: claim the pool and run exactly as the fail-fast service
  // did (byte-identical when resilience is off).  Resubmissions never claim
  // — banked units are strict-parameterized — and run inline on a fresh
  // board, under the Section 5.4 fail-stop parameters when those genuinely
  // lower the reconstruction bar.
  bool degraded_attempt = false;
  ProtocolParams attempt_params = params_;
  if (attempt >= 2) {
    const ProtocolParams failstop =
        ProtocolParams::for_gap(cfg_.n, cfg_.eps, cfg_.paillier_bits, /*failstop_mode=*/true);
    if (failstop.recon_threshold() < params_.recon_threshold()) {
      attempt_params = failstop;
      degraded_attempt = true;
      rec.degraded = true;
    }
  }

  std::shared_ptr<PooledUnit> unit =
      attempt == 1 ? pool_->claim(rec.request.circuit.fingerprint()) : nullptr;
  if (unit) {
    rec.pool_hit = true;
    rec.ledger = std::move(unit->ledger);
    rec.board = std::move(unit->board);
    rec.mpc = std::move(unit->mpc);
    OBS_COUNT("service.pool.hit");
  } else {
    // The abandoned attempt's total (which already folds in earlier
    // attempts via its own marker) becomes the new board's sunk-cost
    // marker, so retry bytes accumulate on the final attempt's ledger.
    const std::size_t prev_bytes = rec.ledger ? rec.ledger->total().bytes : 0;
    rec.pool_hit = false;
    rec.ledger = std::make_unique<Ledger>();
    net::NetConfig net = cfg_.net;
    net.wire_faults.seed = net::mix64(cfg_.net.wire_faults.seed ^ (0x5e55ULL + id));
    std::uint64_t mpc_seed = net::mix64(cfg_.seed ^ (0x0de1ULL + id));
    if (attempt >= 2) {
      // Fresh wire/churn/protocol randomness per attempt (the departed-member
      // set is redrawn; parties' link classes stay put — geography is stable).
      const std::uint64_t a = attempt;
      net.wire_faults.seed = net::mix64(net.wire_faults.seed ^ (0xa77eULL * a));
      if (!net.churn.empty()) net.churn.seed = net::mix64(net.churn.seed ^ (0xc4a1ULL * a));
      mpc_seed = net::mix64(mpc_seed ^ (0x5eedULL * a));
    }
    rec.board = std::make_unique<net::NetBulletin>(*rec.ledger, net);
    if (attempt >= 2) {
      rec.sunk_bytes = prev_bytes;
      rec.board->publish_external("service", Phase::Setup, "session.resubmit", prev_bytes, 0);
      if (degraded_attempt) {
        rec.board->publish_external("degrade", Phase::Setup, "degrade.retry", 0, 1);
      }
      OBS_COUNT_N("service.session.resubmit_bytes", prev_bytes);
    }
    rec.mpc = std::make_unique<YosoMpc>(attempt_params, rec.request.circuit, plan_, mpc_seed,
                                        rec.board.get());
    OBS_COUNT("service.pool.miss");
  }
  rec.ledger->record(Phase::Online, rec.pool_hit ? "service.pool.hit" : "service.pool.miss", 0,
                     0);
  // A session board's constructor (miss path) grabs the tracer's virtual
  // clock; restore the master clock so the session root span and everything
  // it encloses stamp service time.
  attach_master_clock();

  obs::Span span("session." + std::to_string(id), "service");
  span.attr("tag", rec.tag)
      .attr("priority", static_cast<std::int64_t>(rec.priority))
      .attr("pool_hit", static_cast<std::int64_t>(rec.pool_hit ? 1 : 0))
      .attr("attempt", static_cast<std::int64_t>(attempt));

  bool success = false;
  try {
    if (!rec.mpc->preprocessed()) rec.mpc->preprocess();
    OnlineResult result = rec.mpc->evaluate(rec.request.inputs);
    rec.outputs = std::move(result.outputs);
    rec.plaintext_modulus = rec.mpc->plaintext_modulus();
    success = true;
  } catch (const ProtocolAbort& abort) {
    if (abort.report().has_value()) {
      rec.failure = abort.report();
    } else {
      rec.error = abort.what();
    }
  } catch (const std::exception& e) {
    rec.error = e.what();
  }
  rec.board->flush();

  // A pool hit already paid setup+offline on the production timeline; the
  // session's own latency is the online phase.  A miss pays all three inline.
  // The phase watchdog cuts any inline phase whose virtual time exceeds the
  // timeout — the attempt counts as failed (the board went silent too long
  // for the client to keep waiting) and the timeline stops at the cut.
  const ResilienceConfig& res = cfg_.resilience;
  bool attempt_timed_out = false;
  double duration = 0;
  for (Phase p : {Phase::Setup, Phase::Offline, Phase::Online}) {
    if (rec.pool_hit && p != Phase::Online) continue;
    const double s = rec.board->phase_traffic(p).seconds;
    if (res.phase_timeout_s > 0 && s > res.phase_timeout_s) {
      attempt_timed_out = true;
      rec.timeouts += 1;
      rec.timeout_phase = p;
      duration += res.phase_timeout_s;
      break;
    }
    duration += s;
  }
  if (attempt_timed_out) {
    success = false;
    rec.outputs.clear();
    if (!rec.failure.has_value() && rec.error.empty()) {
      rec.error = std::string("phase timeout: ") + phase_name(rec.timeout_phase);
    }
    OBS_COUNT("service.session.timeout");
  }
  span.attr("success", static_cast<std::int64_t>(success ? 1 : 0));
  span.end();

  // Self-healing: a timed-out or silence-decisive failure is resubmitted
  // (bounded by max_resubmits) after capped exponential backoff; the runner
  // slot is held through the backoff so occupancy stays honest.
  const bool silence_failure = rec.failure.has_value() && rec.failure->silence_decisive();
  if (!success && rec.resubmits < res.max_resubmits &&
      (attempt_timed_out || silence_failure)) {
    rec.resubmits += 1;
    const double backoff =
        std::min(res.backoff_base_s * std::ldexp(1.0, static_cast<int>(rec.resubmits) - 1),
                 res.backoff_cap_s);
    rec.backoff_wait_s += backoff;
    OBS_COUNT("service.session.resubmit");
    loop_.schedule_in(duration + backoff, [this, id] { execute(id); });
    return;
  }

  loop_.schedule_in(duration, [this, id, success] { finish(id, success); });
}

void MpcService::finish(std::uint64_t id, bool success) {
  SessionRecord& rec = *records_[id - 1];
  rec.finish_s = loop_.now();
  rec.state = success ? SessionState::Completed : SessionState::Failed;
  if (success) {
    OBS_COUNT("service.session.completed");
    if (rec.resubmits > 0) OBS_COUNT("service.session.recovered");
  } else {
    OBS_COUNT("service.session.failed");
  }
  OBS_HIST("service.session.latency_us",
           static_cast<std::uint64_t>(rec.latency_s() * 1e6));
  {
    MutexLock lock(&mu_);
    running_ -= 1;
  }
  try_dispatch();
  maybe_halt_pool();
}

void MpcService::maybe_halt_pool() {
  bool idle = false;
  {
    MutexLock lock(&mu_);
    idle = pending_arrivals_ == 0 && queue_.empty() && running_ == 0;
  }
  if (idle) pool_->halt();  // the pool takes its own lock
}

double MpcService::run() {
  {
    MutexLock lock(&mu_);
    started_ = true;
  }
  attach_master_clock();
  pool_->start();
  return loop_.run();
}

namespace {

// Nearest-rank percentile over an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

ServiceStats MpcService::stats() const {
  ServiceStats s;
  s.submitted = records_.size();
  std::vector<double> latencies;
  double first_submit = -1, last_finish = -1;
  for (const auto& rec : records_) {
    switch (rec->state) {
      case SessionState::Rejected:
        s.rejected += 1;
        s.rejected_by_reason[reject_reason_name(rec->reject_reason)] += 1;
        break;
      case SessionState::Completed: s.completed += 1; break;
      case SessionState::Failed: s.failed += 1; break;
      default: break;
    }
    s.resubmits += rec->resubmits;
    s.timeouts += rec->timeouts;
    s.backoff_wait_s += rec->backoff_wait_s;
    s.sunk_bytes += rec->sunk_bytes;
    if (rec->state == SessionState::Completed && rec->resubmits > 0) s.recovered += 1;
    if (rec->state == SessionState::Completed || rec->state == SessionState::Failed) {
      latencies.push_back(rec->latency_s());
      if (first_submit < 0 || rec->submit_s < first_submit) first_submit = rec->submit_s;
      if (rec->finish_s > last_finish) last_finish = rec->finish_s;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  s.latency_p50_s = percentile(latencies, 0.50);
  s.latency_p99_s = percentile(latencies, 0.99);
  if (last_finish > first_submit && first_submit >= 0) {
    s.duration_s = last_finish - first_submit;
    s.sessions_per_sec = static_cast<double>(s.completed) / s.duration_s;
  }
  s.pool = pool_->stats();
  return s;
}

Ledger MpcService::aggregate_ledger() const {
  Ledger out;
  for (const auto& rec : records_) {
    if (rec->ledger) out.merge(*rec->ledger);
  }
  pool_->fold_unclaimed(out);
  return out;
}

std::string MpcService::report_json() const {
  const ServiceStats s = stats();
  json::Writer w;
  w.begin_object();
  w.key("meta").raw(obs::run_metadata_json());
  w.key("config").begin_object();
  w.field("n", static_cast<std::uint64_t>(cfg_.n));
  w.field("eps", cfg_.eps);
  w.field("paillier_bits", static_cast<std::uint64_t>(cfg_.paillier_bits));
  w.field("failstop_mode", cfg_.failstop_mode);
  w.field("seed", static_cast<std::uint64_t>(cfg_.seed));
  w.field("max_concurrent", static_cast<std::uint64_t>(cfg_.max_concurrent));
  w.field("max_queue", static_cast<std::uint64_t>(cfg_.max_queue));
  w.field("max_clients", static_cast<std::uint64_t>(cfg_.max_clients));
  w.field("max_mul_depth", static_cast<std::uint64_t>(cfg_.max_mul_depth));
  w.key("resilience").begin_object();
  w.field("max_resubmits", static_cast<std::uint64_t>(cfg_.resilience.max_resubmits));
  w.field("phase_timeout_s", cfg_.resilience.phase_timeout_s);
  w.field("backoff_base_s", cfg_.resilience.backoff_base_s);
  w.field("backoff_cap_s", cfg_.resilience.backoff_cap_s);
  w.end_object();
  w.end_object();
  w.key("stats").begin_object();
  w.field("submitted", static_cast<std::uint64_t>(s.submitted));
  w.field("rejected", static_cast<std::uint64_t>(s.rejected));
  w.field("completed", static_cast<std::uint64_t>(s.completed));
  w.field("failed", static_cast<std::uint64_t>(s.failed));
  w.field("duration_s", s.duration_s);
  w.field("sessions_per_sec", s.sessions_per_sec);
  w.field("latency_p50_s", s.latency_p50_s);
  w.field("latency_p99_s", s.latency_p99_s);
  w.field("resubmits", static_cast<std::uint64_t>(s.resubmits));
  w.field("timeouts", static_cast<std::uint64_t>(s.timeouts));
  w.field("recovered", static_cast<std::uint64_t>(s.recovered));
  w.field("backoff_wait_s", s.backoff_wait_s);
  w.field("sunk_bytes", static_cast<std::uint64_t>(s.sunk_bytes));
  w.key("rejected_by_reason").begin_object();
  for (const auto& [reason, count] : s.rejected_by_reason) {
    w.field(reason, static_cast<std::uint64_t>(count));
  }
  w.end_object();
  w.end_object();
  w.key("pool").raw(pool_->report_json());
  w.key("sessions").begin_array();
  for (const auto& rec : records_) w.raw(rec->to_json());
  w.end_array();
  w.key("aggregate_ledger").raw(aggregate_ledger().report_json());
  w.end_object();
  return w.take();
}

}  // namespace yoso::service
