#include "service/workloads.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/wire_faults.hpp"  // mix64 (per-client value/mask derivation)

namespace yoso::service {

namespace {

std::uint64_t bit_mask(unsigned bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

}  // namespace

AggregationWorkload::AggregationWorkload(AggregationConfig cfg) : cfg_(cfg) {
  if (cfg_.gateways == 0) throw std::invalid_argument("aggregation: need gateways");
  if (cfg_.batch_clients == 0) throw std::invalid_argument("aggregation: need batch_clients");
}

Circuit AggregationWorkload::session_circuit() const {
  if (cfg_.integrity) return statistics_circuit(cfg_.gateways);
  Circuit c;
  WireId acc = c.input(0);
  for (unsigned g = 1; g < cfg_.gateways; ++g) acc = c.add(acc, c.input(g));
  c.output(acc, 0);
  return c;
}

std::uint64_t AggregationWorkload::num_batches() const {
  return (cfg_.clients_total + cfg_.batch_clients - 1) / cfg_.batch_clients;
}

AggregationBatch AggregationWorkload::batch(std::uint64_t b) const {
  if (b >= num_batches()) throw std::out_of_range("aggregation: batch index");
  AggregationBatch out;
  out.index = b;
  const std::uint64_t first = b * cfg_.batch_clients;
  const std::uint64_t last = std::min(first + cfg_.batch_clients, cfg_.clients_total);
  out.clients = last - first;

  const std::uint64_t vmask = bit_mask(cfg_.value_bits);
  const std::uint64_t rmask = bit_mask(cfg_.mask_bits);
  std::vector<mpz_class> subtotal(cfg_.gateways, 0);
  for (std::uint64_t i = first; i < last; ++i) {
    const std::uint64_t x = net::mix64(cfg_.seed ^ (2 * i + 1)) & vmask;
    const std::uint64_t r = net::mix64(cfg_.seed ^ (2 * i + 2)) & rmask;
    subtotal[i % cfg_.gateways] += r;
    out.masked_sum += x + r;
    out.expected_value_sum += x;
    out.expected_mask_total += r;
  }

  out.request.tag = "agg.batch." + std::to_string(b);
  out.request.circuit = session_circuit();
  out.request.inputs.reserve(cfg_.gateways);
  for (unsigned g = 0; g < cfg_.gateways; ++g) {
    out.request.inputs.push_back({subtotal[g]});
  }
  out.request.priority =
      cfg_.priority_every != 0 && (b + 1) % cfg_.priority_every == 0 ? 1u : 0u;
  out.submit_at = cfg_.start_s + static_cast<double>(b) * cfg_.interarrival_s;
  return out;
}

bool AggregationWorkload::verify(const AggregationBatch& b, const SessionRecord& rec) const {
  if (rec.state != SessionState::Completed) return false;
  if (rec.outputs.empty() || rec.plaintext_modulus == 0) return false;

  // The MPC reveals the batch's mask total (reduced mod N^s; the totals are
  // far below the modulus at any sane parameterization, so compare reduced).
  const mpz_class expected_total = b.expected_mask_total % rec.plaintext_modulus;
  if (rec.outputs[0] != expected_total) return false;

  // Coordinator-side unmasking in the clear.
  if (b.masked_sum - b.expected_mask_total != b.expected_value_sum) return false;

  if (cfg_.integrity) {
    if (rec.outputs.size() < 2) return false;
    mpz_class sq = 0;
    for (const auto& gateway_inputs : b.request.inputs) {
      sq += gateway_inputs[0] * gateway_inputs[0];
    }
    if (rec.outputs[1] != sq % rec.plaintext_modulus) return false;
  }
  return true;
}

}  // namespace yoso::service
