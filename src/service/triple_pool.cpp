#include "service/triple_pool.hpp"

#include <utility>

#include "common/json.hpp"
#include "net/wire_faults.hpp"  // mix64 (per-unit seed derivation)
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace yoso::service {

TriplePool::TriplePool(ProtocolParams params, Circuit circuit, net::NetConfig net,
                       AdversaryPlan plan, std::uint64_t seed, PoolConfig cfg,
                       net::EventLoop* loop)
    : params_(std::move(params)),
      circuit_(std::move(circuit)),
      net_(std::move(net)),
      plan_(std::move(plan)),
      seed_(seed),
      cfg_(cfg),
      loop_(loop),
      fingerprint_(circuit_.fingerprint()),
      parked_(cfg.lanes, false) {}

TriplePool::~TriplePool() {
#ifndef OBS_DISABLED
  obs::tracer().detach_virtual_clock(this);
#endif
}

void TriplePool::set_depth_gauge() {
  stats_.depth = bank_.size();
  if (stats_.depth > stats_.peak_depth) stats_.peak_depth = stats_.depth;
  OBS_GAUGE_SET("service.pool.depth", stats_.depth);
}

void TriplePool::start() {
  if (cfg_.stalled || cfg_.lanes == 0 || circuit_.num_wires() == 0) return;
  for (unsigned lane = 0; lane < cfg_.lanes; ++lane) {
    loop_->schedule_at(loop_->now(), [this, lane] { lane_cycle(lane); });
  }
}

void TriplePool::halt() {
  MutexLock lock(&mu_);
  halted_ = true;
}

void TriplePool::lane_cycle(unsigned lane) {
  std::uint64_t id = 0;
  {
    MutexLock lock(&mu_);
    if (halted_ || cfg_.stalled) return;
    if (bank_.size() + in_flight_ >= cfg_.capacity) {
      parked_[lane] = true;  // claim() wakes us when a slot frees up
      return;
    }
    id = ++next_unit_;
  }

  // Production proper runs outside the lock: it touches only the fresh unit
  // and the pool's immutable config, so lanes can overlap once threaded.
  auto unit = std::make_shared<PooledUnit>();
  unit->id = id;
  unit->fingerprint = fingerprint_;
  unit->ledger = std::make_unique<Ledger>();
  net::NetConfig net = net_;
  net.wire_faults.seed = net::mix64(net_.wire_faults.seed ^ id);
  unit->board = std::make_unique<net::NetBulletin>(*unit->ledger, net);
  // The board's constructor claimed the tracer's virtual clock for its own
  // private loop; put the service clock back so spans read service time.
#ifndef OBS_DISABLED
  obs::tracer().attach_virtual_clock(this, [loop = loop_] { return loop->now(); });
#endif
  unit->mpc = std::make_unique<YosoMpc>(params_, circuit_, plan_, net::mix64(seed_ ^ id),
                                        unit->board.get());

  obs::Span span("pool.produce", "service");
  span.attr("unit", static_cast<std::int64_t>(id)).attr("lane", static_cast<std::int64_t>(lane));
  try {
    unit->mpc->preprocess();
  } catch (const std::exception&) {
    // Production failed (faulted offline phase under chaos).  The lane halts
    // — retrying against the same fault plan would spin — and the unit's
    // traffic is kept for the aggregate ledger fold.
    span.attr("failed", "true");
    MutexLock lock(&mu_);
    stats_.production_failed += 1;
    retired_.push_back(std::move(unit));
    return;
  }
  unit->board->flush();
  const double produce_s = unit->board->phase_traffic(Phase::Setup).seconds +
                           unit->board->phase_traffic(Phase::Offline).seconds;
  unit->offline_virtual_s = produce_s;
  span.end();

  // The CPU work ran now, but on the virtual timeline the unit only becomes
  // claimable after its production traffic has flowed.
  {
    MutexLock lock(&mu_);
    in_flight_ += 1;
  }
  loop_->schedule_in(produce_s, [this, lane, unit] { bank(lane, unit); });
}

void TriplePool::bank(unsigned lane, std::shared_ptr<PooledUnit> unit) {
  {
    MutexLock lock(&mu_);
    in_flight_ -= 1;
    unit->produced_at = loop_->now();
    stats_.produced += 1;
    bank_.push_back(std::move(unit));
    set_depth_gauge();
  }
  lane_cycle(lane);  // re-locks; kept outside to avoid recursive acquisition
}

std::shared_ptr<PooledUnit> TriplePool::claim(std::uint64_t fingerprint) {
  MutexLock lock(&mu_);
  if (bank_.empty() || fingerprint != fingerprint_) {
    stats_.misses += 1;
    return nullptr;
  }
  std::shared_ptr<PooledUnit> unit = bank_.front();
  bank_.pop_front();
  stats_.hits += 1;
  set_depth_gauge();
  if (!halted_ && !cfg_.stalled) {
    for (unsigned lane = 0; lane < cfg_.lanes; ++lane) {
      if (!parked_[lane]) continue;
      parked_[lane] = false;
      // Deferred through the loop, so the resumed lane_cycle never runs
      // under this lock.
      loop_->schedule_at(loop_->now(), [this, lane] { lane_cycle(lane); });
    }
  }
  return unit;
}

PoolStats TriplePool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void TriplePool::fold_unclaimed(Ledger& into) const {
  MutexLock lock(&mu_);
  for (const auto& unit : bank_) into.merge(*unit->ledger);
  for (const auto& unit : retired_) into.merge(*unit->ledger);
}

std::string TriplePool::report_json() const {
  MutexLock lock(&mu_);
  json::Writer w;
  w.begin_object();
  w.field("lanes", static_cast<std::uint64_t>(cfg_.lanes));
  w.field("capacity", static_cast<std::uint64_t>(cfg_.capacity));
  w.field("stalled", cfg_.stalled);
  w.key("fingerprint").str(std::to_string(fingerprint_));
  w.field("produced", static_cast<std::uint64_t>(stats_.produced));
  w.field("production_failed", static_cast<std::uint64_t>(stats_.production_failed));
  w.field("hits", static_cast<std::uint64_t>(stats_.hits));
  w.field("misses", static_cast<std::uint64_t>(stats_.misses));
  w.field("hit_rate", stats_.hit_rate());
  w.field("depth", static_cast<std::uint64_t>(stats_.depth));
  w.field("peak_depth", static_cast<std::uint64_t>(stats_.peak_depth));
  w.end_object();
  return w.take();
}

}  // namespace yoso::service
