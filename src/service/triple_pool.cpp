#include "service/triple_pool.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/json.hpp"
#include "net/wire_faults.hpp"  // mix64 (per-unit seed derivation)
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace yoso::service {

TriplePool::TriplePool(ProtocolParams params, Circuit circuit, net::NetConfig net,
                       AdversaryPlan plan, std::uint64_t seed, PoolConfig cfg,
                       net::EventLoop* loop)
    : params_(std::move(params)),
      circuit_(std::move(circuit)),
      net_(std::move(net)),
      plan_(std::move(plan)),
      seed_(seed),
      cfg_(cfg),
      loop_(loop),
      fingerprint_(circuit_.fingerprint()),
      parked_(cfg.lanes, false),
      restarts_(cfg.lanes, 0) {}

TriplePool::~TriplePool() {
#ifndef OBS_DISABLED
  obs::tracer().detach_virtual_clock(this);
#endif
}

void TriplePool::set_depth_gauge() {
  stats_.depth = bank_.size();
  if (stats_.depth > stats_.peak_depth) stats_.peak_depth = stats_.depth;
  OBS_GAUGE_SET("service.pool.depth", stats_.depth);
}

// Park threshold: capacity, or in adaptive mode the EWMA-derived demand
// target ceil(produce / interarrival) once both estimators have samples
// (prefill to capacity until then), clamped to [1, capacity].
std::size_t TriplePool::target() {
  std::size_t t = cfg_.capacity;
  if (cfg_.adaptive && ewma_interarrival_s_ > 0 && ewma_produce_s_ > 0) {
    const double demand = std::ceil(ewma_produce_s_ / ewma_interarrival_s_);
    t = std::min(cfg_.capacity,
                 static_cast<std::size_t>(std::max(1.0, demand)));
  }
  stats_.target_depth = t;
  if (cfg_.adaptive) OBS_GAUGE_SET("service.pool.target_depth", t);
  return t;
}

void TriplePool::wake_parked() {
  if (halted_ || cfg_.stalled) return;
  for (unsigned lane = 0; lane < cfg_.lanes; ++lane) {
    if (!parked_[lane]) continue;
    parked_[lane] = false;
    // Deferred through the loop, so the resumed lane_cycle never runs
    // under this lock.
    loop_->schedule_at(loop_->now(), [this, lane] { lane_cycle(lane); });
  }
}

void TriplePool::start() {
  if (cfg_.stalled || cfg_.lanes == 0 || circuit_.num_wires() == 0) return;
  for (unsigned lane = 0; lane < cfg_.lanes; ++lane) {
    loop_->schedule_at(loop_->now(), [this, lane] { lane_cycle(lane); });
  }
}

void TriplePool::halt() {
  MutexLock lock(&mu_);
  halted_ = true;
}

void TriplePool::lane_cycle(unsigned lane) {
  std::uint64_t id = 0;
  {
    MutexLock lock(&mu_);
    if (halted_ || cfg_.stalled) return;
    if (bank_.size() + in_flight_ >= target()) {
      parked_[lane] = true;  // claim()/note_arrival() wake us on demand
      return;
    }
    id = ++next_unit_;
  }

  // Production proper runs outside the lock: it touches only the fresh unit
  // and the pool's immutable config, so lanes can overlap once threaded.
  auto unit = std::make_shared<PooledUnit>();
  unit->id = id;
  unit->fingerprint = fingerprint_;
  unit->ledger = std::make_unique<Ledger>();
  net::NetConfig net = net_;
  net.wire_faults.seed = net::mix64(net_.wire_faults.seed ^ id);
  unit->board = std::make_unique<net::NetBulletin>(*unit->ledger, net);
  // The board's constructor claimed the tracer's virtual clock for its own
  // private loop; put the service clock back so spans read service time.
#ifndef OBS_DISABLED
  obs::tracer().attach_virtual_clock(this, [loop = loop_] { return loop->now(); });
#endif
  unit->mpc = std::make_unique<YosoMpc>(params_, circuit_, plan_, net::mix64(seed_ ^ id),
                                        unit->board.get());

  obs::Span span("pool.produce", "service");
  span.attr("unit", static_cast<std::int64_t>(id)).attr("lane", static_cast<std::int64_t>(lane));
  try {
    unit->mpc->preprocess();
  } catch (const std::exception&) {
    // Production failed (faulted offline phase under chaos).  The unit's
    // traffic is kept for the aggregate ledger fold.  With a restart budget
    // the lane comes back after capped exponential backoff — the next unit
    // draws fresh seeds, so a transient fault does not starve the bank;
    // without one the lane halts (retrying the *same* plan would spin).
    span.attr("failed", "true");
    MutexLock lock(&mu_);
    stats_.production_failed += 1;
    retired_.push_back(std::move(unit));
    if (restarts_[lane] < cfg_.max_lane_restarts && !halted_ && !cfg_.stalled) {
      restarts_[lane] += 1;
      stats_.lane_restarts += 1;
      const double backoff =
          std::min(cfg_.restart_backoff_s *
                       std::ldexp(1.0, static_cast<int>(restarts_[lane]) - 1),
                   cfg_.restart_backoff_cap_s);
      OBS_COUNT("service.pool.lane_restart");
      loop_->schedule_in(backoff, [this, lane] { lane_cycle(lane); });
    }
    return;
  }
  unit->board->flush();
  const double produce_s = unit->board->phase_traffic(Phase::Setup).seconds +
                           unit->board->phase_traffic(Phase::Offline).seconds;
  unit->offline_virtual_s = produce_s;
  span.end();

  // The CPU work ran now, but on the virtual timeline the unit only becomes
  // claimable after its production traffic has flowed.
  {
    MutexLock lock(&mu_);
    in_flight_ += 1;
    ewma_produce_s_ = ewma_produce_s_ <= 0
                          ? produce_s
                          : cfg_.ewma_alpha * produce_s +
                                (1 - cfg_.ewma_alpha) * ewma_produce_s_;
  }
  loop_->schedule_in(produce_s, [this, lane, unit] { bank(lane, unit); });
}

void TriplePool::bank(unsigned lane, std::shared_ptr<PooledUnit> unit) {
  {
    MutexLock lock(&mu_);
    in_flight_ -= 1;
    unit->produced_at = loop_->now();
    stats_.produced += 1;
    bank_.push_back(std::move(unit));
    set_depth_gauge();
  }
  lane_cycle(lane);  // re-locks; kept outside to avoid recursive acquisition
}

std::shared_ptr<PooledUnit> TriplePool::claim(std::uint64_t fingerprint) {
  MutexLock lock(&mu_);
  if (bank_.empty() || fingerprint != fingerprint_) {
    stats_.misses += 1;
    return nullptr;
  }
  std::shared_ptr<PooledUnit> unit = bank_.front();
  bank_.pop_front();
  stats_.hits += 1;
  set_depth_gauge();
  wake_parked();
  return unit;
}

void TriplePool::note_arrival() {
  if (!cfg_.adaptive) return;
  MutexLock lock(&mu_);
  const double now = loop_->now();
  if (last_arrival_s_ >= 0) {
    const double gap = now - last_arrival_s_;
    ewma_interarrival_s_ = ewma_interarrival_s_ <= 0
                               ? gap
                               : cfg_.ewma_alpha * gap +
                                     (1 - cfg_.ewma_alpha) * ewma_interarrival_s_;
  }
  last_arrival_s_ = now;
  // Demand may have grown the target; parked lanes re-check and re-park if
  // not (the wake is deterministic — it depends only on arrival times).
  if (bank_.size() + in_flight_ < target()) wake_parked();
}

PoolStats TriplePool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void TriplePool::fold_unclaimed(Ledger& into) const {
  MutexLock lock(&mu_);
  for (const auto& unit : bank_) into.merge(*unit->ledger);
  for (const auto& unit : retired_) into.merge(*unit->ledger);
}

std::string TriplePool::report_json() const {
  MutexLock lock(&mu_);
  json::Writer w;
  w.begin_object();
  w.field("lanes", static_cast<std::uint64_t>(cfg_.lanes));
  w.field("capacity", static_cast<std::uint64_t>(cfg_.capacity));
  w.field("stalled", cfg_.stalled);
  w.field("adaptive", cfg_.adaptive);
  w.field("max_lane_restarts", static_cast<std::uint64_t>(cfg_.max_lane_restarts));
  w.key("fingerprint").str(std::to_string(fingerprint_));
  w.field("produced", static_cast<std::uint64_t>(stats_.produced));
  w.field("production_failed", static_cast<std::uint64_t>(stats_.production_failed));
  w.field("hits", static_cast<std::uint64_t>(stats_.hits));
  w.field("misses", static_cast<std::uint64_t>(stats_.misses));
  w.field("hit_rate", stats_.hit_rate());
  w.field("depth", static_cast<std::uint64_t>(stats_.depth));
  w.field("peak_depth", static_cast<std::uint64_t>(stats_.peak_depth));
  w.field("target_depth", static_cast<std::uint64_t>(stats_.target_depth));
  w.field("lane_restarts", static_cast<std::uint64_t>(stats_.lane_restarts));
  w.end_object();
  return w.take();
}

}  // namespace yoso::service
