// One session of the MPC-as-a-service layer (src/service).
//
// A session is one client-facing computation request — a circuit plus the
// clients' inputs — multiplexed with many others over the YOSO substrate by
// MpcService.  Each session owns its complete execution context: a Ledger,
// a net::NetBulletin (its own discrete-event network), and the YosoMpc
// instance that ran (or will run) on them, so traces, flow matrices and
// byte accounting split cleanly by session.  All timestamps are virtual
// seconds on the *service* clock, which is what makes a multi-session run
// bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpc/failure.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"

namespace yoso::service {

// Lifecycle: Submitted -> (Rejected | Queued) -> Running -> (Completed | Failed).
enum class SessionState : std::uint8_t { Queued, Running, Completed, Failed, Rejected };

const char* session_state_name(SessionState s);

// Structured admission-control rejection reasons (never free-form strings:
// clients and the chaos invariants key on these).
enum class RejectReason : std::uint8_t {
  None,            // not rejected
  QueueFull,       // the deterministic session queue is at max_queue
  TooManyClients,  // circuit declares more input clients than the service cap
  TooDeep,         // multiplicative depth beyond the service cap
  BadInputs,       // inputs do not match the circuit's client declarations
  ShuttingDown,    // arrived after shutdown_at()
};

const char* reject_reason_name(RejectReason r);

// What a client submits.
struct SessionRequest {
  std::string tag;      // caller-assigned label ("agg.batch.17")
  Circuit circuit;
  std::vector<std::vector<mpz_class>> inputs;  // inputs[c] = client c's values
  unsigned priority = 0;                       // higher admits first among queued
};

// The full lifecycle record of one session, owned by MpcService.  For a
// pool hit the board/ledger/mpc are the banked unit's (its ledger already
// carries the offline production traffic, paid before the session arrived);
// for a miss they are created at session start and carry all three phases.
struct SessionRecord {
  std::uint64_t id = 0;  // 1-based, in submission order
  std::string tag;
  unsigned priority = 0;
  SessionState state = SessionState::Queued;
  RejectReason reject_reason = RejectReason::None;

  // Virtual timestamps on the service clock (seconds; -1 = never happened).
  double submit_s = -1;
  double start_s = -1;
  double finish_s = -1;

  bool pool_hit = false;  // final attempt served from the banked triple pool
  std::optional<FailureReport> failure;  // classified diagnosis when Failed
  std::string error;                     // abort message when no report exists

  // Self-healing accounting (Section 5.4; see ResilienceConfig).  An
  // attempt that times out or fails silence-decisively is resubmitted on a
  // fresh board; the abandoned attempts' bytes stay ledger-visible through
  // the "session.resubmit" marker on the final attempt's ledger.
  unsigned attempts = 0;       // execution attempts (1 = never resubmitted)
  unsigned resubmits = 0;      // attempts - 1 once terminal
  bool degraded = false;       // a resubmission ran the fail-stop parameters
  unsigned timeouts = 0;       // attempts cut by the phase watchdog
  Phase timeout_phase = Phase::Setup;  // last watchdog phase (valid when timeouts > 0)
  double backoff_wait_s = 0;   // total backoff spent on the virtual clock
  std::size_t sunk_bytes = 0;  // bytes sunk in abandoned attempts (marker value)

  SessionRequest request;
  std::vector<mpz_class> outputs;  // Completed: in circuit.outputs() order
  mpz_class plaintext_modulus = 0;

  // Execution context (null for Rejected sessions, which never run).
  std::unique_ptr<Ledger> ledger;
  std::unique_ptr<net::NetBulletin> board;
  std::unique_ptr<YosoMpc> mpc;

  bool terminal() const {
    return state == SessionState::Completed || state == SessionState::Failed ||
           state == SessionState::Rejected;
  }
  // Submission-to-finish virtual latency (only meaningful once terminal and run).
  double latency_s() const { return finish_s >= 0 && submit_s >= 0 ? finish_s - submit_s : -1; }

  std::string to_json() const;
};

}  // namespace yoso::service
