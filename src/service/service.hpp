// MpcService: a long-lived MPC-as-a-service layer over the YOSO substrate.
//
// The service multiplexes many concurrent sessions (src/service/session.hpp)
// over one master discrete-event clock:
//
//   * admission control — structured rejection (RejectReason) for requests
//     that exceed the service's client/depth caps, malformed inputs, a full
//     queue, or arrival after shutdown;
//   * a deterministic session queue — FIFO within a priority level, higher
//     priority first, at most `max_concurrent` sessions running;
//   * a background TriplePool producing preprocessed instances of the
//     service's flagship circuit shape, claimed by fingerprint;
//   * per-session Ledger/NetBulletin/trace scoping, folded into one
//     aggregate ledger and one report_json().
//
// Everything is driven by a net::EventLoop, so a run is a pure function of
// (ServiceConfig, submissions): two identical runs produce bit-for-bit
// identical report_json() output.  CPU work executes synchronously inside
// events; virtual durations come from each session board's per-phase
// traffic, so the simulated timeline prices real protocol communication.
//
//   MpcService svc(cfg);
//   svc.submit_at(0.10, {"agg.batch.0", circuit, inputs, /*priority=*/0});
//   svc.run();
//   const SessionRecord& rec = svc.session(1);
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "service/session.hpp"
#include "service/triple_pool.hpp"
#include "yoso/adversary.hpp"

namespace yoso::service {

// Self-healing knobs (Section 5.4).  With max_resubmits > 0, a session whose
// attempt times out on the phase watchdog or fails with a silence-decisive
// FailureReport is automatically resubmitted on a fresh board under the
// fail-stop parameterization (when that genuinely lowers the reconstruction
// bar), after capped exponential backoff on the virtual clock.  The defaults
// keep the legacy fail-fast behavior.
struct ResilienceConfig {
  unsigned max_resubmits = 0;    // extra attempts per session; 0 = fail fast
  double phase_timeout_s = 0;    // per-phase silence watchdog; 0 = off
  double backoff_base_s = 0.05;  // k-th resubmit waits min(base * 2^(k-1), cap)
  double backoff_cap_s = 2.0;
};

struct ServiceConfig {
  // Protocol parameterization shared by every session (Theorem 1 knobs).
  unsigned n = 8;
  double eps = 0.25;
  unsigned paillier_bits = 192;
  bool failstop_mode = false;
  std::uint64_t seed = 1;

  // Admission control.
  std::size_t max_concurrent = 4;  // sessions running at once
  std::size_t max_queue = 64;      // queued (admitted, not yet running)
  unsigned max_clients = 64;       // per-circuit input-client cap
  unsigned max_mul_depth = 64;     // per-circuit multiplicative-depth cap

  // Triple pool: preprocesses `pool_circuit` ahead of demand.  An empty
  // pool_circuit (or lanes == 0) leaves the pool idle and every session
  // runs inline (all misses).
  PoolConfig pool;
  Circuit pool_circuit;

  // Self-healing resubmission policy (defaults = legacy fail-fast).
  ResilienceConfig resilience;

  // Network model every session and pool lane runs under.
  net::NetConfig net;
  // Corruption pattern (defaults to all-honest committees of size n).
  std::optional<AdversaryPlan> plan;
};

struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double duration_s = 0;        // first submission to last session finish
  double sessions_per_sec = 0;  // completed per virtual second
  double latency_p50_s = 0;     // nearest-rank percentiles over run sessions
  double latency_p99_s = 0;
  // Resilience accounting (Section 5.4 self-healing).
  std::size_t resubmits = 0;    // extra attempts across all sessions
  std::size_t timeouts = 0;     // attempts cut by the phase watchdog
  std::size_t recovered = 0;    // completed only after >= 1 resubmission
  double backoff_wait_s = 0;    // total virtual backoff across sessions
  std::size_t sunk_bytes = 0;   // bytes sunk in abandoned attempts
  // Structured rejection breakdown, keyed by reject_reason_name().
  std::map<std::string, std::size_t> rejected_by_reason;
  PoolStats pool;
};

class MpcService {
public:
  explicit MpcService(ServiceConfig cfg);
  ~MpcService();

  // Schedules a request to arrive at virtual time `at` (admission happens
  // then).  Returns the session id (1-based, submission order).
  std::uint64_t submit_at(double at, SessionRequest req);
  std::uint64_t submit(SessionRequest req);

  // After `at`, new arrivals are rejected (ShuttingDown) and the pool stops
  // producing; already-admitted sessions still drain.
  void shutdown_at(double at);

  // Starts the pool and drains the event loop; returns the final virtual
  // time.  Call after scheduling submissions.
  double run();

  const std::vector<std::unique_ptr<SessionRecord>>& sessions() const { return records_; }
  const SessionRecord& session(std::uint64_t id) const { return *records_.at(id - 1); }

  ServiceStats stats() const;
  // Every session ledger plus unclaimed pool production, merged.
  Ledger aggregate_ledger() const;

  const TriplePool& pool() const { return *pool_; }
  const ServiceConfig& config() const { return cfg_; }
  const ProtocolParams& params() const { return params_; }
  net::EventLoop& loop() { return loop_; }

  // {"config":…,"stats":…,"pool":…,"sessions":[…],"aggregate_ledger":…} —
  // bit-for-bit identical across identical runs.
  std::string report_json() const;

private:
  void arrive(std::uint64_t id);
  void reject(SessionRecord& rec, RejectReason reason);
  void try_dispatch();
  void execute(std::uint64_t id);
  void finish(std::uint64_t id, bool success);
  void maybe_halt_pool();
  void attach_master_clock();

  ServiceConfig cfg_;
  ProtocolParams params_;
  AdversaryPlan plan_;
  net::EventLoop loop_;
  std::unique_ptr<TriplePool> pool_;

  // Session records are appended at submission time and then owned by their
  // session; the multi-core plan shards sessions per worker, so records_
  // itself is not lock-protected here (a SessionRecord's address is stable
  // once created — the vector holds pointers).
  std::vector<std::unique_ptr<SessionRecord>> records_;

  // The dispatch queue and its occupancy counters are the state concurrent
  // arrival/finish events contend on; lock-protected and annotated ahead of
  // the multi-core engine (docs/STATIC_ANALYSIS.md).
  mutable Mutex mu_;
  // Dispatch order: (-priority, id) — higher priority first, FIFO within.
  std::set<std::pair<std::int64_t, std::uint64_t>> queue_ GUARDED_BY(mu_);
  std::size_t running_ GUARDED_BY(mu_) = 0;
  std::size_t pending_arrivals_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  bool started_ GUARDED_BY(mu_) = false;
};

}  // namespace yoso::service
