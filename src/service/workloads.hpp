// Secure-aggregation workload generator: the service's flagship load.
//
// Model (the "masked inputs through gateways" pattern of large-scale secure
// aggregation): each of up to millions of clients holds a small value x_i,
// samples a mask r_i, and publishes only y_i = x_i + r_i.  Clients are
// sharded round-robin across a handful of gateways; gateway g's MPC input
// is the sum of the masks of its shard.  One MPC session per batch computes
// the batch's mask total R = sum_g R_g (and, as an integrity check, the sum
// of squares of the gateway subtotals — exercising the packed Beaver-style
// multiplication path), after which the coordinator unmasks
// sum(x) = sum(y) - R in the clear.  The per-client work never enters the
// MPC: batch size scales to millions while every session stays a
// `gateways`-client circuit matched to the packing parameter.
//
// Everything derives from `seed` via mix64, so the batch stream — values,
// masks, submit times, priorities — is a pure function of the config.
#pragma once

#include <cstdint>

#include "circuit/workloads.hpp"
#include "service/service.hpp"

namespace yoso::service {

struct AggregationConfig {
  std::uint64_t clients_total = 1'000'000;  // masked-input clients overall
  std::uint64_t batch_clients = 10'000;     // clients aggregated per session
  unsigned gateways = 4;      // MPC input parties (mask-subtotal holders)
  unsigned value_bits = 16;   // client values x_i < 2^value_bits
  unsigned mask_bits = 32;    // masks r_i < 2^mask_bits
  bool integrity = true;      // also compute sum of squares of subtotals
  double start_s = 0.05;      // first batch's submit time (lets the pool warm)
  double interarrival_s = 0.01;  // gap between batch submissions
  unsigned priority_every = 10;  // every k-th batch submits at priority 1
  std::uint64_t seed = 42;
};

// One batch, ready to submit: the session request plus the public masked
// sum and the cleartext oracles the verifier checks against.
struct AggregationBatch {
  std::uint64_t index = 0;
  std::uint64_t clients = 0;
  SessionRequest request;
  mpz_class masked_sum = 0;           // sum(y_i), public
  mpz_class expected_mask_total = 0;  // oracle for the MPC's sum output
  mpz_class expected_value_sum = 0;   // oracle for the unmasked result
  double submit_at = 0;
};

class AggregationWorkload {
public:
  explicit AggregationWorkload(AggregationConfig cfg);

  // The one circuit shape every batch session runs — hand this to
  // ServiceConfig::pool_circuit so the triple pool banks for it.
  Circuit session_circuit() const;

  std::uint64_t num_batches() const;
  // Generates batch `b` on demand (per-client data is streamed through
  // mix64, never materialized).
  AggregationBatch batch(std::uint64_t b) const;

  // Checks a finished session against the batch's oracles: the MPC's mask
  // total matches, and unmasking recovers the true value sum (plus the
  // sum-of-squares integrity output when enabled).
  bool verify(const AggregationBatch& b, const SessionRecord& rec) const;

  const AggregationConfig& config() const { return cfg_; }

private:
  AggregationConfig cfg_;
};

}  // namespace yoso::service
